// Shared helpers for the application kernels.
#pragma once

#include <cstring>
#include <span>
#include <vector>

#include "gpusim/device.h"
#include "support/status.h"

namespace simtomp::apps {

/// Copy a host vector into a fresh device allocation. The device view
/// stays valid until freed via Device::freeArray or device teardown.
template <typename T>
Result<gpusim::GlobalSpan<T>> toDevice(gpusim::Device& device,
                                       std::span<const T> host) {
  auto span = device.allocateArray<T>(host.size());
  if (!span.isOk()) return span.status();
  std::memcpy(span.value().data(), host.data(), host.size_bytes());
  return span;
}

/// Allocate a zero-initialized device array.
template <typename T>
Result<gpusim::GlobalSpan<T>> zeroDevice(gpusim::Device& device,
                                         size_t count) {
  auto span = device.allocateArray<T>(count);
  if (!span.isOk()) return span.status();
  std::memset(span.value().data(), 0, count * sizeof(T));
  return span;
}

/// Copy a device array back to a host vector.
template <typename T>
std::vector<T> toHost(const gpusim::GlobalSpan<T>& span) {
  std::vector<T> out(span.size());
  std::memcpy(out.data(), span.data(), span.size() * sizeof(T));
  return out;
}

/// Max |a-b| over two host vectors.
inline double maxAbsDiff(std::span<const double> a,
                         std::span<const double> b) {
  double m = 0.0;
  const size_t n = a.size() < b.size() ? a.size() : b.size();
  for (size_t i = 0; i < n; ++i) {
    const double d = a[i] > b[i] ? a[i] - b[i] : b[i] - a[i];
    if (d > m) m = d;
  }
  return m;
}

/// Result of running one application kernel variant.
struct AppRunResult {
  gpusim::KernelStats stats;
  bool verified = false;
  double maxError = 0.0;
};

/// The three execution-mode variants of paper Fig. 10.
enum class SimdMode : uint8_t {
  kNoSimd,       ///< 2-level, teams SPMD, simdlen 1 (today's LLVM)
  kSpmdSimd,     ///< 3-level, parallel SPMD
  kGenericSimd,  ///< 3-level, parallel generic
};

inline const char* simdModeName(SimdMode mode) {
  switch (mode) {
    case SimdMode::kNoSimd: return "no-simd";
    case SimdMode::kSpmdSimd: return "spmd-simd";
    case SimdMode::kGenericSimd: return "generic-simd";
  }
  return "?";
}

}  // namespace simtomp::apps
