// simtomp_info: inspect the simulated architectures and launch shapes.
//
//   simtomp_info                      — list the architecture presets
//   simtomp_info occupancy T [S]      — occupancy table for blocks of T
//                                       threads using S bytes of shared
//                                       memory (default: the runtime's
//                                       2,048-byte sharing space)
//   simtomp_info groups T             — legal SIMD group configurations
//                                       for a team of T worker threads
//   simtomp_info --check              — how simcheck (the correctness
//                                       sanitizer) would resolve for a
//                                       launch in this environment
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "gpusim/arch.h"
#include "gpusim/occupancy.h"
#include "omprt/target.h"
#include "simcheck/report.h"

using namespace simtomp;

namespace {

const gpusim::ArchSpec kPresets[] = {
    gpusim::ArchSpec::nvidiaA100(),
    gpusim::ArchSpec::amdMI100(),
    gpusim::ArchSpec::testTiny(),
};

void listPresets() {
  std::printf("%-10s %-7s %5s %5s %9s %11s %12s %s\n", "name", "vendor",
              "warp", "SMs", "thr/blk", "shared/blk", "shared/SM",
              "warp barriers");
  for (const auto& arch : kPresets) {
    std::printf("%-10s %-7s %5u %5u %9u %10uK %11uK %s\n", arch.name.c_str(),
                arch.vendor == gpusim::Vendor::kNvidia ? "nvidia" : "amd",
                arch.warpSize, arch.numSMs, arch.maxThreadsPerBlock,
                arch.sharedMemPerBlock / 1024, arch.sharedMemPerSM / 1024,
                arch.hasWarpLevelBarrier ? "yes" : "no");
  }
}

void occupancyTable(uint32_t threads, uint32_t shared_bytes) {
  std::printf("occupancy for %u threads/block, %u shared bytes/block:\n",
              threads, shared_bytes);
  std::printf("%-10s %9s %12s %12s %10s\n", "arch", "warps/blk",
              "blk/SM(thr)", "blk/SM(shm)", "occupancy");
  for (const auto& arch : kPresets) {
    const gpusim::OccupancyInfo info =
        gpusim::computeOccupancy(arch, threads, shared_bytes);
    std::printf("%-10s %9u %12u %12u %9.0f%%\n", arch.name.c_str(),
                info.warpsPerBlock, info.blocksPerSmByThreads,
                info.blocksPerSmByShared, info.warpOccupancy * 100.0);
  }
}

void groupTable(uint32_t threads) {
  std::printf("SIMD group configurations for %u worker threads:\n", threads);
  for (const auto& arch : kPresets) {
    std::printf("%s (warp %u):\n", arch.name.c_str(), arch.warpSize);
    if (threads % arch.warpSize != 0) {
      std::printf("  (threads must be a multiple of the warp size)\n");
      continue;
    }
    std::printf("  %-8s %-8s %-14s %s\n", "simdlen", "groups", "groups/warp",
                "generic-SIMD");
    for (uint32_t g = 1; g <= arch.warpSize; g *= 2) {
      const bool generic_ok = arch.hasWarpLevelBarrier || g == 1;
      std::printf("  %-8u %-8u %-14u %s\n", g, threads / g,
                  arch.warpSize / g,
                  generic_ok ? "supported" : "falls back to simdlen 1");
    }
  }
}

void checkInfo() {
  const char* env = std::getenv("SIMTOMP_CHECK");
  std::printf("simcheck resolution for this environment:\n");
  std::printf("  SIMTOMP_CHECK            = %s\n",
              env != nullptr ? env : "(unset)");
  // A launch that leaves CheckConfig at its default (auto) consults
  // the environment; an explicit mode on the LaunchConfig always wins.
  const simcheck::CheckResolution auto_mode =
      simcheck::resolveCheckMode(simcheck::CheckMode::kAuto);
  std::printf("  default  %-6s launches  -> %-6s  [from %s]\n", "(auto)",
              std::string(simcheck::checkModeName(auto_mode.effective))
                  .c_str(),
              auto_mode.source);
  for (const simcheck::CheckMode mode :
       {simcheck::CheckMode::kOff, simcheck::CheckMode::kReport,
        simcheck::CheckMode::kFatal}) {
    const simcheck::CheckResolution r = simcheck::resolveCheckMode(mode);
    std::printf("  explicit %-6s launches  -> %-6s  [from %s]\n",
                std::string(simcheck::checkModeName(mode)).c_str(),
                std::string(simcheck::checkModeName(r.effective)).c_str(),
                r.source);
  }
  std::printf(
      "accepted SIMTOMP_CHECK values: 0/off, 1/on/report, 2/fatal\n");
}

}  // namespace

int main(int argc, char** argv) {
  if (argc <= 1) {
    listPresets();
    return 0;
  }
  if (std::strcmp(argv[1], "occupancy") == 0 && argc >= 3) {
    const auto threads = static_cast<uint32_t>(std::atoi(argv[2]));
    const uint32_t shared_bytes =
        argc >= 4 ? static_cast<uint32_t>(std::atoi(argv[3]))
                  : omprt::kDefaultSharingSpaceBytes;
    occupancyTable(threads, shared_bytes);
    return 0;
  }
  if (std::strcmp(argv[1], "groups") == 0 && argc >= 3) {
    groupTable(static_cast<uint32_t>(std::atoi(argv[2])));
    return 0;
  }
  if (std::strcmp(argv[1], "--check") == 0 ||
      std::strcmp(argv[1], "check") == 0) {
    checkInfo();
    return 0;
  }
  std::fprintf(stderr,
               "usage: simtomp_info [occupancy <threads> [sharedBytes] | "
               "groups <threads> | --check]\n");
  return 2;
}
