// Event counters and kernel statistics.
#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <string_view>

#include "gpusim/occupancy.h"

namespace simtomp::gpusim {

enum class Counter : uint8_t {
  kAluWork = 0,
  kGlobalLoad,
  kGlobalStore,
  kSharedLoad,
  kSharedStore,
  kLocalAccess,
  kAtomicRmw,
  kWarpSync,
  kBlockSync,
  kStatePoll,
  kPayloadArgCopy,
  kDispatchCascade,
  kDispatchIndirect,
  kShuffle,
  kGlobalAlloc,
  kSharingSpaceOverflow,
  kParallelRegion,
  kSimdLoop,
  kWorkshareLoop,
  kSimdLaneRounds,      ///< lanes x rounds a simd loop occupied
  kSimdIdleLaneRounds,  ///< of those, lane-rounds with no iteration
  kCount  // sentinel
};

inline constexpr size_t kNumCounters = static_cast<size_t>(Counter::kCount);

std::string_view counterName(Counter c);
/// One-line description for `simtomp_info --counters` (same table the
/// profiler/metrics surfaces render from, so names cannot drift).
std::string_view counterDescription(Counter c);
/// Inverse of counterName; returns kCount for unknown names.
Counter counterFromName(std::string_view name);

/// Dense counter set; cheap to merge.
struct CounterSet {
  std::array<uint64_t, kNumCounters> values{};

  void add(Counter c, uint64_t n = 1) {
    values[static_cast<size_t>(c)] += n;
  }
  [[nodiscard]] uint64_t get(Counter c) const {
    return values[static_cast<size_t>(c)];
  }
  void merge(const CounterSet& other) {
    for (size_t i = 0; i < kNumCounters; ++i) values[i] += other.values[i];
  }
};

/// Result of one simulated kernel launch.
struct KernelStats {
  /// Modeled end-to-end kernel time (simulator cycles).
  uint64_t cycles = 0;
  /// Sum over all threads of charged (busy) cycles, ignoring idling.
  uint64_t busyCycles = 0;
  /// Longest single-thread timeline within any block.
  uint64_t maxThreadCycles = 0;
  uint32_t numBlocks = 0;
  uint32_t threadsPerBlock = 0;
  /// Number of scheduling waves over the SMs.
  uint32_t waves = 0;
  /// Peak shared-memory bytes any block used.
  uint64_t peakSharedBytes = 0;
  /// Theoretical occupancy at the observed shared-memory usage.
  OccupancyInfo occupancy;
  CounterSet counters;

  [[nodiscard]] std::string summary() const;

  /// One CSV header + row (every counter, even zero ones) for bench
  /// post-processing.
  [[nodiscard]] static std::string csvHeader();
  [[nodiscard]] std::string csvRow() const;

  /// JSON object with every scalar field and every counter (by name,
  /// even zero ones), deterministic key order.
  [[nodiscard]] std::string toJson() const;
};

}  // namespace simtomp::gpusim
