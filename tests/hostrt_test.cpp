// Unit tests for the host runtime: the target-data environment
// (present table, refcounts, copy direction) and async target tasks.
#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <thread>
#include <vector>

#include "hostrt/async.h"
#include "hostrt/data_env.h"

namespace simtomp::hostrt {
namespace {

using gpusim::ArchSpec;
using gpusim::Device;

class DataEnvTest : public ::testing::Test {
 protected:
  DataEnvTest() : dev_(ArchSpec::testTiny()), env_(dev_) {}

  Device dev_;
  DataEnvironment env_;
};

TEST_F(DataEnvTest, MapToCopiesIn) {
  std::vector<double> host{1, 2, 3, 4};
  ASSERT_TRUE(env_.mapEnter(std::span<double>(host), MapType::kTo).isOk());
  auto dev = env_.deviceSpan(host.data());
  ASSERT_TRUE(dev.isOk());
  EXPECT_EQ(dev.value().size(), 4u);
  EXPECT_EQ(dev.value().raw(2), 3.0);
  EXPECT_EQ(env_.stats().bytesToDevice, 4 * sizeof(double));
  ASSERT_TRUE(env_.mapExit(std::span<double>(host), MapType::kTo).isOk());
  EXPECT_FALSE(env_.isPresent(host.data()));
}

TEST_F(DataEnvTest, MapFromCopiesBackOnExit) {
  std::vector<double> host(4, 0.0);
  ASSERT_TRUE(env_.mapEnter(std::span<double>(host), MapType::kFrom).isOk());
  env_.deviceSpan(host.data()).value().raw(1) = 7.5;
  ASSERT_TRUE(env_.mapExit(std::span<double>(host), MapType::kFrom).isOk());
  EXPECT_EQ(host[1], 7.5);
  EXPECT_EQ(env_.stats().bytesFromDevice, 4 * sizeof(double));
}

TEST_F(DataEnvTest, AllocDoesNotCopyEitherWay) {
  std::vector<double> host{9, 9};
  ASSERT_TRUE(env_.mapEnter(std::span<double>(host), MapType::kAlloc).isOk());
  // Device storage is zeroed, not copied from host.
  EXPECT_EQ(env_.deviceSpan(host.data()).value().raw(0), 0.0);
  ASSERT_TRUE(env_.mapExit(std::span<double>(host), MapType::kAlloc).isOk());
  EXPECT_EQ(host[0], 9.0);
  EXPECT_EQ(env_.stats().bytesToDevice, 0u);
  EXPECT_EQ(env_.stats().bytesFromDevice, 0u);
}

TEST_F(DataEnvTest, RefCountingSkipsInnerCopies) {
  std::vector<double> host{1, 2};
  ASSERT_TRUE(env_.mapEnter(std::span<double>(host), MapType::kToFrom).isOk());
  ASSERT_TRUE(env_.mapEnter(std::span<double>(host), MapType::kToFrom).isOk());
  EXPECT_EQ(env_.stats().transfersToDevice, 1u);  // second enter: refcount
  env_.deviceSpan(host.data()).value().raw(0) = 42.0;
  ASSERT_TRUE(env_.mapExit(std::span<double>(host), MapType::kToFrom).isOk());
  EXPECT_EQ(host[0], 1.0);  // not yet: refcount still positive
  ASSERT_TRUE(env_.mapExit(std::span<double>(host), MapType::kToFrom).isOk());
  EXPECT_EQ(host[0], 42.0);  // last exit copies back
}

TEST_F(DataEnvTest, RemapWithDifferentExtentRejected) {
  std::vector<double> host(8);
  ASSERT_TRUE(env_.mapEnter(host.data(), 64, MapType::kTo).isOk());
  EXPECT_FALSE(env_.mapEnter(host.data(), 32, MapType::kTo).isOk());
  ASSERT_TRUE(env_.mapExit(host.data(), MapType::kTo).isOk());
}

TEST_F(DataEnvTest, ExitOfUnmappedPointerFails) {
  int x = 0;
  EXPECT_FALSE(env_.mapExit(&x, MapType::kFrom).isOk());
}

TEST_F(DataEnvTest, NullOrEmptyMapRejected) {
  EXPECT_FALSE(env_.mapEnter(nullptr, 16, MapType::kTo).isOk());
  int x = 0;
  EXPECT_FALSE(env_.mapEnter(&x, 0, MapType::kTo).isOk());
}

TEST_F(DataEnvTest, UpdateToAndFrom) {
  std::vector<double> host{1, 2};
  ASSERT_TRUE(env_.mapEnter(std::span<double>(host), MapType::kTo).isOk());
  host[0] = 100.0;
  ASSERT_TRUE(env_.updateTo(host.data()).isOk());
  EXPECT_EQ(env_.deviceSpan(host.data()).value().raw(0), 100.0);
  env_.deviceSpan(host.data()).value().raw(1) = -5.0;
  ASSERT_TRUE(env_.updateFrom(host.data()).isOk());
  EXPECT_EQ(host[1], -5.0);
  ASSERT_TRUE(env_.mapExit(std::span<double>(host), MapType::kTo).isOk());
}

TEST_F(DataEnvTest, UpdateOfUnmappedPointerFails) {
  int x = 0;
  EXPECT_FALSE(env_.updateTo(&x).isOk());
  EXPECT_FALSE(env_.updateFrom(&x).isOk());
}

TEST_F(DataEnvTest, DeviceSpanOfUnmappedPointerFails) {
  int x = 0;
  EXPECT_FALSE(env_.deviceSpan(&x).isOk());
}

TEST_F(DataEnvTest, MappedSpanRaii) {
  std::vector<double> host{3, 1, 4};
  {
    MappedSpan<double> mapped(env_, host, MapType::kToFrom);
    ASSERT_TRUE(mapped.status().isOk());
    EXPECT_TRUE(env_.isPresent(host.data()));
    mapped.device().raw(0) = 30.0;
  }
  EXPECT_FALSE(env_.isPresent(host.data()));
  EXPECT_EQ(host[0], 30.0);
}

TEST_F(DataEnvTest, ManyMappingsCoexist) {
  std::vector<std::vector<double>> arrays(10, std::vector<double>(16, 1.0));
  for (auto& a : arrays) {
    ASSERT_TRUE(env_.mapEnter(std::span<double>(a), MapType::kTo).isOk());
  }
  EXPECT_EQ(env_.presentCount(), 10u);
  for (auto& a : arrays) {
    ASSERT_TRUE(env_.mapExit(std::span<double>(a), MapType::kTo).isOk());
  }
  EXPECT_EQ(env_.presentCount(), 0u);
  EXPECT_EQ(dev_.memory().bytesInUse(), 0u);
}

// ---------------- Async target tasks ----------------

omprt::TargetConfig tinyConfig() {
  omprt::TargetConfig config;
  config.teamsMode = omprt::ExecMode::kSPMD;
  config.numTeams = 1;
  config.threadsPerTeam = 32;
  return config;
}

TEST(AsyncTest, EnqueueRunsTask) {
  Device dev(ArchSpec::testTiny());
  TargetTaskQueue queue(dev);
  std::atomic<int> runs{0};
  auto future = queue.enqueue(tinyConfig(),
                              [&](omprt::OmpContext&) { runs++; });
  auto result = future.get();
  ASSERT_TRUE(result.isOk());
  EXPECT_EQ(runs.load(), 32);
}

TEST(AsyncTest, TasksRunInFifoOrder) {
  Device dev(ArchSpec::testTiny());
  TargetTaskQueue queue(dev);
  std::mutex m;
  std::vector<int> order;
  std::vector<std::future<Result<gpusim::KernelStats>>> futures;
  for (int i = 0; i < 5; ++i) {
    futures.push_back(queue.enqueue(tinyConfig(), [&, i](omprt::OmpContext& ctx) {
      if (ctx.gpu().threadId() == 0) {
        std::lock_guard<std::mutex> lock(m);
        order.push_back(i);
      }
    }));
  }
  for (auto& f : futures) ASSERT_TRUE(f.get().isOk());
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(AsyncTest, DrainWaitsForCompletion) {
  Device dev(ArchSpec::testTiny());
  TargetTaskQueue queue(dev);
  std::atomic<int> runs{0};
  for (int i = 0; i < 3; ++i) {
    (void)queue.enqueue(tinyConfig(), [&](omprt::OmpContext& ctx) {
      ctx.gpu().work(10);
      runs++;
    });
  }
  queue.drain();
  EXPECT_EQ(runs.load(), 3 * 32);
  EXPECT_EQ(queue.pendingTasks(), 0u);
  EXPECT_EQ(queue.completedTasks(), 3u);
}

TEST(AsyncTest, RunningTaskCountsAsPending) {
  Device dev(ArchSpec::testTiny());
  TargetTaskQueue queue(dev);
  std::atomic<bool> release{false};
  std::atomic<bool> started{false};
  // Gate the first task open: once `started` is set the helper thread
  // has popped it from the queue (busy_), so the queue is empty while
  // the task is still very much pending.
  auto gated = queue.enqueue(tinyConfig(), [&](omprt::OmpContext& ctx) {
    if (ctx.gpu().threadId() == 0) {
      started = true;
      while (!release.load()) std::this_thread::yield();
    }
  });
  while (!started.load()) std::this_thread::yield();
  EXPECT_EQ(queue.pendingTasks(), 1u);  // in-flight task counts
  auto queued = queue.enqueue(tinyConfig(), [](omprt::OmpContext&) {});
  EXPECT_EQ(queue.pendingTasks(), 2u);  // one queued + one in flight
  EXPECT_EQ(queue.completedTasks(), 0u);
  release = true;
  ASSERT_TRUE(gated.get().isOk());
  ASSERT_TRUE(queued.get().isOk());
  queue.drain();
  // After drain the in-flight slot is retired too: the counter and
  // drain() share one condition (empty queue, idle helper).
  EXPECT_EQ(queue.pendingTasks(), 0u);
  EXPECT_EQ(queue.completedTasks(), 2u);
}

TEST(AsyncTest, InvalidConfigSurfacesThroughFuture) {
  Device dev(ArchSpec::testTiny());
  TargetTaskQueue queue(dev);
  omprt::TargetConfig bad = tinyConfig();
  bad.threadsPerTeam = 7;  // not a warp multiple
  auto future = queue.enqueue(bad, [](omprt::OmpContext&) {});
  auto result = future.get();
  EXPECT_FALSE(result.isOk());
}

TEST(AsyncTest, DrainIsSafeAgainstConcurrentEnqueue) {
  // The multi-producer contract simserve relies on: drain() waits for
  // everything enqueued before it, and returns even while another
  // thread keeps pumping new tasks into the queue.
  Device dev(ArchSpec::testTiny());
  TargetTaskQueue queue(dev);
  std::atomic<int> pre_drain_runs{0};
  constexpr int kPreDrain = 8;
  for (int i = 0; i < kPreDrain; ++i) {
    (void)queue.enqueue(tinyConfig(), [&](omprt::OmpContext& ctx) {
      if (ctx.gpu().threadId() == 0) pre_drain_runs++;
    });
  }
  // Bounded producer: an unbounded enqueue loop can outpace the worker
  // by orders of magnitude (especially under TSan), leaving the final
  // drain with an arbitrarily large backlog to retire.
  constexpr int kRacing = 64;
  std::thread producer([&] {
    for (int i = 0; i < kRacing; ++i) {
      (void)queue.enqueue(tinyConfig(), [](omprt::OmpContext&) {});
    }
  });
  queue.drain();  // must not hang despite the racing producer
  EXPECT_GE(pre_drain_runs.load(), kPreDrain);
  producer.join();
  queue.drain();  // no producer left: retires everything submitted
  EXPECT_EQ(queue.completedTasks(), queue.enqueuedTasks());
  EXPECT_EQ(queue.pendingTasks(), 0u);
}

TEST(AsyncTest, DrainWaitsForTasksEnqueuedBeforeIt) {
  Device dev(ArchSpec::testTiny());
  TargetTaskQueue queue(dev);
  std::atomic<int> runs{0};
  for (int i = 0; i < 6; ++i) {
    (void)queue.enqueue(tinyConfig(), [&](omprt::OmpContext& ctx) {
      ctx.gpu().work(5);
      if (ctx.gpu().threadId() == 0) runs++;
    });
  }
  queue.drain();
  // Every pre-drain task retired, not merely resolved.
  EXPECT_EQ(runs.load(), 6);
  EXPECT_EQ(queue.completedTasks(), 6u);
  EXPECT_EQ(queue.enqueuedTasks(), 6u);
}

TEST(AsyncTest, ConcurrentEnqueueFromManyProducers) {
  Device dev(ArchSpec::testTiny());
  TargetTaskQueue queue(dev);
  std::atomic<int> runs{0};
  constexpr int kProducers = 4;
  constexpr int kPerProducer = 8;
  std::vector<std::thread> producers;
  producers.reserve(kProducers);
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&] {
      for (int i = 0; i < kPerProducer; ++i) {
        (void)queue.enqueue(tinyConfig(), [&](omprt::OmpContext& ctx) {
          if (ctx.gpu().threadId() == 0) runs++;
        });
      }
    });
  }
  for (auto& t : producers) t.join();
  queue.drain();
  EXPECT_EQ(runs.load(), kProducers * kPerProducer);
  EXPECT_EQ(queue.completedTasks(),
            static_cast<uint64_t>(kProducers * kPerProducer));
}

TEST(AsyncTest, ShutdownDrainsOutstandingTasks) {
  Device dev(ArchSpec::testTiny());
  std::atomic<int> runs{0};
  {
    TargetTaskQueue queue(dev);
    for (int i = 0; i < 4; ++i) {
      (void)queue.enqueue(tinyConfig(), [&](omprt::OmpContext&) { runs++; });
    }
    // Destructor must complete queued work before joining.
  }
  EXPECT_EQ(runs.load(), 4 * 32);
}

}  // namespace
}  // namespace simtomp::hostrt
