// simtomp_info: inspect the simulated architectures and launch shapes.
//
//   simtomp_info                      — list the architecture presets
//   simtomp_info occupancy T [S]      — occupancy table for blocks of T
//                                       threads using S bytes of shared
//                                       memory (default: the runtime's
//                                       2,048-byte sharing space)
//   simtomp_info groups T             — legal SIMD group configurations
//                                       for a team of T worker threads
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "gpusim/arch.h"
#include "gpusim/occupancy.h"
#include "omprt/target.h"

using namespace simtomp;

namespace {

const gpusim::ArchSpec kPresets[] = {
    gpusim::ArchSpec::nvidiaA100(),
    gpusim::ArchSpec::amdMI100(),
    gpusim::ArchSpec::testTiny(),
};

void listPresets() {
  std::printf("%-10s %-7s %5s %5s %9s %11s %12s %s\n", "name", "vendor",
              "warp", "SMs", "thr/blk", "shared/blk", "shared/SM",
              "warp barriers");
  for (const auto& arch : kPresets) {
    std::printf("%-10s %-7s %5u %5u %9u %10uK %11uK %s\n", arch.name.c_str(),
                arch.vendor == gpusim::Vendor::kNvidia ? "nvidia" : "amd",
                arch.warpSize, arch.numSMs, arch.maxThreadsPerBlock,
                arch.sharedMemPerBlock / 1024, arch.sharedMemPerSM / 1024,
                arch.hasWarpLevelBarrier ? "yes" : "no");
  }
}

void occupancyTable(uint32_t threads, uint32_t shared_bytes) {
  std::printf("occupancy for %u threads/block, %u shared bytes/block:\n",
              threads, shared_bytes);
  std::printf("%-10s %9s %12s %12s %10s\n", "arch", "warps/blk",
              "blk/SM(thr)", "blk/SM(shm)", "occupancy");
  for (const auto& arch : kPresets) {
    const gpusim::OccupancyInfo info =
        gpusim::computeOccupancy(arch, threads, shared_bytes);
    std::printf("%-10s %9u %12u %12u %9.0f%%\n", arch.name.c_str(),
                info.warpsPerBlock, info.blocksPerSmByThreads,
                info.blocksPerSmByShared, info.warpOccupancy * 100.0);
  }
}

void groupTable(uint32_t threads) {
  std::printf("SIMD group configurations for %u worker threads:\n", threads);
  for (const auto& arch : kPresets) {
    std::printf("%s (warp %u):\n", arch.name.c_str(), arch.warpSize);
    if (threads % arch.warpSize != 0) {
      std::printf("  (threads must be a multiple of the warp size)\n");
      continue;
    }
    std::printf("  %-8s %-8s %-14s %s\n", "simdlen", "groups", "groups/warp",
                "generic-SIMD");
    for (uint32_t g = 1; g <= arch.warpSize; g *= 2) {
      const bool generic_ok = arch.hasWarpLevelBarrier || g == 1;
      std::printf("  %-8u %-8u %-14u %s\n", g, threads / g,
                  arch.warpSize / g,
                  generic_ok ? "supported" : "falls back to simdlen 1");
    }
  }
}

}  // namespace

int main(int argc, char** argv) {
  if (argc <= 1) {
    listPresets();
    return 0;
  }
  if (std::strcmp(argv[1], "occupancy") == 0 && argc >= 3) {
    const auto threads = static_cast<uint32_t>(std::atoi(argv[2]));
    const uint32_t shared_bytes =
        argc >= 4 ? static_cast<uint32_t>(std::atoi(argv[3]))
                  : omprt::kDefaultSharingSpaceBytes;
    occupancyTable(threads, shared_bytes);
    return 0;
  }
  if (std::strcmp(argv[1], "groups") == 0 && argc >= 3) {
    groupTable(static_cast<uint32_t>(std::atoi(argv[2])));
    return 0;
  }
  std::fprintf(stderr,
               "usage: simtomp_info [occupancy <threads> [sharedBytes] | "
               "groups <threads>]\n");
  return 2;
}
