// simtomp_info: inspect the simulated architectures and launch shapes.
//
//   simtomp_info                      — list the architecture presets
//   simtomp_info occupancy T [S]      — occupancy table for blocks of T
//                                       threads using S bytes of shared
//                                       memory (default: the runtime's
//                                       2,048-byte sharing space)
//   simtomp_info groups T             — legal SIMD group configurations
//                                       for a team of T worker threads
//   simtomp_info --check              — how simcheck (the correctness
//                                       sanitizer) would resolve for a
//                                       launch in this environment
//   simtomp_info --tune               — how simtune (the autotuner)
//                                       would resolve: tune mode, cache
//                                       path, entry count, and hit/miss
//                                       per demo kernel
//   simtomp_info --prof               — how simprof (the profiler)
//                                       would resolve for a launch in
//                                       this environment
//   simtomp_info --counters           — the per-launch event counters
//                                       (KernelStats) with descriptions
//   simtomp_info --metrics            — the process-wide metrics
//                                       catalog (simprof registry)
//   simtomp_info --metrics=prom|json  — the registry's current values
//                                       in Prometheus text or JSON form
//                                       (the same two formats the
//                                       SIMTOMP_METRICS exit dump
//                                       writes)
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <iostream>

#include "apps/tunable.h"
#include "gpusim/arch.h"
#include "gpusim/cost_model.h"
#include "gpusim/occupancy.h"
#include "gpusim/stats.h"
#include "omprt/target.h"
#include "simcheck/report.h"
#include "simprof/metrics.h"
#include "simprof/profile.h"
#include "simtune/cache.h"
#include "simtune/tuner.h"

using namespace simtomp;

namespace {

const gpusim::ArchSpec kPresets[] = {
    gpusim::ArchSpec::nvidiaA100(),
    gpusim::ArchSpec::amdMI100(),
    gpusim::ArchSpec::testTiny(),
};

void listPresets() {
  std::printf("%-10s %-7s %5s %5s %9s %11s %12s %s\n", "name", "vendor",
              "warp", "SMs", "thr/blk", "shared/blk", "shared/SM",
              "warp barriers");
  for (const auto& arch : kPresets) {
    std::printf("%-10s %-7s %5u %5u %9u %10uK %11uK %s\n", arch.name.c_str(),
                arch.vendor == gpusim::Vendor::kNvidia ? "nvidia" : "amd",
                arch.warpSize, arch.numSMs, arch.maxThreadsPerBlock,
                arch.sharedMemPerBlock / 1024, arch.sharedMemPerSM / 1024,
                arch.hasWarpLevelBarrier ? "yes" : "no");
  }
}

void occupancyTable(uint32_t threads, uint32_t shared_bytes) {
  std::printf("occupancy for %u threads/block, %u shared bytes/block:\n",
              threads, shared_bytes);
  std::printf("%-10s %9s %12s %12s %10s\n", "arch", "warps/blk",
              "blk/SM(thr)", "blk/SM(shm)", "occupancy");
  for (const auto& arch : kPresets) {
    const gpusim::OccupancyInfo info =
        gpusim::computeOccupancy(arch, threads, shared_bytes);
    std::printf("%-10s %9u %12u %12u %9.0f%%\n", arch.name.c_str(),
                info.warpsPerBlock, info.blocksPerSmByThreads,
                info.blocksPerSmByShared, info.warpOccupancy * 100.0);
  }
}

void groupTable(uint32_t threads) {
  std::printf("SIMD group configurations for %u worker threads:\n", threads);
  for (const auto& arch : kPresets) {
    std::printf("%s (warp %u):\n", arch.name.c_str(), arch.warpSize);
    if (threads % arch.warpSize != 0) {
      std::printf("  (threads must be a multiple of the warp size)\n");
      continue;
    }
    std::printf("  %-8s %-8s %-14s %s\n", "simdlen", "groups", "groups/warp",
                "generic-SIMD");
    for (uint32_t g = 1; g <= arch.warpSize; g *= 2) {
      const bool generic_ok = arch.hasWarpLevelBarrier || g == 1;
      std::printf("  %-8u %-8u %-14u %s\n", g, threads / g,
                  arch.warpSize / g,
                  generic_ok ? "supported" : "falls back to simdlen 1");
    }
  }
}

void checkInfo() {
  const char* env = std::getenv("SIMTOMP_CHECK");
  std::printf("simcheck resolution for this environment:\n");
  std::printf("  SIMTOMP_CHECK            = %s\n",
              env != nullptr ? env : "(unset)");
  // A launch that leaves CheckConfig at its default (auto) consults
  // the environment; an explicit mode on the LaunchConfig always wins.
  const simcheck::CheckResolution auto_mode =
      simcheck::resolveCheckMode(simcheck::CheckMode::kAuto);
  std::printf("  default  %-6s launches  -> %-6s  [from %s]\n", "(auto)",
              std::string(simcheck::checkModeName(auto_mode.effective))
                  .c_str(),
              auto_mode.source);
  for (const simcheck::CheckMode mode :
       {simcheck::CheckMode::kOff, simcheck::CheckMode::kReport,
        simcheck::CheckMode::kFatal}) {
    const simcheck::CheckResolution r = simcheck::resolveCheckMode(mode);
    std::printf("  explicit %-6s launches  -> %-6s  [from %s]\n",
                std::string(simcheck::checkModeName(mode)).c_str(),
                std::string(simcheck::checkModeName(r.effective)).c_str(),
                r.source);
  }
  std::printf(
      "accepted SIMTOMP_CHECK values: 0/off, 1/on/report, 2/fatal\n");
}

void tuneInfo() {
  const char* env = std::getenv("SIMTOMP_TUNE");
  const char* cache_env = std::getenv("SIMTOMP_TUNE_CACHE");
  std::printf("simtune resolution for this environment:\n");
  std::printf("  SIMTOMP_TUNE             = %s\n",
              env != nullptr ? env : "(unset)");
  std::printf("  SIMTOMP_TUNE_CACHE       = %s\n",
              cache_env != nullptr ? cache_env : "(unset)");
  const simtune::TuneResolution auto_mode =
      simtune::resolveTuneMode(simtune::TuneMode::kAuto);
  std::printf("  default  %-6s launches  -> %-6s  [from %s]\n", "(auto)",
              std::string(simtune::tuneModeName(auto_mode.effective)).c_str(),
              auto_mode.source);
  for (const simtune::TuneMode mode :
       {simtune::TuneMode::kOff, simtune::TuneMode::kCache,
        simtune::TuneMode::kTune}) {
    const simtune::TuneResolution r = simtune::resolveTuneMode(mode);
    std::printf("  explicit %-6s launches  -> %-6s  [from %s]\n",
                std::string(simtune::tuneModeName(mode)).c_str(),
                std::string(simtune::tuneModeName(r.effective)).c_str(),
                r.source);
  }
  std::printf(
      "accepted SIMTOMP_TUNE values: 0/off, 1/on/cache, 2/tune/trial\n");

  simtune::TuneCache cache(simtune::resolveCachePath(""));
  if (cache.persistent()) {
    const Status loaded = cache.load();
    std::printf("cache: %s (%zu entries)%s\n", cache.path().c_str(),
                cache.size(),
                loaded.isOk() ? "" : "  [load failed: malformed file]");
  } else {
    std::printf("cache: (in-memory; set SIMTOMP_TUNE_CACHE to persist)\n");
  }

  // Demo-kernel resolution: would a launch of each tunable app, on the
  // default A100 device with the stock cost model, hit the cache?
  const gpusim::ArchSpec arch = gpusim::ArchSpec::nvidiaA100();
  const gpusim::CostModel cost{};
  std::printf("demo kernels (%s, cost %s):\n", arch.name.c_str(),
              simtune::costFingerprint(cost).c_str());
  for (const auto& app : apps::tunableCorpus(arch, /*small=*/false)) {
    const simtune::TuneKey key =
        simtune::makeTuneKey(app.name, arch, cost, app.tripCount);
    const auto hit = cache.lookup(key);
    if (hit.has_value()) {
      std::printf("  %-16s hit   %s\n", app.name.c_str(),
                  hit->toString().c_str());
    } else {
      std::printf("  %-16s miss  (b%u; run simtomp_tune to fill)\n",
                  app.name.c_str(), key.bucket);
    }
  }
}

void profInfo() {
  const char* env = std::getenv("SIMTOMP_PROF");
  std::printf("simprof resolution for this environment:\n");
  std::printf("  SIMTOMP_PROF             = %s\n",
              env != nullptr ? env : "(unset)");
  const simprof::ProfileResolution auto_mode =
      simprof::resolveProfileMode(simprof::ProfileMode::kAuto);
  std::printf("  default  %-6s launches  -> %-6s  [from %s]\n", "(auto)",
              std::string(simprof::profileModeName(auto_mode.effective))
                  .c_str(),
              auto_mode.source);
  for (const simprof::ProfileMode mode :
       {simprof::ProfileMode::kOff, simprof::ProfileMode::kOn}) {
    const simprof::ProfileResolution r = simprof::resolveProfileMode(mode);
    std::printf("  explicit %-6s launches  -> %-6s  [from %s]\n",
                std::string(simprof::profileModeName(mode)).c_str(),
                std::string(simprof::profileModeName(r.effective)).c_str(),
                r.source);
  }
  std::printf("accepted SIMTOMP_PROF values: 0/off, 1/on\n");
  std::printf(
      "SIMTOMP_METRICS=<path> dumps the metrics registry at exit\n");
}

// The next two render straight from the authoritative tables
// (gpusim::counterName/counterDescription and simprof::allMetricDefs),
// so this listing cannot drift from what the runtime records.
void counterTable() {
  std::printf("per-launch event counters (KernelStats.counters):\n");
  std::printf("  %-22s %s\n", "name", "description");
  for (size_t i = 0; i < gpusim::kNumCounters; ++i) {
    const auto c = static_cast<gpusim::Counter>(i);
    std::printf("  %-22s %s\n",
                std::string(gpusim::counterName(c)).c_str(),
                std::string(gpusim::counterDescription(c)).c_str());
  }
}

void metricTable() {
  std::printf("process-wide metrics (simprof registry):\n");
  std::printf("  %-42s %-9s %s\n", "name", "type", "description");
  for (const simprof::MetricDef& def : simprof::allMetricDefs()) {
    std::printf("  %-42s %-9s %s\n", std::string(def.name).c_str(),
                std::string(simprof::metricTypeName(def.type)).c_str(),
                std::string(def.help).c_str());
  }
}

}  // namespace

int main(int argc, char** argv) {
  if (argc <= 1) {
    listPresets();
    return 0;
  }
  if (std::strcmp(argv[1], "occupancy") == 0 && argc >= 3) {
    const auto threads = static_cast<uint32_t>(std::atoi(argv[2]));
    const uint32_t shared_bytes =
        argc >= 4 ? static_cast<uint32_t>(std::atoi(argv[3]))
                  : omprt::kDefaultSharingSpaceBytes;
    occupancyTable(threads, shared_bytes);
    return 0;
  }
  if (std::strcmp(argv[1], "groups") == 0 && argc >= 3) {
    groupTable(static_cast<uint32_t>(std::atoi(argv[2])));
    return 0;
  }
  if (std::strcmp(argv[1], "--check") == 0 ||
      std::strcmp(argv[1], "check") == 0) {
    checkInfo();
    return 0;
  }
  if (std::strcmp(argv[1], "--tune") == 0 ||
      std::strcmp(argv[1], "tune") == 0) {
    tuneInfo();
    return 0;
  }
  if (std::strcmp(argv[1], "--prof") == 0 ||
      std::strcmp(argv[1], "prof") == 0) {
    profInfo();
    return 0;
  }
  if (std::strcmp(argv[1], "--counters") == 0 ||
      std::strcmp(argv[1], "counters") == 0) {
    counterTable();
    return 0;
  }
  if (std::strcmp(argv[1], "--metrics") == 0 ||
      std::strcmp(argv[1], "metrics") == 0) {
    metricTable();
    return 0;
  }
  if (std::strcmp(argv[1], "--metrics=prom") == 0 ||
      std::strcmp(argv[1], "metrics=prom") == 0) {
    simprof::MetricsRegistry::global().writePrometheus(std::cout);
    return 0;
  }
  if (std::strcmp(argv[1], "--metrics=json") == 0 ||
      std::strcmp(argv[1], "metrics=json") == 0) {
    simprof::MetricsRegistry::global().writeJson(std::cout);
    return 0;
  }
  std::fprintf(stderr,
               "usage: simtomp_info [occupancy <threads> [sharedBytes] | "
               "groups <threads> | --check | --tune | --prof | --counters | "
               "--metrics | --metrics=prom | --metrics=json]\n");
  return 2;
}
