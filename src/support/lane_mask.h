// Lane masks: bit sets over the lanes of a warp/wavefront.
//
// A LaneMask is 64 bits wide so the same type serves NVIDIA-style
// 32-lane warps and AMD-style 64-lane wavefronts (paper section 5.4.1).
// Bit i set means lane i participates in the operation.
#pragma once

#include <bit>
#include <cstdint>
#include <string>

namespace simtomp {

using LaneMask = uint64_t;

inline constexpr LaneMask kEmptyMask = 0;

/// Mask with lanes [0, width) set. width==64 yields all-ones.
constexpr LaneMask fullMask(unsigned width) {
  if (width >= 64) return ~LaneMask{0};
  return (LaneMask{1} << width) - 1;
}

/// Mask for the contiguous lane range [lo, lo+width).
constexpr LaneMask rangeMask(unsigned lo, unsigned width) {
  return fullMask(width) << lo;
}

constexpr bool laneIn(LaneMask mask, unsigned lane) {
  return (mask >> lane) & 1u;
}

constexpr int popcount(LaneMask mask) { return std::popcount(mask); }

/// Lowest set lane, or -1 when the mask is empty.
constexpr int lowestLane(LaneMask mask) {
  if (mask == 0) return -1;
  return std::countr_zero(mask);
}

/// "0b0101..." rendering (lane 0 rightmost), width bits.
std::string maskToString(LaneMask mask, unsigned width);

}  // namespace simtomp
