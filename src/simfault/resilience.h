// simfault: resilience policy and report types.
//
// hostrt::DeviceManager uses these to drive the graceful-degradation
// chain — retry the same shape (with capped exponential backoff for
// transient faults), fall back from SIMD to the generic parallel mode,
// and finally run a host-serial reference execution — and to publish
// what happened as a per-device ResilienceReport, the same way
// Device::lastCheckReport() publishes simcheck findings.
//
// Everything here is deterministic by construction: backoff delays are
// *modeled* (recorded in the report, never slept on wall-clock), shape
// strings exclude the host worker count, and attempts are recorded in
// the order the manager made them — so the same fault plan yields
// byte-identical reports for any SIMTOMP_HOST_WORKERS.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "support/status.h"

namespace simtomp::simfault {

/// Device health as seen by the DeviceManager's state machine.
enum class DeviceHealth : uint8_t {
  kHealthy = 0,  ///< no fault observed since the last reset
  kFaulted,      ///< last launch failed; reset required before reuse
  kReset,        ///< reset completed; next successful launch -> healthy
  kQuarantined,  ///< circuit breaker opened; no traffic until cool-down
};

/// Which rung of the degradation chain produced a launch attempt.
enum class RecoveryStage : uint8_t {
  kInitial = 0,   ///< the originally requested shape
  kRetry,         ///< same shape again after a device reset + backoff
  kModeFallback,  ///< SIMD -> generic parallel mode, simdlen 1
  kHostSerial,    ///< host-serial reference execution (1 team, 1 warp)
};

/// Whether the manager runs the resilient launch path at all.
enum class ResilienceMode : uint8_t {
  kAuto = 0,  ///< resolve from SIMTOMP_RESILIENCE (default: on)
  kOff,       ///< plain launch; failures surface directly
  kOn,        ///< retry / fallback chain per ResiliencePolicy
};

[[nodiscard]] std::string_view deviceHealthName(DeviceHealth health);
[[nodiscard]] std::string_view recoveryStageName(RecoveryStage stage);
[[nodiscard]] std::string_view resilienceModeName(ResilienceMode mode);

/// Knobs of the degradation chain.
struct ResiliencePolicy {
  uint32_t maxRetries = 2;     ///< same-shape retries after the initial try
  uint32_t backoffBaseMs = 1;  ///< modeled delay before retry 1
  uint32_t backoffCapMs = 64;  ///< modeled exponential backoff cap
  bool modeFallback = true;    ///< allow SIMD -> generic fallback
  bool hostSerial = true;      ///< allow the host-serial reference rung
};

/// How a ResilienceMode request resolved, for logs and simtomp_info.
struct ResilienceResolution {
  ResilienceMode effective = ResilienceMode::kOn;  ///< never kAuto
  const char* source = "default";  ///< "explicit"|"SIMTOMP_RESILIENCE"|...
  std::string envValue;
};

/// Resolve `requested` against SIMTOMP_RESILIENCE ("0"/"off" -> off,
/// "1"/"on" -> on; unset or unrecognized -> on). Explicit wins.
[[nodiscard]] ResilienceResolution resolveResilienceMode(
    ResilienceMode requested);

/// The modeled capped-exponential-backoff schedule every retry path in
/// the repo shares: min(base << (attempt - 1), cap) for attempt >= 1
/// (attempt 0 returns 0 — the initial try never waits). The shift
/// saturates at the cap instead of overflowing, so any attempt count
/// is safe. Units are the caller's (ms for the device-manager chain,
/// modeled cycles for simserve re-dispatch).
[[nodiscard]] uint64_t cappedExponentialBackoff(uint64_t base, uint64_t cap,
                                                uint32_t attempt);

/// One launch attempt in the chain, as recorded in the report.
struct AttemptRecord {
  RecoveryStage stage = RecoveryStage::kInitial;
  std::string shape;      ///< deterministic shape text (no worker count)
  StatusCode code = StatusCode::kOk;
  std::string message;    ///< status message when the attempt failed
  uint32_t backoffMs = 0; ///< modeled delay taken before this attempt

  [[nodiscard]] std::string toString() const;
};

/// Per-launch resilience outcome, published by the DeviceManager like
/// lastCheckReport(). toString() is the byte-identity surface CI diffs.
struct ResilienceReport {
  std::vector<AttemptRecord> attempts;
  uint32_t resets = 0;      ///< device resets performed during the chain
  bool recovered = false;   ///< succeeded after at least one failure
  std::string healthTrail;  ///< e.g. "healthy>faulted>reset>healthy"
  StatusCode finalCode = StatusCode::kOk;
  std::string finalMessage;

  [[nodiscard]] bool succeeded() const {
    return finalCode == StatusCode::kOk;
  }
  [[nodiscard]] std::string toString() const;
};

}  // namespace simtomp::simfault
