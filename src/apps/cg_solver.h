// Conjugate-gradient proxy application.
//
// The paper evaluates on "HPC proxy applications that mirror real-world
// science codes"; CG on a 5-point Poisson matrix is the classic one: a
// multi-kernel solver whose hot loop alternates a sparse matrix-vector
// product (the paper's 3-level sparse_matvec shape), dot products
// (hierarchical reductions: lanes -> groups -> team -> device) and
// vector updates, with all data resident on the device between kernel
// launches.
#pragma once

#include <cstdint>
#include <vector>

#include "apps/common.h"
#include "apps/csr.h"
#include "gpusim/device.h"
#include "support/status.h"

namespace simtomp::apps {

struct CgWorkload {
  CsrMatrix A;             ///< SPD 5-point Laplacian, (grid^2 x grid^2)
  std::vector<double> b;   ///< right-hand side
};

/// Build the 2-D Poisson problem on a grid x grid mesh.
CgWorkload generateCgPoisson(uint32_t grid, uint64_t seed);

struct CgOptions {
  uint32_t maxIterations = 200;
  double relativeTolerance = 1e-8;
  uint32_t numTeams = 16;
  uint32_t threadsPerTeam = 128;
  /// SIMD group size for the SpMV rows (1 = no third level).
  uint32_t simdlen = 4;
};

struct CgResult {
  bool converged = false;
  bool verified = false;       ///< ||Ax - b|| / ||b|| below 10x tolerance
  uint32_t iterations = 0;
  double relativeResidual = 0.0;
  uint64_t totalCycles = 0;    ///< summed over every kernel launch
  uint64_t spmvCycles = 0;
  uint64_t dotCycles = 0;
  uint64_t axpyCycles = 0;
  uint32_t kernelLaunches = 0;
};

Result<CgResult> runCg(gpusim::Device& device, const CgWorkload& w,
                       const CgOptions& options);

}  // namespace simtomp::apps
