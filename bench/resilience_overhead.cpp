// Resilience overhead guard: the watchdog and fault-injection hooks
// ride every launch (gpusim::LaunchConfig carries them even when no
// plan is armed), so this bench pins their cost when *nothing* is
// injected. Modeled cycles must be byte-identical with the watchdog on
// or off — step accounting is host-side bookkeeping, never charged to
// the simulated device — and the host wall-clock delta is the real
// price, recorded so the trajectory is tracked across PRs.
#include <benchmark/benchmark.h>

#include <cstdlib>

#include "bench_common.h"
#include "dsl/dsl.h"
#include "simfault/fault.h"

namespace {

using namespace simtomp;
using bench::checkOk;
using bench::Row;

struct RunResult {
  uint64_t cycles = 0;
  double hostMs = 0.0;
};

/// The fig9-style three-level kernel, large enough that per-step
/// watchdog accounting would show up if it cost anything meaningful.
RunResult runKernel(uint64_t watchdogSteps) {
  gpusim::Device dev;
  dsl::LaunchSpec spec;
  spec.numTeams = 64;
  spec.threadsPerTeam = 128;
  spec.teamsMode = omprt::ExecMode::kSPMD;
  spec.parallelMode = omprt::ExecMode::kSPMD;
  spec.simdlen = 32;
  spec.faultSpec = "off";  // pin injection off regardless of env
  spec.watchdogSteps = watchdogSteps;
  bench::WallTimer timer;
  auto stats = dsl::targetTeamsDistributeParallelFor(
      dev, spec, 8192, [](dsl::OmpContext& ctx, uint64_t) {
        dsl::simd(ctx, 64,
                  [](dsl::OmpContext& c, uint64_t) { c.gpu().work(4); });
      });
  RunResult out;
  out.cycles = checkOk(stats, "resilience overhead kernel").cycles;
  out.hostMs = timer.elapsedMs();
  return out;
}

void BM_Resilience(benchmark::State& state) {
  const uint64_t steps = state.range(0) != 0 ? 0 : simfault::kWatchdogOff;
  uint64_t cycles = 0;
  for (auto _ : state) cycles = runKernel(steps).cycles;
  state.counters["sim_cycles"] = static_cast<double>(cycles);
}
BENCHMARK(BM_Resilience)
    ->Arg(0)
    ->Arg(1)
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  ::unsetenv("SIMTOMP_FAULT");
  ::unsetenv("SIMTOMP_WATCHDOG");
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();

  const RunResult off = runKernel(simfault::kWatchdogOff);
  const RunResult on = runKernel(0);  // auto -> default step budget
  if (off.cycles != on.cycles) {
    std::fprintf(stderr,
                 "FATAL: watchdog perturbed modeled cycles: off=%llu on=%llu\n",
                 static_cast<unsigned long long>(off.cycles),
                 static_cast<unsigned long long>(on.cycles));
    std::abort();
  }
  bench::printTable(
      "Resilience overhead (no fault plan armed)", "watchdog off", off.cycles,
      {{"watchdog on (default budget)", on.cycles,
        static_cast<double>(off.cycles) / static_cast<double>(on.cycles),
        on.hostMs},
       {"watchdog off", off.cycles, 1.0, off.hostMs}});
  (void)bench::writeBenchJson("resilience");
  return 0;
}
