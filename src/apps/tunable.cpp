#include "apps/tunable.h"

#include <memory>
#include <utility>

#include "apps/batched_gemm.h"
#include "apps/csr.h"
#include "apps/ideal_kernel.h"
#include "apps/laplace3d.h"
#include "apps/muram.h"
#include "apps/sparse_matvec.h"
#include "apps/su3.h"

namespace simtomp::apps {
namespace {

using omprt::ExecMode;
using simtune::TuneAxes;
using simtune::TuneCandidate;

std::vector<uint32_t> simdlenAxis(const gpusim::ArchSpec& arch, bool small) {
  if (small) return {1, 2, 8, std::min(32u, arch.warpSize)};
  std::vector<uint32_t> lens;
  for (uint32_t len = 1; len <= arch.warpSize; len *= 2) lens.push_back(len);
  return lens;
}

/// Map a candidate onto the SimdMode-style apps (laplace3d, muram):
/// simdlen 1 is the 2-level No-SIMD baseline, otherwise the parallel
/// mode selects SPMD-SIMD vs generic-SIMD.
SimdMode candidateSimdMode(const TuneCandidate& c) {
  if (c.simdlen <= 1) return SimdMode::kNoSimd;
  return c.parallelMode == ExecMode::kSPMD ? SimdMode::kSpmdSimd
                                           : SimdMode::kGenericSimd;
}

Result<gpusim::KernelStats> finish(Result<AppRunResult> run,
                                   const char* app) {
  if (!run.isOk()) return run.status();
  if (!run.value().verified) {
    return Status::internal(std::string(app) +
                            " trial produced wrong results");
  }
  return run.value().stats;
}

}  // namespace

TunableApp tunableSpmv(const gpusim::ArchSpec& arch, bool small) {
  CsrGenConfig gen;
  gen.numRows = small ? 512 : 4096;
  gen.numCols = gen.numRows;
  gen.meanRowLength = 8;
  gen.maxRowLength = 64;
  gen.seed = 42;
  const auto A = std::make_shared<const CsrMatrix>(generateCsr(gen));

  TunableApp app;
  app.name = "spmv";
  app.tripCount = A->numRows;
  // The teams mode doubles as the paper's structural axis: generic
  // teams select the 2-level variant, SPMD teams the 3-level one
  // (combined directives are SPMD, paper 3.2). The parallel region is
  // generic, as the paper runs sparse_matvec.
  app.axes.teamsModes = {ExecMode::kSPMD, ExecMode::kGeneric};
  app.axes.parallelModes = {ExecMode::kGeneric};
  app.axes.numTeams = small ? std::vector<uint32_t>{64}
                            : std::vector<uint32_t>{64, arch.numSMs};
  app.axes.threadsPerTeam = small ? std::vector<uint32_t>{128, 256}
                                  : std::vector<uint32_t>{32, 128, 256};
  app.axes.simdlens = simdlenAxis(arch, small);
  app.axes.scheduleChunks = {0};
  app.handPicked = {ExecMode::kSPMD, ExecMode::kGeneric, 64, 256, 8, 0};
  app.trial = [A](gpusim::Device& scratch, const TuneCandidate& c,
                  const simcheck::CheckConfig& check) {
    SpmvOptions options;
    options.variant = c.teamsMode == ExecMode::kGeneric
                          ? SpmvVariant::kTwoLevel
                          : SpmvVariant::kThreeLevelAtomic;
    options.numTeams = c.numTeams;
    options.threadsPerTeam = c.threadsPerTeam;
    options.simdlen = c.simdlen;
    options.parallelMode = c.parallelMode;
    options.hostWorkers = 1;  // trials are already fanned out
    (void)check;  // runSpmv launches resolve SIMTOMP_CHECK themselves
    return finish(runSpmv(scratch, *A, options), "spmv");
  };
  return app;
}

TunableApp tunableSu3(const gpusim::ArchSpec& arch, bool small) {
  const auto w = std::make_shared<const Su3Workload>(
      generateSu3(small ? 256 : 5120, /*seed=*/3));

  TunableApp app;
  app.name = "su3";
  app.tripCount = w->numSites;
  // runSu3 fixes both teams and parallel to SPMD (paper 6.3).
  app.axes.teamsModes = {ExecMode::kSPMD};
  app.axes.parallelModes = {ExecMode::kSPMD};
  app.axes.numTeams = small ? std::vector<uint32_t>{32}
                            : std::vector<uint32_t>{32, 64, arch.numSMs};
  app.axes.threadsPerTeam = small ? std::vector<uint32_t>{128}
                                  : std::vector<uint32_t>{128, 256};
  app.axes.simdlens = simdlenAxis(arch, small);
  app.axes.scheduleChunks = {0};
  app.handPicked = {ExecMode::kSPMD, ExecMode::kSPMD, 32, 128, 1, 0};
  app.trial = [w](gpusim::Device& scratch, const TuneCandidate& c,
                  const simcheck::CheckConfig& check) {
    Su3Options options;
    options.numTeams = c.numTeams;
    options.threadsPerTeam = c.threadsPerTeam;
    options.simdlen = c.simdlen;
    (void)check;
    return finish(runSu3(scratch, *w, options), "su3");
  };
  return app;
}

TunableApp tunableIdeal(const gpusim::ArchSpec& arch, bool small) {
  const auto w = std::make_shared<const IdealWorkload>(
      generateIdeal(small ? 128 : 432, 32, /*seed=*/5));

  TunableApp app;
  app.name = "ideal";
  app.tripCount = w->outerTrip;
  // runIdeal fixes SPMD teams + generic-SIMD inner loop (paper 6.3).
  app.axes.teamsModes = {ExecMode::kSPMD};
  app.axes.parallelModes = {ExecMode::kGeneric};
  app.axes.numTeams = small ? std::vector<uint32_t>{arch.numSMs}
                            : std::vector<uint32_t>{arch.numSMs,
                                                    2 * arch.numSMs};
  app.axes.threadsPerTeam = small ? std::vector<uint32_t>{128}
                                  : std::vector<uint32_t>{128, 256};
  app.axes.simdlens = simdlenAxis(arch, small);
  app.axes.scheduleChunks = {0};
  app.handPicked = {ExecMode::kSPMD, ExecMode::kGeneric, arch.numSMs, 128, 1,
                    0};
  app.trial = [w](gpusim::Device& scratch, const TuneCandidate& c,
                  const simcheck::CheckConfig& check) {
    IdealOptions options;
    options.numTeams = c.numTeams;
    options.threadsPerTeam = c.threadsPerTeam;
    options.simdlen = c.simdlen;
    options.flopsPerElement = 2;  // the Fig. 9 setting
    (void)check;
    return finish(runIdeal(scratch, *w, options), "ideal");
  };
  return app;
}

TunableApp tunableLaplace3d(const gpusim::ArchSpec& arch, bool small) {
  const auto w = std::make_shared<const Laplace3dWorkload>(
      generateLaplace3d(small ? 18 : 34, /*seed=*/11));

  TunableApp app;
  app.name = "laplace3d";
  app.tripCount =
      static_cast<uint64_t>(w->nx - 2) * static_cast<uint64_t>(w->ny - 2);
  app.axes.teamsModes = {ExecMode::kSPMD};  // Fig. 10: teams always SPMD
  app.axes.parallelModes = {ExecMode::kSPMD, ExecMode::kGeneric};
  app.axes.numTeams = small ? std::vector<uint32_t>{32}
                            : std::vector<uint32_t>{32, arch.numSMs};
  app.axes.threadsPerTeam = small ? std::vector<uint32_t>{128}
                                  : std::vector<uint32_t>{128, 256};
  app.axes.simdlens = small ? std::vector<uint32_t>{1, 8, 32}
                            : simdlenAxis(arch, false);
  app.axes.scheduleChunks = {0};
  app.handPicked = {ExecMode::kSPMD, ExecMode::kSPMD, 32, 128, 1, 0};
  app.trial = [w](gpusim::Device& scratch, const TuneCandidate& c,
                  const simcheck::CheckConfig& check) {
    Laplace3dOptions options;
    options.mode = candidateSimdMode(c);
    options.numTeams = c.numTeams;
    options.threadsPerTeam = c.threadsPerTeam;
    options.simdlen = c.simdlen;
    (void)check;
    return finish(runLaplace3d(scratch, *w, options), "laplace3d");
  };
  return app;
}

namespace {

TunableApp tunableMuram(const gpusim::ArchSpec& arch, bool small,
                        bool interpol) {
  const uint32_t n = small ? 16 : 32;
  const auto w = std::make_shared<const MuramWorkload>(
      generateMuram(n, n, n, /*seed=*/13));

  TunableApp app;
  app.name = interpol ? "muram_interpol" : "muram_transpose";
  app.tripCount = static_cast<uint64_t>(w->nx) * w->ny;
  app.axes.teamsModes = {ExecMode::kSPMD};
  app.axes.parallelModes = {ExecMode::kSPMD, ExecMode::kGeneric};
  app.axes.numTeams = small ? std::vector<uint32_t>{32}
                            : std::vector<uint32_t>{32, arch.numSMs};
  app.axes.threadsPerTeam = small ? std::vector<uint32_t>{128}
                                  : std::vector<uint32_t>{128, 256};
  app.axes.simdlens = small ? std::vector<uint32_t>{1, 8, 32}
                            : simdlenAxis(arch, false);
  app.axes.scheduleChunks = {0};
  app.handPicked = {ExecMode::kSPMD, ExecMode::kSPMD, 32, 128, 1, 0};
  app.trial = [w, interpol](gpusim::Device& scratch, const TuneCandidate& c,
                            const simcheck::CheckConfig& check) {
    MuramOptions options;
    options.mode = candidateSimdMode(c);
    options.numTeams = c.numTeams;
    options.threadsPerTeam = c.threadsPerTeam;
    options.simdlen = c.simdlen;
    (void)check;
    return finish(interpol ? runMuramInterpol(scratch, *w, options)
                           : runMuramTranspose(scratch, *w, options),
                  "muram");
  };
  return app;
}

}  // namespace

TunableApp tunableMuramTranspose(const gpusim::ArchSpec& arch, bool small) {
  return tunableMuram(arch, small, /*interpol=*/false);
}

TunableApp tunableMuramInterpol(const gpusim::ArchSpec& arch, bool small) {
  return tunableMuram(arch, small, /*interpol=*/true);
}

TunableApp tunableBatchedGemm(const gpusim::ArchSpec& arch, bool small) {
  const auto w = std::make_shared<const BatchedGemmWorkload>(
      generateBatchedGemm(small ? 256 : 1024, 4, /*seed=*/17));

  TunableApp app;
  app.name = "batched_gemm";
  app.tripCount = w->batch;
  app.axes.teamsModes = {ExecMode::kSPMD};  // runBatchedGemm: SPMD teams
  app.axes.parallelModes = {ExecMode::kSPMD, ExecMode::kGeneric};
  app.axes.numTeams = small ? std::vector<uint32_t>{32}
                            : std::vector<uint32_t>{32, arch.numSMs};
  app.axes.threadsPerTeam = small ? std::vector<uint32_t>{128}
                                  : std::vector<uint32_t>{128, 256};
  app.axes.simdlens = small ? std::vector<uint32_t>{1, 4, 8}
                            : std::vector<uint32_t>{1, 2, 4, 8, 16};
  app.axes.scheduleChunks = {0};
  app.handPicked = {ExecMode::kSPMD, ExecMode::kGeneric, 32, 128, 1, 0};
  app.trial = [w](gpusim::Device& scratch, const TuneCandidate& c,
                  const simcheck::CheckConfig& check) {
    BatchedGemmOptions options;
    options.numTeams = c.numTeams;
    options.threadsPerTeam = c.threadsPerTeam;
    options.simdlen = c.simdlen;
    options.parallelMode = c.parallelMode;
    (void)check;
    return finish(runBatchedGemm(scratch, *w, options), "batched_gemm");
  };
  return app;
}

std::vector<TunableApp> tunableCorpus(const gpusim::ArchSpec& arch,
                                      bool small) {
  std::vector<TunableApp> corpus;
  corpus.push_back(tunableSpmv(arch, small));
  corpus.push_back(tunableSu3(arch, small));
  corpus.push_back(tunableIdeal(arch, small));
  corpus.push_back(tunableLaplace3d(arch, small));
  corpus.push_back(tunableMuramTranspose(arch, small));
  corpus.push_back(tunableMuramInterpol(arch, small));
  corpus.push_back(tunableBatchedGemm(arch, small));
  return corpus;
}

TunableApp tunableByName(const std::string& name,
                         const gpusim::ArchSpec& arch, bool small) {
  for (TunableApp& app : tunableCorpus(arch, small)) {
    if (app.name == name) return std::move(app);
  }
  SIMTOMP_CHECK(false, "unknown tunable app: " + name);
  return {};
}

}  // namespace simtomp::apps
