// Unit tests for the outlined-function dispatch cascade (section 5.5).
#include <gtest/gtest.h>

#include "gpusim/block.h"
#include "omprt/dispatcher.h"

namespace simtomp::omprt {
namespace {

using gpusim::Counter;

void fnA(OmpContext&, void**) {}
void fnB(OmpContext&, void**) {}
void fnC(OmpContext&, void**) {}

class DispatcherTest : public ::testing::Test {
 protected:
  DispatcherTest()
      : arch_(gpusim::ArchSpec::testTiny()),
        mem_(1 << 16),
        block_(arch_, cost_, mem_, 0, 1, 32) {}

  gpusim::ThreadCtx& t() { return block_.thread(0); }

  gpusim::ArchSpec arch_;
  gpusim::CostModel cost_;
  gpusim::DeviceMemory mem_;
  gpusim::BlockEngine block_;
  Dispatcher dispatcher_;
};

TEST_F(DispatcherTest, RegistrationIsIdempotent) {
  dispatcher_.registerOutlined(reinterpret_cast<const void*>(&fnA));
  dispatcher_.registerOutlined(reinterpret_cast<const void*>(&fnA));
  EXPECT_EQ(dispatcher_.size(), 1u);
  EXPECT_TRUE(dispatcher_.isKnown(reinterpret_cast<const void*>(&fnA)));
}

TEST_F(DispatcherTest, NullRegistrationIgnored) {
  dispatcher_.registerOutlined(nullptr);
  EXPECT_EQ(dispatcher_.size(), 0u);
}

TEST_F(DispatcherTest, CascadeHitChargesSmallCost) {
  dispatcher_.registerOutlined(reinterpret_cast<const void*>(&fnA));
  EXPECT_TRUE(
      dispatcher_.chargeDispatch(t(), reinterpret_cast<const void*>(&fnA)));
  EXPECT_EQ(t().busy(), cost_.dispatchCascade);
  EXPECT_EQ(t().counters().get(Counter::kDispatchCascade), 1u);
}

TEST_F(DispatcherTest, LaterCascadePositionsCostMore) {
  dispatcher_.registerOutlined(reinterpret_cast<const void*>(&fnA));
  dispatcher_.registerOutlined(reinterpret_cast<const void*>(&fnB));
  dispatcher_.registerOutlined(reinterpret_cast<const void*>(&fnC));
  const uint64_t before = t().busy();
  dispatcher_.chargeDispatch(t(), reinterpret_cast<const void*>(&fnC));
  EXPECT_EQ(t().busy() - before, cost_.dispatchCascade + 2 * cost_.aluOp);
}

TEST_F(DispatcherTest, UnknownFunctionFallsBackToIndirect) {
  dispatcher_.registerOutlined(reinterpret_cast<const void*>(&fnA));
  EXPECT_FALSE(
      dispatcher_.chargeDispatch(t(), reinterpret_cast<const void*>(&fnB)));
  EXPECT_EQ(t().busy(), cost_.dispatchIndirect);
  EXPECT_EQ(t().counters().get(Counter::kDispatchIndirect), 1u);
}

TEST_F(DispatcherTest, IndirectCostsMoreThanCascade) {
  EXPECT_GT(cost_.dispatchIndirect, cost_.dispatchCascade);
}

TEST_F(DispatcherTest, CascadeCapStopsRegistration) {
  // Fill past the cap with synthetic addresses.
  char blob[Dispatcher::kMaxCascade + 8];
  for (size_t i = 0; i < Dispatcher::kMaxCascade + 8; ++i) {
    dispatcher_.registerOutlined(&blob[i]);
  }
  EXPECT_EQ(dispatcher_.size(), Dispatcher::kMaxCascade);
}

TEST_F(DispatcherTest, ClearEmptiesCascade) {
  dispatcher_.registerOutlined(reinterpret_cast<const void*>(&fnA));
  dispatcher_.clear();
  EXPECT_EQ(dispatcher_.size(), 0u);
  EXPECT_FALSE(dispatcher_.isKnown(reinterpret_cast<const void*>(&fnA)));
}

TEST_F(DispatcherTest, GlobalSingletonIsStable) {
  Dispatcher& a = Dispatcher::global();
  Dispatcher& b = Dispatcher::global();
  EXPECT_EQ(&a, &b);
}

TEST(ScopedRegistrationTest, RegistersInGlobal) {
  Dispatcher::global().clear();
  {
    ScopedOutlinedRegistration reg(reinterpret_cast<const void*>(&fnA));
    EXPECT_TRUE(
        Dispatcher::global().isKnown(reinterpret_cast<const void*>(&fnA)));
  }
  Dispatcher::global().clear();
}

}  // namespace
}  // namespace simtomp::omprt
