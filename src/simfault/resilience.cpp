#include "simfault/resilience.h"

#include <algorithm>
#include <cstdlib>

namespace simtomp::simfault {

std::string_view deviceHealthName(DeviceHealth health) {
  switch (health) {
    case DeviceHealth::kHealthy: return "healthy";
    case DeviceHealth::kFaulted: return "faulted";
    case DeviceHealth::kReset: return "reset";
    case DeviceHealth::kQuarantined: return "quarantined";
  }
  return "unknown";
}

uint64_t cappedExponentialBackoff(uint64_t base, uint64_t cap,
                                  uint32_t attempt) {
  if (attempt == 0 || base == 0) return 0;
  const uint32_t shift = attempt - 1;
  // base << shift would overflow past 63 shifts (and exceeds any sane
  // cap long before that): saturate at the cap instead.
  if (shift >= 64 || (base << shift) >> shift != base) return cap;
  return std::min(base << shift, cap);
}

std::string_view recoveryStageName(RecoveryStage stage) {
  switch (stage) {
    case RecoveryStage::kInitial: return "initial";
    case RecoveryStage::kRetry: return "retry";
    case RecoveryStage::kModeFallback: return "mode_fallback";
    case RecoveryStage::kHostSerial: return "host_serial";
  }
  return "unknown";
}

std::string_view resilienceModeName(ResilienceMode mode) {
  switch (mode) {
    case ResilienceMode::kAuto: return "auto";
    case ResilienceMode::kOff: return "off";
    case ResilienceMode::kOn: return "on";
  }
  return "unknown";
}

ResilienceResolution resolveResilienceMode(ResilienceMode requested) {
  ResilienceResolution resolution;
  if (requested != ResilienceMode::kAuto) {
    resolution.effective = requested;
    resolution.source = "explicit";
    return resolution;
  }
  if (const char* env = std::getenv("SIMTOMP_RESILIENCE")) {
    resolution.envValue = env;
    resolution.source = "SIMTOMP_RESILIENCE";
    if (resolution.envValue == "0" || resolution.envValue == "off") {
      resolution.effective = ResilienceMode::kOff;
    } else {
      resolution.effective = ResilienceMode::kOn;
    }
    return resolution;
  }
  resolution.effective = ResilienceMode::kOn;
  return resolution;
}

std::string AttemptRecord::toString() const {
  std::string out(recoveryStageName(stage));
  out += " [";
  out += shape;
  out += "]";
  if (backoffMs != 0) {
    out += " backoff=";
    out += std::to_string(backoffMs);
    out += "ms";
  }
  out += " -> ";
  out += statusCodeName(code);
  if (!message.empty()) {
    out += ": ";
    out += message;
  }
  return out;
}

std::string ResilienceReport::toString() const {
  std::string out = "resilience: ";
  out += statusCodeName(finalCode);
  out += recovered ? " (recovered)" : "";
  out += "\n  attempts=";
  out += std::to_string(attempts.size());
  out += " resets=";
  out += std::to_string(resets);
  out += " health=";
  out += healthTrail;
  out += "\n";
  for (size_t i = 0; i < attempts.size(); ++i) {
    out += "  #";
    out += std::to_string(i + 1);
    out += " ";
    out += attempts[i].toString();
    out += "\n";
  }
  if (!succeeded() && !finalMessage.empty()) {
    out += "  final: ";
    out += finalMessage;
    out += "\n";
  }
  return out;
}

}  // namespace simtomp::simfault
