// Tests for the smaller extensions: dist_schedule(static, chunk), CSV
// stats export, out-of-memory error paths, and cross-architecture
// end-to-end app runs.
#include <gtest/gtest.h>

#include <atomic>
#include <sstream>
#include <vector>

#include "apps/sparse_matvec.h"
#include "apps/su3.h"
#include "hostrt/data_env.h"
#include "omprt/runtime.h"
#include "omprt/target.h"

namespace simtomp {
namespace {

using gpusim::ArchSpec;
using gpusim::Device;
using omprt::ExecMode;
using omprt::OmpContext;
using omprt::TargetConfig;

TargetConfig genericConfig(uint32_t teams, uint32_t threads) {
  TargetConfig config;
  config.teamsMode = ExecMode::kGeneric;
  config.numTeams = teams;
  config.threadsPerTeam = threads;
  return config;
}

// ---------------- distributeStaticChunked ----------------

void distBody(OmpContext& ctx, uint64_t iv, void** args) {
  auto* hits = static_cast<std::atomic<int>*>(args[0]);
  hits[iv]++;
  auto* owner = static_cast<std::atomic<int>*>(args[1]);
  owner[iv].store(static_cast<int>(ctx.teamNum()));
  ctx.gpu().work(1);
}

TEST(DistributeChunkedTest, CoversEveryIterationOnce) {
  Device dev(ArchSpec::testTiny());
  std::vector<std::atomic<int>> hits(103);
  std::vector<std::atomic<int>> owner(103);
  void* args[] = {hits.data(), owner.data()};
  auto stats = omprt::launchTarget(
      dev, genericConfig(4, 32), [&](OmpContext& ctx) {
        omprt::rt::distributeStaticChunked(ctx, 103, 8, &distBody, args);
      });
  ASSERT_TRUE(stats.isOk());
  for (auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(DistributeChunkedTest, ChunksRotateAcrossTeams) {
  Device dev(ArchSpec::testTiny());
  std::vector<std::atomic<int>> hits(64);
  std::vector<std::atomic<int>> owner(64);
  void* args[] = {hits.data(), owner.data()};
  auto stats = omprt::launchTarget(
      dev, genericConfig(2, 32), [&](OmpContext& ctx) {
        omprt::rt::distributeStaticChunked(ctx, 64, 8, &distBody, args);
      });
  ASSERT_TRUE(stats.isOk());
  // chunk 8, 2 teams: [0,8) -> team 0, [8,16) -> team 1, [16,24) -> 0...
  for (size_t iv = 0; iv < 64; ++iv) {
    EXPECT_EQ(owner[iv].load(), static_cast<int>((iv / 8) % 2)) << iv;
  }
}

TEST(DistributeChunkedTest, ZeroChunkBehavesAsOne) {
  Device dev(ArchSpec::testTiny());
  std::vector<std::atomic<int>> hits(10);
  std::vector<std::atomic<int>> owner(10);
  void* args[] = {hits.data(), owner.data()};
  auto stats = omprt::launchTarget(
      dev, genericConfig(3, 32), [&](OmpContext& ctx) {
        omprt::rt::distributeStaticChunked(ctx, 10, 0, &distBody, args);
      });
  ASSERT_TRUE(stats.isOk());
  for (size_t iv = 0; iv < 10; ++iv) {
    EXPECT_EQ(owner[iv].load(), static_cast<int>(iv % 3)) << iv;
  }
}

// ---------------- CSV export ----------------

TEST(CsvStatsTest, HeaderAndRowColumnCountsMatch) {
  Device dev(ArchSpec::testTiny());
  auto stats = dev.launch({2, 64}, [](gpusim::ThreadCtx& t) {
    t.work(5);
    t.chargeGlobalLoad();
  });
  ASSERT_TRUE(stats.isOk());
  const std::string header = gpusim::KernelStats::csvHeader();
  const std::string row = stats.value().csvRow();
  EXPECT_EQ(std::count(header.begin(), header.end(), ','),
            std::count(row.begin(), row.end(), ','));
  EXPECT_NE(header.find("warp_sync"), std::string::npos);
  EXPECT_NE(header.find("simd_idle_lane_rounds"), std::string::npos);
  // The row starts with the cycle count.
  EXPECT_EQ(row.rfind(std::to_string(stats.value().cycles) + ",", 0), 0u);
}

// ---------------- Error paths ----------------

TEST(OomTest, DeviceAllocationFailureSurfaces) {
  Device dev(ArchSpec::testTiny(), gpusim::CostModel{}, 1 << 16);  // 64 KiB
  auto big = dev.allocateArray<double>(1 << 20);
  ASSERT_FALSE(big.isOk());
  EXPECT_EQ(big.status().code(), StatusCode::kResourceExhausted);
}

TEST(OomTest, MapEnterFailsCleanlyWhenDeviceFull) {
  Device dev(ArchSpec::testTiny(), gpusim::CostModel{}, 1 << 16);
  hostrt::DataEnvironment env(dev);
  std::vector<double> host(1 << 17, 0.0);  // 1 MiB >> 64 KiB
  const Status s = env.mapEnter(std::span<double>(host), hostrt::MapType::kTo);
  EXPECT_FALSE(s.isOk());
  EXPECT_FALSE(env.isPresent(host.data()));
  EXPECT_EQ(dev.memory().bytesInUse(), 0u);
}

// ---------------- Cross-architecture app runs ----------------

TEST(CrossArchTest, SpmvVerifiesOnAmd) {
  apps::CsrGenConfig config;
  config.numRows = 256;
  config.meanRowLength = 6;
  config.maxRowLength = 24;
  const apps::CsrMatrix A = apps::generateCsr(config);
  Device amd(ArchSpec::amdMI100());
  apps::SpmvOptions options;
  options.variant = apps::SpmvVariant::kThreeLevelAtomic;
  options.numTeams = 4;
  options.threadsPerTeam = 128;  // wavefront multiple
  options.simdlen = 8;           // degrades to 1 in generic mode
  auto result = apps::runSpmv(amd, A, options);
  ASSERT_TRUE(result.isOk()) << result.status().toString();
  EXPECT_TRUE(result.value().verified);

  // SPMD parallel keeps the groups on AMD.
  options.parallelMode = ExecMode::kSPMD;
  auto spmd = apps::runSpmv(amd, A, options);
  ASSERT_TRUE(spmd.isOk());
  EXPECT_TRUE(spmd.value().verified);
}

TEST(CrossArchTest, Su3VerifiesOnAmd) {
  const apps::Su3Workload w = apps::generateSu3(128, 3);
  Device amd(ArchSpec::amdMI100());
  apps::Su3Options options;
  options.numTeams = 2;
  options.threadsPerTeam = 128;
  options.simdlen = 4;  // SPMD-SIMD: works on AMD
  auto result = apps::runSu3(amd, w, options);
  ASSERT_TRUE(result.isOk());
  EXPECT_TRUE(result.value().verified);
}

}  // namespace
}  // namespace simtomp
