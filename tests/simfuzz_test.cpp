// simfuzz core properties: generator determinism, grammar invariants,
// canonical-text round-trips, differential cleanliness of generated
// programs, and byte-identity of the campaign findings log.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "simfuzz/generator.h"
#include "simfuzz/harness.h"
#include "simprof/metrics.h"

namespace simtomp::simfuzz {
namespace {

// ---------------- Generator determinism ----------------

TEST(FuzzGeneratorTest, SameSeedSameProgram) {
  const Generator gen;
  for (uint64_t seed = 0; seed < 64; ++seed) {
    EXPECT_EQ(gen.generate(seed), gen.generate(seed)) << "seed=" << seed;
  }
}

TEST(FuzzGeneratorTest, DifferentSeedsDiffer) {
  const Generator gen;
  int distinct = 0;
  const FuzzProgram base = gen.generate(0);
  for (uint64_t seed = 1; seed < 32; ++seed) {
    if (!(gen.generate(seed) == base)) ++distinct;
  }
  EXPECT_GE(distinct, 30);  // the grammar space is large; collisions rare
}

TEST(FuzzGeneratorTest, SaltShiftsTheStream) {
  const Generator a(0);
  const Generator b(1);
  int differing = 0;
  for (uint64_t seed = 0; seed < 16; ++seed) {
    FuzzProgram pa = a.generate(seed);
    FuzzProgram pb = b.generate(seed);
    pa.seed = pb.seed = 0;  // compare shapes, not provenance
    if (!(pa == pb)) ++differing;
  }
  EXPECT_GE(differing, 12);
}

// ---------------- Grammar invariants ----------------

TEST(FuzzGeneratorTest, GeneratedProgramsAreNormalized) {
  const Generator gen;
  for (uint64_t seed = 0; seed < 256; ++seed) {
    const FuzzProgram p = gen.generate(seed);
    FuzzProgram renorm = p;
    renorm.normalize();
    EXPECT_EQ(p, renorm) << "seed=" << seed;  // normalize is idempotent

    // Legal on every arch profile: warp-64 divisibility and the
    // testTiny block cap with the generic-mode extra warp.
    EXPECT_EQ(p.threadsPerTeam % 64, 0u);
    EXPECT_LE(p.threadsPerTeam + 64, 256u);
    EXPECT_GE(p.numTeams, 1u);
    EXPECT_LE(p.numTeams, 4u);
    // simdlen is a power of two <= 64.
    EXPECT_EQ(p.simdlen & (p.simdlen - 1), 0u);
    EXPECT_LE(p.simdlen, 64u);
    EXPECT_GE(p.outerTrip, 1u);
    EXPECT_LE(p.outerTrip, 256u);
    EXPECT_LE(p.innerTrip, 96u);
    if (p.construct == Construct::kBarrierParallel) {
      EXPECT_EQ(p.teamsMode, omprt::ExecMode::kSPMD);
      EXPECT_EQ(p.parallelMode, omprt::ExecMode::kSPMD);
      EXPECT_EQ(p.body, BodyKind::kAffineMap);
    }
    if (p.construct != Construct::kScheduledFor) {
      EXPECT_EQ(p.schedKind, omprt::ForSchedule::kStaticCyclic);
      EXPECT_EQ(p.schedChunk, 0u);
    }
  }
}

TEST(FuzzGeneratorTest, GrammarReachesEveryConstructAndBody) {
  const Generator gen;
  std::vector<int> constructs(kNumConstructs, 0);
  std::vector<int> bodies(kNumBodyKinds, 0);
  int pressured = 0;
  for (uint64_t seed = 0; seed < 256; ++seed) {
    const FuzzProgram p = gen.generate(seed);
    constructs[static_cast<size_t>(p.construct)]++;
    bodies[static_cast<size_t>(p.body)]++;
    if (p.pressure > 0) ++pressured;
  }
  for (size_t i = 0; i < constructs.size(); ++i) {
    EXPECT_GT(constructs[i], 0) << "construct " << i << " never generated";
  }
  for (size_t i = 0; i < bodies.size(); ++i) {
    EXPECT_GT(bodies[i], 0) << "body " << i << " never generated";
  }
  EXPECT_GT(pressured, 0) << "sharing pressure never generated";
}

// ---------------- Canonical text ----------------

TEST(FuzzProgramTest, SerializeParseRoundTrip) {
  const Generator gen;
  for (uint64_t seed = 0; seed < 64; ++seed) {
    const FuzzProgram p = gen.generate(seed);
    const auto parsed = FuzzProgram::parse(p.serialize());
    ASSERT_TRUE(parsed.isOk()) << parsed.status().toString();
    EXPECT_EQ(parsed.value(), p) << "seed=" << seed;
  }
}

TEST(FuzzProgramTest, ParseSkipsCommentsAndBlankLines) {
  const auto parsed = FuzzProgram::parse(
      "# a landed counterexample\n"
      "\n"
      "fuzzprog v1 seed=9 construct=sched body=reduce teams=2 threads=128 "
      "tmode=spmd pmode=generic simdlen=8 sched=dynamic chunk=3 outer=31 "
      "inner=7 pressure=1 sharing=1024 a=-2 b=5 inject=none\n");
  ASSERT_TRUE(parsed.isOk()) << parsed.status().toString();
  const FuzzProgram p = parsed.value();
  EXPECT_EQ(p.seed, 9u);
  EXPECT_EQ(p.construct, Construct::kScheduledFor);
  EXPECT_EQ(p.body, BodyKind::kSimdReduce);
  EXPECT_EQ(p.schedKind, omprt::ForSchedule::kDynamic);
  EXPECT_EQ(p.outerTrip, 31u);
  EXPECT_EQ(p.a, -2);
}

TEST(FuzzProgramTest, ParseRejectsMalformedInput) {
  EXPECT_FALSE(FuzzProgram::parse("").isOk());
  EXPECT_FALSE(FuzzProgram::parse("# only a comment\n").isOk());
  EXPECT_FALSE(FuzzProgram::parse("fuzzprog v2 seed=1").isOk());
  EXPECT_FALSE(FuzzProgram::parse("fuzzprog v1 bogus").isOk());
  EXPECT_FALSE(FuzzProgram::parse("fuzzprog v1 construct=quantum").isOk());
  EXPECT_FALSE(FuzzProgram::parse("fuzzprog v1 outer=abc").isOk());
  EXPECT_FALSE(FuzzProgram::parse("fuzzprog v1 unknown=1").isOk());
}

// ---------------- Reference semantics ----------------

TEST(FuzzHarnessTest, ReferenceMatchesClosedForms) {
  FuzzProgram p;
  p.body = BodyKind::kSimdReduce;
  p.outerTrip = 4;
  p.innerTrip = 3;
  p.a = 2;
  p.b = 1;
  p.normalize();
  const std::vector<double> data = referenceRun(p);
  ASSERT_EQ(data.size(), p.dataSize());
  for (uint64_t row = 0; row < 4; ++row) {
    double want = 0.0;
    for (uint64_t k = 0; k < 3; ++k) {
      want += static_cast<double>(2 * static_cast<int64_t>(row + k) + 1);
    }
    EXPECT_EQ(data[row], want) << "row " << row;
  }
}

// ---------------- Differential matrix ----------------

TEST(FuzzHarnessTest, GeneratedSeedsAreDifferentiallyClean) {
  const Generator gen;
  DiffOptions opt;
  opt.crossArch = false;  // tiny-only keeps this test fast; the CI
                          // smoke stage covers the cross-arch cells
  for (uint64_t seed = 0; seed < 6; ++seed) {
    const FuzzProgram p = gen.generate(seed);
    const DiffResult diff = diffProgram(p, opt);
    EXPECT_FALSE(diff.diverged())
        << "seed=" << seed << " program=" << p.serialize() << "\nfirst note: "
        << (diff.notes.empty() ? "" : diff.notes.front());
  }
}

TEST(FuzzHarnessTest, InjectedOffByOneIsDetected) {
  const Generator gen;
  // Seed with simdlen > 1 and outer > 3 so the planted bug can fire.
  FuzzProgram p;
  bool found = false;
  for (uint64_t seed = 0; seed < 32 && !found; ++seed) {
    p = gen.generate(seed);
    found = p.simdlen > 1 && p.outerTrip > 3;
  }
  ASSERT_TRUE(found);
  p.inject = InjectKind::kOffByOne;
  DiffOptions opt;
  opt.crossArch = false;
  const DiffResult diff = diffProgram(p, opt);
  EXPECT_TRUE(diff.diverged()) << p.serialize();
}

// ---------------- Campaign determinism + metrics ----------------

TEST(FuzzCampaignTest, FindingsLogIsByteIdenticalAcrossReruns) {
  CampaignOptions opt;
  opt.seedBegin = 0;
  opt.seedEnd = 4;
  opt.diff.crossArch = false;
  const CampaignResult first = runCampaign(opt);
  const CampaignResult second = runCampaign(opt);
  EXPECT_EQ(first.log, second.log);
  EXPECT_EQ(first.programs, 4u);
  EXPECT_EQ(first.runs, second.runs);
  EXPECT_NE(first.log.find("summary programs=4"), std::string::npos);
}

TEST(FuzzCampaignTest, CountersFlowIntoMetricsRegistry) {
  auto& metrics = simprof::MetricsRegistry::global();
  const uint64_t programs0 =
      metrics.value(simprof::metric::kFuzzProgramsTotal);
  const uint64_t runs0 = metrics.value(simprof::metric::kFuzzRunsTotal);
  const uint64_t div0 = metrics.value(simprof::metric::kFuzzDivergencesTotal);
  const uint64_t steps0 =
      metrics.value(simprof::metric::kFuzzMinimizeStepsTotal);

  CampaignOptions opt;
  opt.seedBegin = 0;
  opt.seedEnd = 3;
  opt.diff.crossArch = false;
  const CampaignResult result = runCampaign(opt);

  EXPECT_EQ(metrics.value(simprof::metric::kFuzzProgramsTotal) - programs0,
            result.programs);
  EXPECT_EQ(metrics.value(simprof::metric::kFuzzRunsTotal) - runs0,
            result.runs);
  EXPECT_EQ(metrics.value(simprof::metric::kFuzzDivergencesTotal) - div0,
            result.findings.size());
  EXPECT_EQ(metrics.value(simprof::metric::kFuzzMinimizeStepsTotal) - steps0,
            result.minimizeSteps);
}

}  // namespace
}  // namespace simtomp::simfuzz
