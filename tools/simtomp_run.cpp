// simtomp_run: run a built-in workload under a directive you type.
//
//   simtomp_run <kernel> "<directive>" [--csv]
//
//   kernels: spmv | su3 | ideal | laplace3d | transpose | interpol | gemm
//
// Examples:
//   simtomp_run spmv "target teams distribute parallel for simd \
//                     num_teams(64) thread_limit(256) simdlen(8)"
//   simtomp_run su3  "target teams distribute parallel for simd simdlen(4)"
//   simtomp_run laplace3d "target teams distribute parallel for \
//                          parallel_mode(generic) simdlen(32)"
//
// The directive's constructs pick the execution modes via the
// tightly-nested => SPMD rule (override with teams_mode/parallel_mode);
// num_teams/thread_limit/simdlen shape the launch. The tool runs the
// kernel on the A100-like device, verifies against the host reference,
// and prints cycles plus the interesting counters (or a CSV row).
//
// Autotuning: a `tune(key)` clause (or per-clause `auto` arguments)
// defers the unpinned launch-shape fields to simtune, honouring
// SIMTOMP_TUNE / SIMTOMP_TUNE_CACHE:
//   SIMTOMP_TUNE=2 simtomp_run spmv
//     "target teams distribute parallel for simd tune(spmv_main)"
//
// Fault injection: a `fault(plan)` clause (SIMTOMP_FAULT grammar, see
// docs/FAULTS.md) and `watchdog(steps|off)` apply to the launch:
//   simtomp_run ideal "target teams distribute parallel for \
//                      fault(trap:step=100) watchdog(100000)"
// The app adapters launch on a plain device (no DeviceManager), so no
// resilience chain runs here: an injected fault surfaces with its exit
// class below instead of recovering. Use simtomp_fault for the
// recovery matrix.
//
// Exit codes (documented for CI triage; see docs/FAULTS.md):
//   0  success (results verified)
//   1  verification failure (kernel ran, wrong results)
//   2  usage error
//   3  build error (directive did not parse / tuning setup failed)
//   4  launch failure (any class not listed below)
//   5  watchdog timeout (DEADLINE_EXCEEDED)
//   6  simcheck-fatal (checking failed the launch)
//   7  fault injected and not recovered
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "apps/batched_gemm.h"
#include "apps/ideal_kernel.h"
#include "apps/laplace3d.h"
#include "apps/muram.h"
#include "apps/sparse_matvec.h"
#include "apps/su3.h"
#include "apps/tunable.h"
#include "front/directive.h"
#include "simtune/tuner.h"

using namespace simtomp;

namespace {

// Exit codes per failure class (see the header comment).
constexpr int kExitVerifyFailed = 1;
constexpr int kExitUsage = 2;
constexpr int kExitBuildError = 3;
constexpr int kExitLaunchFailure = 4;
constexpr int kExitWatchdog = 5;
constexpr int kExitCheckFatal = 6;
constexpr int kExitFaultUnrecovered = 7;

int usage() {
  std::fprintf(stderr,
               "usage: simtomp_run <spmv|su3|ideal|laplace3d|transpose|"
               "interpol|gemm> \"<directive>\" [--csv]\n");
  return kExitUsage;
}

bool knownKernel(const std::string& kernel) {
  static const char* const kKernels[] = {"spmv",      "su3",      "ideal",
                                         "laplace3d", "transpose", "interpol",
                                         "gemm"};
  for (const char* name : kKernels) {
    if (kernel == name) return true;
  }
  return false;
}

/// Triage a failed launch into its documented exit code. The watchdog
/// check comes first: its message also carries the [simfault] marker.
int exitCodeFor(const Status& status) {
  if (status.code() == StatusCode::kDeadlineExceeded) return kExitWatchdog;
  if (status.message().find("simcheck") != std::string::npos) {
    return kExitCheckFatal;
  }
  if (status.message().find("[simfault]") != std::string::npos) {
    return kExitFaultUnrecovered;
  }
  return kExitLaunchFailure;
}

apps::SimdMode modeFromSpec(const dsl::LaunchSpec& launch) {
  if (launch.simdlen <= 1) return apps::SimdMode::kNoSimd;
  return launch.parallelMode == omprt::ExecMode::kGeneric
             ? apps::SimdMode::kGenericSimd
             : apps::SimdMode::kSpmdSimd;
}

Result<apps::AppRunResult> runKernel(const std::string& kernel,
                                     gpusim::Device& device,
                                     const dsl::LaunchSpec& launch) {
  if (kernel == "spmv") {
    apps::CsrGenConfig config;
    config.numRows = 4096;
    config.meanRowLength = 8;
    config.maxRowLength = 64;
    const apps::CsrMatrix A = apps::generateCsr(config);
    apps::SpmvOptions options;
    options.variant = launch.simdlen > 1
                          ? apps::SpmvVariant::kThreeLevelAtomic
                          : apps::SpmvVariant::kTwoLevel;
    options.numTeams = launch.numTeams;
    options.threadsPerTeam = launch.threadsPerTeam;
    options.simdlen = launch.simdlen;
    options.parallelMode = launch.parallelMode;
    return apps::runSpmv(device, A, options);
  }
  if (kernel == "su3") {
    const apps::Su3Workload w = apps::generateSu3(5120, 3);
    apps::Su3Options options;
    options.numTeams = launch.numTeams;
    options.threadsPerTeam = launch.threadsPerTeam;
    options.simdlen = launch.simdlen;
    return apps::runSu3(device, w, options);
  }
  if (kernel == "ideal") {
    const apps::IdealWorkload w = apps::generateIdeal(432, 32, 5);
    apps::IdealOptions options;
    options.numTeams = launch.numTeams;
    options.threadsPerTeam = launch.threadsPerTeam;
    options.simdlen = launch.simdlen;
    return apps::runIdeal(device, w, options);
  }
  if (kernel == "laplace3d") {
    const apps::Laplace3dWorkload w = apps::generateLaplace3d(34, 34, 258, 9);
    apps::Laplace3dOptions options;
    options.mode = modeFromSpec(launch);
    options.numTeams = launch.numTeams;
    options.threadsPerTeam = launch.threadsPerTeam;
    options.simdlen = launch.simdlen;
    return apps::runLaplace3d(device, w, options);
  }
  if (kernel == "transpose" || kernel == "interpol") {
    const apps::MuramWorkload w = apps::generateMuram(32, 32, 256, 11);
    apps::MuramOptions options;
    options.mode = modeFromSpec(launch);
    options.numTeams = launch.numTeams;
    options.threadsPerTeam = launch.threadsPerTeam;
    options.simdlen = launch.simdlen;
    return kernel == "transpose" ? apps::runMuramTranspose(device, w, options)
                                 : apps::runMuramInterpol(device, w, options);
  }
  if (kernel == "gemm") {
    const apps::BatchedGemmWorkload w = apps::generateBatchedGemm(2048, 4, 7);
    apps::BatchedGemmOptions options;
    options.numTeams = launch.numTeams;
    options.threadsPerTeam = launch.threadsPerTeam;
    options.simdlen = launch.simdlen;
    options.parallelMode = launch.parallelMode;
    return apps::runBatchedGemm(device, w, options);
  }
  return Status::invalidArgument("unknown kernel '" + kernel + "'");
}

/// The corpus adapter matching a CLI kernel name (the muram kernels
/// share one workload but tune separately).
const char* corpusNameFor(const std::string& kernel) {
  if (kernel == "transpose") return "muram_transpose";
  if (kernel == "interpol") return "muram_interpol";
  if (kernel == "gemm") return "batched_gemm";
  return kernel.c_str();
}

/// Resolve the launch's auto fields through simtune when the directive
/// asked for it (tune(key) or auto clause arguments) and SIMTOMP_TUNE
/// enables it. Cache-only under SIMTOMP_TUNE=1; SIMTOMP_TUNE=2 runs a
/// budgeted hill-climb over the app's own trial adapter on a miss and
/// persists the winner (SIMTOMP_TUNE_CACHE).
Status resolveLaunchTuning(const std::string& kernel, gpusim::Device& device,
                           dsl::LaunchSpec& launch) {
  const bool wants_tuning = !launch.tuneKey.empty() || launch.numTeams == 0 ||
                            launch.threadsPerTeam == 0 || launch.simdlen == 0 ||
                            launch.teamsModeAuto || launch.parallelModeAuto;
  if (!wants_tuning) return Status::ok();
  const simtune::TuneResolution mode =
      simtune::resolveTuneMode(simtune::TuneMode::kAuto);
  if (mode.effective == simtune::TuneMode::kOff) return Status::ok();

  apps::TunableApp app =
      apps::tunableByName(corpusNameFor(kernel), device.arch(), false);
  omprt::TargetConfig config = launch.targetConfig();
  if (config.tuneKey.empty()) config.tuneKey = app.name;
  config.tripCount = app.tripCount;

  simtune::Tuner tuner;
  if (tuner.resolveConfig(device.arch(), device.costModel(), config)) {
    std::printf("  tuning     : key %s resolved from cache (%s=%s)\n",
                config.tuneKey.c_str(), mode.source, mode.envValue.c_str());
  } else if (mode.effective == simtune::TuneMode::kTune) {
    simtune::TuneRequest request;
    request.strategy = simtune::TuneStrategy::kHillClimb;
    request.maxTrials = 64;
    request.tripCount = app.tripCount;
    const Result<simtune::TuneOutcome> tuned =
        tuner.tune(config.tuneKey, device.arch(), device.costModel(), app.axes,
                   app.trial, request);
    if (!tuned.isOk()) return tuned.status();
    simtune::applyShape(tuned.value().shape, config);
    std::printf("  tuning     : key %s searched (%u trials, winner %llu "
                "cycles)\n",
                config.tuneKey.c_str(), tuned.value().trialsRun,
                static_cast<unsigned long long>(tuned.value().shape.cycles));
  } else {
    std::printf("  tuning     : key %s missed the cache; heuristics apply\n",
                config.tuneKey.c_str());
    return Status::ok();
  }
  launch.numTeams = config.numTeams;
  launch.threadsPerTeam = config.threadsPerTeam;
  launch.simdlen = config.simdlen;
  launch.teamsMode = config.teamsMode;
  launch.teamsModeAuto = config.teamsModeAuto;
  launch.parallelMode = config.parallelMode;
  launch.parallelModeAuto = config.parallelModeAuto;
  launch.scheduleChunk = config.scheduleChunk;
  return Status::ok();
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 3) return usage();
  const std::string kernel = argv[1];
  if (!knownKernel(kernel)) return usage();
  const std::string directive = argv[2];
  const bool csv = argc >= 4 && std::strcmp(argv[3], "--csv") == 0;

  auto parsed = front::parseDirective(directive);
  if (!parsed.isOk()) {
    std::fprintf(stderr, "directive error: %s\n",
                 parsed.status().toString().c_str());
    return kExitBuildError;
  }
  gpusim::Device device;
  dsl::LaunchSpec launch = parsed.value().toLaunchSpec(device.arch());
  // The app adapters build their launches internally, so the fault and
  // watchdog clauses reach them through the environment knobs the
  // launch path already consults.
  if (!launch.faultSpec.empty()) {
    setenv("SIMTOMP_FAULT", launch.faultSpec.c_str(), 1);
  }
  if (launch.watchdogSteps != 0) {
    const std::string steps =
        launch.watchdogSteps == simfault::kWatchdogOff
            ? "off"
            : std::to_string(launch.watchdogSteps);
    setenv("SIMTOMP_WATCHDOG", steps.c_str(), 1);
  }
  const Status tuned = resolveLaunchTuning(kernel, device, launch);
  if (!tuned.isOk()) {
    std::fprintf(stderr, "tuning error: %s\n", tuned.toString().c_str());
    return kExitBuildError;
  }

  auto result = runKernel(kernel, device, launch);
  if (!result.isOk()) {
    std::fprintf(stderr, "run error: %s\n",
                 result.status().toString().c_str());
    return exitCodeFor(result.status());
  }
  const apps::AppRunResult& r = result.value();
  if (!r.verified) {
    std::fprintf(stderr, "VERIFICATION FAILED (max error %g)\n", r.maxError);
    return kExitVerifyFailed;
  }

  if (csv) {
    std::printf("kernel,%s\n", gpusim::KernelStats::csvHeader().c_str());
    std::printf("%s,%s\n", kernel.c_str(), r.stats.csvRow().c_str());
    return 0;
  }
  std::printf("%s: verified (max error %.2e)\n", kernel.c_str(), r.maxError);
  std::printf("  launch     : %u teams x %u threads, teams %s, parallel %s, "
              "simdlen %u\n",
              launch.numTeams, launch.threadsPerTeam,
              omprt::execModeName(launch.teamsMode).data(),
              omprt::execModeName(launch.parallelMode).data(),
              launch.simdlen);
  std::printf("  cycles     : %llu (%u waves, occupancy %.0f%%)\n",
              static_cast<unsigned long long>(r.stats.cycles), r.stats.waves,
              r.stats.occupancy.warpOccupancy * 100.0);
  const auto& c = r.stats.counters;
  using gpusim::Counter;
  std::printf("  simd loops : %llu (lane rounds %llu, idle %llu)\n",
              static_cast<unsigned long long>(c.get(Counter::kSimdLoop)),
              static_cast<unsigned long long>(c.get(Counter::kSimdLaneRounds)),
              static_cast<unsigned long long>(
                  c.get(Counter::kSimdIdleLaneRounds)));
  std::printf("  syncs      : %llu warp, %llu block, %llu state polls\n",
              static_cast<unsigned long long>(c.get(Counter::kWarpSync)),
              static_cast<unsigned long long>(c.get(Counter::kBlockSync)),
              static_cast<unsigned long long>(c.get(Counter::kStatePoll)));
  std::printf("  memory     : %llu global loads, %llu stores, %llu atomics, "
              "%llu shared accesses\n",
              static_cast<unsigned long long>(c.get(Counter::kGlobalLoad)),
              static_cast<unsigned long long>(c.get(Counter::kGlobalStore)),
              static_cast<unsigned long long>(c.get(Counter::kAtomicRmw)),
              static_cast<unsigned long long>(c.get(Counter::kSharedLoad) +
                                              c.get(Counter::kSharedStore)));
  return 0;
}
