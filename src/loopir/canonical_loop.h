// Canonical loop descriptors (paper section 4.2).
//
// Clang represents an OpenMP loop directive through an
// OMPCanonicalLoop node that can produce the loop's trip count and map
// a logical iteration number back to the loop variable. This is the
// same abstraction: a front-end (our DSL, or app code) builds a
// CanonicalLoop from (start, stop, step) and the lowering uses
// tripCount() as the trip-count callback and ivAt() inside the body
// callback to recover the user's induction variable.
#pragma once

#include <cstdint>
#include <utility>

#include "support/status.h"

namespace simtomp::loopir {

class CanonicalLoop {
 public:
  /// Normalize `for (iv = start; iv < stop; iv += step)` (step > 0) or
  /// `for (iv = start; iv > stop; iv += step)` (step < 0).
  static Result<CanonicalLoop> make(int64_t start, int64_t stop,
                                    int64_t step);

  /// Convenience for the common `for (i = 0; i < n; ++i)`.
  static CanonicalLoop upTo(uint64_t n);

  [[nodiscard]] uint64_t tripCount() const { return trip_count_; }
  /// The loop variable's value at logical iteration `logical`.
  [[nodiscard]] int64_t ivAt(uint64_t logical) const {
    return start_ + static_cast<int64_t>(logical) * step_;
  }
  [[nodiscard]] int64_t start() const { return start_; }
  [[nodiscard]] int64_t step() const { return step_; }

 private:
  CanonicalLoop(int64_t start, int64_t step, uint64_t trip_count)
      : start_(start), step_(step), trip_count_(trip_count) {}

  int64_t start_ = 0;
  int64_t step_ = 1;
  uint64_t trip_count_ = 0;
};

/// A canonical loop split into tiles (OpenMP 5.1 `tile` transform).
/// This is the inverse tool of collapse: it manufactures the two-deep
/// nest a three-level `parallel for` + `simd` mapping wants from a
/// *flat* loop, without restructuring user code.
class TiledLoop {
 public:
  TiledLoop(CanonicalLoop loop, uint64_t tile_size)
      : loop_(loop), tile_size_(tile_size == 0 ? 1 : tile_size) {}

  [[nodiscard]] uint64_t numTiles() const {
    return (loop_.tripCount() + tile_size_ - 1) / tile_size_;
  }
  [[nodiscard]] uint64_t tileSize() const { return tile_size_; }
  /// Iterations in `tile` (the last tile may be a remainder).
  [[nodiscard]] uint64_t tileTrip(uint64_t tile) const {
    const uint64_t begin = tile * tile_size_;
    const uint64_t total = loop_.tripCount();
    if (begin >= total) return 0;
    const uint64_t rest = total - begin;
    return rest < tile_size_ ? rest : tile_size_;
  }
  /// The user induction variable at (tile, offset).
  [[nodiscard]] int64_t ivAt(uint64_t tile, uint64_t offset) const {
    return loop_.ivAt(tile * tile_size_ + offset);
  }
  [[nodiscard]] const CanonicalLoop& loop() const { return loop_; }

 private:
  CanonicalLoop loop_;
  uint64_t tile_size_;
};

/// Two perfectly nested canonical loops collapsed into one logical
/// iteration space (extension: paper section 7 lists `collapse` as
/// future work for the loop API).
class CollapsedLoop2 {
 public:
  CollapsedLoop2(CanonicalLoop outer, CanonicalLoop inner)
      : outer_(outer), inner_(inner) {}

  [[nodiscard]] uint64_t tripCount() const {
    return outer_.tripCount() * inner_.tripCount();
  }
  /// (outer iv, inner iv) at the collapsed logical iteration.
  [[nodiscard]] std::pair<int64_t, int64_t> ivsAt(uint64_t logical) const {
    const uint64_t inner_trip = inner_.tripCount();
    return {outer_.ivAt(logical / inner_trip),
            inner_.ivAt(logical % inner_trip)};
  }
  [[nodiscard]] const CanonicalLoop& outer() const { return outer_; }
  [[nodiscard]] const CanonicalLoop& inner() const { return inner_; }

 private:
  CanonicalLoop outer_;
  CanonicalLoop inner_;
};

}  // namespace simtomp::loopir
