// Tests for the directive-string front-end.
#include <gtest/gtest.h>

#include "front/directive.h"
#include "simfault/fault.h"

namespace simtomp::front {
namespace {

using gpusim::ArchSpec;
using omprt::ExecMode;
using omprt::ForSchedule;

TEST(DirectiveParseTest, CombinedConstructChain) {
  auto spec = parseDirective("target teams distribute parallel for simd");
  ASSERT_TRUE(spec.isOk()) << spec.status().toString();
  EXPECT_TRUE(spec.value().hasTarget);
  EXPECT_TRUE(spec.value().hasTeams);
  EXPECT_TRUE(spec.value().hasDistribute);
  EXPECT_TRUE(spec.value().hasParallel);
  EXPECT_TRUE(spec.value().hasFor);
  EXPECT_TRUE(spec.value().hasSimd);
}

TEST(DirectiveParseTest, PragmaPrefixTolerated) {
  auto spec = parseDirective("#pragma omp target teams");
  ASSERT_TRUE(spec.isOk());
  EXPECT_TRUE(spec.value().hasTarget);
  EXPECT_TRUE(spec.value().hasTeams);
}

TEST(DirectiveParseTest, IntegerClauses) {
  auto spec = parseDirective(
      "target teams distribute parallel for simd "
      "num_teams(64) thread_limit(256) simdlen(8) device(1) collapse(2)");
  ASSERT_TRUE(spec.isOk()) << spec.status().toString();
  EXPECT_EQ(spec.value().numTeams, 64u);
  EXPECT_EQ(spec.value().threadLimit, 256u);
  EXPECT_EQ(spec.value().simdlen, 8u);
  EXPECT_EQ(spec.value().deviceNum, 1u);
  EXPECT_EQ(spec.value().collapse, 2u);
}

TEST(DirectiveParseTest, ScheduleClauses) {
  auto dynamic = parseDirective("parallel for schedule(dynamic,4)");
  ASSERT_TRUE(dynamic.isOk());
  EXPECT_TRUE(dynamic.value().hasSchedule);
  EXPECT_EQ(dynamic.value().schedule.kind, ForSchedule::kDynamic);
  EXPECT_EQ(dynamic.value().schedule.chunk, 4u);

  auto chunked = parseDirective("parallel for schedule(static)");
  ASSERT_TRUE(chunked.isOk());
  EXPECT_EQ(chunked.value().schedule.kind, ForSchedule::kStaticChunked);

  auto cyclic = parseDirective("parallel for schedule(cyclic)");
  ASSERT_TRUE(cyclic.isOk());
  EXPECT_EQ(cyclic.value().schedule.kind, ForSchedule::kStaticCyclic);
}

TEST(DirectiveParseTest, MapClauses) {
  auto spec = parseDirective(
      "target map(to: a, b) map(from: y) map(alloc: scratch)");
  ASSERT_TRUE(spec.isOk()) << spec.status().toString();
  ASSERT_EQ(spec.value().maps.size(), 4u);
  EXPECT_EQ(spec.value().maps[0].type, hostrt::MapType::kTo);
  EXPECT_EQ(spec.value().maps[0].name, "a");
  EXPECT_EQ(spec.value().maps[1].name, "b");
  EXPECT_EQ(spec.value().maps[2].type, hostrt::MapType::kFrom);
  EXPECT_EQ(spec.value().maps[2].name, "y");
  EXPECT_EQ(spec.value().maps[3].type, hostrt::MapType::kAlloc);
}

TEST(DirectiveParseTest, ReductionClause) {
  auto spec = parseDirective("parallel for simd reduction(+: sum, norm)");
  ASSERT_TRUE(spec.isOk());
  ASSERT_EQ(spec.value().reductions.size(), 2u);
  EXPECT_EQ(spec.value().reductions[0].name, "sum");
  EXPECT_EQ(spec.value().reductions[1].name, "norm");
}

TEST(DirectiveParseTest, ModeOverrideClauses) {
  auto spec = parseDirective(
      "target teams distribute parallel for simd "
      "teams_mode(generic) parallel_mode(spmd)");
  ASSERT_TRUE(spec.isOk());
  EXPECT_TRUE(spec.value().teamsModeExplicit);
  EXPECT_EQ(spec.value().teamsMode, ExecMode::kGeneric);
  EXPECT_TRUE(spec.value().parallelModeExplicit);
  EXPECT_EQ(spec.value().parallelMode, ExecMode::kSPMD);
}

TEST(DirectiveParseTest, TuneClauseNamesTheKernel) {
  auto spec = parseDirective(
      "target teams distribute parallel for simd tune(spmv_main)");
  ASSERT_TRUE(spec.isOk()) << spec.status().toString();
  EXPECT_EQ(spec.value().tuneKey, "spmv_main");
  // tune() records the key only; auto-ness is decided at lowering.
  EXPECT_FALSE(spec.value().numTeamsAuto);
  EXPECT_FALSE(spec.value().simdlenAuto);
}

TEST(DirectiveParseTest, AutoClauseArguments) {
  auto spec = parseDirective(
      "target teams distribute parallel for simd "
      "num_teams(auto) thread_limit(auto) simdlen(auto) "
      "mode(auto) parallel_mode(auto)");
  ASSERT_TRUE(spec.isOk()) << spec.status().toString();
  EXPECT_TRUE(spec.value().numTeamsAuto);
  EXPECT_TRUE(spec.value().threadLimitAuto);
  EXPECT_TRUE(spec.value().simdlenAuto);
  EXPECT_TRUE(spec.value().teamsModeAuto);
  EXPECT_TRUE(spec.value().parallelModeAuto);
  // auto is not an explicit mode override.
  EXPECT_FALSE(spec.value().teamsModeExplicit);
  EXPECT_FALSE(spec.value().parallelModeExplicit);
  EXPECT_EQ(spec.value().numTeams, 0u);
  EXPECT_EQ(spec.value().simdlen, 0u);
}

TEST(DirectiveParseTest, Errors) {
  EXPECT_FALSE(parseDirective("").isOk());
  EXPECT_FALSE(parseDirective("num_teams(4)").isOk());  // no construct
  EXPECT_FALSE(parseDirective("target frobnicate").isOk());
  EXPECT_FALSE(parseDirective("target num_teams(x)").isOk());
  EXPECT_FALSE(parseDirective("target num_teams(4").isOk());
  EXPECT_FALSE(parseDirective("target map(sideways: a)").isOk());
  EXPECT_FALSE(parseDirective("target teams collapse(3)").isOk());
  EXPECT_FALSE(parseDirective("parallel for schedule(guided)").isOk());
  EXPECT_FALSE(parseDirective("parallel reduction(*: x)").isOk());
  // Constructs after clauses are malformed.
  EXPECT_FALSE(parseDirective("target num_teams(4) teams").isOk());
  EXPECT_FALSE(parseDirective("target teams tune()").isOk());
  EXPECT_FALSE(parseDirective("target teams tune(42)").isOk());
  EXPECT_FALSE(parseDirective("target teams mode(sideways)").isOk());
}

TEST(DirectiveLowerTest, TightlyNestedInfersSpmd) {
  const ArchSpec arch = ArchSpec::nvidiaA100();
  auto spec =
      parseDirective("target teams distribute parallel for simd simdlen(8)");
  ASSERT_TRUE(spec.isOk());
  const dsl::LaunchSpec launch = spec.value().toLaunchSpec(arch);
  EXPECT_EQ(launch.teamsMode, ExecMode::kSPMD);
  EXPECT_EQ(launch.parallelMode, ExecMode::kSPMD);
  EXPECT_EQ(launch.simdlen, 8u);
}

TEST(DirectiveLowerTest, SplitConstructsInferGeneric) {
  const ArchSpec arch = ArchSpec::nvidiaA100();
  auto teams_only = parseDirective("target teams distribute");
  ASSERT_TRUE(teams_only.isOk());
  EXPECT_EQ(teams_only.value().toLaunchSpec(arch).teamsMode,
            ExecMode::kGeneric);

  auto no_simd = parseDirective("target teams distribute parallel for");
  ASSERT_TRUE(no_simd.isOk());
  const dsl::LaunchSpec launch = no_simd.value().toLaunchSpec(arch);
  EXPECT_EQ(launch.teamsMode, ExecMode::kSPMD);       // combined with parallel
  EXPECT_EQ(launch.parallelMode, ExecMode::kGeneric); // no simd attached
}

TEST(DirectiveLowerTest, ExplicitModesWin) {
  const ArchSpec arch = ArchSpec::nvidiaA100();
  auto spec = parseDirective(
      "target teams distribute parallel for simd parallel_mode(generic)");
  ASSERT_TRUE(spec.isOk());
  EXPECT_EQ(spec.value().toLaunchSpec(arch).parallelMode,
            ExecMode::kGeneric);
}

TEST(DirectiveLowerTest, DefaultsFollowArch) {
  auto spec = parseDirective("target teams distribute parallel for simd");
  ASSERT_TRUE(spec.isOk());
  const dsl::LaunchSpec nv =
      spec.value().toLaunchSpec(ArchSpec::nvidiaA100());
  EXPECT_EQ(nv.numTeams, 108u);       // default: one team per SM
  EXPECT_EQ(nv.threadsPerTeam, 128u);
  EXPECT_EQ(nv.simdlen, 32u);         // default simdlen: the warp

  const dsl::LaunchSpec amd =
      spec.value().toLaunchSpec(ArchSpec::amdMI100());
  EXPECT_EQ(amd.simdlen, 64u);
  EXPECT_EQ(amd.threadsPerTeam % 64, 0u);
}

TEST(DirectiveLowerTest, ThreadLimitRoundedToWarpMultiple) {
  auto spec = parseDirective("target teams thread_limit(100)");
  ASSERT_TRUE(spec.isOk());
  EXPECT_EQ(spec.value().toLaunchSpec(ArchSpec::nvidiaA100()).threadsPerTeam,
            128u);
}

TEST(DirectiveLowerTest, AutoClausesLowerToAutoFields) {
  const ArchSpec arch = ArchSpec::nvidiaA100();
  auto spec = parseDirective(
      "target teams distribute parallel for simd "
      "num_teams(auto) thread_limit(auto) simdlen(auto) "
      "mode(auto) parallel_mode(auto)");
  ASSERT_TRUE(spec.isOk());
  const dsl::LaunchSpec launch = spec.value().toLaunchSpec(arch);
  // Auto numeric fields lower to 0 instead of the arch defaults.
  EXPECT_EQ(launch.numTeams, 0u);
  EXPECT_EQ(launch.threadsPerTeam, 0u);
  EXPECT_EQ(launch.simdlen, 0u);
  // Auto modes keep the inferred mode as a fallback but mark the field
  // as tunable.
  EXPECT_TRUE(launch.teamsModeAuto);
  EXPECT_TRUE(launch.parallelModeAuto);
  EXPECT_EQ(launch.teamsMode, ExecMode::kSPMD);  // tightly nested fallback
}

TEST(DirectiveLowerTest, TuneKeyMakesUnspecifiedClausesAuto) {
  const ArchSpec arch = ArchSpec::nvidiaA100();
  auto spec = parseDirective(
      "target teams distribute parallel for simd tune(kern) num_teams(4)");
  ASSERT_TRUE(spec.isOk());
  const dsl::LaunchSpec launch = spec.value().toLaunchSpec(arch);
  EXPECT_EQ(launch.tuneKey, "kern");
  // Explicit clauses survive; everything else defers to the tuner.
  EXPECT_EQ(launch.numTeams, 4u);
  EXPECT_EQ(launch.threadsPerTeam, 0u);
  EXPECT_EQ(launch.simdlen, 0u);
  EXPECT_TRUE(launch.teamsModeAuto);
  EXPECT_TRUE(launch.parallelModeAuto);
}

TEST(DirectiveLowerTest, TuneKeyRespectsExplicitModes) {
  const ArchSpec arch = ArchSpec::nvidiaA100();
  auto spec = parseDirective(
      "target teams distribute parallel for simd tune(kern) "
      "mode(generic) simdlen(16)");
  ASSERT_TRUE(spec.isOk());
  const dsl::LaunchSpec launch = spec.value().toLaunchSpec(arch);
  EXPECT_EQ(launch.teamsMode, ExecMode::kGeneric);
  EXPECT_FALSE(launch.teamsModeAuto);   // pinned by the explicit clause
  EXPECT_TRUE(launch.parallelModeAuto); // still free for the tuner
  EXPECT_EQ(launch.simdlen, 16u);
}

TEST(DirectiveParseTest, FaultClauseCarriesValidatedPlan) {
  auto spec = parseDirective(
      "target teams distribute parallel for simd "
      "fault(trap:block=0:step=50:when=simd)");
  ASSERT_TRUE(spec.isOk()) << spec.status().toString();
  EXPECT_EQ(spec.value().faultSpec, "trap:block=0:step=50:when=simd");
  const dsl::LaunchSpec launch =
      spec.value().toLaunchSpec(ArchSpec::testTiny());
  EXPECT_EQ(launch.faultSpec, "trap:block=0:step=50:when=simd");
  EXPECT_EQ(launch.targetConfig().fault.spec,
            "trap:block=0:step=50:when=simd");
}

TEST(DirectiveParseTest, FaultClauseOffAndMultiEntry) {
  auto off = parseDirective("target teams fault(off)");
  ASSERT_TRUE(off.isOk());
  EXPECT_EQ(off.value().faultSpec, "off");
  auto multi =
      parseDirective("target teams fault(device_lost_pre:count=1;livelock)");
  ASSERT_TRUE(multi.isOk()) << multi.status().toString();
  EXPECT_EQ(multi.value().faultSpec, "device_lost_pre:count=1;livelock");
}

TEST(DirectiveParseTest, FaultClauseRejectsBadPlans) {
  EXPECT_FALSE(parseDirective("target teams fault()").isOk());
  EXPECT_FALSE(parseDirective("target teams fault(explode)").isOk());
  EXPECT_FALSE(parseDirective("target teams fault(trap:when=never)").isOk());
}

TEST(DirectiveParseTest, WatchdogClause) {
  auto steps = parseDirective("target teams watchdog(100000)");
  ASSERT_TRUE(steps.isOk()) << steps.status().toString();
  EXPECT_EQ(steps.value().watchdogSteps, 100000u);
  auto off = parseDirective("target teams watchdog(off)");
  ASSERT_TRUE(off.isOk());
  EXPECT_EQ(off.value().watchdogSteps, simfault::kWatchdogOff);
  auto zero = parseDirective("target teams watchdog(0)");
  ASSERT_TRUE(zero.isOk());
  EXPECT_EQ(zero.value().watchdogSteps, simfault::kWatchdogOff);
  EXPECT_FALSE(parseDirective("target teams watchdog(soon)").isOk());
  // Lowering carries the budget into the launch config.
  const dsl::LaunchSpec launch =
      steps.value().toLaunchSpec(ArchSpec::testTiny());
  EXPECT_EQ(launch.targetConfig().watchdogSteps, 100000u);
}

TEST(DirectiveParseTest, ProfileClause) {
  auto on = parseDirective("target teams profile(on)");
  ASSERT_TRUE(on.isOk()) << on.status().toString();
  EXPECT_EQ(on.value().profileMode, simprof::ProfileMode::kOn);
  auto off = parseDirective("target teams profile(off)");
  ASSERT_TRUE(off.isOk());
  EXPECT_EQ(off.value().profileMode, simprof::ProfileMode::kOff);
  auto auto_mode = parseDirective("target teams profile(auto)");
  ASSERT_TRUE(auto_mode.isOk());
  EXPECT_EQ(auto_mode.value().profileMode, simprof::ProfileMode::kAuto);
  // Unset defaults to auto (SIMTOMP_PROF decides per launch).
  auto unset = parseDirective("target teams");
  ASSERT_TRUE(unset.isOk());
  EXPECT_EQ(unset.value().profileMode, simprof::ProfileMode::kAuto);
  // Lowering carries the mode into the launch config.
  const dsl::LaunchSpec launch = on.value().toLaunchSpec(ArchSpec::testTiny());
  EXPECT_EQ(launch.profile.mode, simprof::ProfileMode::kOn);
  EXPECT_EQ(launch.targetConfig().profile.mode, simprof::ProfileMode::kOn);
}

TEST(DirectiveParseTest, ProfileClauseRejectsGarbage) {
  EXPECT_FALSE(parseDirective("target teams profile()").isOk());
  EXPECT_FALSE(parseDirective("target teams profile(loud)").isOk());
  EXPECT_FALSE(parseDirective("target teams profile(1)").isOk());
}

TEST(DirectiveEndToEndTest, ParsedSpecDrivesARealLaunch) {
  auto parsed = parseDirective(
      "target teams distribute parallel for simd "
      "num_teams(2) thread_limit(64) simdlen(8)");
  ASSERT_TRUE(parsed.isOk());
  gpusim::Device dev(ArchSpec::testTiny());
  dsl::LaunchSpec spec = parsed.value().toLaunchSpec(dev.arch());
  std::vector<int> hits(100, 0);
  auto stats = dsl::targetTeamsDistributeParallelFor(
      dev, spec, 100, [&](dsl::OmpContext& ctx, uint64_t iv) {
        if (ctx.simdGroupId() == 0) hits[iv] += 1;
      });
  ASSERT_TRUE(stats.isOk()) << stats.status().toString();
  for (int h : hits) EXPECT_EQ(h, 1);
}

}  // namespace
}  // namespace simtomp::front
