#include "gpusim/device.h"

#include <algorithm>
#include <exception>
#include <map>
#include <string>
#include <vector>

#include "gpusim/executor.h"
#include "simcheck/checker.h"
#include "simprof/metrics.h"
#include "support/log.h"

namespace simtomp::gpusim {

namespace {

/// Per-block result slot. Blocks deposit into their own slot (also
/// under parallel execution); the launch merges slots in block order so
/// aggregate stats never depend on host scheduling.
struct BlockOutcome {
  Status status = Status::ok();
  std::exception_ptr exception;
  uint64_t blockTime = 0;
  uint64_t busySum = 0;
  uint64_t maxThreadTime = 0;
  uint64_t peakSharedBytes = 0;
  CounterSet counters;
  /// Owned here (not by the engine) so findings and the global-memory
  /// footprint survive into the block-order merge — the engine itself
  /// dies with runBlock.
  std::unique_ptr<simcheck::BlockChecker> checker;
  /// Owned like the checker: the construct trees survive into the
  /// block-order merge.
  std::unique_ptr<simprof::BlockProfiler> profiler;
};

/// "simd_loop@8 (b3)"-style label for a deep-trace construct span.
std::string spanLabel(const simprof::RawSpan& span, uint32_t block_id) {
  std::string label(simprof::constructName(span.construct));
  if (span.construct == simprof::Construct::kSimdLoop && span.detail != 0) {
    label += "@" + std::to_string(span.detail);
  }
  label += " (b" + std::to_string(block_id) + ")";
  return label;
}

}  // namespace

Device::Device(ArchSpec arch, CostModel cost, size_t global_mem_bytes)
    : arch_(std::move(arch)), cost_(cost), memory_(global_mem_bytes) {
  const Status valid = arch_.validate();
  SIMTOMP_CHECK(valid.isOk(), "invalid ArchSpec: " + valid.toString());
}

Result<KernelStats> Device::launch(const LaunchConfig& config,
                                   const Kernel& kernel,
                                   const BlockSetupHook& setup) {
  if (config.numBlocks == 0) {
    return Status::invalidArgument("launch requires at least one block");
  }
  if (config.threadsPerBlock == 0 ||
      config.threadsPerBlock > arch_.maxThreadsPerBlock) {
    return Status::invalidArgument(
        "threadsPerBlock out of range for this architecture");
  }

  auto& metrics = simprof::MetricsRegistry::global();
  metrics.add(simprof::metric::kLaunchesTotal);
  const auto fail = [&metrics](Status status) {
    metrics.add(simprof::metric::kLaunchFailuresTotal);
    return status;
  };

  // Arm injected faults before anything else observable happens. A
  // pre-launch device loss must leave the previous launch's check
  // report published (nothing ran), so it returns before the check
  // state below is touched.
  const simfault::WatchdogResolution watchdog =
      simfault::resolveWatchdogSteps(config.watchdogSteps);
  Result<simfault::LaunchArm> armed =
      injector_.arm(config.fault, config.numBlocks);
  if (!armed.isOk()) return fail(armed.status());
  const simfault::LaunchArm arm = std::move(armed).value();
  if (arm.lostPre) {
    return fail(Status::unavailable(
        "[simfault] injected device loss before launch; nothing ran"));
  }

  const simcheck::CheckResolution check =
      simcheck::resolveCheckMode(config.check.mode);
  const bool checking = check.effective != simcheck::CheckMode::kOff;
  last_check_mode_ = check.effective;

  const simprof::ProfileResolution prof =
      simprof::resolveProfileMode(config.profile.mode);
  const bool profiling = prof.effective == simprof::ProfileMode::kOn;
  last_profile_mode_ = prof.effective;

  std::vector<BlockOutcome> outcomes(config.numBlocks);
  const auto runBlock = [&](uint32_t b) {
    BlockOutcome& out = outcomes[b];
    try {
      BlockEngine engine(arch_, cost_, memory_, b, config.numBlocks,
                         config.threadsPerBlock);
      if (checking) {
        out.checker = std::make_unique<simcheck::BlockChecker>(
            config.check, b, config.threadsPerBlock, arch_.warpSize);
        engine.setChecker(out.checker.get());
      }
      if (profiling) {
        out.profiler = std::make_unique<simprof::BlockProfiler>(
            b, config.threadsPerBlock, kNumCounters,
            /*capture_spans=*/trace_ != nullptr);
        engine.setProfiler(out.profiler.get());
      }
      engine.setWatchdog(watchdog.steps);
      engine.setFault(arm.forBlock(b));
      if (setup) setup(engine);
      out.status = engine.run(kernel);
      if (out.status.isOk()) {
        out.blockTime = engine.blockTime();
        out.busySum = engine.busySum();
        out.maxThreadTime = engine.maxThreadTime();
        out.peakSharedBytes = engine.sharedMemory().peakUsed();
        out.counters = engine.counters();
      }
    } catch (const StatusException& e) {
      // Recoverable device-side condition (e.g. injected sharing-space
      // exhaustion) thrown across the fiber boundary: land it in the
      // outcome slot as a plain Status, like an engine failure.
      out.status = e.status();
    } catch (...) {
      out.exception = std::current_exception();
    }
  };

  const uint32_t workers =
      std::min(resolveHostWorkers(config.hostWorkers), config.numBlocks);
  if (workers <= 1) {
    for (uint32_t b = 0; b < config.numBlocks; ++b) {
      runBlock(b);
      if (outcomes[b].exception || !outcomes[b].status.isOk()) break;
    }
  } else {
    BlockExecutor::global().parallelFor(config.numBlocks, workers, runBlock);
  }

  // Publish the check report before the status merge below can return:
  // a deadlocked (divergent) launch must still deliver its diagnostics.
  last_check_report_ = simcheck::CheckReport{};
  last_check_report_.maxDiagnostics = config.check.maxDiagnostics;
  if (checking) {
    std::vector<std::pair<uint32_t, const simcheck::GlobalFootprint*>>
        footprints;
    footprints.reserve(config.numBlocks);
    for (uint32_t b = 0; b < config.numBlocks; ++b) {
      if (outcomes[b].checker == nullptr) continue;  // serial early exit
      last_check_report_.merge(outcomes[b].checker->report());
      footprints.emplace_back(b, &outcomes[b].checker->footprint());
    }
    simcheck::analyzeCrossBlockRaces(footprints, last_check_report_);
    if (!last_check_report_.clean()) {
      SIMTOMP_WARN("simcheck: %s", last_check_report_.summary().c_str());
    }
    metrics.add(simprof::metric::kCheckFindingsTotal,
                last_check_report_.total());
  }

  // The profile is published before the status merge too: a deadlocked
  // launch keeps the partial construct timeline that led up to it.
  last_profile_ = simprof::LaunchProfile{};
  last_profile_.enabled = profiling;
  last_profile_.numCounters = kNumCounters;
  if (profiling) {
    for (uint32_t b = 0; b < config.numBlocks; ++b) {
      if (outcomes[b].profiler == nullptr) continue;  // serial early exit
      last_profile_.mergeTeam(outcomes[b].profiler->teamTree());
    }
    last_profile_.root.sortChildren();
  }

  if (arm.lostPost) {
    // Lost after the blocks executed: results are discarded, but the
    // check report above stays published, mirroring a real runtime
    // where diagnostics outlive the connection that produced them.
    return fail(Status::unavailable(
        "[simfault] injected device loss after kernel execution; "
        "results discarded"));
  }

  KernelStats stats;
  stats.numBlocks = config.numBlocks;
  stats.threadsPerBlock = config.threadsPerBlock;

  // Deterministic block-order merge: SM placement, trace spans and
  // counter aggregation see blocks exactly as the serial path did.
  // Least-loaded SM placement; equal-load ties resolve round-robin.
  std::vector<uint64_t> sm_time(arch_.numSMs, 0);
  /// Block residency intervals on the modeled timeline, for the
  /// "active blocks" counter track (deep tracing).
  std::vector<std::pair<uint64_t, uint64_t>> block_windows;
  for (uint32_t b = 0; b < config.numBlocks; ++b) {
    BlockOutcome& out = outcomes[b];
    if (out.exception) std::rethrow_exception(out.exception);
    if (!out.status.isOk()) {
      if (out.status.code() == StatusCode::kDeadlineExceeded) {
        metrics.add(simprof::metric::kWatchdogTimeoutsTotal);
      }
      return fail(Status(out.status.code(), "block " + std::to_string(b) +
                                                ": " + out.status.message()));
    }
    auto least = std::min_element(sm_time.begin(), sm_time.end());
    const uint32_t sm_id = static_cast<uint32_t>(least - sm_time.begin());
    const uint64_t sm_start = *least;
    if (trace_ != nullptr) {
      trace_->recordBlock(b, sm_id, sm_start, out.blockTime);
      if (out.profiler != nullptr) {
        // Deep tracing: the block's representative thread-0 construct
        // spans, nested inside the block span on its SM track.
        for (const simprof::RawSpan& span : out.profiler->tracedSpans()) {
          trace_->recordSpan(sm_id, spanLabel(span, b), sm_start + span.start,
                             span.end - span.start);
        }
        block_windows.emplace_back(sm_start, sm_start + out.blockTime);
      }
      if (arm.forBlock(b) != nullptr) {
        trace_->recordInstant("fault armed (b" + std::to_string(b) + ")",
                              sm_start);
      }
    }
    *least += out.blockTime;
    stats.busyCycles += out.busySum;
    stats.maxThreadCycles = std::max(stats.maxThreadCycles, out.maxThreadTime);
    stats.peakSharedBytes =
        std::max(stats.peakSharedBytes, out.peakSharedBytes);
    stats.counters.merge(out.counters);
  }

  if (trace_ != nullptr && !block_windows.empty()) {
    // "active blocks": step function over the modeled timeline from the
    // residency intervals (delta map keeps samples sorted by time).
    std::map<uint64_t, int64_t> deltas;
    for (const auto& [start, end] : block_windows) {
      deltas[start] += 1;
      deltas[end] -= 1;
    }
    int64_t active = 0;
    for (const auto& [at, delta] : deltas) {
      active += delta;
      trace_->recordCounter("active blocks", at,
                            static_cast<uint64_t>(active));
    }
    // "active lanes": the traced block's simd spans, sampled at span
    // boundaries (value = SIMD group width driven by the traced thread).
    if (outcomes[0].profiler != nullptr) {
      const uint64_t base = block_windows.front().first;
      for (const simprof::RawSpan& span : outcomes[0].profiler->tracedSpans()) {
        if (span.construct != simprof::Construct::kSimdLoop) continue;
        trace_->recordCounter("active lanes", base + span.start, span.detail);
        trace_->recordCounter("active lanes", base + span.end, 0);
      }
    }
  }

  stats.cycles = *std::max_element(sm_time.begin(), sm_time.end()) +
                 cost_.kernelLaunch;
  stats.waves = (config.numBlocks + arch_.numSMs - 1) / arch_.numSMs;
  stats.occupancy =
      computeOccupancy(arch_, config.threadsPerBlock,
                       static_cast<uint32_t>(stats.peakSharedBytes));
  ++launch_count_;
  if (trace_ != nullptr) {
    trace_->recordKernel("kernel #" + std::to_string(launch_count_),
                         stats.cycles);
  }
  // Pin the root to the launch total: the profiler's acceptance
  // contract is root inclusive cycles == KernelStats.cycles, exactly.
  last_profile_.finalize(stats.cycles);
  metrics.observe(simprof::metric::kLaunchCycles, stats.cycles);
  SIMTOMP_DEBUG("kernel done: %s", stats.summary().c_str());
  if (check.effective == simcheck::CheckMode::kFatal &&
      !last_check_report_.clean()) {
    return fail(Status::failedPrecondition(
        "simcheck found " + std::to_string(last_check_report_.total()) +
        " issue(s): " + last_check_report_.summary()));
  }
  return stats;
}

}  // namespace simtomp::gpusim
