// simtomp_prof: profile a built-in workload under a directive you type.
//
//   simtomp_prof <kernel> "<directive>" [--folded] [--json]
//                [--trace <path>] [--metrics <path|->]
//
//   kernels: spmv | su3 | ideal | laplace3d | transpose | interpol | gemm
//
// Runs the kernel exactly like simtomp_run, but with simprof enabled
// (the tool sets SIMTOMP_PROF=1, so the app adapter's internal launch
// resolves profiling on), then renders the construct tree:
//
//   default    nvprof-style per-construct table — inclusive/exclusive
//              thread-cycles, visits, SIMD lane efficiency
//   --folded   folded-stack lines (pipe into flamegraph.pl)
//   --json     nested JSON of the same tree
//   --trace P  deep Perfetto/Chrome trace (nested construct spans on
//              the SM tracks, counter tracks, instant events) to P
//   --metrics  Prometheus text exposition of the process-wide metrics
//              registry to the given path ("-" = stdout)
//
// Profiling observes the cost model without perturbing it, so the
// cycles printed here are bit-identical to an unprofiled simtomp_run
// of the same directive; the tool verifies that the profile root
// equals KernelStats.cycles and fails (exit 8) if not.
//
// Exit codes 0-7 match simtomp_run (see docs/FAULTS.md); 8 = profile
// invariant violated.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <string>

#include "apps/batched_gemm.h"
#include "apps/ideal_kernel.h"
#include "apps/laplace3d.h"
#include "apps/muram.h"
#include "apps/sparse_matvec.h"
#include "apps/su3.h"
#include "front/directive.h"
#include "gpusim/trace.h"
#include "simprof/metrics.h"
#include "simprof/profile.h"

using namespace simtomp;

namespace {

constexpr int kExitVerifyFailed = 1;
constexpr int kExitUsage = 2;
constexpr int kExitBuildError = 3;
constexpr int kExitLaunchFailure = 4;
constexpr int kExitWatchdog = 5;
constexpr int kExitCheckFatal = 6;
constexpr int kExitFaultUnrecovered = 7;
constexpr int kExitProfileInvariant = 8;

int usage() {
  std::fprintf(stderr,
               "usage: simtomp_prof <spmv|su3|ideal|laplace3d|transpose|"
               "interpol|gemm> \"<directive>\" [--folded] [--json] "
               "[--trace <path>] [--metrics <path|->]\n");
  return kExitUsage;
}

bool knownKernel(const std::string& kernel) {
  static const char* const kKernels[] = {"spmv",      "su3",       "ideal",
                                         "laplace3d", "transpose", "interpol",
                                         "gemm"};
  for (const char* name : kKernels) {
    if (kernel == name) return true;
  }
  return false;
}

/// Triage a failed launch into its documented exit code (simtomp_run's
/// scheme, so CI can treat the two tools interchangeably).
int exitCodeFor(const Status& status) {
  if (status.code() == StatusCode::kDeadlineExceeded) return kExitWatchdog;
  if (status.message().find("simcheck") != std::string::npos) {
    return kExitCheckFatal;
  }
  if (status.message().find("[simfault]") != std::string::npos) {
    return kExitFaultUnrecovered;
  }
  return kExitLaunchFailure;
}

apps::SimdMode modeFromSpec(const dsl::LaunchSpec& launch) {
  if (launch.simdlen <= 1) return apps::SimdMode::kNoSimd;
  return launch.parallelMode == omprt::ExecMode::kGeneric
             ? apps::SimdMode::kGenericSimd
             : apps::SimdMode::kSpmdSimd;
}

Result<apps::AppRunResult> runKernel(const std::string& kernel,
                                     gpusim::Device& device,
                                     const dsl::LaunchSpec& launch) {
  if (kernel == "spmv") {
    apps::CsrGenConfig config;
    config.numRows = 4096;
    config.meanRowLength = 8;
    config.maxRowLength = 64;
    const apps::CsrMatrix A = apps::generateCsr(config);
    apps::SpmvOptions options;
    options.variant = launch.simdlen > 1
                          ? apps::SpmvVariant::kThreeLevelAtomic
                          : apps::SpmvVariant::kTwoLevel;
    options.numTeams = launch.numTeams;
    options.threadsPerTeam = launch.threadsPerTeam;
    options.simdlen = launch.simdlen;
    options.parallelMode = launch.parallelMode;
    return apps::runSpmv(device, A, options);
  }
  if (kernel == "su3") {
    const apps::Su3Workload w = apps::generateSu3(5120, 3);
    apps::Su3Options options;
    options.numTeams = launch.numTeams;
    options.threadsPerTeam = launch.threadsPerTeam;
    options.simdlen = launch.simdlen;
    return apps::runSu3(device, w, options);
  }
  if (kernel == "ideal") {
    const apps::IdealWorkload w = apps::generateIdeal(432, 32, 5);
    apps::IdealOptions options;
    options.numTeams = launch.numTeams;
    options.threadsPerTeam = launch.threadsPerTeam;
    options.simdlen = launch.simdlen;
    return apps::runIdeal(device, w, options);
  }
  if (kernel == "laplace3d") {
    const apps::Laplace3dWorkload w = apps::generateLaplace3d(34, 34, 258, 9);
    apps::Laplace3dOptions options;
    options.mode = modeFromSpec(launch);
    options.numTeams = launch.numTeams;
    options.threadsPerTeam = launch.threadsPerTeam;
    options.simdlen = launch.simdlen;
    return apps::runLaplace3d(device, w, options);
  }
  if (kernel == "transpose" || kernel == "interpol") {
    const apps::MuramWorkload w = apps::generateMuram(32, 32, 256, 11);
    apps::MuramOptions options;
    options.mode = modeFromSpec(launch);
    options.numTeams = launch.numTeams;
    options.threadsPerTeam = launch.threadsPerTeam;
    options.simdlen = launch.simdlen;
    return kernel == "transpose" ? apps::runMuramTranspose(device, w, options)
                                 : apps::runMuramInterpol(device, w, options);
  }
  if (kernel == "gemm") {
    const apps::BatchedGemmWorkload w = apps::generateBatchedGemm(2048, 4, 7);
    apps::BatchedGemmOptions options;
    options.numTeams = launch.numTeams;
    options.threadsPerTeam = launch.threadsPerTeam;
    options.simdlen = launch.simdlen;
    options.parallelMode = launch.parallelMode;
    return apps::runBatchedGemm(device, w, options);
  }
  return Status::invalidArgument("unknown kernel '" + kernel + "'");
}

/// Counter-name adapter for the renderer: simprof speaks raw ids, the
/// names live in gpusim's counter table.
std::string_view profCounterName(uint32_t id) {
  if (id >= gpusim::kNumCounters) return "?";
  return gpusim::counterName(static_cast<gpusim::Counter>(id));
}

simprof::RenderOptions renderOptions() {
  simprof::RenderOptions opts;
  opts.counterName = &profCounterName;
  opts.laneRoundsCounter =
      static_cast<uint32_t>(gpusim::Counter::kSimdLaneRounds);
  opts.idleLaneRoundsCounter =
      static_cast<uint32_t>(gpusim::Counter::kSimdIdleLaneRounds);
  return opts;
}

bool writeMetrics(const std::string& path) {
  if (path == "-") {
    simprof::MetricsRegistry::global().writePrometheus(std::cout);
    return true;
  }
  std::ofstream out(path);
  if (!out) {
    std::fprintf(stderr, "cannot open metrics path '%s'\n", path.c_str());
    return false;
  }
  simprof::MetricsRegistry::global().writePrometheus(out);
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 3) return usage();
  const std::string kernel = argv[1];
  if (!knownKernel(kernel)) return usage();
  const std::string directive = argv[2];

  bool folded = false;
  bool json = false;
  std::string trace_path;
  std::string metrics_path;
  for (int i = 3; i < argc; ++i) {
    if (std::strcmp(argv[i], "--folded") == 0) {
      folded = true;
    } else if (std::strcmp(argv[i], "--json") == 0) {
      json = true;
    } else if (std::strcmp(argv[i], "--trace") == 0 && i + 1 < argc) {
      trace_path = argv[++i];
    } else if (std::strcmp(argv[i], "--metrics") == 0 && i + 1 < argc) {
      metrics_path = argv[++i];
    } else {
      return usage();
    }
  }

  auto parsed = front::parseDirective(directive);
  if (!parsed.isOk()) {
    std::fprintf(stderr, "directive error: %s\n",
                 parsed.status().toString().c_str());
    return kExitBuildError;
  }
  gpusim::Device device;
  const dsl::LaunchSpec launch = parsed.value().toLaunchSpec(device.arch());
  // The app adapters build their launches internally, so profiling (and
  // any fault/watchdog clauses) reach them through the environment
  // knobs the launch path consults — unless the directive pinned
  // profiling off explicitly.
  if (launch.profile.mode != simprof::ProfileMode::kOff) {
    setenv("SIMTOMP_PROF", "1", 1);
  }
  if (!launch.faultSpec.empty()) {
    setenv("SIMTOMP_FAULT", launch.faultSpec.c_str(), 1);
  }
  if (launch.watchdogSteps != 0) {
    const std::string steps =
        launch.watchdogSteps == simfault::kWatchdogOff
            ? "off"
            : std::to_string(launch.watchdogSteps);
    setenv("SIMTOMP_WATCHDOG", steps.c_str(), 1);
  }

  gpusim::TraceRecorder recorder;
  if (!trace_path.empty()) device.setTraceRecorder(&recorder);

  auto result = runKernel(kernel, device, launch);
  if (!result.isOk()) {
    std::fprintf(stderr, "run error: %s\n",
                 result.status().toString().c_str());
    return exitCodeFor(result.status());
  }
  const apps::AppRunResult& r = result.value();
  if (!r.verified) {
    std::fprintf(stderr, "VERIFICATION FAILED (max error %g)\n", r.maxError);
    return kExitVerifyFailed;
  }

  const simprof::LaunchProfile& profile = device.lastProfile();
  if (launch.profile.mode != simprof::ProfileMode::kOff) {
    if (!profile.enabled) {
      std::fprintf(stderr, "profile missing: launch did not profile\n");
      return kExitProfileInvariant;
    }
    // The contract the whole subsystem hangs on: profiling observed the
    // launch without perturbing it, and the tree accounts for it all.
    if (profile.root.inclusiveCycles != r.stats.cycles) {
      std::fprintf(stderr,
                   "profile invariant violated: root %llu != cycles %llu\n",
                   static_cast<unsigned long long>(profile.root.inclusiveCycles),
                   static_cast<unsigned long long>(r.stats.cycles));
      return kExitProfileInvariant;
    }
  }

  if (!trace_path.empty()) {
    const Status wrote = recorder.writeChromeJson(trace_path);
    if (!wrote.isOk()) {
      std::fprintf(stderr, "trace error: %s\n", wrote.toString().c_str());
      return kExitLaunchFailure;
    }
  }
  if (!metrics_path.empty() && !writeMetrics(metrics_path)) {
    return kExitLaunchFailure;
  }

  if (folded) {
    std::fputs(profile.folded().c_str(), stdout);
    return 0;
  }
  if (json) {
    profile.writeJson(std::cout, renderOptions());
    std::printf("\n");
    return 0;
  }
  std::printf("%s: verified (max error %.2e), %llu cycles\n", kernel.c_str(),
              r.maxError, static_cast<unsigned long long>(r.stats.cycles));
  std::fputs(profile.table(renderOptions()).c_str(), stdout);
  return 0;
}
