#include "hostrt/device_manager.h"

namespace simtomp::hostrt {

DeviceManager::DeviceManager(std::vector<gpusim::ArchSpec> specs,
                             gpusim::CostModel cost,
                             TransferModel transfer_model) {
  SIMTOMP_CHECK(!specs.empty(), "DeviceManager needs at least one device");
  devices_.reserve(specs.size());
  for (auto& spec : specs) {
    devices_.push_back(
        std::make_unique<gpusim::Device>(std::move(spec), cost));
  }
  envs_.reserve(devices_.size());
  queues_.reserve(devices_.size());
  for (auto& dev : devices_) {
    envs_.push_back(std::make_unique<DataEnvironment>(*dev, transfer_model));
    queues_.push_back(std::make_unique<TargetTaskQueue>(*dev));
  }
}

void DeviceManager::applyDefaults(omprt::TargetConfig& config) const {
  if (config.hostWorkers == 0) config.hostWorkers = default_host_workers_;
  if (config.check.mode == simcheck::CheckMode::kAuto) {
    config.check = default_check_;
  }
}

Status DeviceManager::resolveTuning(size_t n, omprt::TargetConfig& config,
                                    gpusim::Device* device,
                                    const omprt::TargetRegionFn* region) {
  if (config.tuneKey.empty() || !omprt::hasAutoLaunchFields(config)) {
    return Status::ok();
  }
  const simtune::TuneResolution resolution =
      simtune::resolveTuneMode(default_tune_mode_);
  if (resolution.effective == simtune::TuneMode::kOff) return Status::ok();
  if (default_tuner_ == nullptr) {
    default_tuner_ = std::make_shared<simtune::Tuner>();
  }
  gpusim::Device& dev = *devices_[n];
  if (default_tuner_->resolveConfig(dev.arch(), dev.costModel(), config)) {
    return Status::ok();
  }
  // Cache miss. kCache falls back to the heuristics in launchTarget;
  // kTune runs a trial search when the caller can run trials (the
  // synchronous launch path — deferred launches never tune, since the
  // trial launches would reorder against queued work).
  if (resolution.effective == simtune::TuneMode::kTune && device != nullptr &&
      region != nullptr) {
    simtune::TuneRequest request;
    request.strategy = simtune::TuneStrategy::kHillClimb;
    request.maxTrials = 64;
    request.check = config.check;
    const Result<simtune::TuneOutcome> tuned =
        default_tuner_->tuneTarget(*device, config, *region, request);
    if (!tuned.isOk()) return tuned.status();
  }
  return Status::ok();
}

omprt::TargetConfig DeviceManager::effectiveConfig(
    size_t n, omprt::TargetConfig config) {
  SIMTOMP_CHECK(n < devices_.size(), "device number out of range");
  applyDefaults(config);
  (void)resolveTuning(n, config, /*device=*/nullptr, /*region=*/nullptr);
  omprt::resolveAutoConfig(devices_[n]->arch(), config);
  config.check = simcheck::CheckConfig{
      simcheck::resolveCheckMode(config.check.mode).effective,
      config.check.maxDiagnostics};
  return config;
}

Result<gpusim::KernelStats> DeviceManager::launchOn(
    size_t n, const omprt::TargetConfig& config,
    const omprt::TargetRegionFn& region) {
  if (n >= devices_.size()) {
    return Status::invalidArgument("device number out of range");
  }
  omprt::TargetConfig effective = config;
  applyDefaults(effective);
  const Status tuned = resolveTuning(n, effective, devices_[n].get(), &region);
  if (!tuned.isOk()) return tuned;
  return omprt::launchTarget(*devices_[n], effective, region);
}

std::future<Result<gpusim::KernelStats>> DeviceManager::launchOnAsync(
    size_t n, omprt::TargetConfig config, omprt::TargetRegionFn region) {
  SIMTOMP_CHECK(n < devices_.size(), "device number out of range");
  applyDefaults(config);
  // Deferred launches resolve from the tuning cache only (see
  // resolveTuning); a miss falls back to launchTarget's heuristics.
  (void)resolveTuning(n, config, /*device=*/nullptr, /*region=*/nullptr);
  return queues_[n]->enqueue(config, std::move(region));
}

void DeviceManager::drainAll() {
  for (auto& queue : queues_) queue->drain();
}

}  // namespace simtomp::hostrt
