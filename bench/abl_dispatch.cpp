// Ablation (paper section 5.5): dispatching outlined regions through
// the compile-time if-cascade of known functions versus the indirect
// function-pointer fallback used for regions from other translation
// units. The dispatch happens per loop iteration, so indirect calls
// tax tight simd loops hardest.
#include <benchmark/benchmark.h>

#include "bench_common.h"
#include "dsl/dsl.h"

namespace {

using namespace simtomp;
using bench::checkOk;
using bench::Row;

uint64_t runDispatch(bool registered) {
  omprt::Dispatcher::global().clear();
  gpusim::Device dev;
  dsl::LaunchSpec spec;
  spec.numTeams = 64;
  spec.threadsPerTeam = 128;
  spec.teamsMode = omprt::ExecMode::kSPMD;
  spec.parallelMode = omprt::ExecMode::kSPMD;
  spec.simdlen = 32;
  spec.registerInCascade = registered;
  auto stats = dsl::targetTeamsDistributeParallelFor(
      dev, spec, 4096, [&](dsl::OmpContext& ctx, uint64_t) {
        dsl::simd(
            ctx, 64, [](dsl::OmpContext& c, uint64_t) { c.gpu().work(4); },
            registered);
      });
  return checkOk(stats, "dispatch kernel").cycles;
}

void BM_Dispatch(benchmark::State& state) {
  const bool registered = state.range(0) != 0;
  uint64_t cycles = 0;
  for (auto _ : state) cycles = runDispatch(registered);
  state.counters["sim_cycles"] = static_cast<double>(cycles);
}
BENCHMARK(BM_Dispatch)
    ->Arg(1)
    ->Arg(0)
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  const uint64_t cascade = runDispatch(true);
  const uint64_t indirect = runDispatch(false);
  bench::printTable(
      "Ablation: outlined-function dispatch (paper 5.5)",
      "if-cascade (known regions)", cascade,
      {{"indirect call (foreign TU)", indirect,
        static_cast<double>(cascade) / static_cast<double>(indirect)}});
  (void)bench::writeBenchJson("abl_dispatch");
  return 0;
}
