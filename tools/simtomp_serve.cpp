// simtomp_serve: generate and replay launch-service request mixes.
//
//   simtomp_serve gen [--seed S] [--tenants T] [--requests R]
//                     [--pump-every P] [--fault-permille F] [--out FILE]
//   simtomp_serve replay FILE [--devices D] [--shards S] [--workers N]
//                             [--stats FILE]
//
// `gen` writes a deterministic mix (same flags, same bytes) in the
// format of src/simserve/mix.h. `replay` drives it through a
// LaunchService over D fresh tiny devices and prints the service's
// stats dump — deterministic by contract, so CI replays one mix twice
// and at 1 vs 8 workers and byte-compares the dumps (see docs/
// SERVING.md). Exit codes: 0 replay ok, 1 service/verify failure,
// 2 usage or parse error.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "hostrt/device_manager.h"
#include "simserve/mix.h"
#include "simserve/service.h"
#include "support/status.h"

namespace simtomp {
namespace {

int usage() {
  std::fprintf(
      stderr,
      "usage: simtomp_serve gen [--seed S] [--tenants T] [--requests R]\n"
      "                         [--pump-every P] [--fault-permille F]\n"
      "                         [--out FILE]\n"
      "       simtomp_serve replay FILE [--devices D] [--shards S]\n"
      "                                 [--workers N] [--stats FILE]\n");
  return 2;
}

bool parseFlag(int argc, char** argv, int& i, const char* name,
               uint64_t& value) {
  if (std::strcmp(argv[i], name) != 0) return false;
  if (i + 1 >= argc) return false;
  value = static_cast<uint64_t>(std::strtoull(argv[++i], nullptr, 10));
  return true;
}

int runGen(int argc, char** argv) {
  simserve::MixProfile profile;
  std::string out_path;
  uint64_t v = 0;
  for (int i = 2; i < argc; ++i) {
    if (parseFlag(argc, argv, i, "--seed", v)) {
      profile.seed = v;
    } else if (parseFlag(argc, argv, i, "--tenants", v)) {
      profile.tenants = static_cast<uint32_t>(v);
    } else if (parseFlag(argc, argv, i, "--requests", v)) {
      profile.requests = static_cast<uint32_t>(v);
    } else if (parseFlag(argc, argv, i, "--pump-every", v)) {
      profile.pumpEvery = static_cast<uint32_t>(v);
    } else if (parseFlag(argc, argv, i, "--fault-permille", v)) {
      profile.faultPermille = static_cast<uint32_t>(v);
    } else if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
      out_path = argv[++i];
    } else {
      return usage();
    }
  }
  const std::string text = simserve::generateMix(profile).toString();
  if (out_path.empty()) {
    std::fwrite(text.data(), 1, text.size(), stdout);
    return 0;
  }
  std::ofstream out(out_path);
  if (!out) {
    std::fprintf(stderr, "simtomp_serve: cannot write %s\n",
                 out_path.c_str());
    return 1;
  }
  out << text;
  return 0;
}

int runReplay(int argc, char** argv) {
  if (argc < 3) return usage();
  const std::string mix_path = argv[2];
  uint64_t devices = 4, shards = 0, workers = 1;
  std::string stats_path;
  for (int i = 3; i < argc; ++i) {
    uint64_t v = 0;
    if (parseFlag(argc, argv, i, "--devices", v)) {
      devices = v;
    } else if (parseFlag(argc, argv, i, "--shards", v)) {
      shards = v;
    } else if (parseFlag(argc, argv, i, "--workers", v)) {
      workers = v;
    } else if (std::strcmp(argv[i], "--stats") == 0 && i + 1 < argc) {
      stats_path = argv[++i];
    } else {
      return usage();
    }
  }
  if (devices == 0 || workers == 0) return usage();

  std::ifstream in(mix_path);
  if (!in) {
    std::fprintf(stderr, "simtomp_serve: cannot read %s\n", mix_path.c_str());
    return 2;
  }
  const Result<simserve::Mix> mix = simserve::parseMix(in);
  if (!mix.isOk()) {
    std::fprintf(stderr, "simtomp_serve: %s\n",
                 mix.status().toString().c_str());
    return 2;
  }

  std::vector<gpusim::ArchSpec> specs(devices, gpusim::ArchSpec::testTiny());
  hostrt::DeviceManager mgr(std::move(specs));
  simserve::ServiceConfig config;
  config.shardCount = static_cast<uint32_t>(shards);
  simserve::LaunchService service(mgr, config);

  simserve::ReplayOptions options;
  options.hostWorkers = static_cast<uint32_t>(workers);
  const Result<simserve::ReplayReport> report =
      simserve::replayMix(service, mix.value(), options);
  if (!report.isOk()) {
    std::fprintf(stderr, "simtomp_serve: replay failed: %s\n",
                 report.status().toString().c_str());
    return 1;
  }
  std::printf("replay %s: %s\n", mix_path.c_str(),
              report.value().toString().c_str());
  std::ostringstream stats;
  service.dumpStats(stats);
  std::fputs(stats.str().c_str(), stdout);
  if (!stats_path.empty()) {
    std::ofstream stats_out(stats_path);
    if (!stats_out) {
      std::fprintf(stderr, "simtomp_serve: cannot write %s\n",
                   stats_path.c_str());
      return 1;
    }
    stats_out << stats.str();
  }
  return 0;
}

}  // namespace
}  // namespace simtomp

int main(int argc, char** argv) {
  if (argc < 2) return simtomp::usage();
  if (std::strcmp(argv[1], "gen") == 0) return simtomp::runGen(argc, argv);
  if (std::strcmp(argv[1], "replay") == 0) {
    return simtomp::runReplay(argc, argv);
  }
  return simtomp::usage();
}
