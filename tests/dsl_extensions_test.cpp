// Tests for the DSL extensions: schedule clauses, collapse(2), team
// reductions, and the omp_* query API.
#include <gtest/gtest.h>

#include <atomic>
#include <mutex>
#include <set>
#include <vector>

#include "dsl/dsl.h"

namespace simtomp::dsl {
namespace {

using gpusim::ArchSpec;
using gpusim::Counter;
using gpusim::Device;
using loopir::CanonicalLoop;
using loopir::CollapsedLoop2;

LaunchSpec spmdSpec(uint32_t threads = 64, uint32_t teams = 1) {
  LaunchSpec spec;
  spec.numTeams = teams;
  spec.threadsPerTeam = threads;
  return spec;
}

// ---------------- parallelForSchedule ----------------

TEST(DslScheduleTest, DynamicCoversSkewedWork) {
  Device dev(ArchSpec::testTiny());
  std::vector<std::atomic<int>> hits(50);
  auto stats = target(dev, spmdSpec(), [&](OmpContext& ctx) {
    parallelForSchedule(
        ctx, 50,
        [&hits](OmpContext& c, uint64_t iv) {
          // Skewed work: later iterations are heavier.
          c.gpu().work(iv * 3);
          hits[iv]++;
        },
        omprt::ScheduleClause{omprt::ForSchedule::kDynamic, 2},
        omprt::ParallelConfig{ExecMode::kSPMD, 8});
  });
  ASSERT_TRUE(stats.isOk());
  for (auto& h : hits) EXPECT_EQ(h.load(), 8);  // all 8 lanes of owner
}

TEST(DslScheduleTest, DynamicBeatsStaticOnSkewedWork) {
  auto run = [](omprt::ForSchedule kind) {
    Device dev(ArchSpec::testTiny());
    auto stats = target(dev, spmdSpec(128), [&](OmpContext& ctx) {
      parallelForSchedule(
          ctx, 64,
          [](OmpContext& c, uint64_t iv) {
            // The last quarter of the iterations is 40x heavier.
            c.gpu().work(iv >= 48 ? 2000 : 50);
          },
          omprt::ScheduleClause{kind, 2},
          omprt::ParallelConfig{ExecMode::kSPMD, 32});
    });
    EXPECT_TRUE(stats.isOk());
    return stats.value().cycles;
  };
  // Static chunked hands group 3 all sixteen heavy iterations
  // (~32,000 cycles); dynamic spreads them across the four groups, so
  // it must win clearly despite its per-grab atomic overhead.
  const uint64_t dynamic_cycles = run(omprt::ForSchedule::kDynamic);
  const uint64_t chunked_cycles = run(omprt::ForSchedule::kStaticChunked);
  EXPECT_LT(dynamic_cycles, chunked_cycles);
}

// ---------------- collapse(2) ----------------

TEST(DslCollapseTest, SimdCollapse2CoversCrossProduct) {
  Device dev(ArchSpec::testTiny());
  std::vector<std::atomic<int>> hits(6 * 7);
  const CollapsedLoop2 nest(CanonicalLoop::upTo(6), CanonicalLoop::upTo(7));
  auto stats = targetTeamsDistributeParallelFor(
      dev,
      [&] {
        LaunchSpec spec = spmdSpec();
        spec.parallelMode = ExecMode::kGeneric;
        spec.simdlen = 8;
        return spec;
      }(),
      8, [&](OmpContext& ctx, uint64_t) {
        simdCollapse2(ctx, nest, [&hits](OmpContext&, int64_t i, int64_t j) {
          hits[static_cast<size_t>(i) * 7 + static_cast<size_t>(j)]++;
        });
      });
  ASSERT_TRUE(stats.isOk());
  // 8 rows each run the full collapsed nest once.
  for (auto& h : hits) EXPECT_EQ(h.load(), 8);
}

TEST(DslCollapseTest, CollapseWithStridedLoopsOnDevice) {
  Device dev(ArchSpec::testTiny());
  const CollapsedLoop2 nest(CanonicalLoop::make(10, 0, -4).value(),   // 10,6,2
                            CanonicalLoop::make(1, 8, 3).value());    // 1,4,7
  std::mutex m;
  std::set<std::pair<int64_t, int64_t>> seen;
  auto stats = target(dev, spmdSpec(32), [&](OmpContext& ctx) {
    parallelForCollapse2(
        ctx, nest,
        [&](OmpContext& c, int64_t i, int64_t j) {
          if (c.simdGroupId() == 0) {
            std::lock_guard<std::mutex> lock(m);
            seen.insert({i, j});
          }
        },
        omprt::ParallelConfig{ExecMode::kSPMD, 4});
  });
  ASSERT_TRUE(stats.isOk());
  EXPECT_EQ(seen.size(), 9u);
  EXPECT_EQ(seen.count({10, 1}), 1u);
  EXPECT_EQ(seen.count({2, 7}), 1u);
  EXPECT_EQ(seen.count({6, 4}), 1u);
}

TEST(DslCollapseTest, ParallelForCollapse2SplitsAcrossGroups) {
  Device dev(ArchSpec::testTiny());
  std::vector<std::atomic<int>> hits(12 * 5);
  const CollapsedLoop2 nest(CanonicalLoop::upTo(12), CanonicalLoop::upTo(5));
  auto stats = target(dev, spmdSpec(64), [&](OmpContext& ctx) {
    parallelForCollapse2(
        ctx, nest,
        [&hits](OmpContext& c, int64_t i, int64_t j) {
          if (c.simdGroupId() == 0) {
            hits[static_cast<size_t>(i) * 5 + static_cast<size_t>(j)]++;
          }
        },
        omprt::ParallelConfig{ExecMode::kSPMD, 16});
  });
  ASSERT_TRUE(stats.isOk());
  for (auto& h : hits) EXPECT_EQ(h.load(), 1);
}

// ---------------- teamReduceAdd ----------------

TEST(DslReduceTest, FullHierarchicalReduction) {
  Device dev(ArchSpec::testTiny());
  double result = 0.0;
  auto stats = target(dev, spmdSpec(64), [&](OmpContext& ctx) {
    parallel(
        ctx,
        [&result](OmpContext& inner) {
          // Every device thread contributes exactly 1.0: lanes fold
          // into groups, groups into the team.
          const double total = teamReduceAdd(inner, 1.0);
          if (inner.gpu().threadId() == 0) result = total;
        },
        omprt::ParallelConfig{ExecMode::kSPMD, 8});
  });
  ASSERT_TRUE(stats.isOk());
  EXPECT_DOUBLE_EQ(result, 64.0);
}

TEST(DslReduceTest, MatchesSerialDotProduct) {
  Device dev(ArchSpec::testTiny());
  constexpr size_t kN = 256;
  std::vector<double> a(kN);
  std::vector<double> b(kN);
  for (size_t i = 0; i < kN; ++i) {
    a[i] = 0.25 * static_cast<double>(i % 17);
    b[i] = 1.0 / (1.0 + static_cast<double>(i % 5));
  }
  double expected = 0.0;
  for (size_t i = 0; i < kN; ++i) expected += a[i] * b[i];

  double result = 0.0;
  auto stats = target(dev, spmdSpec(64), [&](OmpContext& ctx) {
    parallel(
        ctx,
        [&](OmpContext& inner) {
          // Each lane accumulates a strided slice, then reduce.
          double local = 0.0;
          const uint64_t stride = inner.numThreads() * inner.simdGroupSize();
          const uint64_t start =
              inner.threadNum() * inner.simdGroupSize() + inner.simdGroupId();
          for (uint64_t i = start; i < kN; i += stride) {
            local += a[i] * b[i];
            inner.gpu().fma();
          }
          const double total = teamReduceAdd(inner, local);
          if (inner.gpu().threadId() == 0) result = total;
        },
        omprt::ParallelConfig{ExecMode::kSPMD, 16});
  });
  ASSERT_TRUE(stats.isOk());
  EXPECT_NEAR(result, expected, 1e-9);
}

// ---------------- omp_* API ----------------

TEST(OmpApiTest, QueriesMatchContext) {
  Device dev(ArchSpec::testTiny());
  auto stats = target(dev, spmdSpec(64, 3), [&](OmpContext& ctx) {
    EXPECT_EQ(omprt::ompGetNumTeams(ctx), 3u);
    EXPECT_LT(omprt::ompGetTeamNum(ctx), 3u);
    EXPECT_FALSE(omprt::ompInParallel(ctx));
    EXPECT_EQ(omprt::ompGetNumThreads(ctx), 1u);
    EXPECT_EQ(omprt::ompGetMaxThreads(ctx), 64u);
    EXPECT_FALSE(omprt::ompIsInitialDevice());
    parallel(
        ctx,
        [](OmpContext& inner) {
          EXPECT_TRUE(omprt::ompInParallel(inner));
          EXPECT_EQ(omprt::ompGetNumThreads(inner), 8u);
          EXPECT_EQ(omprt::ompGetSimdLen(inner), 8u);
          EXPECT_EQ(omprt::ompGetThreadNum(inner),
                    inner.gpu().threadId() / 8);
          EXPECT_EQ(omprt::ompGetSimdLane(inner),
                    inner.gpu().threadId() % 8);
        },
        omprt::ParallelConfig{ExecMode::kSPMD, 8});
  });
  ASSERT_TRUE(stats.isOk());
}

}  // namespace
}  // namespace simtomp::dsl
