// simcheck: the per-block checking engine.
//
// One BlockChecker instance observes one block's execution through the
// simulator's existing choke points: every charged span access, every
// barrier arrival, every sharing-space handout. It is owned by the
// launch (one per block, so host-parallel block execution needs no
// locking) and deposits findings into a CheckReport that the launch
// merges in block order.
//
// Race detection is FastTrack-style happens-before tracking: each
// thread carries a vector clock; barrier releases join the clocks of
// every participant (the engine already sequences those rendezvous, so
// they are exactly the synchronization the program actually has). Each
// touched 4-byte granule keeps shadow state — the last plain-write
// epoch plus the reads/atomics since — and an access that is not
// ordered after a conflicting epoch is a race. Plain reads never race
// with plain reads, atomics never race with atomics; everything else
// unordered does.
//
// Barrier-divergence detection mirrors the engine's sync points: the
// checker tracks which threads are parked where, flags overlapping
// warp syncs with different masks the moment they coexist, flags
// threads that exit while a barrier still waits on them, and sweeps
// any still-pending barrier when the fiber scheduler reports deadlock.
//
// The checker never charges simulated cycles, so modeled stats are
// bit-identical with checking on or off.
#pragma once

#include <cstddef>
#include <cstdint>
#include <map>
#include <set>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "simcheck/report.h"
#include "support/lane_mask.h"

namespace simtomp::simcheck {

enum class AccessKind : uint8_t { kRead = 0, kWrite, kAtomic };

/// Which 4-byte global-memory granules a block touched, and how.
/// Collected per block and compared across blocks after the launch:
/// blocks have no inter-block synchronization, so any granule where two
/// blocks conflict (not read/read, not atomic/atomic) is a race.
struct GlobalFootprint {
  static constexpr uint8_t kRead = 1;
  static constexpr uint8_t kWrite = 2;
  static constexpr uint8_t kAtomic = 4;
  std::unordered_map<uint64_t, uint8_t> granules;  ///< granule -> flags
};

inline constexpr uint32_t kGranuleBytes = 4;

class BlockChecker {
 public:
  /// Sentinel sharing-slot key for the team-level slot.
  static constexpr uint32_t kTeamSlot = 0xFFFFFFFFu;

  BlockChecker(const CheckConfig& config, uint32_t block_id,
               uint32_t num_threads, uint32_t warp_size);

  /// Address ranges used to classify raw pointers; accesses outside
  /// both ranges (host/stack memory) are ignored.
  void setSharedRange(const void* base, size_t bytes);
  void setGlobalRange(const void* base, size_t bytes);

  // ---- Hooks (called from the simulated block's one OS thread) ----

  /// A charged span access by `tid` at host pointer `ptr`.
  /// `block_private` marks runtime-owned transient allocations (e.g.
  /// sharing-space overflow staging): the allocator guarantees the
  /// block exclusive ownership for the allocation's lifetime, and the
  /// free-list may hand the same granules to another block afterwards,
  /// so such accesses are race-checked within the block but excluded
  /// from the cross-block footprint — address reuse across blocks is
  /// not sharing.
  void onAccess(uint32_t tid, const void* ptr, size_t bytes, AccessKind kind,
                bool block_private = false);
  /// An access to a runtime-internal protocol slot (TeamState /
  /// SimdGroupState publication fields), identified by a small key.
  void onSyntheticAccess(uint32_t tid, uint64_t key, bool is_write);
  /// Lock-style synchronization (rt::critical): acquire joins the
  /// lock's clock into the thread, release publishes the thread clock.
  void onLockAcquire(uint32_t tid, uint64_t lock_key);
  void onLockRelease(uint32_t tid, uint64_t lock_key);

  /// `tid` arrived at the sync point identified by `sync_key`. For warp
  /// syncs, `base_tid`/`mask` name the participating lanes (mask
  /// already restricted to lanes that exist); block barriers pass
  /// `is_block=true` and every thread participates.
  void onSyncArrive(uint32_t tid, const void* sync_key, uint32_t base_tid,
                    LaneMask mask, uint32_t warp_id, bool is_block);
  /// Bracket a convergent batch (the runtime's fast path replaying all
  /// lanes of a hazard-free SIMD body on one fiber). Inside the bracket
  /// every participating lane holds an identical vector clock — they
  /// were all released by the same barrier join and the body contains
  /// no further synchronization — so the happens-before verdict of a
  /// plain read is the same for every lane. Repeat reads of a granule
  /// already read (and not written) during the batch therefore skip the
  /// shadow lookup: one representative check per granule. Writes and
  /// atomics always touch shadow state, and the global footprint is
  /// always updated, so race-free programs get byte-identical reports
  /// with the fast path on or off.
  void beginConvergentBatch();
  void endConvergentBatch();

  /// `tid` returned from the kernel.
  void onThreadFinish(uint32_t tid);
  /// The block's fiber scheduler finished; `engine_ok` is false on
  /// deadlock. Emits barrier-divergence and sharing-leak findings.
  void onRunEnd(bool engine_ok);

  // ---- Sharing-space protocol (slot = group index or kTeamSlot) ----

  void onSharingBegin(uint32_t tid, uint32_t slot, uint32_t capacity_slots,
                      uint32_t num_args, bool overflowed);
  void onSharingStore(uint32_t tid, uint32_t slot, uint32_t index);
  void onSharingFetch(uint32_t tid, uint32_t slot);
  void onSharingEnd(uint32_t tid, uint32_t slot);

  // ---- Results ----

  [[nodiscard]] const CheckReport& report() const { return report_; }
  [[nodiscard]] const GlobalFootprint& footprint() const { return footprint_; }

 private:
  struct Epoch {
    uint32_t tid = kNoThread;
    uint32_t clock = 0;
  };
  /// Shadow state for one granule: last plain write plus the reads and
  /// atomics since (cleared by the next ordered plain write — sound,
  /// because happens-before is transitive through that write).
  struct Cell {
    Epoch write;
    std::vector<Epoch> reads;
    std::vector<Epoch> atomics;
    bool uninit_reported = false;
  };
  struct PendingSync {
    std::vector<uint32_t> participants;
    std::vector<uint32_t> arrived;
    LaneMask mask = 0;
    uint32_t warp_id = 0;
    bool is_block = false;
  };
  struct SharingSlot {
    bool active = false;
    bool overflowed = false;
    bool unpublished_reported = false;
    uint32_t declared_args = 0;
    uint32_t capacity = 0;
    uint64_t stored_bits = 0;  ///< bitmap of stored indices < 64
  };
  enum class ThreadState : uint8_t { kRunning, kBlocked, kFinished };

  [[nodiscard]] bool happensBefore(const Epoch& e, uint32_t tid) const {
    return vc_[tid][e.tid] >= e.clock;
  }
  [[nodiscard]] Epoch now(uint32_t tid) const { return {tid, vc_[tid][tid]}; }
  void recordEpoch(std::vector<Epoch>& list, uint32_t tid);
  void touchCell(std::unordered_map<uint64_t, Cell>& cells, uint64_t granule,
                 uint32_t tid, AccessKind kind, MemSpace space,
                 bool check_uninit);
  void raceDiag(uint32_t tid, uint32_t other, MemSpace space,
                uint64_t granule, const char* what);
  void releaseSync(const void* sync_key, PendingSync& sync);
  [[nodiscard]] const char* slotName(uint32_t slot) const;
  /// True when this access can skip touchCell under the convergent
  /// batch: a repeat plain read of a granule the batch already read and
  /// never wrote. Non-reads mark the granule written (and never skip).
  [[nodiscard]] bool batchDedupesAccess(std::unordered_set<uint64_t>& reads,
                                        std::unordered_set<uint64_t>& writes,
                                        uint64_t granule, AccessKind kind);

  CheckConfig config_;
  uint32_t block_id_;
  uint32_t num_threads_;
  uint32_t warp_size_;
  const std::byte* shared_base_ = nullptr;
  size_t shared_bytes_ = 0;
  const std::byte* global_base_ = nullptr;
  size_t global_bytes_ = 0;

  std::vector<std::vector<uint32_t>> vc_;  ///< per-thread vector clocks
  std::unordered_map<uint64_t, Cell> shared_cells_;
  std::unordered_map<uint64_t, Cell> global_cells_;
  std::unordered_map<uint64_t, Cell> synthetic_cells_;
  std::unordered_map<uint64_t, std::vector<uint32_t>> lock_clocks_;

  std::map<const void*, PendingSync> pending_;
  std::vector<ThreadState> thread_state_;
  std::vector<const void*> blocked_at_;
  std::set<const void*> divergence_reported_;
  std::set<std::pair<const void*, const void*>> mask_pair_reported_;

  std::map<uint32_t, SharingSlot> sharing_;  ///< ordered: leak sweep order
  GlobalFootprint footprint_;
  CheckReport report_;

  bool batch_active_ = false;
  std::unordered_set<uint64_t> batch_reads_shared_;
  std::unordered_set<uint64_t> batch_writes_shared_;
  std::unordered_set<uint64_t> batch_reads_global_;
  std::unordered_set<uint64_t> batch_writes_global_;
};

/// Cross-block pass: compare per-block global footprints (in block
/// order, so reports are deterministic for any host worker count) and
/// flag granules where two blocks conflict.
void analyzeCrossBlockRaces(
    const std::vector<std::pair<uint32_t, const GlobalFootprint*>>& blocks,
    CheckReport& report);

}  // namespace simtomp::simcheck
