// Ablation (paper section 5.3.1): the size of the variable sharing
// space. LLVM reserved 1,024 bytes; the paper grows it to 2,048 to
// accommodate SIMD groups. A space too small for the active group
// count forces global-memory overflow allocations per simd loop.
//
// The workload uses small SIMD groups (many groups -> thin slices) and
// an argument-heavy simd body, so each halving of the space pushes
// more groups onto the overflow path.
#include <benchmark/benchmark.h>

#include "bench_common.h"
#include "dsl/dsl.h"

namespace {

using namespace simtomp;
using bench::checkOk;
using bench::Row;

struct SharingRun {
  uint64_t cycles = 0;
  uint64_t overflows = 0;
};

SharingRun runWithSpace(uint32_t bytes) {
  gpusim::Device dev;
  dsl::LaunchSpec spec;
  spec.numTeams = 64;
  spec.threadsPerTeam = 256;
  spec.teamsMode = omprt::ExecMode::kSPMD;
  spec.parallelMode = omprt::ExecMode::kGeneric;
  // 32 groups per team: at 2,048 bytes each group's slice holds 7
  // pointer slots (>= the 6-slot payload below); at 1,024 bytes only 3,
  // so smaller spaces overflow to global memory.
  spec.simdlen = 8;
  spec.sharingSpaceBytes = bytes;
  auto stats = dsl::targetTeamsDistributeParallelFor(
      dev, spec, 64 * 64, [&](dsl::OmpContext& ctx, uint64_t) {
        double a = 1;
        double b = 2;
        double c = 3;
        double d = 4;
        double e = 5;
        auto body = [&a, &b, &c, &d, &e](dsl::OmpContext& inner, uint64_t) {
          inner.gpu().work(8);
          benchmark::DoNotOptimize(a + b + c + d + e);
        };
        auto outlined = loopir::outlineLoop(ctx, body, true, a, b, c, d, e);
        omprt::rt::simd(ctx, outlined.fn, 8, outlined.payload.data(),
                        outlined.payload.size());
      });
  const auto& s = checkOk(stats, "sharing-space kernel");
  return {s.cycles, s.counters.get(gpusim::Counter::kSharingSpaceOverflow)};
}

void BM_SharingSpace(benchmark::State& state) {
  const auto bytes = static_cast<uint32_t>(state.range(0));
  SharingRun run;
  for (auto _ : state) run = runWithSpace(bytes);
  state.counters["sim_cycles"] = static_cast<double>(run.cycles);
  state.counters["overflow_allocs"] = static_cast<double>(run.overflows);
}
BENCHMARK(BM_SharingSpace)
    ->Arg(512)
    ->Arg(1024)
    ->Arg(2048)
    ->Arg(4096)
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  const SharingRun base = runWithSpace(2048);
  std::vector<Row> rows;
  for (uint32_t bytes : {512u, 1024u, 4096u}) {
    const SharingRun r = runWithSpace(bytes);
    rows.push_back({std::to_string(bytes) + " bytes (" +
                        std::to_string(r.overflows) + " overflows)",
                    r.cycles,
                    static_cast<double>(base.cycles) /
                        static_cast<double>(r.cycles)});
  }
  bench::printTable(
      ("Ablation: sharing space size (paper default 2048; baseline had " +
       std::to_string(base.overflows) + " overflows)")
          .c_str(),
      "2048 bytes (paper)", base.cycles, rows);
  (void)bench::writeBenchJson("abl_sharing_space");
  return 0;
}
