#include "simfuzz/harness.h"

#include <algorithm>
#include <array>
#include <iomanip>
#include <sstream>

#include "dsl/dsl.h"
#include "gpusim/device.h"
#include "simfuzz/generator.h"
#include "simfuzz/minimize.h"
#include "simprof/metrics.h"

namespace simtomp::simfuzz {

namespace {

using dsl::OmpContext;
using gpusim::GlobalSpan;

// ---------------------------------------------------------------------
// Kernel construction
// ---------------------------------------------------------------------

/// Ballast payload captured by the inner simd body. Globalization in
/// generic parallel mode copies the whole body into the sharing space,
/// so N scales the sharing-space pressure: N=44 (352 bytes) overflows
/// a 256-byte space into global memory — the specified fallback path.
template <size_t N>
struct Ballast {
  std::array<int64_t, N> words{};
};

constexpr size_t kBallastWords[3] = {1, 16, 44};

template <size_t N>
Ballast<N> makeBallast() {
  Ballast<N> ballast;
  for (size_t i = 0; i < N; ++i) {
    ballast.words[i] = static_cast<int64_t>(i % 3);
  }
  return ballast;
}

/// Host-side mirror of Ballast<N>::words[idx % N].
int64_t ballastAt(uint32_t pressure, uint64_t idx) {
  const size_t n = kBallastWords[pressure];
  return static_cast<int64_t>((idx % n) % 3);
}

// The injected mutations (kernel lambdas below, never the reference):
//   kOffByOne       +1 on out[row] when simdlen > 1 and row % 7 == 3.
//                   Gated on *program* simdlen, not the runtime's
//                   clamped value, so every cell of the matrix diverges
//                   identically and cross-arch comparison stays valid.
//   kDropIteration  skip the last inner iteration of row 1 (fires only
//                   when outerTrip >= 2 and innerTrip >= 1).

/// Launch the program's kernel. Every store is owned by exactly one
/// OpenMP thread's leader lane (or goes through atomicAdd), so the
/// program is race-free by construction on every schedule.
template <size_t N>
Result<gpusim::KernelStats> launchKernel(gpusim::Device& dev,
                                         const FuzzProgram& p,
                                         const dsl::LaunchSpec& spec,
                                         GlobalSpan<double> out,
                                         GlobalSpan<double> out2,
                                         GlobalSpan<double> acc) {
  const uint64_t inner = p.innerTrip;
  const int64_t a = p.a;
  const int64_t b = p.b;
  const uint64_t outer = p.outerTrip;
  const InjectKind inject = p.inject;
  const uint32_t progSimdlen = p.simdlen;
  const BodyKind bodyKind = p.body;
  const Ballast<N> ballast = makeBallast<N>();

  if (p.construct == Construct::kBarrierParallel) {
    // Two phases split by a team barrier: phase 1 publishes the row
    // value into the out2 scratch, phase 2 reads it back and doubles
    // it. Full-SPMD launch (normalize() guarantees it).
    return dsl::target(dev, spec, [&](OmpContext& ctx) {
      const omprt::rt::Range r = omprt::rt::distributeStatic(ctx, outer);
      auto region = [out, out2, r, a, b, inject, progSimdlen](
                        OmpContext& c) {
        const uint32_t tn = c.threadNum();
        const uint32_t nt = c.numThreads();
        for (uint64_t row = r.begin + tn; row < r.end; row += nt) {
          if (c.isSimdGroupLeader()) {
            out2.set(c.gpu(), row,
                     static_cast<double>(a * static_cast<int64_t>(row) + b));
          }
        }
        omprt::rt::teamBarrier(c);
        for (uint64_t row = r.begin + tn; row < r.end; row += nt) {
          if (c.isSimdGroupLeader()) {
            const int64_t bias = (inject == InjectKind::kOffByOne &&
                                  progSimdlen > 1 && row % 7 == 3)
                                     ? 1
                                     : 0;
            out.set(c.gpu(), row,
                    out2.get(c.gpu(), row) * 2.0 + static_cast<double>(bias));
          }
        }
      };
      dsl::parallel(ctx, region, spec.parallelConfig());
    });
  }

  // Per-row body shared by the dpf and sched constructs. In SPMD
  // parallel mode every lane of the owning group runs it (hence the
  // leader guards); in generic mode only the leader does.
  auto rowBody = [out, out2, acc, inner, a, b, inject, progSimdlen, bodyKind,
                  ballast](OmpContext& ctx, uint64_t row) {
    const int64_t bias =
        (inject == InjectKind::kOffByOne && progSimdlen > 1 && row % 7 == 3)
            ? 1
            : 0;
    switch (bodyKind) {
      case BodyKind::kAffineMap: {
        if (ctx.isSimdGroupLeader()) {
          out.set(ctx.gpu(), row,
                  static_cast<double>(a * static_cast<int64_t>(row) + b +
                                      bias));
        }
        break;
      }
      case BodyKind::kSimdNest: {
        if (ctx.isSimdGroupLeader()) {
          out.set(ctx.gpu(), row,
                  static_cast<double>(a * static_cast<int64_t>(row) + b +
                                      bias));
        }
        auto body = [out2, ballast, row, inner, a, b, inject](OmpContext& c,
                                                              uint64_t k) {
          if (inject == InjectKind::kDropIteration && row == 1 &&
              k + 1 == inner) {
            return;
          }
          const int64_t v = a * static_cast<int64_t>(row + k) + b +
                            ballast.words[(row + k) % N];
          out2.set(c.gpu(), row * inner + k, static_cast<double>(v));
        };
        dsl::simd(ctx, inner, body);
        break;
      }
      case BodyKind::kConvergentMap: {
        if (ctx.isSimdGroupLeader()) {
          out.set(ctx.gpu(), row,
                  static_cast<double>(a * static_cast<int64_t>(row) + b +
                                      bias));
        }
        // Hazard-free by construction (no branches, atomics or
        // barriers), so the convergent declaration is truthful and the
        // fast path may batch it. The injected mutations deliberately
        // stay out of this body.
        auto body = dsl::convergent(
            [out2, ballast, row, inner, a, b](OmpContext& c, uint64_t k) {
              const int64_t v = a * static_cast<int64_t>(row + k) + b +
                                ballast.words[(row + k) % N];
              out2.set(c.gpu(), row * inner + k, static_cast<double>(v));
            });
        dsl::simd(ctx, inner, body);
        break;
      }
      case BodyKind::kSimdReduce: {
        auto body = [ballast, row, a, b](OmpContext&, uint64_t k) -> double {
          return static_cast<double>(a * static_cast<int64_t>(row + k) + b +
                                     ballast.words[(row + k) % N]);
        };
        const double total = dsl::simdReduceAdd(ctx, inner, body);
        if (ctx.isSimdGroupLeader()) {
          out.set(ctx.gpu(), row, total + static_cast<double>(bias));
        }
        break;
      }
      case BodyKind::kAtomicSum: {
        if (ctx.isSimdGroupLeader()) {
          out.set(ctx.gpu(), row,
                  static_cast<double>(a * static_cast<int64_t>(row) + b +
                                      bias));
        }
        auto body = [acc, row, inner, inject](OmpContext& c, uint64_t k) {
          if (inject == InjectKind::kDropIteration && row == 1 &&
              k + 1 == inner) {
            return;
          }
          acc.atomicAdd(c.gpu(), 0, static_cast<double>((row + k) % 5));
        };
        dsl::simd(ctx, inner, body);
        break;
      }
    }
  };

  if (p.construct == Construct::kScheduledFor) {
    return dsl::target(dev, spec, [&](OmpContext& ctx) {
      const omprt::rt::Range r = omprt::rt::distributeStatic(ctx, outer);
      auto shifted = [&rowBody, base = r.begin](OmpContext& c,
                                                uint64_t logical) {
        rowBody(c, base + logical);
      };
      dsl::parallelForSchedule(ctx, r.size(), shifted,
                               omprt::ScheduleClause{p.schedKind, p.schedChunk},
                               spec.parallelConfig());
    });
  }
  return dsl::targetTeamsDistributeParallelFor(dev, spec, outer, rowBody);
}

Result<gpusim::KernelStats> launchDispatch(gpusim::Device& dev,
                                           const FuzzProgram& p,
                                           const dsl::LaunchSpec& spec,
                                           GlobalSpan<double> out,
                                           GlobalSpan<double> out2,
                                           GlobalSpan<double> acc) {
  switch (p.pressure) {
    case 1:
      return launchKernel<16>(dev, p, spec, out, out2, acc);
    case 2:
      return launchKernel<44>(dev, p, spec, out, out2, acc);
    default:
      return launchKernel<1>(dev, p, spec, out, out2, acc);
  }
}

// ---------------------------------------------------------------------
// Differential cells
// ---------------------------------------------------------------------

gpusim::ArchSpec archById(int id) {
  switch (id) {
    case 1:
      return gpusim::ArchSpec::nvidiaA100();
    case 2:
      return gpusim::ArchSpec::amdMI100();
    default:
      return gpusim::ArchSpec::testTiny();
  }
}

struct CellSpec {
  const char* name;
  int archId;               // 0 testTiny, 1 a100, 2 mi100
  uint32_t hostWorkers;
  omprt::FastPathMode fastPath;
  bool compareStats;        // same-arch determinism oracle vs cell 0
  bool crossArchOnly;
};

/// The differential matrix. Cell 0 is the stats anchor; the other
/// testTiny cells must reproduce its modeled stats bit-for-bit
/// (worker-count and fast-path determinism). Outputs and check
/// cleanliness are compared on every cell.
constexpr CellSpec kCells[] = {
    {"tiny/w1/fp-off", 0, 1, omprt::FastPathMode::kOff, false, false},
    {"tiny/w8/fp-off", 0, 8, omprt::FastPathMode::kOff, true, false},
    {"tiny/w1/fp-on", 0, 1, omprt::FastPathMode::kOn, true, false},
    {"tiny/w8/fp-auto", 0, 8, omprt::FastPathMode::kAuto, true, false},
    {"a100/w8/fp-on", 1, 8, omprt::FastPathMode::kOn, false, true},
    {"mi100/w8/fp-on", 2, 8, omprt::FastPathMode::kOn, false, true},
};

std::string formatValue(double v) {
  std::ostringstream out;
  out << std::setprecision(17) << v;
  return out.str();
}

/// Name a flat data index by segment: out[...], out2[...] or acc.
std::string indexName(const FuzzProgram& p, size_t i) {
  if (i < p.outerTrip) return "out[" + std::to_string(i) + "]";
  const size_t j = i - p.outerTrip;
  if (j < p.outerTrip * p.innerTrip) return "out2[" + std::to_string(j) + "]";
  return "acc";
}

std::string firstLine(const std::string& text) {
  const size_t eol = text.find('\n');
  return eol == std::string::npos ? text : text.substr(0, eol);
}

class NoteSink {
 public:
  NoteSink(DiffResult& result, uint32_t maxNotes)
      : result_(result), max_notes_(maxNotes) {}

  void add(std::string note) {
    if (result_.notes.size() < max_notes_) {
      result_.notes.push_back(std::move(note));
    } else {
      ++result_.droppedNotes;
    }
  }

 private:
  DiffResult& result_;
  uint32_t max_notes_;
};

}  // namespace

std::vector<double> referenceRun(const FuzzProgram& p) {
  std::vector<double> data(p.dataSize(), 0.0);
  double* out = data.data();
  double* out2 = data.data() + p.outerTrip;
  double& acc = data[p.dataSize() - 1];
  const uint64_t inner = p.innerTrip;

  if (p.construct == Construct::kBarrierParallel) {
    for (uint64_t row = 0; row < p.outerTrip; ++row) {
      const int64_t v = p.a * static_cast<int64_t>(row) + p.b;
      out2[row] = static_cast<double>(v);
      out[row] = static_cast<double>(v) * 2.0;
    }
    return data;
  }

  for (uint64_t row = 0; row < p.outerTrip; ++row) {
    const int64_t rowValue = p.a * static_cast<int64_t>(row) + p.b;
    switch (p.body) {
      case BodyKind::kAffineMap:
        out[row] = static_cast<double>(rowValue);
        break;
      case BodyKind::kSimdNest:
      case BodyKind::kConvergentMap:
        out[row] = static_cast<double>(rowValue);
        for (uint64_t k = 0; k < inner; ++k) {
          out2[row * inner + k] = static_cast<double>(
              p.a * static_cast<int64_t>(row + k) + p.b +
              ballastAt(p.pressure, row + k));
        }
        break;
      case BodyKind::kSimdReduce: {
        double total = 0.0;
        for (uint64_t k = 0; k < inner; ++k) {
          total += static_cast<double>(p.a * static_cast<int64_t>(row + k) +
                                       p.b + ballastAt(p.pressure, row + k));
        }
        out[row] = total;
        break;
      }
      case BodyKind::kAtomicSum:
        out[row] = static_cast<double>(rowValue);
        for (uint64_t k = 0; k < inner; ++k) {
          acc += static_cast<double>((row + k) % 5);
        }
        break;
    }
  }
  return data;
}

SimRun runOnSim(const FuzzProgram& p, const RunOptions& opt) {
  SimRun run;
  gpusim::Device dev(opt.arch);
  const size_t n = p.dataSize();
  auto alloc = dev.allocateArray<double>(n);
  if (!alloc.isOk()) {
    run.status = alloc.status();
    return run;
  }
  GlobalSpan<double> all = alloc.value();
  std::fill(all.hostSpan().begin(), all.hostSpan().end(), 0.0);
  const GlobalSpan<double> out = all.subspan(0, p.outerTrip);
  const GlobalSpan<double> out2 =
      all.subspan(p.outerTrip, p.outerTrip * p.innerTrip);
  const GlobalSpan<double> acc = all.subspan(n - 1, 1);

  dsl::LaunchSpec spec = p.launchSpec();
  spec.hostWorkers = opt.hostWorkers;
  spec.fastPath = opt.fastPath;
  if (!opt.faultSpec.empty()) spec.faultSpec = opt.faultSpec;

  auto stats = launchDispatch(dev, p, spec, out, out2, acc);
  simprof::MetricsRegistry::global().add(simprof::metric::kFuzzRunsTotal);

  const simcheck::CheckReport& report = dev.lastCheckReport();
  run.checkClean = report.clean();
  if (!run.checkClean) run.checkSummary = report.summary();

  if (!stats.isOk()) {
    run.status = stats.status();
    return run;
  }
  run.statsKey =
      std::to_string(stats.value().cycles) + "|" + stats.value().csvRow();
  run.data.assign(all.hostSpan().begin(), all.hostSpan().end());
  return run;
}

DiffResult diffProgram(const FuzzProgram& p, const DiffOptions& opt) {
  DiffResult result;
  NoteSink notes(result, opt.maxNotes);
  const std::vector<double> want = referenceRun(p);

  std::string anchorStats;  // cell 0's stats key (same-arch oracle)
  for (const CellSpec& cell : kCells) {
    if (cell.crossArchOnly && !opt.crossArch) continue;

    RunOptions ro;
    ro.arch = archById(cell.archId);
    ro.hostWorkers = cell.hostWorkers;
    ro.fastPath = cell.fastPath;
    ro.faultSpec = opt.faultSpec;
    const SimRun run = runOnSim(p, ro);
    ++result.runs;

    if (!run.checkClean) {
      notes.add(std::string(cell.name) +
                ": check report not clean: " + firstLine(run.checkSummary));
    }
    if (!run.status.isOk()) {
      notes.add(std::string(cell.name) +
                ": launch failed: " + firstLine(run.status.toString()));
      continue;
    }
    for (size_t i = 0; i < want.size(); ++i) {
      if (run.data[i] != want[i]) {
        notes.add(std::string(cell.name) + ": " + indexName(p, i) + " = " +
                  formatValue(run.data[i]) + " want " + formatValue(want[i]));
      }
    }
    if (cell.compareStats) {
      if (anchorStats.empty()) {
        // Anchor failed; nothing to compare against.
      } else if (run.statsKey != anchorStats) {
        notes.add(std::string(cell.name) +
                  ": modeled stats differ from tiny/w1/fp-off");
      }
    } else if (cell.archId == 0) {
      anchorStats = run.statsKey;
    }
    if (opt.failFast && result.diverged()) break;
  }
  return result;
}

CampaignResult runCampaign(const CampaignOptions& opt) {
  CampaignResult result;
  Generator gen(opt.generatorSalt);
  auto& metrics = simprof::MetricsRegistry::global();
  std::ostringstream log;

  log << "simfuzz findings v1\n";
  log << "seeds=[" << opt.seedBegin << "," << opt.seedEnd << ")"
      << " archs=" << (opt.diff.crossArch ? "tiny+a100+mi100" : "tiny")
      << " inject=" << injectKindName(opt.inject) << " fault="
      << (opt.diff.faultSpec.empty() ? "off" : opt.diff.faultSpec.c_str())
      << "\n";

  for (uint64_t seed = opt.seedBegin; seed < opt.seedEnd; ++seed) {
    FuzzProgram p = gen.generate(seed);
    p.inject = opt.inject;
    ++result.programs;
    metrics.add(simprof::metric::kFuzzProgramsTotal);

    const DiffResult diff = diffProgram(p, opt.diff);
    result.runs += diff.runs;
    if (!diff.diverged()) {
      log << "seed=" << seed << " ok\n";
      continue;
    }

    metrics.add(simprof::metric::kFuzzDivergencesTotal);
    Finding finding;
    finding.seed = seed;
    finding.program = p;
    finding.notes = diff.notes;
    finding.minimized = p;

    log << "seed=" << seed << " DIVERGE notes=" << diff.notes.size();
    if (diff.droppedNotes != 0) log << " (+" << diff.droppedNotes << " more)";
    log << "\n";
    for (const std::string& note : diff.notes) {
      log << "  note " << note << "\n";
    }
    log << "  program: " << p.serialize() << "\n";

    if (opt.minimize) {
      DiffOptions minimizeDiff = opt.diff;
      minimizeDiff.failFast = true;
      auto pred = [&](const FuzzProgram& candidate) {
        const DiffResult d = diffProgram(candidate, minimizeDiff);
        result.runs += d.runs;
        return d.diverged();
      };
      const MinimizeResult mini = minimizeProgram(p, pred);
      finding.minimized = mini.program;
      finding.minimizeSteps = mini.steps;
      result.minimizeSteps += mini.steps;
      metrics.add(simprof::metric::kFuzzMinimizeStepsTotal, mini.steps);
      log << "  minimized (" << mini.steps << " steps, " << mini.tested
          << " candidates): " << mini.program.serialize() << "\n";
    }
    result.findings.push_back(std::move(finding));
  }

  log << "summary programs=" << result.programs << " runs=" << result.runs
      << " divergences=" << result.findings.size()
      << " minimize-steps=" << result.minimizeSteps << "\n";
  result.log = log.str();
  return result;
}

}  // namespace simtomp::simfuzz
