// Asynchronous target tasks (extension; Tian et al. [26]).
//
// `#pragma omp target nowait` creates a deferred target task that a
// hidden helper thread executes while the host thread continues. This
// module provides that machinery: a TargetTaskQueue owning one helper
// thread; enqueue() returns a future for the kernel's stats, and
// drain() gives taskwait semantics.
#pragma once

#include <condition_variable>
#include <deque>
#include <functional>
#include <future>
#include <mutex>
#include <thread>

#include "gpusim/device.h"
#include "omprt/target.h"
#include "support/status.h"

namespace simtomp::hostrt {

class TargetTaskQueue {
 public:
  explicit TargetTaskQueue(gpusim::Device& device);
  ~TargetTaskQueue();

  TargetTaskQueue(const TargetTaskQueue&) = delete;
  TargetTaskQueue& operator=(const TargetTaskQueue&) = delete;

  /// Enqueue a deferred target region (`target nowait`).
  std::future<Result<gpusim::KernelStats>> enqueue(
      omprt::TargetConfig config, omprt::TargetRegionFn region);

  /// Block until every enqueued task has completed (`taskwait`).
  void drain();

  /// Tasks not yet retired: the queued tasks *plus* the one the helper
  /// thread is currently executing. The in-flight task counts until the
  /// helper retires it, so pendingTasks() == 0 holds exactly when
  /// drain() would not block — but a task whose future is already
  /// ready may still be counted for the instant between set_value and
  /// retirement. Use completedTasks() to observe task completion, and
  /// the returned future to observe a specific task's result.
  [[nodiscard]] size_t pendingTasks() const;
  [[nodiscard]] uint64_t completedTasks() const { return completed_; }

 private:
  struct Task {
    omprt::TargetConfig config;
    omprt::TargetRegionFn region;
    std::promise<Result<gpusim::KernelStats>> promise;
  };

  void helperLoop();

  gpusim::Device* device_;
  mutable std::mutex mutex_;
  std::condition_variable cv_;
  std::condition_variable idle_cv_;
  std::deque<Task> queue_;
  bool shutdown_ = false;
  bool busy_ = false;
  uint64_t completed_ = 0;
  std::thread helper_;
};

}  // namespace simtomp::hostrt
