// Convergence classification for the SIMD fast path.
//
// The interpreter's hot loop (rt::simd / rt::simdLoopReduceAdd) can run
// a SIMD construct's body for all lanes of a convergent warp in a tight
// host loop on one fiber — but only when the body is known to contain
// no barrier, no cross-lane op, no atomic and no divergent branch, so
// that batched execution charges the exact same modeled cycles as the
// lane-per-fiber path.
//
// Bodies get classified two ways, both cached here per outlined
// function pointer:
//
//   declared — the program wrapped the body in dsl::convergent(...),
//              an explicit promise. Trusted immediately; a lie trips
//              the kForbid hazard guard and fails the block loudly.
//   probed   — unknown bodies are executed once per block on the
//              ordinary lane-per-fiber path with hazard *counting*
//              enabled (zero modeled cost). Once every lane of a full
//              SIMD group reports a hazard-free body, the function is
//              promoted; one observed hazard rejects it forever.
//
// Either way the modeled cycles, counters, traces, profiles and
// simcheck verdicts are bit-identical with the fast path on or off —
// only host wall-time changes.
#pragma once

#include <cstdint>
#include <shared_mutex>
#include <unordered_map>

namespace simtomp::omprt {

/// Launch-level fast-path switch. kAuto consults SIMTOMP_FAST
/// ("0"/"off"/"false" disable; anything else, or unset, enables).
enum class FastPathMode : uint8_t { kAuto, kOn, kOff };

/// Resolve a FastPathMode to on/off (reads the environment for kAuto).
[[nodiscard]] bool resolveFastPath(FastPathMode mode);

/// Process-wide verdict cache, keyed by outlined body function pointer.
/// Registration order in the dispatcher cascade is append-only, so a
/// function pointer identifies one body for the process lifetime.
class ConvergenceCache {
 public:
  enum class Verdict : uint8_t {
    kUnknown,   ///< never seen / probe incomplete
    kDeclared,  ///< dsl::convergent promise — fast path immediately
    kEligible,  ///< probe-promoted: a full group ran it hazard-free
    kRejected,  ///< a hazard was observed; never fast-path this body
  };

  static ConvergenceCache& global();

  /// dsl::convergent annotation: trust the body unless already rejected.
  void declareConvergent(const void* fn);

  [[nodiscard]] Verdict lookup(const void* fn) const;

  /// One lane's probe outcome for `fn` (only lanes that executed at
  /// least one iteration report). `clean=false` rejects the body
  /// permanently; `group_size` clean reports promote it to kEligible.
  void reportProbe(const void* fn, bool clean, uint32_t group_size);

  /// Drop all verdicts (tests only; racing launches must be quiesced).
  void clearForTest();

 private:
  struct Entry {
    Verdict verdict = Verdict::kUnknown;
    uint32_t cleanLanes = 0;
  };

  mutable std::shared_mutex mutex_;
  std::unordered_map<const void*, Entry> entries_;
};

}  // namespace simtomp::omprt
