// Minimal leveled logger. Thread-safe at line granularity.
//
// The simulator is deliberately quiet by default (kWarn); tests and the
// benches bump verbosity through setLogLevel or the SIMTOMP_LOG env var
// (trace|debug|info|warn|error|off). SIMTOMP_LOG_FILE (or setLogFile)
// redirects log lines from stderr to a file, appending.
#pragma once

#include <cstdarg>
#include <string>
#include <string_view>

namespace simtomp {

enum class LogLevel { kTrace = 0, kDebug, kInfo, kWarn, kError, kOff };

LogLevel logLevel();
void setLogLevel(LogLevel level);
/// Parse "trace"/"debug"/... (case-insensitive); returns kWarn on garbage.
LogLevel parseLogLevel(std::string_view name);

/// Redirect log output to `path` (append mode); "" restores stderr.
/// An unopenable path keeps stderr and returns false.
bool setLogFile(const std::string& path);

/// Re-read SIMTOMP_LOG / SIMTOMP_LOG_FILE (normally consulted once, on
/// first use). Exposed so tests can exercise the env plumbing.
void reinitLogFromEnvForTest();

namespace detail {
void logLine(LogLevel level, const char* fmt, ...)
    __attribute__((format(printf, 2, 3)));
}  // namespace detail

}  // namespace simtomp

#define SIMTOMP_LOG(level, ...)                              \
  do {                                                       \
    if (static_cast<int>(level) >=                           \
        static_cast<int>(::simtomp::logLevel())) {           \
      ::simtomp::detail::logLine((level), __VA_ARGS__);      \
    }                                                        \
  } while (false)

#define SIMTOMP_TRACE(...) SIMTOMP_LOG(::simtomp::LogLevel::kTrace, __VA_ARGS__)
#define SIMTOMP_DEBUG(...) SIMTOMP_LOG(::simtomp::LogLevel::kDebug, __VA_ARGS__)
#define SIMTOMP_INFO(...) SIMTOMP_LOG(::simtomp::LogLevel::kInfo, __VA_ARGS__)
#define SIMTOMP_WARN(...) SIMTOMP_LOG(::simtomp::LogLevel::kWarn, __VA_ARGS__)
#define SIMTOMP_ERROR(...) SIMTOMP_LOG(::simtomp::LogLevel::kError, __VA_ARGS__)
