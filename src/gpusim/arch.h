// Architecture description for the SIMT simulator.
//
// Two presets mirror the paper's hardware discussion: an NVIDIA-style
// device (32-lane warps, warp-level barriers available; modeled after
// the A100 used in paper section 6.1) and an AMD-style device (64-lane
// wavefronts, no warp-level barrier support in the runtime, paper
// section 5.4.1). The runtime consults hasWarpLevelBarrier to decide
// whether generic-SIMD mode is available at all.
#pragma once

#include <cstdint>
#include <string>

#include "support/status.h"

namespace simtomp::gpusim {

enum class Vendor : uint8_t { kNvidia, kAmd };

struct ArchSpec {
  Vendor vendor = Vendor::kNvidia;
  std::string name = "sim-sm80";

  /// Lanes per warp (NVIDIA) / wavefront (AMD). Must be a power of two
  /// and <= 64 (LaneMask width).
  uint32_t warpSize = 32;

  /// Streaming multiprocessors; blocks are scheduled over these in waves.
  uint32_t numSMs = 108;

  /// Warp instruction schedulers per SM: the SM can issue for this many
  /// warps per cycle, bounding block throughput.
  uint32_t warpSchedulersPerSM = 4;

  uint32_t maxThreadsPerBlock = 1024;

  /// Concurrent threads resident on one SM (occupancy bound).
  uint32_t maxThreadsPerSM = 2048;

  /// Shared ("local data share" on AMD) memory per block, bytes.
  uint32_t sharedMemPerBlock = 48 * 1024;

  /// Total shared memory per SM (occupancy bound across resident
  /// blocks).
  uint32_t sharedMemPerSM = 164 * 1024;

  /// Whether the runtime may synchronize a subset of a warp with a lane
  /// mask (CUDA __syncwarp(mask)). The paper notes LLVM/OpenMP has no
  /// wavefront-level barrier on AMD, which disables generic-SIMD there.
  bool hasWarpLevelBarrier = true;

  /// A100-like preset (the paper's evaluation platform).
  static ArchSpec nvidiaA100();
  /// MI100-like preset with the paper's stated runtime limitation.
  static ArchSpec amdMI100();
  /// Tiny configuration for unit tests (2 SMs, 32-lane warps).
  static ArchSpec testTiny();

  [[nodiscard]] Status validate() const;
};

}  // namespace simtomp::gpusim
