#include "hostrt/async.h"

namespace simtomp::hostrt {

TargetTaskQueue::TargetTaskQueue(gpusim::Device& device)
    : device_(&device), helper_([this] { helperLoop(); }) {}

TargetTaskQueue::~TargetTaskQueue() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    shutdown_ = true;
  }
  cv_.notify_all();
  helper_.join();
}

std::future<Result<gpusim::KernelStats>> TargetTaskQueue::enqueue(
    omprt::TargetConfig config, omprt::TargetRegionFn region) {
  Task task{config, std::move(region), {}};
  auto future = task.promise.get_future();
  {
    std::lock_guard<std::mutex> lock(mutex_);
    queue_.push_back(std::move(task));
    ++enqueued_;
  }
  cv_.notify_one();
  return future;
}

void TargetTaskQueue::drain() {
  std::unique_lock<std::mutex> lock(mutex_);
  // Snapshot the enqueue counter: drain owes completion only to tasks
  // submitted before it. Waiting for "queue empty and idle" instead
  // would never return under a producer that keeps the queue non-empty.
  const uint64_t target = enqueued_;
  idle_cv_.wait(lock, [this, target] {
    return completed_.load(std::memory_order_relaxed) >= target;
  });
}

uint64_t TargetTaskQueue::enqueuedTasks() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return enqueued_;
}

size_t TargetTaskQueue::pendingTasks() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return queue_.size() + (busy_ ? 1 : 0);
}

void TargetTaskQueue::helperLoop() {
  for (;;) {
    Task task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      cv_.wait(lock, [this] { return shutdown_ || !queue_.empty(); });
      if (queue_.empty()) {
        // shutdown with an empty queue
        idle_cv_.notify_all();
        return;
      }
      task = std::move(queue_.front());
      queue_.pop_front();
      busy_ = true;
    }
    // The helper thread must survive anything the target region does:
    // an escaped exception would std::terminate the process, wedge
    // drain() and leak the in-flight pendingTasks() count. Convert
    // every failure to a Status on the task's future instead.
    Result<gpusim::KernelStats> result = Status::internal("task did not run");
    try {
      result = omprt::launchTarget(*device_, task.config, task.region);
    } catch (const StatusException& e) {
      result = e.status();
    } catch (const std::exception& e) {
      result = Status::internal(std::string("target task threw: ") + e.what());
    } catch (...) {
      result = Status::internal("target task threw a non-standard exception");
    }
    task.promise.set_value(std::move(result));
    {
      std::lock_guard<std::mutex> lock(mutex_);
      busy_ = false;
      completed_.fetch_add(1, std::memory_order_release);
    }
    idle_cv_.notify_all();
  }
}

}  // namespace simtomp::hostrt
