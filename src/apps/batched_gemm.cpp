#include "apps/batched_gemm.h"

#include "dsl/dsl.h"
#include "support/rng.h"

namespace simtomp::apps {

namespace {

using gpusim::GlobalSpan;
using omprt::OmpContext;

/// One output element C[item][i][j] = sum_k A[item][i][k] * B[item][k][j].
inline void gemmElement(OmpContext& ctx, const GlobalSpan<double>& a,
                        const GlobalSpan<double>& b,
                        const GlobalSpan<double>& c, uint32_t m,
                        uint64_t item, uint64_t e) {
  gpusim::ThreadCtx& t = ctx.gpu();
  const uint64_t i = e / m;
  const uint64_t j = e % m;
  const uint64_t base = item * m * m;
  double sum = 0.0;
  for (uint32_t k = 0; k < m; ++k) {
    sum += a.get(t, base + i * m + k) * b.get(t, base + k * m + j);
    t.fma();
  }
  c.set(t, base + e, sum);
}

}  // namespace

BatchedGemmWorkload generateBatchedGemm(uint32_t batch, uint32_t m,
                                        uint64_t seed) {
  Rng rng(seed);
  BatchedGemmWorkload w;
  w.batch = batch;
  w.m = m;
  const size_t n = static_cast<size_t>(batch) * m * m;
  w.a.resize(n);
  w.b.resize(n);
  for (double& v : w.a) v = rng.nextDouble(-2.0, 2.0);
  for (double& v : w.b) v = rng.nextDouble(-2.0, 2.0);
  return w;
}

std::vector<double> batchedGemmReference(const BatchedGemmWorkload& w) {
  const uint32_t m = w.m;
  std::vector<double> c(w.a.size(), 0.0);
  for (uint64_t item = 0; item < w.batch; ++item) {
    const uint64_t base = item * m * m;
    for (uint64_t i = 0; i < m; ++i) {
      for (uint64_t j = 0; j < m; ++j) {
        double sum = 0.0;
        for (uint32_t k = 0; k < m; ++k) {
          sum += w.a[base + i * m + k] * w.b[base + k * m + j];
        }
        c[base + i * m + j] = sum;
      }
    }
  }
  return c;
}

Result<AppRunResult> runBatchedGemm(gpusim::Device& device,
                                    const BatchedGemmWorkload& w,
                                    const BatchedGemmOptions& options) {
  auto dev_a = toDevice<double>(device, w.a);
  if (!dev_a.isOk()) return dev_a.status();
  auto dev_b = toDevice<double>(device, w.b);
  if (!dev_b.isOk()) return dev_b.status();
  auto dev_c = zeroDevice<double>(device, w.a.size());
  if (!dev_c.isOk()) return dev_c.status();
  const GlobalSpan<double> a = dev_a.value();
  const GlobalSpan<double> b = dev_b.value();
  const GlobalSpan<double> c = dev_c.value();
  const uint32_t m = w.m;
  const uint64_t elements = static_cast<uint64_t>(m) * m;

  dsl::LaunchSpec spec;
  spec.numTeams = options.numTeams;
  spec.threadsPerTeam = options.threadsPerTeam;
  spec.teamsMode = omprt::ExecMode::kSPMD;
  spec.parallelMode =
      options.simdlen > 1 ? options.parallelMode : omprt::ExecMode::kSPMD;
  spec.simdlen = options.simdlen;

  auto run = dsl::targetTeamsDistributeParallelFor(
      device, spec, w.batch, [&](OmpContext& ctx, uint64_t item) {
        if (options.simdlen <= 1) {
          for (uint64_t e = 0; e < elements; ++e) {
            ctx.gpu().work(2);
            gemmElement(ctx, a, b, c, m, item, e);
          }
        } else {
          dsl::simd(ctx, elements,
                    [&a, &b, &c, m, item](OmpContext& inner, uint64_t e) {
                      gemmElement(inner, a, b, c, m, item, e);
                    });
        }
      });

  AppRunResult result;
  if (run.isOk()) {
    result.stats = run.value();
    const std::vector<double> got = toHost(c);
    const std::vector<double> reference = batchedGemmReference(w);
    result.maxError = maxAbsDiff(got, reference);
    result.verified = result.maxError < 1e-11;
  }
  (void)device.freeArray(a.data());
  (void)device.freeArray(b.data());
  (void)device.freeArray(c.data());
  if (!run.isOk()) return run.status();
  return result;
}

}  // namespace simtomp::apps
