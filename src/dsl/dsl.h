// Directive DSL: the front-end stand-in for OpenMP pragmas.
//
// Clang's role in the paper — recognizing `#pragma omp ...` and calling
// the OpenMP IR Builder with trip-count and body callbacks — is played
// here by a small set of composable functions whose names mirror the
// directives:
//
//   target(...)                            #pragma omp target teams
//   targetTeamsDistribute(...)             ... teams distribute
//   targetTeamsDistributeParallelFor(...)  ... teams distribute parallel for
//   parallelFor(ctx, ...)                  #pragma omp parallel for
//   simd(ctx, ...)                         #pragma omp simd
//   simdReduceAdd(ctx, ...)                ... simd reduction(+:...)
//
// Mode selection follows the paper's guidance (section 6.5): a
// LaunchSpec carries the teams/parallel execution modes explicitly, and
// inferSpmd() implements the "tightly nested => SPMD" rule for callers
// that want it applied automatically.
#pragma once

#include <cstdint>
#include <type_traits>
#include <utility>

#include "gpusim/device.h"
#include "loopir/builder.h"
#include "loopir/canonical_loop.h"
#include "loopir/globalize.h"
#include "loopir/outline.h"
#include "omprt/convergence.h"
#include "omprt/omp_api.h"
#include "omprt/runtime.h"
#include "omprt/schedule.h"
#include "omprt/target.h"

namespace simtomp::dsl {

using omprt::ExecMode;
using omprt::OmpContext;

struct LaunchSpec {
  /// 0 = auto (tuner entry, else one team per SM).
  uint32_t numTeams = 1;
  /// 0 = auto (tuner entry, else 128 clipped to the architecture).
  uint32_t threadsPerTeam = 128;
  ExecMode teamsMode = ExecMode::kSPMD;
  /// True: teamsMode is a placeholder the launch path may replace.
  bool teamsModeAuto = false;
  ExecMode parallelMode = ExecMode::kSPMD;
  /// True: parallelMode is a placeholder the launch path may replace.
  bool parallelModeAuto = false;
  /// SIMD group size for parallel regions (1 = no third level; exactly
  /// today's LLVM/OpenMP behaviour; 0 = auto via the tuner).
  uint32_t simdlen = 1;
  /// Launch-wide default chunk for dynamic worksharing loops whose
  /// schedule clause leaves chunk 0 (0 = runtime default of 1).
  uint64_t scheduleChunk = 0;
  uint32_t sharingSpaceBytes = omprt::kDefaultSharingSpaceBytes;
  /// Whether outlined regions enter the dispatch if-cascade (paper
  /// section 5.5); off models regions from foreign translation units.
  bool registerInCascade = true;
  /// Host worker threads simulating independent teams (0 = auto,
  /// 1 = serial); see omprt::TargetConfig::hostWorkers.
  uint32_t hostWorkers = 0;
  /// Correctness checking (simcheck); see gpusim::LaunchConfig::check.
  simcheck::CheckConfig check{};
  /// Stable kernel identity for the simtune cache ("" = not tunable).
  std::string tuneKey;
  /// Trip-count hint for the tuning-cache bucket; the distribute
  /// helpers below fill it with their trip count when left 0.
  uint64_t tripCount = 0;
  /// Fault-injection plan (simfault); "" consults SIMTOMP_FAULT,
  /// "off" pins injection off. See omprt::TargetConfig::fault.
  std::string faultSpec;
  /// Per-block watchdog step budget (0 = auto, simfault::kWatchdogOff
  /// disables); see gpusim::LaunchConfig::watchdogSteps.
  uint64_t watchdogSteps = 0;
  /// Hierarchical profiling (simprof); kAuto consults SIMTOMP_PROF.
  simprof::ProfileConfig profile{};
  /// Convergence fast path (batched lane execution for hazard-free SIMD
  /// bodies); see omprt::TargetConfig::fastPath. kAuto consults
  /// SIMTOMP_FAST (default on). Modeled results are bit-identical
  /// either way — this trades only host wall-time.
  omprt::FastPathMode fastPath = omprt::FastPathMode::kAuto;

  [[nodiscard]] omprt::TargetConfig targetConfig() const {
    omprt::TargetConfig config;
    config.teamsMode = teamsMode;
    config.teamsModeAuto = teamsModeAuto;
    config.numTeams = numTeams;
    config.threadsPerTeam = threadsPerTeam;
    config.simdlen = simdlen;
    config.parallelMode = parallelMode;
    config.parallelModeAuto = parallelModeAuto;
    config.scheduleChunk = scheduleChunk;
    config.sharingSpaceBytes = sharingSpaceBytes;
    config.hostWorkers = hostWorkers;
    config.check = check;
    config.tuneKey = tuneKey;
    config.tripCount = tripCount;
    config.fault.spec = faultSpec;
    config.watchdogSteps = watchdogSteps;
    config.profile = profile;
    config.fastPath = fastPath;
    return config;
  }
  /// Region-level parallel configuration. Auto fields (simdlen 0,
  /// parallelModeAuto) stay auto here and resolve against the launch's
  /// TeamState defaults at region entry — i.e. against whatever the
  /// tuner decided.
  [[nodiscard]] omprt::ParallelConfig parallelConfig() const {
    return {parallelMode, simdlen, parallelModeAuto};
  }
};

/// "Tightly nested => SPMD" inference (paper sections 3.2, 6.5).
[[nodiscard]] constexpr ExecMode inferSpmd(bool tightly_nested) {
  return tightly_nested ? ExecMode::kSPMD : ExecMode::kGeneric;
}

// ---------------------------------------------------------------------
// Body classification (convergence fast path)
// ---------------------------------------------------------------------

/// A loop body the front-end statically classified as *convergent*:
/// free of barriers, cross-lane operations (shuffle / group reduce),
/// atomics, and divergent branches. This is the stand-in for the
/// compiler analysis described in DESIGN.md §3.6 — a real front-end
/// would derive the property from the body's IR; here the author
/// asserts it and the runtime *verifies* it (the first execution probes
/// the body with hazard counting before trusting the declaration, and
/// any hazard rejects the function permanently).
template <typename Body>
struct Convergent {
  static constexpr bool kConvergentBody = true;
  Body body;

  // Trailing return type keeps the call SFINAE-friendly: the outline
  // trampolines probe invocability with and without a payload pointer.
  template <typename... Args>
  auto operator()(Args&&... args)
      -> decltype(this->body(std::forward<Args>(args)...)) {
    return body(std::forward<Args>(args)...);
  }
};

/// Wrap a simd body to declare it hazard-free. Keeps trivial
/// copyability, so globalization in generic parallel mode still works.
template <typename Body>
[[nodiscard]] Convergent<std::decay_t<Body>> convergent(Body&& body) {
  return {std::forward<Body>(body)};
}

namespace detail {

template <typename T, typename = void>
struct IsConvergentBody : std::false_type {};
template <typename T>
struct IsConvergentBody<T, std::void_t<decltype(T::kConvergentBody)>>
    : std::bool_constant<T::kConvergentBody> {};

/// classifyBody: the conservative front-end classification. Only bodies
/// explicitly wrapped in dsl::convergent() are declared to the runtime;
/// everything else stays unknown and earns eligibility (or rejection)
/// through the runtime's hazard probe on first execution.
template <typename BodyT, typename Fn>
void classifyBody(Fn fn) {
  if constexpr (IsConvergentBody<BodyT>::value) {
    omprt::ConvergenceCache::global().declareConvergent(
        reinterpret_cast<const void*>(fn));
  }
}

}  // namespace detail

// ---------------------------------------------------------------------
// Region-level directives (call from inside a target region)
// ---------------------------------------------------------------------

/// #pragma omp simd — workshare `trip` iterations over the lanes of the
/// calling thread's SIMD group. In generic parallel mode the body object
/// is globalized to shared memory so workers can reach it (paper 4.3).
template <typename Body>
void simd(OmpContext& ctx, uint64_t trip, Body&& body,
          bool registerInCascade = true) {
  using BodyT = std::remove_reference_t<Body>;
  if (!ctx.parallelIsSPMD() && ctx.simdGroupSize() > 1 &&
      std::is_trivially_copyable_v<BodyT>) {
    loopir::Globalizer globalizer(ctx);
    auto* promoted = static_cast<BodyT*>(
        globalizer.globalizeBytes(&body, sizeof(BodyT), alignof(BodyT)));
    auto outlined = loopir::outlineLoop(ctx, *promoted, registerInCascade);
    detail::classifyBody<BodyT>(outlined.fn);
    omprt::rt::simd(ctx, outlined.fn, trip, outlined.payload.data(),
                    outlined.payload.size());
    return;  // globalizer releases the promoted copy here (region end)
  }
  auto outlined = loopir::outlineLoop(ctx, body, registerInCascade);
  detail::classifyBody<BodyT>(outlined.fn);
  omprt::rt::simd(ctx, outlined.fn, trip, outlined.payload.data(),
                  outlined.payload.size());
}

/// #pragma omp simd reduction(+:acc) — returns the loop-wide sum on
/// every lane of the group. `body` returns each iteration's value.
template <typename Body>
double simdReduceAdd(OmpContext& ctx, uint64_t trip, Body&& body,
                     bool registerInCascade = true) {
  using BodyT = std::remove_reference_t<Body>;
  if (!ctx.parallelIsSPMD() && ctx.simdGroupSize() > 1 &&
      std::is_trivially_copyable_v<BodyT>) {
    loopir::Globalizer globalizer(ctx);
    auto* promoted = static_cast<BodyT*>(
        globalizer.globalizeBytes(&body, sizeof(BodyT), alignof(BodyT)));
    auto outlined =
        loopir::outlineReduceLoop(ctx, *promoted, registerInCascade);
    detail::classifyBody<BodyT>(outlined.fn);
    return omprt::rt::simdLoopReduceAdd(ctx, outlined.fn, trip,
                                        outlined.payload.data(),
                                        outlined.payload.size());
  }
  auto outlined = loopir::outlineReduceLoop(ctx, body, registerInCascade);
  detail::classifyBody<BodyT>(outlined.fn);
  return omprt::rt::simdLoopReduceAdd(ctx, outlined.fn, trip,
                                      outlined.payload.data(),
                                      outlined.payload.size());
}

/// #pragma omp parallel for — open a parallel region whose microtask
/// workshares `trip` iterations across the region's OpenMP threads
/// (SIMD groups). `config` controls mode and simdlen.
template <typename Body>
void parallelFor(OmpContext& ctx, uint64_t trip, Body&& body,
                 omprt::ParallelConfig config = {},
                 bool registerInCascade = true) {
  auto loop = loopir::outlineLoop(ctx, body, registerInCascade);
  // The microtask: every OpenMP thread of the region workshares the
  // outlined loop. Captures the outlined loop by value so worker
  // threads dereference the microtask object, not this frame's locals.
  auto region = [trip, loop](OmpContext& inner) mutable {
    omprt::rt::workshareFor(inner, trip, loop.fn, loop.payload.data());
  };
  auto outlined_region = loopir::outlineRegion(ctx, region, registerInCascade);
  omprt::rt::parallel(ctx, outlined_region.fn, outlined_region.payload.data(),
                      outlined_region.payload.size(), config);
}

/// #pragma omp parallel for schedule(...) — like parallelFor with an
/// explicit schedule clause (static cyclic/chunked, or dynamic with a
/// team-shared work counter; dynamic needs full-SPMD execution).
template <typename Body>
void parallelForSchedule(OmpContext& ctx, uint64_t trip, Body&& body,
                         omprt::ScheduleClause schedule,
                         omprt::ParallelConfig config = {},
                         bool registerInCascade = true) {
  auto loop = loopir::outlineLoop(ctx, body, registerInCascade);
  auto region = [trip, loop, schedule](OmpContext& inner) mutable {
    omprt::rt::workshareForScheduled(inner, trip, loop.fn,
                                     loop.payload.data(), schedule);
  };
  auto outlined_region = loopir::outlineRegion(ctx, region, registerInCascade);
  omprt::rt::parallel(ctx, outlined_region.fn, outlined_region.payload.data(),
                      outlined_region.payload.size(), config);
}

/// #pragma omp simd collapse(2) — two perfectly nested loops flattened
/// into one simd iteration space; the body receives both user ivs.
template <typename Body>
void simdCollapse2(OmpContext& ctx, const loopir::CollapsedLoop2& nest,
                   Body&& body, bool registerInCascade = true) {
  auto flattened = [&nest, &body](OmpContext& c, uint64_t logical) {
    const auto [i, j] = nest.ivsAt(logical);
    c.gpu().work(2);  // div/mod de-collapse arithmetic
    body(c, i, j);
  };
  simd(ctx, nest.tripCount(), flattened, registerInCascade);
}

/// #pragma omp parallel for collapse(2) — flattened nest workshared
/// across the region's OpenMP threads (SIMD groups).
template <typename Body>
void parallelForCollapse2(OmpContext& ctx, const loopir::CollapsedLoop2& nest,
                          Body&& body, omprt::ParallelConfig config = {},
                          bool registerInCascade = true) {
  auto flattened = [&nest, &body](OmpContext& c, uint64_t logical) {
    const auto [i, j] = nest.ivsAt(logical);
    c.gpu().work(2);
    body(c, i, j);
  };
  parallelFor(ctx, nest.tripCount(), flattened, config, registerInCascade);
}

/// reduction(+: x) across the whole team: lanes -> group (butterfly) ->
/// groups -> team (shared-memory tree). Full-SPMD regions only.
inline double teamReduceAdd(OmpContext& ctx, double lane_value) {
  const double group_total = omprt::rt::simdReduceAdd(ctx, lane_value);
  return omprt::rt::teamReduceAdd(ctx, group_total);
}

/// #pragma omp tile sizes(T) + parallel for + simd: workshare the tiles
/// of a *flat* loop across the region's OpenMP threads (SIMD groups)
/// and run each tile's contents as a simd loop — three-level structure
/// manufactured from a one-dimensional iteration space.
template <typename Body>
void parallelForTiledSimd(OmpContext& ctx, const loopir::TiledLoop& tiled,
                          Body&& body, omprt::ParallelConfig config = {},
                          bool registerInCascade = true) {
  auto tile_body = [&tiled, &body, registerInCascade](OmpContext& inner,
                                                      uint64_t tile) {
    inner.gpu().work(2);  // tile bound arithmetic
    simd(inner, tiled.tileTrip(tile),
         [&tiled, &body, tile](OmpContext& c, uint64_t offset) {
           body(c, tiled.ivAt(tile, offset));
         },
         registerInCascade);
  };
  parallelFor(ctx, tiled.numTiles(), tile_body, config, registerInCascade);
}

/// #pragma omp master — true on OpenMP thread 0's leader lane.
inline bool isMaster(const OmpContext& ctx) { return omprt::rt::isMaster(ctx); }

/// #pragma omp single — `body` runs on one OpenMP thread; everyone
/// joins the implicit barrier. Full-SPMD regions only.
template <typename Body>
void single(OmpContext& ctx, Body&& body, bool registerInCascade = true) {
  auto outlined = loopir::outlineRegion(ctx, body, registerInCascade);
  omprt::rt::single(ctx, outlined.fn, outlined.payload.data());
}

/// #pragma omp critical — `body` runs under team-wide mutual exclusion
/// (one execution per OpenMP thread, serialized on the modeled
/// timeline).
template <typename Body>
void critical(OmpContext& ctx, Body&& body, bool registerInCascade = true) {
  auto outlined = loopir::outlineRegion(ctx, body, registerInCascade);
  omprt::rt::critical(ctx, outlined.fn, outlined.payload.data());
}

/// #pragma omp parallel — open a parallel region running `region` on
/// each OpenMP thread (SIMD group leader in generic mode; every device
/// thread in SPMD mode).
template <typename Region>
void parallel(OmpContext& ctx, Region&& region,
              omprt::ParallelConfig config = {},
              bool registerInCascade = true) {
  auto outlined = loopir::outlineRegion(ctx, region, registerInCascade);
  omprt::rt::parallel(ctx, outlined.fn, outlined.payload.data(),
                      outlined.payload.size(), config);
}

// ---------------------------------------------------------------------
// Launch-level directives (host side)
// ---------------------------------------------------------------------

/// #pragma omp target teams — run `region` per the spec's teams mode.
template <typename Region>
Result<gpusim::KernelStats> target(gpusim::Device& device,
                                   const LaunchSpec& spec, Region&& region) {
  return omprt::launchTarget(device, spec.targetConfig(),
                             std::forward<Region>(region));
}

/// #pragma omp target teams distribute — `body(ctx, iv)` runs once per
/// iteration, split contiguously across teams. Nested parallelFor /
/// parallel calls inside `body` give the classic 2-level structure.
template <typename Body>
Result<gpusim::KernelStats> targetTeamsDistribute(gpusim::Device& device,
                                                  const LaunchSpec& spec,
                                                  uint64_t trip, Body body) {
  omprt::TargetConfig config = spec.targetConfig();
  if (config.tripCount == 0) config.tripCount = trip;
  return omprt::launchTarget(
      device, config, [&](OmpContext& ctx) {
        const omprt::rt::Range r = omprt::rt::distributeStatic(ctx, trip);
        for (uint64_t iv = r.begin; iv < r.end; ++iv) {
          ctx.gpu().work(2);
          body(ctx, iv);
        }
      });
}

/// #pragma omp target teams distribute parallel for — iterations are
/// split contiguously across teams, then cyclically across each team's
/// OpenMP threads (SIMD groups). `body` may call dsl::simd for the
/// third level.
template <typename Body>
Result<gpusim::KernelStats> targetTeamsDistributeParallelFor(
    gpusim::Device& device, const LaunchSpec& spec, uint64_t trip,
    Body body) {
  omprt::TargetConfig config = spec.targetConfig();
  if (config.tripCount == 0) config.tripCount = trip;
  return omprt::launchTarget(
      device, config, [&](OmpContext& ctx) {
        const omprt::rt::Range r = omprt::rt::distributeStatic(ctx, trip);
        auto shifted = [&body, base = r.begin](OmpContext& inner,
                                               uint64_t logical) {
          body(inner, base + logical);
        };
        parallelFor(ctx, r.size(), shifted, spec.parallelConfig(),
                    spec.registerInCascade);
      });
}

}  // namespace simtomp::dsl
