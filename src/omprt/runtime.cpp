#include "omprt/runtime.h"

#include <algorithm>
#include <array>
#include <bit>

#include "omprt/convergence.h"
#include "support/log.h"

namespace simtomp::omprt::rt {

using gpusim::Counter;

namespace {

// simcheck annotation keys for the runtime's own publication protocol:
// the TeamState parallel-region fields (terminate flag, outlined fn,
// team args pointer) act as one logical location, and each
// SimdGroupState descriptor as another. The annotations let the
// checker validate the state machines' synchronization exactly like
// user data — a missing barrier between publish and poll is a race.
constexpr uint64_t kTeamStateKey = 0;
constexpr uint64_t simdGroupKey(uint32_t group) { return 1 + group; }
// rt::critical models one team-wide lock.
constexpr uint64_t kCriticalLockKey = 0;

/// RAII construct span on the calling thread's profile timeline.
/// noteEnter/noteExit are no-ops when profiling is off, so wrapping a
/// runtime entry point in one of these charges no modeled cycles.
class ConstructSpan {
 public:
  ConstructSpan(gpusim::ThreadCtx& t, simprof::Construct construct,
                uint64_t detail = 0)
      : t_(t) {
    t_.noteEnter(construct, detail);
  }
  ~ConstructSpan() { t_.noteExit(); }
  ConstructSpan(const ConstructSpan&) = delete;
  ConstructSpan& operator=(const ConstructSpan&) = delete;

 private:
  gpusim::ThreadCtx& t_;
};

/// Per-lane accumulate phase of a reducing simd loop (shared by the
/// leader/SPMD path and the worker state machine so barrier counts
/// match exactly). `probed` additionally runs the convergence-hazard
/// probe around every body call (zero modeled cost) and reports the
/// outcome to the ConvergenceCache — the dynamic half of the fast-path
/// body classification.
double reduceLoopLocalImpl(OmpContext& ctx, ReduceBodyF64 fn, uint64_t trip,
                           void** args, bool probed) {
  gpusim::ThreadCtx& t = ctx.gpu();
  uint64_t iv = ctx.simdGroupId();
  t.chargeLocal();
  syncSimdGroup(ctx);
  const uint32_t stride = ctx.simdGroupSize();
  // Known outlined bodies: the compiler hoists the if-cascade out of
  // the loop and inlines the body (one-time cost). Unknown bodies pay
  // an indirect call every iteration (paper section 5.5). prepare()
  // resolves the cascade once; iterations charge without locking.
  const DispatchPlan plan =
      Dispatcher::global().prepare(reinterpret_cast<const void*>(fn));
  if (plan.known) plan.charge(t);
  double acc = 0.0;
  bool clean = true;
  bool ran = false;
  while (iv < trip) {
    if (!plan.known) plan.charge(t);
    if (probed) {
      ran = true;
      t.beginHazardProbe();
    }
    acc += fn(ctx, iv, args);
    if (probed) clean = t.endHazardProbe() && clean;
    t.fma();
    iv += stride;
    t.work(2);
  }
  if (probed && ran) {
    // Only lanes that executed the body vote; an always-empty loop must
    // not promote a body nobody has ever actually run.
    ConvergenceCache::global().reportProbe(reinterpret_cast<const void*>(fn),
                                           clean, ctx.simdGroupSize());
  }
  return acc;
}

double reduceLoopLocal(OmpContext& ctx, ReduceBodyF64 fn, uint64_t trip,
                       void** args) {
  return reduceLoopLocalImpl(ctx, fn, trip, args, /*probed=*/false);
}

/// Shared worker/leader body for executing one published simd work item
/// in generic mode. Returns false when the item is the termination
/// signal.
bool runPublishedSimdWork(OmpContext& ctx) {
  gpusim::ThreadCtx& t = ctx.gpu();
  TeamState& ts = ctx.team();
  SimdGroupState& gs = ts.groups[ctx.simdGroup()];

  t.noteEnter(simprof::Construct::kStatePoll);
  t.charge(Counter::kStatePoll, t.cost().statePoll);
  t.chargeSharedLoad();  // getSimdFn: function pointer
  t.noteSyntheticAccess(simdGroupKey(ctx.simdGroup()), /*is_write=*/false);
  void* fn = gs.simdFn;
  if (fn == nullptr) {
    t.noteExit();
    return false;
  }
  t.chargeSharedLoad();  // trip count
  const uint64_t trip = gs.tripCount;
  void** args = nullptr;
  if (gs.numArgs > 0) args = ts.sharing->fetchArgs(t, ctx.simdGroup());
  t.noteExit();

  const ConstructSpan simd_span(t, simprof::Construct::kSimdLoop,
                                ctx.simdGroupSize());
  switch (gs.kind) {
    case SimdWorkKind::kLoop:
      workshareLoopSimd(ctx, reinterpret_cast<LoopBodyFn>(fn), trip, args);
      break;
    case SimdWorkKind::kReduceAddF64: {
      const double local = reduceLoopLocal(
          ctx, reinterpret_cast<ReduceBodyF64>(fn), trip, args);
      (void)simdReduceAdd(ctx, local);  // workers discard the total
      break;
    }
  }
  return true;
}


/// Book the paper's "thread waste" (section 6.5) for one simd loop:
/// a group of g lanes runs ceil(trip/g) lockstep rounds; lane-rounds
/// beyond the trip count are idle lanes. Recorded by the group leader.
void chargeLaneUtilization(OmpContext& ctx, uint64_t trip) {
  const uint64_t g = ctx.simdGroupSize();
  const uint64_t rounds = (trip + g - 1) / g;
  const uint64_t lane_rounds = rounds * g;
  gpusim::ThreadCtx& t = ctx.gpu();
  t.charge(Counter::kSimdLaneRounds, 0, lane_rounds);
  t.charge(Counter::kSimdIdleLaneRounds, 0, lane_rounds - trip);
}

/// Strided __simd_loop with optional convergence-hazard probing; the
/// public workshareLoopSimd wraps the unprobed variant.
void workshareLoopSimdImpl(OmpContext& ctx, LoopBodyFn fn, uint64_t tripCount,
                           void** args, bool probed) {
  gpusim::ThreadCtx& t = ctx.gpu();
  uint64_t iv = ctx.simdGroupId();
  t.chargeLocal();
  syncSimdGroup(ctx);
  const uint32_t stride = ctx.simdGroupSize();
  const DispatchPlan plan =
      Dispatcher::global().prepare(reinterpret_cast<const void*>(fn));
  if (plan.known) plan.charge(t);
  bool clean = true;
  bool ran = false;
  while (iv < tripCount) {
    if (!plan.known) plan.charge(t);
    if (probed) {
      ran = true;
      t.beginHazardProbe();
    }
    fn(ctx, iv, args);
    if (probed) clean = t.endHazardProbe() && clean;
    iv += stride;
    t.work(2);  // induction update + bound check
  }
  if (probed && ran) {
    ConvergenceCache::global().reportProbe(reinterpret_cast<const void*>(fn),
                                           clean, ctx.simdGroupSize());
  }
}

// ---------------------------------------------------------------------
// Convergence fast path: when every lane of a SIMD group executes the
// same hazard-free loop body (no barrier, cross-lane op, atomic or
// divergent branch), the group's per-lane loops are executed back to
// back in a tight host loop on ONE fiber — the last lane to arrive at
// the construct (the "runner") replays, for each lane in ascending
// order, the exact charge/profile/checker event sequence the
// lane-per-fiber path produces, so modeled cycles, counters, traces,
// profiles and simcheck verdicts are bit-identical; only the
// fiber-switch host cost disappears. See DESIGN.md section 3.6.
// ---------------------------------------------------------------------

/// Everything the batched runner needs about the convergent group.
struct BatchGroup {
  gpusim::BlockEngine* eng = nullptr;
  TeamState* ts = nullptr;
  gpusim::BatchPoint* bp = nullptr;
  LaneMask mask = 0;
  uint32_t groupSize = 0;
  uint32_t firstTid = 0;   ///< thread id of the group's lane 0
  uint32_t laneBase = 0;   ///< warp lane of the group's lane 0
  uint32_t warpId = 0;
  uint32_t warpBase = 0;
  simcheck::BlockChecker* checker = nullptr;

  [[nodiscard]] gpusim::ThreadCtx& lane(uint32_t i) const {
    return eng->thread(firstTid + i);
  }
};

BatchGroup makeBatchGroup(OmpContext& ctx) {
  gpusim::ThreadCtx& t = ctx.gpu();
  BatchGroup g;
  g.eng = &t.block();
  g.ts = &ctx.team();
  g.mask = ctx.simdMask();
  g.bp = &g.eng->convergentBatchPoint(t, g.mask);
  g.groupSize = ctx.simdGroupSize();
  g.firstTid = ctx.simdGroup() * g.groupSize;
  g.laneBase = (t.laneId() / g.groupSize) * g.groupSize;
  g.warpId = t.warpId();
  g.warpBase = g.warpId * t.warpSize();
  g.checker = t.checker();
  return g;
}

/// Close a barrier the group is collectively inside: align every lane
/// to the max arrival time (the slow path's SyncPoint release rule)
/// and pop its kBarrier span, in ascending lane order.
void batchAlignAndExit(const BatchGroup& g) {
  uint64_t release = 0;
  for (uint32_t i = 0; i < g.groupSize; ++i) {
    release = std::max(release, g.lane(i).time());
  }
  for (uint32_t i = 0; i < g.groupSize; ++i) {
    g.lane(i).alignTimeTo(release);
    g.lane(i).noteExit();
  }
}

/// Replay, for every lane in ascending order, the exact event sequence
/// BlockEngine::warpBarrier produces: enter span, kWarpSync charge,
/// checker arrival, release-time alignment, exit span.
void emulateGroupBarrier(const BatchGroup& g, bool charged) {
  for (uint32_t i = 0; i < g.groupSize; ++i) {
    gpusim::ThreadCtx& lane = g.lane(i);
    lane.noteEnter(simprof::Construct::kBarrier);
    lane.charge(Counter::kWarpSync, charged ? lane.cost().warpSync : 0);
    if (g.checker != nullptr) {
      g.checker->onSyncArrive(lane.threadId(), g.bp, g.warpBase, g.mask,
                              g.warpId, /*is_block=*/false);
    }
  }
  batchAlignAndExit(g);
}

/// Per-lane entry of a batched simd construct, on the lane's own fiber:
/// charge exactly what the slow path charges up to and including the
/// prologue group barrier's *arrival*, then rendezvous at the batch
/// point. Returns true for the runner (the last arrival); every other
/// lane blocks here and wakes only after the runner replayed the whole
/// construct on its behalf.
bool arriveAtBatch(OmpContext& ctx, const BatchGroup& g) {
  gpusim::ThreadCtx& t = ctx.gpu();
  t.chargeLocal();  // iv = simdGroupId()
  t.noteEnter(simprof::Construct::kBarrier);
  t.charge(Counter::kWarpSync,
           g.ts->archHasWarpBarrier ? t.cost().warpSync : 0);
  if (g.checker != nullptr) {
    g.checker->onSyncArrive(t.threadId(), g.bp, g.warpBase, g.mask, g.warpId,
                            /*is_block=*/false);
  }
  return g.eng->convergentBatchArrive(*g.bp);
}

/// Runner core: finish the prologue barrier, then execute `perLane`
/// (the lane's whole share of the iteration space) for each lane in
/// ascending order under the kForbid hazard guard, with simcheck's
/// convergent-batch read dedupe active.
template <typename PerLane>
void runLanesBatched(OmpContext& ctx, const BatchGroup& g,
                     const void* fn_key, const PerLane& perLane) {
  batchAlignAndExit(g);  // prologue barrier release (T0)
  const DispatchPlan plan = Dispatcher::global().prepare(fn_key);
  if (g.checker != nullptr) g.checker->beginConvergentBatch();
  for (uint32_t i = 0; i < g.groupSize; ++i) {
    gpusim::ThreadCtx& lane = g.lane(i);
    OmpContext lane_ctx(lane, *g.ts);
    lane_ctx.enterParallel(ctx.parallelConfig(), ctx.numThreads());
    if (plan.known) plan.charge(lane);
    lane.setHazardGuard(true);
    perLane(lane_ctx, lane, plan);
    lane.setHazardGuard(false);
  }
  if (g.checker != nullptr) g.checker->endConvergentBatch();
}

/// Batched __simd_loop: bit-identical stats to
/// workshareLoopSimd + syncSimdGroup on the lane-per-fiber path.
void runSimdLoopBatched(OmpContext& ctx, LoopBodyFn fn, uint64_t tripCount,
                        void** args) {
  const BatchGroup g = makeBatchGroup(ctx);
  if (!arriveAtBatch(ctx, g)) return;  // runner did our share
  runLanesBatched(
      ctx, g, reinterpret_cast<const void*>(fn),
      [&](OmpContext& lane_ctx, gpusim::ThreadCtx& lane,
          const DispatchPlan& plan) {
        uint64_t iv = lane_ctx.simdGroupId();
        while (iv < tripCount) {
          if (!plan.known) plan.charge(lane);
          fn(lane_ctx, iv, args);
          iv += g.groupSize;
          lane.work(2);  // induction update + bound check
        }
      });
  // rt::simd's closing syncSimdGroup.
  emulateGroupBarrier(g, g.ts->archHasWarpBarrier);
  g.eng->convergentBatchRelease(*g.bp);
}

/// Batched reducing simd loop: accumulate per lane, then replay the
/// simdReduceAdd butterfly stage by stage (shuffle charge + two charged
/// barriers + fma per lane per stage). Every lane's total lands in the
/// batch point's result slot; woken lanes pick theirs up on return.
double runSimdReduceBatched(OmpContext& ctx, ReduceBodyF64 fn,
                            uint64_t tripCount, void** args) {
  const BatchGroup g = makeBatchGroup(ctx);
  gpusim::ThreadCtx& t = ctx.gpu();
  if (!arriveAtBatch(ctx, g)) return g.bp->result[t.laneId()];
  std::array<double, 64> values{};
  runLanesBatched(
      ctx, g, reinterpret_cast<const void*>(fn),
      [&](OmpContext& lane_ctx, gpusim::ThreadCtx& lane,
          const DispatchPlan& plan) {
        uint64_t iv = lane_ctx.simdGroupId();
        double acc = 0.0;
        while (iv < tripCount) {
          if (!plan.known) plan.charge(lane);
          acc += fn(lane_ctx, iv, args);
          lane.fma();
          iv += g.groupSize;
          lane.work(2);
        }
        values[lane.laneId()] = acc;
      });
  // Butterfly all-reduce. Group masks are power-of-two aligned, so
  // lane ^ offset stays inside the group for every stage.
  for (uint32_t offset = g.groupSize / 2; offset > 0; offset /= 2) {
    for (uint32_t i = 0; i < g.groupSize; ++i) {
      gpusim::ThreadCtx& lane = g.lane(i);
      lane.charge(Counter::kShuffle, lane.cost().aluOp);
    }
    emulateGroupBarrier(g, /*charged=*/true);  // publish exchange slots
    std::array<double, 64> fetched{};
    for (uint32_t i = 0; i < g.groupSize; ++i) {
      const uint32_t lane_id = g.laneBase + i;
      fetched[lane_id] = values[lane_id ^ offset];
    }
    emulateGroupBarrier(g, /*charged=*/true);  // keep slots stable
    for (uint32_t i = 0; i < g.groupSize; ++i) {
      values[g.laneBase + i] += fetched[g.laneBase + i];
      g.lane(i).fma();
    }
  }
  for (uint32_t i = 0; i < g.groupSize; ++i) {
    g.bp->result[g.laneBase + i] = values[g.laneBase + i];
  }
  // rt::simdLoopReduceAdd's closing syncSimdGroup.
  emulateGroupBarrier(g, g.ts->archHasWarpBarrier);
  g.eng->convergentBatchRelease(*g.bp);
  return values[t.laneId()];
}

/// Launch/region/group-shape gate for the fast path. Every input is
/// identical across the lanes of one group, so the whole group always
/// agrees — a split decision would deadlock the rendezvous.
bool fastPathEligible(OmpContext& ctx) {
  const TeamState& ts = ctx.team();
  if (!ts.fastPathEnabled) return false;
  // Generic mode routes bodies through the worker state machine; the
  // batch protocol only models the SPMD "all lanes call" shape.
  if (!ctx.parallelIsSPMD()) return false;
  const uint32_t group_size = ctx.simdGroupSize();
  if (group_size <= 1) return false;
  gpusim::ThreadCtx& t = ctx.gpu();
  const LaneMask mask = ctx.simdMask();
  // Full convergence: every lane of the group must exist in the block.
  return (mask & t.block().warpMemberMask(t.warpId())) == mask;
}

/// Resolve the global ConvergenceCache verdict for `fn` once per block
/// and pin it in the TeamState memo: the global verdict may flip
/// mid-kernel (another block's probe promotes the body), and two lanes
/// of one group reading different verdicts would rendezvous at
/// different sync objects and deadlock. All of a block's fibers share
/// one host thread, so the memo needs no lock.
TeamState::FastDecision resolveFastDecision(TeamState& ts, const void* fn) {
  const auto it = ts.fastPathMemo.find(fn);
  if (it != ts.fastPathMemo.end()) return it->second;
  TeamState::FastDecision decision = TeamState::FastDecision::kSlow;
  switch (ConvergenceCache::global().lookup(fn)) {
    case ConvergenceCache::Verdict::kDeclared:
    case ConvergenceCache::Verdict::kEligible:
      decision = TeamState::FastDecision::kFast;
      break;
    case ConvergenceCache::Verdict::kRejected:
      decision = TeamState::FastDecision::kSlow;
      break;
    case ConvergenceCache::Verdict::kUnknown:
      decision = TeamState::FastDecision::kProbe;
      break;
  }
  ts.fastPathMemo.emplace(fn, decision);
  return decision;
}

/// Fig. 3 core: how one worker-capable thread executes a parallel
/// region under the current parallel frame.
void executeParallelThread(OmpContext& ctx, OutlinedFn fn, void** args) {
  if (ctx.parallelIsSPMD()) {
    // All threads execute the region in SPMD mode.
    invokeMicrotask(ctx, fn, args);
    return;
  }
  if (ctx.isSimdGroupLeader()) {
    // Only simd mains execute the region in generic mode.
    invokeMicrotask(ctx, fn, args);
    // Send the termination signal to the simd workers.
    setSimdFn(ctx, nullptr, SimdWorkKind::kLoop, 0, 0);
    syncSimdGroup(ctx);
  } else {
    // Simd workers enter the state machine.
    simdStateMachine(ctx);
  }
}

}  // namespace

ThreadKind targetInit(OmpContext& ctx) {
  gpusim::ThreadCtx& t = ctx.gpu();
  TeamState& ts = ctx.team();
  t.work(4);  // team-state initialization
  if (ts.teamsMode == ExecMode::kSPMD) {
    // All threads return to the user code immediately.
    return ThreadKind::kUserCode;
  }
  if (t.threadId() == ts.mainThreadId) return ThreadKind::kUserCode;
  // Workers (and the idle lanes of the extra main warp) park in the
  // team state machine until the kernel terminates.
  return teamStateMachine(ctx);
}

void targetDeinit(OmpContext& ctx) {
  gpusim::ThreadCtx& t = ctx.gpu();
  TeamState& ts = ctx.team();
  if (ts.teamsMode == ExecMode::kSPMD) {
    t.syncBlock();  // final team barrier
    return;
  }
  // Generic mode: only the team main reaches this point.
  ts.terminate = true;
  t.chargeSharedStore();
  t.noteSyntheticAccess(kTeamStateKey, /*is_write=*/true);
  t.syncBlock();  // release workers to observe the termination flag
}

ParallelConfig normalizeParallelConfig(const TeamState& ts,
                                       ParallelConfig config) {
  // Auto fields resolve against the launch-wide defaults (which the
  // tuner may have filled in via TargetConfig).
  if (config.modeAuto) {
    config.mode = ts.defaultParallel.mode;
    config.modeAuto = false;
  }
  uint32_t g = config.simdGroupSize;
  if (g == kSimdlenAuto) g = ts.defaultParallel.simdGroupSize;
  if (g == 0) g = 1;
  if (g > ts.warpSize) g = ts.warpSize;
  g = std::bit_floor(g);  // group sizes are powers of two (divide a warp)
  if (config.mode == ExecMode::kGeneric && !ts.archHasWarpBarrier && g > 1) {
    // Paper section 5.4.1: without wavefront-level barriers generic-SIMD
    // is unsupported; simd loops run sequentially.
    SIMTOMP_DEBUG("generic-SIMD unsupported on this architecture; "
                  "falling back to group size 1");
    g = 1;
  }
  config.simdGroupSize = g;
  return config;
}

void parallel(OmpContext& ctx, OutlinedFn fn, void** args, uint32_t numArgs,
              ParallelConfig config) {
  gpusim::ThreadCtx& t = ctx.gpu();
  TeamState& ts = ctx.team();
  SIMTOMP_CHECK(!ctx.inParallel(), "nested parallel regions not supported");
  const ParallelConfig cfg = normalizeParallelConfig(ts, config);
  const uint32_t num_groups = ts.numWorkerThreads / cfg.simdGroupSize;
  const ConstructSpan parallel_span(t, simprof::Construct::kParallel);

  if (ts.teamsMode == ExecMode::kGeneric) {
    SIMTOMP_CHECK(t.threadId() == ts.mainThreadId,
                  "generic-mode parallel() must be called by the team main");
    t.charge(Counter::kParallelRegion, 0);
    // Publish the region for the workers.
    ts.parallelFn = fn;
    t.chargeSharedStore();
    ts.parallelConfig = cfg;
    t.chargeSharedStore();
    ts.parallelNumArgs = numArgs;
    t.chargeSharedStore();
    if (numArgs > 0) {
      const ConstructSpan sharing_span(t, simprof::Construct::kSharing);
      void** area = ts.sharing->beginTeamSharing(t, numArgs);
      for (uint32_t i = 0; i < numArgs; ++i) {
        ts.sharing->storeArg(t, 0, area, i, args[i]);
      }
      ts.parallelArgs = area;
      t.chargeSharedStore();
    }
    t.noteSyntheticAccess(kTeamStateKey, /*is_write=*/true);
    t.syncBlock();  // release the workers
    t.syncBlock();  // wait for region completion
    if (numArgs > 0) ts.sharing->endTeamSharing(t);
    ts.parallelFn = nullptr;
    ts.parallelNumArgs = 0;
    t.noteSyntheticAccess(kTeamStateKey, /*is_write=*/true);
    return;
  }

  // SPMD teams mode: every thread executes this call with identical
  // arguments; everything stays thread-local (paper section 5.4).
  if (t.threadId() == 0) t.charge(Counter::kParallelRegion, 0);
  ctx.enterParallel(cfg, num_groups);
  executeParallelThread(ctx, fn, args);
  ctx.exitParallel();
  t.syncBlock();  // implicit barrier at the end of the parallel region
}

void simd(OmpContext& ctx, LoopBodyFn fn, uint64_t tripCount, void** args,
          uint32_t numArgs) {
  gpusim::ThreadCtx& t = ctx.gpu();
  TeamState& ts = ctx.team();
  SIMTOMP_CHECK(ctx.inParallel(), "simd() requires an enclosing parallel");
  const ConstructSpan simd_span(t, simprof::Construct::kSimdLoop,
                                ctx.simdGroupSize());
  if (ctx.isSimdGroupLeader()) {
    t.charge(Counter::kSimdLoop, 0);
    chargeLaneUtilization(ctx, tripCount);
  }

  if (ctx.parallelIsSPMD()) {
    // All lanes hold the loop description locally: no communication.
    if (fastPathEligible(ctx)) {
      switch (resolveFastDecision(ts, reinterpret_cast<const void*>(fn))) {
        case TeamState::FastDecision::kFast:
          runSimdLoopBatched(ctx, fn, tripCount, args);
          return;
        case TeamState::FastDecision::kProbe:
          workshareLoopSimdImpl(ctx, fn, tripCount, args, /*probed=*/true);
          syncSimdGroup(ctx);
          return;
        case TeamState::FastDecision::kSlow:
          break;
      }
    }
    workshareLoopSimd(ctx, fn, tripCount, args);
    syncSimdGroup(ctx);
    return;
  }

  // Generic mode: only the SIMD main reaches this call. Publish the
  // loop and share the argument pointers through the sharing space.
  SIMTOMP_CHECK(ctx.isSimdGroupLeader(),
                "generic-mode simd() reached by a worker thread");
  const uint32_t group = ctx.simdGroup();
  setSimdFn(ctx, reinterpret_cast<void*>(fn), SimdWorkKind::kLoop, tripCount,
            numArgs);
  void** shared_args = args;
  const bool share = numArgs > 0 && ctx.simdGroupSize() > 1;
  if (share) {
    const ConstructSpan sharing_span(t, simprof::Construct::kSharing);
    shared_args =
        ts.sharing->beginSharing(t, group, ctx.numThreads(), numArgs);
    for (uint32_t i = 0; i < numArgs; ++i) {
      ts.sharing->storeArg(t, group, shared_args, i, args[i]);
    }
    ts.groups[group].args = shared_args;
    t.chargeSharedStore();
  }
  syncSimdGroup(ctx);  // release the workers
  workshareLoopSimd(ctx, fn, tripCount, shared_args);
  syncSimdGroup(ctx);
  if (share) ts.sharing->endSharing(t, group);
}

void workshareFor(OmpContext& ctx, uint64_t tripCount, LoopBodyFn fn,
                  void** args) {
  gpusim::ThreadCtx& t = ctx.gpu();
  SIMTOMP_CHECK(ctx.inParallel(), "for-worksharing requires parallel");
  const ConstructSpan ws_span(t, simprof::Construct::kWorkshare);
  if (ctx.isSimdGroupLeader()) t.charge(Counter::kWorkshareLoop, 0);
  const uint64_t id = ctx.threadNum();
  const uint64_t n = ctx.numThreads();
  const DispatchPlan plan =
      Dispatcher::global().prepare(reinterpret_cast<const void*>(fn));
  if (plan.known) plan.charge(t);
  for (uint64_t iv = id; iv < tripCount; iv += n) {
    if (!plan.known) plan.charge(t);
    fn(ctx, iv, args);
    t.work(2);  // induction update + bound check
  }
}

void workshareForScheduled(OmpContext& ctx, uint64_t tripCount,
                           LoopBodyFn fn, void** args,
                           const ScheduleClause& schedule) {
  gpusim::ThreadCtx& t = ctx.gpu();
  TeamState& ts = ctx.team();
  SIMTOMP_CHECK(ctx.inParallel(), "for-worksharing requires parallel");
  const ConstructSpan ws_span(t, simprof::Construct::kWorkshare);
  if (ctx.isSimdGroupLeader()) t.charge(Counter::kWorkshareLoop, 0);

  const DispatchPlan plan =
      Dispatcher::global().prepare(reinterpret_cast<const void*>(fn));
  if (plan.known) plan.charge(t);
  auto call = [&](uint64_t iv) {
    if (!plan.known) plan.charge(t);
    fn(ctx, iv, args);
    t.work(2);
  };

  const uint64_t id = ctx.threadNum();
  const uint64_t n = ctx.numThreads();

  ForSchedule kind = schedule.kind;
  if (kind == ForSchedule::kDynamic &&
      (ts.teamsMode != ExecMode::kSPMD || !ctx.parallelIsSPMD())) {
    // The dynamic dispatch protocol needs team barriers, which only
    // exist when every thread of the block is executing user code.
    SIMTOMP_DEBUG("dynamic schedule unavailable outside full-SPMD "
                  "execution; falling back to static");
    kind = ForSchedule::kStaticCyclic;
  }

  switch (kind) {
    case ForSchedule::kStaticCyclic:
      for (uint64_t iv = id; iv < tripCount; iv += n) call(iv);
      return;
    case ForSchedule::kStaticChunked: {
      const uint64_t chunk = (tripCount + n - 1) / n;
      const uint64_t begin = std::min(id * chunk, tripCount);
      const uint64_t end = std::min(begin + chunk, tripCount);
      t.work(3);  // bounds arithmetic
      for (uint64_t iv = begin; iv < end; ++iv) call(iv);
      return;
    }
    case ForSchedule::kDynamic: {
      // Clause chunk wins; 0 falls back to the launch-wide default
      // (tunable via TargetConfig::scheduleChunk), then to 1.
      const uint64_t default_chunk =
          ts.defaultScheduleChunk == 0 ? 1 : ts.defaultScheduleChunk;
      const uint64_t chunk =
          schedule.chunk == 0 ? default_chunk : schedule.chunk;
      // Dispatch init: one thread resets the team counter between uses.
      teamBarrier(ctx);
      if (t.threadId() == 0) {
        ts.dynamicCounter.store(0, std::memory_order_relaxed);
        t.chargeSharedStore();
      }
      teamBarrier(ctx);
      const LaneMask mask = ctx.simdMask();
      const uint32_t group_size = ctx.simdGroupSize();
      const unsigned leader_lane = (t.laneId() / group_size) * group_size;
      for (;;) {
        uint64_t base = 0;
        if (ctx.isSimdGroupLeader()) {
          // Shared-memory atomic grab by the group leader.
          base = ts.dynamicCounter.fetch_add(chunk,
                                             std::memory_order_relaxed);
          t.chargeAtomic();
        }
        if (group_size > 1) base = t.shfl(base, leader_lane, mask);
        if (base >= tripCount) break;
        const uint64_t end = std::min(base + chunk, tripCount);
        for (uint64_t iv = base; iv < end; ++iv) call(iv);
      }
      return;
    }
  }
}

double teamReduceAdd(OmpContext& ctx, double value) {
  gpusim::ThreadCtx& t = ctx.gpu();
  TeamState& ts = ctx.team();
  SIMTOMP_CHECK(ts.teamsMode == ExecMode::kSPMD && ctx.inParallel() &&
                    ctx.parallelIsSPMD(),
                "teamReduceAdd requires a full-SPMD parallel region "
                "(team barriers are involved)");
  const uint32_t group = ctx.threadNum();
  const uint32_t num_groups = ctx.numThreads();
  if (ctx.isSimdGroupLeader()) {
    ts.reduceScratch[group] = value;
    t.chargeSharedStore();
  }
  t.syncBlock();
  // Binary tree over the per-group slots; non-leaders only keep the
  // barriers company (the block barrier needs every thread).
  for (uint32_t stride = std::bit_ceil(num_groups) / 2; stride > 0;
       stride /= 2) {
    if (ctx.isSimdGroupLeader() && group < stride &&
        group + stride < num_groups) {
      ts.reduceScratch[group] += ts.reduceScratch[group + stride];
      t.chargeSharedLoad(2);
      t.chargeSharedStore();
      t.fma();
    }
    t.syncBlock();
  }
  t.chargeSharedLoad();
  return ts.reduceScratch[0];
}

Range distributeStatic(OmpContext& ctx, uint64_t tripCount) {
  const uint64_t teams = ctx.numTeams();
  const uint64_t team = ctx.teamNum();
  const uint64_t chunk = (tripCount + teams - 1) / teams;
  Range r;
  r.begin = std::min(team * chunk, tripCount);
  r.end = std::min(r.begin + chunk, tripCount);
  ctx.gpu().work(3);  // bounds arithmetic
  return r;
}

void distributeStaticChunked(OmpContext& ctx, uint64_t tripCount,
                             uint64_t chunk, LoopBodyFn fn, void** args) {
  if (chunk == 0) chunk = 1;
  gpusim::ThreadCtx& t = ctx.gpu();
  const ConstructSpan dist_span(t, simprof::Construct::kDistribute);
  const uint64_t team = ctx.teamNum();
  const uint64_t stride = static_cast<uint64_t>(ctx.numTeams()) * chunk;
  const DispatchPlan plan =
      Dispatcher::global().prepare(reinterpret_cast<const void*>(fn));
  if (plan.known) plan.charge(t);
  for (uint64_t base = team * chunk; base < tripCount; base += stride) {
    const uint64_t end = std::min(base + chunk, tripCount);
    t.work(3);  // chunk bound arithmetic
    for (uint64_t iv = base; iv < end; ++iv) {
      if (!plan.known) plan.charge(t);
      fn(ctx, iv, args);
      t.work(2);
    }
  }
}

void syncSimdGroup(OmpContext& ctx) {
  const LaneMask mask = ctx.simdMask();
  if (popcount(mask) <= 1) return;
  // Architectures without warp-level barriers rely on implicit
  // wavefront lockstep: the rendezvous still happens, but free.
  ctx.gpu().block().warpBarrier(ctx.gpu(), mask,
                                /*charged=*/ctx.team().archHasWarpBarrier);
}

void teamBarrier(OmpContext& ctx) {
  // A block-wide barrier is only well-defined when every thread of the
  // block is executing user code: SPMD teams mode, and not inside a
  // generic-mode parallel region (whose simd workers sit in the warp
  // state machine and would never arrive).
  SIMTOMP_CHECK(ctx.team().teamsMode == ExecMode::kSPMD &&
                    (!ctx.inParallel() || ctx.parallelIsSPMD()),
                "teamBarrier requires SPMD teams mode outside generic "
                "parallel regions");
  ctx.gpu().syncBlock();
}

bool isMaster(const OmpContext& ctx) {
  return ctx.threadNum() == 0 && ctx.isSimdGroupLeader();
}

void single(OmpContext& ctx, OutlinedFn fn, void** args) {
  SIMTOMP_CHECK(ctx.team().teamsMode == ExecMode::kSPMD &&
                    ctx.inParallel() && ctx.parallelIsSPMD(),
                "single requires a full-SPMD parallel region (implicit "
                "team barrier)");
  if (isMaster(ctx)) invokeMicrotask(ctx, fn, args);
  teamBarrier(ctx);  // implicit barrier at the end of single
}

void critical(OmpContext& ctx, OutlinedFn fn, void** args) {
  SIMTOMP_CHECK(ctx.inParallel(), "critical requires a parallel region");
  gpusim::ThreadCtx& t = ctx.gpu();
  TeamState& ts = ctx.team();
  const ConstructSpan crit_span(t, simprof::Construct::kCritical);
  if (ctx.isSimdGroupLeader()) {
    // Lock acquire: atomic RMW, then wait out the previous holder.
    t.chargeAtomic();
    t.alignTimeTo(ts.criticalReleaseTime);
    t.noteLockAcquire(kCriticalLockKey);
    invokeMicrotask(ctx, fn, args);
    t.chargeAtomic();  // release
    ts.criticalReleaseTime = t.time();
    t.noteLockRelease(kCriticalLockKey);
  }
  // In SPMD mode the group's other lanes reached this call too and must
  // converge with their leader. In generic mode only leaders execute
  // region code — and they must NOT touch the group barrier here, since
  // their workers are parked on it inside the simd state machine.
  if (ctx.parallelIsSPMD()) syncSimdGroup(ctx);
}

ThreadKind teamStateMachine(OmpContext& ctx) {
  gpusim::ThreadCtx& t = ctx.gpu();
  TeamState& ts = ctx.team();
  for (;;) {
    t.noteEnter(simprof::Construct::kStatePoll);
    t.syncBlock();  // wait for the main thread to publish work
    t.charge(Counter::kStatePoll, t.cost().statePoll);
    t.chargeSharedLoad();  // termination flag
    t.noteSyntheticAccess(kTeamStateKey, /*is_write=*/false);
    const bool done = ts.terminate;
    t.noteExit();
    if (done) return ThreadKind::kTerminated;
    if (t.threadId() < ts.numWorkerThreads) {
      const ConstructSpan region_span(t, simprof::Construct::kParallel);
      t.chargeSharedLoad();  // outlined function pointer
      OutlinedFn fn = ts.parallelFn;
      t.chargeSharedLoad();  // region config
      const ParallelConfig cfg = ts.parallelConfig;
      void** args = nullptr;
      if (ts.parallelNumArgs > 0) args = ts.sharing->fetchTeamArgs(t);
      ctx.enterParallel(cfg, ts.numWorkerThreads / cfg.simdGroupSize);
      executeParallelThread(ctx, fn, args);
      ctx.exitParallel();
    }
    t.syncBlock();  // region complete
  }
}

void simdStateMachine(OmpContext& ctx) {
  do {
    syncSimdGroup(ctx);  // wait for work
    if (!runPublishedSimdWork(ctx)) return;  // nullptr fn: end of parallel
    syncSimdGroup(ctx);
  } while (true);
}

void workshareLoopSimd(OmpContext& ctx, LoopBodyFn fn, uint64_t tripCount,
                       void** args) {
  workshareLoopSimdImpl(ctx, fn, tripCount, args, /*probed=*/false);
}

void invokeMicrotask(OmpContext& ctx, OutlinedFn fn, void** args) {
  Dispatcher::global().chargeDispatch(ctx.gpu(),
                                      reinterpret_cast<const void*>(fn));
  fn(ctx, args);
}

void setSimdFn(OmpContext& ctx, void* fn, SimdWorkKind kind,
               uint64_t tripCount, uint32_t numArgs) {
  gpusim::ThreadCtx& t = ctx.gpu();
  SimdGroupState& gs = ctx.team().groups[ctx.simdGroup()];
  gs.kind = kind;
  gs.simdFn = fn;
  t.chargeSharedStore();
  gs.tripCount = tripCount;
  gs.numArgs = numArgs;
  t.chargeSharedStore();
  t.noteSyntheticAccess(simdGroupKey(ctx.simdGroup()), /*is_write=*/true);
}

double simdLoopReduceAdd(OmpContext& ctx, ReduceBodyF64 fn,
                         uint64_t tripCount, void** args, uint32_t numArgs) {
  gpusim::ThreadCtx& t = ctx.gpu();
  TeamState& ts = ctx.team();
  SIMTOMP_CHECK(ctx.inParallel(), "simd reduction requires parallel");
  const ConstructSpan simd_span(t, simprof::Construct::kSimdLoop,
                                ctx.simdGroupSize());
  if (ctx.isSimdGroupLeader()) {
    t.charge(Counter::kSimdLoop, 0);
    chargeLaneUtilization(ctx, tripCount);
  }

  if (ctx.parallelIsSPMD()) {
    if (fastPathEligible(ctx)) {
      switch (resolveFastDecision(ts, reinterpret_cast<const void*>(fn))) {
        case TeamState::FastDecision::kFast:
          return runSimdReduceBatched(ctx, fn, tripCount, args);
        case TeamState::FastDecision::kProbe: {
          const double local =
              reduceLoopLocalImpl(ctx, fn, tripCount, args, /*probed=*/true);
          const double total = simdReduceAdd(ctx, local);
          syncSimdGroup(ctx);
          return total;
        }
        case TeamState::FastDecision::kSlow:
          break;
      }
    }
    const double local = reduceLoopLocal(ctx, fn, tripCount, args);
    const double total = simdReduceAdd(ctx, local);
    syncSimdGroup(ctx);
    return total;
  }

  SIMTOMP_CHECK(ctx.isSimdGroupLeader(),
                "generic-mode simd reduction reached by a worker thread");
  const uint32_t group = ctx.simdGroup();
  setSimdFn(ctx, reinterpret_cast<void*>(fn), SimdWorkKind::kReduceAddF64,
            tripCount, numArgs);
  void** shared_args = args;
  const bool share = numArgs > 0 && ctx.simdGroupSize() > 1;
  if (share) {
    const ConstructSpan sharing_span(t, simprof::Construct::kSharing);
    shared_args =
        ts.sharing->beginSharing(t, group, ctx.numThreads(), numArgs);
    for (uint32_t i = 0; i < numArgs; ++i) {
      ts.sharing->storeArg(t, group, shared_args, i, args[i]);
    }
    ts.groups[group].args = shared_args;
    t.chargeSharedStore();
  }
  syncSimdGroup(ctx);  // release the workers
  const double local = reduceLoopLocal(ctx, fn, tripCount, shared_args);
  const double total = simdReduceAdd(ctx, local);
  syncSimdGroup(ctx);
  if (share) ts.sharing->endSharing(t, group);
  return total;
}

}  // namespace simtomp::omprt::rt
