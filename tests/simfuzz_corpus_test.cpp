// The seeded regression corpus: programs the fuzzer singled out, landed
// verbatim in their canonical text form so the exact kernels replay
// forever even if the generator's grammar (and thus seed mapping)
// drifts. Each entry records its seed provenance; all must stay
// differentially clean through the full matrix.
//
// simfuzz-min-seed11 is a landed minimized counterexample: the first
// real finding of the fuzzer. A generic-SIMD region whose 256-byte
// sharing space overflows to global memory had its transient staging
// block's granules reused by other blocks' overflows, which simcheck's
// allocation-unaware cross-block analysis flagged as a write/write
// race (a checker false positive, fixed by marking runtime-owned
// transient staging accesses block-private). This corpus entry keeps
// the repro alive.
#include <gtest/gtest.h>

#include "simfuzz/generator.h"
#include "simfuzz/harness.h"

namespace simtomp::simfuzz {
namespace {

struct CorpusEntry {
  const char* name;
  const char* text;
};

constexpr CorpusEntry kCorpus[] = {
    // Prime trip counts on both levels (outer=7, inner=29): no split is
    // warp- or simdlen-aligned anywhere in the matrix.
    {"prime-trips",
     "fuzzprog v1 seed=0 construct=dpf body=nest teams=2 threads=64 "
     "tmode=generic pmode=spmd simdlen=1 sched=cyclic chunk=0 outer=7 "
     "inner=29 pressure=0 sharing=2048 a=3 b=4 inject=none"},
    // simdlen (32) far above the inner trip (1): most lanes of every
    // group idle through the simd loop; chunked worksharing on top.
    {"simdlen-over-trip",
     "fuzzprog v1 seed=2 construct=sched body=nest teams=3 threads=192 "
     "tmode=generic pmode=spmd simdlen=32 sched=chunked chunk=2 outer=178 "
     "inner=1 pressure=0 sharing=2048 a=-2 b=-2 inject=none"},
    // Maximum sharing pressure: a 352-byte ballast body globalized by
    // generic-SIMD into a 256-byte sharing space, overflowing to
    // global memory concurrently from two teams.
    {"max-sharing-pressure",
     "fuzzprog v1 seed=801 construct=dpf body=nest teams=2 threads=64 "
     "tmode=generic pmode=generic simdlen=64 sched=cyclic chunk=0 outer=7 "
     "inner=40 pressure=2 sharing=256 a=3 b=0 inject=none"},
    // Landed minimized counterexample (see the file comment): the
    // smallest shape whose sharing-space overflow staging used to trip
    // simcheck's cross-block-race analysis.
    {"simfuzz-min-seed11",
     "fuzzprog v1 seed=11 construct=dpf body=nest teams=4 threads=64 "
     "tmode=spmd pmode=generic simdlen=2 sched=cyclic chunk=0 outer=2 "
     "inner=0 pressure=0 sharing=256 a=1 b=0 inject=none"},
};

class FuzzCorpus : public ::testing::TestWithParam<size_t> {};

TEST_P(FuzzCorpus, StaysDifferentiallyClean) {
  const CorpusEntry& entry = kCorpus[GetParam()];
  const auto parsed = FuzzProgram::parse(entry.text);
  ASSERT_TRUE(parsed.isOk()) << parsed.status().toString();
  const FuzzProgram p = parsed.value();
  // The landed text must already be canonical (normalize() fixpoint):
  // a drifting normalizer would silently change the replayed kernel.
  EXPECT_EQ(p.serialize(), entry.text) << entry.name;

  const DiffResult diff = diffProgram(p);
  EXPECT_FALSE(diff.diverged())
      << entry.name << ": "
      << (diff.notes.empty() ? "" : diff.notes.front());
}

TEST(FuzzCorpusTest, SeedProvenanceStillHolds) {
  // Documentation-grade check: today's generator still maps the
  // recorded seeds to the landed programs (the corpus above does not
  // depend on it — this test is the early warning that seed provenance
  // comments have gone stale).
  const Generator gen;
  EXPECT_EQ(gen.generate(0).serialize(), kCorpus[0].text);
  EXPECT_EQ(gen.generate(2).serialize(), kCorpus[1].text);
  EXPECT_EQ(gen.generate(801).serialize(), kCorpus[2].text);
}

INSTANTIATE_TEST_SUITE_P(Entries, FuzzCorpus,
                         ::testing::Range<size_t>(0, std::size(kCorpus)));

}  // namespace
}  // namespace simtomp::simfuzz
