// Paper Fig. 10: relative speedup of the SIMD execution modes versus
// the "No SIMD" two-level baseline (teams SPMD, group size 32,
// consistent teams/threads across all modes).
//
// Expected shape (paper section 6.4): SPMD-SIMD performs like "No
// SIMD" (laplace3d and muram_interpol marginally better), generic-SIMD
// loses roughly 15% to the state machine and its synchronization.
#include <benchmark/benchmark.h>

#include <functional>

#include "apps/laplace3d.h"
#include "apps/muram.h"
#include "bench_common.h"
#include "gpusim/device.h"

namespace {

using namespace simtomp;
using apps::SimdMode;
using bench::checkOk;
using bench::checkVerified;
using bench::Row;

constexpr SimdMode kModes[] = {SimdMode::kNoSimd, SimdMode::kSpmdSimd,
                               SimdMode::kGenericSimd};

// Grids long in the fastest (simd) dimension, as the MURaM and
// heat-diffusion codes are: 1,024 (i,j) planes over 8 teams of 128
// threads — exactly one plane per thread in the No-SIMD baseline, so
// the comparison starts from a saturated 2-level configuration ("the
// number of teams and threads-per-team is kept consistent"), and a
// ~256-point inner line so the per-loop simd overhead is amortized as
// it would be at production problem sizes.
constexpr uint32_t kTeams = 8;
constexpr uint32_t kThreads = 128;
constexpr uint32_t kGroup = 32;

const apps::Laplace3dWorkload& laplaceWorkload() {
  static const apps::Laplace3dWorkload w =
      apps::generateLaplace3d(34, 34, 258, 9);
  return w;
}

// Separate shapes so each kernel's simd trip count (nz for transpose,
// nz-1 for interpol) divides the 32-lane group evenly — otherwise the
// ceil-division remainder idles lanes and muddies the mode comparison.
const apps::MuramWorkload& transposeWorkload() {
  static const apps::MuramWorkload w = apps::generateMuram(32, 32, 256, 11);
  return w;
}

const apps::MuramWorkload& interpolWorkload() {
  static const apps::MuramWorkload w = apps::generateMuram(32, 32, 257, 11);
  return w;
}

uint64_t runLaplaceCyclesUncached(SimdMode mode);

uint64_t runLaplaceCycles(SimdMode mode) {
  // Each mode simulates a full kernel; memoize so the benchmark and
  // the printed summary do not re-run identical configurations.
  static uint64_t cache[3] = {0, 0, 0};
  uint64_t& slot = cache[static_cast<int>(mode)];
  if (slot == 0) slot = runLaplaceCyclesUncached(mode);
  return slot;
}

uint64_t runLaplaceCyclesUncached(SimdMode mode) {
  gpusim::Device dev;
  apps::Laplace3dOptions options;
  options.mode = mode;
  options.numTeams = kTeams;
  options.threadsPerTeam = kThreads;
  options.simdlen = kGroup;
  const auto result =
      checkOk(runLaplace3d(dev, laplaceWorkload(), options), "laplace3d");
  checkVerified(result.verified, "laplace3d");
  return result.stats.cycles;
}

uint64_t runTransposeCyclesUncached(SimdMode mode);

uint64_t runTransposeCycles(SimdMode mode) {
  // Each mode simulates a full kernel; memoize so the benchmark and
  // the printed summary do not re-run identical configurations.
  static uint64_t cache[3] = {0, 0, 0};
  uint64_t& slot = cache[static_cast<int>(mode)];
  if (slot == 0) slot = runTransposeCyclesUncached(mode);
  return slot;
}

uint64_t runTransposeCyclesUncached(SimdMode mode) {
  gpusim::Device dev;
  apps::MuramOptions options;
  options.mode = mode;
  options.numTeams = kTeams;
  options.threadsPerTeam = kThreads;
  options.simdlen = kGroup;
  const auto result = checkOk(runMuramTranspose(dev, transposeWorkload(), options),
                              "muram_transpose");
  checkVerified(result.verified, "muram_transpose");
  return result.stats.cycles;
}

uint64_t runInterpolCyclesUncached(SimdMode mode);

uint64_t runInterpolCycles(SimdMode mode) {
  // Each mode simulates a full kernel; memoize so the benchmark and
  // the printed summary do not re-run identical configurations.
  static uint64_t cache[3] = {0, 0, 0};
  uint64_t& slot = cache[static_cast<int>(mode)];
  if (slot == 0) slot = runInterpolCyclesUncached(mode);
  return slot;
}

uint64_t runInterpolCyclesUncached(SimdMode mode) {
  gpusim::Device dev;
  apps::MuramOptions options;
  options.mode = mode;
  options.numTeams = kTeams;
  options.threadsPerTeam = kThreads;
  options.simdlen = kGroup;
  const auto result = checkOk(runMuramInterpol(dev, interpolWorkload(), options),
                              "muram_interpol");
  checkVerified(result.verified, "muram_interpol");
  return result.stats.cycles;
}

void modeBenchmark(benchmark::State& state,
                   uint64_t (*run)(SimdMode mode)) {
  const auto mode = static_cast<SimdMode>(state.range(0));
  uint64_t cycles = 0;
  for (auto _ : state) cycles = run(mode);
  state.counters["sim_cycles"] = static_cast<double>(cycles);
  if (mode != SimdMode::kNoSimd) {
    state.counters["speedup_vs_nosimd"] =
        static_cast<double>(run(SimdMode::kNoSimd)) /
        static_cast<double>(cycles);
  }
}

void BM_Laplace3d(benchmark::State& state) {
  modeBenchmark(state, &runLaplaceCycles);
}
void BM_MuramTranspose(benchmark::State& state) {
  modeBenchmark(state, &runTransposeCycles);
}
void BM_MuramInterpol(benchmark::State& state) {
  modeBenchmark(state, &runInterpolCycles);
}

BENCHMARK(BM_Laplace3d)->Arg(0)->Arg(1)->Arg(2)->Iterations(1)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_MuramTranspose)->Arg(0)->Arg(1)->Arg(2)->Iterations(1)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_MuramInterpol)->Arg(0)->Arg(1)->Arg(2)->Iterations(1)->Unit(benchmark::kMillisecond);

void printSeries(const char* title, uint64_t (*run)(SimdMode mode)) {
  const uint64_t base = run(SimdMode::kNoSimd);
  std::vector<Row> rows;
  for (SimdMode mode : {SimdMode::kSpmdSimd, SimdMode::kGenericSimd}) {
    const uint64_t c = run(mode);
    rows.push_back({apps::simdModeName(mode), c,
                    static_cast<double>(base) / static_cast<double>(c)});
  }
  bench::printTable(title, "no-simd (2-level SPMD)", base, rows);
}

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  printSeries("Fig. 10a laplace3d (paper: spmd ~1.0x, generic ~0.85x)",
              &runLaplaceCycles);
  printSeries("Fig. 10b muram_transpose (paper: spmd ~1.0x, generic ~0.85x)",
              &runTransposeCycles);
  printSeries("Fig. 10c muram_interpol (paper: spmd ~1.0x, generic ~0.85x)",
              &runInterpolCycles);
  (void)bench::writeBenchJson("fig10_mode_overhead");
  return 0;
}
