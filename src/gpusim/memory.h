// Simulated device memory.
//
// DeviceMemory models the GPU global memory: a byte arena managed by a
// first-fit free-list allocator. Device code addresses it through typed
// GlobalSpan<T> views that charge the cost model on every access; host
// code (setup/verification) uses the uncharged raw accessors.
//
// SharedMemory models one block's on-chip scratchpad with the same
// allocator (individual allocations can be freed, which region-scoped
// globalized variables from *different SIMD groups* need — their
// lifetimes interleave arbitrarily, so a bump/watermark scheme would
// corrupt neighbours). The OpenMP runtime carves its static "variable
// sharing space" out of it at block start (paper section 5.3.1).
#pragma once

#include <cstddef>
#include <cstdint>
#include <mutex>
#include <span>
#include <vector>

#include "support/status.h"

namespace simtomp::gpusim {

class ThreadCtx;

/// Opaque handle into a memory arena (byte offset; 0 is a valid
/// address, kNullDevPtr marks "no allocation").
using DevPtr = uint64_t;
inline constexpr DevPtr kNullDevPtr = ~DevPtr{0};

/// First-fit free-list allocator over [0, capacity). Not thread-safe;
/// wrap externally where needed.
class FreeListAllocator {
 public:
  explicit FreeListAllocator(size_t capacity);

  Result<DevPtr> allocate(size_t bytes, size_t align);
  Status free(DevPtr ptr);

  [[nodiscard]] size_t capacity() const { return capacity_; }
  [[nodiscard]] size_t bytesInUse() const;
  [[nodiscard]] size_t liveAllocations() const { return live_.size(); }

 private:
  struct Block {
    DevPtr offset;
    size_t size;
  };

  size_t capacity_;
  std::vector<Block> free_list_;  // sorted by offset, coalesced
  std::vector<Block> live_;       // sorted by offset
};

class DeviceMemory {
 public:
  explicit DeviceMemory(size_t bytes);

  DeviceMemory(const DeviceMemory&) = delete;
  DeviceMemory& operator=(const DeviceMemory&) = delete;

  /// Allocate `bytes` with `align` alignment. Thread-safe.
  Result<DevPtr> allocate(size_t bytes, size_t align = 16);
  /// Free a pointer returned by allocate(). Double frees are detected.
  Status free(DevPtr ptr);

  [[nodiscard]] size_t capacity() const { return arena_.size(); }
  [[nodiscard]] size_t bytesInUse() const;
  [[nodiscard]] size_t liveAllocations() const;

  /// Raw host-side access (no cost charged); used by the host runtime
  /// for H2D/D2H copies and by tests for verification.
  [[nodiscard]] std::byte* raw(DevPtr ptr) { return arena_.data() + ptr; }
  [[nodiscard]] const std::byte* raw(DevPtr ptr) const {
    return arena_.data() + ptr;
  }

 private:
  std::vector<std::byte> arena_;
  FreeListAllocator allocator_;
  mutable std::mutex mutex_;
};

/// Typed view of a global-memory allocation. Copyable; does not own.
/// Device-side accesses go through get/set/atomicAdd and charge the
/// calling thread's cost model; host-side access uses raw().
template <typename T>
class GlobalSpan {
 public:
  GlobalSpan() = default;
  GlobalSpan(T* data, size_t size) : data_(data), size_(size) {}

  [[nodiscard]] size_t size() const { return size_; }
  [[nodiscard]] bool empty() const { return size_ == 0; }

  // Device-side accessors, defined in thread.h (need ThreadCtx).
  T get(ThreadCtx& t, size_t i) const;
  void set(ThreadCtx& t, size_t i, T value) const;
  /// Atomic fetch-add; returns the previous value.
  T atomicAdd(ThreadCtx& t, size_t i, T value) const;

  // Host-side (uncharged) access.
  [[nodiscard]] T& raw(size_t i) const { return data_[i]; }
  [[nodiscard]] T* data() const { return data_; }
  [[nodiscard]] std::span<T> hostSpan() const { return {data_, size_}; }

  [[nodiscard]] GlobalSpan subspan(size_t offset, size_t count) const {
    return GlobalSpan(data_ + offset, count);
  }

 private:
  T* data_ = nullptr;
  size_t size_ = 0;
};

/// One block's shared-memory scratchpad. Single-threaded by
/// construction (one block = one OS thread), so no locking.
class SharedMemory {
 public:
  explicit SharedMemory(size_t bytes) : arena_(bytes), allocator_(bytes) {}

  /// Allocate; returns nullptr when the scratchpad is exhausted
  /// (callers fall back to global memory, as the runtime does).
  std::byte* allocate(size_t bytes, size_t align = 16);
  /// Free an allocation (region-scoped globalized variables).
  Status free(const std::byte* ptr);

  [[nodiscard]] size_t capacity() const { return arena_.size(); }
  [[nodiscard]] size_t used() const { return allocator_.bytesInUse(); }
  /// High-water mark of used() over the block's lifetime (occupancy
  /// reporting: the scratchpad a resident block effectively needs).
  [[nodiscard]] size_t peakUsed() const { return peak_used_; }
  [[nodiscard]] size_t liveAllocations() const {
    return allocator_.liveAllocations();
  }
  [[nodiscard]] std::byte* base() { return arena_.data(); }

 private:
  std::vector<std::byte> arena_;
  FreeListAllocator allocator_;
  size_t peak_used_ = 0;
};

/// Typed view into shared memory; accesses charge shared-access costs.
template <typename T>
class SharedSpan {
 public:
  SharedSpan() = default;
  SharedSpan(T* data, size_t size) : data_(data), size_(size) {}

  [[nodiscard]] size_t size() const { return size_; }

  T get(ThreadCtx& t, size_t i) const;
  void set(ThreadCtx& t, size_t i, T value) const;
  [[nodiscard]] T& raw(size_t i) const { return data_[i]; }
  [[nodiscard]] T* data() const { return data_; }

 private:
  T* data_ = nullptr;
  size_t size_ = 0;
};

}  // namespace simtomp::gpusim
