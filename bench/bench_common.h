// Shared helpers for the benchmark harnesses.
//
// The metric of interest is *simulated device cycles*, not host wall
// time, so every benchmark runs its kernel once and reports cycles (and
// derived speedups) through google-benchmark counters. Each binary also
// prints a paper-style summary table so the series can be compared to
// the corresponding figure directly (see EXPERIMENTS.md), and — so the
// perf trajectory can be tracked across PRs by machines, not eyeballs —
// every printed series is mirrored into BENCH_<name>.json via
// writeBenchJson(). Host wall time appears as an extra column/field
// when a series records it (Row::hostMs), which is how the
// host-parallel block executor's wall-clock wins are measured without
// disturbing the cycle numbers.
#pragma once

#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

#include "gpusim/stats.h"
#include "support/status.h"

namespace simtomp::bench {

/// One printed row: label + cycles + speedup vs the series baseline.
/// hostMs is optional host wall-clock for the run (0 = not measured).
struct Row {
  std::string label;
  uint64_t cycles = 0;
  double speedup = 1.0;
  double hostMs = 0.0;
};

namespace detail {

struct Series {
  std::string title;
  std::string baselineLabel;
  uint64_t baselineCycles = 0;
  std::vector<Row> rows;
};

/// Every series printed by this binary, in print order.
inline std::vector<Series>& seriesLog() {
  static std::vector<Series> log;
  return log;
}

inline void jsonEscapeTo(std::string& out, const std::string& s) {
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default: out += c;
    }
  }
}

}  // namespace detail

inline void printTable(const char* title, const char* baseline_label,
                       uint64_t baseline_cycles,
                       const std::vector<Row>& rows) {
  bool have_host_ms = false;
  for (const Row& row : rows) have_host_ms |= row.hostMs > 0.0;

  std::printf("\n=== %s ===\n", title);
  std::printf("%-28s %14s %10s%s\n", "configuration", "sim cycles", "speedup",
              have_host_ms ? "    host ms" : "");
  std::printf("%-28s %14llu %10s\n", baseline_label,
              static_cast<unsigned long long>(baseline_cycles), "1.00x");
  for (const Row& row : rows) {
    if (have_host_ms) {
      std::printf("%-28s %14llu %9.2fx %10.2f\n", row.label.c_str(),
                  static_cast<unsigned long long>(row.cycles), row.speedup,
                  row.hostMs);
    } else {
      std::printf("%-28s %14llu %9.2fx\n", row.label.c_str(),
                  static_cast<unsigned long long>(row.cycles), row.speedup);
    }
  }
  std::fflush(stdout);
  detail::seriesLog().push_back(
      {title, baseline_label, baseline_cycles, rows});
}

/// Write every series printed so far to BENCH_<name>.json in the
/// working directory (label → sim cycles, host wall time, speedup,
/// modeled-cycles-per-host-second throughput). Call once at the end of
/// each benchmark binary's main().
inline Status writeBenchJson(const char* name) {
  std::string out = "{\n  \"bench\": \"";
  detail::jsonEscapeTo(out, name);
  out += "\",\n  \"series\": [\n";
  const auto& log = detail::seriesLog();
  char buf[256];
  for (size_t s = 0; s < log.size(); ++s) {
    const detail::Series& series = log[s];
    out += "    {\"title\": \"";
    detail::jsonEscapeTo(out, series.title);
    out += "\",\n     \"baseline\": {\"label\": \"";
    detail::jsonEscapeTo(out, series.baselineLabel);
    std::snprintf(buf, sizeof(buf), "\", \"sim_cycles\": %llu},\n",
                  static_cast<unsigned long long>(series.baselineCycles));
    out += buf;
    out += "     \"rows\": [\n";
    for (size_t r = 0; r < series.rows.size(); ++r) {
      const Row& row = series.rows[r];
      const double host_s = row.hostMs / 1000.0;
      const double cycles_per_host_s =
          host_s > 0.0 ? static_cast<double>(row.cycles) / host_s : 0.0;
      out += "       {\"label\": \"";
      detail::jsonEscapeTo(out, row.label);
      std::snprintf(buf, sizeof(buf),
                    "\", \"sim_cycles\": %llu, \"speedup\": %.6f, "
                    "\"host_ms\": %.3f, \"host_s\": %.6f, "
                    "\"cycles_per_host_s\": %.1f}%s\n",
                    static_cast<unsigned long long>(row.cycles), row.speedup,
                    row.hostMs, host_s, cycles_per_host_s,
                    r + 1 < series.rows.size() ? "," : "");
      out += buf;
    }
    out += "     ]}";
    out += s + 1 < log.size() ? ",\n" : "\n";
  }
  out += "  ]\n}\n";

  const std::string path = std::string("BENCH_") + name + ".json";
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    return Status::internal("cannot open " + path + " for writing");
  }
  std::fwrite(out.data(), 1, out.size(), f);
  std::fclose(f);
  std::printf("wrote %s (%zu series)\n", path.c_str(), log.size());
  return Status::ok();
}

/// Host wall-clock stopwatch for Row::hostMs.
class WallTimer {
 public:
  WallTimer() : start_(std::chrono::steady_clock::now()) {}
  [[nodiscard]] double elapsedMs() const {
    return std::chrono::duration<double, std::milli>(
               std::chrono::steady_clock::now() - start_)
        .count();
  }

 private:
  std::chrono::steady_clock::time_point start_;
};

/// Abort the benchmark binary on a failed run — a bench that silently
/// reports garbage is worse than one that fails loudly.
template <typename T>
const T& checkOk(const Result<T>& result, const char* what) {
  if (!result.isOk()) {
    std::fprintf(stderr, "FATAL: %s failed: %s\n", what,
                 result.status().toString().c_str());
    std::abort();
  }
  return result.value();
}

inline void checkVerified(bool verified, const char* what) {
  if (!verified) {
    std::fprintf(stderr, "FATAL: %s failed verification\n", what);
    std::abort();
  }
}

}  // namespace simtomp::bench
