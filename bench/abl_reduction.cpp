// Ablation (paper sections 6.3 and 7): the paper's sparse_matvec had to
// use "a less efficient atomic update" because the new loop API lacked
// reductions. We implement the future-work simd reduction (warp
// shuffle butterfly) and measure what the paper's result was paying.
#include <benchmark/benchmark.h>

#include "apps/csr.h"
#include "apps/sparse_matvec.h"
#include "bench_common.h"
#include "gpusim/device.h"

namespace {

using namespace simtomp;
using bench::checkOk;
using bench::checkVerified;
using bench::Row;

const apps::CsrMatrix& matrix() {
  static const apps::CsrMatrix A = [] {
    apps::CsrGenConfig config;
    config.numRows = 4096;
    config.numCols = 4096;
    config.meanRowLength = 8;
    config.maxRowLength = 64;
    return generateCsr(config);
  }();
  return A;
}

uint64_t runVariant(apps::SpmvVariant variant, uint32_t group) {
  gpusim::Device dev;
  apps::SpmvOptions options;
  options.variant = variant;
  options.numTeams = 64;
  options.threadsPerTeam = 256;
  options.simdlen = group;
  const auto result = checkOk(runSpmv(dev, matrix(), options), "spmv");
  checkVerified(result.verified, "spmv");
  return result.stats.cycles;
}

void BM_SpmvReduction(benchmark::State& state) {
  const bool reduction = state.range(0) != 0;
  const auto group = static_cast<uint32_t>(state.range(1));
  uint64_t cycles = 0;
  for (auto _ : state) {
    cycles = runVariant(reduction ? apps::SpmvVariant::kThreeLevelReduction
                                  : apps::SpmvVariant::kThreeLevelAtomic,
                        group);
  }
  state.counters["sim_cycles"] = static_cast<double>(cycles);
}
BENCHMARK(BM_SpmvReduction)
    ->Args({0, 4})
    ->Args({1, 4})
    ->Args({0, 8})
    ->Args({1, 8})
    ->Args({0, 16})
    ->Args({1, 16})
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  for (uint32_t group : {4u, 8u, 16u}) {
    const uint64_t atomic =
        runVariant(apps::SpmvVariant::kThreeLevelAtomic, group);
    const uint64_t reduction =
        runVariant(apps::SpmvVariant::kThreeLevelReduction, group);
    bench::printTable(
        ("Ablation: spmv atomic vs simd reduction, group " +
         std::to_string(group))
            .c_str(),
        "atomic update (paper)", atomic,
        {{"simd reduction (future work)", reduction,
          static_cast<double>(atomic) / static_cast<double>(reduction)}});
  }
  (void)bench::writeBenchJson("abl_reduction");
  return 0;
}
