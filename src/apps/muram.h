// MURaM-derived kernels (paper section 6.4, ref [30]): two kernels
// adapted from the MPS/University of Chicago radiative MHD code's
// OpenACC port, used to compare SIMD execution modes.
//
//   muram_transpose — 3-D array transpose out[k][j][i] = in[i][j][k];
//   muram_interpol  — staggered-grid interpolation along the fastest
//                     axis: out[i][j][k] = (in[i][j][k]+in[i][j][k+1])/2.
//
// Parallelization mirrors laplace3d: collapsed (i,j) across
// teams+threads, the k loop as the simd level (group size 32), teams
// always SPMD.
#pragma once

#include <cstdint>
#include <vector>

#include "apps/common.h"
#include "gpusim/device.h"
#include "support/status.h"

namespace simtomp::apps {

struct MuramWorkload {
  uint32_t nx = 32;
  uint32_t ny = 32;
  uint32_t nz = 32;
  std::vector<double> input;  ///< nx*ny*nz, row-major (i*ny + j)*nz + k
};

MuramWorkload generateMuram(uint32_t nx, uint32_t ny, uint32_t nz,
                            uint64_t seed);

std::vector<double> muramTransposeReference(const MuramWorkload& w);
std::vector<double> muramInterpolReference(const MuramWorkload& w);

struct MuramOptions {
  SimdMode mode = SimdMode::kNoSimd;
  uint32_t numTeams = 32;
  uint32_t threadsPerTeam = 128;
  uint32_t simdlen = 32;
};

Result<AppRunResult> runMuramTranspose(gpusim::Device& device,
                                       const MuramWorkload& w,
                                       const MuramOptions& options);
Result<AppRunResult> runMuramInterpol(gpusim::Device& device,
                                      const MuramWorkload& w,
                                      const MuramOptions& options);

}  // namespace simtomp::apps
