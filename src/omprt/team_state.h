// Per-team (per-block) shared runtime state.
//
// Conceptually this lives in the block's shared memory on a real GPU;
// here it is a host object attached to the BlockEngine, and every
// device-side read/write of its fields is charged as a shared-memory
// access at the use site (the runtime code does the charging).
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <unordered_map>
#include <vector>

#include "gpusim/arch.h"
#include "omprt/modes.h"
#include "omprt/sharing.h"

namespace simtomp::omprt {

/// What kind of simd work a group leader published. kLoop is the
/// paper's __simd_loop; kReduceAddF64 is our reduction extension
/// (paper section 7 future work).
enum class SimdWorkKind : uint8_t { kLoop, kReduceAddF64 };

/// Work descriptor one SIMD main publishes for its group's workers
/// (paper Figs. 4 and 6: setSimdFn / getSimdFn / getSimdArgs).
struct SimdGroupState {
  SimdWorkKind kind = SimdWorkKind::kLoop;
  void* simdFn = nullptr;  ///< nullptr = terminate signal
  uint64_t tripCount = 0;
  void** args = nullptr;
  uint32_t numArgs = 0;
};

struct TeamState {
  TeamState(ExecMode teams_mode, uint32_t num_worker_threads,
            uint32_t warp_size, bool arch_has_warp_barrier,
            std::unique_ptr<SharingSpace> sharing_space,
            ParallelConfig default_parallel = {},
            uint64_t default_schedule_chunk = 0,
            bool fast_path_enabled = false)
      : teamsMode(teams_mode),
        numWorkerThreads(num_worker_threads),
        mainThreadId(num_worker_threads),  // lane 0 of the extra warp
        warpSize(warp_size),
        archHasWarpBarrier(arch_has_warp_barrier),
        fastPathEnabled(fast_path_enabled),
        defaultParallel(default_parallel),
        defaultScheduleChunk(default_schedule_chunk),
        sharing(std::move(sharing_space)) {
    groups.resize(numWorkerThreads);  // enough for group size 1
    reduceScratch.resize(numWorkerThreads, 0.0);
  }

  // ---- Launch configuration (immutable during the kernel) ----
  const ExecMode teamsMode;
  /// Worker threads available to parallel regions. In generic teams
  /// mode the block additionally has one extra warp whose lane 0 is the
  /// team main thread (paper section 5.1 / Fig. 2).
  const uint32_t numWorkerThreads;
  const uint32_t mainThreadId;
  const uint32_t warpSize;
  const bool archHasWarpBarrier;
  /// Convergence fast path switch for this launch (resolved from
  /// TargetConfig::fastPath; always false for fault-armed launches).
  const bool fastPathEnabled;
  /// Launch-wide defaults a region-level ParallelConfig with auto
  /// fields (simdGroupSize == kSimdlenAuto, modeAuto) resolves against.
  /// Filled from TargetConfig::{parallelMode, simdlen} — i.e. from the
  /// tuner when the launch used auto fields. Never itself auto.
  const ParallelConfig defaultParallel;
  /// Launch-wide default chunk for scheduled worksharing loops whose
  /// clause leaves chunk 0 (0 = the runtime's own default of 1).
  const uint64_t defaultScheduleChunk;

  // ---- Parallel-region publication (teams generic mode) ----
  OutlinedFn parallelFn = nullptr;
  void** parallelArgs = nullptr;
  uint32_t parallelNumArgs = 0;
  ParallelConfig parallelConfig;
  bool terminate = false;

  // ---- SIMD group states (generic-SIMD mode) ----
  std::vector<SimdGroupState> groups;

  // ---- Dynamic-schedule work counter (conceptually in shared memory;
  //      accesses are charged at the use sites) ----
  std::atomic<uint64_t> dynamicCounter{0};

  // ---- Team reduction scratch (one slot per SIMD group) ----
  std::vector<double> reduceScratch;

  // ---- Critical-section lock state: the modeled release time of the
  //      last holder (entrants serialize their timelines on it) ----
  uint64_t criticalReleaseTime = 0;

  // ---- Variable sharing space (paper section 5.3.1) ----
  std::unique_ptr<SharingSpace> sharing;

  // ---- Convergence fast path decision memo ----
  /// Per-block pin of the fast/probe/slow decision for each outlined
  /// body. The *global* ConvergenceCache verdict can flip mid-kernel
  /// (another block's probe promotes a body); if two lanes of one SIMD
  /// group read different verdicts they rendezvous at different sync
  /// objects and deadlock. The first lane of a block to ask about a
  /// body resolves the global verdict once and memoizes it here; every
  /// later query in the block (all fibers share one host thread) takes
  /// the identical branch.
  enum class FastDecision : uint8_t { kSlow, kProbe, kFast };
  std::unordered_map<const void*, FastDecision> fastPathMemo;
};

}  // namespace simtomp::omprt
