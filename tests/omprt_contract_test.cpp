// Contract tests: API misuse must fail loudly (SIMTOMP_CHECK aborts),
// and the synchronization protocol's event counts must match the paper
// figures exactly — not just "be positive".
#include <gtest/gtest.h>

#include <atomic>

#include "loopir/outline.h"
#include "omprt/runtime.h"
#include "omprt/target.h"

namespace simtomp::omprt {
namespace {

using gpusim::ArchSpec;
using gpusim::Counter;
using gpusim::Device;

TargetConfig spmdConfig(uint32_t threads) {
  TargetConfig config;
  config.teamsMode = ExecMode::kSPMD;
  config.numTeams = 1;
  config.threadsPerTeam = threads;
  return config;
}

void noopBody(OmpContext& ctx, uint64_t, void**) { ctx.gpu().work(1); }
void noopRegion(OmpContext&, void**) {}

// ---------------- Misuse death tests ----------------

using ContractDeathTest = ::testing::Test;

TEST(ContractDeathTest, SimdOutsideParallelAborts) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  Device dev(ArchSpec::testTiny());
  EXPECT_DEATH(
      {
        (void)launchTarget(dev, spmdConfig(32), [&](OmpContext& ctx) {
          rt::simd(ctx, &noopBody, 4, nullptr, 0);
        });
      },
      "requires an enclosing parallel");
}

TEST(ContractDeathTest, NestedParallelAborts) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  Device dev(ArchSpec::testTiny());
  auto nested = +[](OmpContext& ctx, void**) {
    rt::parallel(ctx, &noopRegion, nullptr, 0, {ExecMode::kSPMD, 1});
  };
  EXPECT_DEATH(
      {
        (void)launchTarget(dev, spmdConfig(32), [&](OmpContext& ctx) {
          rt::parallel(ctx, nested, nullptr, 0, {ExecMode::kSPMD, 1});
        });
      },
      "nested parallel");
}

TEST(ContractDeathTest, TeamBarrierInGenericParallelAborts) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  Device dev(ArchSpec::testTiny());
  auto region = +[](OmpContext& ctx, void**) { rt::teamBarrier(ctx); };
  EXPECT_DEATH(
      {
        (void)launchTarget(dev, spmdConfig(32), [&](OmpContext& ctx) {
          rt::parallel(ctx, region, nullptr, 0, {ExecMode::kGeneric, 8});
        });
      },
      "teamBarrier requires");
}

TEST(ContractDeathTest, ArgPackOverflowAborts) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  Device dev(ArchSpec::testTiny());
  EXPECT_DEATH(
      {
        (void)launchTarget(dev, spmdConfig(32), [&](OmpContext& ctx) {
          loopir::ArgPack pack;
          int x = 0;
          for (size_t i = 0; i < loopir::ArgPack::kMaxArgs + 1; ++i) {
            pack.push(ctx, &x);
          }
        });
      },
      "ArgPack overflow");
}

// ---------------- Exact protocol counts ----------------

TEST(ProtocolCountTest, SpmdSimdWarpSyncCount) {
  // SPMD-SIMD per simd loop per lane: one sync inside __simd_loop and
  // one at __simd exit (paper Figs. 4 and 8) -> 2 per lane per loop.
  Device dev(ArchSpec::testTiny());
  uint64_t trip = 8;
  void* args[] = {&trip};
  auto region = +[](OmpContext& ctx, void** inner) {
    const auto t = *static_cast<uint64_t*>(inner[0]);
    rt::simd(ctx, &noopBody, t, inner, 1);
  };
  auto stats = launchTarget(
      dev, spmdConfig(32), [&](OmpContext& ctx) {
        rt::parallel(ctx, region, args, 1, {ExecMode::kSPMD, 8});
      });
  ASSERT_TRUE(stats.isOk());
  EXPECT_EQ(stats.value().counters.get(Counter::kWarpSync), 32u * 2u);
}

TEST(ProtocolCountTest, GenericSimdWarpSyncCount) {
  // Generic-SIMD (paper Figs. 3, 4, 6, 8), one simd loop, per lane:
  //   leader: release-sync (Fig. 4) + loop-entry sync (Fig. 8) +
  //           loop-exit sync (Fig. 4) + termination sync (Fig. 3) = 4
  //   worker: wait-sync + loop-entry + loop-done + final wait = 4.
  Device dev(ArchSpec::testTiny());
  uint64_t trip = 8;
  void* args[] = {&trip};
  auto region = +[](OmpContext& ctx, void** inner) {
    const auto t = *static_cast<uint64_t*>(inner[0]);
    rt::simd(ctx, &noopBody, t, inner, 1);
  };
  auto stats = launchTarget(
      dev, spmdConfig(32), [&](OmpContext& ctx) {
        rt::parallel(ctx, region, args, 1, {ExecMode::kGeneric, 8});
      });
  ASSERT_TRUE(stats.isOk());
  EXPECT_EQ(stats.value().counters.get(Counter::kWarpSync), 32u * 4u);
}

TEST(ProtocolCountTest, EmptyGenericRegionSyncCount) {
  // A generic parallel region with no simd loop still costs one
  // termination sync per lane (Fig. 3).
  Device dev(ArchSpec::testTiny());
  auto stats = launchTarget(
      dev, spmdConfig(32), [&](OmpContext& ctx) {
        rt::parallel(ctx, &noopRegion, nullptr, 0, {ExecMode::kGeneric, 8});
      });
  ASSERT_TRUE(stats.isOk());
  EXPECT_EQ(stats.value().counters.get(Counter::kWarpSync), 32u);
}

TEST(ProtocolCountTest, GenericTeamsBlockSyncCount) {
  // Teams-generic, N parallel regions: workers sit at a block barrier
  // per region start + end, plus the termination release; the team
  // main mirrors them. Expected block-sync events per thread:
  //   per region: 2 (start/end) -> N*2, plus 1 termination barrier.
  Device dev(ArchSpec::testTiny());
  constexpr uint64_t kRegions = 3;
  TargetConfig config;
  config.teamsMode = ExecMode::kGeneric;
  config.numTeams = 1;
  config.threadsPerTeam = 32;
  auto stats = launchTarget(dev, config, [&](OmpContext& ctx) {
    for (uint64_t r = 0; r < kRegions; ++r) {
      rt::parallel(ctx, &noopRegion, nullptr, 0, {ExecMode::kSPMD, 1});
    }
  });
  ASSERT_TRUE(stats.isOk());
  const uint64_t threads = 32 + 32;  // workers + extra main warp
  EXPECT_EQ(stats.value().counters.get(Counter::kBlockSync),
            threads * (kRegions * 2 + 1));
}

TEST(ProtocolCountTest, StatePollsScaleWithSimdLoops) {
  // Each published simd work item costs each *worker* exactly one
  // state-machine poll (Fig. 6), plus the final termination poll.
  Device dev(ArchSpec::testTiny());
  uint64_t trip = 4;
  void* args[] = {&trip};
  auto one = +[](OmpContext& ctx, void** inner) {
    const auto t = *static_cast<uint64_t*>(inner[0]);
    rt::simd(ctx, &noopBody, t, inner, 1);
  };
  auto three = +[](OmpContext& ctx, void** inner) {
    const auto t = *static_cast<uint64_t*>(inner[0]);
    rt::simd(ctx, &noopBody, t, inner, 1);
    rt::simd(ctx, &noopBody, t, inner, 1);
    rt::simd(ctx, &noopBody, t, inner, 1);
  };
  auto run = [&](OutlinedFn region) {
    auto stats = launchTarget(
        dev, spmdConfig(32), [&](OmpContext& ctx) {
          rt::parallel(ctx, region, args, 1, {ExecMode::kGeneric, 8});
        });
    EXPECT_TRUE(stats.isOk());
    return stats.value().counters.get(Counter::kStatePoll);
  };
  const uint64_t workers = 32 - 4;  // 4 groups of 8: 28 workers
  EXPECT_EQ(run(one), workers * 2);    // 1 loop + termination
  EXPECT_EQ(run(three), workers * 4);  // 3 loops + termination
}

TEST(ProtocolCountTest, SimdLoopAndParallelCounters) {
  Device dev(ArchSpec::testTiny());
  uint64_t trip = 4;
  void* args[] = {&trip};
  auto region = +[](OmpContext& ctx, void** inner) {
    const auto t = *static_cast<uint64_t*>(inner[0]);
    rt::simd(ctx, &noopBody, t, inner, 1);
    rt::simd(ctx, &noopBody, t, inner, 1);
  };
  auto stats = launchTarget(
      dev, spmdConfig(64), [&](OmpContext& ctx) {
        rt::parallel(ctx, region, args, 1, {ExecMode::kGeneric, 16});
        rt::parallel(ctx, region, args, 1, {ExecMode::kSPMD, 16});
      });
  ASSERT_TRUE(stats.isOk());
  // kSimdLoop is charged once per group leader per simd call:
  // 2 regions x 2 loops x 4 groups.
  EXPECT_EQ(stats.value().counters.get(Counter::kSimdLoop), 16u);
  EXPECT_EQ(stats.value().counters.get(Counter::kParallelRegion), 2u);
}

// ---------------- Mixed group sizes across regions ----------------

TEST(MixedGroupTest, DifferentSimdlenPerRegion) {
  // Paper 5.3.1: "the size of a SIMD group can differ among different
  // parallel regions".
  Device dev(ArchSpec::testTiny());
  std::atomic<int> counts[3] = {{0}, {0}, {0}};
  auto probe = +[](OmpContext& ctx, void** args) {
    auto* slot = static_cast<std::atomic<int>*>(args[0]);
    if (ctx.isSimdGroupLeader()) (*slot) += ctx.simdGroupSize();
  };
  auto stats = launchTarget(
      dev, spmdConfig(64), [&](OmpContext& ctx) {
        void* a0[] = {&counts[0]};
        rt::parallel(ctx, probe, a0, 1, {ExecMode::kGeneric, 2});
        void* a1[] = {&counts[1]};
        rt::parallel(ctx, probe, a1, 1, {ExecMode::kGeneric, 8});
        void* a2[] = {&counts[2]};
        rt::parallel(ctx, probe, a2, 1, {ExecMode::kGeneric, 32});
      });
  ASSERT_TRUE(stats.isOk());
  // Each region: (64/g leaders) x g = 64 regardless of g — but only if
  // the group size really changed each time.
  EXPECT_EQ(counts[0].load(), 64);
  EXPECT_EQ(counts[1].load(), 64);
  EXPECT_EQ(counts[2].load(), 64);
}

}  // namespace
}  // namespace simtomp::omprt
