#include "front/directive.h"

#include <cctype>

#include "simfault/fault.h"

namespace simtomp::front {

namespace {

/// Minimal tokenizer: identifiers, integers, and the punctuation the
/// clause grammar needs.
class Lexer {
 public:
  enum class Kind { kIdent, kNumber, kLParen, kRParen, kComma, kColon, kPlus, kEnd };

  struct Token {
    Kind kind = Kind::kEnd;
    std::string text;
    uint64_t number = 0;
  };

  explicit Lexer(std::string_view text) : text_(text) { advance(); }

  [[nodiscard]] const Token& peek() const { return current_; }

  Token take() {
    Token t = current_;
    advance();
    return t;
  }

  [[nodiscard]] bool atEnd() const { return current_.kind == Kind::kEnd; }

 private:
  void advance() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
    current_ = Token{};
    if (pos_ >= text_.size()) return;
    const char c = text_[pos_];
    if (std::isalpha(static_cast<unsigned char>(c)) || c == '_' || c == '#') {
      size_t start = pos_;
      while (pos_ < text_.size() &&
             (std::isalnum(static_cast<unsigned char>(text_[pos_])) ||
              text_[pos_] == '_' || text_[pos_] == '#')) {
        ++pos_;
      }
      current_ = {Kind::kIdent, std::string(text_.substr(start, pos_ - start)),
                  0};
      return;
    }
    if (std::isdigit(static_cast<unsigned char>(c))) {
      uint64_t value = 0;
      size_t start = pos_;
      while (pos_ < text_.size() &&
             std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
        value = value * 10 + static_cast<uint64_t>(text_[pos_] - '0');
        ++pos_;
      }
      current_ = {Kind::kNumber, std::string(text_.substr(start, pos_ - start)),
                  value};
      return;
    }
    ++pos_;
    switch (c) {
      case '(': current_ = {Kind::kLParen, "(", 0}; return;
      case ')': current_ = {Kind::kRParen, ")", 0}; return;
      case ',': current_ = {Kind::kComma, ",", 0}; return;
      case ':': current_ = {Kind::kColon, ":", 0}; return;
      case '+': current_ = {Kind::kPlus, "+", 0}; return;
      default:
        current_ = {Kind::kIdent, std::string(1, c), 0};
        return;
    }
  }

  std::string_view text_;
  size_t pos_ = 0;
  Token current_;
};

using Kind = Lexer::Kind;

Status expect(Lexer& lex, Kind kind, const char* what) {
  if (lex.peek().kind != kind) {
    return Status::invalidArgument(std::string("expected ") + what +
                                   " near '" + lex.peek().text + "'");
  }
  lex.take();
  return Status::ok();
}

Result<uint64_t> parseUintArg(Lexer& lex, const char* clause) {
  Status s = expect(lex, Kind::kLParen, "'('");
  if (!s.isOk()) return s;
  if (lex.peek().kind != Kind::kNumber) {
    return Status::invalidArgument(std::string(clause) +
                                   " expects an integer argument");
  }
  const uint64_t value = lex.take().number;
  s = expect(lex, Kind::kRParen, "')'");
  if (!s.isOk()) return s;
  return value;
}

/// Integer clause argument that also accepts the `auto` keyword.
struct UintOrAuto {
  uint64_t value = 0;
  bool isAuto = false;
};

Result<UintOrAuto> parseUintOrAutoArg(Lexer& lex, const char* clause) {
  Status s = expect(lex, Kind::kLParen, "'('");
  if (!s.isOk()) return s;
  UintOrAuto out;
  if (lex.peek().kind == Kind::kIdent && lex.peek().text == "auto") {
    lex.take();
    out.isAuto = true;
  } else if (lex.peek().kind == Kind::kNumber) {
    out.value = lex.take().number;
  } else {
    return Status::invalidArgument(std::string(clause) +
                                   " expects an integer or 'auto'");
  }
  s = expect(lex, Kind::kRParen, "')'");
  if (!s.isOk()) return s;
  return out;
}

struct ModeOrAuto {
  omprt::ExecMode mode = omprt::ExecMode::kSPMD;
  bool isAuto = false;
};

Result<ModeOrAuto> parseModeArg(Lexer& lex, const char* clause) {
  Status s = expect(lex, Kind::kLParen, "'('");
  if (!s.isOk()) return s;
  if (lex.peek().kind != Kind::kIdent) {
    return Status::invalidArgument(std::string(clause) +
                                   " expects spmd|generic|auto");
  }
  const std::string word = lex.take().text;
  s = expect(lex, Kind::kRParen, "')'");
  if (!s.isOk()) return s;
  ModeOrAuto out;
  if (word == "spmd") {
    out.mode = omprt::ExecMode::kSPMD;
  } else if (word == "generic") {
    out.mode = omprt::ExecMode::kGeneric;
  } else if (word == "auto") {
    out.isAuto = true;
  } else {
    return Status::invalidArgument("unknown execution mode '" + word + "'");
  }
  return out;
}

Status parseTune(Lexer& lex, DirectiveSpec& spec) {
  Status s = expect(lex, Kind::kLParen, "'('");
  if (!s.isOk()) return s;
  if (lex.peek().kind != Kind::kIdent) {
    return Status::invalidArgument("tune expects a kernel key");
  }
  spec.tuneKey = lex.take().text;
  return expect(lex, Kind::kRParen, "')'");
}

Status parseFault(Lexer& lex, DirectiveSpec& spec) {
  Status s = expect(lex, Kind::kLParen, "'('");
  if (!s.isOk()) return s;
  // The plan grammar (kind:key=value;...) is simfault's, not ours:
  // concatenate raw token text up to the matching ')' and let
  // FaultPlan::parse validate it, so the two grammars cannot drift.
  std::string plan;
  int depth = 1;
  for (;;) {
    if (lex.atEnd()) {
      return Status::invalidArgument("fault(...) is missing ')'");
    }
    const Lexer::Token token = lex.take();
    if (token.kind == Kind::kLParen) ++depth;
    if (token.kind == Kind::kRParen && --depth == 0) break;
    plan += token.text;
  }
  if (plan.empty()) {
    return Status::invalidArgument("fault expects a plan (or 'off')");
  }
  const Result<simfault::FaultPlan> parsed = simfault::FaultPlan::parse(plan);
  if (!parsed.isOk()) return parsed.status();
  spec.faultSpec = plan;
  return Status::ok();
}

Status parseWatchdog(Lexer& lex, DirectiveSpec& spec) {
  Status s = expect(lex, Kind::kLParen, "'('");
  if (!s.isOk()) return s;
  if (lex.peek().kind == Kind::kIdent && lex.peek().text == "off") {
    lex.take();
    spec.watchdogSteps = simfault::kWatchdogOff;
  } else if (lex.peek().kind == Kind::kNumber) {
    const uint64_t steps = lex.take().number;
    spec.watchdogSteps = steps == 0 ? simfault::kWatchdogOff : steps;
  } else {
    return Status::invalidArgument("watchdog expects a step budget or 'off'");
  }
  return expect(lex, Kind::kRParen, "')'");
}

Status parseProfile(Lexer& lex, DirectiveSpec& spec) {
  Status s = expect(lex, Kind::kLParen, "'('");
  if (!s.isOk()) return s;
  if (lex.peek().kind != Kind::kIdent) {
    return Status::invalidArgument("profile expects on|off|auto");
  }
  const std::string word = lex.take().text;
  if (word == "on") {
    spec.profileMode = simprof::ProfileMode::kOn;
  } else if (word == "off") {
    spec.profileMode = simprof::ProfileMode::kOff;
  } else if (word == "auto") {
    spec.profileMode = simprof::ProfileMode::kAuto;
  } else {
    return Status::invalidArgument("unknown profile mode '" + word + "'");
  }
  return expect(lex, Kind::kRParen, "')'");
}

Status parseSchedule(Lexer& lex, DirectiveSpec& spec) {
  Status s = expect(lex, Kind::kLParen, "'('");
  if (!s.isOk()) return s;
  if (lex.peek().kind != Kind::kIdent) {
    return Status::invalidArgument("schedule expects static|dynamic|cyclic");
  }
  const std::string kind = lex.take().text;
  if (kind == "static") {
    spec.schedule.kind = omprt::ForSchedule::kStaticChunked;
  } else if (kind == "cyclic") {
    spec.schedule.kind = omprt::ForSchedule::kStaticCyclic;
  } else if (kind == "dynamic") {
    spec.schedule.kind = omprt::ForSchedule::kDynamic;
  } else {
    return Status::invalidArgument("unknown schedule kind '" + kind + "'");
  }
  if (lex.peek().kind == Kind::kComma) {
    lex.take();
    if (lex.peek().kind != Kind::kNumber) {
      return Status::invalidArgument("schedule chunk must be an integer");
    }
    spec.schedule.chunk = lex.take().number;
  }
  spec.hasSchedule = true;
  return expect(lex, Kind::kRParen, "')'");
}

Status parseMap(Lexer& lex, DirectiveSpec& spec) {
  Status s = expect(lex, Kind::kLParen, "'('");
  if (!s.isOk()) return s;
  if (lex.peek().kind != Kind::kIdent) {
    return Status::invalidArgument("map expects to|from|tofrom|alloc");
  }
  const std::string type = lex.take().text;
  MapClause clause;
  if (type == "to") {
    clause.type = hostrt::MapType::kTo;
  } else if (type == "from") {
    clause.type = hostrt::MapType::kFrom;
  } else if (type == "tofrom") {
    clause.type = hostrt::MapType::kToFrom;
  } else if (type == "alloc") {
    clause.type = hostrt::MapType::kAlloc;
  } else {
    return Status::invalidArgument("unknown map type '" + type + "'");
  }
  s = expect(lex, Kind::kColon, "':'");
  if (!s.isOk()) return s;
  // One or more comma-separated names.
  for (;;) {
    if (lex.peek().kind != Kind::kIdent) {
      return Status::invalidArgument("map expects variable names");
    }
    clause.name = lex.take().text;
    spec.maps.push_back(clause);
    if (lex.peek().kind != Kind::kComma) break;
    lex.take();
  }
  return expect(lex, Kind::kRParen, "')'");
}

Status parseReduction(Lexer& lex, DirectiveSpec& spec) {
  Status s = expect(lex, Kind::kLParen, "'('");
  if (!s.isOk()) return s;
  if (lex.peek().kind != Kind::kPlus) {
    return Status::invalidArgument(
        "only reduction(+:...) is supported by the runtime");
  }
  lex.take();
  s = expect(lex, Kind::kColon, "':'");
  if (!s.isOk()) return s;
  for (;;) {
    if (lex.peek().kind != Kind::kIdent) {
      return Status::invalidArgument("reduction expects variable names");
    }
    spec.reductions.push_back({'+', lex.take().text});
    if (lex.peek().kind != Kind::kComma) break;
    lex.take();
  }
  return expect(lex, Kind::kRParen, "')'");
}

}  // namespace

Result<DirectiveSpec> parseDirective(std::string_view text) {
  Lexer lex(text);
  DirectiveSpec spec;

  // Tolerate a "#pragma omp" prefix.
  if (lex.peek().kind == Kind::kIdent && lex.peek().text == "#pragma") {
    lex.take();
    if (lex.peek().kind == Kind::kIdent && lex.peek().text == "omp") {
      lex.take();
    }
  }

  bool constructs_done = false;
  while (!lex.atEnd()) {
    if (lex.peek().kind != Kind::kIdent) {
      return Status::invalidArgument("unexpected token '" + lex.peek().text +
                                     "'");
    }
    const std::string word = lex.take().text;

    // Constructs (must come before clauses).
    if (word == "target" || word == "teams" || word == "distribute" ||
        word == "parallel" || word == "for" || word == "simd") {
      if (constructs_done) {
        return Status::invalidArgument("construct '" + word +
                                       "' after clauses");
      }
      if (word == "target") spec.hasTarget = true;
      if (word == "teams") spec.hasTeams = true;
      if (word == "distribute") spec.hasDistribute = true;
      if (word == "parallel") spec.hasParallel = true;
      if (word == "for") spec.hasFor = true;
      if (word == "simd") spec.hasSimd = true;
      continue;
    }
    constructs_done = true;

    // Clauses.
    if (word == "num_teams") {
      auto v = parseUintOrAutoArg(lex, "num_teams");
      if (!v.isOk()) return v.status();
      spec.numTeams = static_cast<uint32_t>(v.value().value);
      spec.numTeamsAuto = v.value().isAuto;
    } else if (word == "thread_limit" || word == "num_threads") {
      auto v = parseUintOrAutoArg(lex, word.c_str());
      if (!v.isOk()) return v.status();
      spec.threadLimit = static_cast<uint32_t>(v.value().value);
      spec.threadLimitAuto = v.value().isAuto;
    } else if (word == "simdlen") {
      auto v = parseUintOrAutoArg(lex, "simdlen");
      if (!v.isOk()) return v.status();
      spec.simdlen = static_cast<uint32_t>(v.value().value);
      spec.simdlenAuto = v.value().isAuto;
    } else if (word == "device") {
      auto v = parseUintArg(lex, "device");
      if (!v.isOk()) return v.status();
      spec.deviceNum = static_cast<uint32_t>(v.value());
    } else if (word == "collapse") {
      auto v = parseUintArg(lex, "collapse");
      if (!v.isOk()) return v.status();
      if (v.value() < 1 || v.value() > 2) {
        return Status::unimplemented("collapse depth must be 1 or 2");
      }
      spec.collapse = static_cast<uint32_t>(v.value());
    } else if (word == "schedule") {
      const Status s = parseSchedule(lex, spec);
      if (!s.isOk()) return s;
    } else if (word == "map") {
      const Status s = parseMap(lex, spec);
      if (!s.isOk()) return s;
    } else if (word == "reduction") {
      const Status s = parseReduction(lex, spec);
      if (!s.isOk()) return s;
    } else if (word == "mode" || word == "teams_mode") {
      auto v = parseModeArg(lex, word.c_str());
      if (!v.isOk()) return v.status();
      if (v.value().isAuto) {
        spec.teamsModeAuto = true;
      } else {
        spec.teamsMode = v.value().mode;
        spec.teamsModeExplicit = true;
      }
    } else if (word == "parallel_mode") {
      auto v = parseModeArg(lex, "parallel_mode");
      if (!v.isOk()) return v.status();
      if (v.value().isAuto) {
        spec.parallelModeAuto = true;
      } else {
        spec.parallelMode = v.value().mode;
        spec.parallelModeExplicit = true;
      }
    } else if (word == "tune") {
      const Status s = parseTune(lex, spec);
      if (!s.isOk()) return s;
    } else if (word == "fault") {
      const Status s = parseFault(lex, spec);
      if (!s.isOk()) return s;
    } else if (word == "watchdog") {
      const Status s = parseWatchdog(lex, spec);
      if (!s.isOk()) return s;
    } else if (word == "profile") {
      const Status s = parseProfile(lex, spec);
      if (!s.isOk()) return s;
    } else if (word == "nowait") {
      // Accepted; deferral is the caller's choice of launch API.
    } else {
      return Status::invalidArgument("unknown clause '" + word + "'");
    }
  }

  if (!spec.hasTarget && !spec.hasTeams && !spec.hasParallel &&
      !spec.hasSimd) {
    return Status::invalidArgument("directive names no construct");
  }
  return spec;
}

dsl::LaunchSpec DirectiveSpec::toLaunchSpec(
    const gpusim::ArchSpec& arch) const {
  dsl::LaunchSpec spec;
  // A tune key makes every launch-shape clause that was not given
  // explicitly auto (0 / auto flag), deferring to the simtune cache at
  // launch; without one, only clauses spelled `auto` defer.
  const bool tuned = !tuneKey.empty();
  spec.tuneKey = tuneKey;
  const uint32_t warp = arch.warpSize;

  if (numTeams != 0) {
    spec.numTeams = numTeams;
  } else {
    spec.numTeams = tuned || numTeamsAuto ? 0 : arch.numSMs;
  }
  if (threadLimit != 0) {
    // Round to a warp multiple (the launch layer requires it).
    spec.threadsPerTeam = ((threadLimit + warp - 1) / warp) * warp;
  } else {
    spec.threadsPerTeam = tuned || threadLimitAuto ? 0 : 128;
  }
  if (simdlen != 0) {
    spec.simdlen = simdlen;
  } else if (tuned || simdlenAuto) {
    spec.simdlen = 0;
  } else {
    spec.simdlen = hasSimd ? warp : 1;
  }

  // The tightly-nested => SPMD rule (paper 3.2 / 6.5): a combined
  // "teams distribute parallel ..." directive is tightly nested, so
  // teams run SPMD; `parallel ... simd` combined likewise makes the
  // parallel region SPMD. Split constructs default to generic. Under
  // auto the inferred mode stays in place as the placeholder/fallback
  // the tuner may replace.
  const bool teams_tightly_nested = hasTeams && hasParallel;
  const bool parallel_tightly_nested = hasParallel && hasSimd;
  spec.teamsMode = teamsModeExplicit
                       ? teamsMode
                       : dsl::inferSpmd(teams_tightly_nested);
  spec.teamsModeAuto = !teamsModeExplicit && (tuned || teamsModeAuto);
  spec.parallelMode = parallelModeExplicit
                          ? parallelMode
                          : dsl::inferSpmd(parallel_tightly_nested);
  spec.parallelModeAuto =
      !parallelModeExplicit && (tuned || parallelModeAuto);
  if (hasSchedule) spec.scheduleChunk = schedule.chunk;
  spec.faultSpec = faultSpec;
  spec.watchdogSteps = watchdogSteps;
  spec.profile.mode = profileMode;
  return spec;
}

}  // namespace simtomp::front
