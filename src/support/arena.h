// Bump-pointer arena for per-block simulator state.
//
// Every launched block used to heap-allocate its fiber stacks, thread
// contexts and TeamState individually and free them at block teardown —
// per-launch churn that dominates host wall-time once the convergence
// fast path removes the fiber-switch cost. An Arena hands out memory by
// bumping a pointer through reusable slabs: allocation is a few
// instructions, reset() rewinds the pointer but keeps the slabs, and a
// thread-local pool (ArenaLease) recycles whole arenas across blocks so
// steady-state block execution performs no heap traffic at all.
//
// Arenas are single-threaded by design: one arena serves one block,
// and a block runs on exactly one host worker thread.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <new>
#include <type_traits>
#include <utility>
#include <vector>

namespace simtomp::support {

class Arena {
 public:
  static constexpr size_t kDefaultSlabBytes = 256 * 1024;

  explicit Arena(size_t slab_bytes = kDefaultSlabBytes);
  ~Arena();

  Arena(const Arena&) = delete;
  Arena& operator=(const Arena&) = delete;

  /// Raw allocation; `align` must be a power of two. Never returns
  /// nullptr (allocation failure aborts via operator new).
  void* allocate(size_t bytes, size_t align);

  /// Placement-construct a T whose destructor never needs to run.
  template <typename T, typename... Args>
  T* create(Args&&... args) {
    static_assert(std::is_trivially_destructible_v<T>,
                  "create<T> skips the destructor; use createOwned<T>");
    return ::new (allocate(sizeof(T), alignof(T)))
        T(std::forward<Args>(args)...);
  }

  /// Placement-construct a T and register its destructor to run at
  /// reset() (in reverse construction order) — for objects that own
  /// heap resources (vectors, unique_ptrs) but should live in the arena.
  template <typename T, typename... Args>
  T* createOwned(Args&&... args) {
    T* obj = ::new (allocate(sizeof(T), alignof(T)))
        T(std::forward<Args>(args)...);
    owned_.push_back({obj, [](void* p) { static_cast<T*>(p)->~T(); }});
    return obj;
  }

  /// Value-initialized array of a trivially-destructible T.
  template <typename T>
  T* createArray(size_t n) {
    static_assert(std::is_trivially_destructible_v<T>,
                  "createArray<T> skips destructors");
    T* p = static_cast<T*>(allocate(n * sizeof(T), alignof(T)));
    for (size_t i = 0; i < n; ++i) ::new (static_cast<void*>(p + i)) T();
    return p;
  }

  /// Run owned destructors (newest first) and rewind every slab.
  /// Capacity is retained: the next user bumps through warm memory.
  void reset();

  // ---- Introspection (tests / sizing decisions) ----
  [[nodiscard]] size_t slabCount() const { return slabs_.size(); }
  [[nodiscard]] size_t capacityBytes() const;
  [[nodiscard]] size_t bytesInUse() const { return bytes_in_use_; }
  [[nodiscard]] uint64_t resetCount() const { return reset_count_; }

 private:
  struct Slab {
    std::unique_ptr<std::byte[]> data;
    size_t capacity = 0;
  };
  struct Owned {
    void* obj;
    void (*destroy)(void*);
  };

  /// Out-of-line refill: advance to the next retained slab that fits,
  /// or grow by a new slab of max(default, requested) bytes.
  void* refillAndAllocate(size_t bytes, size_t align);

  size_t default_slab_bytes_;
  std::vector<Slab> slabs_;
  size_t slab_index_ = 0;  ///< slab currently being bumped
  size_t offset_ = 0;      ///< bump offset within that slab
  size_t bytes_in_use_ = 0;
  uint64_t reset_count_ = 0;
  std::vector<Owned> owned_;
};

/// RAII lease of a pooled arena. Acquires a recycled arena from the
/// calling thread's pool (or builds a fresh one), and on destruction
/// resets it and returns it to the pool — unless it grew past the
/// retention cap, in which case it is simply freed. Acquire and release
/// must happen on the same thread (true for block execution: a block is
/// confined to one host worker).
class ArenaLease {
 public:
  ArenaLease();
  ~ArenaLease();

  ArenaLease(const ArenaLease&) = delete;
  ArenaLease& operator=(const ArenaLease&) = delete;

  [[nodiscard]] Arena& arena() { return *arena_; }
  Arena* operator->() { return arena_.get(); }
  Arena& operator*() { return *arena_; }

  /// Arenas larger than this are freed instead of pooled (a huge block
  /// should not pin its footprint for the rest of the process).
  static constexpr size_t kMaxRetainedBytes = 64 * 1024 * 1024;

  /// Number of arenas parked in the calling thread's pool (tests).
  [[nodiscard]] static size_t pooledCountForTest();
  /// Drop the calling thread's pool (tests).
  static void drainPoolForTest();

 private:
  std::unique_ptr<Arena> arena_;
};

}  // namespace simtomp::support
