#include "simtune/cache.h"

#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>

namespace simtomp::simtune {
namespace {

/// FNV-1a, the repo's go-to for small deterministic hashes.
uint64_t fnv1a(uint64_t hash, uint64_t value) {
  constexpr uint64_t kPrime = 0x100000001b3ull;
  for (int byte = 0; byte < 8; ++byte) {
    hash ^= (value >> (byte * 8)) & 0xffu;
    hash *= kPrime;
  }
  return hash;
}

std::string_view modeToken(omprt::ExecMode mode) {
  return omprt::execModeName(mode);
}

bool parseModeToken(std::string_view token, omprt::ExecMode& mode) {
  if (token == "generic") {
    mode = omprt::ExecMode::kGeneric;
    return true;
  }
  if (token == "spmd") {
    mode = omprt::ExecMode::kSPMD;
    return true;
  }
  return false;
}

/// JSON string escaping for the composite keys (kernel names may carry
/// user text; fingerprints are plain ASCII already).
void appendEscaped(std::string& out, std::string_view text) {
  for (const char c : text) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
}

/// Minimal scanner for the cache's own JSON dialect. Not a general JSON
/// parser: it accepts exactly what save() emits (plus flexible
/// whitespace), which keeps the loader dependency-free and honest about
/// what it can read.
class Scanner {
 public:
  explicit Scanner(std::string_view text) : text_(text) {}

  void skipWs() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  bool consume(char c) {
    skipWs();
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  bool peek(char c) {
    skipWs();
    return pos_ < text_.size() && text_[pos_] == c;
  }

  bool atEnd() {
    skipWs();
    return pos_ >= text_.size();
  }

  bool readString(std::string& out) {
    if (!consume('"')) return false;
    out.clear();
    while (pos_ < text_.size()) {
      const char c = text_[pos_++];
      if (c == '"') return true;
      if (c == '\\') {
        if (pos_ >= text_.size()) return false;
        const char esc = text_[pos_++];
        switch (esc) {
          case '"': out += '"'; break;
          case '\\': out += '\\'; break;
          case 'n': out += '\n'; break;
          case 't': out += '\t'; break;
          case 'u': {
            if (pos_ + 4 > text_.size()) return false;
            const std::string hex(text_.substr(pos_, 4));
            pos_ += 4;
            out += static_cast<char>(std::strtoul(hex.c_str(), nullptr, 16));
            break;
          }
          default: return false;
        }
      } else {
        out += c;
      }
    }
    return false;  // unterminated
  }

  bool readUint(uint64_t& out) {
    skipWs();
    const size_t start = pos_;
    while (pos_ < text_.size() &&
           std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
    if (pos_ == start) return false;
    out = std::strtoull(std::string(text_.substr(start, pos_ - start)).c_str(),
                        nullptr, 10);
    return true;
  }

 private:
  std::string_view text_;
  size_t pos_ = 0;
};

bool parseEntryObject(Scanner& s, std::string& key, TunedShape& shape) {
  if (!s.consume('{')) return false;
  bool have_key = false;
  while (!s.peek('}')) {
    std::string field;
    if (!s.readString(field) || !s.consume(':')) return false;
    if (field == "key") {
      if (!s.readString(key)) return false;
      have_key = true;
    } else if (field == "teamsMode" || field == "parallelMode") {
      std::string token;
      if (!s.readString(token)) return false;
      omprt::ExecMode mode{};
      if (!parseModeToken(token, mode)) return false;
      (field == "teamsMode" ? shape.teamsMode : shape.parallelMode) = mode;
    } else {
      uint64_t value = 0;
      if (!s.readUint(value)) return false;
      if (field == "numTeams") {
        shape.numTeams = static_cast<uint32_t>(value);
      } else if (field == "threadsPerTeam") {
        shape.threadsPerTeam = static_cast<uint32_t>(value);
      } else if (field == "simdlen") {
        shape.simdlen = static_cast<uint32_t>(value);
      } else if (field == "scheduleChunk") {
        shape.scheduleChunk = value;
      } else if (field == "cycles") {
        shape.cycles = value;
      } else if (field == "trials") {
        shape.trials = static_cast<uint32_t>(value);
      } else {
        return false;  // unknown field: refuse rather than misread
      }
    }
    if (!s.consume(',')) break;
  }
  return s.consume('}') && have_key;
}

}  // namespace

std::string archFingerprint(const gpusim::ArchSpec& arch) {
  std::ostringstream os;
  os << (arch.vendor == gpusim::Vendor::kNvidia ? "nv" : "amd") << ':'
     << arch.name << ":w" << arch.warpSize << ":sm" << arch.numSMs << ":sch"
     << arch.warpSchedulersPerSM << ":tb" << arch.maxThreadsPerBlock << ":ts"
     << arch.maxThreadsPerSM << ":shb" << arch.sharedMemPerBlock << ":shs"
     << arch.sharedMemPerSM << ":wb" << (arch.hasWarpLevelBarrier ? 1 : 0);
  return os.str();
}

std::string costFingerprint(const gpusim::CostModel& cost) {
  uint64_t hash = 0xcbf29ce484222325ull;  // FNV offset basis
  hash = fnv1a(hash, cost.aluOp);
  hash = fnv1a(hash, cost.fmaOp);
  hash = fnv1a(hash, cost.divergeBranch);
  hash = fnv1a(hash, cost.globalAccess);
  hash = fnv1a(hash, cost.sharedAccess);
  hash = fnv1a(hash, cost.localAccess);
  hash = fnv1a(hash, cost.atomicRmw);
  hash = fnv1a(hash, cost.warpSync);
  hash = fnv1a(hash, cost.blockSync);
  hash = fnv1a(hash, cost.statePoll);
  hash = fnv1a(hash, cost.payloadArgCopy);
  hash = fnv1a(hash, cost.dispatchCascade);
  hash = fnv1a(hash, cost.dispatchIndirect);
  hash = fnv1a(hash, cost.kernelLaunch);
  char buf[32];
  std::snprintf(buf, sizeof(buf), "v%u:%016llx", gpusim::kCostModelVersion,
                static_cast<unsigned long long>(hash));
  return buf;
}

uint32_t tripBucket(uint64_t tripCount) {
  if (tripCount == 0) return 0;
  uint32_t bucket = 1;  // bucket b1 covers trip count 1
  while (tripCount > 1) {
    tripCount >>= 1;
    ++bucket;
  }
  return bucket;
}

std::string TuneKey::composite() const {
  std::ostringstream os;
  os << kernel << '|' << arch << '|' << cost << "|b" << bucket;
  return os.str();
}

TuneKey makeTuneKey(std::string kernel, const gpusim::ArchSpec& arch,
                    const gpusim::CostModel& cost, uint64_t tripCount) {
  TuneKey key;
  key.kernel = std::move(kernel);
  key.arch = archFingerprint(arch);
  key.cost = costFingerprint(cost);
  key.bucket = tripBucket(tripCount);
  return key;
}

std::string TunedShape::toString() const {
  std::ostringstream os;
  os << "teams=" << modeToken(teamsMode) << " parallel="
     << modeToken(parallelMode) << " numTeams=" << numTeams
     << " threadsPerTeam=" << threadsPerTeam << " simdlen=" << simdlen
     << " chunk=" << scheduleChunk << " cycles=" << cycles
     << " trials=" << trials;
  return os.str();
}

TuneCache::TuneCache(std::string path) : path_(std::move(path)) {}

std::optional<TunedShape> TuneCache::lookup(const TuneKey& key) const {
  const std::lock_guard<std::mutex> lock(mutex_);
  const auto it = entries_.find(key.composite());
  if (it == entries_.end()) return std::nullopt;
  return it->second;
}

void TuneCache::insert(const TuneKey& key, const TunedShape& shape) {
  const std::lock_guard<std::mutex> lock(mutex_);
  entries_[key.composite()] = shape;
}

size_t TuneCache::evict(std::string_view kernelPrefix) {
  const std::lock_guard<std::mutex> lock(mutex_);
  size_t removed = 0;
  for (auto it = entries_.begin(); it != entries_.end();) {
    if (std::string_view(it->first).substr(0, kernelPrefix.size()) ==
        kernelPrefix) {
      it = entries_.erase(it);
      ++removed;
    } else {
      ++it;
    }
  }
  return removed;
}

size_t TuneCache::size() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return entries_.size();
}

std::vector<std::pair<std::string, TunedShape>> TuneCache::entries() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return {entries_.begin(), entries_.end()};
}

Status TuneCache::load() {
  if (path_.empty()) return Status::ok();
  std::ifstream in(path_);
  if (!in) {
    // A missing cache file is the normal cold-start case.
    const std::lock_guard<std::mutex> lock(mutex_);
    entries_.clear();
    return Status::ok();
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  const std::string text = buffer.str();

  std::map<std::string, TunedShape> parsed;
  Scanner s(text);
  std::string field;
  uint64_t version = 0;
  if (!s.consume('{') || !s.readString(field) || field != "simtune_cache" ||
      !s.consume(':') || !s.readUint(version) || version != 1 ||
      !s.consume(',') || !s.readString(field) || field != "entries" ||
      !s.consume(':') || !s.consume('[')) {
    return Status::invalidArgument("malformed tuning cache: " + path_);
  }
  while (!s.peek(']')) {
    std::string key;
    TunedShape shape;
    if (!parseEntryObject(s, key, shape)) {
      return Status::invalidArgument("malformed tuning cache entry in " +
                                     path_);
    }
    parsed[std::move(key)] = shape;
    if (!s.consume(',')) break;
  }
  if (!s.consume(']') || !s.consume('}') || !s.atEnd()) {
    return Status::invalidArgument("trailing garbage in tuning cache: " +
                                   path_);
  }

  const std::lock_guard<std::mutex> lock(mutex_);
  entries_ = std::move(parsed);
  return Status::ok();
}

Status TuneCache::save() const {
  if (path_.empty()) return Status::ok();
  return saveTo(path_);
}

Status TuneCache::saveTo(const std::string& path) const {
  std::vector<std::pair<std::string, TunedShape>> snapshot = entries();
  // std::map iteration is already key-sorted, which is the whole
  // determinism story: same entries in, byte-identical file out.
  std::string out;
  out += "{\n  \"simtune_cache\": 1,\n  \"entries\": [";
  bool first = true;
  for (const auto& [key, shape] : snapshot) {
    out += first ? "\n" : ",\n";
    first = false;
    out += "    {\"key\": \"";
    appendEscaped(out, key);
    out += "\", \"teamsMode\": \"";
    out += modeToken(shape.teamsMode);
    out += "\", \"parallelMode\": \"";
    out += modeToken(shape.parallelMode);
    char buf[160];
    std::snprintf(buf, sizeof(buf),
                  "\", \"numTeams\": %u, \"threadsPerTeam\": %u, "
                  "\"simdlen\": %u, \"scheduleChunk\": %llu, "
                  "\"cycles\": %llu, \"trials\": %u}",
                  shape.numTeams, shape.threadsPerTeam, shape.simdlen,
                  static_cast<unsigned long long>(shape.scheduleChunk),
                  static_cast<unsigned long long>(shape.cycles),
                  shape.trials);
    out += buf;
  }
  out += first ? "]\n}\n" : "\n  ]\n}\n";

  std::ofstream file(path, std::ios::trunc);
  if (!file) {
    return Status::internal("cannot open tuning cache for writing: " + path);
  }
  file << out;
  file.flush();
  if (!file) {
    return Status::internal("failed writing tuning cache: " + path);
  }
  return Status::ok();
}

std::string resolveCachePath(const std::string& requested) {
  if (!requested.empty()) return requested;
  const char* env = std::getenv("SIMTOMP_TUNE_CACHE");
  return env == nullptr ? std::string() : std::string(env);
}

}  // namespace simtomp::simtune
