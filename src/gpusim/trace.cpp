#include "gpusim/trace.h"

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <set>

namespace simtomp::gpusim {

namespace {

// Chrome trace process ids: the kernel-level track lives in pid 0, SM
// tracks in pid 1. Counter tracks attach to pid 0 so they render above
// the SM rows.
constexpr const char* kKernelPid = "0";
constexpr const char* kSmPid = "1";

/// JSON string escaping for event names: kernel labels are
/// user-supplied and would otherwise break the Chrome trace output on
/// a quote, backslash or control character.
void writeJsonEscaped(std::ostream& out, const std::string& text) {
  for (const char c : text) {
    switch (c) {
      case '"': out << "\\\""; break;
      case '\\': out << "\\\\"; break;
      case '\b': out << "\\b"; break;
      case '\f': out << "\\f"; break;
      case '\n': out << "\\n"; break;
      case '\r': out << "\\r"; break;
      case '\t': out << "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out << buf;
        } else {
          out << c;
        }
    }
  }
}

void writeMetadata(std::ostream& out, const char* pid, uint64_t tid,
                   const char* kind, const std::string& name, bool& first) {
  if (!first) out << ",\n";
  first = false;
  out << "  {\"name\": \"" << kind << "\", \"ph\": \"M\", \"pid\": " << pid
      << ", \"tid\": " << tid << ", \"args\": {\"name\": \"";
  writeJsonEscaped(out, name);
  out << "\"}}";
}

}  // namespace

void TraceRecorder::recordBlock(uint32_t block_id, uint32_t sm_id,
                                uint64_t start, uint64_t duration) {
  events_.push_back(
      {"block " + std::to_string(block_id), sm_id, start, duration});
}

void TraceRecorder::recordKernel(std::string name, uint64_t duration) {
  events_.push_back({std::move(name), kKernelTrack, 0, duration});
}

void TraceRecorder::recordSpan(uint32_t track, std::string name,
                               uint64_t start, uint64_t duration) {
  events_.push_back({std::move(name), track, start, duration});
}

void TraceRecorder::recordInstant(std::string name, uint64_t at) {
  events_.push_back(
      {std::move(name), kKernelTrack, at, 0, Phase::kInstant, 0});
}

void TraceRecorder::recordCounter(std::string name, uint64_t at,
                                  uint64_t value) {
  events_.push_back(
      {std::move(name), kKernelTrack, at, 0, Phase::kCounter, value});
}

void TraceRecorder::nameTrack(uint32_t track, std::string name) {
  trackNames_[track] = std::move(name);
}

void TraceRecorder::writeChromeJson(std::ostream& out) const {
  out << "[\n";
  bool first = true;

  // "M" metadata first: name both processes and every track in use.
  // std::set gives the stable (sorted) order the satellite asks for.
  std::set<uint32_t> sm_tracks;
  bool kernel_track_used = false;
  for (const Event& e : events_) {
    if (e.phase != Phase::kComplete) continue;
    if (e.track == kKernelTrack) {
      kernel_track_used = true;
    } else {
      sm_tracks.insert(e.track);
    }
  }
  writeMetadata(out, kKernelPid, 0, "process_name", "kernel", first);
  writeMetadata(out, kSmPid, 0, "process_name", "SMs", first);
  if (kernel_track_used) {
    writeMetadata(out, kKernelPid, 0, "thread_name", "kernel", first);
  }
  for (const uint32_t sm : sm_tracks) {
    const auto named = trackNames_.find(sm);
    writeMetadata(out, kSmPid, sm + 1, "thread_name",
                  named != trackNames_.end() ? named->second
                                             : "SM " + std::to_string(sm),
                  first);
  }

  for (const Event& e : events_) {
    if (!first) out << ",\n";
    first = false;
    const uint64_t tid = e.track == kKernelTrack ? 0 : e.track + 1;
    const char* pid = e.track == kKernelTrack ? kKernelPid : kSmPid;
    out << "  {\"name\": \"";
    writeJsonEscaped(out, e.name);
    switch (e.phase) {
      case Phase::kComplete:
        out << "\", \"ph\": \"X\", \"pid\": " << pid << ", \"tid\": " << tid
            << ", \"ts\": " << e.startCycle << ", \"dur\": "
            << e.durationCycles << "}";
        break;
      case Phase::kInstant:
        out << "\", \"ph\": \"i\", \"s\": \"p\", \"pid\": " << pid
            << ", \"tid\": " << tid << ", \"ts\": " << e.startCycle << "}";
        break;
      case Phase::kCounter:
        out << "\", \"ph\": \"C\", \"pid\": " << pid
            << ", \"ts\": " << e.startCycle << ", \"args\": {\"value\": "
            << e.value << "}}";
        break;
    }
  }
  out << "\n]\n";
}

Status TraceRecorder::writeChromeJson(const std::string& path) const {
  std::ofstream file(path);
  if (!file) {
    return Status::invalidArgument("cannot open trace file: " + path);
  }
  writeChromeJson(file);
  if (!file.good()) {
    return Status::internal("I/O error writing trace file: " + path);
  }
  return Status::ok();
}

}  // namespace simtomp::gpusim
