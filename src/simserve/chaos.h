// Chaos campaigns: seeded fault storms against a live LaunchService.
//
// A campaign drives one service instance per seed through a sequence
// of epochs (pump/drain waves), arming simfault plans drawn from
// forked RNG streams against live traffic, and asserts the service's
// invariants after every wave and at campaign end:
//
//   conservation   per tenant, submitted == accepted + (shed - evicted)
//                  + deadlineShed, and nothing stays kDispatched past a
//                  drain.
//   definiteness   every request reaches a terminal state (kShed /
//                  kDone / kFailed) with a definite Status — ok iff
//                  kDone — and the service ends empty.
//   no loss        every kDone request was dispatched exactly
//                  retries + 1 times and its output buffer matches the
//                  kernel oracle (mixKernelValue); shed requests were
//                  never dispatched.
//   no reorder     per tenant (and per tenant x shard), first
//                  dispatches happen in admission order.
//   SLO accounting deadlineHit + deadlineMiss == completions that
//                  carried a finite deadline; latency histogram count
//                  == completed.
//
// Determinism: every wave is a pure function of the seed (three forked
// streams — tenants, arrivals, faults — none of which ever consumes a
// draw based on a service outcome), and every published number comes
// from the service's shard-invariant tenant stats. The campaign report
// is therefore byte-identical across reruns, SIMTOMP_HOST_WORKERS and
// shard counts, and CI byte-compares it (ci.sh stage 11).
//
// Fault placement is structured so the report stays shard-invariant:
// device-lost faults (which strand *every* request sharing the faulted
// device) ride only in single-request waves, so they strand exactly
// the request that armed them; trap faults (which fail only their own
// launch) ride inside congested waves. Every armed spec carries a
// unique discriminator (block= for device-lost, count= for traps) so
// the per-device Injector's canonical-spec dedup cannot swallow a
// second arm of an identical cell.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "support/status.h"

namespace simtomp::simserve {

struct ChaosConfig {
  uint64_t seedLo = 0;  ///< first seed (inclusive)
  uint64_t seedHi = 8;  ///< last seed (inclusive)
  uint32_t devices = 2;
  uint32_t shards = 0;   ///< ServiceConfig::shardCount (0 = per device)
  uint32_t workers = 1;  ///< hostWorkers stamped on every request
  uint32_t epochs = 6;   ///< waves per seed
  uint32_t requests = 12;  ///< base arrivals per congested wave
  /// Run every seed's service with request tracing enabled. Purely
  /// observational: the campaign report is byte-identical either way.
  bool trace = false;
  /// With trace: write the flight-recorder dump of any seed that
  /// violates an invariant to this path (trigger=invariant_violation).
  std::string flightPath;
  /// Plant one synthetic violation on the first seed — a drill for the
  /// violation -> flight-dump path (tests/CI smoke), since a healthy
  /// service never produces a real one.
  bool plantViolation = false;
};

/// One failed invariant. The campaign keeps going (one seed's breakage
/// must not hide another's), so a run can report many.
struct ChaosViolation {
  uint64_t seed = 0;
  std::string invariant;
  std::string detail;
};

struct ChaosReport {
  uint64_t seeds = 0;
  uint64_t submitted = 0;
  uint64_t completed = 0;
  uint64_t failed = 0;
  uint64_t faultsArmed = 0;
  std::vector<ChaosViolation> violations;
  /// The byte-compare surface: per-seed totals + per-tenant stats +
  /// violation lines + campaign footer. Deliberately excludes the
  /// device/shard/worker parameters so CI can diff across them.
  std::string text;
};

/// Run the campaign. Non-ok only for setup errors (bad config);
/// invariant failures are reported, not returned.
[[nodiscard]] Result<ChaosReport> runChaosCampaign(const ChaosConfig& config);

}  // namespace simtomp::simserve
