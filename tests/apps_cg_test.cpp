// Tests for the CG proxy application and the single/critical constructs
// it builds on.
#include <gtest/gtest.h>

#include <atomic>

#include "apps/cg_solver.h"
#include "dsl/dsl.h"

namespace simtomp::apps {
namespace {

using gpusim::ArchSpec;
using gpusim::Device;

TEST(CgWorkloadTest, PoissonMatrixShape) {
  const CgWorkload w = generateCgPoisson(4, 1);
  EXPECT_EQ(w.A.numRows, 16u);
  // Interior rows have 5 entries, corners 3, edges 4.
  EXPECT_EQ(w.A.rowLength(0), 3u);    // corner
  EXPECT_EQ(w.A.rowLength(1), 4u);    // edge
  EXPECT_EQ(w.A.rowLength(5), 5u);    // interior
  // Symmetric positive definite: diagonal dominance.
  for (uint32_t row = 0; row < w.A.numRows; ++row) {
    double diag = 0.0;
    double off = 0.0;
    for (uint32_t k = w.A.rowPtr[row]; k < w.A.rowPtr[row + 1]; ++k) {
      if (w.A.colIdx[k] == row) {
        diag = w.A.values[k];
      } else {
        off += std::abs(w.A.values[k]);
      }
    }
    EXPECT_GE(diag, off);
  }
}

TEST(CgWorkloadTest, MatrixIsSymmetric) {
  const CgWorkload w = generateCgPoisson(5, 1);
  auto entry = [&](uint32_t i, uint32_t j) -> double {
    for (uint32_t k = w.A.rowPtr[i]; k < w.A.rowPtr[i + 1]; ++k) {
      if (w.A.colIdx[k] == j) return w.A.values[k];
    }
    return 0.0;
  };
  for (uint32_t i = 0; i < w.A.numRows; ++i) {
    for (uint32_t k = w.A.rowPtr[i]; k < w.A.rowPtr[i + 1]; ++k) {
      EXPECT_EQ(entry(i, w.A.colIdx[k]), entry(w.A.colIdx[k], i));
    }
  }
}

TEST(CgSolverTest, ConvergesOnSmallPoisson) {
  const CgWorkload w = generateCgPoisson(8, 3);
  Device dev(ArchSpec::testTiny());
  CgOptions options;
  options.numTeams = 2;
  options.threadsPerTeam = 64;
  options.simdlen = 4;
  options.maxIterations = 200;
  auto result = runCg(dev, w, options);
  ASSERT_TRUE(result.isOk()) << result.status().toString();
  EXPECT_TRUE(result.value().converged);
  EXPECT_TRUE(result.value().verified)
      << "residual " << result.value().relativeResidual;
  EXPECT_GT(result.value().iterations, 0u);
  EXPECT_GT(result.value().kernelLaunches, result.value().iterations * 5);
  EXPECT_EQ(dev.memory().bytesInUse(), 0u);  // everything released
}

class CgGroupSweep : public ::testing::TestWithParam<uint32_t> {};

TEST_P(CgGroupSweep, ConvergesAtEveryGroupSize) {
  const CgWorkload w = generateCgPoisson(6, 5);
  Device dev(ArchSpec::testTiny());
  CgOptions options;
  options.numTeams = 2;
  options.threadsPerTeam = 64;
  options.simdlen = GetParam();
  auto result = runCg(dev, w, options);
  ASSERT_TRUE(result.isOk()) << result.status().toString();
  EXPECT_TRUE(result.value().verified);
}

INSTANTIATE_TEST_SUITE_P(GroupSizes, CgGroupSweep,
                         ::testing::Values(1u, 2u, 4u, 8u));

TEST(CgSolverTest, CycleBreakdownCoversTotal) {
  const CgWorkload w = generateCgPoisson(6, 7);
  Device dev(ArchSpec::testTiny());
  CgOptions options;
  options.numTeams = 2;
  options.threadsPerTeam = 64;
  auto result = runCg(dev, w, options);
  ASSERT_TRUE(result.isOk());
  const CgResult& r = result.value();
  EXPECT_EQ(r.totalCycles, r.spmvCycles + r.dotCycles + r.axpyCycles);
  EXPECT_GT(r.spmvCycles, 0u);
  EXPECT_GT(r.dotCycles, 0u);
  EXPECT_GT(r.axpyCycles, 0u);
}

// ---------------- single / critical / master ----------------

TEST(SingleTest, RunsExactlyOncePerTeam) {
  Device dev(ArchSpec::testTiny());
  dsl::LaunchSpec spec;
  spec.numTeams = 3;
  spec.threadsPerTeam = 64;
  std::atomic<int> runs{0};
  auto stats = dsl::target(dev, spec, [&](dsl::OmpContext& ctx) {
    dsl::parallel(
        ctx,
        [&](dsl::OmpContext& inner) {
          dsl::single(inner, [&](dsl::OmpContext&) { runs++; });
        },
        omprt::ParallelConfig{omprt::ExecMode::kSPMD, 8});
  });
  ASSERT_TRUE(stats.isOk());
  EXPECT_EQ(runs.load(), 3);  // once per team
}

TEST(SingleTest, ResultVisibleAfterImplicitBarrier) {
  Device dev(ArchSpec::testTiny());
  dsl::LaunchSpec spec;
  spec.numTeams = 1;
  spec.threadsPerTeam = 64;
  int value = 0;
  auto stats = dsl::target(dev, spec, [&](dsl::OmpContext& ctx) {
    dsl::parallel(
        ctx,
        [&](dsl::OmpContext& inner) {
          dsl::single(inner, [&](dsl::OmpContext&) { value = 42; });
          // After the implicit barrier every thread must see the value.
          EXPECT_EQ(value, 42);
        },
        omprt::ParallelConfig{omprt::ExecMode::kSPMD, 8});
  });
  ASSERT_TRUE(stats.isOk());
}

TEST(CriticalTest, OneExecutionPerOpenMPThread) {
  Device dev(ArchSpec::testTiny());
  dsl::LaunchSpec spec;
  spec.numTeams = 1;
  spec.threadsPerTeam = 64;
  for (omprt::ExecMode mode :
       {omprt::ExecMode::kSPMD, omprt::ExecMode::kGeneric}) {
    int counter = 0;  // deliberately non-atomic: critical must protect it
    auto stats = dsl::target(dev, spec, [&](dsl::OmpContext& ctx) {
      dsl::parallel(
          ctx,
          [&](dsl::OmpContext& inner) {
            dsl::critical(inner, [&](dsl::OmpContext&) { counter += 1; });
          },
          omprt::ParallelConfig{mode, 8});
    });
    ASSERT_TRUE(stats.isOk());
    EXPECT_EQ(counter, 8);  // 8 groups = 8 OpenMP threads
  }
}

TEST(CriticalTest, SerializesModeledTime) {
  // N critical sections of W work must cost at least N*W on the
  // timeline even though the groups are "parallel".
  Device dev(ArchSpec::testTiny());
  dsl::LaunchSpec spec;
  spec.numTeams = 1;
  spec.threadsPerTeam = 64;
  auto stats = dsl::target(dev, spec, [&](dsl::OmpContext& ctx) {
    dsl::parallel(
        ctx,
        [&](dsl::OmpContext& inner) {
          dsl::critical(inner,
                        [](dsl::OmpContext& c) { c.gpu().work(1000); });
        },
        omprt::ParallelConfig{omprt::ExecMode::kSPMD, 8});
  });
  ASSERT_TRUE(stats.isOk());
  // 8 groups serialized: the slowest thread's timeline spans all 8.
  EXPECT_GE(stats.value().maxThreadCycles, 8u * 1000u);
}

TEST(MasterTest, ExactlyOneMasterLane) {
  Device dev(ArchSpec::testTiny());
  dsl::LaunchSpec spec;
  spec.numTeams = 2;
  spec.threadsPerTeam = 64;
  std::atomic<int> masters{0};
  auto stats = dsl::target(dev, spec, [&](dsl::OmpContext& ctx) {
    dsl::parallel(
        ctx,
        [&](dsl::OmpContext& inner) {
          if (dsl::isMaster(inner)) masters++;
        },
        omprt::ParallelConfig{omprt::ExecMode::kSPMD, 16});
  });
  ASSERT_TRUE(stats.isOk());
  EXPECT_EQ(masters.load(), 2);  // one per team
}

}  // namespace
}  // namespace simtomp::apps
