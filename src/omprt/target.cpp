#include "omprt/target.h"

#include <algorithm>
#include <memory>
#include <vector>

#include "omprt/runtime.h"
#include "support/log.h"

namespace simtomp::omprt {

bool hasAutoLaunchFields(const TargetConfig& config) {
  return config.numTeams == 0 || config.threadsPerTeam == 0 ||
         config.simdlen == 0 || config.teamsModeAuto ||
         config.parallelModeAuto;
}

void resolveAutoConfig(const gpusim::ArchSpec& arch, TargetConfig& config) {
  // Mode placeholders become the modes: the value riding the auto flag
  // is itself the heuristic fallback (e.g. the front-end's
  // tightly-nested => SPMD inference).
  config.teamsModeAuto = false;
  config.parallelModeAuto = false;
  if (config.numTeams == 0) config.numTeams = arch.numSMs;
  if (config.threadsPerTeam == 0) {
    const uint32_t reserve =
        config.teamsMode == ExecMode::kGeneric ? arch.warpSize : 0;
    uint32_t threads = std::min(128u, arch.maxThreadsPerBlock - reserve);
    threads -= threads % arch.warpSize;  // launch layer needs a multiple
    config.threadsPerTeam = std::max(threads, arch.warpSize);
  }
  if (config.simdlen == 0) config.simdlen = 1;
}

Status TargetConfig::validate(const gpusim::ArchSpec& arch) const {
  if (numTeams == 0) {
    return Status::invalidArgument("numTeams must be positive");
  }
  if (threadsPerTeam == 0 || threadsPerTeam % arch.warpSize != 0) {
    return Status::invalidArgument(
        "threadsPerTeam must be a positive multiple of the warp size");
  }
  const uint32_t block_threads =
      threadsPerTeam +
      (teamsMode == ExecMode::kGeneric ? arch.warpSize : 0);
  if (block_threads > arch.maxThreadsPerBlock) {
    return Status::invalidArgument(
        "threadsPerTeam (plus the generic-mode main warp) exceeds "
        "maxThreadsPerBlock");
  }
  return Status::ok();
}

Result<gpusim::KernelStats> launchTarget(gpusim::Device& device,
                                         const TargetConfig& requested,
                                         const TargetRegionFn& region) {
  // Fill any remaining auto fields heuristically. Tuner-aware
  // resolution (hostrt::DeviceManager) happens before this call; a
  // direct launchTarget with auto fields still gets sane defaults.
  TargetConfig config = requested;
  resolveAutoConfig(device.arch(), config);

  const Status valid = config.validate(device.arch());
  if (!valid.isOk()) return valid;

  gpusim::LaunchConfig launch;
  launch.numBlocks = config.numTeams;
  launch.threadsPerBlock =
      config.threadsPerTeam +
      (config.teamsMode == ExecMode::kGeneric ? device.arch().warpSize : 0);
  launch.hostWorkers = config.hostWorkers;
  launch.check = config.check;
  launch.fault = config.fault;
  // when=simd fault plans key off the *effective* launch shape, so the
  // generic-mode fallback (simdlen 1) genuinely escapes them.
  launch.fault.simdActive = config.simdlen > 1;
  launch.watchdogSteps = config.watchdogSteps;
  launch.profile = config.profile;

  // Launch-wide defaults for region-level auto fields; never auto
  // themselves (resolveAutoConfig ran above).
  const ParallelConfig default_parallel{config.parallelMode, config.simdlen,
                                        /*modeAuto=*/false};

  const bool fast_path = resolveFastPath(config.fastPath);

  // Each block's TeamState lives in that block's arena, dying with the
  // engine: no per-launch state vector, and under host-parallel
  // execution every worker touches only its own block's memory.
  const gpusim::BlockSetupHook setup = [&](gpusim::BlockEngine& engine) {
    auto sharing = std::make_unique<SharingSpace>(
        engine.sharedMemory(), engine.globalMemory(),
        config.sharingSpaceBytes, config.threadsPerTeam);
    TeamState* state = engine.arena().createOwned<TeamState>(
        config.teamsMode, config.threadsPerTeam, device.arch().warpSize,
        device.arch().hasWarpLevelBarrier, std::move(sharing),
        default_parallel, config.scheduleChunk,
        fast_path && !engine.hasArmedFault());
    engine.setUserState(state);
  };

  const gpusim::Kernel kernel = [&region](gpusim::ThreadCtx& t) {
    auto* ts = static_cast<TeamState*>(t.block().userState());
    SIMTOMP_CHECK(ts != nullptr, "kernel launched without a TeamState");
    OmpContext ctx(t, *ts);
    if (rt::targetInit(ctx) == ThreadKind::kTerminated) return;
    region(ctx);
    rt::targetDeinit(ctx);
  };

  return device.launch(launch, kernel, setup);
}

}  // namespace simtomp::omprt
