// Ablation (paper section 5.4.1): AMD wavefront-64 architecture with
// no warp-level barriers. Generic-SIMD is unsupported there — requested
// groups degrade to size 1 and simd loops run sequentially — while
// SPMD-SIMD keeps working (implicit wavefront lockstep).
#include <benchmark/benchmark.h>

#include "apps/ideal_kernel.h"
#include "bench_common.h"
#include "gpusim/device.h"

namespace {

using namespace simtomp;
using bench::checkOk;
using bench::checkVerified;
using bench::Row;

const apps::IdealWorkload& workload() {
  static const apps::IdealWorkload w = apps::generateIdeal(1728, 32, 5);
  return w;
}

uint64_t runOn(gpusim::ArchSpec arch, uint32_t simdlen) {
  gpusim::Device dev(std::move(arch));
  apps::IdealOptions options;
  options.numTeams = 54;
  options.threadsPerTeam = 128;
  options.simdlen = simdlen;
  options.flopsPerElement = 4;
  const auto result = checkOk(runIdeal(dev, workload(), options), "ideal");
  checkVerified(result.verified, "ideal");
  return result.stats.cycles;
}

void BM_ArchSimd(benchmark::State& state) {
  const bool amd = state.range(0) != 0;
  const auto simdlen = static_cast<uint32_t>(state.range(1));
  uint64_t cycles = 0;
  for (auto _ : state) {
    cycles = runOn(amd ? gpusim::ArchSpec::amdMI100()
                       : gpusim::ArchSpec::nvidiaA100(),
                   simdlen);
  }
  state.counters["sim_cycles"] = static_cast<double>(cycles);
}
BENCHMARK(BM_ArchSimd)
    ->Args({0, 1})
    ->Args({0, 32})
    ->Args({1, 1})
    ->Args({1, 32})
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();

  // The ideal kernel runs its parallel region in generic mode when
  // simdlen > 1, which is exactly the path AMD cannot take.
  const uint64_t nv_base = runOn(gpusim::ArchSpec::nvidiaA100(), 1);
  const uint64_t nv_simd = runOn(gpusim::ArchSpec::nvidiaA100(), 32);
  bench::printTable(
      "Ablation: NVIDIA generic-SIMD (warp barriers available)",
      "nvidia no-simd", nv_base,
      {{"nvidia simd group 32", nv_simd,
        static_cast<double>(nv_base) / static_cast<double>(nv_simd)}});

  const uint64_t amd_base = runOn(gpusim::ArchSpec::amdMI100(), 1);
  const uint64_t amd_simd = runOn(gpusim::ArchSpec::amdMI100(), 32);
  bench::printTable(
      "Ablation: AMD generic-SIMD falls back to sequential simd",
      "amd no-simd", amd_base,
      {{"amd simd group 32 (degraded)", amd_simd,
        static_cast<double>(amd_base) / static_cast<double>(amd_simd)}});
  (void)bench::writeBenchJson("abl_amd_fallback");
  return 0;
}
