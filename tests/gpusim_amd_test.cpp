// Wavefront-64 (AMD-style) simulator behaviour: barriers, shuffles and
// lane masks at 64-wide, plus the uncharged-lockstep barrier mode.
#include <gtest/gtest.h>

#include <vector>

#include "gpusim/block.h"
#include "gpusim/device.h"

namespace simtomp::gpusim {
namespace {

class AmdBlockTest : public ::testing::Test {
 protected:
  AmdBlockTest() : arch_(ArchSpec::amdMI100()), mem_(1 << 20) {}

  std::unique_ptr<BlockEngine> makeBlock(uint32_t threads) {
    return std::make_unique<BlockEngine>(arch_, cost_, mem_, 0, 1, threads);
  }

  ArchSpec arch_;
  CostModel cost_;
  DeviceMemory mem_;
};

TEST_F(AmdBlockTest, WavefrontIdentity) {
  auto block = makeBlock(128);
  ASSERT_TRUE(block
                  ->run([&](ThreadCtx& t) {
                    EXPECT_EQ(t.warpSize(), 64u);
                    EXPECT_EQ(t.warpId(), t.threadId() / 64);
                    EXPECT_EQ(t.laneId(), t.threadId() % 64);
                  })
                  .isOk());
}

TEST_F(AmdBlockTest, FullWavefrontBarrier) {
  auto block = makeBlock(64);
  ASSERT_TRUE(block
                  ->run([&](ThreadCtx& t) {
                    t.work(t.laneId());
                    t.syncWarp(fullMask(64));
                    EXPECT_GE(t.time(), 63u);
                  })
                  .isOk());
}

TEST_F(AmdBlockTest, HighLaneGroupMasks) {
  // Groups living entirely in lanes 32..63 (impossible on 32-wide).
  auto block = makeBlock(64);
  ASSERT_TRUE(block
                  ->run([&](ThreadCtx& t) {
                    const uint32_t group = t.laneId() / 16;
                    const LaneMask mask = rangeMask(group * 16, 16);
                    for (int round = 0; round < 3; ++round) {
                      t.work(group + 1);
                      t.syncWarp(mask);
                    }
                  })
                  .isOk());
}

TEST_F(AmdBlockTest, ShuffleAcrossLane32Boundary) {
  auto block = makeBlock(64);
  ASSERT_TRUE(block
                  ->run([&](ThreadCtx& t) {
                    const uint64_t got =
                        t.shfl<uint64_t>(t.laneId(), 63, fullMask(64));
                    EXPECT_EQ(got, 63u);
                    const uint64_t xored =
                        t.shflXor<uint64_t>(t.laneId(), 32, fullMask(64));
                    EXPECT_EQ(xored, t.laneId() ^ 32u);
                  })
                  .isOk());
}

TEST_F(AmdBlockTest, BallotAt64Wide) {
  auto block = makeBlock(64);
  ASSERT_TRUE(block
                  ->run([&](ThreadCtx& t) {
                    const LaneMask votes =
                        t.ballot(t.laneId() >= 32, fullMask(64));
                    EXPECT_EQ(votes, 0xFFFFFFFF00000000u);
                  })
                  .isOk());
}

TEST_F(AmdBlockTest, UnchargedBarrierStillAligns) {
  auto block = makeBlock(64);
  std::vector<uint64_t> busy(64);
  std::vector<uint64_t> times(64);
  ASSERT_TRUE(block
                  ->run([&](ThreadCtx& t) {
                    t.work(t.laneId() == 0 ? 500 : 1);
                    block->warpBarrier(t, fullMask(64), /*charged=*/false);
                    busy[t.laneId()] = t.busy();
                    times[t.laneId()] = t.time();
                  })
                  .isOk());
  // Lane 5 paid only its own work, but its timeline advanced to the
  // slow lane's — implicit lockstep costs time, not instructions.
  EXPECT_EQ(busy[5], cost_.aluOp);
  EXPECT_EQ(times[5], times[0]);
}

TEST_F(AmdBlockTest, PartialWavefrontBlock) {
  // 96 threads: wavefront 1 has only 32 member lanes.
  auto block = makeBlock(96);
  ASSERT_TRUE(block
                  ->run([&](ThreadCtx& t) {
                    t.syncWarp(fullMask(64));
                    t.syncBlock();
                  })
                  .isOk());
}

TEST(AmdDeviceTest, LaunchRequiresWavefrontMultiples) {
  Device dev(ArchSpec::amdMI100());
  // 128 threads = 2 wavefronts: fine.
  EXPECT_TRUE(dev.launch({1, 128}, [](ThreadCtx&) {}).isOk());
  // Odd thread counts still run (partial last wavefront).
  EXPECT_TRUE(dev.launch({1, 96}, [](ThreadCtx&) {}).isOk());
}

}  // namespace
}  // namespace simtomp::gpusim
