// Unit tests for src/support: Status/Result, Rng, LaneMask, logging.
#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iterator>
#include <set>
#include <string>
#include <vector>

#include "support/lane_mask.h"
#include "support/log.h"
#include "support/rng.h"
#include "support/status.h"

namespace simtomp {
namespace {

// ---------------- Status / Result ----------------

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.isOk());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.toString(), "OK");
}

TEST(StatusTest, FactoryFunctionsCarryCodeAndMessage) {
  EXPECT_EQ(Status::invalidArgument("x").code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(Status::failedPrecondition("x").code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(Status::outOfRange("x").code(), StatusCode::kOutOfRange);
  EXPECT_EQ(Status::resourceExhausted("x").code(),
            StatusCode::kResourceExhausted);
  EXPECT_EQ(Status::unimplemented("x").code(), StatusCode::kUnimplemented);
  EXPECT_EQ(Status::internal("boom").message(), "boom");
}

TEST(StatusTest, ToStringIncludesCodeName) {
  const Status s = Status::invalidArgument("bad thing");
  EXPECT_NE(s.toString().find("INVALID_ARGUMENT"), std::string::npos);
  EXPECT_NE(s.toString().find("bad thing"), std::string::npos);
}

TEST(StatusTest, CodeNamesAreDistinct) {
  std::set<std::string_view> names;
  for (int c = 0; c <= static_cast<int>(StatusCode::kInternal); ++c) {
    names.insert(statusCodeName(static_cast<StatusCode>(c)));
  }
  EXPECT_EQ(names.size(), 7u);
}

TEST(ResultTest, HoldsValue) {
  Result<int> r(42);
  ASSERT_TRUE(r.isOk());
  EXPECT_EQ(r.value(), 42);
  EXPECT_TRUE(r.status().isOk());
}

TEST(ResultTest, HoldsError) {
  Result<int> r(Status::outOfRange("too big"));
  ASSERT_FALSE(r.isOk());
  EXPECT_EQ(r.status().code(), StatusCode::kOutOfRange);
}

TEST(ResultTest, MoveOutValue) {
  Result<std::vector<int>> r(std::vector<int>{1, 2, 3});
  std::vector<int> v = std::move(r).value();
  EXPECT_EQ(v.size(), 3u);
}

// ---------------- Rng ----------------

TEST(RngTest, DeterministicAcrossInstances) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.next() == b.next()) ++same;
  }
  EXPECT_LT(same, 2);
}

TEST(RngTest, ReseedRestartsSequence) {
  Rng a(9);
  const uint64_t first = a.next();
  a.next();
  a.reseed(9);
  EXPECT_EQ(a.next(), first);
}

TEST(RngTest, NextBelowRespectsBound) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.nextBelow(17), 17u);
  }
  EXPECT_EQ(rng.nextBelow(0), 0u);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(rng.nextBelow(1), 0u);
}

TEST(RngTest, NextInRangeInclusive) {
  Rng rng(8);
  bool saw_lo = false;
  bool saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    const int64_t v = rng.nextInRange(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    saw_lo |= v == -3;
    saw_hi |= v == 3;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
  EXPECT_EQ(rng.nextInRange(5, 5), 5);
  EXPECT_EQ(rng.nextInRange(5, 4), 5);  // degenerate range clamps to lo
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng rng(5);
  for (int i = 0; i < 1000; ++i) {
    const double v = rng.nextDouble();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
  }
}

TEST(RngTest, SkewedDrawStaysInBounds) {
  Rng rng(6);
  uint64_t sum = 0;
  constexpr int kDraws = 5000;
  for (int i = 0; i < kDraws; ++i) {
    const uint32_t v = rng.nextSkewed(8, 64);
    EXPECT_GE(v, 1u);
    EXPECT_LE(v, 64u);
    sum += v;
  }
  const double mean = static_cast<double>(sum) / kDraws;
  // Clamping shifts the mean a bit; it must stay in a sane band.
  EXPECT_GT(mean, 4.0);
  EXPECT_LT(mean, 14.0);
}

TEST(RngTest, ShufflePreservesElements) {
  Rng rng(10);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7, 8};
  auto sorted = v;
  rng.shuffle(v);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, sorted);
}

// ---------------- LaneMask ----------------

TEST(LaneMaskTest, FullMaskWidths) {
  EXPECT_EQ(fullMask(0), 0u);
  EXPECT_EQ(fullMask(1), 0x1u);
  EXPECT_EQ(fullMask(8), 0xFFu);
  EXPECT_EQ(fullMask(32), 0xFFFFFFFFu);
  EXPECT_EQ(fullMask(64), ~LaneMask{0});
}

TEST(LaneMaskTest, RangeMask) {
  EXPECT_EQ(rangeMask(0, 4), 0xFu);
  EXPECT_EQ(rangeMask(4, 4), 0xF0u);
  EXPECT_EQ(rangeMask(28, 4), 0xF0000000u);
  EXPECT_EQ(rangeMask(60, 4), 0xF000000000000000u);
}

TEST(LaneMaskTest, LaneInAndPopcount) {
  const LaneMask m = rangeMask(8, 8);
  EXPECT_TRUE(laneIn(m, 8));
  EXPECT_TRUE(laneIn(m, 15));
  EXPECT_FALSE(laneIn(m, 7));
  EXPECT_FALSE(laneIn(m, 16));
  EXPECT_EQ(popcount(m), 8);
}

TEST(LaneMaskTest, LowestLane) {
  EXPECT_EQ(lowestLane(0), -1);
  EXPECT_EQ(lowestLane(0x1), 0);
  EXPECT_EQ(lowestLane(rangeMask(12, 3)), 12);
}

TEST(LaneMaskTest, MaskToString) {
  EXPECT_EQ(maskToString(0b0101, 4), "0b0101");
  EXPECT_EQ(maskToString(rangeMask(2, 2), 6), "0b001100");
}

/// Property sweep: group masks tile a warp exactly.
class GroupMaskProperty : public ::testing::TestWithParam<unsigned> {};

TEST_P(GroupMaskProperty, GroupsTileWarpDisjointly) {
  const unsigned group = GetParam();
  const unsigned warp = 32;
  LaneMask seen = 0;
  for (unsigned base = 0; base < warp; base += group) {
    const LaneMask m = rangeMask(base, group);
    EXPECT_EQ(seen & m, 0u) << "overlap at base " << base;
    seen |= m;
    EXPECT_EQ(popcount(m), static_cast<int>(group));
  }
  EXPECT_EQ(seen, fullMask(warp));
}

INSTANTIATE_TEST_SUITE_P(AllGroupSizes, GroupMaskProperty,
                         ::testing::Values(1u, 2u, 4u, 8u, 16u, 32u));

// ---------------- Logging ----------------

TEST(LogTest, ParseLevels) {
  EXPECT_EQ(parseLogLevel("trace"), LogLevel::kTrace);
  EXPECT_EQ(parseLogLevel("DEBUG"), LogLevel::kDebug);
  EXPECT_EQ(parseLogLevel("Info"), LogLevel::kInfo);
  EXPECT_EQ(parseLogLevel("warn"), LogLevel::kWarn);
  EXPECT_EQ(parseLogLevel("error"), LogLevel::kError);
  EXPECT_EQ(parseLogLevel("off"), LogLevel::kOff);
  EXPECT_EQ(parseLogLevel("nonsense"), LogLevel::kWarn);
}

TEST(LogTest, SetAndGetLevel) {
  const LogLevel before = logLevel();
  setLogLevel(LogLevel::kError);
  EXPECT_EQ(logLevel(), LogLevel::kError);
  setLogLevel(before);
}

TEST(LogTest, ParseLevelGarbageFallsBackToWarn) {
  EXPECT_EQ(parseLogLevel(""), LogLevel::kWarn);
  EXPECT_EQ(parseLogLevel(" "), LogLevel::kWarn);
  EXPECT_EQ(parseLogLevel("debugx"), LogLevel::kWarn);
  EXPECT_EQ(parseLogLevel("1"), LogLevel::kWarn);
  EXPECT_EQ(parseLogLevel("warn "), LogLevel::kWarn);
  EXPECT_EQ(parseLogLevel("\ttrace"), LogLevel::kWarn);
}

TEST(LogTest, ParseLevelIsCaseInsensitive) {
  EXPECT_EQ(parseLogLevel("TRACE"), LogLevel::kTrace);
  EXPECT_EQ(parseLogLevel("tRaCe"), LogLevel::kTrace);
  EXPECT_EQ(parseLogLevel("ErRoR"), LogLevel::kError);
  EXPECT_EQ(parseLogLevel("OFF"), LogLevel::kOff);
}

TEST(LogTest, EnvVarSetsLevel) {
  const LogLevel before = logLevel();
  ::setenv("SIMTOMP_LOG", "debug", 1);
  reinitLogFromEnvForTest();
  EXPECT_EQ(logLevel(), LogLevel::kDebug);
  ::setenv("SIMTOMP_LOG", "not-a-level", 1);
  reinitLogFromEnvForTest();
  EXPECT_EQ(logLevel(), LogLevel::kWarn);
  ::unsetenv("SIMTOMP_LOG");
  setLogLevel(before);
}

TEST(LogTest, SetLogFileRedirectsAndRestores) {
  const std::string path = ::testing::TempDir() + "simtomp_log_test.txt";
  std::remove(path.c_str());
  ASSERT_TRUE(setLogFile(path));
  const LogLevel before = logLevel();
  setLogLevel(LogLevel::kError);
  SIMTOMP_ERROR("log-file marker %d", 42);
  setLogLevel(before);
  ASSERT_TRUE(setLogFile(""));  // back to stderr

  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::string contents((std::istreambuf_iterator<char>(in)),
                       std::istreambuf_iterator<char>());
  EXPECT_NE(contents.find("log-file marker 42"), std::string::npos);
  std::remove(path.c_str());
}

TEST(LogTest, UnopenableLogFileKeepsStderr) {
  EXPECT_FALSE(setLogFile("/nonexistent-dir/nope/log.txt"));
}

TEST(LogTest, EnvVarSetsLogFile) {
  const LogLevel before = logLevel();
  const std::string path = ::testing::TempDir() + "simtomp_log_env_test.txt";
  std::remove(path.c_str());
  ::setenv("SIMTOMP_LOG_FILE", path.c_str(), 1);
  ::setenv("SIMTOMP_LOG", "error", 1);
  reinitLogFromEnvForTest();
  SIMTOMP_ERROR("env log-file marker");
  ASSERT_TRUE(setLogFile(""));
  ::unsetenv("SIMTOMP_LOG_FILE");
  ::unsetenv("SIMTOMP_LOG");
  setLogLevel(before);

  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::string contents((std::istreambuf_iterator<char>(in)),
                       std::istreambuf_iterator<char>());
  EXPECT_NE(contents.find("env log-file marker"), std::string::npos);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace simtomp
