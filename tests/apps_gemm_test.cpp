// Tests for the batched small-GEMM application and the lane-utilization
// accounting it exercises.
#include <gtest/gtest.h>

#include "apps/batched_gemm.h"
#include "dsl/dsl.h"

namespace simtomp::apps {
namespace {

using gpusim::ArchSpec;
using gpusim::Counter;
using gpusim::Device;

TEST(BatchedGemmTest, ReferenceIdentity) {
  // A * I = A.
  BatchedGemmWorkload w = generateBatchedGemm(3, 4, 5);
  for (uint64_t item = 0; item < w.batch; ++item) {
    for (uint32_t i = 0; i < 4; ++i) {
      for (uint32_t j = 0; j < 4; ++j) {
        w.b[item * 16 + i * 4 + j] = i == j ? 1.0 : 0.0;
      }
    }
  }
  const std::vector<double> c = batchedGemmReference(w);
  for (size_t i = 0; i < c.size(); ++i) EXPECT_DOUBLE_EQ(c[i], w.a[i]);
}

class GemmGroupSweep : public ::testing::TestWithParam<uint32_t> {};

TEST_P(GemmGroupSweep, VerifiesAcrossGroupSizes) {
  const BatchedGemmWorkload w = generateBatchedGemm(128, 4, 7);
  Device dev(ArchSpec::testTiny());
  BatchedGemmOptions options;
  options.numTeams = 4;
  options.threadsPerTeam = 64;
  options.simdlen = GetParam();
  auto result = runBatchedGemm(dev, w, options);
  ASSERT_TRUE(result.isOk()) << result.status().toString();
  EXPECT_TRUE(result.value().verified) << result.value().maxError;
}

INSTANTIATE_TEST_SUITE_P(GroupSizes, GemmGroupSweep,
                         ::testing::Values(1u, 2u, 4u, 8u, 16u, 32u));

TEST(BatchedGemmTest, SpmdParallelModeAlsoVerifies) {
  const BatchedGemmWorkload w = generateBatchedGemm(64, 6, 9);
  Device dev(ArchSpec::testTiny());
  BatchedGemmOptions options;
  options.numTeams = 2;
  options.threadsPerTeam = 64;
  options.simdlen = 8;
  options.parallelMode = omprt::ExecMode::kSPMD;
  auto result = runBatchedGemm(dev, w, options);
  ASSERT_TRUE(result.isOk());
  EXPECT_TRUE(result.value().verified);
}

TEST(BatchedGemmTest, LargerMatricesVerify) {
  const BatchedGemmWorkload w = generateBatchedGemm(32, 8, 11);
  Device dev(ArchSpec::testTiny());
  BatchedGemmOptions options;
  options.numTeams = 2;
  options.threadsPerTeam = 64;
  options.simdlen = 16;
  auto result = runBatchedGemm(dev, w, options);
  ASSERT_TRUE(result.isOk());
  EXPECT_TRUE(result.value().verified);
}

// ---------------- Lane-utilization accounting ----------------

TEST(LaneUtilizationTest, ExactForDividingGroup) {
  // m=4: 16-element inner loop; group 8 divides it exactly: no idle
  // lane-rounds.
  const BatchedGemmWorkload w = generateBatchedGemm(64, 4, 3);
  Device dev(ArchSpec::testTiny());
  BatchedGemmOptions options;
  options.numTeams = 2;
  options.threadsPerTeam = 64;
  options.simdlen = 8;
  auto result = runBatchedGemm(dev, w, options);
  ASSERT_TRUE(result.isOk());
  const auto& counters = result.value().stats.counters;
  EXPECT_EQ(counters.get(Counter::kSimdLaneRounds), 64u * 16u);
  EXPECT_EQ(counters.get(Counter::kSimdIdleLaneRounds), 0u);
}

TEST(LaneUtilizationTest, WasteGrowsWithOversizedGroups) {
  // m=4: 16-element loop on groups of 32 wastes half of every round.
  const BatchedGemmWorkload w = generateBatchedGemm(64, 4, 3);
  Device dev(ArchSpec::testTiny());
  BatchedGemmOptions options;
  options.numTeams = 2;
  options.threadsPerTeam = 64;
  options.simdlen = 32;
  auto result = runBatchedGemm(dev, w, options);
  ASSERT_TRUE(result.isOk());
  const auto& counters = result.value().stats.counters;
  EXPECT_EQ(counters.get(Counter::kSimdLaneRounds), 64u * 32u);
  EXPECT_EQ(counters.get(Counter::kSimdIdleLaneRounds), 64u * 16u);
}

TEST(LaneUtilizationTest, CeilDivisionRemainder) {
  // Trip 36 (su3-like) on groups of 8: 5 rounds = 40 lane-rounds, 4
  // idle. Use a direct simd loop to pin the arithmetic.
  Device dev(ArchSpec::testTiny());
  dsl::LaunchSpec spec;
  spec.numTeams = 1;
  spec.threadsPerTeam = 32;
  spec.parallelMode = omprt::ExecMode::kGeneric;
  spec.simdlen = 8;
  auto stats = dsl::targetTeamsDistributeParallelFor(
      dev, spec, 4, [&](dsl::OmpContext& ctx, uint64_t) {
        dsl::simd(ctx, 36, [](dsl::OmpContext& c, uint64_t) {
          c.gpu().work(1);
        });
      });
  ASSERT_TRUE(stats.isOk());
  EXPECT_EQ(stats.value().counters.get(Counter::kSimdLaneRounds), 4u * 40u);
  EXPECT_EQ(stats.value().counters.get(Counter::kSimdIdleLaneRounds),
            4u * 4u);
}

TEST(LaneUtilizationTest, ReductionLoopsAlsoBook) {
  Device dev(ArchSpec::testTiny());
  dsl::LaunchSpec spec;
  spec.numTeams = 1;
  spec.threadsPerTeam = 32;
  spec.parallelMode = omprt::ExecMode::kSPMD;
  spec.simdlen = 16;
  auto stats = dsl::targetTeamsDistributeParallelFor(
      dev, spec, 2, [&](dsl::OmpContext& ctx, uint64_t) {
        (void)dsl::simdReduceAdd(ctx, 20, [](dsl::OmpContext&, uint64_t k) {
          return static_cast<double>(k);
        });
      });
  ASSERT_TRUE(stats.isOk());
  // 20 iterations on 16 lanes: 2 rounds = 32 lane-rounds, 12 idle.
  EXPECT_EQ(stats.value().counters.get(Counter::kSimdLaneRounds), 2u * 32u);
  EXPECT_EQ(stats.value().counters.get(Counter::kSimdIdleLaneRounds),
            2u * 12u);
}

}  // namespace
}  // namespace simtomp::apps
