// simtomp_tune: pre-tune the app corpus and manage the tuning cache.
//
//   simtomp_tune tune  [options]        — search the launch space for
//                                         each selected app and record
//                                         the winners in the cache
//   simtomp_tune list  [--cache PATH]   — print every cache entry
//   simtomp_tune evict <prefix> [...]   — drop entries whose kernel key
//                                         starts with <prefix>
//   simtomp_tune clear [--cache PATH]   — drop every entry
//
// tune options:
//   --apps a,b,c     apps to tune (default: the whole corpus)
//   --arch NAME      a100 | mi100 | tiny           (default a100)
//   --strategy S     exhaustive | hill             (default exhaustive)
//   --budget N       max trial launches, 0 = unbounded  (default 0)
//   --workers N      host workers for trial fan-out, 0 = auto
//   --cache PATH     cache file (default: SIMTOMP_TUNE_CACHE, else
//                    in-memory — winners are printed but not persisted)
//   --check          run every trial under simcheck (report mode)
//   --small          small workloads and trimmed axes (CI smoke)
//   --retune         search even when the cache already has an entry
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "apps/tunable.h"
#include "gpusim/arch.h"
#include "gpusim/cost_model.h"
#include "simcheck/report.h"
#include "simtune/cache.h"
#include "simtune/tuner.h"

using namespace simtomp;

namespace {

int usage() {
  std::fprintf(
      stderr,
      "usage: simtomp_tune <tune|list|evict <prefix>|clear>\n"
      "  tune options: [--apps a,b,c] [--arch a100|mi100|tiny]\n"
      "    [--strategy exhaustive|hill] [--budget N] [--workers N]\n"
      "    [--cache PATH] [--check] [--small] [--retune]\n"
      "  list/evict/clear options: [--cache PATH]\n");
  return 2;
}

std::vector<std::string> splitCsv(const std::string& csv) {
  std::vector<std::string> out;
  size_t start = 0;
  while (start <= csv.size()) {
    const size_t comma = csv.find(',', start);
    const size_t end = comma == std::string::npos ? csv.size() : comma;
    if (end > start) out.push_back(csv.substr(start, end - start));
    if (comma == std::string::npos) break;
    start = comma + 1;
  }
  return out;
}

struct Options {
  std::string command;
  std::string evictPrefix;
  std::vector<std::string> appNames;
  std::string archName = "a100";
  std::string cachePath;  // "" -> resolveCachePath (env var)
  simtune::TuneRequest request;
  bool small = false;
};

bool parseArgs(int argc, char** argv, Options& opts) {
  if (argc < 2) return false;
  opts.command = argv[1];
  int i = 2;
  if (opts.command == "evict") {
    if (argc < 3) return false;
    opts.evictPrefix = argv[2];
    i = 3;
  }
  auto value = [&](const char* flag) -> const char* {
    if (i + 1 >= argc) {
      std::fprintf(stderr, "simtomp_tune: %s needs a value\n", flag);
      return nullptr;
    }
    return argv[++i];
  };
  for (; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--apps") {
      const char* v = value("--apps");
      if (v == nullptr) return false;
      opts.appNames = splitCsv(v);
    } else if (arg == "--arch") {
      const char* v = value("--arch");
      if (v == nullptr) return false;
      opts.archName = v;
    } else if (arg == "--strategy") {
      const char* v = value("--strategy");
      if (v == nullptr) return false;
      if (std::strcmp(v, "exhaustive") == 0) {
        opts.request.strategy = simtune::TuneStrategy::kExhaustive;
      } else if (std::strcmp(v, "hill") == 0 ||
                 std::strcmp(v, "hillclimb") == 0 ||
                 std::strcmp(v, "hill-climb") == 0) {
        opts.request.strategy = simtune::TuneStrategy::kHillClimb;
      } else {
        std::fprintf(stderr, "simtomp_tune: unknown strategy '%s'\n", v);
        return false;
      }
    } else if (arg == "--budget") {
      const char* v = value("--budget");
      if (v == nullptr) return false;
      opts.request.maxTrials = static_cast<uint32_t>(std::atoi(v));
    } else if (arg == "--workers") {
      const char* v = value("--workers");
      if (v == nullptr) return false;
      opts.request.hostWorkers = static_cast<uint32_t>(std::atoi(v));
    } else if (arg == "--cache") {
      const char* v = value("--cache");
      if (v == nullptr) return false;
      opts.cachePath = v;
    } else if (arg == "--check") {
      opts.request.check.mode = simcheck::CheckMode::kReport;
    } else if (arg == "--small") {
      opts.small = true;
    } else if (arg == "--retune") {
      opts.request.skipCache = true;
    } else {
      std::fprintf(stderr, "simtomp_tune: unknown argument '%s'\n",
                   arg.c_str());
      return false;
    }
  }
  return true;
}

bool pickArch(const std::string& name, gpusim::ArchSpec& arch) {
  if (name == "a100") {
    arch = gpusim::ArchSpec::nvidiaA100();
  } else if (name == "mi100") {
    arch = gpusim::ArchSpec::amdMI100();
  } else if (name == "tiny") {
    arch = gpusim::ArchSpec::testTiny();
  } else {
    std::fprintf(stderr, "simtomp_tune: unknown arch '%s'\n", name.c_str());
    return false;
  }
  return true;
}

int runTune(const Options& opts) {
  gpusim::ArchSpec arch;
  if (!pickArch(opts.archName, arch)) return 2;
  const gpusim::CostModel cost{};

  std::vector<apps::TunableApp> corpus;
  if (opts.appNames.empty()) {
    corpus = apps::tunableCorpus(arch, opts.small);
  } else {
    const auto all = apps::tunableCorpus(arch, opts.small);
    for (const std::string& name : opts.appNames) {
      bool found = false;
      for (const auto& app : all) {
        if (app.name == name) {
          corpus.push_back(app);
          found = true;
          break;
        }
      }
      if (!found) {
        std::fprintf(stderr, "simtomp_tune: unknown app '%s' (have:",
                     name.c_str());
        for (const auto& app : all) {
          std::fprintf(stderr, " %s", app.name.c_str());
        }
        std::fprintf(stderr, ")\n");
        return 2;
      }
    }
  }

  auto cache = std::make_shared<simtune::TuneCache>(
      simtune::resolveCachePath(opts.cachePath));
  if (cache->persistent()) {
    const Status loaded = cache->load();
    if (!loaded.isOk()) {
      std::fprintf(stderr, "simtomp_tune: cannot load %s: %s\n",
                   cache->path().c_str(), loaded.message().c_str());
      return 1;
    }
  }
  simtune::Tuner tuner(cache);

  std::printf("tuning %zu app(s) on %s [%s%s, strategy %s, budget %u]\n",
              corpus.size(), arch.name.c_str(),
              cache->persistent() ? cache->path().c_str() : "in-memory cache",
              opts.small ? ", small" : "",
              std::string(simtune::tuneStrategyName(opts.request.strategy))
                  .c_str(),
              opts.request.maxTrials);
  for (const auto& app : corpus) {
    simtune::TuneRequest request = opts.request;
    request.tripCount = app.tripCount;
    const Result<simtune::TuneOutcome> result =
        tuner.tune(app.name, arch, cost, app.axes, app.trial, request);
    if (!result.isOk()) {
      std::fprintf(stderr, "simtomp_tune: %s failed: %s\n", app.name.c_str(),
                   result.status().message().c_str());
      return 1;
    }
    const simtune::TuneOutcome& outcome = result.value();
    std::printf("  %-16s %s  [%s, %u trial(s)]\n", app.name.c_str(),
                outcome.shape.toString().c_str(),
                outcome.fromCache ? "cached" : "searched", outcome.trialsRun);
  }
  std::printf("done: %llu trial launches, %llu cache hit(s)\n",
              static_cast<unsigned long long>(tuner.trialLaunches()),
              static_cast<unsigned long long>(tuner.cacheHits()));
  return 0;
}

int openCache(simtune::TuneCache& cache) {
  if (!cache.persistent()) {
    std::fprintf(stderr,
                 "simtomp_tune: no cache file (pass --cache or set "
                 "SIMTOMP_TUNE_CACHE)\n");
    return 2;
  }
  const Status loaded = cache.load();
  if (!loaded.isOk()) {
    std::fprintf(stderr, "simtomp_tune: cannot load %s: %s\n",
                 cache.path().c_str(), loaded.message().c_str());
    return 1;
  }
  return 0;
}

int runList(const Options& opts) {
  simtune::TuneCache cache(simtune::resolveCachePath(opts.cachePath));
  if (const int rc = openCache(cache); rc != 0) return rc;
  std::printf("%s: %zu entries\n", cache.path().c_str(), cache.size());
  for (const auto& [key, shape] : cache.entries()) {
    std::printf("  %s\n    -> %s\n", key.c_str(), shape.toString().c_str());
  }
  return 0;
}

int runEvict(const Options& opts) {
  simtune::TuneCache cache(simtune::resolveCachePath(opts.cachePath));
  if (const int rc = openCache(cache); rc != 0) return rc;
  const size_t removed = cache.evict(opts.evictPrefix);
  const Status saved = cache.save();
  if (!saved.isOk()) {
    std::fprintf(stderr, "simtomp_tune: cannot save %s: %s\n",
                 cache.path().c_str(), saved.message().c_str());
    return 1;
  }
  std::printf("evicted %zu entr%s %s '%s'\n", removed,
              removed == 1 ? "y" : "ies",
              opts.evictPrefix.empty() ? "(everything)" : "matching",
              opts.evictPrefix.c_str());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  Options opts;
  if (!parseArgs(argc, argv, opts)) return usage();
  if (opts.command == "tune") return runTune(opts);
  if (opts.command == "list") return runList(opts);
  if (opts.command == "evict") return runEvict(opts);
  if (opts.command == "clear") {
    opts.evictPrefix.clear();
    return runEvict(opts);
  }
  return usage();
}
