#include "support/status.h"

namespace simtomp {

std::string_view statusCodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk: return "OK";
    case StatusCode::kInvalidArgument: return "INVALID_ARGUMENT";
    case StatusCode::kFailedPrecondition: return "FAILED_PRECONDITION";
    case StatusCode::kOutOfRange: return "OUT_OF_RANGE";
    case StatusCode::kResourceExhausted: return "RESOURCE_EXHAUSTED";
    case StatusCode::kUnimplemented: return "UNIMPLEMENTED";
    case StatusCode::kInternal: return "INTERNAL";
    case StatusCode::kUnavailable: return "UNAVAILABLE";
    case StatusCode::kDeadlineExceeded: return "DEADLINE_EXCEEDED";
  }
  return "UNKNOWN";
}

std::string Status::toString() const {
  if (isOk()) return "OK";
  std::string out(statusCodeName(code_));
  out += ": ";
  out += message_;
  return out;
}

void checkFailed(const char* file, int line, const char* expr,
                 const std::string& msg) {
  std::fprintf(stderr, "SIMTOMP_CHECK failed at %s:%d: %s\n  %s\n", file, line,
               expr, msg.c_str());
  std::abort();
}

}  // namespace simtomp
