// DeviceManager default-plumbing precedence, parameterized over every
// channel that has the three-level layering:
//
//   explicit launch config  >  setDefault* on the manager  >  env var
//
// The channels (hostWorkers / check / tuner) share one test body; each
// parameter supplies how to set a value at each level and how to
// observe which level won, via DeviceManager::effectiveConfig — no
// kernel is launched.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <functional>
#include <thread>
#include <memory>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "gpusim/executor.h"
#include "hostrt/device_manager.h"
#include "simtune/cache.h"
#include "simtune/tuner.h"

namespace simtomp::hostrt {
namespace {

using gpusim::ArchSpec;

constexpr const char* kEnvVars[] = {"SIMTOMP_HOST_WORKERS", "SIMTOMP_CHECK",
                                    "SIMTOMP_TUNE", "SIMTOMP_TUNE_CACHE",
                                    "SIMTOMP_PROF"};

struct Channel {
  const char* name;
  /// Prepare the base launch config (e.g. mark a field auto).
  std::function<void(omprt::TargetConfig&)> prepBase;
  /// Set the channel's env-var level.
  std::function<void()> setEnv;
  /// Set the channel's manager-default level.
  std::function<void(DeviceManager&)> setManager;
  /// Set the channel's explicit-config level.
  std::function<void(omprt::TargetConfig&)> setExplicit;
  /// Observe which level won (a small distinct integer per level).
  std::function<int(DeviceManager&, const omprt::TargetConfig&)> observe;
  /// Expected observation with nothing set (evaluated under clean env).
  std::function<int()> expectDefault;
  int expectEnv;
  int expectManager;
  int expectExplicit;
};

// The seeded tuning-cache entries: the env-level cache file answers
// simdlen 16, the manager-level tuner answers 8, the explicit config
// pins 4, and the heuristic fallback is 1 — four distinguishable
// outcomes for one observed field.
simtune::TuneKey precKey() {
  return simtune::makeTuneKey("prec", ArchSpec::testTiny(),
                              gpusim::CostModel{}, /*tripCount=*/0);
}

simtune::TunedShape shapeWithSimdlen(uint32_t simdlen) {
  simtune::TunedShape shape;
  shape.simdlen = simdlen;
  return shape;
}

std::string envCachePath() {
  return ::testing::TempDir() + "hostrt_defaults_tune_cache.json";
}

Channel hostWorkersChannel() {
  Channel ch;
  ch.name = "hostWorkers";
  ch.prepBase = [](omprt::TargetConfig&) {};
  ch.setEnv = [] { ::setenv("SIMTOMP_HOST_WORKERS", "3", 1); };
  ch.setManager = [](DeviceManager& mgr) { mgr.setDefaultHostWorkers(2); };
  ch.setExplicit = [](omprt::TargetConfig& c) { c.hostWorkers = 5; };
  ch.observe = [](DeviceManager& mgr, const omprt::TargetConfig& c) {
    // effectiveConfig leaves 0 (auto) when neither explicit nor manager
    // level decided; the env level resolves at Device::launch via
    // resolveHostWorkers, so chain it here the way the launch would.
    return static_cast<int>(gpusim::resolveHostWorkers(
        mgr.effectiveConfig(0, c).hostWorkers));
  };
  // With a clean env the auto fallback is hardware concurrency;
  // evaluate it at stage time rather than hard-coding a machine value.
  ch.expectDefault = [] {
    return static_cast<int>(gpusim::resolveHostWorkers(0));
  };
  ch.expectEnv = 3;
  ch.expectManager = 2;
  ch.expectExplicit = 5;
  return ch;
}

Channel checkChannel() {
  Channel ch;
  ch.name = "check";
  ch.prepBase = [](omprt::TargetConfig&) {};
  ch.setEnv = [] { ::setenv("SIMTOMP_CHECK", "2", 1); };  // fatal
  ch.setManager = [](DeviceManager& mgr) {
    simcheck::CheckConfig check;
    check.mode = simcheck::CheckMode::kReport;
    mgr.setDefaultCheck(check);
  };
  ch.setExplicit = [](omprt::TargetConfig& c) {
    c.check.mode = simcheck::CheckMode::kOff;
  };
  ch.observe = [](DeviceManager& mgr, const omprt::TargetConfig& c) {
    return static_cast<int>(mgr.effectiveConfig(0, c).check.mode);
  };
  ch.expectDefault = [] {
    return static_cast<int>(simcheck::CheckMode::kOff);
  };
  ch.expectEnv = static_cast<int>(simcheck::CheckMode::kFatal);
  ch.expectManager = static_cast<int>(simcheck::CheckMode::kReport);
  ch.expectExplicit = static_cast<int>(simcheck::CheckMode::kOff);
  return ch;
}

Channel tunerChannel() {
  Channel ch;
  ch.name = "tuner";
  ch.prepBase = [](omprt::TargetConfig& c) {
    c.tuneKey = "prec";
    c.simdlen = 0;  // the one auto field the cache entries decide
  };
  ch.setEnv = [] {
    // Cache-mode tuning via env, answering from a cache file: this is
    // the zero-code-changes SIMTOMP_TUNE=1 path (lazy default tuner).
    simtune::TuneCache file(envCachePath());
    file.insert(precKey(), shapeWithSimdlen(16));
    ASSERT_TRUE(file.save().isOk());
    ::setenv("SIMTOMP_TUNE", "1", 1);
    ::setenv("SIMTOMP_TUNE_CACHE", envCachePath().c_str(), 1);
  };
  ch.setManager = [](DeviceManager& mgr) {
    auto cache = std::make_shared<simtune::TuneCache>();
    cache->insert(precKey(), shapeWithSimdlen(8));
    mgr.setDefaultTuner(std::make_shared<simtune::Tuner>(std::move(cache)),
                        simtune::TuneMode::kCache);
  };
  ch.setExplicit = [](omprt::TargetConfig& c) { c.simdlen = 4; };
  ch.observe = [](DeviceManager& mgr, const omprt::TargetConfig& c) {
    return static_cast<int>(mgr.effectiveConfig(0, c).simdlen);
  };
  ch.expectDefault = [] { return 1; };  // heuristic: tuning is off
  ch.expectEnv = 16;
  ch.expectManager = 8;
  ch.expectExplicit = 4;
  return ch;
}

Channel profileChannel() {
  Channel ch;
  ch.name = "profile";
  ch.prepBase = [](omprt::TargetConfig&) {};
  ch.setEnv = [] { ::setenv("SIMTOMP_PROF", "1", 1); };  // on
  // Only two non-auto modes exist, so the manager pins profiling *off*
  // against the env's on — each stage still flips the observed value.
  ch.setManager = [](DeviceManager& mgr) {
    mgr.setDefaultProfile(simprof::ProfileConfig{simprof::ProfileMode::kOff});
  };
  ch.setExplicit = [](omprt::TargetConfig& c) {
    c.profile.mode = simprof::ProfileMode::kOn;
  };
  ch.observe = [](DeviceManager& mgr, const omprt::TargetConfig& c) {
    return static_cast<int>(mgr.effectiveConfig(0, c).profile.mode);
  };
  ch.expectDefault = [] {
    return static_cast<int>(simprof::ProfileMode::kOff);
  };
  ch.expectEnv = static_cast<int>(simprof::ProfileMode::kOn);
  ch.expectManager = static_cast<int>(simprof::ProfileMode::kOff);
  ch.expectExplicit = static_cast<int>(simprof::ProfileMode::kOn);
  return ch;
}

class DefaultsPrecedenceTest : public ::testing::TestWithParam<Channel> {
 protected:
  void SetUp() override {
    for (const char* var : kEnvVars) {
      const char* old = std::getenv(var);
      saved_.emplace_back(var, old != nullptr ? std::optional<std::string>(old)
                                              : std::nullopt);
      ::unsetenv(var);
    }
  }
  void TearDown() override {
    for (const auto& [var, old] : saved_) {
      if (old.has_value()) {
        ::setenv(var, old->c_str(), 1);
      } else {
        ::unsetenv(var);
      }
    }
    std::remove(envCachePath().c_str());
  }

 private:
  std::vector<std::pair<const char*, std::optional<std::string>>> saved_;
};

TEST_P(DefaultsPrecedenceTest, ExplicitBeatsManagerBeatsEnv) {
  const Channel& ch = GetParam();
  omprt::TargetConfig base;
  ch.prepBase(base);

  // Stage 1: nothing set — the channel's built-in default.
  {
    DeviceManager mgr({ArchSpec::testTiny()});
    EXPECT_EQ(ch.observe(mgr, base), ch.expectDefault()) << "stage: default";
  }
  // Stage 2: only the env var — env wins.
  ch.setEnv();
  {
    DeviceManager mgr({ArchSpec::testTiny()});
    EXPECT_EQ(ch.observe(mgr, base), ch.expectEnv) << "stage: env";
  }
  // Stage 3: env + manager default — the manager default wins.
  {
    DeviceManager mgr({ArchSpec::testTiny()});
    ch.setManager(mgr);
    EXPECT_EQ(ch.observe(mgr, base), ch.expectManager) << "stage: manager";
  }
  // Stage 4: env + manager + explicit config — explicit wins.
  {
    DeviceManager mgr({ArchSpec::testTiny()});
    ch.setManager(mgr);
    omprt::TargetConfig config = base;
    ch.setExplicit(config);
    EXPECT_EQ(ch.observe(mgr, config), ch.expectExplicit)
        << "stage: explicit";
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllChannels, DefaultsPrecedenceTest,
    ::testing::Values(hostWorkersChannel(), checkChannel(), tunerChannel(),
                      profileChannel()),
    [](const ::testing::TestParamInfo<Channel>& param_info) {
      return std::string(param_info.param.name);
    });

// The setDefault* family is documented safe against concurrent
// launches (simserve reconfigures the manager it fronts while tenants
// keep submitting): every default field sits behind a shared_mutex.
// This test hammers every setter from one thread while another
// launches; it is part of the TSan suite (hostrt_ matches the stage-2
// regex in tools/ci.sh), where a missing lock shows up as a reported
// race rather than a flaky value.
TEST(DefaultsConcurrencyTest, SettersDoNotRaceLaunches) {
  DeviceManager mgr({ArchSpec::testTiny()});
  std::atomic<bool> stop{false};
  std::thread setter([&] {
    uint32_t i = 0;
    while (!stop.load(std::memory_order_relaxed)) {
      mgr.setDefaultHostWorkers(1 + (i % 4));
      mgr.setDefaultCheck(simcheck::CheckConfig{
          (i % 2) != 0u ? simcheck::CheckMode::kReport
                        : simcheck::CheckMode::kOff,
          16});
      mgr.setDefaultProfile({});
      mgr.setDefaultTuner(std::make_shared<simtune::Tuner>(),
                          simtune::TuneMode::kOff);
      mgr.setDefaultResilience({}, simfault::ResilienceMode::kOff);
      ++i;
    }
  });
  omprt::TargetConfig config;
  config.teamsMode = omprt::ExecMode::kSPMD;
  config.numTeams = 1;
  config.threadsPerTeam = 64;
  config.hostWorkers = 0;  // force the default_host_workers_ read path
  config.check.mode = simcheck::CheckMode::kAuto;  // default_check_ read
  config.fault.spec = "off";
  for (int i = 0; i < 50; ++i) {
    const auto stats = mgr.launchOn(0, config, [](omprt::OmpContext&) {});
    EXPECT_TRUE(stats.isOk());
    (void)mgr.effectiveConfig(0, config);
  }
  stop.store(true, std::memory_order_relaxed);
  setter.join();
}

}  // namespace
}  // namespace simtomp::hostrt
