#include "hostrt/data_env.h"

#include <algorithm>

#include "support/log.h"

namespace simtomp::hostrt {

DataEnvironment::~DataEnvironment() {
  for (Entry& e : entries_) {
    SIMTOMP_WARN("data environment torn down with live mapping (%zu bytes)",
                 e.bytes);
    (void)device_->memory().free(e.dev);
  }
}

DataEnvironment::Entry* DataEnvironment::find(const void* host) {
  for (Entry& e : entries_) {
    if (e.host == host) return &e;
  }
  return nullptr;
}

const DataEnvironment::Entry* DataEnvironment::find(const void* host) const {
  for (const Entry& e : entries_) {
    if (e.host == host) return &e;
  }
  return nullptr;
}

void DataEnvironment::copyToDevice(Entry& e) {
  std::memcpy(device_->memory().raw(e.dev), e.host, e.bytes);
  stats_.bytesToDevice += e.bytes;
  stats_.transfersToDevice += 1;
  stats_.transferCycles += transfer_model_.cyclesFor(e.bytes);
}

void DataEnvironment::copyFromDevice(Entry& e) {
  std::memcpy(const_cast<void*>(e.host), device_->memory().raw(e.dev),
              e.bytes);
  stats_.bytesFromDevice += e.bytes;
  stats_.transfersFromDevice += 1;
  stats_.transferCycles += transfer_model_.cyclesFor(e.bytes);
}

Status DataEnvironment::mapEnter(const void* host, size_t bytes,
                                 MapType type) {
  if (host == nullptr || bytes == 0) {
    return Status::invalidArgument("mapEnter requires a non-empty object");
  }
  if (Entry* existing = find(host)) {
    if (existing->bytes != bytes) {
      return Status::invalidArgument(
          "re-mapping a host pointer with a different extent");
    }
    existing->refCount += 1;
    return Status::ok();
  }
  auto dev = device_->memory().allocate(bytes, 16);
  if (!dev.isOk()) return dev.status();
  Entry e{host, bytes, dev.value(), 1, type};
  if (type == MapType::kTo || type == MapType::kToFrom) {
    copyToDevice(e);
  } else {
    // kAlloc / kFrom: device storage starts zeroed (deterministic sim).
    std::memset(device_->memory().raw(e.dev), 0, e.bytes);
  }
  entries_.push_back(e);
  return Status::ok();
}

Status DataEnvironment::mapExit(const void* host, MapType type) {
  const auto it = std::find_if(entries_.begin(), entries_.end(),
                               [host](const Entry& e) { return e.host == host; });
  if (it == entries_.end()) {
    return Status::failedPrecondition("mapExit of a non-present pointer");
  }
  if (--it->refCount > 0) return Status::ok();
  if (type == MapType::kFrom || type == MapType::kToFrom) {
    copyFromDevice(*it);
  }
  const Status freed = device_->memory().free(it->dev);
  entries_.erase(it);
  return freed;
}

Status DataEnvironment::updateTo(const void* host) {
  Entry* e = find(host);
  if (e == nullptr) {
    return Status::failedPrecondition("updateTo of a non-present pointer");
  }
  copyToDevice(*e);
  return Status::ok();
}

Status DataEnvironment::updateFrom(void* host) {
  Entry* e = find(host);
  if (e == nullptr) {
    return Status::failedPrecondition("updateFrom of a non-present pointer");
  }
  copyFromDevice(*e);
  return Status::ok();
}

bool DataEnvironment::isPresent(const void* host) const {
  return find(host) != nullptr;
}

}  // namespace simtomp::hostrt
