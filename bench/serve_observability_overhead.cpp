// Serve observability overhead: tracing must be free where it counts.
//
// The same pressured mix (seeded generator: shedding, batching,
// device-lost migrations) replays through two identical launch
// services, tracing off and tracing on. The gate is *byte identity* of
// the modeled surfaces — dumpStats() and the replay report — because
// the tracer is purely observational: it hooks the scheduler but never
// feeds back into admission, placement or the modeled clock. Host-side
// cost is reported (min over repetitions) but NOT gated: wall time is
// machine noise, the modeled bytes are the contract. Results land in
// BENCH_serve_observability.json; tools/ci.sh stage 12 runs this after
// the trace byte-compares.
#include <cstdio>
#include <cstdlib>
#include <sstream>
#include <string>
#include <vector>

#include "bench_common.h"
#include "hostrt/device_manager.h"
#include "simserve/mix.h"
#include "simserve/service.h"

namespace {

using namespace simtomp;
using bench::Row;

constexpr size_t kDevices = 4;
constexpr int kReps = 3;

struct RunOut {
  std::string stats;   ///< dumpStats() bytes (modeled; must not move)
  std::string report;  ///< ReplayReport text (modeled; must not move)
  uint64_t traceEvents = 0;
  uint64_t traceDropped = 0;
  double hostMs = 0.0;
};

simserve::Mix pressuredMix() {
  simserve::MixProfile profile;
  profile.seed = 11;
  profile.tenants = 4;
  profile.requests = 384;
  profile.pumpEvery = 32;
  profile.faultPermille = 20;
  profile.maxInFlight = 8;
  profile.maxQueued = 6;
  return simserve::generateMix(profile);
}

RunOut runOnce(const simserve::Mix& mix, bool trace) {
  std::vector<gpusim::ArchSpec> specs(kDevices, gpusim::ArchSpec::testTiny());
  hostrt::DeviceManager mgr(std::move(specs));
  simserve::ServiceConfig config;
  config.maxQueued = 24;
  config.trace.enabled = trace;
  simserve::LaunchService service(mgr, config);

  const bench::WallTimer timer;
  const Result<simserve::ReplayReport> report = simserve::replayMix(service, mix);
  if (!report.isOk()) {
    std::fprintf(stderr, "FATAL: %s\n", report.status().toString().c_str());
    std::abort();
  }
  RunOut run;
  run.hostMs = timer.elapsedMs();
  run.report = report.value().toString();
  std::ostringstream stats;
  service.dumpStats(stats);
  run.stats = stats.str();
  if (const simserve::ServiceTracer* tracer = service.tracer()) {
    run.traceEvents = tracer->canonicalRing().recorded() +
                      tracer->physicalRing().recorded();
    run.traceDropped = tracer->canonicalRing().dropped() +
                       tracer->physicalRing().dropped();
  }
  return run;
}

}  // namespace

int main() {
  const simserve::Mix mix = pressuredMix();
  RunOut off = runOnce(mix, /*trace=*/false);
  RunOut on = runOnce(mix, /*trace=*/true);
  for (int rep = 1; rep < kReps; ++rep) {
    const RunOut off2 = runOnce(mix, /*trace=*/false);
    const RunOut on2 = runOnce(mix, /*trace=*/true);
    if (off2.hostMs < off.hostMs) off.hostMs = off2.hostMs;
    if (on2.hostMs < on.hostMs) on.hostMs = on2.hostMs;
  }

  const bool statsIdentical = off.stats == on.stats;
  const bool reportIdentical = off.report == on.report;
  const double overhead = off.hostMs > 0.0 ? on.hostMs / off.hostMs : 0.0;

  std::vector<Row> rows;
  rows.push_back({"tracing off", 0, 1.0, off.hostMs});
  rows.push_back({"tracing on", on.traceEvents, overhead, on.hostMs});
  bench::printTable("Serve observability: tracing overhead (modeled bytes gated)",
                    "trace events recorded", on.traceEvents, rows);
  std::printf(
      "replay: %s\n"
      "stats identical: %s; report identical: %s; trace events %llu "
      "(%llu dropped); host overhead x%.3f (informational)\n",
      on.report.c_str(), statsIdentical ? "yes" : "NO",
      reportIdentical ? "yes" : "NO",
      static_cast<unsigned long long>(on.traceEvents),
      static_cast<unsigned long long>(on.traceDropped), overhead);

  std::FILE* f = std::fopen("BENCH_serve_observability.json", "w");
  if (f == nullptr) {
    std::fprintf(stderr,
                 "FATAL: cannot write BENCH_serve_observability.json\n");
    return 1;
  }
  std::fprintf(
      f,
      "{\n"
      "  \"bench\": \"serve_observability\",\n"
      "  \"requests\": %llu,\n"
      "  \"stats_identical\": %s,\n"
      "  \"report_identical\": %s,\n"
      "  \"trace_events\": %llu,\n"
      "  \"trace_dropped\": %llu,\n"
      "  \"host_ms_off\": %.3f,\n"
      "  \"host_ms_on\": %.3f,\n"
      "  \"host_overhead\": %.4f\n"
      "}\n",
      static_cast<unsigned long long>(mix.requestCount()),
      statsIdentical ? "true" : "false", reportIdentical ? "true" : "false",
      static_cast<unsigned long long>(on.traceEvents),
      static_cast<unsigned long long>(on.traceDropped), off.hostMs, on.hostMs,
      overhead);
  std::fclose(f);
  std::printf("wrote BENCH_serve_observability.json\n");

  if (!statsIdentical || !reportIdentical) {
    std::fprintf(stderr,
                 "FATAL: tracing perturbed the modeled surfaces "
                 "(stats %s, report %s)\n",
                 statsIdentical ? "ok" : "DIFFER",
                 reportIdentical ? "ok" : "DIFFER");
    return 1;
  }
  return 0;
}
