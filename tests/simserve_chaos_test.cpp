// Chaos-campaign harness tests: invariants hold on small campaigns and
// the report is a byte-identity surface across reruns, host-worker
// counts and shard counts (the campaign only reads shard-invariant
// stats, and fault placement is wave-structured so device loss strands
// exactly its carrier — see src/simserve/chaos.h).
#include <gtest/gtest.h>

#include <string>

#include "simserve/chaos.h"

namespace simtomp::simserve {
namespace {

ChaosConfig smallConfig() {
  ChaosConfig config;
  config.seedLo = 0;
  config.seedHi = 3;
  config.epochs = 3;
  config.requests = 8;
  return config;
}

TEST(ChaosTest, SmallCampaignHoldsEveryInvariant) {
  const Result<ChaosReport> report = runChaosCampaign(smallConfig());
  ASSERT_TRUE(report.isOk()) << report.status().toString();
  const ChaosReport& r = report.value();
  EXPECT_EQ(r.seeds, 4u);
  EXPECT_GT(r.submitted, 0u);
  EXPECT_GT(r.completed, 0u);
  EXPECT_GT(r.faultsArmed, 0u) << "campaign must actually inject faults";
  EXPECT_TRUE(r.violations.empty()) << r.violations.front().detail;
  EXPECT_NE(r.text.find("# simserve chaos campaign v1"), std::string::npos);
  EXPECT_NE(r.text.find("violations=0"), std::string::npos);
}

TEST(ChaosTest, ReportIsByteIdenticalAcrossRerunsWorkersShards) {
  const Result<ChaosReport> base = runChaosCampaign(smallConfig());
  ASSERT_TRUE(base.isOk()) << base.status().toString();

  const Result<ChaosReport> rerun = runChaosCampaign(smallConfig());
  ASSERT_TRUE(rerun.isOk());
  EXPECT_EQ(rerun.value().text, base.value().text);

  ChaosConfig workers = smallConfig();
  workers.workers = 8;
  const Result<ChaosReport> w8 = runChaosCampaign(workers);
  ASSERT_TRUE(w8.isOk());
  EXPECT_EQ(w8.value().text, base.value().text)
      << "stats must not depend on host-worker interleaving";

  ChaosConfig sharded = smallConfig();
  sharded.shards = 13;
  const Result<ChaosReport> s13 = runChaosCampaign(sharded);
  ASSERT_TRUE(s13.isOk());
  EXPECT_EQ(s13.value().text, base.value().text)
      << "stats must not depend on shard placement";
}

TEST(ChaosTest, SeedChangesTheCampaign) {
  const Result<ChaosReport> base = runChaosCampaign(smallConfig());
  ASSERT_TRUE(base.isOk());
  ChaosConfig shifted = smallConfig();
  shifted.seedLo = 4;
  shifted.seedHi = 7;
  const Result<ChaosReport> other = runChaosCampaign(shifted);
  ASSERT_TRUE(other.isOk());
  EXPECT_TRUE(other.value().violations.empty());
  EXPECT_NE(other.value().text, base.value().text);
}

TEST(ChaosTest, RejectsDegenerateConfigs) {
  ChaosConfig config = smallConfig();
  config.devices = 0;
  EXPECT_FALSE(runChaosCampaign(config).isOk());
  config = smallConfig();
  config.workers = 0;
  EXPECT_FALSE(runChaosCampaign(config).isOk());
  config = smallConfig();
  config.seedLo = 5;
  config.seedHi = 2;
  EXPECT_FALSE(runChaosCampaign(config).isOk());
}

}  // namespace
}  // namespace simtomp::simserve
