#include "gpusim/arch.h"

#include <bit>

namespace simtomp::gpusim {

ArchSpec ArchSpec::nvidiaA100() {
  ArchSpec spec;
  spec.vendor = Vendor::kNvidia;
  spec.name = "sim-a100";
  spec.warpSize = 32;
  spec.numSMs = 108;
  spec.warpSchedulersPerSM = 4;
  spec.maxThreadsPerBlock = 1024;
  spec.maxThreadsPerSM = 2048;
  spec.sharedMemPerBlock = 48 * 1024;
  spec.sharedMemPerSM = 164 * 1024;
  spec.hasWarpLevelBarrier = true;
  return spec;
}

ArchSpec ArchSpec::amdMI100() {
  ArchSpec spec;
  spec.vendor = Vendor::kAmd;
  spec.name = "sim-mi100";
  spec.warpSize = 64;
  spec.numSMs = 120;
  spec.warpSchedulersPerSM = 4;
  spec.maxThreadsPerBlock = 1024;
  spec.maxThreadsPerSM = 2560;
  spec.sharedMemPerBlock = 64 * 1024;
  spec.sharedMemPerSM = 64 * 1024;
  spec.hasWarpLevelBarrier = false;
  return spec;
}

ArchSpec ArchSpec::testTiny() {
  ArchSpec spec;
  spec.vendor = Vendor::kNvidia;
  spec.name = "sim-tiny";
  spec.warpSize = 32;
  spec.numSMs = 2;
  spec.warpSchedulersPerSM = 2;
  spec.maxThreadsPerBlock = 256;
  spec.maxThreadsPerSM = 512;
  spec.sharedMemPerBlock = 16 * 1024;
  spec.sharedMemPerSM = 32 * 1024;
  spec.hasWarpLevelBarrier = true;
  return spec;
}

Status ArchSpec::validate() const {
  if (warpSize == 0 || warpSize > 64 || !std::has_single_bit(warpSize)) {
    return Status::invalidArgument("warpSize must be a power of two in [1,64]");
  }
  if (numSMs == 0) return Status::invalidArgument("numSMs must be positive");
  if (warpSchedulersPerSM == 0) {
    return Status::invalidArgument("warpSchedulersPerSM must be positive");
  }
  if (maxThreadsPerBlock == 0 || maxThreadsPerBlock % warpSize != 0) {
    return Status::invalidArgument(
        "maxThreadsPerBlock must be a positive multiple of warpSize");
  }
  if (sharedMemPerBlock < 4 * 1024) {
    return Status::invalidArgument("sharedMemPerBlock must be at least 4 KiB");
  }
  if (maxThreadsPerSM < maxThreadsPerBlock) {
    return Status::invalidArgument(
        "maxThreadsPerSM must be at least maxThreadsPerBlock");
  }
  if (sharedMemPerSM < sharedMemPerBlock) {
    return Status::invalidArgument(
        "sharedMemPerSM must be at least sharedMemPerBlock");
  }
  return Status::ok();
}

}  // namespace simtomp::gpusim
