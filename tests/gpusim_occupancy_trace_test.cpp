// Tests for occupancy calculation and the chrome-trace recorder.
#include <gtest/gtest.h>

#include <algorithm>
#include <fstream>
#include <sstream>

#include "gpusim/device.h"
#include "gpusim/occupancy.h"
#include "gpusim/trace.h"

namespace simtomp::gpusim {
namespace {

TEST(OccupancyTest, ThreadBoundOnly) {
  const ArchSpec arch = ArchSpec::nvidiaA100();  // 2048 threads/SM
  const OccupancyInfo info = computeOccupancy(arch, 256, 0);
  EXPECT_EQ(info.warpsPerBlock, 8u);
  EXPECT_EQ(info.blocksPerSmByThreads, 8u);
  EXPECT_EQ(info.residentBlocksPerSm, 8u);
  EXPECT_DOUBLE_EQ(info.warpOccupancy, 1.0);
}

TEST(OccupancyTest, SharedMemoryBound) {
  const ArchSpec arch = ArchSpec::nvidiaA100();  // 164 KiB/SM
  const OccupancyInfo info = computeOccupancy(arch, 128, 48 * 1024);
  EXPECT_EQ(info.blocksPerSmByThreads, 16u);
  EXPECT_EQ(info.blocksPerSmByShared, 3u);
  EXPECT_EQ(info.residentBlocksPerSm, 3u);
  // 3 blocks * 4 warps / 64 max warps.
  EXPECT_NEAR(info.warpOccupancy, 12.0 / 64.0, 1e-12);
}

TEST(OccupancyTest, UnlaunchableShapeIsZero) {
  const ArchSpec arch = ArchSpec::testTiny();
  EXPECT_EQ(computeOccupancy(arch, 0, 0).residentBlocksPerSm, 0u);
  EXPECT_EQ(computeOccupancy(arch, 100000, 0).residentBlocksPerSm, 0u);
}

TEST(OccupancyTest, PartialWarpRoundsUp) {
  const ArchSpec arch = ArchSpec::nvidiaA100();
  EXPECT_EQ(computeOccupancy(arch, 40, 0).warpsPerBlock, 2u);
}

TEST(OccupancyTest, KernelStatsCarryOccupancy) {
  Device dev(ArchSpec::testTiny());  // 512 threads/SM
  auto stats = dev.launch({2, 128}, [](ThreadCtx& t) {
    // Touch shared memory so peak usage is non-zero.
    if (t.threadId() == 0) {
      (void)t.block().sharedMemory().allocate(1024, 16);
    }
  });
  ASSERT_TRUE(stats.isOk());
  EXPECT_GE(stats.value().peakSharedBytes, 1024u);
  EXPECT_EQ(stats.value().occupancy.threadsPerBlock, 128u);
  EXPECT_EQ(stats.value().occupancy.blocksPerSmByThreads, 4u);
  EXPECT_GT(stats.value().occupancy.warpOccupancy, 0.0);
}

TEST(OccupancyTest, MoreSharedUsageLowersOccupancy) {
  const ArchSpec arch = ArchSpec::nvidiaA100();
  const double lean = computeOccupancy(arch, 128, 1024).warpOccupancy;
  const double fat = computeOccupancy(arch, 128, 40 * 1024).warpOccupancy;
  EXPECT_GT(lean, fat);
}

// ---------------- TraceRecorder ----------------

TEST(TraceTest, RecordsBlockAndKernelEvents) {
  Device dev(ArchSpec::testTiny());
  TraceRecorder trace;
  dev.setTraceRecorder(&trace);
  auto stats = dev.launch({3, 32}, [](ThreadCtx& t) { t.work(10); });
  ASSERT_TRUE(stats.isOk());
  ASSERT_EQ(trace.size(), 4u);  // 3 blocks + 1 kernel span
  int kernel_events = 0;
  for (const auto& e : trace.events()) {
    if (e.track == TraceRecorder::kKernelTrack) {
      ++kernel_events;
      EXPECT_EQ(e.durationCycles, stats.value().cycles);
    } else {
      EXPECT_LT(e.track, dev.arch().numSMs);
      EXPECT_GT(e.durationCycles, 0u);
    }
  }
  EXPECT_EQ(kernel_events, 1);
  dev.setTraceRecorder(nullptr);
}

TEST(TraceTest, BlockSpansDoNotOverlapPerSm) {
  Device dev(ArchSpec::testTiny());  // 2 SMs
  TraceRecorder trace;
  dev.setTraceRecorder(&trace);
  auto stats = dev.launch({6, 32}, [](ThreadCtx& t) { t.work(100); });
  ASSERT_TRUE(stats.isOk());
  // Per SM, spans must be sequential and non-overlapping.
  for (uint32_t sm = 0; sm < 2; ++sm) {
    uint64_t cursor = 0;
    for (const auto& e : trace.events()) {
      if (e.track != sm) continue;
      EXPECT_GE(e.startCycle, cursor);
      cursor = e.startCycle + e.durationCycles;
    }
  }
}

TEST(TraceTest, ChromeJsonIsWellFormed) {
  TraceRecorder trace;
  trace.recordBlock(0, 1, 0, 50);
  trace.recordKernel("k", 60);
  std::ostringstream out;
  trace.writeChromeJson(out);
  const std::string json = out.str();
  EXPECT_EQ(json.front(), '[');
  EXPECT_NE(json.find("\"ph\": \"X\""), std::string::npos);
  EXPECT_NE(json.find("\"name\": \"block 0\""), std::string::npos);
  EXPECT_NE(json.find("\"dur\": 60"), std::string::npos);
  // Four metadata events (4 commas each: 5 fields, single-key args),
  // two "X" events (5 commas each: 6 fields) and 5 event separators.
  EXPECT_EQ(std::count(json.begin(), json.end(), ','),
            static_cast<long>(4 * 4 + 2 * 5 + 5));
}

TEST(TraceTest, MetadataNamesProcessesAndTracksFirst) {
  TraceRecorder trace;
  // Record SMs out of order: metadata must still come out sorted.
  trace.recordBlock(7, 3, 0, 10);
  trace.recordBlock(2, 1, 10, 10);
  trace.recordKernel("k", 25);
  std::ostringstream out;
  trace.writeChromeJson(out);
  const std::string json = out.str();
  const size_t proc_kernel = json.find("\"args\": {\"name\": \"kernel\"}");
  const size_t proc_sms = json.find("\"args\": {\"name\": \"SMs\"}");
  const size_t sm1 = json.find("\"args\": {\"name\": \"SM 1\"}");
  const size_t sm3 = json.find("\"args\": {\"name\": \"SM 3\"}");
  const size_t first_x = json.find("\"ph\": \"X\"");
  ASSERT_NE(proc_kernel, std::string::npos);
  ASSERT_NE(proc_sms, std::string::npos);
  ASSERT_NE(sm1, std::string::npos);
  ASSERT_NE(sm3, std::string::npos);
  ASSERT_NE(first_x, std::string::npos);
  // Processes first, then per-SM track names in sorted order, all
  // before any real event.
  EXPECT_LT(proc_kernel, proc_sms);
  EXPECT_LT(proc_sms, sm1);
  EXPECT_LT(sm1, sm3);
  EXPECT_LT(sm3, first_x);
  // SM tracks live in their own process with tid = sm + 1.
  EXPECT_NE(json.find("\"pid\": 1, \"tid\": 2, \"args\": {\"name\": \"SM 1\"}"),
            std::string::npos)
      << json;
}

TEST(TraceTest, InstantAndCounterEvents) {
  TraceRecorder trace;
  trace.recordInstant("fault armed (b0)", 12);
  trace.recordCounter("active blocks", 0, 2);
  trace.recordCounter("active blocks", 40, 0);
  std::ostringstream out;
  trace.writeChromeJson(out);
  const std::string json = out.str();
  EXPECT_NE(json.find("\"ph\": \"i\", \"s\": \"p\""), std::string::npos)
      << json;
  EXPECT_NE(json.find("\"ph\": \"C\""), std::string::npos);
  EXPECT_NE(json.find("\"args\": {\"value\": 2}"), std::string::npos);
  EXPECT_NE(json.find("\"args\": {\"value\": 0}"), std::string::npos);
}

TEST(TraceTest, DeepSpansNestInsideBlockSpans) {
  Device dev(ArchSpec::testTiny());
  TraceRecorder trace;
  dev.setTraceRecorder(&trace);
  LaunchConfig config{2, 32};
  config.profile.mode = simprof::ProfileMode::kOn;
  auto stats = dev.launch(config, [](ThreadCtx& t) {
    t.noteEnter(simprof::Construct::kSimdLoop, 4);
    t.work(10);
    t.noteExit();
  });
  ASSERT_TRUE(stats.isOk());
  // Each block's representative thread contributes one nested span on
  // the block's SM track, inside the block's own window.
  int deep = 0;
  for (const auto& e : trace.events()) {
    if (e.phase != TraceRecorder::Phase::kComplete) continue;
    if (e.name.rfind("simd_loop@4", 0) != 0) continue;
    ++deep;
    // "simd_loop@4 (b<N>)" -> the enclosing "block <N>" span.
    const size_t open = e.name.find("(b");
    ASSERT_NE(open, std::string::npos);
    const std::string block_name =
        "block " + e.name.substr(open + 2, e.name.size() - open - 3);
    bool found = false;
    for (const auto& blk : trace.events()) {
      if (blk.name != block_name) continue;
      found = true;
      EXPECT_EQ(blk.track, e.track);
      EXPECT_GE(e.startCycle, blk.startCycle);
      EXPECT_LE(e.startCycle + e.durationCycles,
                blk.startCycle + blk.durationCycles);
    }
    EXPECT_TRUE(found) << e.name;
  }
  EXPECT_EQ(deep, 2);
}

TEST(TraceTest, KernelNamesAreJsonEscaped) {
  TraceRecorder trace;
  // Kernel labels are user-supplied; quotes, backslashes and control
  // characters must come out as valid JSON escapes.
  trace.recordKernel("spmv \"tuned\" \\ pass\n\tstage\x01", 10);
  std::ostringstream out;
  trace.writeChromeJson(out);
  const std::string json = out.str();
  EXPECT_NE(json.find("spmv \\\"tuned\\\" \\\\ pass\\n\\tstage\\u0001"),
            std::string::npos)
      << json;
  // No raw quote survives inside the name: the name field closes right
  // before ", \"ph\"".
  EXPECT_NE(json.find("stage\\u0001\", \"ph\""), std::string::npos) << json;
}

TEST(TraceTest, WriteToFileAndClear) {
  TraceRecorder trace;
  trace.recordKernel("k", 10);
  const std::string path = "/tmp/simtomp_trace_test.json";
  ASSERT_TRUE(trace.writeChromeJson(path).isOk());
  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::string contents((std::istreambuf_iterator<char>(in)),
                       std::istreambuf_iterator<char>());
  EXPECT_NE(contents.find("\"name\": \"k\""), std::string::npos);
  trace.clear();
  EXPECT_EQ(trace.size(), 0u);
}

TEST(TraceTest, BadPathFails) {
  TraceRecorder trace;
  EXPECT_FALSE(trace.writeChromeJson("/nonexistent-dir/x.json").isOk());
}

TEST(TraceTest, MultipleKernelsAccumulate) {
  Device dev(ArchSpec::testTiny());
  TraceRecorder trace;
  dev.setTraceRecorder(&trace);
  ASSERT_TRUE(dev.launch({1, 32}, [](ThreadCtx&) {}).isOk());
  ASSERT_TRUE(dev.launch({1, 32}, [](ThreadCtx&) {}).isOk());
  // 2 kernels x (1 block + 1 kernel span).
  EXPECT_EQ(trace.size(), 4u);
}

}  // namespace
}  // namespace simtomp::gpusim
