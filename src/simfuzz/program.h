// simfuzz programs: the closed grammar of random kernels.
//
// A FuzzProgram is a point in the launch/construct space the
// differential fuzzer explores: a construct shape (distribute parallel
// for, scheduled worksharing, or a barrier-phased parallel region), a
// loop-body kind (affine map, nested simd, simd reduction, atomic
// accumulation, convergent-annotated map), and every launch axis the
// paper's runtime exposes — teams/threads, exec modes, simdlen,
// schedule, trip counts, sharing-space pressure. Every program has a
// closed-form host-serial reference (harness.h), so the grammar only
// spans *specified* behavior: each output cell is written by exactly
// one owner (or through commutative integer-valued atomics), barriers
// are reached exactly once per thread, and runtime clamps (AMD
// generic-SIMD fallback, simdlen normalization, dynamic-schedule
// fallback in generic regions) change modeled cost but never results.
//
// Programs serialize to a canonical one-line text form that parses
// back losslessly; minimized counterexamples ship as these lines
// (tools/simtomp_fuzz repro), and the seeded regression corpus in
// tests/ pins them verbatim.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

#include "dsl/dsl.h"
#include "support/status.h"

namespace simtomp::simfuzz {

/// Top-level construct shape.
enum class Construct : uint8_t {
  kDistributeParallelFor = 0,  ///< teams distribute parallel for [+ simd]
  kScheduledFor,               ///< distribute + parallel for schedule(...)
  kBarrierParallel,            ///< parallel region with two barrier phases
};
inline constexpr size_t kNumConstructs = 3;

/// Inner-loop body kind.
enum class BodyKind : uint8_t {
  kAffineMap = 0,   ///< out[row] = a*row + b (leader-guarded store)
  kSimdNest,        ///< nested dsl::simd writing out2[row*inner + k]
  kSimdReduce,      ///< dsl::simdReduceAdd over the inner trip
  kAtomicSum,       ///< inner simd atomically accumulating one cell
  kConvergentMap,   ///< kSimdNest wrapped in dsl::convergent
};
inline constexpr size_t kNumBodyKinds = 5;

/// Deterministic bug mutations the harness can compile into the
/// *generated* kernel (never into the reference): the fuzzer's
/// self-test targets, standing in for a miscompiled body.
enum class InjectKind : uint8_t {
  kNone = 0,
  kOffByOne,        ///< +1 on out[row] when simdlen > 1 and row % 7 == 3
  kDropIteration,   ///< skip the last inner iteration of row 1
};

[[nodiscard]] std::string_view constructName(Construct c);
[[nodiscard]] std::string_view bodyKindName(BodyKind b);
[[nodiscard]] std::string_view injectKindName(InjectKind k);

/// One generated kernel program. Plain data, trivially copyable,
/// equality-comparable — the minimizer relies on all three.
struct FuzzProgram {
  /// Generator seed this program came from (provenance only; not part
  /// of the program's semantics and ignored by operator== consumers
  /// that care about shape — kept in the canonical text for repros).
  uint64_t seed = 0;

  Construct construct = Construct::kDistributeParallelFor;
  BodyKind body = BodyKind::kAffineMap;

  uint32_t numTeams = 1;
  uint32_t threadsPerTeam = 64;
  omprt::ExecMode teamsMode = omprt::ExecMode::kSPMD;
  omprt::ExecMode parallelMode = omprt::ExecMode::kSPMD;
  uint32_t simdlen = 1;

  omprt::ForSchedule schedKind = omprt::ForSchedule::kStaticCyclic;
  uint64_t schedChunk = 0;

  uint64_t outerTrip = 1;
  uint64_t innerTrip = 0;

  /// Sharing-space pressure level 0..2: payload ballast captured by the
  /// inner simd body (0 = none, 2 = a body far larger than a 256-byte
  /// sharing space, forcing the specified global-memory overflow).
  uint32_t pressure = 0;
  uint32_t sharingSpaceBytes = omprt::kDefaultSharingSpaceBytes;

  /// Closed-form coefficients (kept small so every value is an exact
  /// integer-valued double; sums then compare bitwise in any order).
  int64_t a = 1;
  int64_t b = 0;

  InjectKind inject = InjectKind::kNone;

  bool operator==(const FuzzProgram&) const = default;

  /// Clamp/repair every field into the legal grammar: threadsPerTeam a
  /// multiple of 64 (valid for both 32- and 64-lane archs) that fits
  /// testTiny even with the generic-mode main warp, simdlen a power of
  /// two, barrier programs full-SPMD with an affine body and a
  /// one-entry scratch row, pressure only where a simd payload exists.
  void normalize();

  /// The launch shape this program runs under. Checking is pinned to
  /// kReport (explicit beats SIMTOMP_CHECK) and fault injection to
  /// "off", so harness runs are environment-independent; the harness
  /// overrides hostWorkers/fastPath per differential cell.
  [[nodiscard]] dsl::LaunchSpec launchSpec() const;

  /// Flat result size: out[outerTrip] ++ out2[outerTrip*innerTrip] ++
  /// one atomic accumulator cell.
  [[nodiscard]] size_t dataSize() const {
    return static_cast<size_t>(outerTrip) +
           static_cast<size_t>(outerTrip * innerTrip) + 1;
  }

  /// Canonical one-line text (stable key order, all fields explicit).
  [[nodiscard]] std::string serialize() const;

  /// Parse the canonical text (leading '#' comment lines and blank
  /// lines in multi-line input are skipped; the first program line
  /// wins). The result is normalize()d.
  static Result<FuzzProgram> parse(std::string_view text);
};

}  // namespace simtomp::simfuzz
