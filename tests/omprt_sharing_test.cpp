// Unit tests for the variable sharing space (paper section 5.3.1).
#include <gtest/gtest.h>

#include "gpusim/block.h"
#include "omprt/sharing.h"

namespace simtomp::omprt {
namespace {

using gpusim::ArchSpec;
using gpusim::BlockEngine;
using gpusim::CostModel;
using gpusim::Counter;
using gpusim::DeviceMemory;

class SharingTest : public ::testing::Test {
 protected:
  SharingTest()
      : arch_(ArchSpec::testTiny()),
        mem_(1 << 20),
        block_(arch_, cost_, mem_, 0, 1, 32) {}

  gpusim::ThreadCtx& t() { return block_.thread(0); }

  ArchSpec arch_;
  CostModel cost_;
  DeviceMemory mem_;
  BlockEngine block_;
};

TEST_F(SharingTest, SlotsPerGroupDividesEvenly) {
  SharingSpace space(block_.sharedMemory(), mem_, 2048, 32);
  // 2048 bytes - 128 team reserve = 1920 bytes over N groups.
  EXPECT_EQ(space.slotsPerGroup(4), 1920u / 4 / 8);
  EXPECT_EQ(space.slotsPerGroup(16), 1920u / 16 / 8);
  EXPECT_EQ(space.slotsPerGroup(64), 1920u / 64 / 8);
  EXPECT_EQ(space.sizeBytes(), 2048u);
}

TEST_F(SharingTest, PaperSizesSmallerSpaceMeansFewerSlots) {
  SharingSpace space1024(block_.sharedMemory(), mem_, 1024, 32);
  SharingSpace space2048(block_.sharedMemory(), mem_, 2048, 32);
  EXPECT_LT(space1024.slotsPerGroup(16), space2048.slotsPerGroup(16));
}

TEST_F(SharingTest, ShareAndFetchRoundTrip) {
  SharingSpace space(block_.sharedMemory(), mem_, 2048, 32);
  int a = 1;
  int b = 2;
  void** area = space.beginSharing(t(), /*group=*/3, /*numGroups=*/8, 2);
  ASSERT_NE(area, nullptr);
  space.storeArg(t(), 3, area, 0, &a);
  space.storeArg(t(), 3, area, 1, &b);
  void** fetched = space.fetchArgs(t(), 3);
  EXPECT_EQ(fetched, area);
  EXPECT_EQ(fetched[0], &a);
  EXPECT_EQ(fetched[1], &b);
  EXPECT_FALSE(space.overflowed(3));
  space.endSharing(t(), 3);
}

TEST_F(SharingTest, GroupSlicesAreDisjoint) {
  SharingSpace space(block_.sharedMemory(), mem_, 2048, 32);
  const uint32_t slots = space.slotsPerGroup(4);
  void** a0 = space.beginSharing(t(), 0, 4, slots);
  void** a1 = space.beginSharing(t(), 1, 4, slots);
  void** a3 = space.beginSharing(t(), 3, 4, slots);
  EXPECT_EQ(a1, a0 + slots);
  EXPECT_EQ(a3, a0 + 3 * slots);
  space.endSharing(t(), 0);
  space.endSharing(t(), 1);
  space.endSharing(t(), 3);
}

TEST_F(SharingTest, OverflowGoesToGlobalMemory) {
  SharingSpace space(block_.sharedMemory(), mem_, 2048, 64);
  const uint32_t slots = space.slotsPerGroup(64);  // small slices
  const size_t global_before = mem_.bytesInUse();
  void** area = space.beginSharing(t(), 5, 64, slots + 1);
  ASSERT_NE(area, nullptr);
  EXPECT_TRUE(space.overflowed(5));
  EXPECT_GT(mem_.bytesInUse(), global_before);
  EXPECT_EQ(space.overflowCount(), 1u);
  EXPECT_EQ(t().counters().get(Counter::kSharingSpaceOverflow), 1u);
  space.endSharing(t(), 5);
  EXPECT_EQ(mem_.bytesInUse(), global_before);  // overflow released
  EXPECT_FALSE(space.overflowed(5));
}

TEST_F(SharingTest, OverflowChargesGlobalStores) {
  SharingSpace space(block_.sharedMemory(), mem_, 2048, 64);
  const uint32_t slots = space.slotsPerGroup(64);
  void** area = space.beginSharing(t(), 0, 64, slots + 4);
  int v = 0;
  const uint64_t global_stores_before =
      t().counters().get(Counter::kGlobalStore);
  space.storeArg(t(), 0, area, 0, &v);
  EXPECT_EQ(t().counters().get(Counter::kGlobalStore),
            global_stores_before + 1);
  space.endSharing(t(), 0);
}

TEST_F(SharingTest, InSpaceSharingChargesSharedStores) {
  SharingSpace space(block_.sharedMemory(), mem_, 2048, 8);
  void** area = space.beginSharing(t(), 0, 8, 2);
  int v = 0;
  const uint64_t shared_stores_before =
      t().counters().get(Counter::kSharedStore);
  space.storeArg(t(), 0, area, 0, &v);
  EXPECT_EQ(t().counters().get(Counter::kSharedStore),
            shared_stores_before + 1);
  EXPECT_GT(t().counters().get(Counter::kPayloadArgCopy), 0u);
  space.endSharing(t(), 0);
}

TEST_F(SharingTest, TeamSharingUsesReserve) {
  SharingSpace space(block_.sharedMemory(), mem_, 2048, 8);
  int v = 9;
  void** area = space.beginTeamSharing(t(), 4);
  ASSERT_NE(area, nullptr);
  space.storeArg(t(), 0, area, 0, &v);
  EXPECT_EQ(space.fetchTeamArgs(t()), area);
  space.endTeamSharing(t());
}

TEST_F(SharingTest, TeamSharingOverflowsBeyondReserve) {
  SharingSpace space(block_.sharedMemory(), mem_, 2048, 8);
  // Reserve is 128 bytes = 16 slots; ask for more.
  const size_t global_before = mem_.bytesInUse();
  void** area = space.beginTeamSharing(t(), 20);
  ASSERT_NE(area, nullptr);
  EXPECT_GT(mem_.bytesInUse(), global_before);
  space.endTeamSharing(t());
  EXPECT_EQ(mem_.bytesInUse(), global_before);
}

TEST_F(SharingTest, ZeroSizedSpaceAlwaysOverflows) {
  SharingSpace space(block_.sharedMemory(), mem_, 0, 4);
  void** area = space.beginSharing(t(), 0, 4, 1);
  ASSERT_NE(area, nullptr);
  EXPECT_TRUE(space.overflowed(0));
  space.endSharing(t(), 0);
}

TEST_F(SharingTest, OversizedRequestDegradesToOverflowOnly) {
  // Bigger than the whole scratchpad: the constructor warns and keeps
  // working with size 0.
  SharingSpace space(block_.sharedMemory(), mem_,
                     static_cast<uint32_t>(block_.sharedMemory().capacity()) +
                         4096,
                     4);
  EXPECT_EQ(space.sizeBytes(), 0u);
  void** area = space.beginSharing(t(), 1, 4, 2);
  ASSERT_NE(area, nullptr);
  EXPECT_TRUE(space.overflowed(1));
  space.endSharing(t(), 1);
}

TEST_F(SharingTest, ManyGroupsFewSlotsEach) {
  SharingSpace space(block_.sharedMemory(), mem_, 2048, 64);
  // Paper: "In a case where a large number of SIMD groups are used the
  // variable sharing space is less likely to be able to fit all
  // variables" — with 64 groups each slice has (1920/64)/8 = 3 slots.
  EXPECT_EQ(space.slotsPerGroup(64), 3u);
  void** ok = space.beginSharing(t(), 0, 64, 3);
  EXPECT_FALSE(space.overflowed(0));
  void** over = space.beginSharing(t(), 1, 64, 4);
  EXPECT_TRUE(space.overflowed(1));
  ASSERT_NE(ok, nullptr);
  ASSERT_NE(over, nullptr);
  space.endSharing(t(), 0);
  space.endSharing(t(), 1);
}

}  // namespace
}  // namespace simtomp::omprt
