// simprof metrics: process-wide named counters, gauges and histograms.
//
// A fixed catalog of runtime metrics (launches, tune-cache hits, fault
// injections, resilience retries, sharing-space high-water mark, ...)
// with Prometheus text exposition and a sorted-key JSON snapshot. All
// values derive from deterministic modeled quantities and every update
// is a commutative atomic add / max, so snapshots are byte-identical
// for any SIMTOMP_HOST_WORKERS.
//
// The catalog is the single source of truth: `simtomp_info --metrics`
// lists it, the registry allocates from it, and the writers iterate it
// — names cannot drift.
//
// SIMTOMP_METRICS=<path> arranges a dual dump of the global registry
// at process exit (for long fault/tune runs): Prometheus text at
// <path> and the JSON snapshot at <path>.json. `simtomp_info
// --metrics=prom|json` prints either format on demand.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <ostream>
#include <span>
#include <string_view>

namespace simtomp::simprof {

enum class MetricType : uint8_t { kCounter = 0, kGauge, kHistogram };

[[nodiscard]] std::string_view metricTypeName(MetricType type);

/// One catalog entry: stable name (Prometheus conventions), kind and a
/// one-line description shared with `simtomp_info --metrics`.
struct MetricDef {
  std::string_view name;
  MetricType type = MetricType::kCounter;
  std::string_view help;
};

/// The full metric catalog, in exposition order.
[[nodiscard]] std::span<const MetricDef> allMetricDefs();

// Metric names (use these with the registry; typos become link errors
// at the call site instead of silently minting new series).
namespace metric {
inline constexpr std::string_view kLaunchesTotal = "simtomp_launches_total";
inline constexpr std::string_view kLaunchFailuresTotal =
    "simtomp_launch_failures_total";
inline constexpr std::string_view kLaunchCycles = "simtomp_launch_cycles";
inline constexpr std::string_view kCheckFindingsTotal =
    "simtomp_check_findings_total";
inline constexpr std::string_view kFaultInjectionsTotal =
    "simtomp_fault_injections_total";
inline constexpr std::string_view kWatchdogTimeoutsTotal =
    "simtomp_watchdog_timeouts_total";
inline constexpr std::string_view kTuneCacheHitsTotal =
    "simtomp_tune_cache_hits_total";
inline constexpr std::string_view kTuneCacheMissesTotal =
    "simtomp_tune_cache_misses_total";
inline constexpr std::string_view kTuneTrialsTotal =
    "simtomp_tune_trials_total";
inline constexpr std::string_view kResilienceRetriesTotal =
    "simtomp_resilience_retries_total";
inline constexpr std::string_view kResilienceModeFallbacksTotal =
    "simtomp_resilience_mode_fallbacks_total";
inline constexpr std::string_view kResilienceHostSerialTotal =
    "simtomp_resilience_host_serial_total";
inline constexpr std::string_view kSharingHighWaterBytes =
    "simtomp_sharing_space_high_water_bytes";
inline constexpr std::string_view kSharingOverflowsTotal =
    "simtomp_sharing_overflows_total";
// simserve launch-service metrics (service-level; per-tenant breakdowns
// live in simserve::TenantStats, which the fixed catalog cannot hold).
inline constexpr std::string_view kServeRequestsTotal =
    "simtomp_serve_requests_total";
inline constexpr std::string_view kServeAcceptedTotal =
    "simtomp_serve_accepted_total";
inline constexpr std::string_view kServeShedTotal =
    "simtomp_serve_shed_total";
inline constexpr std::string_view kServeBatchesTotal =
    "simtomp_serve_batches_total";
inline constexpr std::string_view kServeMigrationsTotal =
    "simtomp_serve_migrations_total";
inline constexpr std::string_view kServeQueueDepthPeak =
    "simtomp_serve_queue_depth_peak";
inline constexpr std::string_view kServeInFlightPeak =
    "simtomp_serve_inflight_peak";
inline constexpr std::string_view kServeLatencyCycles =
    "simtomp_serve_latency_cycles";
// simserve SLO / resilience metrics (PR 9): deadline admission, retry
// budgets, circuit breakers, brownout shedding and chaos campaigns.
inline constexpr std::string_view kServeDeadlineShedTotal =
    "simtomp_serve_deadline_shed_total";
inline constexpr std::string_view kServeDeadlineHitTotal =
    "simtomp_serve_deadline_hit_total";
inline constexpr std::string_view kServeDeadlineMissTotal =
    "simtomp_serve_deadline_miss_total";
inline constexpr std::string_view kServeRetryBackoffCycles =
    "simtomp_serve_retry_backoff_cycles";
inline constexpr std::string_view kServeRetriesExhaustedTotal =
    "simtomp_serve_retries_exhausted_total";
inline constexpr std::string_view kServeBreakerTripsTotal =
    "simtomp_serve_breaker_trips_total";
inline constexpr std::string_view kServeBrownoutShedTotal =
    "simtomp_serve_brownout_shed_total";
inline constexpr std::string_view kServeChaosViolationsTotal =
    "simtomp_serve_chaos_violations_total";
// simserve request-scoped tracing (PR 10): flight-recorder volume.
inline constexpr std::string_view kServeTraceEventsTotal =
    "simtomp_serve_trace_events_total";
inline constexpr std::string_view kServeTraceDroppedTotal =
    "simtomp_serve_trace_dropped_total";
// simfuzz differential-fuzzing metrics.
inline constexpr std::string_view kFuzzProgramsTotal =
    "simtomp_fuzz_programs_total";
inline constexpr std::string_view kFuzzRunsTotal = "simtomp_fuzz_runs_total";
inline constexpr std::string_view kFuzzDivergencesTotal =
    "simtomp_fuzz_divergences_total";
inline constexpr std::string_view kFuzzMinimizeStepsTotal =
    "simtomp_fuzz_minimize_steps_total";
}  // namespace metric

/// Process-wide registry over the fixed catalog. Thread-safe: counters
/// and histogram cells are atomic adds, gauges are atomic fetch-max.
class MetricsRegistry {
 public:
  /// Histogram buckets: upper bounds 4^1 .. 4^14 cycles, plus +Inf.
  static constexpr size_t kHistogramBuckets = 15;
  /// Catalog size (static_asserted against allMetricDefs()).
  static constexpr size_t kNumMetrics = 36;

  static MetricsRegistry& global();

  /// Counter increment (no-op with a warning for unknown names).
  void add(std::string_view name, uint64_t delta = 1);
  /// Gauge high-water update (atomic max).
  void gaugeMax(std::string_view name, uint64_t value);
  /// Histogram observation.
  void observe(std::string_view name, uint64_t value);

  /// Current counter/gauge value, or a histogram's observation count.
  [[nodiscard]] uint64_t value(std::string_view name) const;
  /// A histogram's sum of observations.
  [[nodiscard]] uint64_t histogramSum(std::string_view name) const;

  /// Prometheus text exposition (HELP/TYPE + samples, catalog order).
  void writePrometheus(std::ostream& out) const;
  /// JSON snapshot, keys sorted (catalog names are already sorted per
  /// section; the writer sorts globally to guarantee it).
  void writeJson(std::ostream& out) const;

  /// Zero every value (tests; not thread-safe against concurrent use).
  void reset();

 private:
  MetricsRegistry();

  struct Cell {
    std::atomic<uint64_t> value{0};
    // Histogram-only state (unused for counters/gauges).
    std::array<std::atomic<uint64_t>, kHistogramBuckets> buckets{};
    std::atomic<uint64_t> sum{0};
  };

  [[nodiscard]] int indexOf(std::string_view name) const;

  std::array<Cell, kNumMetrics> cells_;
};

}  // namespace simtomp::simprof
