// simcheck: correctness checking for the simulator (reports).
//
// The simulator sees every memory access, every barrier arrival and
// every sharing-space handout, so it can detect precisely — not
// probabilistically — the bug classes that plague GPU OpenMP runtimes:
// data races, barrier divergence, and sharing-space protocol misuse.
// This header defines the user-facing surface: how checking is
// requested (CheckConfig + the SIMTOMP_CHECK environment knob) and how
// findings come back (CheckReport, a per-launch structured summary that
// tests assert on and Device::launch can turn into a hard error).
//
// The subsystem deliberately sits *below* gpusim in the build: it
// depends only on simtomp_support, and its instrumentation API speaks
// plain integers and pointers, so gpusim/omprt can link it without a
// dependency cycle.
#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace simtomp::simcheck {

/// How a launch should be checked.
enum class CheckMode : uint8_t {
  kAuto = 0,  ///< resolve from SIMTOMP_CHECK env var (default: off)
  kOff,       ///< no checking, zero overhead (one null-pointer branch)
  kReport,    ///< collect findings into Device::lastCheckReport()
  kFatal,     ///< additionally fail the launch when findings exist
};

/// Per-launch checking configuration; rides on gpusim::LaunchConfig the
/// same way hostWorkers does (plumbed through TargetConfig/LaunchSpec).
struct CheckConfig {
  CheckMode mode = CheckMode::kAuto;
  /// Findings beyond this many are counted but not stored verbatim.
  uint32_t maxDiagnostics = 16;
};

/// Classes of findings, in report order.
enum class DiagKind : uint8_t {
  kDataRace = 0,           ///< intra-block unsynchronized conflict
  kCrossBlockRace,         ///< conflicting global accesses from two blocks
  kBarrierDivergence,      ///< threads stuck at different barriers
  kInconsistentMask,       ///< overlapping warp syncs with different masks
  kSharingOutOfSlice,      ///< storeArg index beyond the declared args
  kSharingUnpublishedRead, ///< fetchArgs before every arg was stored
  kSharingOverflowLeak,    ///< slot (and overflow block) never ended
  kUninitSharedRead,       ///< shared-memory read before any write
};
inline constexpr size_t kNumDiagKinds = 8;

[[nodiscard]] std::string_view diagKindName(DiagKind kind);
[[nodiscard]] std::string_view checkModeName(CheckMode mode);

/// Which address space a finding refers to.
enum class MemSpace : uint8_t { kNone = 0, kShared, kGlobal, kSynthetic };

/// Sentinel thread id for block-scope findings.
inline constexpr uint32_t kNoThread = 0xFFFFFFFFu;

/// One finding, with enough provenance to locate the bug: the block,
/// the thread(s) involved and the byte address within the space.
struct Diagnostic {
  DiagKind kind = DiagKind::kDataRace;
  uint32_t blockId = 0;
  uint32_t threadId = kNoThread;       ///< primary thread (kNoThread: block)
  uint32_t otherThreadId = kNoThread;  ///< second party, when applicable
  MemSpace space = MemSpace::kNone;
  uint64_t address = 0;  ///< byte offset within the space (granule-aligned)
  std::string detail;    ///< human-readable description

  [[nodiscard]] std::string toString() const;
};

/// Per-launch findings: exact counts per kind plus the first
/// maxDiagnostics diagnostics verbatim. Merged in block order under
/// host-parallel execution, so the stored diagnostics are deterministic
/// for any worker count.
struct CheckReport {
  std::array<uint64_t, kNumDiagKinds> counts{};
  std::vector<Diagnostic> diagnostics;
  uint32_t maxDiagnostics = 16;

  void add(Diagnostic diag);
  void merge(const CheckReport& other);

  [[nodiscard]] uint64_t count(DiagKind kind) const {
    return counts[static_cast<size_t>(kind)];
  }
  [[nodiscard]] uint64_t total() const;
  [[nodiscard]] bool clean() const { return total() == 0; }
  /// One-line "kind=count kind=count" summary (empty counts omitted).
  [[nodiscard]] std::string summary() const;
  /// Multi-line report with every stored diagnostic.
  [[nodiscard]] std::string toString() const;
};

/// How a CheckMode request resolved to an effective mode — kept so
/// `simtomp_info --check` and CI logs can show where the mode came from.
struct CheckResolution {
  CheckMode effective = CheckMode::kOff;  ///< never kAuto
  const char* source = "default";  ///< "explicit" | "SIMTOMP_CHECK" | "default"
  std::string envValue;            ///< raw env text when consulted
};

/// Resolve `requested` against the SIMTOMP_CHECK environment variable.
/// An explicit (non-auto) request always wins; kAuto consults the env
/// var afresh on every call (so one process can flip checking between
/// launches): "0"/"off" → off, "1"/"on"/"report" → report,
/// "2"/"fatal" → fatal; unset or unrecognized → off.
[[nodiscard]] CheckResolution resolveCheckMode(CheckMode requested);

}  // namespace simtomp::simcheck
