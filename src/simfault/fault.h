// simfault: deterministic fault injection for the simulator.
//
// Production GPU runtimes fail in ways a clean simulator never does:
// kernels trap mid-flight, devices drop off the bus, warp-level
// synchronization corrupts, and the sharing space runs dry under load.
// This subsystem makes those failures *reproducible*: a FaultPlan
// (parsed from the SIMTOMP_FAULT env var, a fault(...) directive
// clause, or explicit LaunchSpec plumbing — mirroring how check/tune
// are wired) names the site, block and step at which each fault fires,
// and the per-device Injector arms the plan at launch entry, in launch
// order, so the same plan produces the same failures for any
// SIMTOMP_HOST_WORKERS value.
//
// Like simcheck, the subsystem sits *below* gpusim in the build: it
// depends only on simtomp_support, and its arming API speaks plain
// integers, so gpusim/omprt/hostrt can all link it without a cycle.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "support/status.h"

namespace simtomp::simfault {

/// Named fault sites, in canonical plan order.
enum class FaultKind : uint8_t {
  kDeviceLostPre = 0,  ///< transient "device lost" before the launch starts
  kDeviceLostPost,     ///< transient "device lost" after blocks finished
  kTrap,               ///< kernel trap at scheduler step N inside a block
  kLivelock,           ///< barrier arrival spins forever (stays runnable)
  kBarrierCorrupt,     ///< barrier arrival dropped; the sync never releases
  kSharingExhausted,   ///< next sharing-space begin reports exhaustion
};
inline constexpr size_t kNumFaultKinds = 6;

/// Predicate restricting when a fault fires.
enum class FaultWhen : uint8_t {
  kAny = 0,  ///< fire regardless of launch shape
  kSimd,     ///< fire only when the launch runs with simdlen > 1
};

[[nodiscard]] std::string_view faultKindName(FaultKind kind);
[[nodiscard]] std::string_view faultWhenName(FaultWhen when);

/// One entry of a fault plan. `step` is the 1-based occurrence of the
/// site event at which the fault fires (scheduler step for kTrap,
/// barrier arrival for kLivelock/kBarrierCorrupt, sharing begin for
/// kSharingExhausted; ignored for the device-lost kinds). `count`
/// bounds how many *launch attempts* arm the fault (0 = every attempt),
/// which is what makes a count=1 device-lost transient: the retry arms
/// nothing and succeeds. `afterLaunch` skips the first N attempts.
struct FaultSpec {
  FaultKind kind = FaultKind::kTrap;
  FaultWhen when = FaultWhen::kAny;
  uint32_t block = 0;
  uint64_t step = 1;
  uint32_t count = 1;
  uint32_t afterLaunch = 0;

  /// Canonical "kind:key=value:..." text (stable key order; defaults
  /// omitted). Also the Injector's fired-count key.
  [[nodiscard]] std::string canonical() const;
};

/// A parsed plan: zero or more specs, plus whether the text was the
/// explicit "off"/"none" sentinel (which suppresses the env fallback —
/// the host-serial recovery stage uses it to strip faults).
struct FaultPlan {
  std::vector<FaultSpec> faults;
  bool explicitOff = false;

  [[nodiscard]] bool empty() const { return faults.empty(); }
  [[nodiscard]] std::string canonical() const;

  /// Parse "kind[:key=value]...[;kind...]" (see docs/FAULTS.md).
  /// Empty, "off" and "none" parse to an empty plan.
  static Result<FaultPlan> parse(std::string_view text);
};

/// Per-launch fault request; rides gpusim::LaunchConfig the same way
/// CheckConfig does. `spec` empty means "consult SIMTOMP_FAULT".
/// `simdActive` is filled by the launch layer (omprt) so when=simd
/// predicates can be evaluated at arm time.
struct FaultConfig {
  std::string spec;
  bool simdActive = false;
};

/// Where a fault spec came from, for logs and simtomp_info.
struct FaultResolution {
  std::string spec;                ///< effective plan text (may be empty)
  const char* source = "default";  ///< "explicit" | "SIMTOMP_FAULT" | "default"
  std::string envValue;            ///< raw env text when consulted
};

/// Resolve `requested` against SIMTOMP_FAULT. A non-empty request
/// always wins ("off"/"none" resolve to the empty plan without
/// consulting the env); an empty request reads the env var afresh.
[[nodiscard]] FaultResolution resolveFaultSpec(const std::string& requested);

/// Sentinel: watchdog explicitly disabled on the launch config.
inline constexpr uint64_t kWatchdogOff = UINT64_MAX;
/// Default per-block step budget when the watchdog resolves to auto:
/// far above any legitimate kernel in this repo (the largest bench
/// block runs ~2e5 scheduler steps) yet cheap to hit in a livelock.
inline constexpr uint64_t kDefaultWatchdogSteps = uint64_t{1} << 26;

/// Where the watchdog budget came from.
struct WatchdogResolution {
  uint64_t steps = 0;              ///< 0 = watchdog disabled
  const char* source = "default";  ///< "explicit"|"SIMTOMP_WATCHDOG"|"default"
  std::string envValue;
};

/// Resolve a per-launch step budget. `requested` 0 means auto:
/// consult SIMTOMP_WATCHDOG ("off"/"0" disables, a number is the
/// budget), else use kDefaultWatchdogSteps. kWatchdogOff disables
/// explicitly. Any other value is the explicit budget.
[[nodiscard]] WatchdogResolution resolveWatchdogSteps(uint64_t requested);

/// Faults armed for one specific block of one launch attempt. The
/// BlockEngine holds a pointer to this for the duration of the block,
/// so LaunchArm keeps the storage stable.
struct BlockFaultArm {
  bool trap = false;
  uint64_t trapStep = 1;
  bool livelock = false;
  uint64_t livelockArrival = 1;
  bool barrierCorrupt = false;
  uint64_t corruptArrival = 1;
  bool sharingExhausted = false;
  uint64_t sharingBegin = 1;

  [[nodiscard]] bool any() const {
    return trap || livelock || barrierCorrupt || sharingExhausted;
  }
};

/// Everything armed for one launch attempt, produced by Injector::arm.
struct LaunchArm {
  bool lostPre = false;
  bool lostPost = false;
  /// Sorted by block id; storage is stable for the launch's lifetime.
  std::vector<std::pair<uint32_t, BlockFaultArm>> blockFaults;

  [[nodiscard]] const BlockFaultArm* forBlock(uint32_t block) const;
  [[nodiscard]] bool anything() const {
    return lostPre || lostPost || !blockFaults.empty();
  }
};

/// Per-device fault injector. All plan state is consumed at arm time,
/// on the launching thread, in launch-attempt order — never from block
/// workers — so the (fault × policy) matrix is deterministic for any
/// host worker count. Device::reset() intentionally does NOT clear the
/// fired counts: a transient fault stays consumed across the reset, so
/// the retry heals.
class Injector {
 public:
  /// Arm `config` for the next launch attempt (the attempt ordinal
  /// advances even when nothing fires). Returns the armed faults, or
  /// kInvalidArgument for an unparsable plan.
  Result<LaunchArm> arm(const FaultConfig& config, uint32_t numBlocks);

  [[nodiscard]] uint64_t launchCount() const { return launch_ordinal_; }

 private:
  uint64_t launch_ordinal_ = 0;          ///< attempts armed so far
  std::map<std::string, uint64_t> fired_;  ///< canonical spec -> times armed
};

}  // namespace simtomp::simfault
