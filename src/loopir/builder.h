// The OpenMP-IR-Builder analog (paper section 4.1).
//
// Front-ends (our DSL, or tests acting as a front-end) drive lowering
// through exactly the contract the paper describes: they provide
//   1. a trip-count callback, and
//   2. a loop-body callback,
// and the builder outlines the body, packs the payload and emits the
// runtime call for the requested worksharing construct. Loop scheduling
// then happens inside the runtime, not in the front-end.
#pragma once

#include <cstdint>
#include <functional>

#include "loopir/canonical_loop.h"
#include "loopir/outline.h"
#include "omprt/context.h"
#include "omprt/runtime.h"

namespace simtomp::loopir {

enum class WorkshareKind : uint8_t {
  kDistribute,  ///< split across teams
  kFor,         ///< split across the team's OpenMP threads (SIMD groups)
  kSimd,        ///< split across the lanes of a SIMD group
};

/// Trip-count callback: evaluated at the worksharing construct, may
/// depend on runtime state (e.g. CSR row extents).
using TripCountCallback = std::function<uint64_t(omprt::OmpContext&)>;

class IrBuilder {
 public:
  /// Lower one worksharing loop. The body callback runs once per
  /// assigned logical iteration; ivAt()-style de-normalization is the
  /// front-end's business (compose it into `body`).
  ///
  /// kDistribute executes inline (index arithmetic only); kFor and
  /// kSimd outline `body` and hand it to the runtime, exactly like the
  /// paper's loop-task flow.
  template <typename Body>
  static void createWorkshareLoop(omprt::OmpContext& ctx, WorkshareKind kind,
                                  const TripCountCallback& tripCount,
                                  Body&& body,
                                  bool registerInCascade = true) {
    const uint64_t trip = tripCount(ctx);
    switch (kind) {
      case WorkshareKind::kDistribute: {
        const omprt::rt::Range r = omprt::rt::distributeStatic(ctx, trip);
        for (uint64_t iv = r.begin; iv < r.end; ++iv) {
          ctx.gpu().work(2);
          body(ctx, iv);
        }
        return;
      }
      case WorkshareKind::kFor: {
        auto outlined = outlineLoop(ctx, body, registerInCascade);
        omprt::rt::workshareFor(ctx, trip, outlined.fn,
                                outlined.payload.data());
        return;
      }
      case WorkshareKind::kSimd: {
        auto outlined = outlineLoop(ctx, body, registerInCascade);
        omprt::rt::simd(ctx, outlined.fn, trip, outlined.payload.data(),
                        outlined.payload.size());
        return;
      }
    }
  }

  /// Canonical-loop overload: the trip count comes from the normalized
  /// descriptor and the body receives the *user* induction variable.
  template <typename Body>
  static void createWorkshareLoop(omprt::OmpContext& ctx, WorkshareKind kind,
                                  const CanonicalLoop& loop, Body&& body,
                                  bool registerInCascade = true) {
    auto denormalized = [&loop, &body](omprt::OmpContext& c, uint64_t logical) {
      body(c, loop.ivAt(logical));
    };
    createWorkshareLoop(
        ctx, kind, [&loop](omprt::OmpContext&) { return loop.tripCount(); },
        denormalized, registerInCascade);
  }
};

}  // namespace simtomp::loopir
