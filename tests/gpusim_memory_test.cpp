// Unit tests for the device memory subsystem: free-list allocator,
// DeviceMemory, SharedMemory, and the typed span views.
#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "gpusim/arch.h"
#include "gpusim/block.h"
#include "gpusim/device.h"
#include "gpusim/memory.h"
#include "support/rng.h"

namespace simtomp::gpusim {
namespace {

TEST(FreeListAllocatorTest, BasicAllocateFree) {
  FreeListAllocator alloc(1024);
  auto a = alloc.allocate(100, 16);
  ASSERT_TRUE(a.isOk());
  EXPECT_EQ(a.value() % 16, 0u);
  EXPECT_EQ(alloc.bytesInUse(), 100u);
  EXPECT_TRUE(alloc.free(a.value()).isOk());
  EXPECT_EQ(alloc.bytesInUse(), 0u);
}

TEST(FreeListAllocatorTest, ZeroBytesRejected) {
  FreeListAllocator alloc(64);
  EXPECT_FALSE(alloc.allocate(0, 8).isOk());
}

TEST(FreeListAllocatorTest, BadAlignmentRejected) {
  FreeListAllocator alloc(64);
  EXPECT_FALSE(alloc.allocate(8, 3).isOk());
  EXPECT_FALSE(alloc.allocate(8, 0).isOk());
}

TEST(FreeListAllocatorTest, ExhaustionReported) {
  FreeListAllocator alloc(128);
  auto a = alloc.allocate(128, 1);
  ASSERT_TRUE(a.isOk());
  auto b = alloc.allocate(1, 1);
  ASSERT_FALSE(b.isOk());
  EXPECT_EQ(b.status().code(), StatusCode::kResourceExhausted);
}

TEST(FreeListAllocatorTest, DoubleFreeDetected) {
  FreeListAllocator alloc(128);
  auto a = alloc.allocate(64, 8);
  ASSERT_TRUE(a.isOk());
  EXPECT_TRUE(alloc.free(a.value()).isOk());
  EXPECT_FALSE(alloc.free(a.value()).isOk());
}

TEST(FreeListAllocatorTest, UnknownFreeDetected) {
  FreeListAllocator alloc(128);
  EXPECT_FALSE(alloc.free(12).isOk());
}

TEST(FreeListAllocatorTest, CoalescingAllowsFullReuse) {
  FreeListAllocator alloc(256);
  std::vector<DevPtr> ptrs;
  for (int i = 0; i < 4; ++i) {
    auto p = alloc.allocate(64, 1);
    ASSERT_TRUE(p.isOk());
    ptrs.push_back(p.value());
  }
  // Free out of order; coalescing must restore one 256-byte block.
  EXPECT_TRUE(alloc.free(ptrs[1]).isOk());
  EXPECT_TRUE(alloc.free(ptrs[3]).isOk());
  EXPECT_TRUE(alloc.free(ptrs[0]).isOk());
  EXPECT_TRUE(alloc.free(ptrs[2]).isOk());
  auto big = alloc.allocate(256, 1);
  EXPECT_TRUE(big.isOk());
}

TEST(FreeListAllocatorTest, AlignmentPaddingIsReusable) {
  FreeListAllocator alloc(256);
  auto small = alloc.allocate(4, 1);  // offset 0
  ASSERT_TRUE(small.isOk());
  auto aligned = alloc.allocate(64, 64);  // must skip to offset 64
  ASSERT_TRUE(aligned.isOk());
  EXPECT_EQ(aligned.value() % 64, 0u);
  // The padding gap [4,64) must still be allocatable.
  auto gap = alloc.allocate(32, 4);
  ASSERT_TRUE(gap.isOk());
  EXPECT_LT(gap.value(), 64u);
}

/// Property: randomized allocate/free churn never corrupts bookkeeping
/// and always recovers the full arena.
class AllocatorChurnProperty : public ::testing::TestWithParam<uint64_t> {};

TEST_P(AllocatorChurnProperty, ChurnAndRecover) {
  FreeListAllocator alloc(1 << 16);
  Rng rng(GetParam());
  std::vector<DevPtr> live;
  for (int step = 0; step < 2000; ++step) {
    if (live.empty() || rng.nextBelow(2) == 0) {
      const size_t bytes = 1 + rng.nextBelow(512);
      const size_t align = size_t{1} << rng.nextBelow(7);
      auto p = alloc.allocate(bytes, align);
      if (p.isOk()) {
        EXPECT_EQ(p.value() % align, 0u);
        live.push_back(p.value());
      }
    } else {
      const size_t idx = rng.nextBelow(live.size());
      EXPECT_TRUE(alloc.free(live[idx]).isOk());
      live[idx] = live.back();
      live.pop_back();
    }
  }
  for (DevPtr p : live) EXPECT_TRUE(alloc.free(p).isOk());
  EXPECT_EQ(alloc.bytesInUse(), 0u);
  EXPECT_EQ(alloc.liveAllocations(), 0u);
  auto full = alloc.allocate(1 << 16, 1);
  EXPECT_TRUE(full.isOk());
}

INSTANTIATE_TEST_SUITE_P(Seeds, AllocatorChurnProperty,
                         ::testing::Values(1u, 2u, 3u, 17u, 99u));

TEST(DeviceMemoryTest, RawAccessRoundTrips) {
  DeviceMemory mem(4096);
  auto p = mem.allocate(sizeof(double) * 4, alignof(double));
  ASSERT_TRUE(p.isOk());
  auto* d = reinterpret_cast<double*>(mem.raw(p.value()));
  d[0] = 1.5;
  d[3] = -2.5;
  EXPECT_EQ(reinterpret_cast<const double*>(mem.raw(p.value()))[0], 1.5);
  EXPECT_EQ(reinterpret_cast<const double*>(mem.raw(p.value()))[3], -2.5);
}

TEST(DeviceMemoryTest, TracksUsage) {
  DeviceMemory mem(4096);
  EXPECT_EQ(mem.bytesInUse(), 0u);
  auto a = mem.allocate(128);
  auto b = mem.allocate(256);
  ASSERT_TRUE(a.isOk());
  ASSERT_TRUE(b.isOk());
  EXPECT_EQ(mem.bytesInUse(), 384u);
  EXPECT_EQ(mem.liveAllocations(), 2u);
  EXPECT_TRUE(mem.free(a.value()).isOk());
  EXPECT_EQ(mem.bytesInUse(), 256u);
}

TEST(SharedMemoryTest, AllocateFreeReuse) {
  SharedMemory shared(1024);
  std::byte* a = shared.allocate(512, 16);
  ASSERT_NE(a, nullptr);
  std::byte* b = shared.allocate(512, 16);
  ASSERT_NE(b, nullptr);
  EXPECT_EQ(shared.allocate(16, 16), nullptr);  // full
  EXPECT_TRUE(shared.free(a).isOk());
  std::byte* c = shared.allocate(256, 16);
  EXPECT_NE(c, nullptr);
  EXPECT_TRUE(shared.free(b).isOk());
  EXPECT_TRUE(shared.free(c).isOk());
  EXPECT_EQ(shared.used(), 0u);
}

TEST(SharedMemoryTest, ForeignPointerRejected) {
  SharedMemory shared(256);
  std::byte local;
  EXPECT_FALSE(shared.free(&local).isOk());
}

// ---- Typed spans charge the cost model ----

class SpanChargingTest : public ::testing::Test {
 protected:
  SpanChargingTest()
      : arch_(ArchSpec::testTiny()),
        mem_(1 << 20),
        block_(arch_, cost_, mem_, 0, 1, 32) {}

  ArchSpec arch_;
  CostModel cost_;
  DeviceMemory mem_;
  BlockEngine block_;
};

TEST_F(SpanChargingTest, GlobalGetChargesGlobalLoad) {
  double storage[4] = {1, 2, 3, 4};
  GlobalSpan<double> span(storage, 4);
  uint64_t cycles = 0;
  uint64_t loads = 0;
  block_.scheduler().spawn([&] {
    ThreadCtx& t = block_.thread(0);
    EXPECT_EQ(span.get(t, 2), 3.0);
    cycles = t.busy();
    loads = t.counters().get(Counter::kGlobalLoad);
  });
  // Run only thread 0's fiber through a direct scheduler run.
  ASSERT_TRUE(block_.scheduler().run().isOk());
  EXPECT_EQ(cycles, cost_.globalAccess);
  EXPECT_EQ(loads, 1u);
}

TEST_F(SpanChargingTest, GlobalSetAndAtomicCharge) {
  double storage[2] = {0, 0};
  GlobalSpan<double> span(storage, 2);
  block_.scheduler().spawn([&] {
    ThreadCtx& t = block_.thread(0);
    span.set(t, 0, 5.0);
    EXPECT_EQ(span.atomicAdd(t, 0, 2.0), 5.0);
    EXPECT_EQ(span.raw(0), 7.0);
    EXPECT_EQ(t.counters().get(Counter::kGlobalStore), 1u);
    EXPECT_EQ(t.counters().get(Counter::kAtomicRmw), 1u);
    EXPECT_EQ(t.busy(), cost_.globalAccess + cost_.atomicRmw);
  });
  ASSERT_TRUE(block_.scheduler().run().isOk());
}

TEST_F(SpanChargingTest, SharedSpanCharges) {
  double storage[2] = {0, 0};
  SharedSpan<double> span(storage, 2);
  block_.scheduler().spawn([&] {
    ThreadCtx& t = block_.thread(0);
    span.set(t, 1, 9.0);
    EXPECT_EQ(span.get(t, 1), 9.0);
    EXPECT_EQ(t.counters().get(Counter::kSharedStore), 1u);
    EXPECT_EQ(t.counters().get(Counter::kSharedLoad), 1u);
    EXPECT_EQ(t.busy(), 2 * cost_.sharedAccess);
  });
  ASSERT_TRUE(block_.scheduler().run().isOk());
}

TEST(GlobalSpanTest, SubspanViewsSameStorage) {
  double storage[8] = {};
  GlobalSpan<double> span(storage, 8);
  auto sub = span.subspan(2, 4);
  EXPECT_EQ(sub.size(), 4u);
  sub.raw(0) = 42.0;
  EXPECT_EQ(storage[2], 42.0);
}

TEST(DeviceTest, AllocateArrayReturnsTypedView) {
  Device dev(ArchSpec::testTiny(), CostModel{}, 1 << 20);
  auto arr = dev.allocateArray<uint32_t>(100);
  ASSERT_TRUE(arr.isOk());
  EXPECT_EQ(arr.value().size(), 100u);
  arr.value().raw(99) = 7;
  EXPECT_EQ(arr.value().raw(99), 7u);
  EXPECT_TRUE(dev.freeArray(arr.value().data()).isOk());
  EXPECT_EQ(dev.memory().bytesInUse(), 0u);
}

TEST(DeviceMemoryTest, ConcurrentAllocFreeStress) {
  // Host-parallel block execution allocates from the device allocator
  // on multiple threads (SharingSpace overflow, user allocations).
  // Hammer allocate/free from 8 threads; accounting must balance and
  // the free list must survive intact.
  DeviceMemory memory(1 << 22);
  constexpr int kThreads = 8;
  constexpr int kRounds = 200;
  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int tid = 0; tid < kThreads; ++tid) {
    threads.emplace_back([&, tid] {
      std::vector<DevPtr> mine;
      for (int round = 0; round < kRounds; ++round) {
        const size_t bytes = 64 + 32 * ((tid + round) % 13);
        auto ptr = memory.allocate(bytes, 16);
        if (!ptr.isOk()) {
          failures++;
          continue;
        }
        mine.push_back(ptr.value());
        // Free in a staggered pattern so frees interleave with other
        // threads' allocations (exercises coalescing under the lock).
        if (mine.size() > 4) {
          if (!memory.free(mine.front()).isOk()) failures++;
          mine.erase(mine.begin());
        }
      }
      for (DevPtr p : mine) {
        if (!memory.free(p).isOk()) failures++;
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(failures.load(), 0);
  EXPECT_EQ(memory.bytesInUse(), 0u);
  EXPECT_EQ(memory.liveAllocations(), 0u);
}

TEST(DeviceMemoryTest, ConcurrentAtomicAddLosesNoUpdates) {
  // GlobalSpan::atomicAdd is the only write path concurrent blocks
  // share; contended fetch-adds from raw host threads must all land.
  DeviceMemory memory(1 << 16);
  auto ptr = memory.allocate(sizeof(uint64_t) * 4, 16);
  ASSERT_TRUE(ptr.isOk());
  auto* cells = reinterpret_cast<uint64_t*>(memory.raw(ptr.value()));
  for (int i = 0; i < 4; ++i) cells[i] = 0;

  constexpr int kThreads = 8;
  constexpr uint64_t kAddsPerThread = 5000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int tid = 0; tid < kThreads; ++tid) {
    threads.emplace_back([&, tid] {
      for (uint64_t i = 0; i < kAddsPerThread; ++i) {
        std::atomic_ref<uint64_t>(cells[tid % 4]).fetch_add(
            1, std::memory_order_relaxed);
      }
    });
  }
  for (auto& t : threads) t.join();
  for (int i = 0; i < 4; ++i) {
    EXPECT_EQ(cells[i], 2 * kAddsPerThread) << "cell " << i;
  }
  ASSERT_TRUE(memory.free(ptr.value()).isOk());
}

}  // namespace
}  // namespace simtomp::gpusim
