// simtune: cost-model-driven autotuner for the launch space.
//
// The paper leaves simdlen (and the rest of the launch shape) to the
// programmer; its evaluation hand-picks per-benchmark configurations.
// simtune automates that choice for the simulator: given a kernel it
// can re-run, it searches the launch space — SIMD group size, teams
// mode, parallel mode, team count and width, dynamic-schedule chunk —
// by running trial launches and ranking candidates on *modeled cycles*
// (gpusim::KernelStats), the same metric the paper's figures report.
//
// Determinism contract (DESIGN.md §3.3): trial launches land in
// per-candidate slots and the winner is the minimum-cycle candidate
// with ties broken by enumeration order, so the chosen configuration —
// and the serialized cache — is bit-identical for any host worker
// count. Trials fan out over gpusim::BlockExecutor::global(), each in
// its own scratch Device, so independent candidates evaluate on
// separate host workers.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "gpusim/device.h"
#include "omprt/target.h"
#include "simcheck/report.h"
#include "simtune/cache.h"
#include "support/status.h"

namespace simtomp::simtune {

/// How a launch wants tuning, mirroring simcheck::CheckMode.
enum class TuneMode : uint8_t {
  kAuto = 0,  ///< resolve from the SIMTOMP_TUNE env var (default: off)
  kOff,       ///< auto fields resolve heuristically; no cache, no trials
  kCache,     ///< resolve from the tuning cache; miss → heuristics
  kTune,      ///< resolve from the cache; miss → run a trial search
};

[[nodiscard]] std::string_view tuneModeName(TuneMode mode);

/// How a TuneMode request resolved — kept so `simtomp_info --tune` and
/// CI logs can show where the mode came from.
struct TuneResolution {
  TuneMode effective = TuneMode::kOff;  ///< never kAuto
  const char* source = "default";  ///< "explicit" | "SIMTOMP_TUNE" | "default"
  std::string envValue;            ///< raw env text when consulted
};

/// Resolve `requested` against the SIMTOMP_TUNE environment variable.
/// An explicit (non-auto) request always wins; kAuto consults the env
/// var afresh on every call: "0"/"off" → off, "1"/"on"/"cache" → cache,
/// "2"/"tune"/"trial" → tune; unset or unrecognized → off.
[[nodiscard]] TuneResolution resolveTuneMode(TuneMode requested);

/// One point of the launch space.
struct TuneCandidate {
  omprt::ExecMode teamsMode = omprt::ExecMode::kSPMD;
  omprt::ExecMode parallelMode = omprt::ExecMode::kSPMD;
  uint32_t numTeams = 1;
  uint32_t threadsPerTeam = 128;
  uint32_t simdlen = 1;
  uint64_t scheduleChunk = 0;

  [[nodiscard]] bool operator==(const TuneCandidate&) const = default;
  [[nodiscard]] std::string toString() const;
};

/// The search space, one vector per axis. enumerate() takes the cross
/// product and drops combinations the runtime would reject or silently
/// degrade (threadsPerTeam not a warp multiple or over the block limit,
/// simdlen not a power of two / over warpSize / over threadsPerTeam,
/// generic-SIMD on an architecture without warp-level barriers).
struct TuneAxes {
  std::vector<omprt::ExecMode> teamsModes;
  std::vector<omprt::ExecMode> parallelModes;
  std::vector<uint32_t> numTeams;
  std::vector<uint32_t> threadsPerTeam;
  std::vector<uint32_t> simdlens;
  std::vector<uint64_t> scheduleChunks;

  /// The default launch space for an architecture: both teams and
  /// parallel modes, team counts around the SM count, warp-multiple
  /// team widths, every power-of-two simdlen in [1, warpSize], and
  /// chunk 0 (runtime default).
  static TuneAxes defaults(const gpusim::ArchSpec& arch);

  /// Cross product in deterministic axis order (teamsMode outermost,
  /// scheduleChunk innermost), invalid combinations dropped.
  [[nodiscard]] std::vector<TuneCandidate> enumerate(
      const gpusim::ArchSpec& arch) const;
};

/// Evaluate one candidate: run the kernel under `candidate` on the
/// provided scratch device and return its stats. Called concurrently
/// from pool workers — it must create any workload state inside the
/// scratch device and must not touch shared mutable state. `check`
/// forwards the launch's checking request so trials can run checked.
using TrialFn = std::function<Result<gpusim::KernelStats>(
    gpusim::Device& scratch, const TuneCandidate& candidate,
    const simcheck::CheckConfig& check)>;

enum class TuneStrategy : uint8_t {
  kExhaustive,  ///< rank every enumerated candidate
  kHillClimb,   ///< budgeted multi-start coordinate descent (one start
                ///< per mode pair), memoized
};

[[nodiscard]] std::string_view tuneStrategyName(TuneStrategy strategy);

struct TuneRequest {
  TuneStrategy strategy = TuneStrategy::kExhaustive;
  /// Cap on trial launches (0 = unbounded). Exhaustive truncates the
  /// candidate list; hill-climb stops descending when the budget is
  /// spent and returns the best candidate seen.
  uint32_t maxTrials = 0;
  /// Host workers for trial fan-out (0 = auto via SIMTOMP_HOST_WORKERS;
  /// see gpusim::resolveHostWorkers). Affects wall-clock only.
  uint32_t hostWorkers = 0;
  /// Forwarded to every trial, so tuning can double as a check sweep.
  simcheck::CheckConfig check{};
  /// Trip count of the workload being tuned (cache bucket).
  uint64_t tripCount = 0;
  /// Re-tune even when the cache already has an entry.
  bool skipCache = false;
  /// Global-memory arena of each scratch Device. Much smaller than
  /// Device::kDefaultGlobalMem because the arena is eagerly allocated
  /// and several trial devices are alive at once.
  size_t scratchMemBytes = 64ull * 1024 * 1024;
};

struct TuneOutcome {
  TuneKey key;
  TunedShape shape;
  bool fromCache = false;
  uint32_t trialsRun = 0;
  /// Every evaluated (candidate, modeled cycles) in enumeration order;
  /// failed trials are omitted. Empty on a cache hit.
  std::vector<std::pair<TuneCandidate, uint64_t>> evaluated;
};

/// Copy a tuned shape into the auto fields of a TargetConfig. Explicit
/// (non-auto) fields are left alone, so a user who pins simdlen keeps
/// it even when the cached shape disagrees.
void applyShape(const TunedShape& shape, omprt::TargetConfig& config);

/// The autotuner. Thread-safe: the cache is internally locked and the
/// per-tune search state is local, so concurrent tune() calls (e.g.
/// from DeviceManager device threads) are fine.
class Tuner {
 public:
  /// A tuner over an explicit cache (shared so DeviceManager, CLI and
  /// tests can inspect the same instance).
  explicit Tuner(std::shared_ptr<TuneCache> cache);
  /// Convenience: a tuner whose cache path comes from resolveCachePath
  /// (SIMTOMP_TUNE_CACHE when set, else in-memory). Loads the file.
  Tuner();

  [[nodiscard]] TuneCache& cache() { return *cache_; }
  [[nodiscard]] const TuneCache& cache() const { return *cache_; }

  /// Search the launch space for `kernel`. Cache hit (unless
  /// request.skipCache) short-circuits with zero trial launches;
  /// otherwise trials fan out over BlockExecutor::global(), the winner
  /// is inserted into the cache and the cache file is rewritten.
  Result<TuneOutcome> tune(const std::string& kernel,
                           const gpusim::ArchSpec& arch,
                           const gpusim::CostModel& cost,
                           const TuneAxes& axes, const TrialFn& trial,
                           const TuneRequest& request);

  /// Tune a target region in place: candidates are applied to the auto
  /// fields of `config` and launched on `device` itself, *serially*
  /// (launches on one Device must not overlap). The region must
  /// tolerate re-execution — trial launches really run it, so outputs
  /// are overwritten and non-idempotent updates (atomic accumulation)
  /// repeat. On success `config`'s auto fields hold the winner.
  Result<TuneOutcome> tuneTarget(gpusim::Device& device,
                                 omprt::TargetConfig& config,
                                 const omprt::TargetRegionFn& region,
                                 const TuneRequest& request);

  /// Cache-only resolution for the launch path: when `config` has a
  /// tune key, auto fields and a cache entry, apply the entry and
  /// return true. Never runs trials.
  bool resolveConfig(const gpusim::ArchSpec& arch,
                     const gpusim::CostModel& cost,
                     omprt::TargetConfig& config);

  // Counters for simtomp_info --tune and the warm-cache tests.
  [[nodiscard]] uint64_t trialLaunches() const { return trial_launches_; }
  [[nodiscard]] uint64_t cacheHits() const { return cache_hits_; }
  [[nodiscard]] uint64_t cacheMisses() const { return cache_misses_; }

 private:
  Result<TuneOutcome> search(const TuneKey& key,
                             const gpusim::ArchSpec& arch,
                             const gpusim::CostModel& cost,
                             const TuneAxes& axes, const TrialFn& trial,
                             const TuneRequest& request);

  std::shared_ptr<TuneCache> cache_;
  std::atomic<uint64_t> trial_launches_{0};
  std::atomic<uint64_t> cache_hits_{0};
  std::atomic<uint64_t> cache_misses_{0};
};

}  // namespace simtomp::simtune
