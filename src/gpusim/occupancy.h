// Occupancy calculation: how many blocks of a given shape can be
// resident on one SM, and the resulting warp occupancy.
//
// Informational only — the timing model schedules blocks over SMs in
// waves — but it explains launch-configuration effects (e.g. the paper
// notes that increased shared-memory use from generic-SIMD variable
// sharing can reduce occupancy) and is reported with every kernel's
// statistics.
#pragma once

#include <cstdint>

#include "gpusim/arch.h"

namespace simtomp::gpusim {

struct OccupancyInfo {
  uint32_t threadsPerBlock = 0;
  uint32_t warpsPerBlock = 0;
  /// Resident-block bounds from each SM resource.
  uint32_t blocksPerSmByThreads = 0;
  uint32_t blocksPerSmByShared = 0;
  /// min of the bounds (0 if the block cannot run at all).
  uint32_t residentBlocksPerSm = 0;
  /// Resident warps / max resident warps on the SM, in [0, 1].
  double warpOccupancy = 0.0;
};

/// Compute occupancy for a block shape using `sharedBytesPerBlock` of
/// scratchpad (pass the high-water mark for a measured kernel).
OccupancyInfo computeOccupancy(const ArchSpec& arch, uint32_t threadsPerBlock,
                               uint32_t sharedBytesPerBlock);

}  // namespace simtomp::gpusim
