#include "gpusim/device.h"

#include <algorithm>
#include <vector>

#include "support/log.h"

namespace simtomp::gpusim {

Device::Device(ArchSpec arch, CostModel cost, size_t global_mem_bytes)
    : arch_(std::move(arch)), cost_(cost), memory_(global_mem_bytes) {
  const Status valid = arch_.validate();
  SIMTOMP_CHECK(valid.isOk(), "invalid ArchSpec: " + valid.toString());
}

Result<KernelStats> Device::launch(const LaunchConfig& config,
                                   const Kernel& kernel,
                                   const BlockSetupHook& setup) {
  if (config.numBlocks == 0) {
    return Status::invalidArgument("launch requires at least one block");
  }
  if (config.threadsPerBlock == 0 ||
      config.threadsPerBlock > arch_.maxThreadsPerBlock) {
    return Status::invalidArgument(
        "threadsPerBlock out of range for this architecture");
  }

  KernelStats stats;
  stats.numBlocks = config.numBlocks;
  stats.threadsPerBlock = config.threadsPerBlock;

  // Least-loaded SM placement; equal-load ties resolve round-robin.
  std::vector<uint64_t> sm_time(arch_.numSMs, 0);

  for (uint32_t b = 0; b < config.numBlocks; ++b) {
    BlockEngine engine(arch_, cost_, memory_, b, config.numBlocks,
                       config.threadsPerBlock);
    if (setup) setup(engine);
    Status status = engine.run(kernel);
    if (!status.isOk()) {
      return Status(status.code(), "block " + std::to_string(b) + ": " +
                                       status.message());
    }
    auto least = std::min_element(sm_time.begin(), sm_time.end());
    if (trace_ != nullptr) {
      trace_->recordBlock(b,
                          static_cast<uint32_t>(least - sm_time.begin()),
                          *least, engine.blockTime());
    }
    *least += engine.blockTime();
    stats.busyCycles += engine.busySum();
    stats.maxThreadCycles =
        std::max(stats.maxThreadCycles, engine.maxThreadTime());
    stats.peakSharedBytes = std::max<uint64_t>(
        stats.peakSharedBytes, engine.sharedMemory().peakUsed());
    stats.counters.merge(engine.counters());
  }

  stats.cycles = *std::max_element(sm_time.begin(), sm_time.end()) +
                 cost_.kernelLaunch;
  stats.waves = (config.numBlocks + arch_.numSMs - 1) / arch_.numSMs;
  stats.occupancy =
      computeOccupancy(arch_, config.threadsPerBlock,
                       static_cast<uint32_t>(stats.peakSharedBytes));
  ++launch_count_;
  if (trace_ != nullptr) {
    trace_->recordKernel("kernel #" + std::to_string(launch_count_),
                         stats.cycles);
  }
  SIMTOMP_DEBUG("kernel done: %s", stats.summary().c_str());
  return stats;
}

}  // namespace simtomp::gpusim
