// Device-side OpenMP runtime entry points (paper section 5).
//
// The function set mirrors the paper's runtime additions:
//
//   targetInit / targetDeinit   — __target_init and kernel teardown
//                                 (section 5.2): the divergence point
//                                 where generic-mode workers enter the
//                                 team state machine.
//   parallel                    — __parallel (Fig. 3): SPMD regions run
//                                 on every thread; generic regions run
//                                 on SIMD group leaders while workers
//                                 enter the SIMD state machine.
//   simd                        — __simd (Fig. 4): SPMD-SIMD workshares
//                                 directly; generic-SIMD publishes the
//                                 loop through the group state and the
//                                 variable sharing space.
//   simdStateMachine            — Fig. 6, warp-level worker loop.
//   workshareLoopSimd           — __simd_loop (Fig. 8).
//   workshareFor                — `for` worksharing across SIMD groups.
//   distributeStatic            — `distribute` split across teams.
//
// Extensions past the paper's evaluation (its section 7 future work):
// simdReduceAdd / simd loops with reduction, available to benches as an
// alternative to the atomic updates the paper had to use.
#pragma once

#include <cstdint>

#include "gpusim/block.h"
#include "gpusim/thread.h"
#include "omprt/context.h"
#include "omprt/dispatcher.h"
#include "omprt/modes.h"
#include "omprt/schedule.h"
#include "omprt/team_state.h"

namespace simtomp::omprt::rt {

/// Entry protocol: every device thread calls this first. Returns
/// kUserCode if the thread should run the target-region user code
/// (always in SPMD mode; team main only in generic mode) and
/// kTerminated when a generic-mode worker has finished its state
/// machine and must exit the kernel.
ThreadKind targetInit(OmpContext& ctx);

/// Kernel teardown. In generic mode the team main publishes the
/// termination signal; in SPMD mode this is the final team barrier.
void targetDeinit(OmpContext& ctx);

/// Clamp/repair a requested parallel configuration for this team:
/// group size becomes a power of two <= warpSize, and generic mode
/// without warp-level barriers (AMD) degrades to group size 1 so simd
/// loops run sequentially (paper section 5.4.1).
ParallelConfig normalizeParallelConfig(const TeamState& ts,
                                       ParallelConfig config);

/// __parallel. In generic teams mode only the team main may call this;
/// in SPMD teams mode every thread calls it with identical arguments.
void parallel(OmpContext& ctx, OutlinedFn fn, void** args, uint32_t numArgs,
              ParallelConfig config);

/// __simd. In SPMD parallel mode every group lane calls it (the loop
/// description is thread-local); in generic parallel mode only the SIMD
/// group leader does, and the runtime shares the loop with the workers.
void simd(OmpContext& ctx, LoopBodyFn fn, uint64_t tripCount, void** args,
          uint32_t numArgs);

/// `for` worksharing across the OpenMP threads (SIMD groups) of the
/// current parallel region; static cyclic schedule.
void workshareFor(OmpContext& ctx, uint64_t tripCount, LoopBodyFn fn,
                  void** args);

/// `for` worksharing with an explicit schedule clause. kDynamic pulls
/// chunks from a team-shared atomic counter and is only available in
/// SPMD parallel regions (generic mode falls back to static cyclic —
/// its workers cannot reach the required team barriers).
void workshareForScheduled(OmpContext& ctx, uint64_t tripCount, LoopBodyFn fn,
                           void** args, const ScheduleClause& schedule);

/// Contiguous per-team slice of a `distribute` loop (static schedule).
struct Range {
  uint64_t begin = 0;
  uint64_t end = 0;
  [[nodiscard]] uint64_t size() const { return end - begin; }
};
Range distributeStatic(OmpContext& ctx, uint64_t tripCount);

/// dist_schedule(static, chunk): the team's chunks are
/// [team*chunk + k*numTeams*chunk, ...) — call `fn` once per owned
/// iteration. Chunked-cyclic distribution smooths trailing-team
/// imbalance for skewed trip counts.
void distributeStaticChunked(OmpContext& ctx, uint64_t tripCount,
                             uint64_t chunk, LoopBodyFn fn, void** args);

/// Warp-level barrier over the calling thread's SIMD group. No-op for
/// singleton groups; uncharged (implicit lockstep) when the
/// architecture lacks warp-level barriers.
void syncSimdGroup(OmpContext& ctx);

/// Explicit barrier across all OpenMP threads of the team (usable from
/// SPMD parallel regions).
void teamBarrier(OmpContext& ctx);

/// `master` test: true on OpenMP thread 0's leader lane.
[[nodiscard]] bool isMaster(const OmpContext& ctx);

/// `#pragma omp single` — `fn` runs on exactly one OpenMP thread of the
/// team; all threads join the implicit barrier afterwards. Full-SPMD
/// regions only (the barrier needs every device thread).
void single(OmpContext& ctx, OutlinedFn fn, void** args);

/// `#pragma omp critical` — mutual exclusion across the team's OpenMP
/// threads: entrants pay the lock traffic and are serialized on the
/// modeled timeline. Usable in both SPMD and generic regions (in SPMD
/// mode only the group leader executes the section body, mirroring how
/// a GPU runtime guards critical sections to one lane per "thread").
void critical(OmpContext& ctx, OutlinedFn fn, void** args);

// ---- Internals exposed for tests and the state-machine figures ----

/// Block-level worker loop for generic teams mode (paper section 3.1).
ThreadKind teamStateMachine(OmpContext& ctx);
/// Warp-level worker loop for generic-SIMD mode (paper Fig. 6).
void simdStateMachine(OmpContext& ctx);
/// __simd_loop (paper Fig. 8): cyclic lane-strided execution.
void workshareLoopSimd(OmpContext& ctx, LoopBodyFn fn, uint64_t tripCount,
                       void** args);
/// Dispatch + call an outlined region (paper section 5.5).
void invokeMicrotask(OmpContext& ctx, OutlinedFn fn, void** args);
/// Publish simd work in the group state (paper Fig. 4 setSimdFn).
void setSimdFn(OmpContext& ctx, void* fn, SimdWorkKind kind,
               uint64_t tripCount, uint32_t numArgs);

// ---- Reductions (extension; paper section 7 future work) ----

/// Loop body that contributes one value per iteration.
using ReduceBodyF64 = double (*)(OmpContext& ctx, uint64_t iv, void** args);

/// Execute a simd loop whose iterations are summed. Every lane of the
/// group receives the group-total. Usable from SPMD parallel regions
/// (all lanes call) and from generic regions (leader calls; workers are
/// dispatched through the state machine).
double simdLoopReduceAdd(OmpContext& ctx, ReduceBodyF64 fn,
                         uint64_t tripCount, void** args, uint32_t numArgs);

/// Sum `value` across every OpenMP thread (SIMD group) of the team.
/// SPMD parallel regions only (uses team barriers); every lane receives
/// the team total. Combine with simdReduceAdd for a full
/// lanes -> groups -> team reduction.
double teamReduceAdd(OmpContext& ctx, double value);

/// Butterfly-sum `value` across the calling thread's SIMD group; every
/// lane receives the total. All group lanes must call.
template <typename T>
T simdReduceAdd(OmpContext& ctx, T value) {
  const LaneMask mask = ctx.simdMask();
  const uint32_t group_size = ctx.simdGroupSize();
  gpusim::ThreadCtx& t = ctx.gpu();
  for (uint32_t offset = group_size / 2; offset > 0; offset /= 2) {
    value += t.shflXor(value, offset, mask);
    t.fma();
  }
  return value;
}

}  // namespace simtomp::omprt::rt
