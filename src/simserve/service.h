// simserve: a multi-tenant launch service in front of DeviceManager.
//
// The runtime below this layer executes one launch per call; simserve
// treats launches as *requests* from named tenants and serves many of
// them across the manager's simulated devices:
//
//   - sharded submission: requests are hashed by kernel fingerprint
//     onto shards, and each shard maps to a device, so same-kernel
//     requests co-locate (tune-cache and dispatch-plan reuse).
//   - admission control: per-tenant quotas (maxQueued, maxInFlight)
//     and a global queue bound, with deterministic shedding — on
//     overflow the lowest-priority newest queued request (possibly the
//     incoming one) gets RESOURCE_EXHAUSTED.
//   - deterministic weighted scheduling: requests are queued in
//     priority classes; classes are served by deficit-weighted round
//     robin (a class with priority p gets p dispatches per round) and
//     *within* a class strictly by arrival sequence — so all-equal
//     priorities degrade to global arrival order.
//   - same-kernel batching: adjacent queued requests with one
//     fingerprint dispatch as a batch that resolves the effective
//     config (defaults, tune cache, auto shape) once.
//   - fault handling: a launch failing with UNAVAILABLE quiesces its
//     device (simfault health machine: faulted -> reset), reassigns
//     the device's shards to healthy devices, and re-dispatches the
//     failed requests in their original dispatch order — accepted
//     requests are never lost or reordered within their shard.
//   - SLOs: per-request modeled deadline budgets checked at admission
//     (shed DEADLINE_EXCEEDED when the queue-ahead cost alone blows
//     the budget) and scored at retirement (deadline hit/miss).
//   - resilience: re-dispatch is bounded by per-tenant retry budgets
//     with capped modeled exponential backoff; each device carries a
//     circuit breaker (simfault::CircuitBreaker on a logical epoch
//     clock = completed drains) that quarantines repeat offenders from
//     the shard map until a cool-down, then probes half-open.
//   - brownout: past a queue high-water mark the service sheds
//     lowest-priority arrivals and disables batching before the hard
//     bound refuses work outright.
//
// Determinism contract: given the same submission sequence and the
// same pump()/drain() call structure, every published statistic —
// per-tenant counts and modeled-latency histograms, batch and
// migration counters — is byte-identical for any SIMTOMP_HOST_WORKERS
// and any shard count (over homogeneous devices). This holds because
// every decision that feeds a statistic is a pure function of logical
// state (arrival sequence, tenant, priority, queue contents) and of
// modeled cycles, never of wall-clock or thread interleaving. The
// physical interleaving of executions varies freely; the stats do not.
#pragma once

#include <array>
#include <cstdint>
#include <deque>
#include <future>
#include <limits>
#include <map>
#include <memory>
#include <mutex>
#include <ostream>
#include <string>
#include <string_view>
#include <vector>

#include "hostrt/device_manager.h"
#include "omprt/target.h"
#include "simfault/breaker.h"
#include "simserve/trace.h"
#include "support/status.h"

namespace simtomp::simserve {

/// A named client of the launch service.
struct TenantSpec {
  std::string name;
  /// Scheduling weight: a priority-p class receives p dispatches per
  /// round for each 1 a priority-1 class receives. Must be >= 1.
  uint32_t priority = 1;
  /// Dispatch budget between drains (caps device-queue occupancy per
  /// wave). 0 suspends the tenant: every submission is shed.
  uint32_t maxInFlight = 64;
  /// Admitted-but-undispatched cap. 0 suspends the tenant.
  uint32_t maxQueued = 256;
  /// Default modeled-latency deadline budget (cycles) for this
  /// tenant's requests; admission sheds a request (DEADLINE_EXCEEDED)
  /// when the modeled queue-ahead cost alone already exceeds it, and
  /// retirement scores the final modeled latency against it
  /// (deadlineHit / deadlineMiss). kNoDeadline = no SLO.
  uint64_t deadlineCycles = kNoDeadline;
  /// Re-dispatch budget after device loss: a request may migrate at
  /// most this many times before it fails with UNAVAILABLE ("retry
  /// budget exhausted"). 0 = fail on the first loss.
  uint32_t maxRetries = 3;
};

struct ServiceConfig {
  /// Submission shards (kernel fingerprints hash onto shards, shards
  /// map onto devices). 0 = one shard per device.
  uint32_t shardCount = 0;
  /// Global logical-queue bound; beyond it the shedding rule applies.
  uint64_t maxQueued = 4096;
  /// Same-fingerprint coalescing bound per dispatch (1 disables
  /// batching).
  uint32_t maxBatch = 16;
  /// Brownout high-water mark on the global logical queue. While
  /// queue occupancy is at or past it, arrivals from the lowest
  /// registered priority are shed and same-kernel batching is
  /// disabled — graceful degradation before the hard maxQueued bound
  /// refuses work outright. 0 derives (maxQueued * 3) / 4; any value
  /// > maxQueued disables brownout.
  uint64_t brownoutHighWater = 0;
  /// Per-device circuit breaker (logical-epoch trip window; epochs are
  /// counted drain() completions). tripThreshold 0 disables breakers,
  /// restoring unconditional post-reset re-admission.
  simfault::BreakerPolicy breaker{};
  /// Never let the serving set empty: when every device is
  /// quarantined, the breaker closest to its reopen epoch is forced
  /// half-open so traffic keeps flowing (panic revival). Disable to
  /// make total device loss fail pending work instead.
  bool panicRevival = true;
  /// Request-scoped tracing + flight recorder (see simserve/trace.h).
  /// Purely observational: enabling it changes no modeled statistic.
  TraceConfig trace{};
};

enum class RequestState : uint8_t {
  kQueued = 0,  ///< admitted, awaiting dispatch
  kShed,        ///< refused (or evicted) by admission control
  kDispatched,  ///< handed to a device task queue
  kDone,        ///< completed successfully
  kFailed,      ///< completed with a non-ok status
};

[[nodiscard]] std::string_view requestStateName(RequestState state);

// Modeled-latency constants (cycles). A request's modeled latency is
//   aheadAtAdmission * kQueueSlotCycles        (queueing model)
// + kDispatchCycles or kBatchFollowCycles      (dispatch; followers
//                                               amortize the batch
//                                               leader's resolution)
// + kDispatchCycles per migration              (re-dispatch overhead)
// + its own KernelStats.cycles                 (execution).
// Every term is logical or modeled, hence reproducible.
inline constexpr uint64_t kQueueSlotCycles = 16;
inline constexpr uint64_t kDispatchCycles = 256;
inline constexpr uint64_t kBatchFollowCycles = 32;
// Modeled capped exponential backoff charged per re-dispatch hop
// (shared schedule: simfault::cappedExponentialBackoff). Hop h adds
// kDispatchCycles + min(kRetryBackoffBaseCycles << (h-1), cap).
inline constexpr uint64_t kRetryBackoffBaseCycles = 64;
inline constexpr uint64_t kRetryBackoffCapCycles = 4096;

/// Per-tenant service counters; toString() is a byte-identity surface.
/// Every field is a pure function of logical state and modeled cycles
/// (never of which physical device served a shard), so the dump stays
/// byte-identical across worker counts, shard counts and reruns.
/// Conservation: submitted == accepted + (shed - evicted) + deadlineShed
/// (an evicted request was accepted first, then counted shed+evicted).
struct TenantStats {
  uint64_t submitted = 0;
  uint64_t accepted = 0;
  uint64_t shed = 0;      ///< refused at submit or evicted later
  uint64_t evicted = 0;   ///< subset of shed: displaced after admission
  uint64_t brownoutShed = 0;  ///< subset of shed: brownout arrivals
  uint64_t deadlineShed = 0;  ///< DEADLINE_EXCEEDED at admission
  uint64_t completed = 0;
  uint64_t failed = 0;
  uint64_t migrated = 0;  ///< re-dispatched off a faulted device
  uint64_t batchFollowers = 0;
  // SLO surface (PR 9): deadline scoring at retirement, retry-budget
  // accounting and breaker trips charged to the faulting request.
  uint64_t deadlineHit = 0;   ///< completed within the deadline budget
  uint64_t deadlineMiss = 0;  ///< completed past the deadline budget
  uint64_t retriesExhausted = 0;  ///< failed: retry budget ran out
  uint64_t retryBackoffCycles = 0;  ///< modeled backoff charged in total
  uint64_t breakerTrips = 0;  ///< faults this tenant's requests hit
  LatencyHistogram latency;

  [[nodiscard]] std::string toString() const;
};

/// Snapshot of one request's lifecycle.
struct RequestOutcome {
  RequestState state = RequestState::kQueued;
  Status status;
  uint64_t cycles = 0;                ///< KernelStats.cycles when done
  uint64_t modeledLatencyCycles = 0;  ///< final only when done
  uint64_t deadlineCycles = kNoDeadline;  ///< resolved budget
  uint32_t device = 0;                ///< last device dispatched to
  uint32_t shard = 0;
  uint32_t retries = 0;               ///< re-dispatch hops taken
  bool batchFollower = false;
  bool migrated = false;
};

/// The launch service. submit() is safe from any thread; pump(),
/// drain() and runToCompletion() must be driven by one service thread
/// (they are the scheduler, and the deterministic dispatch order is
/// defined by that single consumer).
class LaunchService {
 public:
  explicit LaunchService(hostrt::DeviceManager& manager,
                         ServiceConfig config = {});

  LaunchService(const LaunchService&) = delete;
  LaunchService& operator=(const LaunchService&) = delete;

  /// Register a tenant before it submits. Rejects duplicates, empty
  /// names and priority 0.
  Status registerTenant(TenantSpec spec);

  /// Admit (or deterministically shed) one launch request. Returns the
  /// request id on admission; RESOURCE_EXHAUSTED when this request was
  /// shed (quota, brownout or global bound); DEADLINE_EXCEEDED when
  /// the modeled queue-ahead cost already exceeds its deadline budget;
  /// INVALID_ARGUMENT for unknown tenants. `fingerprint` keys sharding
  /// and batching ("" derives one from tuneKey/shape — callers wanting
  /// co-location should pass a stable kernel name). `deadlineCycles`
  /// overrides the tenant's default budget (kInheritDeadline keeps it;
  /// kNoDeadline opts this request out of SLO scoring).
  Result<uint64_t> submit(std::string_view tenant,
                          omprt::TargetConfig config,
                          omprt::TargetRegionFn region,
                          std::string fingerprint = "",
                          uint64_t deadlineCycles = kInheritDeadline);

  /// Dispatch every eligible queued request into the device task
  /// queues, in the deterministic weighted order, forming same-kernel
  /// batches. Returns the number dispatched.
  size_t pump();

  /// Retire every dispatched request (blocking on the device queues),
  /// migrating UNAVAILABLE failures to healthy devices. Resets the
  /// per-tenant in-flight budgets. Non-ok only when no healthy device
  /// remains for work that still needs one.
  Status drain();

  /// pump()/drain() cycles until the logical queue is empty and every
  /// dispatched request retired.
  Status runToCompletion();

  /// Manually re-admit a quiesced or quarantined device: force-close
  /// its breaker, clear the manager quarantine, and restore the
  /// canonical shard mapping over the serving devices.
  void reviveDevice(size_t n);

  /// Logical clock: completed drain() calls. Breaker windows and
  /// cool-downs are measured in these epochs.
  [[nodiscard]] uint64_t epoch() const;
  /// Device n's breaker state / lifetime trip count / open count.
  /// (Trip totals are shard-invariant; states and open counts depend
  /// on which physical device accumulated the faults, so they stay off
  /// the byte-identity surfaces.)
  [[nodiscard]] simfault::BreakerState breakerState(size_t n) const;
  [[nodiscard]] uint64_t breakerTrips(size_t n) const;
  [[nodiscard]] uint64_t breakerOpens(size_t n) const;
  /// True while global queue occupancy is at or past the brownout
  /// high-water mark.
  [[nodiscard]] bool brownoutActive() const;

  [[nodiscard]] size_t queuedRequests() const;
  [[nodiscard]] uint64_t dispatchedOutstanding() const;
  /// High-water mark of dispatched-not-retired requests, measured at
  /// pump boundaries (logical, hence deterministic).
  [[nodiscard]] uint64_t peakInFlight() const;
  [[nodiscard]] uint64_t batchesDispatched() const;
  /// Tune-cache/config resolutions saved by batching (batch sizes - 1).
  [[nodiscard]] uint64_t amortizedResolutions() const;
  [[nodiscard]] RequestOutcome outcome(uint64_t id) const;
  /// Request ids in dispatch order (re-dispatches append again).
  [[nodiscard]] std::vector<uint64_t> dispatchOrder() const;
  [[nodiscard]] size_t shardCount() const;
  [[nodiscard]] size_t shardDevice(size_t shard) const;
  [[nodiscard]] bool deviceServing(size_t n) const;
  /// Copy of a tenant's stats (aborts on unknown name).
  [[nodiscard]] TenantStats tenantStats(std::string_view name) const;

  /// Deterministic stats dump: service totals plus per-tenant lines,
  /// tenants sorted by name. The byte-compare surface for CI.
  void dumpStats(std::ostream& out) const;

  /// The request tracer, or nullptr when ServiceConfig::trace.enabled
  /// is false. Read its dump surfaces only between pump()/drain()
  /// waves (the hooks run under the service lock; the dumps do not).
  [[nodiscard]] ServiceTracer* tracer() const { return tracer_.get(); }

 private:
  struct Tenant {
    TenantSpec spec;
    TenantStats stats;
    uint64_t queued = 0;
    uint64_t dispatchedSinceDrain = 0;
  };

  struct Request {
    uint64_t id = 0;
    uint32_t tenant = 0;
    uint32_t shard = 0;
    std::string fingerprint;
    omprt::TargetConfig config;
    omprt::TargetRegionFn region;
    RequestState state = RequestState::kQueued;
    uint64_t aheadAtAdmission = 0;
    uint64_t modeledLatency = 0;
    uint64_t cycles = 0;
    uint64_t deadline = kNoDeadline;  ///< resolved at admission
    uint32_t device = 0;
    uint32_t retries = 0;  ///< re-dispatch hops taken so far
    bool batchFollower = false;
    bool migrated = false;
    Status status;
    std::future<Result<gpusim::KernelStats>> future;
  };

  /// One priority class: a global-FIFO deque of request ids plus the
  /// class's remaining round credits.
  struct PriorityClass {
    std::deque<uint64_t> fifo;
    uint32_t credits = 0;
  };

  [[nodiscard]] bool tenantHasBudget(const Tenant& t) const {
    return t.dispatchedSinceDrain < t.spec.maxInFlight;
  }
  /// First fifo position whose tenant still has dispatch budget, or
  /// npos.
  [[nodiscard]] size_t firstEligible(const PriorityClass& cls) const;
  void shedRequest(Request& request, bool evicted, std::string why);
  void dispatchLocked(Request& request, size_t device,
                      const omprt::TargetConfig& resolved,
                      bool batch_follower);
  void rebuildShardMapLocked();
  [[nodiscard]] Status migrateLocked(const std::vector<uint64_t>& ids);
  void notePumpWatermarksLocked();
  [[nodiscard]] bool anyServingLocked() const;
  [[nodiscard]] bool brownoutActiveLocked() const {
    return queuedCount_ >= config_.brownoutHighWater;
  }
  /// Advance breakers to epoch_: open breakers whose cool-down elapsed
  /// go half-open and their devices rejoin the shard map as probes.
  void advanceBreakersLocked();

  hostrt::DeviceManager* mgr_;
  ServiceConfig config_;
  /// Created once in the constructor when tracing is enabled; every
  /// hook call is guarded by `if (tracer_)`.
  std::unique_ptr<ServiceTracer> tracer_;

  mutable std::mutex mu_;
  std::vector<Tenant> tenants_;
  std::map<std::string, uint32_t, std::less<>> tenantByName_;
  std::deque<Request> requests_;  ///< id == index; references stable
  /// Priority classes, highest priority first.
  std::map<uint32_t, PriorityClass, std::greater<uint32_t>> classes_;
  std::vector<uint64_t> dispatchOrder_;
  size_t retireCursor_ = 0;  ///< next dispatchOrder_ entry to retire
  std::vector<size_t> shardDevice_;
  std::vector<bool> deviceServing_;
  /// Per-device circuit breakers driven by the logical epoch clock.
  std::vector<simfault::CircuitBreaker> breakers_;
  /// Device is half-open with an unresolved probe: the first ok
  /// retirement from it closes the breaker.
  std::vector<bool> probing_;
  uint64_t epoch_ = 0;  ///< completed drain() calls
  /// Lowest priority among registered tenants (brownout shed target).
  uint32_t minPriority_ = std::numeric_limits<uint32_t>::max();
  uint64_t queuedCount_ = 0;
  uint64_t dispatchedTotal_ = 0;
  uint64_t retiredTotal_ = 0;
  uint64_t peakInFlight_ = 0;
  uint64_t peakQueueDepth_ = 0;
  uint64_t batches_ = 0;
  uint64_t amortized_ = 0;
  uint64_t migratedTotal_ = 0;
};

/// FNV-1a over the fingerprint — stable across platforms (std::hash is
/// not), so shard placement is part of the reproducibility contract.
[[nodiscard]] uint64_t fingerprintHash(std::string_view fingerprint);

}  // namespace simtomp::simserve
