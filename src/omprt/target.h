// Target-region launch: the host-facing entry of the device runtime.
//
// launchTarget configures a kernel the way LLVM's OpenMP offloading
// does: in generic teams mode the block gets one extra warp to host the
// team main thread (paper Fig. 2 / [17]); in SPMD mode every thread of
// the block is a worker. Every device thread starts in __target_init
// and the user's target-region code runs according to the execution
// contract of paper section 5.2.
#pragma once

#include <functional>
#include <string>

#include "gpusim/device.h"
#include "omprt/context.h"
#include "omprt/convergence.h"
#include "omprt/modes.h"
#include "support/status.h"

namespace simtomp::omprt {

/// Default size of the variable sharing space; the paper grew LLVM's
/// 1,024 bytes to 2,048 to accommodate SIMD groups (section 5.3.1).
inline constexpr uint32_t kDefaultSharingSpaceBytes = 2048;

struct TargetConfig {
  ExecMode teamsMode = ExecMode::kSPMD;
  /// When true, teamsMode is a placeholder the launch path may replace
  /// (tuner entry, else the SPMD heuristic). Explicit modes always win.
  bool teamsModeAuto = false;
  /// Number of teams; 0 = auto (tuner entry, else one per SM).
  uint32_t numTeams = 1;
  /// Worker threads per team; must be a positive multiple of warpSize.
  /// Generic teams mode adds one extra warp for the team main thread.
  /// 0 = auto (tuner entry, else 128 clipped to the architecture).
  uint32_t threadsPerTeam = 128;
  /// Launch-wide default SIMD group size: what a region-level
  /// ParallelConfig with simdGroupSize == kSimdlenAuto resolves to.
  /// 0 = auto (tuner entry, else 1 — today's LLVM/OpenMP behaviour).
  uint32_t simdlen = 1;
  /// Launch-wide default parallel-region mode (used by regions whose
  /// ParallelConfig sets modeAuto).
  ExecMode parallelMode = ExecMode::kSPMD;
  /// When true, parallelMode may be replaced by the launch path.
  bool parallelModeAuto = false;
  /// Launch-wide default chunk for scheduled worksharing loops whose
  /// schedule clause leaves chunk 0 (0 = runtime default).
  uint64_t scheduleChunk = 0;
  uint32_t sharingSpaceBytes = kDefaultSharingSpaceBytes;
  /// Host worker threads for independent teams (0 = auto: the
  /// SIMTOMP_HOST_WORKERS env var, else hardware_concurrency; 1 =
  /// serial). Affects simulation wall-clock only — modeled cycles and
  /// all counters are identical for any value.
  uint32_t hostWorkers = 0;
  /// Correctness checking (simcheck); see gpusim::LaunchConfig::check.
  simcheck::CheckConfig check{};
  /// Stable kernel identity for the simtune cache ("" = not tunable;
  /// auto fields then resolve heuristically). Mirrors the hostWorkers /
  /// check plumbing: DeviceManager consults its default tuner and the
  /// SIMTOMP_TUNE env var for launches that carry a key + auto fields.
  std::string tuneKey;
  /// Trip-count hint for the tuning-cache bucket (0 = unknown). The
  /// dsl target helpers fill this with the distribute trip count.
  uint64_t tripCount = 0;
  /// Fault-injection plan (simfault); empty spec consults SIMTOMP_FAULT.
  /// launchTarget fills fault.simdActive from the effective simdlen so
  /// when=simd plans stop firing after the generic-mode fallback.
  simfault::FaultConfig fault{};
  /// Per-block watchdog step budget; see gpusim::LaunchConfig.
  uint64_t watchdogSteps = 0;
  /// Hierarchical profiling (simprof); see gpusim::LaunchConfig::profile.
  simprof::ProfileConfig profile{};
  /// Convergence fast path (batched lane execution for hazard-free SIMD
  /// bodies). Affects host wall-time only: modeled cycles, counters,
  /// traces, profiles and simcheck verdicts are bit-identical either
  /// way. kAuto consults SIMTOMP_FAST (default on). Fault-armed blocks
  /// always take the lane-per-fiber path regardless of this setting.
  FastPathMode fastPath = FastPathMode::kAuto;

  [[nodiscard]] Status validate(const gpusim::ArchSpec& arch) const;
};

/// True when any launch-shape field is still auto (needs resolution).
[[nodiscard]] bool hasAutoLaunchFields(const TargetConfig& config);

/// Fill every auto launch-shape field with the static heuristic
/// defaults (numTeams: one per SM; threadsPerTeam: 128 clipped to the
/// architecture; simdlen: 1; modes: the placeholder value riding the
/// auto flag) and clear the auto flags. The tuner-aware resolution in
/// hostrt::DeviceManager runs *before* this, so heuristics only apply
/// where no cache entry decided.
void resolveAutoConfig(const gpusim::ArchSpec& arch, TargetConfig& config);

/// The target-region user code. Executed by the team main thread only
/// (generic teams mode) or by every thread (SPMD teams mode).
using TargetRegionFn = std::function<void(OmpContext&)>;

/// Launch a target region on the simulated device.
Result<gpusim::KernelStats> launchTarget(gpusim::Device& device,
                                         const TargetConfig& config,
                                         const TargetRegionFn& region);

}  // namespace simtomp::omprt
