// simfault unit and device-level tests: plan parsing and canonical
// text, env resolution (SIMTOMP_FAULT / SIMTOMP_WATCHDOG), injector
// arming semantics (count, afterLaunch, when=simd), and every fault
// site observed through Device::launch — including the livelock that
// only the watchdog can kill, and the determinism contract that the
// same plan yields the same status text for any host worker count.
#include <gtest/gtest.h>

#include <cstdlib>
#include <string>

#include "dsl/dsl.h"
#include "gpusim/device.h"
#include "omprt/target.h"
#include "simfault/fault.h"
#include "support/status.h"

namespace simtomp::simfault {
namespace {

using gpusim::ArchSpec;
using gpusim::Device;
using gpusim::LaunchConfig;
using gpusim::ThreadCtx;

class ScopedEnv {
 public:
  ScopedEnv(const char* name, const char* value) : name_(name) {
    const char* prev = std::getenv(name);
    had_ = prev != nullptr;
    if (had_) saved_ = prev;
    if (value != nullptr) {
      ::setenv(name, value, 1);
    } else {
      ::unsetenv(name);
    }
  }
  ~ScopedEnv() {
    if (had_) {
      ::setenv(name_, saved_.c_str(), 1);
    } else {
      ::unsetenv(name_);
    }
  }

 private:
  const char* name_;
  bool had_ = false;
  std::string saved_;
};

// ---------------- plan parsing ----------------

TEST(FaultPlanTest, ParsesEveryKind) {
  const char* kinds[] = {"device_lost_pre", "device_lost_post", "trap",
                         "livelock",        "barrier_corrupt",  "sharing_exhausted"};
  for (const char* kind : kinds) {
    auto plan = FaultPlan::parse(kind);
    ASSERT_TRUE(plan.isOk()) << kind;
    ASSERT_EQ(plan.value().faults.size(), 1u) << kind;
    EXPECT_EQ(faultKindName(plan.value().faults[0].kind), kind);
  }
}

TEST(FaultPlanTest, ParsesOptionsAndCanonicalizes) {
  auto plan =
      FaultPlan::parse("trap:step=50:block=2:count=0:after=3:when=simd");
  ASSERT_TRUE(plan.isOk()) << plan.status().toString();
  const FaultSpec& spec = plan.value().faults[0];
  EXPECT_EQ(spec.kind, FaultKind::kTrap);
  EXPECT_EQ(spec.when, FaultWhen::kSimd);
  EXPECT_EQ(spec.block, 2u);
  EXPECT_EQ(spec.step, 50u);
  EXPECT_EQ(spec.count, 0u);
  EXPECT_EQ(spec.afterLaunch, 3u);
  // Canonical text uses a stable key order, regardless of input order.
  EXPECT_EQ(spec.canonical(),
            "trap:block=2:step=50:when=simd:count=0:after=3");
}

TEST(FaultPlanTest, CanonicalOmitsDefaults) {
  auto plan = FaultPlan::parse("livelock");
  ASSERT_TRUE(plan.isOk());
  EXPECT_EQ(plan.value().faults[0].canonical(), "livelock");
}

TEST(FaultPlanTest, ParsesMultiEntryPlans) {
  auto plan = FaultPlan::parse("device_lost_pre:count=1;trap:block=1");
  ASSERT_TRUE(plan.isOk()) << plan.status().toString();
  EXPECT_EQ(plan.value().faults.size(), 2u);
}

TEST(FaultPlanTest, OffSentinelAndEmpty) {
  for (const char* text : {"off", "none", "0"}) {
    auto plan = FaultPlan::parse(text);
    ASSERT_TRUE(plan.isOk()) << text;
    EXPECT_TRUE(plan.value().empty());
    EXPECT_TRUE(plan.value().explicitOff);
  }
  auto empty = FaultPlan::parse("");
  ASSERT_TRUE(empty.isOk());
  EXPECT_TRUE(empty.value().empty());
  EXPECT_FALSE(empty.value().explicitOff);
}

TEST(FaultPlanTest, RejectsGarbage) {
  EXPECT_FALSE(FaultPlan::parse("explode").isOk());
  EXPECT_FALSE(FaultPlan::parse("trap:step=abc").isOk());
  EXPECT_FALSE(FaultPlan::parse("trap:when=never").isOk());
  EXPECT_FALSE(FaultPlan::parse("trap:bogus=1").isOk());
}

// ---------------- env resolution ----------------

TEST(FaultResolveTest, ExplicitWinsOverEnvironment) {
  ScopedEnv env("SIMTOMP_FAULT", "trap");
  const FaultResolution r = resolveFaultSpec("livelock");
  EXPECT_EQ(r.spec, "livelock");
  EXPECT_STREQ(r.source, "explicit");
}

TEST(FaultResolveTest, ExplicitOffSuppressesEnvironment) {
  ScopedEnv env("SIMTOMP_FAULT", "trap");
  const FaultResolution r = resolveFaultSpec("off");
  EXPECT_TRUE(r.spec.empty());
  EXPECT_STREQ(r.source, "explicit");
}

TEST(FaultResolveTest, EmptyRequestReadsEnvironment) {
  {
    ScopedEnv env("SIMTOMP_FAULT", "trap:block=1");
    const FaultResolution r = resolveFaultSpec("");
    EXPECT_EQ(r.spec, "trap:block=1");
    EXPECT_STREQ(r.source, "SIMTOMP_FAULT");
  }
  {
    ScopedEnv env("SIMTOMP_FAULT", nullptr);
    const FaultResolution r = resolveFaultSpec("");
    EXPECT_TRUE(r.spec.empty());
    EXPECT_STREQ(r.source, "default");
  }
}

TEST(WatchdogResolveTest, EnvAndExplicitPrecedence) {
  {
    ScopedEnv env("SIMTOMP_WATCHDOG", nullptr);
    const WatchdogResolution r = resolveWatchdogSteps(0);
    EXPECT_EQ(r.steps, kDefaultWatchdogSteps);
    EXPECT_STREQ(r.source, "default");
  }
  {
    ScopedEnv env("SIMTOMP_WATCHDOG", "12345");
    const WatchdogResolution r = resolveWatchdogSteps(0);
    EXPECT_EQ(r.steps, 12345u);
    EXPECT_STREQ(r.source, "SIMTOMP_WATCHDOG");
  }
  {
    ScopedEnv env("SIMTOMP_WATCHDOG", "off");
    EXPECT_EQ(resolveWatchdogSteps(0).steps, 0u);
  }
  {
    ScopedEnv env("SIMTOMP_WATCHDOG", "off");
    // Explicit budget beats the env.
    const WatchdogResolution r = resolveWatchdogSteps(777);
    EXPECT_EQ(r.steps, 777u);
    EXPECT_STREQ(r.source, "explicit");
  }
  EXPECT_EQ(resolveWatchdogSteps(kWatchdogOff).steps, 0u);
}

// ---------------- injector arming ----------------

TEST(InjectorTest, CountBoundsAttemptsAndAdvances) {
  Injector injector;
  FaultConfig config;
  config.spec = "device_lost_pre:count=1";
  auto first = injector.arm(config, 4);
  ASSERT_TRUE(first.isOk());
  EXPECT_TRUE(first.value().lostPre);
  // Consumed: the second attempt arms nothing (this is what makes the
  // fault transient — the retry heals).
  auto second = injector.arm(config, 4);
  ASSERT_TRUE(second.isOk());
  EXPECT_FALSE(second.value().lostPre);
  EXPECT_EQ(injector.launchCount(), 2u);
}

TEST(InjectorTest, CountZeroFiresEveryAttempt) {
  Injector injector;
  FaultConfig config;
  config.spec = "trap:block=0:count=0";
  for (int i = 0; i < 3; ++i) {
    auto arm = injector.arm(config, 1);
    ASSERT_TRUE(arm.isOk());
    const BlockFaultArm* block = arm.value().forBlock(0);
    ASSERT_NE(block, nullptr);
    EXPECT_TRUE(block->trap);
  }
}

TEST(InjectorTest, AfterLaunchSkipsEarlyAttempts) {
  Injector injector;
  FaultConfig config;
  config.spec = "device_lost_post:after=2";
  auto a = injector.arm(config, 1);
  auto b = injector.arm(config, 1);
  auto c = injector.arm(config, 1);
  ASSERT_TRUE(a.isOk() && b.isOk() && c.isOk());
  EXPECT_FALSE(a.value().lostPost);
  EXPECT_FALSE(b.value().lostPost);
  EXPECT_TRUE(c.value().lostPost);
}

TEST(InjectorTest, WhenSimdRequiresSimdActive) {
  Injector injector;
  FaultConfig config;
  config.spec = "trap:block=0:when=simd";
  config.simdActive = false;
  auto off = injector.arm(config, 1);
  ASSERT_TRUE(off.isOk());
  EXPECT_EQ(off.value().forBlock(0), nullptr);
  config.simdActive = true;
  auto on = injector.arm(config, 1);
  ASSERT_TRUE(on.isOk());
  ASSERT_NE(on.value().forBlock(0), nullptr);
  EXPECT_TRUE(on.value().forBlock(0)->trap);
}

TEST(InjectorTest, OutOfRangeBlockArmsNothing) {
  Injector injector;
  FaultConfig config;
  config.spec = "trap:block=9";
  auto arm = injector.arm(config, 2);
  ASSERT_TRUE(arm.isOk());
  EXPECT_FALSE(arm.value().anything());
}

TEST(InjectorTest, BadPlanIsInvalidArgument) {
  Injector injector;
  FaultConfig config;
  config.spec = "explode";
  EXPECT_EQ(injector.arm(config, 1).status().code(),
            StatusCode::kInvalidArgument);
}

// ---------------- fault sites through Device::launch ----------------

LaunchConfig faultedConfig(uint32_t blocks, uint32_t threads,
                           const char* spec) {
  LaunchConfig config;
  config.numBlocks = blocks;
  config.threadsPerBlock = threads;
  config.fault.spec = spec;
  return config;
}

TEST(DeviceFaultTest, TrapFailsLaunchWithFiberDump) {
  Device dev(ArchSpec::testTiny());
  auto stats = dev.launch(faultedConfig(2, 32, "trap:block=0:step=5"),
                          [](ThreadCtx& t) { t.work(100); });
  ASSERT_FALSE(stats.isOk());
  EXPECT_EQ(stats.status().code(), StatusCode::kInternal);
  EXPECT_NE(stats.status().message().find("[simfault] injected kernel trap"),
            std::string::npos)
      << stats.status().toString();
  EXPECT_NE(stats.status().message().find("block 0"), std::string::npos);
}

TEST(DeviceFaultTest, WatchdogKillsLivelockWithDeadlineExceeded) {
  Device dev(ArchSpec::testTiny());
  LaunchConfig config = faultedConfig(2, 32, "livelock:block=0");
  config.watchdogSteps = 5000;
  auto stats = dev.launch(config, [](ThreadCtx& t) { t.syncBlock(); });
  ASSERT_FALSE(stats.isOk());
  EXPECT_EQ(stats.status().code(), StatusCode::kDeadlineExceeded);
  const std::string& msg = stats.status().message();
  EXPECT_NE(msg.find("watchdog"), std::string::npos) << msg;
  EXPECT_NE(msg.find("step budget of 5000"), std::string::npos) << msg;
  // The blocked-fiber dump: the livelocked fiber stays runnable (that
  // is what makes it invisible to the deadlock detector).
  EXPECT_NE(msg.find("runnable"), std::string::npos) << msg;
}

TEST(DeviceFaultTest, LivelockUndetectableWithoutWatchdog) {
  // Same livelock, watchdog explicitly off, tiny *trap* as a backstop
  // so the test itself terminates: the deadlock detector never fires
  // because the spinning fiber is always runnable.
  Device dev(ArchSpec::testTiny());
  LaunchConfig config =
      faultedConfig(1, 32, "livelock:block=0;trap:block=0:step=20000");
  config.watchdogSteps = kWatchdogOff;
  auto stats = dev.launch(config, [](ThreadCtx& t) { t.syncBlock(); });
  ASSERT_FALSE(stats.isOk());
  // The trap backstop fired — NOT a deadlock, NOT a deadline.
  EXPECT_EQ(stats.status().code(), StatusCode::kInternal);
  EXPECT_NE(stats.status().message().find("injected kernel trap"),
            std::string::npos);
}

TEST(DeviceFaultTest, BarrierCorruptBecomesDetectedDeadlock) {
  Device dev(ArchSpec::testTiny());
  auto stats = dev.launch(faultedConfig(2, 32, "barrier_corrupt:block=0"),
                          [](ThreadCtx& t) { t.syncBlock(); });
  ASSERT_FALSE(stats.isOk());
  EXPECT_EQ(stats.status().code(), StatusCode::kFailedPrecondition);
  EXPECT_NE(stats.status().message().find("deadlock"), std::string::npos)
      << stats.status().toString();
}

TEST(DeviceFaultTest, DeviceLostPreAndPostAreUnavailable) {
  Device dev(ArchSpec::testTiny());
  int runs = 0;
  auto pre = dev.launch(faultedConfig(1, 32, "device_lost_pre"),
                        [&](ThreadCtx&) { ++runs; });
  ASSERT_FALSE(pre.isOk());
  EXPECT_EQ(pre.status().code(), StatusCode::kUnavailable);
  EXPECT_EQ(runs, 0) << "lost-pre must fire before any block runs";

  auto post = dev.launch(faultedConfig(1, 32, "device_lost_post"),
                         [&](ThreadCtx&) { ++runs; });
  ASSERT_FALSE(post.isOk());
  EXPECT_EQ(post.status().code(), StatusCode::kUnavailable);
  EXPECT_EQ(runs, 32) << "lost-post fires after the kernel executed";
}

TEST(DeviceFaultTest, SharingExhaustionThroughTargetLaunch) {
  Device dev(ArchSpec::testTiny());
  omprt::TargetConfig config;
  config.teamsMode = omprt::ExecMode::kGeneric;
  config.numTeams = 1;
  config.threadsPerTeam = 32;
  config.parallelMode = omprt::ExecMode::kGeneric;
  config.simdlen = 4;
  config.hostWorkers = 1;
  config.fault.spec = "sharing_exhausted:block=0";
  omprt::ParallelConfig pc;
  pc.modeAuto = true;
  pc.simdGroupSize = 0;
  double sink = 0.0;
  auto stats = omprt::launchTarget(dev, config, [&](omprt::OmpContext& ctx) {
    dsl::parallelFor(
        ctx, 8,
        [&sink](omprt::OmpContext& c, uint64_t) {
          dsl::simd(c, 8, [&sink](omprt::OmpContext& cc, uint64_t lane) {
            cc.gpu().work(1);
            sink += 1.0 * lane;  // shared through the sharing space
          });
        },
        pc);
  });
  ASSERT_FALSE(stats.isOk());
  EXPECT_EQ(stats.status().code(), StatusCode::kResourceExhausted);
  EXPECT_NE(
      stats.status().message().find("injected sharing-space exhaustion"),
      std::string::npos)
      << stats.status().toString();
}

TEST(DeviceFaultTest, LastCheckReportSurvivesLostPre) {
  Device dev(ArchSpec::testTiny());
  auto cell = dev.allocateArray<double>(1);
  ASSERT_TRUE(cell.isOk());
  // Launch 1: checking on, deliberate cross-block race -> dirty report.
  // One host worker: the race must exist in the simulated schedule for
  // simcheck to flag (it does so for any worker count), but the host
  // threads must not actually race — this suite runs under TSan in CI.
  LaunchConfig racy;
  racy.numBlocks = 4;
  racy.threadsPerBlock = 32;
  racy.hostWorkers = 1;
  racy.check.mode = simcheck::CheckMode::kReport;
  auto stats = dev.launch(racy, [&](ThreadCtx& t) {
    if (t.threadId() == 0) cell.value().set(t, 0, 1.0 * t.blockId());
  });
  ASSERT_TRUE(stats.isOk()) << stats.status().toString();
  const uint64_t findings = dev.lastCheckReport().total();
  ASSERT_GE(findings, 1u);

  // Launch 2 dies before anything runs; the old report must survive.
  auto lost = dev.launch(faultedConfig(1, 32, "device_lost_pre"),
                         [](ThreadCtx&) {});
  ASSERT_FALSE(lost.isOk());
  EXPECT_EQ(dev.lastCheckReport().total(), findings);

  // A device reset keeps it too (diagnostics survive recovery).
  dev.reset();
  EXPECT_EQ(dev.lastCheckReport().total(), findings);
  EXPECT_EQ(dev.resetCount(), 1u);
}

TEST(DeviceFaultTest, StatusTextIdenticalForAnyWorkerCount) {
  const auto run = [](uint32_t workers, const char* spec) {
    Device dev(ArchSpec::testTiny());
    LaunchConfig config = faultedConfig(8, 32, spec);
    config.hostWorkers = workers;
    config.watchdogSteps = 5000;
    auto stats = dev.launch(config, [](ThreadCtx& t) {
      t.work(10);
      t.syncBlock();
      t.work(10);
    });
    EXPECT_FALSE(stats.isOk());
    return stats.status().toString();
  };
  for (const char* spec :
       {"trap:block=3:step=7", "livelock:block=5", "barrier_corrupt:block=2",
        "trap:block=1:step=3;trap:block=6:step=3"}) {
    EXPECT_EQ(run(1, spec), run(8, spec)) << spec;
  }
}

}  // namespace
}  // namespace simtomp::simfault
