// Device: the whole simulated GPU.
//
// Owns global memory and schedules kernel launches. Blocks are placed
// greedily onto the SM with the least accumulated work (round-robin when
// balanced), each SM running its blocks back-to-back; the kernel's
// modeled time is the busiest SM plus a fixed launch latency. This is
// the "waves" abstraction real GPUs exhibit when a grid has more blocks
// than can be resident at once — the effect behind the paper's note that
// the 3-level sparse_matvec wins partly by using far fewer, larger teams.
#pragma once

#include <functional>
#include <memory>

#include "gpusim/arch.h"
#include "gpusim/block.h"
#include "gpusim/cost_model.h"
#include "gpusim/memory.h"
#include "gpusim/stats.h"
#include "gpusim/thread.h"
#include "gpusim/trace.h"
#include "simcheck/report.h"
#include "simfault/fault.h"
#include "simprof/profile.h"
#include "support/status.h"

namespace simtomp::gpusim {

struct LaunchConfig {
  uint32_t numBlocks = 1;
  /// Threads per block. Need not be a warp multiple: a partial final
  /// warp is supported (its member mask has fewer lanes, and full-mask
  /// warp collectives synchronize only the existing lanes).
  uint32_t threadsPerBlock = 32;
  /// Host threads executing independent blocks (simulation wall-clock
  /// only; modeled cycles are unaffected). 0 = auto: the
  /// SIMTOMP_HOST_WORKERS environment variable if set, else
  /// hardware_concurrency. 1 = today's serial path.
  uint32_t hostWorkers = 0;
  /// Correctness checking (simcheck). Default kAuto resolves the
  /// SIMTOMP_CHECK environment variable on every launch; findings land
  /// in Device::lastCheckReport(), and kFatal additionally fails the
  /// launch when the report is not clean. Checking charges no modeled
  /// cycles — stats are bit-identical with checking on or off.
  simcheck::CheckConfig check{};
  /// Fault injection (simfault). An empty `fault.spec` consults the
  /// SIMTOMP_FAULT environment variable on every launch;
  /// `fault.simdActive` is filled by the omprt launch layer so
  /// when=simd plans can be evaluated at arm time.
  simfault::FaultConfig fault{};
  /// Per-block watchdog step budget. 0 = auto (SIMTOMP_WATCHDOG env or
  /// the built-in default); simfault::kWatchdogOff disables the
  /// watchdog. Injected faults charge no modeled cycles, and the budget
  /// check lives in the fiber scheduler loop, off the device-side hot
  /// path — stats are bit-identical with the watchdog on or off.
  uint64_t watchdogSteps = 0;
  /// Hierarchical profiling (simprof). Default kAuto resolves the
  /// SIMTOMP_PROF environment variable on every launch; the construct
  /// tree lands in Device::lastProfile(). Profiling charges no modeled
  /// cycles — stats are bit-identical with profiling on or off.
  simprof::ProfileConfig profile{};
};

/// Optional per-block hook: runs on the host before a block starts, e.g.
/// so the OpenMP runtime can install its TeamState (BlockEngine user
/// state) for that block. With hostWorkers > 1 the hook is invoked
/// concurrently from the worker threads, so it must only touch state
/// local to the given block (index distinct slots by engine.blockId()).
using BlockSetupHook = std::function<void(BlockEngine&)>;

class Device {
 public:
  explicit Device(ArchSpec arch = ArchSpec::nvidiaA100(),
                  CostModel cost = CostModel{},
                  size_t global_mem_bytes = kDefaultGlobalMem);

  static constexpr size_t kDefaultGlobalMem = 512ull * 1024 * 1024;

  [[nodiscard]] const ArchSpec& arch() const { return arch_; }
  [[nodiscard]] const CostModel& costModel() const { return cost_; }
  [[nodiscard]] DeviceMemory& memory() { return memory_; }

  /// Allocate a typed global-memory array and return a charged view.
  template <typename T>
  Result<GlobalSpan<T>> allocateArray(size_t count) {
    auto ptr = memory_.allocate(count * sizeof(T), alignof(T) < 16 ? 16 : alignof(T));
    if (!ptr.isOk()) return ptr.status();
    return GlobalSpan<T>(reinterpret_cast<T*>(memory_.raw(ptr.value())),
                         count);
  }

  Status freeArray(const void* data) {
    return memory_.free(static_cast<DevPtr>(
        reinterpret_cast<const std::byte*>(data) - memory_.raw(0)));
  }

  /// Run a kernel over the grid. Blocks are modeled as concurrent per
  /// the SM wave schedule; on the host they execute on
  /// `config.hostWorkers` pool threads (serially when 1). Per-block
  /// results are merged in block order after the join, so stats,
  /// counters and the trace timeline are identical for any worker
  /// count. Launches on one Device must not overlap; use a
  /// DeviceManager for concurrent multi-device work.
  Result<KernelStats> launch(const LaunchConfig& config, const Kernel& kernel,
                             const BlockSetupHook& setup = nullptr);

  /// Attach (or detach with nullptr) a trace recorder; subsequent
  /// launches record block spans on the modeled SM timeline.
  void setTraceRecorder(TraceRecorder* recorder) { trace_ = recorder; }
  [[nodiscard]] TraceRecorder* traceRecorder() const { return trace_; }

  /// Findings of the most recent launch (empty when checking was off
  /// or the launch was clean). Valid after launch() returns — also
  /// when the launch itself failed, so divergence diagnostics survive
  /// the deadlocked launch that produced them.
  [[nodiscard]] const simcheck::CheckReport& lastCheckReport() const {
    return last_check_report_;
  }
  /// Effective check mode of the most recent launch (never kAuto).
  [[nodiscard]] simcheck::CheckMode lastCheckMode() const {
    return last_check_mode_;
  }

  /// Construct-tree profile of the most recent launch (enabled only
  /// when profiling was on). Published like lastCheckReport(): also
  /// for failed launches, so a deadlock's partial timeline survives.
  /// On success the root's inclusive cycles equal KernelStats.cycles.
  [[nodiscard]] const simprof::LaunchProfile& lastProfile() const {
    return last_profile_;
  }
  /// Effective profile mode of the most recent launch (never kAuto).
  [[nodiscard]] simprof::ProfileMode lastProfileMode() const {
    return last_profile_mode_;
  }

  /// Simulate a device reset (the recovery path runs this between a
  /// faulted launch and its retry). Deliberately keeps
  /// lastCheckReport() — diagnostics must survive recovery — and the
  /// fault injector's consumed counts, so a count-bounded transient
  /// fault stays consumed and the retry heals.
  void reset() { ++reset_count_; }
  [[nodiscard]] uint64_t resetCount() const { return reset_count_; }

  /// The per-device fault injector (arming state and launch ordinal).
  [[nodiscard]] const simfault::Injector& faultInjector() const {
    return injector_;
  }

 private:
  ArchSpec arch_;
  CostModel cost_;
  DeviceMemory memory_;
  TraceRecorder* trace_ = nullptr;
  uint64_t launch_count_ = 0;
  uint64_t reset_count_ = 0;
  simcheck::CheckReport last_check_report_;
  simcheck::CheckMode last_check_mode_ = simcheck::CheckMode::kOff;
  simprof::LaunchProfile last_profile_;
  simprof::ProfileMode last_profile_mode_ = simprof::ProfileMode::kOff;
  simfault::Injector injector_;
};

}  // namespace simtomp::gpusim
