#include "hostrt/device_manager.h"

#include <algorithm>

#include "simprof/metrics.h"

namespace simtomp::hostrt {

namespace {

/// Deterministic launch-shape text for AttemptRecords. Deliberately
/// excludes hostWorkers (and anything wall-clock): the same fault plan
/// must produce byte-identical reports for any SIMTOMP_HOST_WORKERS.
std::string shapeString(const omprt::TargetConfig& config) {
  std::string out = std::to_string(config.numTeams) + "x" +
                    std::to_string(config.threadsPerTeam);
  out += " teams=";
  out += omprt::execModeName(config.teamsMode);
  out += " parallel=";
  out += omprt::execModeName(config.parallelMode);
  out += " simdlen=" + std::to_string(config.simdlen);
  return out;
}

/// Only UNAVAILABLE (a lost device) is worth retrying with the same
/// shape: a trap, deadline or exhaustion reproduces deterministically.
bool isTransient(StatusCode code) { return code == StatusCode::kUnavailable; }

}  // namespace

DeviceManager::DeviceManager(std::vector<gpusim::ArchSpec> specs,
                             gpusim::CostModel cost,
                             TransferModel transfer_model) {
  SIMTOMP_CHECK(!specs.empty(), "DeviceManager needs at least one device");
  devices_.reserve(specs.size());
  for (auto& spec : specs) {
    devices_.push_back(
        std::make_unique<gpusim::Device>(std::move(spec), cost));
  }
  envs_.reserve(devices_.size());
  queues_.reserve(devices_.size());
  for (auto& dev : devices_) {
    envs_.push_back(std::make_unique<DataEnvironment>(*dev, transfer_model));
    queues_.push_back(std::make_unique<TargetTaskQueue>(*dev));
  }
  health_.assign(devices_.size(), simfault::DeviceHealth::kHealthy);
  quarantined_ = std::make_unique<std::atomic<bool>[]>(devices_.size());
  for (size_t n = 0; n < devices_.size(); ++n) {
    quarantined_[n].store(false, std::memory_order_relaxed);
  }
  last_resilience_.resize(devices_.size());
}

void DeviceManager::applyDefaults(omprt::TargetConfig& config) const {
  std::shared_lock lock(defaults_mutex_);
  if (config.hostWorkers == 0) config.hostWorkers = default_host_workers_;
  if (config.check.mode == simcheck::CheckMode::kAuto) {
    config.check = default_check_;
  }
  if (config.profile.mode == simprof::ProfileMode::kAuto) {
    config.profile = default_profile_;
  }
}

Status DeviceManager::resolveTuning(size_t n, omprt::TargetConfig& config,
                                    gpusim::Device* device,
                                    const omprt::TargetRegionFn* region) {
  if (config.tuneKey.empty() || !omprt::hasAutoLaunchFields(config)) {
    return Status::ok();
  }
  simtune::TuneMode requested_mode;
  std::shared_ptr<simtune::Tuner> tuner;
  {
    std::shared_lock lock(defaults_mutex_);
    requested_mode = default_tune_mode_;
    tuner = default_tuner_;
  }
  const simtune::TuneResolution resolution =
      simtune::resolveTuneMode(requested_mode);
  if (resolution.effective == simtune::TuneMode::kOff) return Status::ok();
  if (tuner == nullptr) {
    // Lazy default-tuner creation: re-check under the exclusive lock so
    // concurrent launches agree on one instance.
    std::unique_lock lock(defaults_mutex_);
    if (default_tuner_ == nullptr) {
      default_tuner_ = std::make_shared<simtune::Tuner>();
    }
    tuner = default_tuner_;
  }
  gpusim::Device& dev = *devices_[n];
  if (tuner->resolveConfig(dev.arch(), dev.costModel(), config)) {
    if (device != nullptr && device->traceRecorder() != nullptr) {
      device->traceRecorder()->recordInstant(
          "tune cache hit: " + config.tuneKey, 0);
    }
    return Status::ok();
  }
  // Cache miss. kCache falls back to the heuristics in launchTarget;
  // kTune runs a trial search when the caller can run trials (the
  // synchronous launch path — deferred launches never tune, since the
  // trial launches would reorder against queued work).
  if (resolution.effective == simtune::TuneMode::kTune && device != nullptr &&
      region != nullptr) {
    simtune::TuneRequest request;
    request.strategy = simtune::TuneStrategy::kHillClimb;
    request.maxTrials = 64;
    request.check = config.check;
    const Result<simtune::TuneOutcome> tuned =
        tuner->tuneTarget(*device, config, *region, request);
    if (!tuned.isOk()) return tuned.status();
  }
  return Status::ok();
}

omprt::TargetConfig DeviceManager::effectiveConfig(
    size_t n, omprt::TargetConfig config) {
  SIMTOMP_CHECK(n < devices_.size(), "device number out of range");
  applyDefaults(config);
  (void)resolveTuning(n, config, /*device=*/nullptr, /*region=*/nullptr);
  omprt::resolveAutoConfig(devices_[n]->arch(), config);
  config.check = simcheck::CheckConfig{
      simcheck::resolveCheckMode(config.check.mode).effective,
      config.check.maxDiagnostics};
  config.profile.mode =
      simprof::resolveProfileMode(config.profile.mode).effective;
  return config;
}

Result<gpusim::KernelStats> DeviceManager::launchOn(
    size_t n, const omprt::TargetConfig& config,
    const omprt::TargetRegionFn& region) {
  if (n >= devices_.size()) {
    return Status::invalidArgument("device number out of range");
  }
  if (isQuarantined(n)) {
    return Status::unavailable("device " + std::to_string(n) +
                               " is quarantined (circuit breaker open)");
  }
  omprt::TargetConfig effective = config;
  applyDefaults(effective);
  const Status tuned = resolveTuning(n, effective, devices_[n].get(), &region);
  if (!tuned.isOk()) return tuned;
  const simfault::ResilienceResolution resilience =
      simfault::resolveResilienceMode(defaultResilienceMode());
  if (resilience.effective == simfault::ResilienceMode::kOff) {
    return omprt::launchTarget(*devices_[n], effective, region);
  }
  return launchResilient(n, std::move(effective), region);
}

Result<gpusim::KernelStats> DeviceManager::launchResilient(
    size_t n, omprt::TargetConfig config,
    const omprt::TargetRegionFn& region) {
  gpusim::Device& dev = *devices_[n];
  // Pin the auto fields now so every AttemptRecord names the concrete
  // shape that ran (launchTarget would resolve them identically).
  omprt::resolveAutoConfig(dev.arch(), config);

  simfault::ResilienceReport report;
  std::string trail(simfault::deviceHealthName(health_[n]));
  const auto noteHealth = [&](simfault::DeviceHealth next) {
    if (next == health_[n]) return;
    health_[n] = next;
    trail += '>';
    trail += simfault::deviceHealthName(next);
  };
  const auto resetForRecovery = [&] {
    dev.reset();
    ++report.resets;
    noteHealth(simfault::DeviceHealth::kReset);
  };

  Result<gpusim::KernelStats> result = Status::internal("no attempt ran");
  const auto attempt = [&](simfault::RecoveryStage stage,
                           const omprt::TargetConfig& shape,
                           uint32_t backoff_ms) {
    simfault::AttemptRecord record;
    record.stage = stage;
    record.shape = shapeString(shape);
    record.backoffMs = backoff_ms;
    try {
      result = omprt::launchTarget(dev, shape, region);
    } catch (const StatusException& e) {
      result = e.status();
    } catch (const std::exception& e) {
      result = Status::internal(std::string("target region threw: ") +
                                e.what());
    } catch (...) {
      result = Status::internal("target region threw a non-standard exception");
    }
    record.code = result.isOk() ? StatusCode::kOk : result.status().code();
    if (!result.isOk()) record.message = result.status().message();
    report.attempts.push_back(std::move(record));
    noteHealth(result.isOk() ? simfault::DeviceHealth::kHealthy
                             : simfault::DeviceHealth::kFaulted);
    return result.isOk();
  };

  const simfault::ResiliencePolicy policy = defaultResiliencePolicy();
  auto& metrics = simprof::MetricsRegistry::global();
  // Recovery-rung instants on the device trace (when one is attached),
  // timestamped by attempt ordinal: recovery happens between launches,
  // off the modeled timeline.
  const auto noteRung = [&](const char* what) {
    if (dev.traceRecorder() != nullptr) {
      dev.traceRecorder()->recordInstant(
          what, static_cast<uint64_t>(report.attempts.size()));
    }
  };
  bool ok = attempt(simfault::RecoveryStage::kInitial, config, 0);

  // Rung 1: same shape again, after a reset and capped exponential
  // backoff — transient (UNAVAILABLE) faults only; everything else
  // reproduces deterministically and retrying it is wasted work.
  for (uint32_t retry = 1;
       !ok && retry <= policy.maxRetries && isTransient(result.status().code());
       ++retry) {
    resetForRecovery();
    metrics.add(simprof::metric::kResilienceRetriesTotal);
    noteRung("resilience retry");
    const auto backoff =
        static_cast<uint32_t>(simfault::cappedExponentialBackoff(
            policy.backoffBaseMs, policy.backoffCapMs, retry));
    ok = attempt(simfault::RecoveryStage::kRetry, config, backoff);
  }

  // Rung 2: give up SIMD and run the parallel regions in generic mode,
  // the paper's always-correct execution scheme. Only meaningful when
  // it changes the shape.
  if (!ok && policy.modeFallback && config.simdlen > 1) {
    omprt::TargetConfig fallback = config;
    fallback.simdlen = 1;
    fallback.parallelMode = omprt::ExecMode::kGeneric;
    resetForRecovery();
    metrics.add(simprof::metric::kResilienceModeFallbacksTotal);
    noteRung("resilience mode fallback");
    ok = attempt(simfault::RecoveryStage::kModeFallback, fallback, 0);
  }

  // Rung 3: host-serial reference execution — one team, one warp, one
  // host worker, faults and checking stripped. The shape every kernel
  // in this repo is verified against, so it succeeds unless the region
  // itself is broken.
  if (!ok && policy.hostSerial) {
    omprt::TargetConfig serial = config;
    serial.numTeams = 1;
    serial.threadsPerTeam = dev.arch().warpSize;
    serial.teamsMode = omprt::ExecMode::kSPMD;
    serial.parallelMode = omprt::ExecMode::kSPMD;
    serial.simdlen = 1;
    serial.hostWorkers = 1;
    serial.fault.spec = "off";  // empty would re-consult SIMTOMP_FAULT
    serial.check.mode = simcheck::CheckMode::kOff;
    resetForRecovery();
    metrics.add(simprof::metric::kResilienceHostSerialTotal);
    noteRung("resilience host-serial");
    ok = attempt(simfault::RecoveryStage::kHostSerial, serial, 0);
  }

  report.recovered = ok && report.attempts.size() > 1;
  report.finalCode = ok ? StatusCode::kOk : result.status().code();
  if (!ok) report.finalMessage = result.status().message();
  report.healthTrail = std::move(trail);
  last_resilience_[n] = std::move(report);
  return result;
}

std::future<Result<gpusim::KernelStats>> DeviceManager::launchOnAsync(
    size_t n, omprt::TargetConfig config, omprt::TargetRegionFn region) {
  SIMTOMP_CHECK(n < devices_.size(), "device number out of range");
  if (isQuarantined(n)) {
    // Fail fast without occupying the queue: a quarantined device must
    // not accumulate deferred work it would only fail later.
    std::promise<Result<gpusim::KernelStats>> refused;
    refused.set_value(Status::unavailable(
        "device " + std::to_string(n) +
        " is quarantined (circuit breaker open)"));
    return refused.get_future();
  }
  applyDefaults(config);
  // Deferred launches resolve from the tuning cache only (see
  // resolveTuning); a miss falls back to launchTarget's heuristics.
  (void)resolveTuning(n, config, /*device=*/nullptr, /*region=*/nullptr);
  return queues_[n]->enqueue(config, std::move(region));
}

void DeviceManager::drainAll() {
  for (auto& queue : queues_) queue->drain();
}

}  // namespace simtomp::hostrt
