#include "gpusim/memory.h"

#include <algorithm>

namespace simtomp::gpusim {

namespace {
size_t alignUp(size_t value, size_t align) {
  return (value + align - 1) & ~(align - 1);
}
}  // namespace

FreeListAllocator::FreeListAllocator(size_t capacity) : capacity_(capacity) {
  if (capacity > 0) free_list_.push_back({0, capacity});
}

Result<DevPtr> FreeListAllocator::allocate(size_t bytes, size_t align) {
  if (bytes == 0) {
    return Status::invalidArgument("zero-byte allocation");
  }
  if (align == 0 || (align & (align - 1)) != 0) {
    return Status::invalidArgument("alignment must be a power of two");
  }
  for (size_t i = 0; i < free_list_.size(); ++i) {
    Block& fb = free_list_[i];
    const DevPtr aligned = alignUp(fb.offset, align);
    const size_t padding = aligned - fb.offset;
    if (fb.size < padding + bytes) continue;

    // Split: [fb.offset, aligned) stays free, allocation at `aligned`,
    // remainder re-enters the free list.
    const size_t remainder = fb.size - padding - bytes;
    const DevPtr result = aligned;
    if (padding > 0 && remainder > 0) {
      fb.size = padding;
      free_list_.insert(free_list_.begin() + static_cast<long>(i) + 1,
                        {aligned + bytes, remainder});
    } else if (padding > 0) {
      fb.size = padding;
    } else if (remainder > 0) {
      fb.offset = aligned + bytes;
      fb.size = remainder;
    } else {
      free_list_.erase(free_list_.begin() + static_cast<long>(i));
    }
    const auto pos = std::lower_bound(
        live_.begin(), live_.end(), result,
        [](const Block& b, DevPtr p) { return b.offset < p; });
    live_.insert(pos, {result, bytes});
    return result;
  }
  return Status::resourceExhausted("memory arena exhausted");
}

Status FreeListAllocator::free(DevPtr ptr) {
  const auto it = std::lower_bound(
      live_.begin(), live_.end(), ptr,
      [](const Block& b, DevPtr p) { return b.offset < p; });
  if (it == live_.end() || it->offset != ptr) {
    return Status::invalidArgument("free of unknown pointer");
  }
  Block fb{it->offset, it->size};
  live_.erase(it);

  // Insert sorted and coalesce with neighbours.
  auto pos = std::lower_bound(
      free_list_.begin(), free_list_.end(), fb.offset,
      [](const Block& b, DevPtr p) { return b.offset < p; });
  pos = free_list_.insert(pos, fb);
  if (pos + 1 != free_list_.end() &&
      pos->offset + pos->size == (pos + 1)->offset) {
    pos->size += (pos + 1)->size;
    free_list_.erase(pos + 1);
  }
  if (pos != free_list_.begin()) {
    auto prev = pos - 1;
    if (prev->offset + prev->size == pos->offset) {
      prev->size += pos->size;
      free_list_.erase(pos);
    }
  }
  return Status::ok();
}

size_t FreeListAllocator::bytesInUse() const {
  size_t total = 0;
  for (const Block& b : live_) total += b.size;
  return total;
}

DeviceMemory::DeviceMemory(size_t bytes) : arena_(bytes), allocator_(bytes) {}

Result<DevPtr> DeviceMemory::allocate(size_t bytes, size_t align) {
  std::lock_guard<std::mutex> lock(mutex_);
  return allocator_.allocate(bytes, align);
}

Status DeviceMemory::free(DevPtr ptr) {
  std::lock_guard<std::mutex> lock(mutex_);
  return allocator_.free(ptr);
}

size_t DeviceMemory::bytesInUse() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return allocator_.bytesInUse();
}

size_t DeviceMemory::liveAllocations() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return allocator_.liveAllocations();
}

std::byte* SharedMemory::allocate(size_t bytes, size_t align) {
  auto ptr = allocator_.allocate(bytes, align);
  if (!ptr.isOk()) return nullptr;
  const size_t in_use = allocator_.bytesInUse();
  if (in_use > peak_used_) peak_used_ = in_use;
  return arena_.data() + ptr.value();
}

Status SharedMemory::free(const std::byte* ptr) {
  if (ptr < arena_.data() || ptr >= arena_.data() + arena_.size()) {
    return Status::invalidArgument("pointer outside this shared arena");
  }
  return allocator_.free(static_cast<DevPtr>(ptr - arena_.data()));
}

}  // namespace simtomp::gpusim
