// Serve throughput: the launch service's scale gate.
//
// One seeded request mix (1200 requests, 4 tenants, no mid-mix drains,
// quotas wide open) replayed through a LaunchService over 4 tiny
// devices. Because the mix never drains until the end, one pump
// dispatches everything — so the service must sustain >= 1000
// concurrent in-flight launches across the 4 device queues (gated on
// peakInFlight()). The same mix then replays at 8 host workers and at
// a prime shard count; every per-tenant stats dump must be
// byte-identical to the first (aborts otherwise — the determinism
// contract of src/simserve/service.h). Host wall time is reported as
// requests per host-second, with the worst per-tenant p99 modeled
// latency, in BENCH_serving.json. tools/ci.sh stage 9 runs this after
// the replay byte-compare.
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <sstream>
#include <string>
#include <vector>

#include "bench_common.h"
#include "hostrt/device_manager.h"
#include "simserve/mix.h"
#include "simserve/service.h"

namespace {

using namespace simtomp;
using bench::checkOk;
using bench::Row;

constexpr size_t kDevices = 4;
constexpr uint32_t kRequests = 1200;
constexpr uint64_t kInFlightGate = 1000;

struct RunOut {
  std::string stats;       ///< dumpStats bytes (the identity surface)
  double hostMs = 0.0;
  uint64_t peakInFlight = 0;
  uint64_t admitted = 0;
  uint64_t p99 = 0;  ///< worst per-tenant p99 modeled latency (cycles)
};

simserve::Mix theMix() {
  simserve::MixProfile profile;
  profile.seed = 42;
  profile.tenants = 4;
  profile.requests = kRequests;
  profile.pumpEvery = 0;  // queue everything; one pump dispatches it all
  profile.maxInFlight = kRequests;
  profile.maxQueued = kRequests;
  return simserve::generateMix(profile);
}

RunOut runOnce(uint32_t workers, uint32_t shards) {
  std::vector<gpusim::ArchSpec> specs(kDevices, gpusim::ArchSpec::testTiny());
  hostrt::DeviceManager mgr(std::move(specs));
  simserve::ServiceConfig config;
  config.shardCount = shards;
  simserve::LaunchService service(mgr, config);

  const simserve::Mix mix = theMix();
  simserve::ReplayOptions options;
  options.hostWorkers = workers;

  const bench::WallTimer timer;
  const simserve::ReplayReport report =
      checkOk(simserve::replayMix(service, mix, options), "serve replay");
  RunOut out;
  out.hostMs = timer.elapsedMs();
  out.peakInFlight = service.peakInFlight();
  out.admitted = report.admitted;
  for (uint32_t t = 0; t < 4; ++t) {
    std::string name = "t";
    name += std::to_string(t);
    const simserve::TenantStats stats = service.tenantStats(name);
    out.p99 = std::max(out.p99, stats.latency.quantileUpperBound(0.99));
  }
  std::ostringstream stats;
  service.dumpStats(stats);
  out.stats = stats.str();
  return out;
}

void requireIdentical(const RunOut& a, const RunOut& b, const char* what) {
  if (a.stats != b.stats) {
    std::fprintf(stderr,
                 "FATAL: per-tenant stats differ (%s)\n--- a ---\n%s--- b "
                 "---\n%s",
                 what, a.stats.c_str(), b.stats.c_str());
    std::abort();
  }
}

void requireScale(const RunOut& run, const char* what) {
  if (run.peakInFlight < kInFlightGate) {
    std::fprintf(stderr,
                 "FATAL: %s: peak in-flight %llu below the %llu gate\n", what,
                 static_cast<unsigned long long>(run.peakInFlight),
                 static_cast<unsigned long long>(kInFlightGate));
    std::abort();
  }
}

Status writeServingJson(const RunOut& w1, const RunOut& w8) {
  std::FILE* f = std::fopen("BENCH_serving.json", "w");
  if (f == nullptr) {
    return Status::internal("cannot open BENCH_serving.json for writing");
  }
  const auto reqPerS = [](const RunOut& run) {
    return run.hostMs > 0.0
               ? static_cast<double>(run.admitted) / (run.hostMs / 1000.0)
               : 0.0;
  };
  std::fprintf(
      f,
      "{\n"
      "  \"bench\": \"serving\",\n"
      "  \"devices\": %zu,\n"
      "  \"requests\": %u,\n"
      "  \"peak_inflight\": %llu,\n"
      "  \"peak_inflight_gate\": %llu,\n"
      "  \"p99_modeled_latency_cycles\": %llu,\n"
      "  \"runs\": [\n"
      "    {\"workers\": 1, \"host_ms\": %.3f, "
      "\"requests_per_host_s\": %.1f},\n"
      "    {\"workers\": 8, \"host_ms\": %.3f, "
      "\"requests_per_host_s\": %.1f}\n"
      "  ]\n"
      "}\n",
      kDevices, kRequests, static_cast<unsigned long long>(w1.peakInFlight),
      static_cast<unsigned long long>(kInFlightGate),
      static_cast<unsigned long long>(w1.p99), w1.hostMs, reqPerS(w1),
      w8.hostMs, reqPerS(w8));
  std::fclose(f);
  std::printf("wrote BENCH_serving.json\n");
  return Status::ok();
}

}  // namespace

int main() {
  const RunOut workers1 = runOnce(/*workers=*/1, /*shards=*/4);
  const RunOut workers8 = runOnce(/*workers=*/8, /*shards=*/4);
  const RunOut shards13 = runOnce(/*workers=*/1, /*shards=*/13);

  requireScale(workers1, "workers=1 shards=4");
  requireScale(workers8, "workers=8 shards=4");
  requireScale(shards13, "workers=1 shards=13");
  requireIdentical(workers1, workers8, "1 vs 8 host workers");
  requireIdentical(workers1, shards13, "4 vs 13 shards");

  // Modeled latency totals are identical by contract; the interesting
  // column is host wall time (requests drain faster with more workers).
  const uint64_t modeled = workers1.p99;
  std::vector<Row> rows;
  rows.push_back({"workers=1 shards=4", modeled, 1.0, workers1.hostMs});
  rows.push_back({"workers=8 shards=4", modeled,
                  workers1.hostMs / workers8.hostMs, workers8.hostMs});
  rows.push_back({"workers=1 shards=13", modeled,
                  workers1.hostMs / shards13.hostMs, shards13.hostMs});
  bench::printTable("Serve throughput: 1200 requests over 4 devices",
                    "p99 modeled latency (cycles)", modeled, rows);
  std::printf("peak in-flight: %llu (gate %llu), admitted %llu\n",
              static_cast<unsigned long long>(workers1.peakInFlight),
              static_cast<unsigned long long>(kInFlightGate),
              static_cast<unsigned long long>(workers1.admitted));

  const Status json = writeServingJson(workers1, workers8);
  if (!json.isOk()) {
    std::fprintf(stderr, "FATAL: %s\n", json.toString().c_str());
    return 1;
  }
  return 0;
}
