// Paper Fig. 9: speedup of the 3-level simd implementation over the
// original two levels of parallelism, for all SIMD group sizes.
//
// Kernels and expected shapes (paper section 6.3):
//   sparse_matvec — max ~3.5x, best at group size 8 (skewed row lengths
//                   around a small mean; 2-level baseline uses 32-thread
//                   teams in generic mode);
//   SU3_bench     — max ~1.3x, best at group size 4 with 2 and 8 close
//                   (36-iteration inner loop, saturated 2-level
//                   baseline; gains come from reducing idle threads);
//   ideal kernel  — ~2.15x at group size 32 with 16 very close (inner
//                   loop fits one warp; outer loop too small to fill
//                   the device two-level).
#include <benchmark/benchmark.h>

#include "apps/csr.h"
#include "apps/ideal_kernel.h"
#include "apps/sparse_matvec.h"
#include "apps/su3.h"
#include "bench_common.h"
#include "gpusim/device.h"

namespace {

using namespace simtomp;
using bench::checkOk;
using bench::checkVerified;
using bench::Row;

constexpr uint32_t kGroupSizes[] = {2, 4, 8, 16, 32};

// ---------------- sparse_matvec ----------------

apps::CsrMatrix spmvMatrix() {
  apps::CsrGenConfig config;
  config.numRows = 4096;
  config.numCols = 4096;
  config.meanRowLength = 8;
  config.maxRowLength = 64;
  config.seed = 42;
  return generateCsr(config);
}

uint64_t runSpmvCycles(const apps::SpmvOptions& options,
                       double* host_ms = nullptr) {
  gpusim::Device dev;  // fresh A100-like device per run
  static const apps::CsrMatrix A = spmvMatrix();
  const bench::WallTimer timer;
  const auto result = checkOk(runSpmv(dev, A, options), "sparse_matvec");
  if (host_ms != nullptr) *host_ms = timer.elapsedMs();
  checkVerified(result.verified, "sparse_matvec");
  return result.stats.cycles;
}

apps::SpmvOptions spmvBaselineOptions() {
  apps::SpmvOptions options;
  options.variant = apps::SpmvVariant::kTwoLevel;
  // Best 2-level configuration found by sweeping teams/threads (the
  // paper compares against a tuned baseline); 32-thread teams are
  // strictly worse here, so using them would inflate the speedup.
  options.numTeams = 108;
  options.threadsPerTeam = 128;
  return options;
}

apps::SpmvOptions spmvSimdOptions(uint32_t group) {
  apps::SpmvOptions options;
  options.variant = apps::SpmvVariant::kThreeLevelAtomic;
  options.numTeams = 64;  // "a much larger thread count per OpenMP team"
  options.threadsPerTeam = 256;
  options.simdlen = group;
  return options;
}

void BM_SpmvTwoLevel(benchmark::State& state) {
  uint64_t cycles = 0;
  for (auto _ : state) cycles = runSpmvCycles(spmvBaselineOptions());
  state.counters["sim_cycles"] = static_cast<double>(cycles);
}
BENCHMARK(BM_SpmvTwoLevel)->Iterations(1)->Unit(benchmark::kMillisecond);

uint64_t spmvBaselineCycles() {
  static const uint64_t cycles = runSpmvCycles(spmvBaselineOptions());
  return cycles;
}

void BM_SpmvSimd(benchmark::State& state) {
  const auto group = static_cast<uint32_t>(state.range(0));
  uint64_t cycles = 0;
  for (auto _ : state) cycles = runSpmvCycles(spmvSimdOptions(group));
  state.counters["sim_cycles"] = static_cast<double>(cycles);
  state.counters["speedup"] = static_cast<double>(spmvBaselineCycles()) /
                              static_cast<double>(cycles);
}
BENCHMARK(BM_SpmvSimd)->Arg(2)->Arg(4)->Arg(8)->Arg(16)->Arg(32)->Iterations(1)->Unit(benchmark::kMillisecond);

// ---------------- SU3_bench ----------------

const apps::Su3Workload& su3Workload() {
  static const apps::Su3Workload w = apps::generateSu3(5120, 3);
  return w;
}

uint64_t runSu3Cycles(uint32_t group) {
  gpusim::Device dev;
  apps::Su3Options options;
  options.numTeams = 32;
  options.threadsPerTeam = 128;
  options.simdlen = group;
  const auto result = checkOk(runSu3(dev, su3Workload(), options), "su3");
  checkVerified(result.verified, "su3");
  return result.stats.cycles;
}

uint64_t su3BaselineCycles() {
  static const uint64_t cycles = runSu3Cycles(1);
  return cycles;
}

void BM_Su3(benchmark::State& state) {
  const auto group = static_cast<uint32_t>(state.range(0));
  uint64_t cycles = 0;
  for (auto _ : state) cycles = runSu3Cycles(group);
  state.counters["sim_cycles"] = static_cast<double>(cycles);
  if (group > 1) {
    state.counters["speedup"] = static_cast<double>(su3BaselineCycles()) /
                                static_cast<double>(cycles);
  }
}
BENCHMARK(BM_Su3)->Arg(1)->Arg(2)->Arg(4)->Arg(8)->Arg(16)->Arg(32)->Iterations(1)->Unit(benchmark::kMillisecond);

// ---------------- ideal benchmarking kernel ----------------

const apps::IdealWorkload& idealWorkload() {
  static const apps::IdealWorkload w = apps::generateIdeal(432, 32, 5);
  return w;
}

uint64_t runIdealCycles(uint32_t group) {
  gpusim::Device dev;
  apps::IdealOptions options;
  options.numTeams = 108;
  options.threadsPerTeam = 128;
  options.simdlen = group;
  options.flopsPerElement = 2;
  const auto result =
      checkOk(runIdeal(dev, idealWorkload(), options), "ideal");
  checkVerified(result.verified, "ideal");
  return result.stats.cycles;
}

uint64_t idealBaselineCycles() {
  static const uint64_t cycles = runIdealCycles(1);
  return cycles;
}

void BM_Ideal(benchmark::State& state) {
  const auto group = static_cast<uint32_t>(state.range(0));
  uint64_t cycles = 0;
  for (auto _ : state) cycles = runIdealCycles(group);
  state.counters["sim_cycles"] = static_cast<double>(cycles);
  if (group > 1) {
    state.counters["speedup"] = static_cast<double>(idealBaselineCycles()) /
                                static_cast<double>(cycles);
  }
}
BENCHMARK(BM_Ideal)->Arg(1)->Arg(2)->Arg(4)->Arg(8)->Arg(16)->Arg(32)->Iterations(1)->Unit(benchmark::kMillisecond);

// ---------------- Paper-style summary ----------------

void printFig9Summary() {
  {
    const uint64_t base = spmvBaselineCycles();
    std::vector<Row> rows;
    for (uint32_t g : kGroupSizes) {
      const uint64_t c = runSpmvCycles(spmvSimdOptions(g));
      rows.push_back({"simd group " + std::to_string(g), c,
                      static_cast<double>(base) / static_cast<double>(c)});
    }
    bench::printTable("Fig. 9a sparse_matvec (paper: max ~3.5x @ group 8)",
                      "2-level (teams+parallel)", base, rows);
  }
  {
    const uint64_t base = su3BaselineCycles();
    std::vector<Row> rows;
    for (uint32_t g : kGroupSizes) {
      const uint64_t c = runSu3Cycles(g);
      rows.push_back({"simd group " + std::to_string(g), c,
                      static_cast<double>(base) / static_cast<double>(c)});
    }
    bench::printTable("Fig. 9b SU3_bench (paper: max ~1.3x @ group 4)",
                      "2-level (serial inner loop)", base, rows);
  }
  {
    const uint64_t base = idealBaselineCycles();
    std::vector<Row> rows;
    for (uint32_t g : kGroupSizes) {
      const uint64_t c = runIdealCycles(g);
      rows.push_back({"simd group " + std::to_string(g), c,
                      static_cast<double>(base) / static_cast<double>(c)});
    }
    bench::printTable("Fig. 9c ideal kernel (paper: ~2.15x @ group 32)",
                      "2-level (serial inner loop)", base, rows);
  }
}

// Host-parallel block execution: same spmv kernel, same simulated
// cycles, wall-clock scaled by spreading independent teams over host
// workers. Speedup here is host-time speedup over the 1-worker serial
// run; the table asserts (via the cycle column) that the modeled
// results don't move.
void printHostParallelSummary() {
  constexpr uint32_t kWorkerCounts[] = {2, 4, 8};
  apps::SpmvOptions options = spmvSimdOptions(8);
  options.hostWorkers = 1;
  double serial_ms = 0.0;
  const uint64_t serial_cycles = runSpmvCycles(options, &serial_ms);

  std::vector<Row> rows;
  rows.push_back({"host workers 1 (serial)", serial_cycles, 1.0, serial_ms});
  for (uint32_t workers : kWorkerCounts) {
    options.hostWorkers = workers;
    double ms = 0.0;
    const uint64_t cycles = runSpmvCycles(options, &ms);
    if (cycles != serial_cycles) {
      std::fprintf(stderr,
                   "FATAL: host workers %u changed simulated cycles "
                   "(%llu vs %llu)\n",
                   workers, static_cast<unsigned long long>(cycles),
                   static_cast<unsigned long long>(serial_cycles));
      std::abort();
    }
    rows.push_back({"host workers " + std::to_string(workers), cycles,
                    serial_ms / ms, ms});
  }
  bench::printTable(
      "Host-parallel blocks: spmv simd group 8 (cycles must not move)",
      "host workers 1 (serial)", serial_cycles, rows);
}

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  printFig9Summary();
  printHostParallelSummary();
  (void)bench::writeBenchJson("fig9_simd_benefit");
  return 0;
}
