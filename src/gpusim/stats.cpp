#include "gpusim/stats.h"

#include <cstdio>

namespace simtomp::gpusim {

std::string_view counterName(Counter c) {
  switch (c) {
    case Counter::kAluWork: return "alu_work";
    case Counter::kGlobalLoad: return "global_load";
    case Counter::kGlobalStore: return "global_store";
    case Counter::kSharedLoad: return "shared_load";
    case Counter::kSharedStore: return "shared_store";
    case Counter::kLocalAccess: return "local_access";
    case Counter::kAtomicRmw: return "atomic_rmw";
    case Counter::kWarpSync: return "warp_sync";
    case Counter::kBlockSync: return "block_sync";
    case Counter::kStatePoll: return "state_poll";
    case Counter::kPayloadArgCopy: return "payload_arg_copy";
    case Counter::kDispatchCascade: return "dispatch_cascade";
    case Counter::kDispatchIndirect: return "dispatch_indirect";
    case Counter::kShuffle: return "shuffle";
    case Counter::kGlobalAlloc: return "global_alloc";
    case Counter::kSharingSpaceOverflow: return "sharing_space_overflow";
    case Counter::kParallelRegion: return "parallel_region";
    case Counter::kSimdLoop: return "simd_loop";
    case Counter::kWorkshareLoop: return "workshare_loop";
    case Counter::kSimdLaneRounds: return "simd_lane_rounds";
    case Counter::kSimdIdleLaneRounds: return "simd_idle_lane_rounds";
    case Counter::kCount: break;
  }
  return "unknown";
}

std::string KernelStats::csvHeader() {
  std::string out =
      "cycles,busy_cycles,max_thread_cycles,blocks,threads_per_block,waves,"
      "peak_shared_bytes,warp_occupancy";
  for (size_t i = 0; i < kNumCounters; ++i) {
    out += ",";
    out += counterName(static_cast<Counter>(i));
  }
  return out;
}

std::string KernelStats::csvRow() const {
  char buf[192];
  std::snprintf(buf, sizeof(buf), "%llu,%llu,%llu,%u,%u,%u,%llu,%.4f",
                static_cast<unsigned long long>(cycles),
                static_cast<unsigned long long>(busyCycles),
                static_cast<unsigned long long>(maxThreadCycles), numBlocks,
                threadsPerBlock, waves,
                static_cast<unsigned long long>(peakSharedBytes),
                occupancy.warpOccupancy);
  std::string out(buf);
  for (size_t i = 0; i < kNumCounters; ++i) {
    std::snprintf(buf, sizeof(buf), ",%llu",
                  static_cast<unsigned long long>(counters.values[i]));
    out += buf;
  }
  return out;
}

std::string KernelStats::summary() const {
  char buf[256];
  std::snprintf(buf, sizeof(buf),
                "cycles=%llu busy=%llu maxThread=%llu blocks=%u tpb=%u "
                "waves=%u",
                static_cast<unsigned long long>(cycles),
                static_cast<unsigned long long>(busyCycles),
                static_cast<unsigned long long>(maxThreadCycles), numBlocks,
                threadsPerBlock, waves);
  std::string out(buf);
  for (size_t i = 0; i < kNumCounters; ++i) {
    if (counters.values[i] != 0) {
      std::snprintf(buf, sizeof(buf), " %s=%llu",
                    counterName(static_cast<Counter>(i)).data(),
                    static_cast<unsigned long long>(counters.values[i]));
      out += buf;
    }
  }
  return out;
}

}  // namespace simtomp::gpusim
