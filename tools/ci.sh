#!/usr/bin/env bash
# CI gate for the host-parallel block executor.
#
# Stage 1: regular build, full test suite.
# Stage 2: ThreadSanitizer build; the concurrency-sensitive suites
#          (gpusim_*, omprt_*) run with SIMTOMP_HOST_WORKERS=8 so every
#          launch actually spreads blocks over 8 host workers — a data
#          race in the simulator surfaces here as a test failure even
#          on a single-core CI machine.
# Stage 3: simcheck gate; the simulator suites re-run with
#          SIMTOMP_CHECK=1 (and again over 8 host workers), so a false
#          positive in the sanitizer — or a real race introduced in the
#          runtime — fails CI.
# Stage 4: zero-perturbation guard; one bench binary runs with checking
#          off and on, and the modeled sim_cycles counters must be
#          bit-identical.
# Stage 5: tune smoke + cache-determinism guard; a small-budget
#          hill-climb tune over two corpus apps runs three times into
#          fresh cache files — twice at 1 host worker and once at 8 —
#          and all three saved caches must be byte-identical, so a
#          nondeterministic trial order or worker-count-dependent
#          winner fails CI.
# Stage 6: fault-matrix smoke + resilience-determinism guard; every
#          (fault kind x recovery policy) cell runs three times — twice
#          at 1 host worker, once at 8 — and the printed
#          ResilienceReports must be byte-identical; the simfault
#          suites also re-run under TSan at 8 workers, and the
#          resilience_overhead bench asserts the watchdog never
#          perturbs modeled cycles.
# Stage 7: observability guard; a profiled kernel runs at 1 and 8 host
#          workers and the construct table, folded stacks and metrics
#          dumps must be byte-identical; the deep trace must be valid
#          JSON; the observability_overhead bench asserts profiling
#          never perturbs KernelStats.
# Stage 8: convergence fast-path guard; bench/host_throughput runs the
#          convergent map+reduce kernels with the fast path off and on,
#          the dumped KernelStats must be byte-identical, and the
#          barrier-bound reduce series must clear a 3x
#          modeled-cycles-per-host-second gate.
# Stage 9: launch-service determinism + throughput guard; a seeded
#          request mix replays through simtomp_serve twice at 1 host
#          worker and once each at 8 workers and a prime shard count,
#          and all per-tenant stat dumps must be byte-identical; the
#          serve_throughput bench then gates >= 1000 concurrent
#          in-flight launches across 4 devices and emits
#          BENCH_serving.json.
# Stage 10: differential-fuzz smoke; a fixed-seed simtomp_fuzz campaign
#          runs under SIMTOMP_HOST_WORKERS=1 and =8 and the findings
#          logs must be byte-identical with zero divergences (the
#          campaign pins every cell's worker count explicitly, so the
#          env var must not leak into results); a short full-matrix
#          sweep covers the cross-arch cells; then a kernel with a
#          deliberately planted off-by-one must be caught, auto-
#          minimized, and the emitted repro must fail standalone; a
#          fault-armed sweep (sharing_exhausted on every cell) must
#          stay divergence-free with worker-invariant logs.
# Stage 11: chaos campaign + resilience goodput gate; the seeded
#          simtomp_serve chaos campaign runs four times — rerun, 8
#          host workers, a prime shard count — with zero invariant
#          violations and byte-identical reports; the serve_resilience
#          bench then gates storm goodput >= 70% of fault-free goodput
#          and emits BENCH_serve_resilience.json.
# Stage 12: serving-trace determinism + observability guard; the
#          simtomp_serve trace surfaces (timelines, SLO burn,
#          histograms, flight recorder) and on-demand flight dumps
#          must be byte-identical across reruns, 8 host workers and a
#          prime shard count; the Perfetto export must be valid JSON;
#          the chaos report must be byte-identical with --trace on;
#          a planted invariant violation must auto-dump the flight
#          recorder; the serve_observability_overhead bench then
#          asserts tracing never perturbs the modeled stats dump or
#          replay report and emits BENCH_serve_observability.json.
#
# Usage: tools/ci.sh [build-dir-prefix]   (default: build-ci)
set -euo pipefail

cd "$(dirname "$0")/.."
prefix="${1:-build-ci}"
jobs="$(nproc 2>/dev/null || echo 2)"

echo "=== stage 1: regular build + full ctest ==="
cmake -B "${prefix}" -S . -DCMAKE_BUILD_TYPE=RelWithDebInfo
cmake --build "${prefix}" -j "${jobs}"
ctest --test-dir "${prefix}" --output-on-failure -j "${jobs}"

echo "=== stage 2: TSan build, gpusim+omprt suites at 8 host workers ==="
cmake -B "${prefix}-tsan" -S . -DCMAKE_BUILD_TYPE=RelWithDebInfo \
  -DSIMTOMP_SANITIZE=thread -DSIMTOMP_BUILD_BENCH=OFF \
  -DSIMTOMP_BUILD_EXAMPLES=OFF
cmake --build "${prefix}-tsan" -j "${jobs}"
SIMTOMP_HOST_WORKERS=8 TSAN_OPTIONS="halt_on_error=1 second_deadlock_stack=1" \
  ctest --test-dir "${prefix}-tsan" --output-on-failure -j 1 \
  -R '^(gpusim|omprt|simfault|fastpath|hostrt|simserve|simfuzz|simprof)_'

echo "=== stage 3: simcheck gate (SIMTOMP_CHECK=1 over simulator suites) ==="
SIMTOMP_CHECK=1 \
  ctest --test-dir "${prefix}" --output-on-failure -j "${jobs}" \
  -R '^(gpusim|omprt|apps|simcheck|dsl|integration)_'
SIMTOMP_CHECK=1 SIMTOMP_HOST_WORKERS=8 \
  ctest --test-dir "${prefix}" --output-on-failure -j "${jobs}" \
  -R '^(gpusim|omprt|apps|simcheck)_'

echo "=== stage 4: simcheck zero-perturbation bench guard ==="
off_json="${prefix}/simcheck-guard-off.json"
on_json="${prefix}/simcheck-guard-on.json"
SIMTOMP_CHECK=0 "${prefix}/bench/abl_dispatch" \
  --benchmark_out="${off_json}" --benchmark_out_format=json >/dev/null
SIMTOMP_CHECK=1 "${prefix}/bench/abl_dispatch" \
  --benchmark_out="${on_json}" --benchmark_out_format=json >/dev/null
if ! diff \
    <(grep -o '"sim_cycles": [0-9.e+-]*' "${off_json}") \
    <(grep -o '"sim_cycles": [0-9.e+-]*' "${on_json}"); then
  echo "ci.sh: simcheck perturbed modeled cycles (see diff above)" >&2
  exit 1
fi
echo "sim_cycles bit-identical with checking off vs on"

echo "=== stage 5: tune smoke + cache-determinism guard ==="
tune_apps="su3,ideal"
tune_cmd=("${prefix}/tools/simtomp_tune" tune --apps "${tune_apps}" --small \
          --strategy hill --budget 12)
cache_a="${prefix}/tune-guard-a.json"
cache_b="${prefix}/tune-guard-b.json"
cache_c="${prefix}/tune-guard-c.json"
rm -f "${cache_a}" "${cache_b}" "${cache_c}"
"${tune_cmd[@]}" --workers 1 --cache "${cache_a}"
"${tune_cmd[@]}" --workers 1 --cache "${cache_b}"
"${tune_cmd[@]}" --workers 8 --cache "${cache_c}"
if ! cmp "${cache_a}" "${cache_b}"; then
  echo "ci.sh: tuning the same corpus twice produced different caches" >&2
  exit 1
fi
if ! cmp "${cache_a}" "${cache_c}"; then
  echo "ci.sh: tuning at 1 vs 8 host workers produced different caches" >&2
  exit 1
fi
echo "tune caches byte-identical across reruns and worker counts"

echo "=== stage 6: fault-matrix smoke + resilience-determinism guard ==="
matrix_a="${prefix}/fault-matrix-a.txt"
matrix_b="${prefix}/fault-matrix-b.txt"
matrix_c="${prefix}/fault-matrix-c.txt"
"${prefix}/tools/simtomp_fault" matrix --workers 1 > "${matrix_a}"
"${prefix}/tools/simtomp_fault" matrix --workers 1 > "${matrix_b}"
"${prefix}/tools/simtomp_fault" matrix --workers 8 > "${matrix_c}"
if ! cmp "${matrix_a}" "${matrix_b}"; then
  echo "ci.sh: rerunning the fault matrix produced different reports" >&2
  exit 1
fi
if ! cmp "${matrix_a}" "${matrix_c}"; then
  echo "ci.sh: fault matrix at 1 vs 8 host workers differs" >&2
  exit 1
fi
echo "resilience reports byte-identical across reruns and worker counts"
# The overhead bench aborts if the watchdog perturbs modeled cycles.
(cd "${prefix}/bench" && ./resilience_overhead >/dev/null)
echo "watchdog zero-perturbation guard passed"

echo "=== stage 7: observability determinism + overhead guard ==="
prof_cmd=("${prefix}/tools/simtomp_prof" ideal
          "target teams distribute parallel for simd num_teams(64) \
thread_limit(128) simdlen(8)")
prof_a="${prefix}/prof-guard-a.txt"
prof_b="${prefix}/prof-guard-b.txt"
folded_a="${prefix}/prof-guard-a.folded"
folded_b="${prefix}/prof-guard-b.folded"
metrics_a="${prefix}/prof-guard-a.prom"
metrics_b="${prefix}/prof-guard-b.prom"
trace_json="${prefix}/prof-guard.trace.json"
SIMTOMP_HOST_WORKERS=1 "${prof_cmd[@]}" --metrics "${metrics_a}" \
  > "${prof_a}"
SIMTOMP_HOST_WORKERS=8 "${prof_cmd[@]}" --metrics "${metrics_b}" \
  > "${prof_b}"
SIMTOMP_HOST_WORKERS=1 "${prof_cmd[@]}" --folded > "${folded_a}"
SIMTOMP_HOST_WORKERS=8 "${prof_cmd[@]}" --folded > "${folded_b}"
if ! cmp "${prof_a}" "${prof_b}"; then
  echo "ci.sh: profile tables at 1 vs 8 host workers differ" >&2
  exit 1
fi
if ! cmp "${folded_a}" "${folded_b}"; then
  echo "ci.sh: folded stacks at 1 vs 8 host workers differ" >&2
  exit 1
fi
if ! cmp "${metrics_a}" "${metrics_b}"; then
  echo "ci.sh: metrics dumps at 1 vs 8 host workers differ" >&2
  exit 1
fi
echo "profile/folded/metrics byte-identical across worker counts"
SIMTOMP_HOST_WORKERS=8 "${prof_cmd[@]}" --trace "${trace_json}" >/dev/null
python3 -m json.tool "${trace_json}" >/dev/null
echo "deep trace is valid JSON"
# The overhead bench aborts if profiling perturbs KernelStats.
(cd "${prefix}/bench" && ./observability_overhead >/dev/null)
echo "profiling zero-perturbation guard passed"

echo "=== stage 8: convergence fast-path guard ==="
# host_throughput aborts by itself if the fast path perturbs modeled
# stats between reps or across off/on; the dumps make the identity
# visible in CI logs and the python gate enforces the throughput win.
(cd "${prefix}/bench" && ./host_throughput)
if ! cmp "${prefix}/bench/HOST_THROUGHPUT_STATS_off.json" \
         "${prefix}/bench/HOST_THROUGHPUT_STATS_on.json"; then
  echo "ci.sh: fast path perturbed modeled stats (dumps differ)" >&2
  exit 1
fi
echo "modeled stats byte-identical with the fast path off vs on"
python3 - "${prefix}/bench/BENCH_host_throughput.json" <<'EOF'
import json, sys
series = json.load(open(sys.argv[1]))["series"]
reduce_series = [s for s in series if "reduce" in s["title"]]
assert len(reduce_series) == 1, "expected exactly one reduce series"
by_label = {r["label"]: r["cycles_per_host_s"] for r in reduce_series[0]["rows"]}
off = by_label["fast path off"]
on = by_label["fast path on"]
ratio = on / off if off else 0.0
print(f"reduce modeled-cycles/host-second: off={off:.0f} on={on:.0f} "
      f"ratio={ratio:.2f}x (gate: >= 3x)")
if ratio < 3.0:
    sys.exit("ci.sh: fast path reduce throughput below the 3x gate")
EOF
echo "fast-path throughput gate passed"

echo "=== stage 9: launch-service determinism + throughput guard ==="
serve_mix="${prefix}/serve-guard.mix"
serve_a="${prefix}/serve-guard-a.txt"
serve_b="${prefix}/serve-guard-b.txt"
serve_c="${prefix}/serve-guard-c.txt"
serve_d="${prefix}/serve-guard-d.txt"
"${prefix}/tools/simtomp_serve" gen --seed 11 --tenants 4 --requests 96 \
  --pump-every 32 --fault-permille 20 --out "${serve_mix}"
"${prefix}/tools/simtomp_serve" replay "${serve_mix}" --workers 1 \
  --stats "${serve_a}" >/dev/null
"${prefix}/tools/simtomp_serve" replay "${serve_mix}" --workers 1 \
  --stats "${serve_b}" >/dev/null
"${prefix}/tools/simtomp_serve" replay "${serve_mix}" --workers 8 \
  --stats "${serve_c}" >/dev/null
"${prefix}/tools/simtomp_serve" replay "${serve_mix}" --workers 8 \
  --shards 13 --stats "${serve_d}" >/dev/null
if ! cmp "${serve_a}" "${serve_b}"; then
  echo "ci.sh: replaying the same mix twice produced different stats" >&2
  exit 1
fi
if ! cmp "${serve_a}" "${serve_c}"; then
  echo "ci.sh: launch-service stats at 1 vs 8 host workers differ" >&2
  exit 1
fi
if ! cmp "${serve_a}" "${serve_d}"; then
  echo "ci.sh: launch-service stats differ across shard counts" >&2
  exit 1
fi
echo "per-tenant stat dumps byte-identical across reruns/workers/shards"
# The bench aborts if fewer than 1000 launches are concurrently in
# flight across 4 devices or if per-tenant stats diverge between runs.
(cd "${prefix}/bench" && ./serve_throughput >/dev/null)
python3 - "${prefix}/bench/BENCH_serving.json" <<'EOF'
import json, sys
bench = json.load(open(sys.argv[1]))
assert bench["peak_inflight"] >= bench["peak_inflight_gate"], \
    "ci.sh: peak in-flight below gate"
for run in bench["runs"]:
    print(f"workers={run['workers']}: "
          f"{run['requests_per_host_s']:.0f} requests/host-second")
print(f"p99 modeled latency: {bench['p99_modeled_latency_cycles']} cycles")
EOF
echo "serving throughput gate passed"

echo "=== stage 10: differential-fuzz smoke + minimizer guard ==="
fuzz="${prefix}/tools/simtomp_fuzz"
fuzz_a="${prefix}/fuzz-guard-a.log"
fuzz_b="${prefix}/fuzz-guard-b.log"
# Clean smoke: the findings log is the determinism artifact — it must
# be byte-identical for any SIMTOMP_HOST_WORKERS (each matrix cell pins
# its own worker count) and must report zero divergences.
SIMTOMP_HOST_WORKERS=1 "${fuzz}" run --seeds=0..8 --tiny-only > "${fuzz_a}"
SIMTOMP_HOST_WORKERS=8 "${fuzz}" run --seeds=0..8 --tiny-only > "${fuzz_b}"
if ! cmp "${fuzz_a}" "${fuzz_b}"; then
  echo "ci.sh: fuzz findings log differs across SIMTOMP_HOST_WORKERS" >&2
  exit 1
fi
grep -q 'divergences=0' "${fuzz_a}" || {
  echo "ci.sh: clean fuzz smoke reported divergences" >&2
  exit 1
}
# A short full-matrix sweep keeps the cross-arch (a100/mi100) cells and
# the landed-corpus shapes exercised in CI.
"${fuzz}" run --seeds=0..3 > /dev/null
echo "fuzz findings log byte-identical across worker counts, 0 divergences"
# Fault-armed sweep (simfault-oracle mode): arm a transient
# sharing-exhaustion cell on every matrix cell. The fault perturbs the
# modeled machine (overflow to global memory) without changing any
# output, so the sweep must stay divergence-free AND its findings log
# must be byte-identical across worker counts — fault injection
# composes with the differential matrix deterministically.
fuzz_fa="${prefix}/fuzz-guard-fault-a.log"
fuzz_fb="${prefix}/fuzz-guard-fault-b.log"
SIMTOMP_HOST_WORKERS=1 "${fuzz}" run --seeds=0..8 --tiny-only \
  --fault=sharing_exhausted:count=1 > "${fuzz_fa}"
SIMTOMP_HOST_WORKERS=8 "${fuzz}" run --seeds=0..8 --tiny-only \
  --fault=sharing_exhausted:count=1 > "${fuzz_fb}"
if ! cmp "${fuzz_fa}" "${fuzz_fb}"; then
  echo "ci.sh: fault-armed fuzz log differs across SIMTOMP_HOST_WORKERS" >&2
  exit 1
fi
grep -q 'divergences=0' "${fuzz_fa}" || {
  echo "ci.sh: fault-armed fuzz sweep reported divergences" >&2
  exit 1
}
echo "fault-armed fuzz sweep deterministic, 0 divergences"
# Minimizer guard: a kernel with a planted off-by-one must be caught
# and auto-minimized, and the minimized repro must fail standalone.
fuzz_bug="${prefix}/fuzz-guard-bug.fuzzprog"
fuzz_min="${prefix}/fuzz-guard-min.txt"
fuzz_repro="${prefix}/fuzz-guard-min.fuzzprog"
cat > "${fuzz_bug}" <<'EOF'
# ci.sh stage 10: deliberately planted off-by-one (fuzzer self-test)
fuzzprog v1 seed=999 construct=dpf body=map teams=2 threads=128 tmode=spmd pmode=spmd simdlen=4 sched=cyclic chunk=0 outer=32 inner=0 pressure=0 sharing=2048 a=3 b=1 inject=offbyone
EOF
set +e
"${fuzz}" minimize "${fuzz_bug}" > "${fuzz_min}"
fuzz_status=$?
set -e
if [ "${fuzz_status}" -ne 1 ]; then
  echo "ci.sh: planted off-by-one not detected (exit ${fuzz_status})" >&2
  cat "${fuzz_min}" >&2
  exit 1
fi
sed -n 's/^minimized ([^)]*): //p' "${fuzz_min}" > "${fuzz_repro}"
if ! [ -s "${fuzz_repro}" ]; then
  echo "ci.sh: minimizer printed no minimized program" >&2
  cat "${fuzz_min}" >&2
  exit 1
fi
set +e
"${fuzz}" repro "${fuzz_repro}" > /dev/null
fuzz_status=$?
set -e
if [ "${fuzz_status}" -ne 1 ]; then
  echo "ci.sh: minimized repro did not fail standalone" >&2
  cat "${fuzz_repro}" >&2
  exit 1
fi
echo "planted bug caught, minimized, and repro fails standalone"
# The bench aborts if a fixed campaign's findings log is not
# byte-identical across two back-to-back runs.
(cd "${prefix}/bench" && ./fuzz_throughput >/dev/null)
echo "fuzz campaign rerun byte-identity guard passed"

echo "=== stage 11: chaos campaign + resilience goodput gate ==="
serve="${prefix}/tools/simtomp_serve"
chaos_a="${prefix}/chaos-guard-a.txt"
chaos_b="${prefix}/chaos-guard-b.txt"
chaos_c="${prefix}/chaos-guard-c.txt"
chaos_d="${prefix}/chaos-guard-d.txt"
# The campaign asserts the service's invariants (conservation,
# terminal definiteness, no loss, no reorder, SLO accounting) per seed
# and exits non-zero on any violation. Its report is built exclusively
# from shard-invariant surfaces, so four runs — rerun, 8 host workers,
# a prime shard count — must produce identical bytes.
"${serve}" chaos --seeds=0..16 --out "${chaos_a}" >/dev/null
"${serve}" chaos --seeds=0..16 --out "${chaos_b}" >/dev/null
"${serve}" chaos --seeds=0..16 --workers 8 --out "${chaos_c}" >/dev/null
"${serve}" chaos --seeds=0..16 --shards 13 --out "${chaos_d}" >/dev/null
if ! cmp "${chaos_a}" "${chaos_b}"; then
  echo "ci.sh: chaos campaign report differs across reruns" >&2
  exit 1
fi
if ! cmp "${chaos_a}" "${chaos_c}"; then
  echo "ci.sh: chaos campaign report differs at 1 vs 8 host workers" >&2
  exit 1
fi
if ! cmp "${chaos_a}" "${chaos_d}"; then
  echo "ci.sh: chaos campaign report differs across shard counts" >&2
  exit 1
fi
grep -q 'violations=0$' "${chaos_a}" || {
  echo "ci.sh: chaos campaign reported invariant violations" >&2
  exit 1
}
echo "chaos reports byte-identical across reruns/workers/shards, 0 violations"
# The resilience bench exits non-zero when storm goodput (deadline
# hits under a 1-in-10 device-lost storm) drops below 70% of the
# fault-free run's.
(cd "${prefix}/bench" && ./serve_resilience >/dev/null)
python3 - "${prefix}/bench/BENCH_serve_resilience.json" <<'EOF'
import json, sys
bench = json.load(open(sys.argv[1]))
assert bench["goodput_ratio"] >= bench["goodput_gate"], \
    "ci.sh: storm goodput below gate"
print(f"clean goodput {bench['clean_goodput']}, "
      f"storm goodput {bench['storm_goodput']} "
      f"(ratio {bench['goodput_ratio']:.3f}, gate {bench['goodput_gate']})")
EOF
echo "resilience goodput gate passed"

echo "=== stage 12: serving-trace determinism + observability guard ==="
trace_mix="${prefix}/trace-guard.mix"
trace_a="${prefix}/trace-guard-a.txt"
trace_b="${prefix}/trace-guard-b.txt"
trace_c="${prefix}/trace-guard-c.txt"
trace_d="${prefix}/trace-guard-d.txt"
flight_a="${prefix}/trace-guard-a.flight"
flight_b="${prefix}/trace-guard-b.flight"
flight_c="${prefix}/trace-guard-c.flight"
flight_d="${prefix}/trace-guard-d.flight"
perfetto_json="${prefix}/trace-guard.perfetto.json"
# The trace surfaces record only shard-invariant facts on the modeled
# clock (device/shard ids live on the physical ring, which the
# canonical dump withholds), so every dump must be byte-identical
# across reruns, worker counts and shard counts — same mix as stage 9,
# faults included.
"${serve}" gen --seed 11 --tenants 4 --requests 96 \
  --pump-every 32 --fault-permille 20 --out "${trace_mix}"
SIMTOMP_HOST_WORKERS=1 "${serve}" trace "${trace_mix}" --workers 1 \
  --flight "${flight_a}" > "${trace_a}"
SIMTOMP_HOST_WORKERS=1 "${serve}" trace "${trace_mix}" --workers 1 \
  --flight "${flight_b}" > "${trace_b}"
SIMTOMP_HOST_WORKERS=8 "${serve}" trace "${trace_mix}" --workers 8 \
  --flight "${flight_c}" > "${trace_c}"
SIMTOMP_HOST_WORKERS=8 "${serve}" trace "${trace_mix}" --workers 8 \
  --shards 13 --flight "${flight_d}" > "${trace_d}"
if ! cmp "${trace_a}" "${trace_b}"; then
  echo "ci.sh: tracing the same mix twice produced different dumps" >&2
  exit 1
fi
if ! cmp "${trace_a}" "${trace_c}"; then
  echo "ci.sh: trace dumps at 1 vs 8 host workers differ" >&2
  exit 1
fi
if ! cmp "${trace_a}" "${trace_d}"; then
  echo "ci.sh: trace dumps differ across shard counts" >&2
  exit 1
fi
if ! cmp "${flight_a}" "${flight_b}" || ! cmp "${flight_a}" "${flight_c}" \
    || ! cmp "${flight_a}" "${flight_d}"; then
  echo "ci.sh: flight-recorder dumps differ across reruns/workers/shards" >&2
  exit 1
fi
echo "trace + flight dumps byte-identical across reruns/workers/shards"
"${serve}" trace "${trace_mix}" --perfetto "${perfetto_json}" >/dev/null
python3 -m json.tool "${perfetto_json}" >/dev/null
echo "perfetto export is valid JSON"
# Tracing must not perturb the chaos campaign either: the report with
# --trace must match stage 11's untraced report for the same seeds.
chaos_traced="${prefix}/chaos-guard-traced.txt"
"${serve}" chaos --seeds=0..16 --trace --out "${chaos_traced}" >/dev/null
if ! cmp "${chaos_a}" "${chaos_traced}"; then
  echo "ci.sh: chaos campaign report differs with tracing on" >&2
  exit 1
fi
echo "chaos report byte-identical with tracing on"
# A planted violation must fail the campaign AND auto-dump the flight
# recorder with the violation trigger.
chaos_flight="${prefix}/chaos-guard-planted.flight"
rm -f "${chaos_flight}"
set +e
"${serve}" chaos --seeds=0..0 --trace --plant-violation \
  --flight "${chaos_flight}" >/dev/null 2>&1
chaos_status=$?
set -e
if [ "${chaos_status}" -eq 0 ]; then
  echo "ci.sh: planted chaos violation not detected" >&2
  exit 1
fi
grep -q 'trigger=invariant_violation' "${chaos_flight}" || {
  echo "ci.sh: planted violation did not auto-dump the flight recorder" >&2
  exit 1
}
echo "planted violation caught and flight recorder auto-dumped"
# The bench exits non-zero if tracing perturbs the modeled stats dump
# or the replay report.
(cd "${prefix}/bench" && ./serve_observability_overhead >/dev/null)
python3 - "${prefix}/bench/BENCH_serve_observability.json" <<'EOF'
import json, sys
bench = json.load(open(sys.argv[1]))
assert bench["stats_identical"] and bench["report_identical"], \
    "ci.sh: tracing perturbed modeled surfaces"
print(f"{bench['trace_events']} trace events "
      f"({bench['trace_dropped']} dropped), "
      f"host overhead x{bench['host_overhead']:.3f} (informational)")
EOF
echo "observability zero-perturbation guard passed"

echo "=== ci.sh: all stages passed ==="
