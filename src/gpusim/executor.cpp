#include "gpusim/executor.h"

#include <algorithm>
#include <cstdlib>

#include "support/log.h"

namespace simtomp::gpusim {

namespace {
// Set while a pool helper is executing job indices; nested parallelFor
// calls from inside a worker run inline instead of deadlocking on the
// pool's own capacity.
thread_local bool g_inside_pool_worker = false;
}  // namespace

uint32_t resolveHostWorkers(uint32_t requested) {
  if (requested > 0) return requested;
  if (const char* env = std::getenv("SIMTOMP_HOST_WORKERS")) {
    char* end = nullptr;
    const long value = std::strtol(env, &end, 10);
    if (end != env && *end == '\0' && value >= 1 &&
        value <= static_cast<long>(BlockExecutor::kMaxHelpers) + 1) {
      return static_cast<uint32_t>(value);
    }
    SIMTOMP_WARN("ignoring invalid SIMTOMP_HOST_WORKERS=\"%s\"", env);
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<uint32_t>(hw);
}

BlockExecutor& BlockExecutor::global() {
  static BlockExecutor pool;
  return pool;
}

BlockExecutor::~BlockExecutor() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    shutdown_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& t : helpers_) t.join();
}

size_t BlockExecutor::helperCount() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return helpers_.size();
}

void BlockExecutor::ensureHelpersLocked(uint32_t desired) {
  desired = std::min(desired, kMaxHelpers);
  while (helpers_.size() < desired) {
    helpers_.emplace_back([this] { helperLoop(); });
  }
}

BlockExecutor::Job* BlockExecutor::claimableJobLocked() {
  for (Job* job : jobs_) {
    if (job->next < job->count && job->helpers < job->maxHelpers) return job;
  }
  return nullptr;
}

void BlockExecutor::runJob(Job& job, std::unique_lock<std::mutex>& lock) {
  while (job.next < job.count) {
    const uint32_t index = job.next++;
    lock.unlock();
    (*job.fn)(index);
    lock.lock();
    ++job.done;
  }
  // Whether or not this thread finished the last index, the caller may
  // be waiting on either completion or helper detachment.
  done_cv_.notify_all();
}

void BlockExecutor::helperLoop() {
  g_inside_pool_worker = true;
  std::unique_lock<std::mutex> lock(mutex_);
  for (;;) {
    work_cv_.wait(lock,
                  [this] { return shutdown_ || claimableJobLocked() != nullptr; });
    if (shutdown_) return;
    Job* job = claimableJobLocked();
    if (job == nullptr) continue;
    ++job->helpers;
    runJob(*job, lock);
    --job->helpers;
    done_cv_.notify_all();
  }
}

void BlockExecutor::parallelFor(uint32_t count, uint32_t workers,
                                const std::function<void(uint32_t)>& fn) {
  workers = std::min(workers, count);
  if (count == 0) return;
  if (workers <= 1 || g_inside_pool_worker) {
    for (uint32_t i = 0; i < count; ++i) fn(i);
    return;
  }

  Job job;
  job.fn = &fn;
  job.count = count;
  job.maxHelpers = workers - 1;  // the caller participates too

  std::unique_lock<std::mutex> lock(mutex_);
  ensureHelpersLocked(job.maxHelpers);
  jobs_.push_back(&job);
  work_cv_.notify_all();
  runJob(job, lock);
  // All indices are claimed; wait until every claimed one has finished
  // and every helper has detached from the job before it leaves scope.
  done_cv_.wait(lock, [&job] { return job.done == job.count && job.helpers == 0; });
  jobs_.erase(std::find(jobs_.begin(), jobs_.end(), &job));
}

}  // namespace simtomp::gpusim
