#include "omprt/target.h"

#include <memory>
#include <vector>

#include "omprt/runtime.h"
#include "support/log.h"

namespace simtomp::omprt {

Status TargetConfig::validate(const gpusim::ArchSpec& arch) const {
  if (numTeams == 0) {
    return Status::invalidArgument("numTeams must be positive");
  }
  if (threadsPerTeam == 0 || threadsPerTeam % arch.warpSize != 0) {
    return Status::invalidArgument(
        "threadsPerTeam must be a positive multiple of the warp size");
  }
  const uint32_t block_threads =
      threadsPerTeam +
      (teamsMode == ExecMode::kGeneric ? arch.warpSize : 0);
  if (block_threads > arch.maxThreadsPerBlock) {
    return Status::invalidArgument(
        "threadsPerTeam (plus the generic-mode main warp) exceeds "
        "maxThreadsPerBlock");
  }
  return Status::ok();
}

Result<gpusim::KernelStats> launchTarget(gpusim::Device& device,
                                         const TargetConfig& config,
                                         const TargetRegionFn& region) {
  const Status valid = config.validate(device.arch());
  if (!valid.isOk()) return valid;

  gpusim::LaunchConfig launch;
  launch.numBlocks = config.numTeams;
  launch.threadsPerBlock =
      config.threadsPerTeam +
      (config.teamsMode == ExecMode::kGeneric ? device.arch().warpSize : 0);
  launch.hostWorkers = config.hostWorkers;
  launch.check = config.check;

  // One TeamState per block, in its own slot: under host-parallel
  // execution several blocks are alive at once, each worker touching
  // only its block's entry (keyed by blockId).
  std::vector<std::unique_ptr<TeamState>> states(config.numTeams);
  const gpusim::BlockSetupHook setup = [&](gpusim::BlockEngine& engine) {
    auto sharing = std::make_unique<SharingSpace>(
        engine.sharedMemory(), engine.globalMemory(),
        config.sharingSpaceBytes, config.threadsPerTeam);
    auto& state = states[engine.blockId()];
    state = std::make_unique<TeamState>(
        config.teamsMode, config.threadsPerTeam, device.arch().warpSize,
        device.arch().hasWarpLevelBarrier, std::move(sharing));
    engine.setUserState(state.get());
  };

  const gpusim::Kernel kernel = [&region](gpusim::ThreadCtx& t) {
    auto* ts = static_cast<TeamState*>(t.block().userState());
    SIMTOMP_CHECK(ts != nullptr, "kernel launched without a TeamState");
    OmpContext ctx(t, *ts);
    if (rt::targetInit(ctx) == ThreadKind::kTerminated) return;
    region(ctx);
    rt::targetDeinit(ctx);
  };

  return device.launch(launch, kernel, setup);
}

}  // namespace simtomp::omprt
