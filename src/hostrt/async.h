// Asynchronous target tasks (extension; Tian et al. [26]).
//
// `#pragma omp target nowait` creates a deferred target task that a
// hidden helper thread executes while the host thread continues. This
// module provides that machinery: a TargetTaskQueue owning one helper
// thread; enqueue() returns a future for the kernel's stats, and
// drain() gives taskwait semantics.
#pragma once

#include <condition_variable>
#include <deque>
#include <functional>
#include <future>
#include <mutex>
#include <thread>

#include "gpusim/device.h"
#include "omprt/target.h"
#include "support/status.h"

namespace simtomp::hostrt {

class TargetTaskQueue {
 public:
  explicit TargetTaskQueue(gpusim::Device& device);
  ~TargetTaskQueue();

  TargetTaskQueue(const TargetTaskQueue&) = delete;
  TargetTaskQueue& operator=(const TargetTaskQueue&) = delete;

  /// Enqueue a deferred target region (`target nowait`).
  std::future<Result<gpusim::KernelStats>> enqueue(
      omprt::TargetConfig config, omprt::TargetRegionFn region);

  /// Block until every enqueued task has completed (`taskwait`).
  void drain();

  [[nodiscard]] size_t pendingTasks() const;
  [[nodiscard]] uint64_t completedTasks() const { return completed_; }

 private:
  struct Task {
    omprt::TargetConfig config;
    omprt::TargetRegionFn region;
    std::promise<Result<gpusim::KernelStats>> promise;
  };

  void helperLoop();

  gpusim::Device* device_;
  mutable std::mutex mutex_;
  std::condition_variable cv_;
  std::condition_variable idle_cv_;
  std::deque<Task> queue_;
  bool shutdown_ = false;
  bool busy_ = false;
  uint64_t completed_ = 0;
  std::thread helper_;
};

}  // namespace simtomp::hostrt
