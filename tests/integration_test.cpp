// Integration tests: cross-module scenarios tying the DSL, runtime,
// host runtime and simulator together, including the paper's
// architectural claims (AMD fallback, sharing-space sizing, execution
// mode cost ordering).
#include <gtest/gtest.h>

#include <atomic>
#include <vector>

#include "apps/laplace3d.h"
#include "dsl/dsl.h"
#include "hostrt/async.h"
#include "hostrt/data_env.h"

namespace simtomp {
namespace {

using apps::SimdMode;
using dsl::LaunchSpec;
using dsl::OmpContext;
using gpusim::ArchSpec;
using gpusim::Counter;
using gpusim::Device;
using omprt::ExecMode;

// ---------------- End-to-end: map data, run kernel, copy back --------

TEST(IntegrationTest, TargetDataPlusKernelRoundTrip) {
  Device dev(ArchSpec::testTiny());
  hostrt::DataEnvironment env(dev);
  std::vector<double> host_in(256);
  std::vector<double> host_out(256, 0.0);
  for (size_t i = 0; i < host_in.size(); ++i) host_in[i] = double(i);

  {
    hostrt::MappedSpan<double> in(env, std::span<double>(host_in),
                                  hostrt::MapType::kTo);
    hostrt::MappedSpan<double> out(env, std::span<double>(host_out),
                                   hostrt::MapType::kFrom);
    ASSERT_TRUE(in.status().isOk());
    ASSERT_TRUE(out.status().isOk());
    auto dev_in = in.device();
    auto dev_out = out.device();

    LaunchSpec spec;
    spec.numTeams = 2;
    spec.threadsPerTeam = 64;
    spec.parallelMode = ExecMode::kGeneric;
    spec.simdlen = 8;
    auto stats = dsl::targetTeamsDistributeParallelFor(
        dev, spec, 256 / 8, [&](OmpContext& ctx, uint64_t chunk) {
          dsl::simd(ctx, 8, [&, chunk](OmpContext& c, uint64_t k) {
            const size_t i = chunk * 8 + k;
            dev_out.set(c.gpu(), i, 2.0 * dev_in.get(c.gpu(), i));
          });
        });
    ASSERT_TRUE(stats.isOk());
  }  // MappedSpan dtors copy `out` back

  for (size_t i = 0; i < host_out.size(); ++i) {
    EXPECT_EQ(host_out[i], 2.0 * double(i));
  }
}

// ---------------- AMD fallback (paper 5.4.1) ----------------

TEST(IntegrationTest, AmdGenericSimdFallsBackSequentially) {
  Device amd(ArchSpec::amdMI100());
  LaunchSpec spec;
  spec.numTeams = 1;
  spec.threadsPerTeam = 128;  // wavefront 64: two wavefronts
  spec.parallelMode = ExecMode::kGeneric;
  spec.simdlen = 16;
  std::vector<std::atomic<int>> per_iv(64);
  std::atomic<int> executors{0};
  auto stats = dsl::targetTeamsDistributeParallelFor(
      amd, spec, 128, [&](OmpContext& ctx, uint64_t) {
        // simdGroupSize must have degraded to 1.
        EXPECT_EQ(ctx.simdGroupSize(), 1u);
        executors++;
        dsl::simd(ctx, 64, [&](OmpContext&, uint64_t k) { per_iv[k]++; });
      });
  ASSERT_TRUE(stats.isOk());
  // Every thread is its own leader; each simd loop ran fully serially.
  EXPECT_EQ(executors.load(), 128);
  for (auto& c : per_iv) EXPECT_EQ(c.load(), 128);
}

TEST(IntegrationTest, AmdSpmdSimdStillWorkshares) {
  Device amd(ArchSpec::amdMI100());
  LaunchSpec spec;
  spec.numTeams = 1;
  spec.threadsPerTeam = 128;
  spec.parallelMode = ExecMode::kSPMD;
  spec.simdlen = 16;
  std::atomic<int> iterations{0};
  auto stats = dsl::targetTeamsDistributeParallelFor(
      amd, spec, 8, [&](OmpContext& ctx, uint64_t) {
        EXPECT_EQ(ctx.simdGroupSize(), 16u);
        dsl::simd(ctx, 64, [&](OmpContext&, uint64_t) { iterations++; });
      });
  ASSERT_TRUE(stats.isOk());
  EXPECT_EQ(iterations.load(), 8 * 64);
  // No warp-barrier instruction exists on this architecture: the
  // rendezvous happens but is uncharged, so warp_sync counts exist with
  // zero added cycles only through other costs. Verify no crash and
  // correct coverage is the main property here.
}

TEST(IntegrationTest, AmdVsNvidiaGenericSimdCounters) {
  // On NVIDIA the generic simd path polls the warp state machine; on
  // AMD (group size 1) it never does.
  auto run = [](Device& dev) {
    LaunchSpec spec;
    spec.numTeams = 1;
    spec.threadsPerTeam = 128;
    spec.parallelMode = ExecMode::kGeneric;
    spec.simdlen = 32;
    auto stats = dsl::targetTeamsDistributeParallelFor(
        dev, spec, 16, [&](OmpContext& ctx, uint64_t) {
          dsl::simd(ctx, 32, [](OmpContext& c, uint64_t) { c.gpu().work(1); });
        });
    EXPECT_TRUE(stats.isOk());
    return stats.value().counters.get(Counter::kStatePoll);
  };
  Device nv(ArchSpec::nvidiaA100());
  Device amd(ArchSpec::amdMI100());
  EXPECT_GT(run(nv), 0u);
  EXPECT_EQ(run(amd), 0u);
}

// ---------------- Sharing space sizing (paper 5.3.1) ----------------

TEST(IntegrationTest, SmallSharingSpaceOverflowsMoreOften) {
  auto overflows = [](uint32_t bytes) {
    Device dev(ArchSpec::testTiny());
    LaunchSpec spec;
    spec.numTeams = 1;
    spec.threadsPerTeam = 64;
    spec.parallelMode = ExecMode::kGeneric;
    spec.simdlen = 2;  // 32 groups: tiny slices
    spec.sharingSpaceBytes = bytes;
    auto stats = dsl::targetTeamsDistributeParallelFor(
        dev, spec, 32, [&](OmpContext& ctx, uint64_t) {
          // A fat body: payload plus many shared args would not fit a
          // tiny slice.
          double a = 0;
          double b = 0;
          double c = 0;
          double d = 0;
          auto body = [&a, &b, &c, &d](OmpContext& inner, uint64_t) {
            inner.gpu().work(1);
            a = b + c + d;
          };
          auto outlined = loopir::outlineLoop(ctx, body, true, a, b, c, d);
          omprt::rt::simd(ctx, outlined.fn, 4, outlined.payload.data(),
                          outlined.payload.size());
        });
    EXPECT_TRUE(stats.isOk());
    return stats.value().counters.get(Counter::kSharingSpaceOverflow);
  };
  const uint64_t small = overflows(256);
  const uint64_t paper_default = overflows(2048);
  EXPECT_GT(small, paper_default);
}

TEST(IntegrationTest, GlobalMemoryCleanAfterOverflowingKernel) {
  Device dev(ArchSpec::testTiny());
  const size_t before = dev.memory().bytesInUse();
  LaunchSpec spec;
  spec.numTeams = 2;
  spec.threadsPerTeam = 64;
  spec.parallelMode = ExecMode::kGeneric;
  spec.simdlen = 2;
  spec.sharingSpaceBytes = 0;  // force every group to overflow
  auto stats = dsl::targetTeamsDistributeParallelFor(
      dev, spec, 64, [&](OmpContext& ctx, uint64_t) {
        dsl::simd(ctx, 4, [](OmpContext& c, uint64_t) { c.gpu().work(1); });
      });
  ASSERT_TRUE(stats.isOk());
  EXPECT_GT(stats.value().counters.get(Counter::kSharingSpaceOverflow), 0u);
  EXPECT_EQ(dev.memory().bytesInUse(), before);
}

// ---------------- Execution-mode cost ordering (Fig. 10) ------------

TEST(IntegrationTest, ModeCostOrderingOnLaplace) {
  Device dev(ArchSpec::testTiny());
  const apps::Laplace3dWorkload w = apps::generateLaplace3d(18, 3);
  uint64_t cycles[3] = {};
  int i = 0;
  for (SimdMode mode :
       {SimdMode::kNoSimd, SimdMode::kSpmdSimd, SimdMode::kGenericSimd}) {
    apps::Laplace3dOptions options;
    options.mode = mode;
    options.numTeams = 4;
    options.threadsPerTeam = 64;
    options.simdlen = 16;
    auto result = apps::runLaplace3d(dev, w, options);
    ASSERT_TRUE(result.isOk());
    cycles[i++] = result.value().stats.cycles;
  }
  // Generic-SIMD pays for its state machine relative to SPMD-SIMD.
  EXPECT_GT(cycles[2], cycles[1]);
}

// ---------------- Async + DSL ----------------

TEST(IntegrationTest, ConcurrentTargetTasksProduceSameResults) {
  Device dev(ArchSpec::testTiny());
  hostrt::TargetTaskQueue queue(dev);
  std::vector<std::vector<double>> outputs(4, std::vector<double>(64, 0.0));
  std::vector<std::future<Result<gpusim::KernelStats>>> futures;
  for (int task = 0; task < 4; ++task) {
    omprt::TargetConfig config;
    config.teamsMode = ExecMode::kSPMD;
    config.numTeams = 1;
    config.threadsPerTeam = 64;
    auto* out = &outputs[task];
    futures.push_back(queue.enqueue(config, [out, task](OmpContext& ctx) {
      const uint32_t tid = ctx.gpu().threadId();
      (*out)[tid] = double(task * 1000 + tid);
    }));
  }
  for (auto& f : futures) ASSERT_TRUE(f.get().isOk());
  for (int task = 0; task < 4; ++task) {
    for (uint32_t tid = 0; tid < 64; ++tid) {
      EXPECT_EQ(outputs[task][tid], double(task * 1000 + tid));
    }
  }
}

// ---------------- Dispatch cascade end-to-end (5.5) ----------------

TEST(IntegrationTest, CascadeVsIndirectCostDifference) {
  auto run = [](bool registered) {
    omprt::Dispatcher::global().clear();
    Device dev(ArchSpec::testTiny());
    LaunchSpec spec;
    spec.numTeams = 1;
    spec.threadsPerTeam = 64;
    spec.parallelMode = ExecMode::kSPMD;
    spec.simdlen = 8;
    spec.registerInCascade = registered;
    auto stats = dsl::targetTeamsDistributeParallelFor(
        dev, spec, 64, [&](OmpContext& ctx, uint64_t) {
          dsl::simd(
              ctx, 64, [](OmpContext& c, uint64_t) { c.gpu().work(1); },
              registered);
        });
    EXPECT_TRUE(stats.isOk());
    return stats.value().cycles;
  };
  const uint64_t with_cascade = run(true);
  const uint64_t indirect = run(false);
  EXPECT_LT(with_cascade, indirect);
  omprt::Dispatcher::global().clear();
}

}  // namespace
}  // namespace simtomp
