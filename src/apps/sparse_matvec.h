// sparse_matvec (paper section 6.3): CSR sparse matrix-vector product.
//
// Two parallelization structures from the paper:
//
//   TwoLevel        — `teams distribute` on rows (generic teams mode,
//                     extra main warp) with a nested `parallel for`
//                     over each row's nonzeros; thread blocks of 32.
//                     This is the baseline whose small inner loop
//                     wastes most of the 32 threads.
//   ThreeLevelAtomic— combined `teams distribute parallel for` on rows
//                     (SPMD teams) with `simd` over the nonzeros
//                     (generic parallel mode). The product is written
//                     with an atomic update because the paper's loop
//                     API had no reductions yet.
//   ThreeLevelReduce— extension: same structure but using the simd
//                     reduction the paper lists as future work.
#pragma once

#include "apps/common.h"
#include "apps/csr.h"
#include "omprt/modes.h"
#include "gpusim/device.h"
#include "support/status.h"

namespace simtomp::apps {

enum class SpmvVariant : uint8_t {
  kTwoLevel,
  kThreeLevelAtomic,
  kThreeLevelReduction,
};

struct SpmvOptions {
  SpmvVariant variant = SpmvVariant::kThreeLevelAtomic;
  uint32_t numTeams = 64;
  /// Worker threads per team (the paper's baseline uses 32; the
  /// 3-level version "a much larger thread count per OpenMP team").
  uint32_t threadsPerTeam = 256;
  /// SIMD group size; ignored by the 2-level variant.
  uint32_t simdlen = 8;
  /// Parallel-region mode for the 3-level variants (the paper runs the
  /// sparse_matvec parallel region in generic mode).
  omprt::ExecMode parallelMode = omprt::ExecMode::kGeneric;
  /// Host worker threads simulating independent teams (0 = auto,
  /// 1 = serial); modeled cycles are identical for any value.
  uint32_t hostWorkers = 0;
};

/// Run y = A*x on the device and verify against the host reference.
Result<AppRunResult> runSpmv(gpusim::Device& device, const CsrMatrix& A,
                             const SpmvOptions& options);

}  // namespace simtomp::apps
