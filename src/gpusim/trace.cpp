#include "gpusim/trace.h"

#include <fstream>

namespace simtomp::gpusim {

void TraceRecorder::recordBlock(uint32_t block_id, uint32_t sm_id,
                                uint64_t start, uint64_t duration) {
  events_.push_back(
      {"block " + std::to_string(block_id), sm_id, start, duration});
}

void TraceRecorder::recordKernel(std::string name, uint64_t duration) {
  events_.push_back({std::move(name), kKernelTrack, 0, duration});
}

void TraceRecorder::writeChromeJson(std::ostream& out) const {
  out << "[\n";
  bool first = true;
  for (const Event& e : events_) {
    if (!first) out << ",\n";
    first = false;
    const uint64_t tid = e.track == kKernelTrack ? 0 : e.track + 1;
    const char* pid = e.track == kKernelTrack ? "0" : "1";
    out << "  {\"name\": \"" << e.name << "\", \"ph\": \"X\", \"pid\": " << pid
        << ", \"tid\": " << tid << ", \"ts\": " << e.startCycle
        << ", \"dur\": " << e.durationCycles << "}";
  }
  out << "\n]\n";
}

Status TraceRecorder::writeChromeJson(const std::string& path) const {
  std::ofstream file(path);
  if (!file) {
    return Status::invalidArgument("cannot open trace file: " + path);
  }
  writeChromeJson(file);
  if (!file.good()) {
    return Status::internal("I/O error writing trace file: " + path);
  }
  return Status::ok();
}

}  // namespace simtomp::gpusim
