// Ablation (paper section 5.1 / Jacob et al. [17]): the cost of the
// teams-generic execution model — an extra warp hosting the team main
// thread plus block-level state-machine barriers per parallel region —
// versus SPMD teams, on the same 2-level kernel.
#include <benchmark/benchmark.h>

#include "apps/laplace3d.h"
#include "bench_common.h"
#include "dsl/dsl.h"

namespace {

using namespace simtomp;
using bench::checkOk;
using bench::Row;

/// laplace-style work through an explicit teams-mode launch: the
/// distribute loop runs per team and each plane opens a parallel
/// region, which is where teams-generic pays its block barriers.
uint64_t runTeamsMode(omprt::ExecMode teams_mode) {
  gpusim::Device dev;
  dsl::LaunchSpec spec;
  spec.numTeams = 64;
  spec.threadsPerTeam = 128;
  spec.teamsMode = teams_mode;
  spec.parallelMode = omprt::ExecMode::kSPMD;
  spec.simdlen = 1;
  auto stats = dsl::targetTeamsDistribute(
      dev, spec, 1024, [&](dsl::OmpContext& ctx, uint64_t) {
        dsl::parallelFor(
            ctx, 128,
            [](dsl::OmpContext& c, uint64_t) {
              c.gpu().chargeGlobalLoad(2);
              c.gpu().fma(2);
              c.gpu().chargeGlobalStore();
            },
            spec.parallelConfig());
      });
  return checkOk(stats, "teams-mode kernel").cycles;
}

void BM_TeamsMode(benchmark::State& state) {
  const auto mode = static_cast<omprt::ExecMode>(state.range(0));
  uint64_t cycles = 0;
  for (auto _ : state) cycles = runTeamsMode(mode);
  state.counters["sim_cycles"] = static_cast<double>(cycles);
}
BENCHMARK(BM_TeamsMode)
    ->Arg(static_cast<int>(omprt::ExecMode::kSPMD))
    ->Arg(static_cast<int>(omprt::ExecMode::kGeneric))
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  const uint64_t spmd = runTeamsMode(omprt::ExecMode::kSPMD);
  const uint64_t generic = runTeamsMode(omprt::ExecMode::kGeneric);
  bench::printTable(
      "Ablation: teams execution mode (extra main warp + state machine)",
      "teams SPMD", spmd,
      {{"teams generic", generic,
        static_cast<double>(spmd) / static_cast<double>(generic)}});
  (void)bench::writeBenchJson("abl_teams_mode");
  return 0;
}
