#include "support/log.h"

#include <atomic>
#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <mutex>
#include <string>

namespace simtomp {
namespace {

std::atomic<LogLevel> g_level{LogLevel::kWarn};
std::once_flag g_env_once;
std::mutex g_io_mutex;
// Log sink; stderr unless setLogFile / SIMTOMP_LOG_FILE opened a file.
// Guarded by g_io_mutex. Never closed on exit (the OS reclaims it) so
// a logging static destructor can't race a closed stream.
FILE* g_sink = nullptr;

const char* levelTag(LogLevel level) {
  switch (level) {
    case LogLevel::kTrace: return "TRACE";
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO ";
    case LogLevel::kWarn: return "WARN ";
    case LogLevel::kError: return "ERROR";
    case LogLevel::kOff: return "OFF  ";
  }
  return "?????";
}

void initFromEnv() {
  if (const char* env = std::getenv("SIMTOMP_LOG")) {
    g_level.store(parseLogLevel(env), std::memory_order_relaxed);
  }
  if (const char* path = std::getenv("SIMTOMP_LOG_FILE")) {
    if (*path != '\0') (void)setLogFile(path);
  }
}

}  // namespace

LogLevel logLevel() {
  std::call_once(g_env_once, initFromEnv);
  return g_level.load(std::memory_order_relaxed);
}

void setLogLevel(LogLevel level) {
  std::call_once(g_env_once, initFromEnv);
  g_level.store(level, std::memory_order_relaxed);
}

LogLevel parseLogLevel(std::string_view name) {
  std::string lower;
  lower.reserve(name.size());
  for (char c : name) lower.push_back(static_cast<char>(std::tolower(c)));
  if (lower == "trace") return LogLevel::kTrace;
  if (lower == "debug") return LogLevel::kDebug;
  if (lower == "info") return LogLevel::kInfo;
  if (lower == "warn") return LogLevel::kWarn;
  if (lower == "error") return LogLevel::kError;
  if (lower == "off") return LogLevel::kOff;
  return LogLevel::kWarn;
}

bool setLogFile(const std::string& path) {
  std::lock_guard<std::mutex> lock(g_io_mutex);
  FILE* next = nullptr;
  if (!path.empty()) {
    next = std::fopen(path.c_str(), "a");
    if (next == nullptr) return false;
  }
  if (g_sink != nullptr) std::fclose(g_sink);
  g_sink = next;
  return true;
}

void reinitLogFromEnvForTest() {
  // call_once already ran (or will run idempotently); re-apply the env
  // directly so tests can flip SIMTOMP_LOG / SIMTOMP_LOG_FILE at will.
  std::call_once(g_env_once, [] {});
  initFromEnv();
}

namespace detail {

void logLine(LogLevel level, const char* fmt, ...) {
  std::lock_guard<std::mutex> lock(g_io_mutex);
  FILE* out = g_sink != nullptr ? g_sink : stderr;
  std::fprintf(out, "[simtomp %s] ", levelTag(level));
  va_list args;
  va_start(args, fmt);
  std::vfprintf(out, fmt, args);
  va_end(args);
  std::fputc('\n', out);
  if (g_sink != nullptr) std::fflush(g_sink);
}

}  // namespace detail
}  // namespace simtomp
