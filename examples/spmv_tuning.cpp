// spmv_tuning: the paper's developer guidance (section 6.5) as a tool.
//
// "For choosing a simdlen, or SIMD group size, our best results were
//  when we focused on reducing thread waste ... It is likely best to
//  experiment with the different options to see which fits the
//  specific scenario best."
//
// This example generates CSR matrices with different sparsity profiles
// and picks a simdlen for each in two ways:
//
//   1. the manual sweep an application developer would write by hand
//      (every SIMD group size plus the 2-level baseline), and
//   2. the simtune autotuner pointed at the *same* search space.
//
// The two must agree — the tuner is exactly this experiment, automated
// and cached — and the example exits non-zero if they ever disagree.
// A final wider search then lets the tuner roam the full launch space
// (team counts, widths, both spmv structures) to show what the manual
// sweep leaves on the table.
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <vector>

#include "apps/csr.h"
#include "apps/sparse_matvec.h"
#include "gpusim/device.h"
#include "simtune/tuner.h"

using namespace simtomp;

namespace {

struct Profile {
  const char* name;
  const char* key;  ///< cache kernel key (stable, per profile)
  uint32_t meanRowLength;
  uint32_t maxRowLength;
};

uint64_t measure(const apps::CsrMatrix& A, const apps::SpmvOptions& options) {
  gpusim::Device device;
  auto result = apps::runSpmv(device, A, options);
  if (!result.isOk() || !result.value().verified) {
    std::fprintf(stderr, "spmv run failed\n");
    std::exit(1);
  }
  return result.value().stats.cycles;
}

/// TrialFn over a fixed matrix: teams mode selects the spmv structure
/// (generic = 2-level, SPMD = 3-level), the rest maps field-for-field.
simtune::TrialFn spmvTrial(std::shared_ptr<const apps::CsrMatrix> A) {
  return [A = std::move(A)](gpusim::Device& scratch,
                            const simtune::TuneCandidate& c,
                            const simcheck::CheckConfig& /*check*/)
             -> Result<gpusim::KernelStats> {
    apps::SpmvOptions options;
    options.variant = c.teamsMode == omprt::ExecMode::kGeneric
                          ? apps::SpmvVariant::kTwoLevel
                          : apps::SpmvVariant::kThreeLevelAtomic;
    options.numTeams = c.numTeams;
    options.threadsPerTeam = c.threadsPerTeam;
    options.simdlen = c.simdlen;
    options.parallelMode = c.parallelMode;
    options.hostWorkers = 1;  // trials are already fanned out
    auto result = apps::runSpmv(scratch, *A, options);
    if (!result.isOk()) return result.status();
    if (!result.value().verified) {
      return Status::internal("spmv trial produced wrong results");
    }
    return result.value().stats;
  };
}

simtune::TunedShape tuneOrDie(simtune::Tuner& tuner, const std::string& key,
                              const gpusim::ArchSpec& arch,
                              const simtune::TuneAxes& axes,
                              const simtune::TrialFn& trial,
                              uint64_t tripCount) {
  simtune::TuneRequest request;
  request.tripCount = tripCount;
  const auto result =
      tuner.tune(key, arch, gpusim::CostModel{}, axes, trial, request);
  if (!result.isOk()) {
    std::fprintf(stderr, "tuning %s failed: %s\n", key.c_str(),
                 result.status().message().c_str());
    std::exit(1);
  }
  return result.value().shape;
}

}  // namespace

int main() {
  const Profile profiles[] = {
      {"very sparse (mean 4)", "spmv_tuning/sparse4", 4, 16},
      {"paper-like (mean 8)", "spmv_tuning/mean8", 8, 64},
      {"denser rows (mean 24)", "spmv_tuning/dense24", 24, 96},
  };
  const gpusim::ArchSpec arch = gpusim::ArchSpec::nvidiaA100();
  simtune::Tuner tuner;  // in-memory unless SIMTOMP_TUNE_CACHE is set

  for (const Profile& profile : profiles) {
    apps::CsrGenConfig config;
    config.numRows = 2048;
    config.numCols = 2048;
    config.meanRowLength = profile.meanRowLength;
    config.maxRowLength = profile.maxRowLength;
    const auto A =
        std::make_shared<const apps::CsrMatrix>(apps::generateCsr(config));

    std::printf("\nmatrix: %s, %u rows, %u nnz\n", profile.name, A->numRows,
                A->nnz());

    apps::SpmvOptions baseline;
    baseline.variant = apps::SpmvVariant::kTwoLevel;
    baseline.numTeams = 128;
    baseline.threadsPerTeam = 32;
    const uint64_t base_cycles = measure(*A, baseline);
    std::printf("  %-24s %12llu cycles\n", "2-level baseline",
                static_cast<unsigned long long>(base_cycles));

    // The manual sweep from the paper's guidance: fixed 64x256 3-level
    // launch, every SIMD group size.
    uint32_t best_group = 0;
    uint64_t best_cycles = ~uint64_t{0};
    for (uint32_t group : {2u, 4u, 8u, 16u, 32u}) {
      apps::SpmvOptions options;
      options.variant = apps::SpmvVariant::kThreeLevelAtomic;
      options.numTeams = 64;
      options.threadsPerTeam = 256;
      options.simdlen = group;
      const uint64_t cycles = measure(*A, options);
      std::printf("  simd group %-13u %12llu cycles  (%.2fx)\n", group,
                  static_cast<unsigned long long>(cycles),
                  static_cast<double>(base_cycles) /
                      static_cast<double>(cycles));
      if (cycles < best_cycles) {
        best_cycles = cycles;
        best_group = group;
      }
    }
    std::printf("  -> manual sweep picks simdlen(%u), %.2fx over 2-level\n",
                best_group,
                static_cast<double>(base_cycles) /
                    static_cast<double>(best_cycles));

    // The same search space handed to simtune. The tuner must agree
    // with the hand-written sweep — it is the same experiment.
    simtune::TuneAxes sweep;
    sweep.teamsModes = {omprt::ExecMode::kSPMD};
    sweep.parallelModes = {omprt::ExecMode::kGeneric};
    sweep.numTeams = {64};
    sweep.threadsPerTeam = {256};
    sweep.simdlens = {2, 4, 8, 16, 32};
    sweep.scheduleChunks = {0};
    const simtune::TunedShape tuned =
        tuneOrDie(tuner, std::string(profile.key) + "/sweep", arch, sweep,
                  spmvTrial(A), A->numRows);
    std::printf("  -> simtune picks      simdlen(%u)  [%u trials]\n",
                tuned.simdlen, tuned.trials);
    if (tuned.simdlen != best_group || tuned.cycles != best_cycles) {
      std::fprintf(stderr,
                   "FATAL: tuner disagrees with the manual sweep "
                   "(simdlen %u @ %llu cycles vs %u @ %llu)\n",
                   tuned.simdlen,
                   static_cast<unsigned long long>(tuned.cycles), best_group,
                   static_cast<unsigned long long>(best_cycles));
      return 1;
    }

    // Now let the tuner roam: both spmv structures, several team
    // shapes. This is the part a manual sweep rarely covers.
    simtune::TuneAxes wide;
    wide.teamsModes = {omprt::ExecMode::kSPMD, omprt::ExecMode::kGeneric};
    wide.parallelModes = {omprt::ExecMode::kGeneric};
    wide.numTeams = {64, 128};
    wide.threadsPerTeam = {32, 128, 256};
    wide.simdlens = {1, 2, 4, 8, 16, 32};
    wide.scheduleChunks = {0};
    const simtune::TunedShape roam =
        tuneOrDie(tuner, std::string(profile.key) + "/wide", arch, wide,
                  spmvTrial(A), A->numRows);
    std::printf("  -> full-space winner: %s  (%.2fx over 2-level)\n",
                roam.toString().c_str(),
                static_cast<double>(base_cycles) /
                    static_cast<double>(roam.cycles));
  }

  std::printf("\ntuner agreed with the manual sweep on all %zu profiles\n",
              std::size(profiles));
  return 0;
}
