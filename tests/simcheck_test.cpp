// simcheck regression corpus: seeded buggy kernels that the sanitizer
// must flag — a racy shared-memory histogram, a divergent block
// barrier, inconsistent warp-sync masks, a cross-block global race and
// the sharing-space protocol bugs — plus fixed twins of each that must
// come back clean, and the guard that checking never perturbs modeled
// cycles.
#include <gtest/gtest.h>

#include <cstdlib>
#include <string>

#include "gpusim/block.h"
#include "gpusim/device.h"
#include "hostrt/device_manager.h"
#include "omprt/sharing.h"
#include "omprt/target.h"
#include "simcheck/checker.h"
#include "simcheck/report.h"

namespace simtomp::simcheck {
namespace {

using gpusim::ArchSpec;
using gpusim::BlockEngine;
using gpusim::Device;
using gpusim::LaunchConfig;
using gpusim::SharedSpan;
using gpusim::ThreadCtx;

// ---------------- report plumbing ----------------

TEST(CheckReportTest, CountsAndSummary) {
  CheckReport report;
  EXPECT_TRUE(report.clean());
  EXPECT_EQ(report.summary(), "clean");

  Diagnostic d;
  d.kind = DiagKind::kDataRace;
  report.add(d);
  d.kind = DiagKind::kBarrierDivergence;
  report.add(d);
  report.add(d);
  EXPECT_FALSE(report.clean());
  EXPECT_EQ(report.total(), 3u);
  EXPECT_EQ(report.count(DiagKind::kDataRace), 1u);
  EXPECT_EQ(report.count(DiagKind::kBarrierDivergence), 2u);
  EXPECT_NE(report.summary().find("data-race=1"), std::string::npos);
}

TEST(CheckReportTest, MergeKeepsCountsAndTruncatesStorage) {
  CheckReport a;
  a.maxDiagnostics = 2;
  Diagnostic d;
  d.kind = DiagKind::kDataRace;
  CheckReport b;
  b.add(d);
  b.add(d);
  b.add(d);
  a.merge(b);
  EXPECT_EQ(a.total(), 3u);                 // exact count survives
  EXPECT_EQ(a.diagnostics.size(), 2u);      // storage capped
}

class ScopedEnv {
 public:
  ScopedEnv(const char* name, const char* value) : name_(name) {
    const char* prev = std::getenv(name);
    had_ = prev != nullptr;
    if (had_) saved_ = prev;
    if (value != nullptr) {
      ::setenv(name, value, 1);
    } else {
      ::unsetenv(name);
    }
  }
  ~ScopedEnv() {
    if (had_) {
      ::setenv(name_, saved_.c_str(), 1);
    } else {
      ::unsetenv(name_);
    }
  }

 private:
  const char* name_;
  bool had_ = false;
  std::string saved_;
};

TEST(CheckResolveTest, EnvValuesParsed) {
  {
    ScopedEnv env("SIMTOMP_CHECK", nullptr);
    const CheckResolution r = resolveCheckMode(CheckMode::kAuto);
    EXPECT_EQ(r.effective, CheckMode::kOff);
    EXPECT_STREQ(r.source, "default");
  }
  {
    ScopedEnv env("SIMTOMP_CHECK", "1");
    const CheckResolution r = resolveCheckMode(CheckMode::kAuto);
    EXPECT_EQ(r.effective, CheckMode::kReport);
    EXPECT_STREQ(r.source, "SIMTOMP_CHECK");
    EXPECT_EQ(r.envValue, "1");
  }
  {
    ScopedEnv env("SIMTOMP_CHECK", "fatal");
    EXPECT_EQ(resolveCheckMode(CheckMode::kAuto).effective, CheckMode::kFatal);
  }
  {
    ScopedEnv env("SIMTOMP_CHECK", "bogus");
    EXPECT_EQ(resolveCheckMode(CheckMode::kAuto).effective, CheckMode::kOff);
  }
}

TEST(CheckResolveTest, ExplicitRequestBeatsEnvironment) {
  ScopedEnv env("SIMTOMP_CHECK", "fatal");
  const CheckResolution r = resolveCheckMode(CheckMode::kReport);
  EXPECT_EQ(r.effective, CheckMode::kReport);
  EXPECT_STREQ(r.source, "explicit");
}

// ---------------- seeded device-level bugs ----------------

LaunchConfig reportConfig(uint32_t blocks, uint32_t threads) {
  LaunchConfig config;
  config.numBlocks = blocks;
  config.threadsPerBlock = threads;
  config.hostWorkers = 1;
  config.check.mode = CheckMode::kReport;  // explicit: immune to CI env
  return config;
}

/// Setup hook that carves a double[n] histogram out of the block's
/// shared arena and hands it to the kernel via the user-state slot.
gpusim::BlockSetupHook sharedArraySetup(size_t n) {
  return [n](BlockEngine& engine) {
    std::byte* raw = engine.sharedMemory().allocate(n * sizeof(double));
    ASSERT_NE(raw, nullptr);
    engine.setUserState(raw);
  };
}

SharedSpan<double> sharedArray(ThreadCtx& t, size_t n) {
  return {static_cast<double*>(t.block().userState()), n};
}

TEST(SimcheckDeviceTest, RacySharedHistogramFlagged) {
  Device dev(ArchSpec::testTiny());
  // Two warps increment the same 8 shared bins with a plain
  // read-modify-write and no synchronization: the classic lost-update
  // histogram race.
  auto stats = dev.launch(
      reportConfig(1, 64),
      [](ThreadCtx& t) {
        SharedSpan<double> bins = sharedArray(t, 8);
        const size_t bin = t.threadId() % 8;
        bins.set(t, bin, bins.get(t, bin) + 1.0);
      },
      sharedArraySetup(8));
  ASSERT_TRUE(stats.isOk()) << stats.status().toString();
  const CheckReport& report = dev.lastCheckReport();
  EXPECT_GE(report.count(DiagKind::kDataRace), 1u) << report.toString();
  ASSERT_FALSE(report.diagnostics.empty());
  EXPECT_EQ(report.diagnostics[0].space, MemSpace::kShared);
}

TEST(SimcheckDeviceTest, AtomicHistogramIsClean) {
  Device dev(ArchSpec::testTiny());
  auto bins = dev.allocateArray<double>(8);
  ASSERT_TRUE(bins.isOk());
  auto stats = dev.launch(reportConfig(1, 64), [&](ThreadCtx& t) {
    bins.value().atomicAdd(t, t.threadId() % 8, 1.0);
  });
  ASSERT_TRUE(stats.isOk()) << stats.status().toString();
  EXPECT_TRUE(dev.lastCheckReport().clean())
      << dev.lastCheckReport().toString();
}

TEST(SimcheckDeviceTest, BarrierSeparatedPhasesAreClean) {
  Device dev(ArchSpec::testTiny());
  // Write phase, block barrier, read phase: every cross-thread pair is
  // ordered through the barrier join, so no findings.
  auto stats = dev.launch(
      reportConfig(1, 64),
      [](ThreadCtx& t) {
        SharedSpan<double> data = sharedArray(t, 64);
        data.set(t, t.threadId(), 1.0 * t.threadId());
        t.syncBlock();
        (void)data.get(t, (t.threadId() + 1) % t.numThreads());
      },
      sharedArraySetup(64));
  ASSERT_TRUE(stats.isOk()) << stats.status().toString();
  EXPECT_TRUE(dev.lastCheckReport().clean())
      << dev.lastCheckReport().toString();
}

TEST(SimcheckDeviceTest, UninitSharedReadFlagged) {
  Device dev(ArchSpec::testTiny());
  auto stats = dev.launch(
      reportConfig(1, 32),
      [](ThreadCtx& t) {
        SharedSpan<double> data = sharedArray(t, 4);
        if (t.threadId() == 0) (void)data.get(t, 2);  // never written
      },
      sharedArraySetup(4));
  ASSERT_TRUE(stats.isOk()) << stats.status().toString();
  // The 8-byte read covers two 4-byte shadow granules, one finding each.
  EXPECT_EQ(dev.lastCheckReport().count(DiagKind::kUninitSharedRead), 2u)
      << dev.lastCheckReport().toString();
}

TEST(SimcheckDeviceTest, BarrierDivergenceFlaggedOnDeadlock) {
  Device dev(ArchSpec::testTiny());
  // Thread 0 exits while the rest of the block waits at syncBlock: the
  // launch deadlocks and the checker must say why.
  auto stats = dev.launch(reportConfig(1, 32), [](ThreadCtx& t) {
    if (t.threadId() == 0) return;
    t.syncBlock();
  });
  EXPECT_FALSE(stats.isOk());  // the deadlock itself fails the launch
  const CheckReport& report = dev.lastCheckReport();
  EXPECT_GE(report.count(DiagKind::kBarrierDivergence), 1u)
      << report.toString();
}

TEST(SimcheckDeviceTest, InconsistentWarpMasksFlagged) {
  Device dev(ArchSpec::testTiny());
  // Lane 0 waits on mask 0x3 while lane 1 waits on the overlapping
  // mask 0x7: the pending rendezvous disagree about who participates,
  // and neither can complete.
  auto stats = dev.launch(reportConfig(1, 32), [](ThreadCtx& t) {
    if (t.laneId() == 0) {
      t.syncWarp(LaneMask{0x3});
    } else if (t.laneId() == 1) {
      t.syncWarp(LaneMask{0x7});
    }
  });
  EXPECT_FALSE(stats.isOk());
  const CheckReport& report = dev.lastCheckReport();
  EXPECT_GE(report.count(DiagKind::kInconsistentMask), 1u)
      << report.toString();
}

TEST(SimcheckDeviceTest, CrossBlockGlobalRaceFlagged) {
  Device dev(ArchSpec::testTiny());
  auto cell = dev.allocateArray<double>(1);
  ASSERT_TRUE(cell.isOk());
  auto stats = dev.launch(reportConfig(4, 32), [&](ThreadCtx& t) {
    if (t.threadId() == 0) cell.value().set(t, 0, 1.0 * t.blockId());
  });
  ASSERT_TRUE(stats.isOk()) << stats.status().toString();
  EXPECT_GE(dev.lastCheckReport().count(DiagKind::kCrossBlockRace), 1u)
      << dev.lastCheckReport().toString();
}

TEST(SimcheckDeviceTest, CrossBlockAtomicsAndReadsAreClean) {
  Device dev(ArchSpec::testTiny());
  auto sum = dev.allocateArray<double>(1);
  auto input = dev.allocateArray<double>(1);
  ASSERT_TRUE(sum.isOk());
  ASSERT_TRUE(input.isOk());
  input.value().raw(0) = 3.0;
  auto stats = dev.launch(reportConfig(4, 32), [&](ThreadCtx& t) {
    sum.value().atomicAdd(t, 0, input.value().get(t, 0));
  });
  ASSERT_TRUE(stats.isOk()) << stats.status().toString();
  EXPECT_TRUE(dev.lastCheckReport().clean())
      << dev.lastCheckReport().toString();
}

TEST(SimcheckDeviceTest, FatalModeFailsRacyLaunch) {
  Device dev(ArchSpec::testTiny());
  LaunchConfig config = reportConfig(1, 64);
  config.check.mode = CheckMode::kFatal;
  auto stats = dev.launch(
      config,
      [](ThreadCtx& t) {
        SharedSpan<double> bins = sharedArray(t, 8);
        const size_t bin = t.threadId() % 8;
        bins.set(t, bin, bins.get(t, bin) + 1.0);
      },
      sharedArraySetup(8));
  EXPECT_FALSE(stats.isOk());
  EXPECT_NE(stats.status().toString().find("simcheck"), std::string::npos)
      << stats.status().toString();
  EXPECT_FALSE(dev.lastCheckReport().clean());
}

TEST(SimcheckDeviceTest, DisabledModeCollectsNothing) {
  Device dev(ArchSpec::testTiny());
  LaunchConfig config = reportConfig(1, 64);
  config.check.mode = CheckMode::kOff;
  auto stats = dev.launch(
      config,
      [](ThreadCtx& t) {
        SharedSpan<double> bins = sharedArray(t, 8);
        const size_t bin = t.threadId() % 8;
        bins.set(t, bin, bins.get(t, bin) + 1.0);
      },
      sharedArraySetup(8));
  ASSERT_TRUE(stats.isOk());
  EXPECT_TRUE(dev.lastCheckReport().clean());
  EXPECT_EQ(dev.lastCheckMode(), CheckMode::kOff);
}

// ---------------- sharing-space protocol bugs ----------------

/// Launch one 32-thread block whose setup hook installs a SharingSpace
/// (2048 bytes, as the paper's default) in the user-state slot.
Result<gpusim::KernelStats> launchWithSharing(
    Device& dev, const std::function<void(ThreadCtx&, omprt::SharingSpace&)>&
                     body) {
  std::unique_ptr<omprt::SharingSpace> space;
  const gpusim::BlockSetupHook setup = [&](BlockEngine& engine) {
    space = std::make_unique<omprt::SharingSpace>(
        engine.sharedMemory(), engine.globalMemory(), 2048, 32);
    engine.setUserState(space.get());
  };
  return dev.launch(reportConfig(1, 32), [&body](ThreadCtx& t) {
    auto& sp = *static_cast<omprt::SharingSpace*>(t.block().userState());
    body(t, sp);
  }, setup);
}

TEST(SimcheckSharingTest, OutOfSliceStoreFlagged) {
  Device dev(ArchSpec::testTiny());
  auto stats = launchWithSharing(dev, [](ThreadCtx& t,
                                         omprt::SharingSpace& sp) {
    if (t.threadId() != 0) return;
    static int value = 7;
    void** area = sp.beginSharing(t, /*group=*/0, /*numGroups=*/8,
                                  /*numArgs=*/2);
    sp.storeArg(t, 0, area, /*index=*/5, &value);  // beyond the 2 declared
    sp.endSharing(t, 0);
  });
  ASSERT_TRUE(stats.isOk()) << stats.status().toString();
  EXPECT_EQ(dev.lastCheckReport().count(DiagKind::kSharingOutOfSlice), 1u)
      << dev.lastCheckReport().toString();
}

TEST(SimcheckSharingTest, UnpublishedFetchFlagged) {
  Device dev(ArchSpec::testTiny());
  auto stats = launchWithSharing(dev, [](ThreadCtx& t,
                                         omprt::SharingSpace& sp) {
    if (t.threadId() != 0) return;
    static int value = 7;
    void** area = sp.beginSharing(t, 0, 8, /*numArgs=*/3);
    sp.storeArg(t, 0, area, 0, &value);
    sp.storeArg(t, 0, area, 2, &value);  // index 1 never stored
    (void)sp.fetchArgs(t, 0);
    sp.endSharing(t, 0);
  });
  ASSERT_TRUE(stats.isOk()) << stats.status().toString();
  EXPECT_EQ(dev.lastCheckReport().count(DiagKind::kSharingUnpublishedRead),
            1u)
      << dev.lastCheckReport().toString();
}

TEST(SimcheckSharingTest, CompleteProtocolIsClean) {
  Device dev(ArchSpec::testTiny());
  auto stats = launchWithSharing(dev, [](ThreadCtx& t,
                                         omprt::SharingSpace& sp) {
    if (t.threadId() != 0) return;
    static int a = 1;
    static int b = 2;
    void** area = sp.beginSharing(t, 0, 8, 2);
    sp.storeArg(t, 0, area, 0, &a);
    sp.storeArg(t, 0, area, 1, &b);
    (void)sp.fetchArgs(t, 0);
    sp.endSharing(t, 0);
  });
  ASSERT_TRUE(stats.isOk()) << stats.status().toString();
  EXPECT_TRUE(dev.lastCheckReport().clean())
      << dev.lastCheckReport().toString();
}

TEST(SimcheckSharingTest, OverflowLeakFlagged) {
  Device dev(ArchSpec::testTiny());
  // 2048-byte space, 8 groups -> 30 pointer slots per group; 64 args
  // overflow to a global block that is never released by endSharing.
  auto stats = launchWithSharing(dev, [](ThreadCtx& t,
                                         omprt::SharingSpace& sp) {
    if (t.threadId() != 0) return;
    (void)sp.beginSharing(t, 0, 8, /*numArgs=*/64);
    // missing endSharing: the overflow block outlives the kernel
  });
  ASSERT_TRUE(stats.isOk()) << stats.status().toString();
  EXPECT_EQ(dev.lastCheckReport().count(DiagKind::kSharingOverflowLeak), 1u)
      << dev.lastCheckReport().toString();
}

// ---------------- zero-perturbation guard ----------------

gpusim::KernelStats runBarrierKernel(CheckMode mode, uint32_t workers) {
  Device dev(ArchSpec::testTiny());
  LaunchConfig config;
  config.numBlocks = 6;
  config.threadsPerBlock = 64;
  config.hostWorkers = workers;
  config.check.mode = mode;
  auto sum = dev.allocateArray<double>(1);
  EXPECT_TRUE(sum.isOk());
  auto stats = dev.launch(
      config,
      [&](ThreadCtx& t) {
        SharedSpan<double> data = sharedArray(t, 64);
        data.set(t, t.threadId(), 1.0);
        t.syncBlock();
        double acc = data.get(t, (t.threadId() + 7) % 64);
        t.fma(4);
        t.syncWarp(~LaneMask{0});
        sum.value().atomicAdd(t, 0, acc);
      },
      sharedArraySetup(64));
  EXPECT_TRUE(stats.isOk()) << stats.status().toString();
  return stats.isOk() ? stats.value() : gpusim::KernelStats{};
}

TEST(SimcheckOverheadTest, StatsBitIdenticalOffVsReport) {
  const gpusim::KernelStats off = runBarrierKernel(CheckMode::kOff, 1);
  const gpusim::KernelStats on = runBarrierKernel(CheckMode::kReport, 1);
  const gpusim::KernelStats on_mt = runBarrierKernel(CheckMode::kReport, 4);
  for (const gpusim::KernelStats* other : {&on, &on_mt}) {
    EXPECT_EQ(off.cycles, other->cycles);
    EXPECT_EQ(off.busyCycles, other->busyCycles);
    EXPECT_EQ(off.maxThreadCycles, other->maxThreadCycles);
    EXPECT_EQ(off.waves, other->waves);
    EXPECT_EQ(off.counters.values, other->counters.values);
  }
}

// ---------------- plumbing: omprt / hostrt ----------------

TEST(SimcheckPlumbingTest, TargetConfigCarriesModeToDevice) {
  Device dev(ArchSpec::testTiny());
  omprt::TargetConfig config;
  config.numTeams = 2;
  config.threadsPerTeam = 32;
  config.check.mode = CheckMode::kReport;
  auto stats = omprt::launchTarget(dev, config, [](omprt::OmpContext&) {});
  ASSERT_TRUE(stats.isOk()) << stats.status().toString();
  EXPECT_EQ(dev.lastCheckMode(), CheckMode::kReport);
  EXPECT_TRUE(dev.lastCheckReport().clean())
      << dev.lastCheckReport().toString();
}

TEST(SimcheckPlumbingTest, DeviceManagerDefaultAppliesWhenAuto) {
  ScopedEnv env("SIMTOMP_CHECK", nullptr);  // isolate from CI settings
  hostrt::DeviceManager manager({ArchSpec::testTiny()});
  simcheck::CheckConfig check;
  check.mode = CheckMode::kReport;
  manager.setDefaultCheck(check);
  omprt::TargetConfig config;
  config.numTeams = 1;
  config.threadsPerTeam = 32;
  auto stats = manager.launchOn(0, config, [](omprt::OmpContext&) {});
  ASSERT_TRUE(stats.isOk()) << stats.status().toString();
  EXPECT_EQ(manager.device(0).lastCheckMode(), CheckMode::kReport);

  // An explicit per-launch mode beats the manager default.
  config.check.mode = CheckMode::kOff;
  stats = manager.launchOn(0, config, [](omprt::OmpContext&) {});
  ASSERT_TRUE(stats.isOk());
  EXPECT_EQ(manager.device(0).lastCheckMode(), CheckMode::kOff);
}

}  // namespace
}  // namespace simtomp::simcheck
