#!/usr/bin/env bash
# CI gate for the host-parallel block executor.
#
# Stage 1: regular build, full test suite.
# Stage 2: ThreadSanitizer build; the concurrency-sensitive suites
#          (gpusim_*, omprt_*) run with SIMTOMP_HOST_WORKERS=8 so every
#          launch actually spreads blocks over 8 host workers — a data
#          race in the simulator surfaces here as a test failure even
#          on a single-core CI machine.
#
# Usage: tools/ci.sh [build-dir-prefix]   (default: build-ci)
set -euo pipefail

cd "$(dirname "$0")/.."
prefix="${1:-build-ci}"
jobs="$(nproc 2>/dev/null || echo 2)"

echo "=== stage 1: regular build + full ctest ==="
cmake -B "${prefix}" -S . -DCMAKE_BUILD_TYPE=RelWithDebInfo
cmake --build "${prefix}" -j "${jobs}"
ctest --test-dir "${prefix}" --output-on-failure -j "${jobs}"

echo "=== stage 2: TSan build, gpusim+omprt suites at 8 host workers ==="
cmake -B "${prefix}-tsan" -S . -DCMAKE_BUILD_TYPE=RelWithDebInfo \
  -DSIMTOMP_SANITIZE=thread -DSIMTOMP_BUILD_BENCH=OFF \
  -DSIMTOMP_BUILD_EXAMPLES=OFF
cmake --build "${prefix}-tsan" -j "${jobs}"
SIMTOMP_HOST_WORKERS=8 TSAN_OPTIONS="halt_on_error=1 second_deadlock_stack=1" \
  ctest --test-dir "${prefix}-tsan" --output-on-failure -j 1 \
  -R '^(gpusim|omprt)_'

echo "=== ci.sh: all stages passed ==="
