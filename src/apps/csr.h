// CSR sparse-matrix workload for sparse_matvec (paper section 6.3).
//
// The paper adapted an OpenACC SpMV whose "inner-most loop is
// relatively small, and varies based on the sparsity of the matrix".
// The generator draws skewed (exponential-ish) row lengths around a
// small mean so SIMD groups of ~8 lanes waste few lanes while a full
// 32-thread team mostly idles — the structural property behind the
// paper's 3.5x result.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "support/rng.h"

namespace simtomp::apps {

struct CsrMatrix {
  uint32_t numRows = 0;
  uint32_t numCols = 0;
  std::vector<uint32_t> rowPtr;  ///< size numRows+1
  std::vector<uint32_t> colIdx;  ///< size nnz
  std::vector<double> values;    ///< size nnz

  [[nodiscard]] uint32_t nnz() const {
    return static_cast<uint32_t>(colIdx.size());
  }
  [[nodiscard]] uint32_t rowLength(uint32_t row) const {
    return rowPtr[row + 1] - rowPtr[row];
  }
};

struct CsrGenConfig {
  uint32_t numRows = 2048;
  uint32_t numCols = 2048;
  /// Mean nonzeros per row (exponential-ish draw, >= 1).
  uint32_t meanRowLength = 8;
  uint32_t maxRowLength = 64;
  uint64_t seed = 42;
};

/// Deterministic skewed-row-length CSR generator.
CsrMatrix generateCsr(const CsrGenConfig& config);

/// Host reference y = A*x.
std::vector<double> spmvReference(const CsrMatrix& A,
                                  std::span<const double> x);

/// Deterministic dense vector of length n (values in [-1, 1]).
std::vector<double> denseVector(size_t n, uint64_t seed);

}  // namespace simtomp::apps
