#include "simserve/mix.h"

#include <algorithm>
#include <istream>
#include <memory>
#include <sstream>

#include "dsl/dsl.h"
#include "omprt/runtime.h"
#include "support/rng.h"

namespace simtomp::simserve {

namespace {

constexpr uint64_t kTile = 8;
constexpr size_t kNoKernel = static_cast<size_t>(-1);

const std::vector<std::string> kKernels = {"axpy", "stencil", "square"};

size_t kernelIndex(std::string_view name) {
  for (size_t i = 0; i < kKernels.size(); ++i) {
    if (kKernels[i] == name) return i;
  }
  return kNoKernel;
}

Status lineError(size_t lineno, const std::string& what) {
  return Status::invalidArgument("mix line " + std::to_string(lineno) + ": " +
                                 what);
}

bool parseU64(const std::string& text, uint64_t& value) {
  if (text.empty()) return false;
  uint64_t v = 0;
  for (const char c : text) {
    if (c < '0' || c > '9') return false;
    v = v * 10 + static_cast<uint64_t>(c - '0');
  }
  value = v;
  return true;
}

/// Split "key=value"; returns false when there is no '='.
bool splitKv(const std::string& token, std::string& key, std::string& value) {
  const size_t eq = token.find('=');
  if (eq == std::string::npos || eq == 0) return false;
  key = token.substr(0, eq);
  value = token.substr(eq + 1);
  return true;
}

/// Has `key` already appeared on this line? Linear scan: lines carry a
/// handful of keys, and the recording marks the duplicate as an error.
bool noteKey(std::vector<std::string>& seen, const std::string& key) {
  for (const std::string& s : seen) {
    if (s == key) return false;
  }
  seen.push_back(key);
  return true;
}

}  // namespace

const std::vector<std::string>& mixKernelNames() { return kKernels; }

// The verification oracle. axpy: y = 2x + 3 with x[i] = i; stencil:
// 3-point sum over the virtual input x[j] = j; square: i^2 + 1.
uint64_t mixKernelValue(size_t kernel, uint64_t i) {
  switch (kernel) {
    case 0: return 2 * i + 3;
    case 1: return (i - 1) + i + (i + 1);
    default: return i * i + 1;
  }
}

// Three-level region (teams / tiles / simd lanes), the structure every
// driver in this repo uses; kernels differ in per-lane cost so the
// mix's latency histograms have spread.
omprt::TargetRegionFn makeMixRegion(
    size_t kernel, uint64_t trip, std::shared_ptr<std::vector<uint64_t>> out) {
  return [kernel, trip, out](omprt::OmpContext& ctx) {
    const uint64_t tiles = (trip + kTile - 1) / kTile;
    const omprt::rt::Range r = omprt::rt::distributeStatic(ctx, tiles);
    omprt::ParallelConfig pc;
    pc.modeAuto = true;    // follow the launch-wide parallel mode
    pc.simdGroupSize = 0;  // follow the launch-wide simdlen
    auto tile_body = [kernel, trip, out, base = r.begin](omprt::OmpContext& c,
                                                         uint64_t logical) {
      const uint64_t tile = base + logical;
      c.gpu().work(1);
      dsl::simd(c, kTile,
                [kernel, trip, out, tile](omprt::OmpContext& cc,
                                          uint64_t lane) {
                  const uint64_t i = tile * kTile + lane;
                  if (i >= trip) return;
                  cc.gpu().work(1 + 2 * static_cast<uint64_t>(kernel));
                  (*out)[i] = mixKernelValue(kernel, i);
                });
    };
    dsl::parallelFor(ctx, r.size(), tile_body, pc);
  };
}

size_t Mix::requestCount() const {
  size_t n = 0;
  for (const MixOp& op : ops) {
    if (op.kind == MixOp::Kind::kRequest) ++n;
  }
  return n;
}

std::string Mix::toString() const {
  std::string out = "# simserve mix v1\n";
  for (const MixOp& op : ops) {
    switch (op.kind) {
      case MixOp::Kind::kTenant:
        out += "tenant " + op.tenant.name +
               " priority=" + std::to_string(op.tenant.priority) +
               " inflight=" + std::to_string(op.tenant.maxInFlight) +
               " queued=" + std::to_string(op.tenant.maxQueued);
        // SLO keys render only off their defaults, so mixes recorded
        // before they existed keep their exact bytes.
        if (op.tenant.deadlineCycles != kNoDeadline) {
          out += " deadline=" + std::to_string(op.tenant.deadlineCycles);
        }
        if (op.tenant.maxRetries != TenantSpec{}.maxRetries) {
          out += " retries=" + std::to_string(op.tenant.maxRetries);
        }
        out += "\n";
        break;
      case MixOp::Kind::kRequest:
        out += "req " + op.reqTenant + " " + op.kernel +
               " trip=" + std::to_string(op.trip) +
               " simdlen=" + std::to_string(op.simdlen);
        if (!op.fault.empty()) out += " fault=" + op.fault;
        if (op.deadline != kInheritDeadline) {
          out += " deadline=" + std::to_string(op.deadline);
        }
        out += "\n";
        break;
      case MixOp::Kind::kPump: out += "pump\n"; break;
      case MixOp::Kind::kDrain: out += "drain\n"; break;
    }
  }
  return out;
}

Result<Mix> parseMix(std::istream& in) {
  Mix mix;
  std::string line;
  size_t lineno = 0;
  while (std::getline(in, line)) {
    ++lineno;
    std::istringstream tokens(line);
    std::string word;
    if (!(tokens >> word) || word[0] == '#') continue;
    MixOp op;
    if (word == "pump") {
      op.kind = MixOp::Kind::kPump;
    } else if (word == "drain") {
      op.kind = MixOp::Kind::kDrain;
    } else if (word == "tenant") {
      op.kind = MixOp::Kind::kTenant;
      if (!(tokens >> op.tenant.name)) {
        return lineError(lineno, "tenant needs a name");
      }
      std::string token, key, value;
      std::vector<std::string> seen;
      while (tokens >> token) {
        uint64_t v = 0;
        if (!splitKv(token, key, value) || !parseU64(value, v)) {
          return lineError(lineno, "bad tenant attribute '" + token + "'");
        }
        if (!noteKey(seen, key)) {
          return lineError(lineno, "duplicate tenant key '" + key + "'");
        }
        if (key == "priority") {
          op.tenant.priority = static_cast<uint32_t>(v);
        } else if (key == "inflight") {
          op.tenant.maxInFlight = static_cast<uint32_t>(v);
        } else if (key == "queued") {
          op.tenant.maxQueued = static_cast<uint32_t>(v);
        } else if (key == "deadline") {
          op.tenant.deadlineCycles = v;
        } else if (key == "retries") {
          op.tenant.maxRetries = static_cast<uint32_t>(v);
        } else {
          return lineError(lineno, "unknown tenant key '" + key + "'");
        }
      }
    } else if (word == "req") {
      op.kind = MixOp::Kind::kRequest;
      if (!(tokens >> op.reqTenant >> op.kernel)) {
        return lineError(lineno, "req needs TENANT KERNEL");
      }
      if (kernelIndex(op.kernel) == kNoKernel) {
        return lineError(lineno, "unknown kernel '" + op.kernel + "'");
      }
      std::string token, key, value;
      std::vector<std::string> seen;
      while (tokens >> token) {
        if (!splitKv(token, key, value)) {
          return lineError(lineno, "bad req attribute '" + token + "'");
        }
        if (!noteKey(seen, key)) {
          return lineError(lineno, "duplicate req key '" + key + "'");
        }
        if (key == "fault") {
          op.fault = value;
          continue;
        }
        uint64_t v = 0;
        if (!parseU64(value, v)) {
          return lineError(lineno, "bad req attribute '" + token + "'");
        }
        if (key == "trip") {
          op.trip = v;
        } else if (key == "simdlen") {
          op.simdlen = static_cast<uint32_t>(v);
        } else if (key == "deadline") {
          op.deadline = v;
        } else {
          return lineError(lineno, "unknown req key '" + key + "'");
        }
      }
      if (op.trip == 0) return lineError(lineno, "req needs trip=N > 0");
      if (op.simdlen == 0) return lineError(lineno, "simdlen must be >= 1");
    } else {
      return lineError(lineno, "unknown directive '" + word + "'");
    }
    mix.ops.push_back(std::move(op));
  }
  return mix;
}

Result<Mix> parseMixText(const std::string& text) {
  std::istringstream in(text);
  return parseMix(in);
}

Mix generateMix(const MixProfile& profile) {
  Mix mix;
  Rng rng(profile.seed);
  for (uint32_t t = 0; t < profile.tenants; ++t) {
    MixOp op;
    op.kind = MixOp::Kind::kTenant;
    op.tenant.name = "t";
    op.tenant.name += std::to_string(t);
    op.tenant.priority = 1 + (t % 4);
    op.tenant.maxInFlight = profile.maxInFlight;
    op.tenant.maxQueued = profile.maxQueued;
    mix.ops.push_back(std::move(op));
  }
  for (uint32_t r = 0; r < profile.requests; ++r) {
    MixOp op;
    op.kind = MixOp::Kind::kRequest;
    op.reqTenant = "t";
    op.reqTenant +=
        std::to_string(rng.nextBelow(std::max(1u, profile.tenants)));
    op.kernel = kKernels[rng.nextBelow(kKernels.size())];
    op.trip = kTile * (8 + rng.nextBelow(25));  // 64 .. 256
    op.simdlen = uint32_t{1} << rng.nextBelow(4);  // 1, 2, 4, 8
    if (profile.faultPermille != 0 &&
        rng.nextBelow(1000) < profile.faultPermille) {
      op.fault = "device_lost_post:count=1";
    }
    mix.ops.push_back(std::move(op));
    if (profile.pumpEvery != 0 && (r + 1) % profile.pumpEvery == 0) {
      mix.ops.push_back(MixOp{MixOp::Kind::kPump, {}, "", "", 0, 1, ""});
      mix.ops.push_back(MixOp{MixOp::Kind::kDrain, {}, "", "", 0, 1, ""});
    }
  }
  mix.ops.push_back(MixOp{MixOp::Kind::kPump, {}, "", "", 0, 1, ""});
  mix.ops.push_back(MixOp{MixOp::Kind::kDrain, {}, "", "", 0, 1, ""});
  return mix;
}

std::string ReplayReport::toString() const {
  return "submitted=" + std::to_string(submitted) +
         " admitted=" + std::to_string(admitted) +
         " shed_at_submit=" + std::to_string(shedAtSubmit) +
         " deadline_shed=" + std::to_string(deadlineShed) +
         " completed=" + std::to_string(completed) +
         " failed=" + std::to_string(failed) +
         " verified=" + std::to_string(verified) +
         " verify_failures=" + std::to_string(verifyFailures);
}

Result<ReplayReport> replayMix(LaunchService& service, const Mix& mix,
                               const ReplayOptions& options) {
  ReplayReport report;
  struct Pending {
    uint64_t id;
    size_t kernel;
    uint64_t trip;
    std::shared_ptr<std::vector<uint64_t>> out;
  };
  std::vector<Pending> pending;
  for (const MixOp& op : mix.ops) {
    switch (op.kind) {
      case MixOp::Kind::kTenant: {
        const Status st = service.registerTenant(op.tenant);
        if (!st.isOk()) return st;
        break;
      }
      case MixOp::Kind::kPump:
        service.pump();
        break;
      case MixOp::Kind::kDrain: {
        const Status st = service.drain();
        if (!st.isOk()) return st;
        break;
      }
      case MixOp::Kind::kRequest: {
        const size_t kernel = kernelIndex(op.kernel);
        auto out = std::make_shared<std::vector<uint64_t>>(op.trip, 0);
        omprt::TargetConfig config;
        config.teamsMode = omprt::ExecMode::kSPMD;
        config.numTeams = 2;
        config.threadsPerTeam = 64;
        config.parallelMode = omprt::ExecMode::kSPMD;
        config.simdlen = op.simdlen;
        config.hostWorkers = options.hostWorkers;
        config.check.mode = simcheck::CheckMode::kOff;
        config.tuneKey = op.kernel;
        config.tripCount = op.trip;
        // Pin the plan: an empty spec would consult SIMTOMP_FAULT and
        // let the environment perturb the replay.
        config.fault.spec = op.fault.empty() ? "off" : op.fault;
        config.watchdogSteps = options.watchdogSteps;
        const std::string fingerprint =
            op.kernel + "/t" + std::to_string(op.trip) + "/s" +
            std::to_string(op.simdlen);
        ++report.submitted;
        const Result<uint64_t> admitted = service.submit(
            op.reqTenant, std::move(config),
            makeMixRegion(kernel, op.trip, out), fingerprint, op.deadline);
        if (admitted.isOk()) {
          ++report.admitted;
          pending.push_back(Pending{admitted.value(), kernel, op.trip, out});
        } else if (admitted.status().code() == StatusCode::kResourceExhausted) {
          ++report.shedAtSubmit;  // deterministic shedding is expected
        } else if (admitted.status().code() == StatusCode::kDeadlineExceeded) {
          ++report.deadlineShed;  // SLO admission control, also expected
        } else {
          return admitted.status();
        }
        break;
      }
    }
  }
  const Status done = service.runToCompletion();
  if (!done.isOk()) return done;
  for (const Pending& p : pending) {
    const RequestState state = service.outcome(p.id).state;
    if (state == RequestState::kFailed) ++report.failed;
    if (state != RequestState::kDone) continue;
    ++report.completed;
    bool ok = true;
    for (uint64_t i = 0; i < p.trip; ++i) {
      if ((*p.out)[i] != mixKernelValue(p.kernel, i)) ok = false;
    }
    if (ok) {
      ++report.verified;
    } else {
      ++report.verifyFailures;
    }
  }
  if (report.verifyFailures != 0) {
    return Status::internal("mix replay verify failed for " +
                            std::to_string(report.verifyFailures) +
                            " requests");
  }
  return report;
}

}  // namespace simtomp::simserve
