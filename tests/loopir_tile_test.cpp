// Tests for the tile transform and its three-level DSL mapping.
#include <gtest/gtest.h>

#include <atomic>
#include <set>
#include <vector>

#include "dsl/dsl.h"
#include "loopir/canonical_loop.h"

namespace simtomp::loopir {
namespace {

using gpusim::ArchSpec;
using gpusim::Device;

TEST(TiledLoopTest, EvenSplit) {
  const TiledLoop tiled(CanonicalLoop::upTo(64), 16);
  EXPECT_EQ(tiled.numTiles(), 4u);
  for (uint64_t t = 0; t < 4; ++t) EXPECT_EQ(tiled.tileTrip(t), 16u);
  EXPECT_EQ(tiled.ivAt(2, 3), 35);
}

TEST(TiledLoopTest, RemainderTile) {
  const TiledLoop tiled(CanonicalLoop::upTo(70), 16);
  EXPECT_EQ(tiled.numTiles(), 5u);
  EXPECT_EQ(tiled.tileTrip(4), 6u);
  EXPECT_EQ(tiled.tileTrip(5), 0u);  // past the end
}

TEST(TiledLoopTest, StridedLoopTiles) {
  // 3,7,11,...,39 (10 iterations), tiles of 4.
  const TiledLoop tiled(CanonicalLoop::make(3, 40, 4).value(), 4);
  EXPECT_EQ(tiled.numTiles(), 3u);
  EXPECT_EQ(tiled.tileTrip(2), 2u);
  EXPECT_EQ(tiled.ivAt(0, 0), 3);
  EXPECT_EQ(tiled.ivAt(1, 0), 19);
  EXPECT_EQ(tiled.ivAt(2, 1), 39);
}

TEST(TiledLoopTest, ZeroTileSizeClampsToOne) {
  const TiledLoop tiled(CanonicalLoop::upTo(5), 0);
  EXPECT_EQ(tiled.numTiles(), 5u);
  EXPECT_EQ(tiled.tileTrip(0), 1u);
}

TEST(TiledLoopTest, CoversExactlyTheIterationSpace) {
  for (uint64_t n : {1u, 7u, 16u, 100u, 129u}) {
    for (uint64_t tile : {1u, 3u, 8u, 32u}) {
      const TiledLoop tiled(CanonicalLoop::upTo(n), tile);
      std::set<int64_t> seen;
      for (uint64_t t = 0; t < tiled.numTiles(); ++t) {
        for (uint64_t o = 0; o < tiled.tileTrip(t); ++o) {
          EXPECT_TRUE(seen.insert(tiled.ivAt(t, o)).second);
        }
      }
      EXPECT_EQ(seen.size(), n) << "n=" << n << " tile=" << tile;
    }
  }
}

TEST(TiledDslTest, FlatLoopBecomesThreeLevel) {
  Device dev(ArchSpec::testTiny());
  constexpr uint64_t kN = 1000;
  std::vector<std::atomic<int>> hits(kN);
  const TiledLoop tiled(CanonicalLoop::upTo(kN), 32);
  dsl::LaunchSpec spec;
  spec.numTeams = 1;
  spec.threadsPerTeam = 64;
  auto stats = dsl::target(dev, spec, [&](dsl::OmpContext& ctx) {
    dsl::parallelForTiledSimd(
        ctx, tiled,
        [&hits](dsl::OmpContext&, int64_t iv) {
          hits[static_cast<size_t>(iv)]++;
        },
        omprt::ParallelConfig{omprt::ExecMode::kGeneric, 8});
  });
  ASSERT_TRUE(stats.isOk()) << stats.status().toString();
  for (auto& h : hits) EXPECT_EQ(h.load(), 1);
  // It really used the simd machinery: one simd loop per tile per...
  EXPECT_GE(stats.value().counters.get(gpusim::Counter::kSimdLoop),
            tiled.numTiles());
}

TEST(TiledDslTest, SpmdModeCoversWithRemainder) {
  Device dev(ArchSpec::testTiny());
  constexpr uint64_t kN = 777;  // awkward remainder
  std::vector<std::atomic<int>> hits(kN);
  const TiledLoop tiled(CanonicalLoop::upTo(kN), 16);
  dsl::LaunchSpec spec;
  spec.numTeams = 1;
  spec.threadsPerTeam = 32;
  auto stats = dsl::target(dev, spec, [&](dsl::OmpContext& ctx) {
    dsl::parallelForTiledSimd(
        ctx, tiled,
        [&hits](dsl::OmpContext&, int64_t iv) {
          hits[static_cast<size_t>(iv)]++;
        },
        omprt::ParallelConfig{omprt::ExecMode::kSPMD, 16});
  });
  ASSERT_TRUE(stats.isOk());
  for (auto& h : hits) EXPECT_EQ(h.load(), 1);
}

}  // namespace
}  // namespace simtomp::loopir
