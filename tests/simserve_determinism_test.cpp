// The launch service's determinism contract, exercised the way CI
// byte-compares the driver: one mix, fresh manager+service per run,
// dumpStats() captured as a string. Runs vary host workers (physical
// interleaving) and shard count (placement); the dumps must be equal
// to the byte. This suite runs under ThreadSanitizer in tools/ci.sh
// stage 2 (simserve_ matches the TSan regex), so the 8-worker replays
// here double as the race detector for the service's multi-producer
// submit path.
#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "hostrt/device_manager.h"
#include "simserve/mix.h"
#include "simserve/service.h"

namespace simtomp::simserve {
namespace {

using gpusim::ArchSpec;

/// A mix that forces real shedding pressure: tight per-tenant queues
/// and enough requests between drains to overflow the global bound.
Mix pressuredMix() {
  MixProfile profile;
  profile.seed = 11;
  profile.tenants = 4;
  profile.requests = 96;
  profile.pumpEvery = 32;
  profile.faultPermille = 20;
  profile.maxInFlight = 8;
  profile.maxQueued = 6;
  return generateMix(profile);
}

std::string runMix(const Mix& mix, uint32_t workers, uint32_t shards,
                   ReplayReport* report_out = nullptr) {
  std::vector<gpusim::ArchSpec> specs(4, ArchSpec::testTiny());
  hostrt::DeviceManager mgr(std::move(specs));
  ServiceConfig config;
  config.shardCount = shards;
  config.maxQueued = 24;  // global bound small enough to shed
  LaunchService service(mgr, config);
  ReplayOptions options;
  options.hostWorkers = workers;
  const Result<ReplayReport> report = replayMix(service, mix, options);
  EXPECT_TRUE(report.isOk()) << report.status().toString();
  if (report.isOk() && report_out != nullptr) *report_out = report.value();
  std::ostringstream out;
  service.dumpStats(out);
  return out.str();
}

TEST(ServeDeterminismTest, ShedUnderFullQueueIsIdentical1v8Workers) {
  const Mix mix = pressuredMix();
  ReplayReport report;
  const std::string workers1 = runMix(mix, 1, 4, &report);
  const std::string workers8 = runMix(mix, 8, 4);
  // The pressure must be real — a mix that sheds nothing would pass
  // this test vacuously.
  EXPECT_GT(report.shedAtSubmit, 0u);
  EXPECT_GT(report.admitted, 0u);
  EXPECT_EQ(workers1, workers8);
}

TEST(ServeDeterminismTest, StatsIdenticalAcrossShardCountsAndReruns) {
  const Mix mix = pressuredMix();
  const std::string base = runMix(mix, 1, 4);
  EXPECT_EQ(base, runMix(mix, 1, 4));   // rerun
  EXPECT_EQ(base, runMix(mix, 1, 1));   // one shard
  EXPECT_EQ(base, runMix(mix, 1, 13));  // prime shard count
  EXPECT_EQ(base, runMix(mix, 8, 13));  // both axes at once
}

TEST(ServeDeterminismTest, ConcurrentSubmittersDoNotRace) {
  // submit() is the service's only multi-producer entry; hammer it from
  // four threads while the service thread pumps/drains. Counts are
  // checked for conservation (every submission accepted or shed) —
  // dispatch *order* is only defined relative to arrival order, which
  // concurrent submitters deliberately leave unordered.
  hostrt::DeviceManager mgr({ArchSpec::testTiny(), ArchSpec::testTiny()});
  LaunchService service(mgr);
  constexpr int kThreads = 4;
  constexpr int kPerThread = 32;
  for (int t = 0; t < kThreads; ++t) {
    TenantSpec spec;
    spec.name = "t";
    spec.name += std::to_string(t);
    spec.priority = 1 + static_cast<uint32_t>(t % 2);
    ASSERT_TRUE(service.registerTenant(spec).isOk());
  }
  omprt::TargetConfig config;
  config.teamsMode = omprt::ExecMode::kSPMD;
  config.numTeams = 1;
  config.threadsPerTeam = 64;
  config.check.mode = simcheck::CheckMode::kOff;
  config.fault.spec = "off";
  std::vector<std::thread> submitters;
  submitters.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    submitters.emplace_back([&service, &config, t] {
      std::string name = "t";
      name += std::to_string(t);
      for (int i = 0; i < kPerThread; ++i) {
        std::string fingerprint = "k";
        fingerprint += std::to_string(i % 3);
        const auto id = service.submit(name, config,
                                       [](omprt::OmpContext&) {},
                                       fingerprint);
        EXPECT_TRUE(id.isOk() ||
                    id.status().code() == StatusCode::kResourceExhausted);
      }
    });
  }
  for (std::thread& t : submitters) t.join();
  ASSERT_TRUE(service.runToCompletion().isOk());
  uint64_t completed = 0, shed = 0;
  for (int t = 0; t < kThreads; ++t) {
    std::string name = "t";
    name += std::to_string(t);
    const TenantStats stats = service.tenantStats(name);
    EXPECT_EQ(stats.submitted, static_cast<uint64_t>(kPerThread));
    EXPECT_EQ(stats.completed + stats.shed, stats.submitted);
    completed += stats.completed;
    shed += stats.shed;
  }
  EXPECT_EQ(completed + shed,
            static_cast<uint64_t>(kThreads) * kPerThread);
}

}  // namespace
}  // namespace simtomp::simserve
