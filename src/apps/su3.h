// SU3_bench (paper section 6.3, ref [13]): lattice-QCD SU(3) complex
// 3x3 matrix-matrix multiply microbenchmark.
//
// Per lattice site there are 4 link directions, each needing a 3x3
// complex matrix product C = A*B: 4 * 9 = 36 independent output
// elements — the paper's "small inner-loop with 36 total iterations"
// that each GPU thread originally executed serially. The 3-level
// variant puts `simd` on that loop; both `teams` and `parallel` regions
// execute in SPMD mode, as the paper states.
#pragma once

#include <cstdint>
#include <vector>

#include "apps/common.h"
#include "gpusim/device.h"
#include "support/status.h"

namespace simtomp::apps {

inline constexpr uint32_t kSu3Dirs = 4;
inline constexpr uint32_t kSu3Dim = 3;
/// Complex doubles per site: 4 dirs * 3x3 * (re,im).
inline constexpr uint32_t kSu3DoublesPerSite =
    kSu3Dirs * kSu3Dim * kSu3Dim * 2;
/// Inner-loop trip count per site (one iteration per output element).
inline constexpr uint32_t kSu3InnerTrip = kSu3Dirs * kSu3Dim * kSu3Dim;

struct Su3Workload {
  uint32_t numSites = 512;
  std::vector<double> a;  ///< numSites * kSu3DoublesPerSite
  std::vector<double> b;  ///< numSites * kSu3DoublesPerSite
};

Su3Workload generateSu3(uint32_t numSites, uint64_t seed);

/// Host reference C = A*B per site/direction.
std::vector<double> su3Reference(const Su3Workload& w);

struct Su3Options {
  uint32_t numTeams = 32;
  uint32_t threadsPerTeam = 128;
  /// SIMD group size; 1 = the serial-inner-loop baseline.
  uint32_t simdlen = 1;
};

Result<AppRunResult> runSu3(gpusim::Device& device, const Su3Workload& w,
                            const Su3Options& options);

}  // namespace simtomp::apps
