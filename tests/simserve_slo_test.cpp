// SLO, retry-budget, breaker and brownout tests for LaunchService.
//
// Like the base service tests, every expectation here is about logical
// state (modeled cycles, shed decisions, breaker states), so the
// assertions are exact. The quota-boundary cases (maxInFlight==1,
// maxQueued==1, a zero deadline) pin down the off-by-one edges of
// admission control; the breaker cases walk the full
// closed -> open -> half-open -> closed protocol on the logical epoch
// clock, including a revival racing the serving loop.
#include <gtest/gtest.h>

#include <string>
#include <thread>
#include <vector>

#include "hostrt/device_manager.h"
#include "simfault/resilience.h"
#include "simserve/service.h"

namespace simtomp::simserve {
namespace {

using gpusim::ArchSpec;

omprt::TargetConfig tinyConfig() {
  omprt::TargetConfig config;
  config.teamsMode = omprt::ExecMode::kSPMD;
  config.numTeams = 1;
  config.threadsPerTeam = 64;
  config.parallelMode = omprt::ExecMode::kSPMD;
  config.check.mode = simcheck::CheckMode::kOff;
  config.fault.spec = "off";  // never consult SIMTOMP_FAULT in tests
  return config;
}

omprt::TargetRegionFn nop() {
  return [](omprt::OmpContext&) {};
}

TenantSpec tenant(std::string name, uint32_t priority = 1,
                  uint32_t in_flight = 64, uint32_t queued = 256) {
  TenantSpec spec;
  spec.name = std::move(name);
  spec.priority = priority;
  spec.maxInFlight = in_flight;
  spec.maxQueued = queued;
  return spec;
}

std::string fp(uint64_t i) { return "fp" + std::to_string(i); }

TEST(ServiceSloTest, ZeroDeadlineRequestIsShedAtAdmission) {
  hostrt::DeviceManager mgr({ArchSpec::testTiny()});
  LaunchService service(mgr);
  ASSERT_TRUE(service.registerTenant(tenant("a")).isOk());
  // A zero budget can never be met: dispatch alone costs
  // kDispatchCycles, so admission sheds even into an empty queue.
  const auto shed = service.submit("a", tinyConfig(), nop(), "k",
                                   /*deadlineCycles=*/0);
  ASSERT_FALSE(shed.isOk());
  EXPECT_EQ(shed.status().code(), StatusCode::kDeadlineExceeded);
  const TenantStats stats = service.tenantStats("a");
  EXPECT_EQ(stats.submitted, 1u);
  EXPECT_EQ(stats.accepted, 0u);
  EXPECT_EQ(stats.deadlineShed, 1u);
  // Deadline sheds are their own conservation term, not part of shed.
  EXPECT_EQ(stats.shed, 0u);
  EXPECT_EQ(service.queuedRequests(), 0u);
}

TEST(ServiceSloTest, DeadlineAdmissionChargesQueueAheadExactly) {
  hostrt::DeviceManager mgr({ArchSpec::testTiny()});
  LaunchService service(mgr);
  TenantSpec spec = tenant("a");
  // Budget exactly one dispatch: admission passes only while nothing
  // is queued ahead (ahead_cost = queued * kQueueSlotCycles +
  // kDispatchCycles).
  spec.deadlineCycles = kDispatchCycles;
  ASSERT_TRUE(service.registerTenant(spec).isOk());
  EXPECT_TRUE(service.submit("a", tinyConfig(), nop(), fp(0)).isOk());
  const auto second = service.submit("a", tinyConfig(), nop(), fp(1));
  ASSERT_FALSE(second.isOk());
  EXPECT_EQ(second.status().code(), StatusCode::kDeadlineExceeded);
  // A per-request kNoDeadline override opts out of the tenant default
  // and sails through the same queue depth.
  EXPECT_TRUE(
      service.submit("a", tinyConfig(), nop(), fp(2), kNoDeadline).isOk());
  EXPECT_EQ(service.tenantStats("a").deadlineShed, 1u);
  ASSERT_TRUE(service.runToCompletion().isOk());
  // Only the admitted deadline-carrying request is SLO-scored.
  const TenantStats stats = service.tenantStats("a");
  EXPECT_EQ(stats.completed, 2u);
  EXPECT_EQ(stats.deadlineHit + stats.deadlineMiss, 1u);
}

TEST(ServiceSloTest, RetirementScoresHitAndMiss) {
  hostrt::DeviceManager mgr({ArchSpec::testTiny()});
  LaunchService service(mgr);
  ASSERT_TRUE(service.registerTenant(tenant("a")).isOk());
  // Generous budget: a hit. Budget of exactly the admission threshold:
  // admission passes (256 <= 257 never shed at depth 0) but the final
  // modeled latency adds the kernel's own cycles, so it must miss.
  ASSERT_TRUE(service.submit("a", tinyConfig(), nop(), fp(0),
                             /*deadlineCycles=*/1u << 30)
                  .isOk());
  ASSERT_TRUE(service.runToCompletion().isOk());
  ASSERT_TRUE(service.submit("a", tinyConfig(), nop(), fp(1),
                             /*deadlineCycles=*/kDispatchCycles + 1)
                  .isOk());
  ASSERT_TRUE(service.runToCompletion().isOk());
  const TenantStats stats = service.tenantStats("a");
  EXPECT_EQ(stats.completed, 2u);
  EXPECT_EQ(stats.deadlineHit, 1u);
  EXPECT_EQ(stats.deadlineMiss, 1u);
  const RequestOutcome hit = service.outcome(0);
  EXPECT_LE(hit.modeledLatencyCycles, hit.deadlineCycles);
  const RequestOutcome miss = service.outcome(1);
  EXPECT_GT(miss.modeledLatencyCycles, miss.deadlineCycles);
}

TEST(ServiceSloTest, RetryBudgetZeroFailsOnFirstLoss) {
  hostrt::DeviceManager mgr({ArchSpec::testTiny(), ArchSpec::testTiny()});
  LaunchService service(mgr);
  TenantSpec spec = tenant("a");
  spec.maxRetries = 0;  // fail on the first loss, never migrate
  ASSERT_TRUE(service.registerTenant(spec).isOk());
  omprt::TargetConfig faulted = tinyConfig();
  faulted.fault.spec = "device_lost_post:count=1";
  ASSERT_TRUE(service.submit("a", faulted, nop(), "k").isOk());
  ASSERT_TRUE(service.runToCompletion().isOk());
  const RequestOutcome out = service.outcome(0);
  EXPECT_EQ(out.state, RequestState::kFailed);
  EXPECT_EQ(out.status.code(), StatusCode::kUnavailable);
  EXPECT_FALSE(out.migrated);
  const TenantStats stats = service.tenantStats("a");
  EXPECT_EQ(stats.failed, 1u);
  EXPECT_EQ(stats.retriesExhausted, 1u);
  EXPECT_EQ(stats.migrated, 0u);
  EXPECT_EQ(stats.retryBackoffCycles, 0u);
}

TEST(ServiceSloTest, RetryHopChargesModeledBackoff) {
  hostrt::DeviceManager mgr({ArchSpec::testTiny(), ArchSpec::testTiny()});
  LaunchService service(mgr);
  ASSERT_TRUE(service.registerTenant(tenant("a")).isOk());
  omprt::TargetConfig faulted = tinyConfig();
  faulted.fault.spec = "device_lost_post:count=1";
  ASSERT_TRUE(service.submit("a", faulted, nop(), "k").isOk());
  ASSERT_TRUE(service.runToCompletion().isOk());
  const RequestOutcome out = service.outcome(0);
  EXPECT_EQ(out.state, RequestState::kDone);
  EXPECT_TRUE(out.migrated);
  EXPECT_EQ(out.retries, 1u);
  // Hop 1 is charged exactly base<<0 capped backoff plus a dispatch —
  // modeled, so the total is machine-independent.
  const uint64_t expected = simfault::cappedExponentialBackoff(
      kRetryBackoffBaseCycles, kRetryBackoffCapCycles, 1);
  EXPECT_EQ(service.tenantStats("a").retryBackoffCycles, expected);
  EXPECT_GE(out.modeledLatencyCycles,
            2 * kDispatchCycles + expected);  // two dispatches + backoff
}

TEST(ServiceSloTest, BreakerWalksOpenHalfOpenClosed) {
  hostrt::DeviceManager mgr({ArchSpec::testTiny(), ArchSpec::testTiny()});
  ServiceConfig config;
  config.breaker.tripThreshold = 1;
  config.breaker.cooldownEpochs = 2;
  LaunchService service(mgr, config);
  ASSERT_TRUE(service.registerTenant(tenant("a")).isOk());
  omprt::TargetConfig faulted = tinyConfig();
  faulted.fault.spec = "device_lost_post:count=1";
  ASSERT_TRUE(service.submit("a", faulted, nop(), "k").isOk());
  ASSERT_TRUE(service.runToCompletion().isOk());

  size_t tripped = mgr.numDevices();
  for (size_t d = 0; d < mgr.numDevices(); ++d) {
    if (!service.deviceServing(d)) tripped = d;
  }
  ASSERT_NE(tripped, mgr.numDevices());
  EXPECT_EQ(service.breakerState(tripped), simfault::BreakerState::kOpen);
  EXPECT_EQ(service.breakerTrips(tripped), 1u);
  EXPECT_EQ(service.breakerOpens(tripped), 1u);
  EXPECT_TRUE(mgr.isQuarantined(tripped));

  // Empty drains tick the logical epoch clock; after the cool-down the
  // breaker goes half-open and the device rejoins as a probe.
  while (service.breakerState(tripped) == simfault::BreakerState::kOpen) {
    ASSERT_TRUE(service.drain().isOk());
    ASSERT_LE(service.epoch(), 8u) << "cool-down never elapsed";
  }
  EXPECT_EQ(service.breakerState(tripped), simfault::BreakerState::kHalfOpen);
  EXPECT_TRUE(service.deviceServing(tripped));
  EXPECT_FALSE(mgr.isQuarantined(tripped));

  // Probe traffic: the first clean retirement from the device closes
  // the breaker. Fan requests over both devices (distinct fingerprints
  // hash to distinct shards) so one lands on the probe.
  for (uint64_t i = 0; i < 8; ++i) {
    ASSERT_TRUE(service.submit("a", tinyConfig(), nop(), fp(i)).isOk());
  }
  ASSERT_TRUE(service.runToCompletion().isOk());
  EXPECT_EQ(service.breakerState(tripped), simfault::BreakerState::kClosed);
  // 8 probes plus the faulted request, which migrated and completed.
  EXPECT_EQ(service.tenantStats("a").completed, 9u);
}

TEST(ServiceSloTest, ReviveDuringHalfOpenProbeIsSafe) {
  hostrt::DeviceManager mgr({ArchSpec::testTiny(), ArchSpec::testTiny()});
  ServiceConfig config;
  config.breaker.tripThreshold = 1;
  config.breaker.cooldownEpochs = 1;
  LaunchService service(mgr, config);
  ASSERT_TRUE(service.registerTenant(tenant("a")).isOk());
  omprt::TargetConfig faulted = tinyConfig();
  faulted.fault.spec = "device_lost_post:count=1";
  ASSERT_TRUE(service.submit("a", faulted, nop(), "k").isOk());
  ASSERT_TRUE(service.runToCompletion().isOk());
  // cooldownEpochs=1: the drain that observed the trip already ticks
  // the clock past the cool-down, so the breaker is half-open now.
  size_t tripped = 0;
  for (size_t d = 0; d < mgr.numDevices(); ++d) {
    if (service.breakerState(d) != simfault::BreakerState::kClosed) {
      tripped = d;
    }
  }
  ASSERT_EQ(service.breakerState(tripped),
            simfault::BreakerState::kHalfOpen);

  // Race a manual revival against the serving loop while probe traffic
  // is in flight. reviveDevice force-closes under the service lock, so
  // whichever of (probe success, revival) lands first, the breaker
  // must end closed with every request definite.
  for (uint64_t i = 0; i < 8; ++i) {
    ASSERT_TRUE(service.submit("a", tinyConfig(), nop(), fp(i)).isOk());
  }
  service.pump();
  std::thread reviver([&service, tripped] {
    service.reviveDevice(tripped);
  });
  ASSERT_TRUE(service.drain().isOk());
  reviver.join();
  ASSERT_TRUE(service.runToCompletion().isOk());
  EXPECT_EQ(service.breakerState(tripped), simfault::BreakerState::kClosed);
  EXPECT_TRUE(service.deviceServing(tripped));
  const TenantStats stats = service.tenantStats("a");
  EXPECT_EQ(stats.completed + stats.failed, stats.accepted);
  EXPECT_EQ(stats.completed, 9u);
  EXPECT_EQ(service.dispatchedOutstanding(), 0u);
}

TEST(ServiceSloTest, BrownoutShedsLowestPriorityAndDisablesBatching) {
  hostrt::DeviceManager mgr({ArchSpec::testTiny()});
  ServiceConfig config;
  config.maxQueued = 64;
  config.brownoutHighWater = 4;
  LaunchService service(mgr, config);
  ASSERT_TRUE(service.registerTenant(tenant("lo", /*priority=*/1)).isOk());
  ASSERT_TRUE(service.registerTenant(tenant("hi", /*priority=*/2)).isOk());
  for (uint64_t i = 0; i < 4; ++i) {
    ASSERT_TRUE(service.submit("hi", tinyConfig(), nop(), "k").isOk());
  }
  EXPECT_TRUE(service.brownoutActive());
  // At the high-water mark the lowest registered priority is shed;
  // higher classes are still admitted (the hard bound is far away).
  const auto lo = service.submit("lo", tinyConfig(), nop(), "k");
  ASSERT_FALSE(lo.isOk());
  EXPECT_EQ(lo.status().code(), StatusCode::kResourceExhausted);
  EXPECT_EQ(service.tenantStats("lo").brownoutShed, 1u);
  EXPECT_EQ(service.tenantStats("lo").shed, 1u);
  ASSERT_TRUE(service.submit("hi", tinyConfig(), nop(), "k").isOk());
  // Brownout also suppresses same-kernel batching while the queue sits
  // at/past the mark, re-checked per batch leader — so of five
  // same-fingerprint requests, the first dispatches as a singleton
  // (queue still at the mark afterwards) and batching resumes once the
  // pump works the queue below it.
  EXPECT_EQ(service.pump(), 5u);
  ASSERT_TRUE(service.drain().isOk());
  EXPECT_FALSE(service.outcome(0).batchFollower);
  EXPECT_EQ(service.batchesDispatched(), 2u);
  EXPECT_EQ(service.tenantStats("hi").batchFollowers, 3u);
  EXPECT_EQ(service.amortizedResolutions(), 3u);
  EXPECT_FALSE(service.brownoutActive());
  // Below the mark from the start, the same burst is one full batch.
  for (uint64_t i = 0; i < 3; ++i) {
    ASSERT_TRUE(service.submit("hi", tinyConfig(), nop(), "k").isOk());
  }
  EXPECT_EQ(service.pump(), 3u);
  ASSERT_TRUE(service.drain().isOk());
  EXPECT_EQ(service.batchesDispatched(), 3u);
  EXPECT_EQ(service.tenantStats("hi").batchFollowers, 5u);
}

TEST(ServiceSloTest, MaxInFlightOneDispatchesOnePerWave) {
  hostrt::DeviceManager mgr({ArchSpec::testTiny()});
  LaunchService service(mgr);
  ASSERT_TRUE(
      service.registerTenant(tenant("a", 1, /*in_flight=*/1)).isOk());
  for (uint64_t i = 0; i < 3; ++i) {
    ASSERT_TRUE(service.submit("a", tinyConfig(), nop(), fp(i)).isOk());
  }
  // The dispatch budget resets only at drain, so each wave moves
  // exactly one request and a second pump in the same wave moves none.
  for (uint64_t wave = 0; wave < 3; ++wave) {
    EXPECT_EQ(service.pump(), 1u) << wave;
    EXPECT_EQ(service.pump(), 0u) << wave;
    ASSERT_TRUE(service.drain().isOk());
  }
  EXPECT_EQ(service.queuedRequests(), 0u);
  const std::vector<uint64_t> expected = {0, 1, 2};
  EXPECT_EQ(service.dispatchOrder(), expected);
  EXPECT_EQ(service.tenantStats("a").completed, 3u);
}

TEST(ServiceSloTest, MaxQueuedOneShedsSecondArrival) {
  hostrt::DeviceManager mgr({ArchSpec::testTiny()});
  LaunchService service(mgr);
  ASSERT_TRUE(service.registerTenant(tenant("a", 1, 64, /*queued=*/1)).isOk());
  ASSERT_TRUE(service.submit("a", tinyConfig(), nop(), fp(0)).isOk());
  const auto second = service.submit("a", tinyConfig(), nop(), fp(1));
  ASSERT_FALSE(second.isOk());
  EXPECT_EQ(second.status().code(), StatusCode::kResourceExhausted);
  // The slot frees at dispatch (queued -> dispatched), not at drain.
  EXPECT_EQ(service.pump(), 1u);
  ASSERT_TRUE(service.submit("a", tinyConfig(), nop(), fp(2)).isOk());
  ASSERT_TRUE(service.runToCompletion().isOk());
  const TenantStats stats = service.tenantStats("a");
  EXPECT_EQ(stats.submitted, 3u);
  EXPECT_EQ(stats.accepted, 2u);
  EXPECT_EQ(stats.shed, 1u);
  EXPECT_EQ(stats.completed, 2u);
}

}  // namespace
}  // namespace simtomp::simserve
