#include "hostrt/device_manager.h"

namespace simtomp::hostrt {

DeviceManager::DeviceManager(std::vector<gpusim::ArchSpec> specs,
                             gpusim::CostModel cost,
                             TransferModel transfer_model) {
  SIMTOMP_CHECK(!specs.empty(), "DeviceManager needs at least one device");
  devices_.reserve(specs.size());
  for (auto& spec : specs) {
    devices_.push_back(
        std::make_unique<gpusim::Device>(std::move(spec), cost));
  }
  envs_.reserve(devices_.size());
  queues_.reserve(devices_.size());
  for (auto& dev : devices_) {
    envs_.push_back(std::make_unique<DataEnvironment>(*dev, transfer_model));
    queues_.push_back(std::make_unique<TargetTaskQueue>(*dev));
  }
}

Result<gpusim::KernelStats> DeviceManager::launchOn(
    size_t n, const omprt::TargetConfig& config,
    const omprt::TargetRegionFn& region) {
  if (n >= devices_.size()) {
    return Status::invalidArgument("device number out of range");
  }
  omprt::TargetConfig effective = config;
  if (effective.hostWorkers == 0) effective.hostWorkers = default_host_workers_;
  if (effective.check.mode == simcheck::CheckMode::kAuto) {
    effective.check = default_check_;
  }
  return omprt::launchTarget(*devices_[n], effective, region);
}

std::future<Result<gpusim::KernelStats>> DeviceManager::launchOnAsync(
    size_t n, omprt::TargetConfig config, omprt::TargetRegionFn region) {
  SIMTOMP_CHECK(n < devices_.size(), "device number out of range");
  if (config.hostWorkers == 0) config.hostWorkers = default_host_workers_;
  if (config.check.mode == simcheck::CheckMode::kAuto) {
    config.check = default_check_;
  }
  return queues_[n]->enqueue(config, std::move(region));
}

void DeviceManager::drainAll() {
  for (auto& queue : queues_) queue->drain();
}

}  // namespace simtomp::hostrt
