// Multi-device host runtime: the `device(n)` clause machinery.
//
// OpenMP offloading addresses devices by number (omp_get_num_devices,
// `#pragma omp target device(n)`); a DeviceManager owns a set of
// simulated devices — possibly with different architectures, as in a
// mixed NVIDIA/AMD node — each with its own data environment and task
// queue.
#pragma once

#include <atomic>
#include <memory>
#include <shared_mutex>
#include <vector>

#include "gpusim/device.h"
#include "hostrt/async.h"
#include "hostrt/data_env.h"
#include "omprt/target.h"
#include "simfault/resilience.h"
#include "simtune/tuner.h"
#include "support/status.h"

namespace simtomp::hostrt {

class DeviceManager {
 public:
  /// One simulated device per ArchSpec.
  explicit DeviceManager(std::vector<gpusim::ArchSpec> specs,
                         gpusim::CostModel cost = {},
                         TransferModel transfer_model = {});

  DeviceManager(const DeviceManager&) = delete;
  DeviceManager& operator=(const DeviceManager&) = delete;

  /// omp_get_num_devices()
  [[nodiscard]] size_t numDevices() const { return devices_.size(); }

  [[nodiscard]] gpusim::Device& device(size_t n) { return *devices_.at(n); }
  [[nodiscard]] DataEnvironment& dataEnv(size_t n) { return *envs_.at(n); }
  [[nodiscard]] TargetTaskQueue& taskQueue(size_t n) { return *queues_.at(n); }

  // The setDefault* family may be called while launches are running on
  // other threads (simserve reconfigures the manager it fronts), so the
  // default fields are guarded by a shared_mutex: launches read them
  // under a shared lock, setters write under an exclusive one, and the
  // getters return copies taken under the shared lock.

  /// Default hostWorkers applied to launches whose config leaves it 0
  /// (auto). All devices share the process-wide BlockExecutor pool, so
  /// concurrent `device(n)` launches (sync from different host threads,
  /// or nowait tasks from the per-device helper threads) interleave
  /// their blocks over the same workers instead of serializing.
  void setDefaultHostWorkers(uint32_t workers) {
    std::unique_lock lock(defaults_mutex_);
    default_host_workers_ = workers;
  }
  [[nodiscard]] uint32_t defaultHostWorkers() const {
    std::shared_lock lock(defaults_mutex_);
    return default_host_workers_;
  }

  /// Default simcheck config applied to launches whose config leaves
  /// the mode kAuto (mirrors setDefaultHostWorkers).
  void setDefaultCheck(simcheck::CheckConfig check) {
    std::unique_lock lock(defaults_mutex_);
    default_check_ = check;
  }
  [[nodiscard]] simcheck::CheckConfig defaultCheck() const {
    std::shared_lock lock(defaults_mutex_);
    return default_check_;
  }

  /// Default simprof config applied to launches whose config leaves the
  /// mode kAuto (mirrors setDefaultCheck). An unset default stays
  /// kAuto, so SIMTOMP_PROF still decides per launch.
  void setDefaultProfile(simprof::ProfileConfig profile) {
    std::unique_lock lock(defaults_mutex_);
    default_profile_ = profile;
  }
  [[nodiscard]] simprof::ProfileConfig defaultProfile() const {
    std::shared_lock lock(defaults_mutex_);
    return default_profile_;
  }

  /// Default autotuner consulted by launches that carry a tune key and
  /// auto launch-shape fields (mirrors setDefaultHostWorkers /
  /// setDefaultCheck). `mode` kAuto defers to the SIMTOMP_TUNE env var
  /// on every launch; an explicit mode pins tuning on or off. When no
  /// tuner was set but the resolved mode enables tuning, a default
  /// tuner (cache path from SIMTOMP_TUNE_CACHE) is created lazily on
  /// first use, so `SIMTOMP_TUNE=1` works with zero code changes.
  void setDefaultTuner(std::shared_ptr<simtune::Tuner> tuner,
                       simtune::TuneMode mode = simtune::TuneMode::kAuto) {
    std::unique_lock lock(defaults_mutex_);
    default_tuner_ = std::move(tuner);
    default_tune_mode_ = mode;
  }
  [[nodiscard]] std::shared_ptr<simtune::Tuner> defaultTuner() const {
    std::shared_lock lock(defaults_mutex_);
    return default_tuner_;
  }
  [[nodiscard]] simtune::TuneMode defaultTuneMode() const {
    std::shared_lock lock(defaults_mutex_);
    return default_tune_mode_;
  }

  /// Resilience policy driving the synchronous launch path (mirrors
  /// setDefaultCheck / setDefaultTuner). `mode` kAuto defers to the
  /// SIMTOMP_RESILIENCE env var on every launch (default: on). When the
  /// resolved mode is on, launchOn runs the graceful-degradation chain
  /// — retry with capped (modeled) backoff for transient UNAVAILABLE
  /// faults, SIMD -> generic mode fallback, host-serial reference — and
  /// publishes a ResilienceReport. Deferred launches (launchOnAsync)
  /// never run the chain: a retry would reorder against queued work.
  void setDefaultResilience(
      simfault::ResiliencePolicy policy,
      simfault::ResilienceMode mode = simfault::ResilienceMode::kAuto) {
    std::unique_lock lock(defaults_mutex_);
    default_resilience_ = policy;
    resilience_mode_ = mode;
  }
  [[nodiscard]] simfault::ResiliencePolicy defaultResiliencePolicy() const {
    std::shared_lock lock(defaults_mutex_);
    return default_resilience_;
  }
  [[nodiscard]] simfault::ResilienceMode defaultResilienceMode() const {
    std::shared_lock lock(defaults_mutex_);
    return resilience_mode_;
  }

  /// Health of device n per the recovery state machine: healthy until a
  /// launch attempt fails (faulted), reset by resetDevice or the chain,
  /// healthy again after the next successful launch. A quarantined
  /// device reports kQuarantined regardless of the underlying machine
  /// state (the quarantine flag overlays it; see setQuarantined).
  [[nodiscard]] simfault::DeviceHealth deviceHealth(size_t n) const {
    if (isQuarantined(n)) return simfault::DeviceHealth::kQuarantined;
    return health_.at(n);
  }

  /// Quarantine (or release) device n — the circuit-breaker hook. A
  /// quarantined device fast-fails every launchOn/launchOnAsync with
  /// UNAVAILABLE instead of running work; schedulers above (simserve)
  /// also drop it from their shard maps. The flag is an atomic overlay
  /// on the health machine, so flipping it is safe while launches run
  /// on other threads and never perturbs the underlying health state.
  void setQuarantined(size_t n, bool quarantined) {
    SIMTOMP_CHECK(n < devices_.size(), "device number out of range");
    quarantined_[n].store(quarantined, std::memory_order_release);
  }
  [[nodiscard]] bool isQuarantined(size_t n) const {
    SIMTOMP_CHECK(n < devices_.size(), "device number out of range");
    return quarantined_[n].load(std::memory_order_acquire);
  }

  /// What the last resilient launch on device n did, published like
  /// Device::lastCheckReport(): also (especially) when the launch
  /// failed, and surviving any device resets the chain performed.
  [[nodiscard]] const simfault::ResilienceReport& lastResilienceReport(
      size_t n) const {
    return last_resilience_.at(n);
  }

  /// Reset device n (health: kReset). Keeps the device's
  /// lastCheckReport and the manager's lastResilienceReport.
  void resetDevice(size_t n) {
    devices_.at(n)->reset();
    health_.at(n) = simfault::DeviceHealth::kReset;
  }

  /// The configuration launchOn(n, config, ...) would actually launch
  /// with: manager defaults (hostWorkers, check) applied, tuner cache
  /// consulted (never trials) and the remaining auto fields resolved
  /// heuristically. Exposed so tests and `simtomp_info --tune` can
  /// observe default-plumbing precedence without launching anything.
  [[nodiscard]] omprt::TargetConfig effectiveConfig(size_t n,
                                                    omprt::TargetConfig config);

  /// `#pragma omp target device(n)` — synchronous launch.
  Result<gpusim::KernelStats> launchOn(size_t n,
                                       const omprt::TargetConfig& config,
                                       const omprt::TargetRegionFn& region);

  /// `#pragma omp target device(n) nowait` — deferred launch.
  std::future<Result<gpusim::KernelStats>> launchOnAsync(
      size_t n, omprt::TargetConfig config, omprt::TargetRegionFn region);

  /// Wait for all deferred work on every device (`taskwait`).
  void drainAll();

 private:
  /// Apply manager defaults to a launch config (hostWorkers, check).
  void applyDefaults(omprt::TargetConfig& config) const;
  /// Tuner-aware resolution of auto launch-shape fields. Cache-only
  /// unless `device` is non-null and the effective mode is kTune, in
  /// which case a cache miss runs a trial search on that device (so
  /// only the synchronous launch path passes a device). Returns a
  /// non-ok status only when a trial search itself failed.
  Status resolveTuning(size_t n, omprt::TargetConfig& config,
                       gpusim::Device* device,
                       const omprt::TargetRegionFn* region);
  /// The graceful-degradation chain behind launchOn. Every step is
  /// deterministic: backoff delays are modeled (recorded, never slept),
  /// shape strings exclude hostWorkers, and attempts are recorded in
  /// order — so reports are byte-identical for any worker count.
  Result<gpusim::KernelStats> launchResilient(
      size_t n, omprt::TargetConfig config,
      const omprt::TargetRegionFn& region);

  std::vector<std::unique_ptr<gpusim::Device>> devices_;
  std::vector<std::unique_ptr<DataEnvironment>> envs_;
  std::vector<std::unique_ptr<TargetTaskQueue>> queues_;
  /// Guards every default_* field (and resilience_mode_) below: shared
  /// on the launch paths, exclusive in the setters.
  mutable std::shared_mutex defaults_mutex_;
  uint32_t default_host_workers_ = 0;  ///< 0 = auto (env / hardware)
  simcheck::CheckConfig default_check_{};  ///< kAuto = env / off
  simprof::ProfileConfig default_profile_{};  ///< kAuto = env / off
  std::shared_ptr<simtune::Tuner> default_tuner_;  ///< may be lazily created
  simtune::TuneMode default_tune_mode_ = simtune::TuneMode::kAuto;
  simfault::ResiliencePolicy default_resilience_{};
  simfault::ResilienceMode resilience_mode_ = simfault::ResilienceMode::kAuto;
  std::vector<simfault::DeviceHealth> health_;
  /// Circuit-breaker quarantine overlay (atomic: flipped by a service
  /// thread while launch threads read it).
  std::unique_ptr<std::atomic<bool>[]> quarantined_;
  std::vector<simfault::ResilienceReport> last_resilience_;
};

}  // namespace simtomp::hostrt
