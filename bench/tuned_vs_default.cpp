// tuned_vs_default: what does autotuning buy over the paper's
// hand-picked per-benchmark configurations?
//
// For every tunable app the series baseline is the stock hand-picked
// launch shape (TunableApp::handPicked — the paper's choice), and the
// rows are the winners of an exhaustive and a budgeted hill-climb
// search over the app's launch space. Because the hand-picked
// configuration is itself a member of the search space, the exhaustive
// winner can never be worse than the baseline — the bench aborts if it
// is, making this a standing regression guard on the tuner.
//
// Results mirror into BENCH_tuning.json for machine tracking.
#include <cstring>

#include "apps/tunable.h"
#include "bench_common.h"
#include "gpusim/arch.h"
#include "gpusim/cost_model.h"
#include "gpusim/device.h"
#include "simtune/tuner.h"

using namespace simtomp;

namespace {

constexpr size_t kScratchBytes = 64ull * 1024 * 1024;

uint64_t runCandidate(const apps::TunableApp& app,
                      const gpusim::ArchSpec& arch,
                      const gpusim::CostModel& cost,
                      const simtune::TuneCandidate& candidate) {
  gpusim::Device device(arch, cost, kScratchBytes);
  const auto stats = bench::checkOk(
      app.trial(device, candidate, simcheck::CheckConfig{}),
      app.name.c_str());
  return stats.cycles;
}

simtune::TunedShape tuneApp(const apps::TunableApp& app,
                            const gpusim::ArchSpec& arch,
                            const gpusim::CostModel& cost,
                            simtune::TuneStrategy strategy,
                            uint32_t maxTrials) {
  // Fresh in-memory cache per search so both strategies really run.
  simtune::Tuner tuner(std::make_shared<simtune::TuneCache>());
  simtune::TuneRequest request;
  request.strategy = strategy;
  request.maxTrials = maxTrials;
  request.tripCount = app.tripCount;
  request.scratchMemBytes = kScratchBytes;
  const auto outcome = bench::checkOk(
      tuner.tune(app.name, arch, cost, app.axes, app.trial, request),
      app.name.c_str());
  return outcome.shape;
}

}  // namespace

int main(int argc, char** argv) {
  bool small = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--small") == 0) small = true;
  }

  const gpusim::ArchSpec arch = gpusim::ArchSpec::nvidiaA100();
  const gpusim::CostModel cost{};

  for (const apps::TunableApp& app : apps::tunableCorpus(arch, small)) {
    const uint64_t default_cycles =
        runCandidate(app, arch, cost, app.handPicked);

    const simtune::TunedShape exhaustive =
        tuneApp(app, arch, cost, simtune::TuneStrategy::kExhaustive, 0);
    const simtune::TunedShape hill = tuneApp(
        app, arch, cost, simtune::TuneStrategy::kHillClimb, /*maxTrials=*/64);

    if (exhaustive.cycles > default_cycles) {
      std::fprintf(stderr,
                   "FATAL: %s exhaustive winner (%llu cycles) is worse than "
                   "the hand-picked default (%llu)\n",
                   app.name.c_str(),
                   static_cast<unsigned long long>(exhaustive.cycles),
                   static_cast<unsigned long long>(default_cycles));
      std::abort();
    }

    const auto speedup = [default_cycles](uint64_t cycles) {
      return static_cast<double>(default_cycles) /
             static_cast<double>(cycles);
    };
    bench::printTable(
        (app.name + ": tuned vs hand-picked").c_str(), "hand-picked default",
        default_cycles,
        {{"tuned (exhaustive): " + exhaustive.toString(), exhaustive.cycles,
          speedup(exhaustive.cycles)},
         {"tuned (hill-climb): " + hill.toString(), hill.cycles,
          speedup(hill.cycles)}});
  }

  const Status written = bench::writeBenchJson("tuning");
  if (!written.isOk()) {
    std::fprintf(stderr, "FATAL: %s\n", written.toString().c_str());
    return 1;
  }
  return 0;
}
