#include "simprof/recorder.h"

namespace simtomp::simprof {

bool FlightRecorder::record(uint64_t tick, std::string category,
                            std::string detail, std::string physicalDetail) {
  FlightEvent event;
  event.seq = recorded_++;
  event.tick = tick;
  event.category = std::move(category);
  event.detail = std::move(detail);
  event.physicalDetail = std::move(physicalDetail);
  events_.push_back(std::move(event));
  if (events_.size() > capacity_) {
    events_.pop_front();
    return true;
  }
  return false;
}

void FlightRecorder::dump(std::ostream& out, bool physical) const {
  for (const FlightEvent& e : events_) {
    out << "seq=" << e.seq << " tick=" << e.tick << " " << e.category;
    if (!e.detail.empty()) out << " " << e.detail;
    if (physical && !e.physicalDetail.empty()) out << " " << e.physicalDetail;
    out << "\n";
  }
}

void FlightRecorder::clear() {
  events_.clear();
  recorded_ = 0;
}

}  // namespace simtomp::simprof
