#include "simserve/service.h"

#include <algorithm>
#include <cinttypes>
#include <cmath>
#include <cstdio>
#include <limits>

#include "simprof/metrics.h"

namespace simtomp::simserve {

namespace {

constexpr size_t kNpos = std::numeric_limits<size_t>::max();

}  // namespace

std::string_view requestStateName(RequestState state) {
  switch (state) {
    case RequestState::kQueued: return "queued";
    case RequestState::kShed: return "shed";
    case RequestState::kDispatched: return "dispatched";
    case RequestState::kDone: return "done";
    case RequestState::kFailed: return "failed";
  }
  return "unknown";
}

uint64_t fingerprintHash(std::string_view fingerprint) {
  uint64_t hash = 0xcbf29ce484222325ULL;
  for (const char c : fingerprint) {
    hash ^= static_cast<uint8_t>(c);
    hash *= 0x100000001b3ULL;
  }
  return hash;
}

std::string TenantStats::toString() const {
  char buf[640];
  std::snprintf(buf, sizeof(buf),
                "submitted=%" PRIu64 " accepted=%" PRIu64 " shed=%" PRIu64
                " evicted=%" PRIu64 " brownout_shed=%" PRIu64
                " deadline_shed=%" PRIu64 " completed=%" PRIu64
                " failed=%" PRIu64 " migrated=%" PRIu64
                " batch_followers=%" PRIu64 " deadline_hit=%" PRIu64
                " deadline_miss=%" PRIu64 " retries_exhausted=%" PRIu64
                " retry_backoff_cycles=%" PRIu64 " breaker_trips=%" PRIu64,
                submitted, accepted, shed, evicted, brownoutShed,
                deadlineShed, completed, failed, migrated, batchFollowers,
                deadlineHit, deadlineMiss, retriesExhausted,
                retryBackoffCycles, breakerTrips);
  return std::string(buf) + " latency " + latency.toString();
}

LaunchService::LaunchService(hostrt::DeviceManager& manager,
                             ServiceConfig config)
    : mgr_(&manager), config_(config) {
  if (config_.shardCount == 0) {
    config_.shardCount = static_cast<uint32_t>(mgr_->numDevices());
  }
  if (config_.maxBatch == 0) config_.maxBatch = 1;
  if (config_.brownoutHighWater == 0) {
    config_.brownoutHighWater = (config_.maxQueued * 3) / 4;
  }
  shardDevice_.assign(config_.shardCount, 0);
  deviceServing_.assign(mgr_->numDevices(), true);
  breakers_.assign(mgr_->numDevices(),
                   simfault::CircuitBreaker(config_.breaker));
  probing_.assign(mgr_->numDevices(), false);
  if (config_.trace.enabled) {
    tracer_ = std::make_unique<ServiceTracer>(config_.trace);
  }
  rebuildShardMapLocked();
}

Status LaunchService::registerTenant(TenantSpec spec) {
  if (spec.name.empty()) {
    return Status::invalidArgument("tenant name must not be empty");
  }
  if (spec.priority == 0) {
    return Status::invalidArgument("tenant priority must be >= 1");
  }
  std::lock_guard<std::mutex> lock(mu_);
  if (tenantByName_.count(spec.name) != 0) {
    return Status::invalidArgument("tenant already registered: " + spec.name);
  }
  const auto id = static_cast<uint32_t>(tenants_.size());
  minPriority_ = std::min(minPriority_, spec.priority);
  tenantByName_.emplace(spec.name, id);
  tenants_.push_back(Tenant{std::move(spec), {}, 0, 0});
  return Status::ok();
}

Result<uint64_t> LaunchService::submit(std::string_view tenant,
                                       omprt::TargetConfig config,
                                       omprt::TargetRegionFn region,
                                       std::string fingerprint,
                                       uint64_t deadlineCycles) {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = tenantByName_.find(tenant);
  if (it == tenantByName_.end()) {
    return Status::invalidArgument("unknown tenant: " + std::string(tenant));
  }
  Tenant& t = tenants_[it->second];
  auto& metrics = simprof::MetricsRegistry::global();
  ++t.stats.submitted;
  metrics.add(simprof::metric::kServeRequestsTotal);

  // Admission control. Every decision below reads logical state only,
  // so the same submission sequence sheds the same requests for any
  // worker count or shard count.
  if (t.spec.maxQueued == 0 || t.spec.maxInFlight == 0) {
    ++t.stats.shed;
    metrics.add(simprof::metric::kServeShedTotal);
    if (tracer_) {
      tracer_->noteShedAtSubmit(t.spec.name, "suspended", false);
    }
    return Status::resourceExhausted("tenant '" + t.spec.name +
                                     "' is suspended (zero quota)");
  }
  // Deadline admission: if the modeled cost of just reaching a device
  // (everything queued ahead plus one dispatch) already blows the
  // budget, shed now instead of wasting the dispatch. A zero budget
  // can never be met (dispatch alone costs kDispatchCycles).
  const uint64_t deadline = deadlineCycles == kInheritDeadline
                                ? t.spec.deadlineCycles
                                : deadlineCycles;
  if (deadline != kNoDeadline) {
    const uint64_t ahead_cost =
        queuedCount_ * kQueueSlotCycles + kDispatchCycles;
    if (ahead_cost > deadline) {
      ++t.stats.deadlineShed;
      metrics.add(simprof::metric::kServeDeadlineShedTotal);
      if (tracer_) {
        tracer_->noteShedAtSubmit(t.spec.name, "deadline", true);
      }
      return Status::deadlineExceeded(
          "tenant '" + t.spec.name + "' deadline budget " +
          std::to_string(deadline) + " < modeled queue-ahead cost " +
          std::to_string(ahead_cost));
    }
  }
  if (t.queued >= t.spec.maxQueued) {
    ++t.stats.shed;
    metrics.add(simprof::metric::kServeShedTotal);
    if (tracer_) {
      tracer_->noteShedAtSubmit(t.spec.name, "tenant_quota", false);
    }
    return Status::resourceExhausted("tenant '" + t.spec.name +
                                     "' queue quota exceeded");
  }
  // Brownout: past the high-water mark, lowest-priority arrivals are
  // shed outright — graceful degradation ahead of the hard bound.
  if (brownoutActiveLocked() && t.spec.priority <= minPriority_) {
    ++t.stats.shed;
    ++t.stats.brownoutShed;
    metrics.add(simprof::metric::kServeShedTotal);
    metrics.add(simprof::metric::kServeBrownoutShedTotal);
    if (tracer_) {
      tracer_->noteShedAtSubmit(t.spec.name, "brownout", false);
    }
    return Status::resourceExhausted(
        "brownout: queue at " + std::to_string(queuedCount_) + " >= " +
        std::to_string(config_.brownoutHighWater) +
        "; lowest-priority arrival shed");
  }
  if (queuedCount_ >= config_.maxQueued) {
    // The global queue is full: RESOURCE_EXHAUSTED goes to the
    // lowest-priority newest request — the incoming one unless it
    // outranks the lowest queued priority class, in which case that
    // class's newest request is evicted to make room.
    auto lowest = classes_.rbegin();
    while (lowest != classes_.rend() && lowest->second.fifo.empty()) {
      ++lowest;
    }
    SIMTOMP_CHECK(lowest != classes_.rend(),
                  "full queue must have a nonempty priority class");
    if (t.spec.priority <= lowest->first) {
      ++t.stats.shed;
      metrics.add(simprof::metric::kServeShedTotal);
      if (tracer_) {
        tracer_->noteShedAtSubmit(t.spec.name, "queue_full", false);
      }
      return Status::resourceExhausted("service queue full (" +
                                       std::to_string(config_.maxQueued) +
                                       "); lowest-priority newest shed");
    }
    const uint64_t victim_id = lowest->second.fifo.back();
    lowest->second.fifo.pop_back();
    shedRequest(requests_[victim_id], /*evicted=*/true,
                "evicted by higher-priority arrival");
  }

  const uint64_t id = requests_.size();
  if (fingerprint.empty()) {
    if (!config.tuneKey.empty()) {
      fingerprint = config.tuneKey + "/t" + std::to_string(config.tripCount);
    } else {
      fingerprint = "anon/" + std::to_string(config.numTeams) + "x" +
                    std::to_string(config.threadsPerTeam) + "/s" +
                    std::to_string(config.simdlen) + "/t" +
                    std::to_string(config.tripCount);
    }
  }
  Request request;
  request.id = id;
  request.tenant = it->second;
  request.shard = static_cast<uint32_t>(fingerprintHash(fingerprint) %
                                        shardDevice_.size());
  request.fingerprint = std::move(fingerprint);
  request.config = std::move(config);
  request.region = std::move(region);
  request.aheadAtAdmission = queuedCount_;
  request.deadline = deadline;
  requests_.push_back(std::move(request));
  classes_[t.spec.priority].fifo.push_back(id);
  ++queuedCount_;
  ++t.queued;
  ++t.stats.accepted;
  metrics.add(simprof::metric::kServeAcceptedTotal);
  peakQueueDepth_ = std::max(peakQueueDepth_, queuedCount_);
  metrics.gaugeMax(simprof::metric::kServeQueueDepthPeak, peakQueueDepth_);
  if (tracer_) {
    const Request& admitted = requests_.back();
    tracer_->noteAdmitted(id, t.spec.name, admitted.fingerprint,
                          t.spec.priority, admitted.deadline,
                          admitted.aheadAtAdmission);
  }
  return id;
}

void LaunchService::shedRequest(Request& request, bool evicted,
                                std::string why) {
  request.state = RequestState::kShed;
  request.status = Status::resourceExhausted(std::move(why));
  Tenant& t = tenants_[request.tenant];
  ++t.stats.shed;
  if (evicted) ++t.stats.evicted;
  SIMTOMP_CHECK(queuedCount_ > 0 && t.queued > 0,
                "evicting a request that was not queued");
  --queuedCount_;
  --t.queued;
  auto& metrics = simprof::MetricsRegistry::global();
  metrics.add(simprof::metric::kServeShedTotal);
  if (tracer_ && evicted) tracer_->noteEvicted(request.id);
}

size_t LaunchService::firstEligible(const PriorityClass& cls) const {
  for (size_t pos = 0; pos < cls.fifo.size(); ++pos) {
    if (tenantHasBudget(tenants_[requests_[cls.fifo[pos]].tenant])) {
      return pos;
    }
  }
  return kNpos;
}

void LaunchService::dispatchLocked(Request& request, size_t device,
                                   const omprt::TargetConfig& resolved,
                                   bool batch_follower) {
  omprt::TargetConfig cfg = resolved;
  // Per-request knobs survive batch resolution: the fault plan and
  // watchdog budget belong to the request, not the kernel fingerprint.
  cfg.fault = request.config.fault;
  cfg.watchdogSteps = request.config.watchdogSteps;
  request.future = mgr_->taskQueue(device).enqueue(cfg, request.region);
  request.state = RequestState::kDispatched;
  request.device = static_cast<uint32_t>(device);
  request.batchFollower = batch_follower;
  request.modeledLatency =
      request.aheadAtAdmission * kQueueSlotCycles +
      (batch_follower ? kBatchFollowCycles : kDispatchCycles);
  Tenant& t = tenants_[request.tenant];
  SIMTOMP_CHECK(queuedCount_ > 0 && t.queued > 0,
                "dispatching a request that was not queued");
  --queuedCount_;
  --t.queued;
  ++t.dispatchedSinceDrain;
  if (batch_follower) ++t.stats.batchFollowers;
  ++dispatchedTotal_;
  dispatchOrder_.push_back(request.id);
  if (tracer_) {
    tracer_->noteDispatched(request.id, batch_follower,
                            request.aheadAtAdmission * kQueueSlotCycles,
                            request.device, request.shard);
  }
}

void LaunchService::notePumpWatermarksLocked() {
  peakInFlight_ = std::max(peakInFlight_, dispatchedTotal_ - retiredTotal_);
  simprof::MetricsRegistry::global().gaugeMax(
      simprof::metric::kServeInFlightPeak, peakInFlight_);
}

size_t LaunchService::pump() {
  std::lock_guard<std::mutex> lock(mu_);
  size_t dispatched = 0;
  const bool any_serving =
      std::any_of(deviceServing_.begin(), deviceServing_.end(),
                  [](bool serving) { return serving; });
  if (!any_serving) {
    notePumpWatermarksLocked();
    return 0;
  }
  auto& metrics = simprof::MetricsRegistry::global();
  for (;;) {
    // Pick the highest-priority class that has round credits and an
    // eligible request (one whose tenant still has dispatch budget).
    auto pick = classes_.end();
    size_t pick_pos = 0;
    bool any_eligible = false;
    for (auto it = classes_.begin(); it != classes_.end(); ++it) {
      PriorityClass& cls = it->second;
      if (cls.fifo.empty()) continue;
      const size_t pos = firstEligible(cls);
      if (pos == kNpos) continue;
      any_eligible = true;
      if (cls.credits > 0) {
        pick = it;
        pick_pos = pos;
        break;
      }
    }
    if (!any_eligible) break;
    if (pick == classes_.end()) {
      // Every eligible class exhausted its round: replenish credits
      // proportionally to priority — the "weighted" in the round robin.
      for (auto& [priority, cls] : classes_) {
        if (!cls.fifo.empty() && firstEligible(cls) != kNpos) {
          cls.credits = priority;
        }
      }
      continue;
    }

    PriorityClass& cls = pick->second;
    Request& leader = requests_[cls.fifo[pick_pos]];
    const size_t device = shardDevice_[leader.shard];
    // One effective-config resolution (manager defaults, tune cache,
    // auto shape) serves the whole batch — the amortization batching
    // exists for.
    const omprt::TargetConfig resolved =
        mgr_->effectiveConfig(device, leader.config);
    cls.fifo.erase(cls.fifo.begin() + static_cast<ptrdiff_t>(pick_pos));
    --cls.credits;
    dispatchLocked(leader, device, resolved, /*batch_follower=*/false);
    ++dispatched;
    // Followers ride the leader's credit: a batch is one dispatch plan,
    // so it costs one scheduling slot however many requests it carries.
    // Brownout disables coalescing — a batch is one failure domain, and
    // under pressure stranding many requests on one faulting dispatch
    // costs more than the amortized resolution saves. Re-evaluated per
    // leader, so batching resumes as the pump works the queue down.
    const uint32_t max_batch =
        brownoutActiveLocked() ? 1 : config_.maxBatch;
    uint32_t batch = 1;
    while (batch < max_batch && pick_pos < cls.fifo.size()) {
      Request& next = requests_[cls.fifo[pick_pos]];
      if (next.fingerprint != leader.fingerprint) break;
      if (!tenantHasBudget(tenants_[next.tenant])) break;
      cls.fifo.erase(cls.fifo.begin() + static_cast<ptrdiff_t>(pick_pos));
      dispatchLocked(next, device, resolved, /*batch_follower=*/true);
      ++batch;
      ++dispatched;
    }
    ++batches_;
    amortized_ += batch - 1;
    metrics.add(simprof::metric::kServeBatchesTotal);
    if (tracer_) tracer_->noteBatch(leader.fingerprint, batch);
  }
  notePumpWatermarksLocked();
  return dispatched;
}

Status LaunchService::drain() {
  for (;;) {
    std::vector<uint64_t> to_retire;
    {
      std::lock_guard<std::mutex> lock(mu_);
      to_retire.assign(
          dispatchOrder_.begin() + static_cast<ptrdiff_t>(retireCursor_),
          dispatchOrder_.end());
      retireCursor_ = dispatchOrder_.size();
    }
    if (to_retire.empty()) {
      std::lock_guard<std::mutex> lock(mu_);
      for (Tenant& t : tenants_) t.dispatchedSinceDrain = 0;
      // A completed drain is one tick of the logical clock the
      // breakers run on: cool-downs elapse here, and devices whose
      // breaker went half-open rejoin the shard map as probes.
      ++epoch_;
      advanceBreakersLocked();
      if (tracer_) tracer_->noteEpoch(epoch_);
      return Status::ok();
    }
    std::vector<uint64_t> migrate;
    for (const uint64_t id : to_retire) {
      Request* request = nullptr;
      {
        std::lock_guard<std::mutex> lock(mu_);
        request = &requests_[id];  // deque references are stable
      }
      // Blocking wait outside the service lock: submitters must stay
      // free while the device queues run down.
      const Result<gpusim::KernelStats> result = request->future.get();
      std::lock_guard<std::mutex> lock(mu_);
      auto& metrics = simprof::MetricsRegistry::global();
      Tenant& t = tenants_[request->tenant];
      if (result.isOk()) {
        request->cycles = result.value().cycles;
        request->modeledLatency += request->cycles;
        request->state = RequestState::kDone;
        ++t.stats.completed;
        t.stats.latency.observe(request->modeledLatency);
        metrics.observe(simprof::metric::kServeLatencyCycles,
                        request->modeledLatency);
        DeadlineVerdict verdict = DeadlineVerdict::kNone;
        if (request->deadline != kNoDeadline) {
          // SLO scoring: the final modeled latency against the budget.
          if (request->modeledLatency <= request->deadline) {
            verdict = DeadlineVerdict::kHit;
            ++t.stats.deadlineHit;
            metrics.add(simprof::metric::kServeDeadlineHitTotal);
          } else {
            verdict = DeadlineVerdict::kMiss;
            ++t.stats.deadlineMiss;
            metrics.add(simprof::metric::kServeDeadlineMissTotal);
          }
        }
        if (probing_[request->device]) {
          // First successful retirement from a half-open device closes
          // its breaker (the probe passed).
          breakers_[request->device].noteProbeSuccess();
          probing_[request->device] = false;
        }
        ++retiredTotal_;
        if (tracer_) {
          tracer_->noteRetired(request->id, /*ok=*/true, StatusCode::kOk,
                               request->modeledLatency, request->cycles,
                               verdict);
        }
      } else if (result.status().code() == StatusCode::kUnavailable) {
        // Device lost: quiesce it now; migration happens once this
        // wave's futures are all in, so ordering is preserved.
        deviceServing_[request->device] = false;
        migrate.push_back(id);
      } else {
        request->status = result.status();
        request->state = RequestState::kFailed;
        ++t.stats.failed;
        ++retiredTotal_;
        if (tracer_) {
          tracer_->noteRetired(request->id, /*ok=*/false,
                               request->status.code(),
                               request->modeledLatency, 0,
                               DeadlineVerdict::kNone);
          tracer_->onFailureTrigger("failed_launch");
        }
      }
    }
    if (!migrate.empty()) {
      std::lock_guard<std::mutex> lock(mu_);
      const Status migrated = migrateLocked(migrate);
      if (!migrated.isOk()) return migrated;
    }
    // Loop: the migrated re-dispatches appended to dispatchOrder_ and
    // are retired by the next pass.
  }
}

Status LaunchService::migrateLocked(const std::vector<uint64_t>& ids) {
  auto& metrics = simprof::MetricsRegistry::global();
  // Charge one breaker trip per stranded request, attributed to the
  // request's tenant — a shard-invariant count (how many requests hit
  // faults never depends on which physical device served the shard).
  // A breaker that crosses its threshold quarantines its device: out
  // of the shard map and fast-failed by the manager until cool-down.
  for (const uint64_t id : ids) {
    Request& request = requests_[id];
    ++tenants_[request.tenant].stats.breakerTrips;
    metrics.add(simprof::metric::kServeBreakerTripsTotal);
    if (tracer_) {
      tracer_->noteBreakerTrip(tenants_[request.tenant].spec.name,
                               request.device);
    }
    const size_t d = request.device;
    if (breakers_[d].noteTrip(epoch_)) {
      mgr_->setQuarantined(d, true);
      probing_[d] = false;
      if (tracer_) {
        tracer_->noteBreakerOpened(static_cast<uint32_t>(d), epoch_);
        tracer_->onFailureTrigger("breaker_open");
      }
    }
  }
  // Reset every quiesced device — its in-flight work was all retired
  // above, so this is the drain -> quiesce -> reset step of the health
  // machine (quarantined devices too: a later half-open probe must
  // start from a clean device). Devices whose breaker stayed closed
  // rejoin the serving set immediately: the loss was transient.
  for (size_t d = 0; d < deviceServing_.size(); ++d) {
    if (deviceServing_[d]) continue;
    mgr_->resetDevice(d);
    if (!mgr_->isQuarantined(d)) deviceServing_[d] = true;
  }
  // Panic revival: never leave the serving set empty. The breaker
  // nearest its reopen epoch (ties to the lowest device number) is
  // forced half-open so traffic keeps flowing.
  if (config_.panicRevival && !anyServingLocked()) {
    size_t pick = deviceServing_.size();
    for (size_t d = 0; d < deviceServing_.size(); ++d) {
      if (breakers_[d].state() != simfault::BreakerState::kOpen) continue;
      if (pick == deviceServing_.size() ||
          breakers_[d].reopenEpoch() < breakers_[pick].reopenEpoch()) {
        pick = d;
      }
    }
    if (pick != deviceServing_.size()) {
      breakers_[pick].forceHalfOpen();
      mgr_->setQuarantined(pick, false);
      deviceServing_[pick] = true;
      probing_[pick] = true;
      if (tracer_) {
        tracer_->notePanicRevival(static_cast<uint32_t>(pick), epoch_);
      }
    }
  }
  rebuildShardMapLocked();
  if (!anyServingLocked()) {
    for (const uint64_t id : ids) {
      Request& request = requests_[id];
      request.status =
          Status::unavailable("no healthy device left for migration");
      request.state = RequestState::kFailed;
      ++tenants_[request.tenant].stats.failed;
      ++retiredTotal_;
      if (tracer_) {
        tracer_->noteRetired(id, /*ok=*/false, StatusCode::kUnavailable,
                             request.modeledLatency, 0,
                             DeadlineVerdict::kNone);
      }
    }
    if (tracer_) tracer_->onFailureTrigger("all_devices_lost");
    return Status::unavailable("launch service lost every device");
  }
  for (const uint64_t id : ids) {
    Request& request = requests_[id];
    Tenant& t = tenants_[request.tenant];
    // Retry budget: hop h is re-dispatch number h. A tenant's budget
    // caps hops per request; past it the request fails for good with a
    // definite status instead of bouncing between dying devices.
    ++request.retries;
    if (request.retries > t.spec.maxRetries) {
      request.status = Status::unavailable(
          "retry budget exhausted after " +
          std::to_string(request.retries - 1) + " re-dispatches (tenant '" +
          t.spec.name + "' allows " + std::to_string(t.spec.maxRetries) +
          ")");
      request.state = RequestState::kFailed;
      ++t.stats.failed;
      ++t.stats.retriesExhausted;
      metrics.add(simprof::metric::kServeRetriesExhaustedTotal);
      ++retiredTotal_;
      if (tracer_) {
        tracer_->noteRetryExhausted(id, request.retries - 1);
        tracer_->noteRetired(id, /*ok=*/false, StatusCode::kUnavailable,
                             request.modeledLatency, 0,
                             DeadlineVerdict::kNone);
        tracer_->onFailureTrigger("retry_exhausted");
      }
      continue;
    }
    request.migrated = true;
    ++t.stats.migrated;
    ++migratedTotal_;
    metrics.add(simprof::metric::kServeMigrationsTotal);
    // The fault modeled the *device* dying, not the request being
    // poisonous — the migrated copy must not re-arm device loss on the
    // healthy device.
    request.config.fault.spec = "off";
    // Each hop is charged a dispatch plus capped exponential backoff —
    // modeled cycles, never slept, so latency stays reproducible.
    const uint64_t backoff = simfault::cappedExponentialBackoff(
        kRetryBackoffBaseCycles, kRetryBackoffCapCycles, request.retries);
    request.modeledLatency += kDispatchCycles + backoff;
    t.stats.retryBackoffCycles += backoff;
    metrics.observe(simprof::metric::kServeRetryBackoffCycles, backoff);
    const size_t device = shardDevice_[request.shard];
    const uint32_t from_device = request.device;
    const omprt::TargetConfig resolved =
        mgr_->effectiveConfig(device, request.config);
    omprt::TargetConfig cfg = resolved;
    cfg.fault = request.config.fault;
    cfg.watchdogSteps = request.config.watchdogSteps;
    request.future = mgr_->taskQueue(device).enqueue(cfg, request.region);
    request.device = static_cast<uint32_t>(device);
    request.state = RequestState::kDispatched;
    dispatchOrder_.push_back(id);
    if (tracer_) {
      tracer_->noteMigrated(id, request.retries, backoff,
                            request.modeledLatency, from_device,
                            request.device);
    }
  }
  return Status::ok();
}

bool LaunchService::anyServingLocked() const {
  return std::any_of(deviceServing_.begin(), deviceServing_.end(),
                     [](bool serving) { return serving; });
}

void LaunchService::advanceBreakersLocked() {
  bool changed = false;
  for (size_t d = 0; d < breakers_.size(); ++d) {
    if (breakers_[d].state() != simfault::BreakerState::kOpen) continue;
    breakers_[d].onEpoch(epoch_);
    if (breakers_[d].state() == simfault::BreakerState::kHalfOpen) {
      mgr_->setQuarantined(d, false);
      deviceServing_[d] = true;
      probing_[d] = true;
      changed = true;
      if (tracer_) {
        tracer_->noteBreakerHalfOpen(static_cast<uint32_t>(d), epoch_);
      }
    }
  }
  if (changed) rebuildShardMapLocked();
}

void LaunchService::rebuildShardMapLocked() {
  std::vector<size_t> serving;
  for (size_t d = 0; d < deviceServing_.size(); ++d) {
    if (deviceServing_[d]) serving.push_back(d);
  }
  if (serving.empty()) return;  // pump()/migrateLocked() guard on this
  for (size_t s = 0; s < shardDevice_.size(); ++s) {
    shardDevice_[s] = serving[s % serving.size()];
  }
}

Status LaunchService::runToCompletion() {
  for (;;) {
    const size_t pumped = pump();
    size_t retired_before = 0;
    {
      std::lock_guard<std::mutex> lock(mu_);
      retired_before = retireCursor_;
    }
    const Status drained = drain();
    if (!drained.isOk()) return drained;
    std::lock_guard<std::mutex> lock(mu_);
    if (queuedCount_ == 0 && retireCursor_ == dispatchOrder_.size()) {
      return Status::ok();
    }
    // Retiring counts as progress: it resets in-flight budgets, so the
    // next pump can dispatch work this one could not.
    if (pumped == 0 && retireCursor_ == retired_before) {
      return Status::unavailable(
          "launch service stalled: queued work but nothing dispatchable");
    }
  }
}

void LaunchService::reviveDevice(size_t n) {
  std::lock_guard<std::mutex> lock(mu_);
  SIMTOMP_CHECK(n < deviceServing_.size(), "device number out of range");
  // Manual revival outranks the breaker: close it, clear the
  // quarantine and forget any outstanding probe.
  breakers_[n].forceClose();
  mgr_->setQuarantined(n, false);
  probing_[n] = false;
  deviceServing_[n] = true;
  if (tracer_) {
    tracer_->noteDeviceRevived(static_cast<uint32_t>(n), epoch_);
  }
  rebuildShardMapLocked();
}

uint64_t LaunchService::epoch() const {
  std::lock_guard<std::mutex> lock(mu_);
  return epoch_;
}

simfault::BreakerState LaunchService::breakerState(size_t n) const {
  std::lock_guard<std::mutex> lock(mu_);
  SIMTOMP_CHECK(n < breakers_.size(), "device number out of range");
  return breakers_[n].state();
}

uint64_t LaunchService::breakerTrips(size_t n) const {
  std::lock_guard<std::mutex> lock(mu_);
  SIMTOMP_CHECK(n < breakers_.size(), "device number out of range");
  return breakers_[n].trips();
}

uint64_t LaunchService::breakerOpens(size_t n) const {
  std::lock_guard<std::mutex> lock(mu_);
  SIMTOMP_CHECK(n < breakers_.size(), "device number out of range");
  return breakers_[n].opens();
}

bool LaunchService::brownoutActive() const {
  std::lock_guard<std::mutex> lock(mu_);
  return brownoutActiveLocked();
}

size_t LaunchService::queuedRequests() const {
  std::lock_guard<std::mutex> lock(mu_);
  return queuedCount_;
}

uint64_t LaunchService::dispatchedOutstanding() const {
  std::lock_guard<std::mutex> lock(mu_);
  return dispatchedTotal_ - retiredTotal_;
}

uint64_t LaunchService::peakInFlight() const {
  std::lock_guard<std::mutex> lock(mu_);
  return peakInFlight_;
}

uint64_t LaunchService::batchesDispatched() const {
  std::lock_guard<std::mutex> lock(mu_);
  return batches_;
}

uint64_t LaunchService::amortizedResolutions() const {
  std::lock_guard<std::mutex> lock(mu_);
  return amortized_;
}

RequestOutcome LaunchService::outcome(uint64_t id) const {
  std::lock_guard<std::mutex> lock(mu_);
  SIMTOMP_CHECK(id < requests_.size(), "request id out of range");
  const Request& request = requests_[id];
  RequestOutcome out;
  out.state = request.state;
  out.status = request.status;
  out.cycles = request.cycles;
  out.modeledLatencyCycles = request.modeledLatency;
  out.deadlineCycles = request.deadline;
  out.device = request.device;
  out.shard = request.shard;
  out.retries = request.retries;
  out.batchFollower = request.batchFollower;
  out.migrated = request.migrated;
  return out;
}

std::vector<uint64_t> LaunchService::dispatchOrder() const {
  std::lock_guard<std::mutex> lock(mu_);
  return dispatchOrder_;
}

size_t LaunchService::shardCount() const { return shardDevice_.size(); }

size_t LaunchService::shardDevice(size_t shard) const {
  std::lock_guard<std::mutex> lock(mu_);
  SIMTOMP_CHECK(shard < shardDevice_.size(), "shard out of range");
  return shardDevice_[shard];
}

bool LaunchService::deviceServing(size_t n) const {
  std::lock_guard<std::mutex> lock(mu_);
  SIMTOMP_CHECK(n < deviceServing_.size(), "device number out of range");
  return deviceServing_[n];
}

TenantStats LaunchService::tenantStats(std::string_view name) const {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = tenantByName_.find(name);
  SIMTOMP_CHECK(it != tenantByName_.end(), "unknown tenant");
  return tenants_[it->second].stats;
}

void LaunchService::dumpStats(std::ostream& out) const {
  std::lock_guard<std::mutex> lock(mu_);
  TenantStats totals;
  for (const Tenant& t : tenants_) {
    totals.submitted += t.stats.submitted;
    totals.accepted += t.stats.accepted;
    totals.shed += t.stats.shed;
    totals.evicted += t.stats.evicted;
    totals.brownoutShed += t.stats.brownoutShed;
    totals.deadlineShed += t.stats.deadlineShed;
    totals.completed += t.stats.completed;
    totals.failed += t.stats.failed;
    totals.migrated += t.stats.migrated;
    totals.batchFollowers += t.stats.batchFollowers;
    totals.deadlineHit += t.stats.deadlineHit;
    totals.deadlineMiss += t.stats.deadlineMiss;
    totals.retriesExhausted += t.stats.retriesExhausted;
    totals.retryBackoffCycles += t.stats.retryBackoffCycles;
    totals.breakerTrips += t.stats.breakerTrips;
  }
  out << "simserve stats v1\n";
  out << "service: submitted=" << totals.submitted
      << " accepted=" << totals.accepted << " shed=" << totals.shed
      << " deadline_shed=" << totals.deadlineShed
      << " brownout_shed=" << totals.brownoutShed
      << " completed=" << totals.completed << " failed=" << totals.failed
      << " migrated=" << totals.migrated << " batches=" << batches_
      << " amortized_resolutions=" << amortized_
      << " peak_queue_depth=" << peakQueueDepth_
      << " peak_inflight=" << peakInFlight_
      << " deadline_hit=" << totals.deadlineHit
      << " deadline_miss=" << totals.deadlineMiss
      << " retries_exhausted=" << totals.retriesExhausted
      << " retry_backoff_cycles=" << totals.retryBackoffCycles
      << " breaker_trips=" << totals.breakerTrips << "\n";
  // tenantByName_ is name-sorted, which makes the dump order stable.
  for (const auto& [name, id] : tenantByName_) {
    const Tenant& t = tenants_[id];
    out << "tenant " << name << ": priority=" << t.spec.priority << " "
        << t.stats.toString() << "\n";
  }
}

}  // namespace simtomp::simserve
