// Multi-device host runtime and transfer-model tests.
#include <gtest/gtest.h>

#include <atomic>
#include <vector>

#include "hostrt/device_manager.h"

namespace simtomp::hostrt {
namespace {

using gpusim::ArchSpec;

omprt::TargetConfig tinyConfig(uint32_t threads = 64) {
  omprt::TargetConfig config;
  config.teamsMode = omprt::ExecMode::kSPMD;
  config.numTeams = 1;
  config.threadsPerTeam = threads;
  return config;
}

TEST(DeviceManagerTest, EnumeratesDevices) {
  DeviceManager mgr({ArchSpec::testTiny(), ArchSpec::amdMI100()});
  EXPECT_EQ(mgr.numDevices(), 2u);
  EXPECT_EQ(mgr.device(0).arch().vendor, gpusim::Vendor::kNvidia);
  EXPECT_EQ(mgr.device(1).arch().vendor, gpusim::Vendor::kAmd);
}

TEST(DeviceManagerTest, LaunchOnSelectsDevice) {
  DeviceManager mgr({ArchSpec::testTiny(), ArchSpec::amdMI100()});
  uint32_t warp_size_seen = 0;
  auto stats = mgr.launchOn(1, tinyConfig(128),
                            [&](omprt::OmpContext& ctx) {
                              if (ctx.gpu().threadId() == 0) {
                                warp_size_seen = ctx.gpu().warpSize();
                              }
                            });
  ASSERT_TRUE(stats.isOk());
  EXPECT_EQ(warp_size_seen, 64u);  // ran on the AMD-like device
}

TEST(DeviceManagerTest, OutOfRangeDeviceFails) {
  DeviceManager mgr({ArchSpec::testTiny()});
  auto stats = mgr.launchOn(3, tinyConfig(), [](omprt::OmpContext&) {});
  ASSERT_FALSE(stats.isOk());
  EXPECT_EQ(stats.status().code(), StatusCode::kInvalidArgument);
}

TEST(DeviceManagerTest, PerDeviceDataEnvironmentsAreIndependent) {
  DeviceManager mgr({ArchSpec::testTiny(), ArchSpec::testTiny()});
  std::vector<double> host{1.0, 2.0};
  ASSERT_TRUE(
      mgr.dataEnv(0).mapEnter(std::span<double>(host), MapType::kTo).isOk());
  EXPECT_TRUE(mgr.dataEnv(0).isPresent(host.data()));
  EXPECT_FALSE(mgr.dataEnv(1).isPresent(host.data()));
  ASSERT_TRUE(
      mgr.dataEnv(0).mapExit(std::span<double>(host), MapType::kTo).isOk());
}

TEST(DeviceManagerTest, AsyncFanOutAcrossDevices) {
  DeviceManager mgr({ArchSpec::testTiny(), ArchSpec::testTiny()});
  std::atomic<int> runs{0};
  std::vector<std::future<Result<gpusim::KernelStats>>> futures;
  for (size_t dev = 0; dev < 2; ++dev) {
    for (int k = 0; k < 3; ++k) {
      futures.push_back(mgr.launchOnAsync(
          dev, tinyConfig(32), [&](omprt::OmpContext&) { runs++; }));
    }
  }
  mgr.drainAll();
  for (auto& f : futures) ASSERT_TRUE(f.get().isOk());
  EXPECT_EQ(runs.load(), 2 * 3 * 32);
}

// ---------------- TransferModel ----------------

TEST(TransferModelTest, CyclesFormula) {
  TransferModel model;
  model.latencyCycles = 100;
  model.cyclesPerKilobyte = 10;
  EXPECT_EQ(model.cyclesFor(0), 100u);
  EXPECT_EQ(model.cyclesFor(1024), 110u);
  EXPECT_EQ(model.cyclesFor(10 * 1024), 200u);
}

TEST(TransferModelTest, DataEnvAccumulatesTransferCycles) {
  gpusim::Device dev(ArchSpec::testTiny());
  TransferModel model;
  model.latencyCycles = 1000;
  model.cyclesPerKilobyte = 100;
  DataEnvironment env(dev, model);
  std::vector<double> host(1024, 1.0);  // 8 KiB
  ASSERT_TRUE(env.mapEnter(std::span<double>(host), MapType::kToFrom).isOk());
  EXPECT_EQ(env.stats().transferCycles, 1000u + 800u);
  ASSERT_TRUE(env.mapExit(std::span<double>(host), MapType::kToFrom).isOk());
  EXPECT_EQ(env.stats().transferCycles, 2 * (1000u + 800u));
}

TEST(TransferModelTest, SmallTransfersAreLatencyBound) {
  gpusim::Device dev(ArchSpec::testTiny());
  DataEnvironment env(dev);
  std::vector<double> tiny_buffer(1, 1.0);
  ASSERT_TRUE(
      env.mapEnter(std::span<double>(tiny_buffer), MapType::kTo).isOk());
  const uint64_t one = env.stats().transferCycles;
  ASSERT_TRUE(env.updateTo(tiny_buffer.data()).isOk());
  // Two 8-byte transfers: cost dominated by the fixed latency.
  EXPECT_NEAR(static_cast<double>(env.stats().transferCycles),
              2.0 * static_cast<double>(one), 2.0);
  ASSERT_TRUE(env.mapExit(std::span<double>(tiny_buffer), MapType::kTo).isOk());
}

TEST(TransferModelTest, AllocMapsCostNoTransferCycles) {
  gpusim::Device dev(ArchSpec::testTiny());
  DataEnvironment env(dev);
  std::vector<double> host(256, 0.0);
  ASSERT_TRUE(env.mapEnter(std::span<double>(host), MapType::kAlloc).isOk());
  EXPECT_EQ(env.stats().transferCycles, 0u);
  ASSERT_TRUE(env.mapExit(std::span<double>(host), MapType::kAlloc).isOk());
  EXPECT_EQ(env.stats().transferCycles, 0u);
}

}  // namespace
}  // namespace simtomp::hostrt
