// Execution-mode vocabulary for the OpenMP device runtime.
//
// Both `teams` regions and `parallel` regions can independently execute
// in one of two modes (paper sections 3.1, 3.2, 5.2):
//
//   kGeneric — CPU-centric: one main thread runs the sequential code,
//              the other threads idle in a state machine until work is
//              published (block-level machine for teams, warp-level for
//              SIMD groups inside parallel).
//   kSPMD    — GPU-centric: every thread executes the region redundantly
//              under the no-side-effects guarantee; no state machine.
#pragma once

#include <cstdint>
#include <string_view>

namespace simtomp::omprt {

enum class ExecMode : uint8_t { kGeneric, kSPMD };

inline std::string_view execModeName(ExecMode mode) {
  return mode == ExecMode::kGeneric ? "generic" : "spmd";
}

/// What a device thread should do after __target_init returns.
enum class ThreadKind : uint8_t {
  kUserCode,    ///< run the target-region user code
  kTerminated,  ///< worker finished its state machine; exit the kernel
};

/// Sentinel simdGroupSize: resolve to the launch-wide default SIMD
/// group size (TargetConfig::simdlen, possibly filled in by the
/// simtune autotuner) when the region is entered.
inline constexpr uint32_t kSimdlenAuto = 0;

/// Per-parallel-region configuration (paper section 5.3.1: the SIMD
/// group size may differ between parallel regions).
struct ParallelConfig {
  ExecMode mode = ExecMode::kSPMD;
  /// SIMD group size (simdlen). 1 disables the third level entirely and
  /// reproduces today's LLVM/OpenMP behaviour (paper section 5.4).
  /// kSimdlenAuto (0) resolves to the launch-wide default at region
  /// entry (rt::normalizeParallelConfig).
  uint32_t simdGroupSize = 1;
  /// When true, `mode` is a placeholder and the launch-wide default
  /// parallel mode (TargetConfig::parallelMode) is used instead.
  bool modeAuto = false;
};

/// Outlined region signatures. Raw function pointers by design: the
/// runtime dispatches them the way DeviceRTL does (if-cascade of known
/// functions with an indirect-call fallback, paper section 5.5).
class OmpContext;
using OutlinedFn = void (*)(OmpContext& ctx, void** args);
using LoopBodyFn = void (*)(OmpContext& ctx, uint64_t iv, void** args);

}  // namespace simtomp::omprt
