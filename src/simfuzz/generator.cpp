#include "simfuzz/generator.h"

#include <array>
#include <cstddef>

#include "support/rng.h"

namespace simtomp::simfuzz {

namespace {

using omprt::ExecMode;
using omprt::ForSchedule;

/// Weighted pick: `weights` parallel to 0..N-1, total > 0.
template <size_t N>
size_t pickWeighted(Rng& rng, const std::array<uint32_t, N>& weights) {
  uint32_t total = 0;
  for (const uint32_t w : weights) total += w;
  uint64_t roll = rng.nextBelow(total);
  for (size_t i = 0; i < N; ++i) {
    if (roll < weights[i]) return i;
    roll -= weights[i];
  }
  return N - 1;
}

/// Adversarial outer trip counts: primes, warp-size neighbours, exact
/// multiples, and a 1-iteration degenerate.
constexpr uint64_t kOuterPool[] = {1,  2,  3,  5,  7,   13,  17,  31, 32,
                                   33, 61, 63, 64, 65,  97,  127, 128, 131,
                                   191, 193, 251};
/// Inner trips: 0 (empty simd loop), sub-simdlen values, primes,
/// warp-size neighbours.
constexpr uint64_t kInnerPool[] = {0, 1, 2, 3, 5, 7, 11, 16, 17,
                                   31, 32, 33, 63, 64, 67, 89};

}  // namespace

FuzzProgram Generator::generate(uint64_t seed) const {
  // One independent stream per axis group: adding draws to one group
  // never reshuffles another, so corpus seeds stay stable under
  // grammar growth that only touches one axis.
  Rng root(seed * 0x9e3779b97f4a7c15ULL + 0x6a09e667f3bcc909ULL + salt_);
  Rng shape = root.fork(1);
  Rng trips = root.fork(2);
  Rng coeff = root.fork(3);

  FuzzProgram p;
  p.seed = seed;

  p.construct = static_cast<Construct>(
      pickWeighted<3>(shape, {50, 30, 20}));  // dpf / sched / barrier
  p.body = static_cast<BodyKind>(
      pickWeighted<5>(shape, {25, 25, 20, 15, 15}));

  p.numTeams = 1 + static_cast<uint32_t>(shape.nextBelow(4));
  p.threadsPerTeam = 64 * (1 + static_cast<uint32_t>(shape.nextBelow(3)));
  p.teamsMode =
      shape.nextBelow(2) ? ExecMode::kGeneric : ExecMode::kSPMD;
  p.parallelMode =
      shape.nextBelow(2) ? ExecMode::kGeneric : ExecMode::kSPMD;
  // simdlen 1..32 uniformly in the exponent, plus an occasional 64
  // that the 32-lane archs clamp (a specified repair worth fuzzing).
  p.simdlen = 1u << shape.nextBelow(6);
  if (shape.nextBelow(8) == 0) p.simdlen = 64;

  p.schedKind = static_cast<ForSchedule>(
      pickWeighted<3>(shape, {40, 30, 30}));  // cyclic / chunked / dynamic
  p.schedChunk = shape.nextBelow(9);

  p.pressure = static_cast<uint32_t>(
      pickWeighted<3>(shape, {50, 25, 25}));
  p.sharingSpaceBytes =
      std::array<uint32_t, 3>{2048, 1024, 256}[pickWeighted<3>(
          shape, {60, 20, 20})];

  // Trip counts: adversarial pool half the time, uniform otherwise.
  p.outerTrip = trips.nextBelow(2) != 0
                    ? kOuterPool[trips.nextBelow(std::size(kOuterPool))]
                    : 1 + trips.nextBelow(200);
  p.innerTrip = trips.nextBelow(2) != 0
                    ? kInnerPool[trips.nextBelow(std::size(kInnerPool))]
                    : trips.nextBelow(80);

  p.a = coeff.nextInRange(-3, 3);
  p.b = coeff.nextInRange(-5, 5);

  p.normalize();
  return p;
}

}  // namespace simtomp::simfuzz
