// Tests for occupancy calculation and the chrome-trace recorder.
#include <gtest/gtest.h>

#include <algorithm>
#include <fstream>
#include <sstream>

#include "gpusim/device.h"
#include "gpusim/occupancy.h"
#include "gpusim/trace.h"

namespace simtomp::gpusim {
namespace {

TEST(OccupancyTest, ThreadBoundOnly) {
  const ArchSpec arch = ArchSpec::nvidiaA100();  // 2048 threads/SM
  const OccupancyInfo info = computeOccupancy(arch, 256, 0);
  EXPECT_EQ(info.warpsPerBlock, 8u);
  EXPECT_EQ(info.blocksPerSmByThreads, 8u);
  EXPECT_EQ(info.residentBlocksPerSm, 8u);
  EXPECT_DOUBLE_EQ(info.warpOccupancy, 1.0);
}

TEST(OccupancyTest, SharedMemoryBound) {
  const ArchSpec arch = ArchSpec::nvidiaA100();  // 164 KiB/SM
  const OccupancyInfo info = computeOccupancy(arch, 128, 48 * 1024);
  EXPECT_EQ(info.blocksPerSmByThreads, 16u);
  EXPECT_EQ(info.blocksPerSmByShared, 3u);
  EXPECT_EQ(info.residentBlocksPerSm, 3u);
  // 3 blocks * 4 warps / 64 max warps.
  EXPECT_NEAR(info.warpOccupancy, 12.0 / 64.0, 1e-12);
}

TEST(OccupancyTest, UnlaunchableShapeIsZero) {
  const ArchSpec arch = ArchSpec::testTiny();
  EXPECT_EQ(computeOccupancy(arch, 0, 0).residentBlocksPerSm, 0u);
  EXPECT_EQ(computeOccupancy(arch, 100000, 0).residentBlocksPerSm, 0u);
}

TEST(OccupancyTest, PartialWarpRoundsUp) {
  const ArchSpec arch = ArchSpec::nvidiaA100();
  EXPECT_EQ(computeOccupancy(arch, 40, 0).warpsPerBlock, 2u);
}

TEST(OccupancyTest, KernelStatsCarryOccupancy) {
  Device dev(ArchSpec::testTiny());  // 512 threads/SM
  auto stats = dev.launch({2, 128}, [](ThreadCtx& t) {
    // Touch shared memory so peak usage is non-zero.
    if (t.threadId() == 0) {
      (void)t.block().sharedMemory().allocate(1024, 16);
    }
  });
  ASSERT_TRUE(stats.isOk());
  EXPECT_GE(stats.value().peakSharedBytes, 1024u);
  EXPECT_EQ(stats.value().occupancy.threadsPerBlock, 128u);
  EXPECT_EQ(stats.value().occupancy.blocksPerSmByThreads, 4u);
  EXPECT_GT(stats.value().occupancy.warpOccupancy, 0.0);
}

TEST(OccupancyTest, MoreSharedUsageLowersOccupancy) {
  const ArchSpec arch = ArchSpec::nvidiaA100();
  const double lean = computeOccupancy(arch, 128, 1024).warpOccupancy;
  const double fat = computeOccupancy(arch, 128, 40 * 1024).warpOccupancy;
  EXPECT_GT(lean, fat);
}

// ---------------- TraceRecorder ----------------

TEST(TraceTest, RecordsBlockAndKernelEvents) {
  Device dev(ArchSpec::testTiny());
  TraceRecorder trace;
  dev.setTraceRecorder(&trace);
  auto stats = dev.launch({3, 32}, [](ThreadCtx& t) { t.work(10); });
  ASSERT_TRUE(stats.isOk());
  ASSERT_EQ(trace.size(), 4u);  // 3 blocks + 1 kernel span
  int kernel_events = 0;
  for (const auto& e : trace.events()) {
    if (e.track == TraceRecorder::kKernelTrack) {
      ++kernel_events;
      EXPECT_EQ(e.durationCycles, stats.value().cycles);
    } else {
      EXPECT_LT(e.track, dev.arch().numSMs);
      EXPECT_GT(e.durationCycles, 0u);
    }
  }
  EXPECT_EQ(kernel_events, 1);
  dev.setTraceRecorder(nullptr);
}

TEST(TraceTest, BlockSpansDoNotOverlapPerSm) {
  Device dev(ArchSpec::testTiny());  // 2 SMs
  TraceRecorder trace;
  dev.setTraceRecorder(&trace);
  auto stats = dev.launch({6, 32}, [](ThreadCtx& t) { t.work(100); });
  ASSERT_TRUE(stats.isOk());
  // Per SM, spans must be sequential and non-overlapping.
  for (uint32_t sm = 0; sm < 2; ++sm) {
    uint64_t cursor = 0;
    for (const auto& e : trace.events()) {
      if (e.track != sm) continue;
      EXPECT_GE(e.startCycle, cursor);
      cursor = e.startCycle + e.durationCycles;
    }
  }
}

TEST(TraceTest, ChromeJsonIsWellFormed) {
  TraceRecorder trace;
  trace.recordBlock(0, 1, 0, 50);
  trace.recordKernel("k", 60);
  std::ostringstream out;
  trace.writeChromeJson(out);
  const std::string json = out.str();
  EXPECT_EQ(json.front(), '[');
  EXPECT_NE(json.find("\"ph\": \"X\""), std::string::npos);
  EXPECT_NE(json.find("\"name\": \"block 0\""), std::string::npos);
  EXPECT_NE(json.find("\"dur\": 60"), std::string::npos);
  // Six fields per event (5 commas each) plus one separator.
  EXPECT_EQ(std::count(json.begin(), json.end(), ','),
            static_cast<long>(2 * 5 + 1));
}

TEST(TraceTest, KernelNamesAreJsonEscaped) {
  TraceRecorder trace;
  // Kernel labels are user-supplied; quotes, backslashes and control
  // characters must come out as valid JSON escapes.
  trace.recordKernel("spmv \"tuned\" \\ pass\n\tstage\x01", 10);
  std::ostringstream out;
  trace.writeChromeJson(out);
  const std::string json = out.str();
  EXPECT_NE(json.find("spmv \\\"tuned\\\" \\\\ pass\\n\\tstage\\u0001"),
            std::string::npos)
      << json;
  // No raw quote survives inside the name: the name field closes right
  // before ", \"ph\"".
  EXPECT_NE(json.find("stage\\u0001\", \"ph\""), std::string::npos) << json;
}

TEST(TraceTest, WriteToFileAndClear) {
  TraceRecorder trace;
  trace.recordKernel("k", 10);
  const std::string path = "/tmp/simtomp_trace_test.json";
  ASSERT_TRUE(trace.writeChromeJson(path).isOk());
  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::string contents((std::istreambuf_iterator<char>(in)),
                       std::istreambuf_iterator<char>());
  EXPECT_NE(contents.find("\"name\": \"k\""), std::string::npos);
  trace.clear();
  EXPECT_EQ(trace.size(), 0u);
}

TEST(TraceTest, BadPathFails) {
  TraceRecorder trace;
  EXPECT_FALSE(trace.writeChromeJson("/nonexistent-dir/x.json").isOk());
}

TEST(TraceTest, MultipleKernelsAccumulate) {
  Device dev(ArchSpec::testTiny());
  TraceRecorder trace;
  dev.setTraceRecorder(&trace);
  ASSERT_TRUE(dev.launch({1, 32}, [](ThreadCtx&) {}).isOk());
  ASSERT_TRUE(dev.launch({1, 32}, [](ThreadCtx&) {}).isOk());
  // 2 kernels x (1 block + 1 kernel span).
  EXPECT_EQ(trace.size(), 4u);
}

}  // namespace
}  // namespace simtomp::gpusim
