// Unit tests for the cooperative fiber scheduler.
#include <gtest/gtest.h>

#include <stdexcept>
#include <vector>

#include "fiber/fiber.h"

namespace simtomp::fiber {
namespace {

TEST(FiberTest, RunsSingleFiberToCompletion) {
  FiberScheduler sched;
  bool ran = false;
  sched.spawn([&] { ran = true; });
  EXPECT_TRUE(sched.run().isOk());
  EXPECT_TRUE(ran);
  EXPECT_EQ(sched.finishedCount(), 1u);
}

TEST(FiberTest, RunsManyFibersInOrder) {
  FiberScheduler sched;
  std::vector<int> order;
  for (int i = 0; i < 8; ++i) {
    sched.spawn([&order, i] { order.push_back(i); });
  }
  EXPECT_TRUE(sched.run().isOk());
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4, 5, 6, 7}));
}

TEST(FiberTest, YieldInterleavesRoundRobin) {
  FiberScheduler sched;
  std::vector<int> order;
  for (int i = 0; i < 3; ++i) {
    sched.spawn([&sched, &order, i] {
      order.push_back(i);
      sched.yield();
      order.push_back(i + 10);
    });
  }
  EXPECT_TRUE(sched.run().isOk());
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 10, 11, 12}));
}

TEST(FiberTest, BlockAndUnblockAll) {
  FiberScheduler sched;
  int tag = 0;
  std::vector<int> order;
  // Two waiters and one releaser.
  for (int i = 0; i < 2; ++i) {
    sched.spawn([&, i] {
      sched.block(&tag);
      order.push_back(i);
    });
  }
  sched.spawn([&] {
    order.push_back(99);
    sched.unblockAll(&tag);
  });
  EXPECT_TRUE(sched.run().isOk());
  EXPECT_EQ(order, (std::vector<int>{99, 0, 1}));
}

TEST(FiberTest, DeadlockIsDetected) {
  FiberScheduler sched;
  int tag = 0;
  sched.spawn([&] { sched.block(&tag); });  // nobody ever unblocks
  const Status status = sched.run();
  ASSERT_FALSE(status.isOk());
  EXPECT_EQ(status.code(), StatusCode::kFailedPrecondition);
  EXPECT_NE(status.message().find("deadlock"), std::string::npos);
}

TEST(FiberTest, PartialDeadlockReportsBlockedCount) {
  FiberScheduler sched;
  int tag = 0;
  sched.spawn([&] { sched.block(&tag); });
  sched.spawn([] {});  // finishes fine
  const Status status = sched.run();
  ASSERT_FALSE(status.isOk());
  EXPECT_NE(status.message().find("1 blocked of 2"), std::string::npos);
}

TEST(FiberTest, ExceptionPropagatesToRun) {
  FiberScheduler sched;
  sched.spawn([] { throw std::runtime_error("kernel bug"); });
  EXPECT_THROW((void)sched.run(), std::runtime_error);
}

TEST(FiberTest, ManyBlockUnblockRounds) {
  FiberScheduler sched;
  int tag = 0;
  constexpr int kRounds = 50;
  int counter = 0;
  sched.spawn([&] {
    for (int r = 0; r < kRounds; ++r) sched.block(&tag);
    counter += 1;
  });
  sched.spawn([&] {
    for (int r = 0; r < kRounds; ++r) {
      sched.unblockAll(&tag);
      sched.yield();
    }
  });
  EXPECT_TRUE(sched.run().isOk());
  EXPECT_EQ(counter, 1);
}

TEST(FiberTest, CurrentIsNullOffFiber) {
  FiberScheduler sched;
  EXPECT_EQ(sched.current(), nullptr);
}

TEST(FiberTest, FiberIndicesAreDense) {
  FiberScheduler sched;
  EXPECT_EQ(sched.spawn([] {}), 0u);
  EXPECT_EQ(sched.spawn([] {}), 1u);
  EXPECT_EQ(sched.spawn([] {}), 2u);
  EXPECT_EQ(sched.fiberCount(), 3u);
}

TEST(FiberTest, DeepStacksSurviveRecursion) {
  FiberScheduler sched(256 * 1024);
  // ~100 frames of recursion with some locals.
  struct Recurse {
    static int go(int n) {
      volatile char pad[512] = {};
      (void)pad;
      if (n == 0) return 0;
      return 1 + go(n - 1);
    }
  };
  int depth = 0;
  sched.spawn([&] { depth = Recurse::go(100); });
  EXPECT_TRUE(sched.run().isOk());
  EXPECT_EQ(depth, 100);
}

TEST(FiberTest, LargeFiberCount) {
  FiberScheduler sched(64 * 1024);
  constexpr int kFibers = 512;
  int count = 0;
  for (int i = 0; i < kFibers; ++i) {
    sched.spawn([&count] { ++count; });
  }
  EXPECT_TRUE(sched.run().isOk());
  EXPECT_EQ(count, kFibers);
}

/// Barrier stress parameterized over participant count.
class FiberBarrierProperty : public ::testing::TestWithParam<int> {};

TEST_P(FiberBarrierProperty, AllOrNothingRendezvous) {
  const int n = GetParam();
  FiberScheduler sched(64 * 1024);
  int tag = 0;
  int arrived = 0;
  std::vector<int> after;
  for (int i = 0; i < n; ++i) {
    sched.spawn([&, i] {
      ++arrived;
      if (arrived == n) {
        sched.unblockAll(&tag);
      } else {
        sched.block(&tag);
      }
      // By the time anyone proceeds, all must have arrived.
      EXPECT_EQ(arrived, n);
      after.push_back(i);
    });
  }
  EXPECT_TRUE(sched.run().isOk());
  EXPECT_EQ(static_cast<int>(after.size()), n);
}

INSTANTIATE_TEST_SUITE_P(Counts, FiberBarrierProperty,
                         ::testing::Values(2, 3, 8, 32, 64));

}  // namespace
}  // namespace simtomp::fiber
