// simfuzz harness: the differential execution matrix and its oracles.
//
// Every generated program runs against four oracles the repo already
// maintains:
//   1. a host-serial reference (referenceRun — pure C++, no simulator),
//   2. simcheck in report mode on every cell,
//   3. worker-count bit-identity (1 vs 8 host workers, same arch),
//   4. fast-path bit-identity (off / on / auto, same arch),
// plus cross-arch output identity (testTiny / NVIDIA A100-style / AMD
// wavefront-64): coverage semantics never depend on warp size, so
// outputs must match the reference on every profile even though
// modeled stats legitimately differ across archs.
//
// Divergence is only flagged on *specified* behavior: outputs, check
// cleanliness, and modeled stats within one arch (where the repo's
// determinism contract promises bit-identity). Stats across archs, and
// host wall-time anywhere, are never compared.
//
// Everything here is a pure function of the program + options: worker
// counts and fast-path modes are pinned per cell (explicit fields beat
// the SIMTOMP_* env vars), so findings logs are byte-identical for any
// SIMTOMP_HOST_WORKERS and across reruns.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "gpusim/arch.h"
#include "simfuzz/program.h"

namespace simtomp::simfuzz {

/// One simulator execution of a program.
struct SimRun {
  Status status = Status::ok();
  /// Full result vector (dataSize() doubles); empty when the launch
  /// failed.
  std::vector<double> data;
  /// cycles + the full counter CSV row: the same-arch identity key.
  std::string statsKey;
  bool checkClean = true;
  std::string checkSummary;
};

struct RunOptions {
  gpusim::ArchSpec arch = gpusim::ArchSpec::testTiny();
  uint32_t hostWorkers = 1;
  omprt::FastPathMode fastPath = omprt::FastPathMode::kOff;
  /// Non-empty: overrides the program's pinned "off" fault spec (the
  /// simfault-oracle mode of the fuzzer).
  std::string faultSpec;
};

/// The host-serial reference: closed forms only, never sees the
/// injected mutation. This is what "correct" means for a program.
[[nodiscard]] std::vector<double> referenceRun(const FuzzProgram& p);

/// Execute the program on a fresh simulated device.
[[nodiscard]] SimRun runOnSim(const FuzzProgram& p, const RunOptions& opt);

struct DiffOptions {
  /// Include the A100-style and AMD wavefront-64 output/check cells.
  bool crossArch = true;
  /// Armed on every cell when non-empty (simfault-oracle fuzzing).
  std::string faultSpec;
  /// Divergence notes beyond this many are counted, not stored.
  uint32_t maxNotes = 6;
  /// Stop after the first cell that produced a note. diverged() is
  /// unchanged (any noting cell makes it true either way); only the
  /// note list and run count shrink. This is the minimizer's mode:
  /// its oracle needs a boolean, not a report, and most candidates
  /// that fail do so in the first (cheapest) cell.
  bool failFast = false;
};

struct DiffResult {
  /// Deterministic divergence descriptions, cell-major order.
  std::vector<std::string> notes;
  /// Notes suppressed by maxNotes.
  uint64_t droppedNotes = 0;
  /// Simulator executions performed.
  uint64_t runs = 0;

  [[nodiscard]] bool diverged() const { return !notes.empty(); }
};

/// Run the full differential matrix for one program.
[[nodiscard]] DiffResult diffProgram(const FuzzProgram& p,
                                     const DiffOptions& opt = {});

struct CampaignOptions {
  uint64_t seedBegin = 0;
  uint64_t seedEnd = 16;
  DiffOptions diff;
  /// Mutation compiled into every generated kernel (self-test mode).
  InjectKind inject = InjectKind::kNone;
  bool minimize = true;
  uint64_t generatorSalt = 0;
};

struct Finding {
  uint64_t seed = 0;
  FuzzProgram program;
  std::vector<std::string> notes;
  FuzzProgram minimized;
  uint32_t minimizeSteps = 0;
};

struct CampaignResult {
  std::vector<Finding> findings;
  uint64_t programs = 0;
  uint64_t runs = 0;
  uint64_t minimizeSteps = 0;
  /// The findings log: byte-identical across reruns and for any
  /// SIMTOMP_HOST_WORKERS value.
  std::string log;
};

/// Generate + diff (+ minimize) every seed in [seedBegin, seedEnd).
[[nodiscard]] CampaignResult runCampaign(const CampaignOptions& opt);

}  // namespace simtomp::simfuzz
