#include "apps/sparse_matvec.h"

#include "dsl/dsl.h"

namespace simtomp::apps {

namespace {

using gpusim::GlobalSpan;
using omprt::OmpContext;

struct DeviceCsr {
  GlobalSpan<uint32_t> rowPtr;
  GlobalSpan<uint32_t> colIdx;
  GlobalSpan<double> values;
  GlobalSpan<double> x;
  GlobalSpan<double> y;
};

Result<DeviceCsr> uploadCsr(gpusim::Device& device, const CsrMatrix& A,
                            std::span<const double> x) {
  DeviceCsr d;
  auto rp = toDevice<uint32_t>(device, A.rowPtr);
  if (!rp.isOk()) return rp.status();
  d.rowPtr = rp.value();
  auto ci = toDevice<uint32_t>(device, A.colIdx);
  if (!ci.isOk()) return ci.status();
  d.colIdx = ci.value();
  auto va = toDevice<double>(device, A.values);
  if (!va.isOk()) return va.status();
  d.values = va.value();
  auto xs = toDevice<double>(device, x);
  if (!xs.isOk()) return xs.status();
  d.x = xs.value();
  auto ys = zeroDevice<double>(device, A.numRows);
  if (!ys.isOk()) return ys.status();
  d.y = ys.value();
  return d;
}

void freeCsr(gpusim::Device& device, const DeviceCsr& d) {
  (void)device.freeArray(d.rowPtr.data());
  (void)device.freeArray(d.colIdx.data());
  (void)device.freeArray(d.values.data());
  (void)device.freeArray(d.x.data());
  (void)device.freeArray(d.y.data());
}

/// One nonzero's contribution, charged like the inner loop of the CSR
/// kernel: load col index + value + x[col], fma, atomic accumulate.
inline void spmvElement(OmpContext& ctx, const DeviceCsr& d, uint64_t row,
                        uint64_t k) {
  gpusim::ThreadCtx& t = ctx.gpu();
  const uint32_t col = d.colIdx.get(t, k);
  const double v = d.values.get(t, k);
  const double xv = d.x.get(t, col);
  t.fma();
  d.y.atomicAdd(t, row, v * xv);
}

Result<gpusim::KernelStats> launchTwoLevel(gpusim::Device& device,
                                           const CsrMatrix& A,
                                           const SpmvOptions& options,
                                           const DeviceCsr& d) {
  // teams distribute (generic) + parallel for (no simd level).
  dsl::LaunchSpec spec;
  spec.numTeams = options.numTeams;
  spec.threadsPerTeam = options.threadsPerTeam;
  spec.teamsMode = omprt::ExecMode::kGeneric;
  spec.parallelMode = omprt::ExecMode::kSPMD;
  spec.simdlen = 1;
  spec.hostWorkers = options.hostWorkers;
  return dsl::targetTeamsDistribute(
      device, spec, A.numRows, [&](OmpContext& ctx, uint64_t row) {
        gpusim::ThreadCtx& t = ctx.gpu();
        const uint32_t begin = d.rowPtr.get(t, row);
        const uint32_t end = d.rowPtr.get(t, row + 1);
        dsl::parallelFor(
            ctx, end - begin,
            [&d, row, begin](OmpContext& inner, uint64_t k) {
              spmvElement(inner, d, row, begin + k);
            },
            spec.parallelConfig());
      });
}

Result<gpusim::KernelStats> launchThreeLevel(gpusim::Device& device,
                                             const CsrMatrix& A,
                                             const SpmvOptions& options,
                                             const DeviceCsr& d,
                                             bool useReduction) {
  // teams distribute parallel for (SPMD teams) + simd (generic parallel).
  dsl::LaunchSpec spec;
  spec.numTeams = options.numTeams;
  spec.threadsPerTeam = options.threadsPerTeam;
  spec.teamsMode = omprt::ExecMode::kSPMD;
  spec.parallelMode = options.parallelMode;
  spec.simdlen = options.simdlen;
  spec.hostWorkers = options.hostWorkers;
  return dsl::targetTeamsDistributeParallelFor(
      device, spec, A.numRows, [&](OmpContext& ctx, uint64_t row) {
        gpusim::ThreadCtx& t = ctx.gpu();
        const uint32_t begin = d.rowPtr.get(t, row);
        const uint32_t end = d.rowPtr.get(t, row + 1);
        if (useReduction) {
          // Pure loads + fma: eligible for the convergence fast path
          // whenever the launch runs full-SPMD parallel regions. The
          // atomic variant (spmvElement) must stay unannotated.
          const double sum = dsl::simdReduceAdd(
              ctx, end - begin,
              dsl::convergent(
                  [&d, begin](OmpContext& inner, uint64_t k) -> double {
                    gpusim::ThreadCtx& it = inner.gpu();
                    const uint32_t col = d.colIdx.get(it, begin + k);
                    const double v = d.values.get(it, begin + k);
                    const double xv = d.x.get(it, col);
                    it.fma();
                    return v * xv;
                  }));
          if (ctx.simdGroupId() == 0) d.y.set(t, row, sum);
        } else {
          dsl::simd(ctx, end - begin,
                    [&d, row, begin](OmpContext& inner, uint64_t k) {
                      spmvElement(inner, d, row, begin + k);
                    });
        }
      });
}

}  // namespace

Result<AppRunResult> runSpmv(gpusim::Device& device, const CsrMatrix& A,
                             const SpmvOptions& options) {
  const std::vector<double> x = denseVector(A.numCols, /*seed=*/7);
  auto upload = uploadCsr(device, A, x);
  if (!upload.isOk()) return upload.status();
  const DeviceCsr d = upload.value();

  Result<gpusim::KernelStats> run = [&]() -> Result<gpusim::KernelStats> {
    switch (options.variant) {
      case SpmvVariant::kTwoLevel:
        return launchTwoLevel(device, A, options, d);
      case SpmvVariant::kThreeLevelAtomic:
        return launchThreeLevel(device, A, options, d, false);
      case SpmvVariant::kThreeLevelReduction:
        return launchThreeLevel(device, A, options, d, true);
    }
    return Status::internal("unknown spmv variant");
  }();
  if (!run.isOk()) {
    freeCsr(device, d);
    return run.status();
  }

  AppRunResult result;
  result.stats = run.value();
  const std::vector<double> y = toHost(d.y);
  const std::vector<double> reference = spmvReference(A, x);
  result.maxError = maxAbsDiff(y, reference);
  result.verified = result.maxError < 1e-9;
  freeCsr(device, d);
  return result;
}

}  // namespace simtomp::apps
