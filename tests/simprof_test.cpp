// Unit + integration tests for simprof: construct-tree semantics, mode
// resolution, the root == KernelStats.cycles invariant, and byte-stable
// output across host worker counts.
#include <gtest/gtest.h>

#include <cstdlib>
#include <set>
#include <sstream>
#include <string>

#include "dsl/dsl.h"
#include "gpusim/device.h"
#include "gpusim/stats.h"
#include "simprof/profile.h"

namespace simtomp::simprof {
namespace {

// ---------------- Names and mode resolution ----------------

TEST(SimprofNamesTest, ConstructNamesUniqueAndNonEmpty) {
  std::set<std::string> seen;
  for (size_t i = 0; i < kNumConstructs; ++i) {
    const std::string name(constructName(static_cast<Construct>(i)));
    EXPECT_FALSE(name.empty()) << "construct " << i;
    EXPECT_TRUE(seen.insert(name).second) << "duplicate name " << name;
  }
}

TEST(SimprofNamesTest, ModeNames) {
  EXPECT_EQ(profileModeName(ProfileMode::kAuto), "auto");
  EXPECT_EQ(profileModeName(ProfileMode::kOff), "off");
  EXPECT_EQ(profileModeName(ProfileMode::kOn), "on");
}

class ProfileEnvTest : public ::testing::Test {
 protected:
  void SetUp() override {
    const char* old = std::getenv("SIMTOMP_PROF");
    if (old != nullptr) saved_ = old;
    ::unsetenv("SIMTOMP_PROF");
  }
  void TearDown() override {
    if (!saved_.empty()) {
      ::setenv("SIMTOMP_PROF", saved_.c_str(), 1);
    } else {
      ::unsetenv("SIMTOMP_PROF");
    }
  }
  std::string saved_;
};

TEST_F(ProfileEnvTest, ExplicitModeAlwaysWins) {
  ::setenv("SIMTOMP_PROF", "1", 1);
  EXPECT_EQ(resolveProfileMode(ProfileMode::kOff).effective,
            ProfileMode::kOff);
  EXPECT_STREQ(resolveProfileMode(ProfileMode::kOff).source, "explicit");
  ::setenv("SIMTOMP_PROF", "0", 1);
  EXPECT_EQ(resolveProfileMode(ProfileMode::kOn).effective, ProfileMode::kOn);
}

TEST_F(ProfileEnvTest, AutoConsultsEnv) {
  EXPECT_EQ(resolveProfileMode(ProfileMode::kAuto).effective,
            ProfileMode::kOff);
  ::setenv("SIMTOMP_PROF", "1", 1);
  EXPECT_EQ(resolveProfileMode(ProfileMode::kAuto).effective,
            ProfileMode::kOn);
  EXPECT_STREQ(resolveProfileMode(ProfileMode::kAuto).source, "SIMTOMP_PROF");
  ::setenv("SIMTOMP_PROF", "on", 1);
  EXPECT_EQ(resolveProfileMode(ProfileMode::kAuto).effective,
            ProfileMode::kOn);
  ::setenv("SIMTOMP_PROF", "garbage", 1);
  EXPECT_EQ(resolveProfileMode(ProfileMode::kAuto).effective,
            ProfileMode::kOff);
}

// ---------------- ThreadProfile tree semantics ----------------

TEST(ThreadProfileTest, NestedSpansAttributeInclusiveAndExclusive) {
  ThreadProfile prof(/*num_counters=*/4, /*capture_spans=*/false);
  // Implicit team frame opens at 0; a parallel region [10, 50) with a
  // simd loop [20, 35) inside it.
  prof.enter(Construct::kParallel, 0, 10);
  prof.enter(Construct::kSimdLoop, 8, 20);
  prof.onCharge(/*counter_id=*/2, /*cycles=*/15, /*count=*/1);
  prof.exit(35);
  prof.exit(50);
  prof.finish(60);

  const ProfileNode& team = prof.root();
  EXPECT_EQ(team.construct, Construct::kTeam);
  EXPECT_EQ(team.inclusiveCycles, 60u);
  EXPECT_EQ(team.exclusiveCycles, 60u - 40u);
  ASSERT_EQ(team.children.size(), 1u);

  const ProfileNode& parallel = team.children[0];
  EXPECT_EQ(parallel.construct, Construct::kParallel);
  EXPECT_EQ(parallel.inclusiveCycles, 40u);
  EXPECT_EQ(parallel.exclusiveCycles, 25u);
  EXPECT_EQ(parallel.visits, 1u);
  ASSERT_EQ(parallel.children.size(), 1u);

  const ProfileNode& simd = parallel.children[0];
  EXPECT_EQ(simd.construct, Construct::kSimdLoop);
  EXPECT_EQ(simd.detail, 8u);
  EXPECT_EQ(simd.inclusiveCycles, 15u);
  EXPECT_EQ(simd.exclusiveCycles, 15u);
  EXPECT_EQ(simd.busyCycles, 15u);
  ASSERT_EQ(simd.counters.size(), 4u);
  EXPECT_EQ(simd.counters[2], 1u);
}

TEST(ThreadProfileTest, RepeatVisitsAccumulateOnOneNode) {
  ThreadProfile prof(1, false);
  for (uint64_t i = 0; i < 3; ++i) {
    prof.enter(Construct::kBarrier, 0, i * 100);
    prof.exit(i * 100 + 10);
  }
  prof.finish(300);
  ASSERT_EQ(prof.root().children.size(), 1u);
  const ProfileNode& barrier = prof.root().children[0];
  EXPECT_EQ(barrier.visits, 3u);
  EXPECT_EQ(barrier.inclusiveCycles, 30u);
}

TEST(ThreadProfileTest, FinishClosesOpenFrames) {
  ThreadProfile prof(1, false);
  prof.enter(Construct::kParallel, 0, 5);
  prof.finish(25);  // parallel never exited explicitly
  ASSERT_EQ(prof.root().children.size(), 1u);
  EXPECT_EQ(prof.root().children[0].inclusiveCycles, 20u);
  EXPECT_EQ(prof.root().inclusiveCycles, 25u);
}

TEST(ThreadProfileTest, CapturesSpansWhenAsked) {
  ThreadProfile prof(1, /*capture_spans=*/true);
  prof.enter(Construct::kSimdLoop, 4, 10);
  prof.exit(30);
  prof.finish(40);
  ASSERT_EQ(prof.spans().size(), 1u);
  EXPECT_EQ(prof.spans()[0].construct, Construct::kSimdLoop);
  EXPECT_EQ(prof.spans()[0].detail, 4u);
  EXPECT_EQ(prof.spans()[0].start, 10u);
  EXPECT_EQ(prof.spans()[0].end, 30u);
}

TEST(ThreadProfileTest, NoSpansWhenCaptureOff) {
  ThreadProfile prof(1, /*capture_spans=*/false);
  prof.enter(Construct::kSimdLoop, 4, 10);
  prof.exit(30);
  prof.finish(40);
  EXPECT_TRUE(prof.spans().empty());
}

// ---------------- Merging ----------------

TEST(ProfileNodeTest, MergeAccumulatesAndKeepsChildren) {
  ThreadProfile a(2, false);
  a.enter(Construct::kParallel, 0, 0);
  a.onCharge(0, 7, 2);
  a.exit(50);
  a.finish(50);

  ThreadProfile b(2, false);
  b.enter(Construct::kParallel, 0, 10);
  b.onCharge(0, 3, 1);
  b.exit(40);
  b.finish(50);

  ProfileNode merged = a.root();
  merged.mergeFrom(b.root());
  EXPECT_EQ(merged.inclusiveCycles, 100u);
  ASSERT_EQ(merged.children.size(), 1u);
  EXPECT_EQ(merged.children[0].inclusiveCycles, 50u + 30u);
  EXPECT_EQ(merged.children[0].visits, 2u);
  EXPECT_EQ(merged.children[0].counters[0], 3u);
  EXPECT_EQ(merged.children[0].busyCycles, 10u);
}

TEST(ProfileNodeTest, SortChildrenIsCanonical) {
  ProfileNode root;
  root.findOrCreateChild(Construct::kBarrier, 0, 0);
  root.findOrCreateChild(Construct::kParallel, 0, 0);
  root.findOrCreateChild(Construct::kSimdLoop, 16, 0);
  root.findOrCreateChild(Construct::kSimdLoop, 4, 0);
  root.sortChildren();
  ASSERT_EQ(root.children.size(), 4u);
  EXPECT_EQ(root.children[0].construct, Construct::kParallel);
  EXPECT_EQ(root.children[1].construct, Construct::kSimdLoop);
  EXPECT_EQ(root.children[1].detail, 4u);
  EXPECT_EQ(root.children[2].detail, 16u);
  EXPECT_EQ(root.children[3].construct, Construct::kBarrier);
}

TEST(ProfileNodeTest, LabelIncludesSimdGroupSize) {
  ProfileNode node;
  node.construct = Construct::kSimdLoop;
  node.detail = 8;
  EXPECT_EQ(node.label(), "simd_loop@8");
  node.construct = Construct::kBarrier;
  node.detail = 0;
  EXPECT_EQ(node.label(), "barrier");
}

// ---------------- Launch integration ----------------

gpusim::KernelStats launchProfiled(gpusim::Device& dev, ProfileMode mode,
                                   uint32_t host_workers) {
  dsl::LaunchSpec spec;
  spec.numTeams = 8;
  spec.threadsPerTeam = 64;
  spec.teamsMode = omprt::ExecMode::kSPMD;
  spec.parallelMode = omprt::ExecMode::kSPMD;
  spec.simdlen = 8;
  spec.hostWorkers = host_workers;
  spec.faultSpec = "off";
  spec.profile.mode = mode;
  auto stats = dsl::targetTeamsDistributeParallelFor(
      dev, spec, 1024, [](dsl::OmpContext& ctx, uint64_t) {
        dsl::simd(ctx, 16,
                  [](dsl::OmpContext& c, uint64_t) { c.gpu().work(3); });
      });
  EXPECT_TRUE(stats.isOk()) << stats.status().toString();
  return stats.value();
}

std::string_view testCounterName(uint32_t id) {
  return gpusim::counterName(static_cast<gpusim::Counter>(id));
}

RenderOptions testRenderOptions() {
  RenderOptions opts;
  opts.counterName = &testCounterName;
  opts.laneRoundsCounter =
      static_cast<uint32_t>(gpusim::Counter::kSimdLaneRounds);
  opts.idleLaneRoundsCounter =
      static_cast<uint32_t>(gpusim::Counter::kSimdIdleLaneRounds);
  return opts;
}

TEST(LaunchProfileTest, RootInclusiveEqualsKernelStatsCycles) {
  gpusim::Device dev;
  const gpusim::KernelStats stats =
      launchProfiled(dev, ProfileMode::kOn, 1);
  const LaunchProfile& profile = dev.lastProfile();
  ASSERT_TRUE(profile.enabled);
  EXPECT_EQ(profile.root.construct, Construct::kKernel);
  EXPECT_EQ(profile.root.inclusiveCycles, stats.cycles);
  EXPECT_EQ(profile.root.exclusiveCycles, 0u);
  EXPECT_EQ(profile.root.visits, 1u);
  EXPECT_EQ(profile.rootCycles, stats.cycles);
  // The grid collapses into one merged team node, which saw every
  // construct the kernel ran.
  ASSERT_EQ(profile.root.children.size(), 1u);
  const ProfileNode& team = profile.root.children[0];
  EXPECT_EQ(team.construct, Construct::kTeam);
  EXPECT_GT(team.inclusiveCycles, 0u);
  EXPECT_FALSE(team.children.empty());
}

TEST(LaunchProfileTest, ProfilingOffLeavesProfileDisabled) {
  gpusim::Device dev;
  launchProfiled(dev, ProfileMode::kOff, 1);
  EXPECT_FALSE(dev.lastProfile().enabled);
  EXPECT_EQ(dev.lastProfileMode(), ProfileMode::kOff);
}

TEST(LaunchProfileTest, ProfilingDoesNotPerturbStats) {
  gpusim::Device dev_off;
  gpusim::Device dev_on;
  const gpusim::KernelStats off =
      launchProfiled(dev_off, ProfileMode::kOff, 1);
  const gpusim::KernelStats on = launchProfiled(dev_on, ProfileMode::kOn, 1);
  EXPECT_EQ(off.toJson(), on.toJson());
}

TEST(LaunchProfileTest, OutputByteIdenticalAcrossWorkerCounts) {
  gpusim::Device dev1;
  gpusim::Device dev8;
  const gpusim::KernelStats s1 = launchProfiled(dev1, ProfileMode::kOn, 1);
  const gpusim::KernelStats s8 = launchProfiled(dev8, ProfileMode::kOn, 8);
  EXPECT_EQ(s1.toJson(), s8.toJson());

  const RenderOptions opts = testRenderOptions();
  EXPECT_EQ(dev1.lastProfile().table(opts), dev8.lastProfile().table(opts));
  EXPECT_EQ(dev1.lastProfile().folded(), dev8.lastProfile().folded());
  std::ostringstream json1;
  std::ostringstream json8;
  dev1.lastProfile().writeJson(json1, opts);
  dev8.lastProfile().writeJson(json8, opts);
  EXPECT_EQ(json1.str(), json8.str());
}

TEST(LaunchProfileTest, TableShowsConstructsAndLaneEfficiency) {
  gpusim::Device dev;
  launchProfiled(dev, ProfileMode::kOn, 1);
  const std::string table = dev.lastProfile().table(testRenderOptions());
  EXPECT_NE(table.find("kernel"), std::string::npos);
  EXPECT_NE(table.find("team"), std::string::npos);
  EXPECT_NE(table.find("parallel"), std::string::npos);
  // The node detail is the launch's simd group size (simdlen 8), not
  // the loop's requested width.
  EXPECT_NE(table.find("simd_loop@8"), std::string::npos);
  EXPECT_NE(table.find("lane_eff="), std::string::npos);
}

TEST(LaunchProfileTest, FoldedStacksAreSortedAndRootedAtKernel) {
  gpusim::Device dev;
  launchProfiled(dev, ProfileMode::kOn, 1);
  const std::string folded = dev.lastProfile().folded();
  ASSERT_FALSE(folded.empty());
  std::istringstream lines(folded);
  std::string prev;
  std::string line;
  while (std::getline(lines, line)) {
    ASSERT_FALSE(line.empty());
    // Every stack is rooted at the kernel frame and carries a weight.
    EXPECT_EQ(line.rfind("kernel", 0) == 0 || line.rfind("kernel;", 0) == 0,
              true)
        << line;
    EXPECT_NE(line.find_last_of(' '), std::string::npos);
    EXPECT_LE(prev, line) << "folded output must be sorted";
    prev = line;
  }
}

TEST(LaunchProfileTest, WriteJsonIsValidEnoughAndDeterministic) {
  gpusim::Device dev;
  launchProfiled(dev, ProfileMode::kOn, 1);
  std::ostringstream a;
  std::ostringstream b;
  dev.lastProfile().writeJson(a, testRenderOptions());
  dev.lastProfile().writeJson(b, testRenderOptions());
  EXPECT_EQ(a.str(), b.str());
  EXPECT_NE(a.str().find("\"root_cycles\""), std::string::npos);
  EXPECT_NE(a.str().find("\"construct\": \"kernel\""), std::string::npos);
}

}  // namespace
}  // namespace simtomp::simprof
