#include "omprt/dispatcher.h"

#include <algorithm>

namespace simtomp::omprt {

void Dispatcher::registerOutlined(const void* fn) {
  if (fn == nullptr) return;
  std::unique_lock<std::shared_mutex> lock(mutex_);
  if (std::find(known_.begin(), known_.end(), fn) != known_.end()) return;
  if (known_.size() >= kMaxCascade) return;
  known_.push_back(fn);
}

void Dispatcher::clear() {
  std::unique_lock<std::shared_mutex> lock(mutex_);
  known_.clear();
}

size_t Dispatcher::size() const {
  std::shared_lock<std::shared_mutex> lock(mutex_);
  return known_.size();
}

bool Dispatcher::isKnown(const void* fn) const {
  std::shared_lock<std::shared_mutex> lock(mutex_);
  return std::find(known_.begin(), known_.end(), fn) != known_.end();
}

bool Dispatcher::chargeDispatch(gpusim::ThreadCtx& t, const void* fn) const {
  std::shared_lock<std::shared_mutex> lock(mutex_);
  const auto it = std::find(known_.begin(), known_.end(), fn);
  if (it != known_.end()) {
    // One compare per cascade entry traversed before the hit.
    const auto position =
        static_cast<uint64_t>(std::distance(known_.begin(), it));
    t.charge(gpusim::Counter::kDispatchCascade,
             t.cost().dispatchCascade + position * t.cost().aluOp);
    return true;
  }
  t.charge(gpusim::Counter::kDispatchIndirect, t.cost().dispatchIndirect);
  return false;
}

Dispatcher& Dispatcher::global() {
  static Dispatcher dispatcher;
  return dispatcher;
}

}  // namespace simtomp::omprt
