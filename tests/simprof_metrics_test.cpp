// Unit tests for the simprof metrics registry: catalog integrity,
// counter/gauge/histogram semantics, Prometheus and JSON exposition,
// and launch-path integration (metrics record even with profiling off).
#include <gtest/gtest.h>

#include <set>
#include <sstream>
#include <string>

#include "dsl/dsl.h"
#include "gpusim/device.h"
#include "simprof/metrics.h"

namespace simtomp::simprof {
namespace {

/// The registry is process-wide; every test starts it from zero.
class MetricsTest : public ::testing::Test {
 protected:
  void SetUp() override { MetricsRegistry::global().reset(); }
  void TearDown() override { MetricsRegistry::global().reset(); }
};

TEST(MetricsCatalogTest, NamesUniqueNonEmptyAndPrometheusLegal) {
  std::set<std::string> seen;
  for (const MetricDef& def : allMetricDefs()) {
    const std::string name(def.name);
    EXPECT_FALSE(name.empty());
    EXPECT_TRUE(seen.insert(name).second) << "duplicate metric " << name;
    EXPECT_EQ(name.rfind("simtomp_", 0), 0u)
        << name << " must carry the namespace prefix";
    for (char c : name) {
      EXPECT_TRUE((c >= 'a' && c <= 'z') || (c >= '0' && c <= '9') || c == '_')
          << name << " contains illegal character " << c;
    }
    EXPECT_FALSE(std::string(def.help).empty()) << name << " needs help text";
  }
  EXPECT_EQ(allMetricDefs().size(), MetricsRegistry::kNumMetrics);
}

TEST_F(MetricsTest, CounterAddAccumulates) {
  auto& reg = MetricsRegistry::global();
  EXPECT_EQ(reg.value(metric::kLaunchesTotal), 0u);
  reg.add(metric::kLaunchesTotal);
  reg.add(metric::kLaunchesTotal, 4);
  EXPECT_EQ(reg.value(metric::kLaunchesTotal), 5u);
}

TEST_F(MetricsTest, UnknownNameIsIgnored) {
  auto& reg = MetricsRegistry::global();
  reg.add("simtomp_no_such_metric");
  reg.gaugeMax("simtomp_no_such_metric", 7);
  reg.observe("simtomp_no_such_metric", 7);
  EXPECT_EQ(reg.value("simtomp_no_such_metric"), 0u);
}

TEST_F(MetricsTest, GaugeKeepsHighWaterMark) {
  auto& reg = MetricsRegistry::global();
  reg.gaugeMax(metric::kSharingHighWaterBytes, 128);
  reg.gaugeMax(metric::kSharingHighWaterBytes, 64);
  EXPECT_EQ(reg.value(metric::kSharingHighWaterBytes), 128u);
  reg.gaugeMax(metric::kSharingHighWaterBytes, 256);
  EXPECT_EQ(reg.value(metric::kSharingHighWaterBytes), 256u);
}

TEST_F(MetricsTest, HistogramCountsSumAndBuckets) {
  auto& reg = MetricsRegistry::global();
  reg.observe(metric::kLaunchCycles, 3);      // <= 4
  reg.observe(metric::kLaunchCycles, 100);    // <= 256
  reg.observe(metric::kLaunchCycles, 1u << 30);  // beyond 4^14 -> +Inf
  EXPECT_EQ(reg.value(metric::kLaunchCycles), 3u);
  EXPECT_EQ(reg.histogramSum(metric::kLaunchCycles),
            3u + 100u + (1u << 30));

  std::ostringstream out;
  reg.writePrometheus(out);
  const std::string text = out.str();
  EXPECT_NE(text.find("simtomp_launch_cycles_bucket{le=\"4\"} 1"),
            std::string::npos);
  EXPECT_NE(text.find("simtomp_launch_cycles_bucket{le=\"+Inf\"} 3"),
            std::string::npos);
  EXPECT_NE(text.find("simtomp_launch_cycles_count 3"), std::string::npos);
}

TEST_F(MetricsTest, PrometheusExpositionCoversTheCatalog) {
  std::ostringstream out;
  MetricsRegistry::global().writePrometheus(out);
  const std::string text = out.str();
  for (const MetricDef& def : allMetricDefs()) {
    const std::string name(def.name);
    EXPECT_NE(text.find("# HELP " + name + " "), std::string::npos) << name;
    EXPECT_NE(text.find("# TYPE " + name + " " +
                        std::string(metricTypeName(def.type))),
              std::string::npos)
        << name;
  }
}

TEST_F(MetricsTest, JsonSnapshotIsSortedAndDeterministic) {
  auto& reg = MetricsRegistry::global();
  reg.add(metric::kLaunchesTotal, 2);
  std::ostringstream a;
  std::ostringstream b;
  reg.writeJson(a);
  reg.writeJson(b);
  EXPECT_EQ(a.str(), b.str());
  // Keys appear in sorted order.
  std::istringstream lines(a.str());
  std::string prev;
  std::string line;
  while (std::getline(lines, line)) {
    const size_t open = line.find('"');
    if (open == std::string::npos) continue;
    const size_t close = line.find('"', open + 1);
    ASSERT_NE(close, std::string::npos);
    const std::string key = line.substr(open + 1, close - open - 1);
    EXPECT_LT(prev, key) << "keys must be strictly sorted";
    prev = key;
  }
  EXPECT_NE(a.str().find("\"simtomp_launches_total\": 2"), std::string::npos);
}

TEST_F(MetricsTest, ResetZeroesEverything) {
  auto& reg = MetricsRegistry::global();
  reg.add(metric::kLaunchesTotal, 3);
  reg.observe(metric::kLaunchCycles, 99);
  reg.gaugeMax(metric::kSharingHighWaterBytes, 7);
  reg.reset();
  EXPECT_EQ(reg.value(metric::kLaunchesTotal), 0u);
  EXPECT_EQ(reg.value(metric::kLaunchCycles), 0u);
  EXPECT_EQ(reg.histogramSum(metric::kLaunchCycles), 0u);
  EXPECT_EQ(reg.value(metric::kSharingHighWaterBytes), 0u);
}

TEST_F(MetricsTest, LaunchRecordsMetricsEvenWithProfilingOff) {
  auto& reg = MetricsRegistry::global();
  gpusim::Device dev;
  dsl::LaunchSpec spec;
  spec.numTeams = 2;
  spec.threadsPerTeam = 64;
  spec.simdlen = 1;
  spec.faultSpec = "off";
  spec.profile.mode = ProfileMode::kOff;
  auto stats = dsl::targetTeamsDistributeParallelFor(
      dev, spec, 128, [](dsl::OmpContext& ctx, uint64_t) {
        ctx.gpu().work(1);
      });
  ASSERT_TRUE(stats.isOk()) << stats.status().toString();
  EXPECT_EQ(reg.value(metric::kLaunchesTotal), 1u);
  EXPECT_EQ(reg.value(metric::kLaunchFailuresTotal), 0u);
  EXPECT_EQ(reg.value(metric::kLaunchCycles), 1u);
  EXPECT_EQ(reg.histogramSum(metric::kLaunchCycles), stats.value().cycles);
}

}  // namespace
}  // namespace simtomp::simprof
