#include "apps/su3.h"

#include "dsl/dsl.h"
#include "support/rng.h"

namespace simtomp::apps {

namespace {

using gpusim::GlobalSpan;
using omprt::OmpContext;

/// Flat index of the real part of element (i,j) of matrix `dir` at
/// `site`; the imaginary part follows at +1.
inline uint64_t su3Index(uint64_t site, uint32_t dir, uint32_t i,
                         uint32_t j) {
  return ((site * kSu3Dirs + dir) * kSu3Dim * kSu3Dim +
          static_cast<uint64_t>(i) * kSu3Dim + j) *
         2;
}

/// One output element C[site][dir][i][j] = sum_k A[..][i][k]*B[..][k][j]
/// over complex values: 3 complex multiply-adds.
inline void su3Element(OmpContext& ctx, const GlobalSpan<double>& a,
                       const GlobalSpan<double>& b,
                       const GlobalSpan<double>& c, uint64_t site,
                       uint64_t m) {
  gpusim::ThreadCtx& t = ctx.gpu();
  const auto dir = static_cast<uint32_t>(m / (kSu3Dim * kSu3Dim));
  const auto rem = static_cast<uint32_t>(m % (kSu3Dim * kSu3Dim));
  const uint32_t i = rem / kSu3Dim;
  const uint32_t j = rem % kSu3Dim;
  double cre = 0.0;
  double cim = 0.0;
  for (uint32_t k = 0; k < kSu3Dim; ++k) {
    const uint64_t ai = su3Index(site, dir, i, k);
    const uint64_t bi = su3Index(site, dir, k, j);
    const double are = a.get(t, ai);
    const double aim = a.get(t, ai + 1);
    const double bre = b.get(t, bi);
    const double bim = b.get(t, bi + 1);
    cre += are * bre - aim * bim;
    cim += are * bim + aim * bre;
    t.fma(4);  // complex multiply-accumulate
  }
  const uint64_t ci = su3Index(site, dir, i, j);
  c.set(t, ci, cre);
  c.set(t, ci + 1, cim);
}

}  // namespace

Su3Workload generateSu3(uint32_t numSites, uint64_t seed) {
  Rng rng(seed);
  Su3Workload w;
  w.numSites = numSites;
  const size_t doubles =
      static_cast<size_t>(numSites) * kSu3DoublesPerSite;
  w.a.resize(doubles);
  w.b.resize(doubles);
  for (double& v : w.a) v = rng.nextDouble(-1.0, 1.0);
  for (double& v : w.b) v = rng.nextDouble(-1.0, 1.0);
  return w;
}

std::vector<double> su3Reference(const Su3Workload& w) {
  std::vector<double> c(w.a.size(), 0.0);
  for (uint64_t site = 0; site < w.numSites; ++site) {
    for (uint32_t dir = 0; dir < kSu3Dirs; ++dir) {
      for (uint32_t i = 0; i < kSu3Dim; ++i) {
        for (uint32_t j = 0; j < kSu3Dim; ++j) {
          double cre = 0.0;
          double cim = 0.0;
          for (uint32_t k = 0; k < kSu3Dim; ++k) {
            const uint64_t ai = su3Index(site, dir, i, k);
            const uint64_t bi = su3Index(site, dir, k, j);
            cre += w.a[ai] * w.b[bi] - w.a[ai + 1] * w.b[bi + 1];
            cim += w.a[ai] * w.b[bi + 1] + w.a[ai + 1] * w.b[bi];
          }
          const uint64_t ci = su3Index(site, dir, i, j);
          c[ci] = cre;
          c[ci + 1] = cim;
        }
      }
    }
  }
  return c;
}

Result<AppRunResult> runSu3(gpusim::Device& device, const Su3Workload& w,
                            const Su3Options& options) {
  auto dev_a = toDevice<double>(device, w.a);
  if (!dev_a.isOk()) return dev_a.status();
  auto dev_b = toDevice<double>(device, w.b);
  if (!dev_b.isOk()) return dev_b.status();
  auto dev_c = zeroDevice<double>(device, w.a.size());
  if (!dev_c.isOk()) return dev_c.status();
  const GlobalSpan<double> a = dev_a.value();
  const GlobalSpan<double> b = dev_b.value();
  const GlobalSpan<double> c = dev_c.value();

  // Both teams and parallel regions run in SPMD mode (paper 6.3).
  dsl::LaunchSpec spec;
  spec.numTeams = options.numTeams;
  spec.threadsPerTeam = options.threadsPerTeam;
  spec.teamsMode = omprt::ExecMode::kSPMD;
  spec.parallelMode = omprt::ExecMode::kSPMD;
  spec.simdlen = options.simdlen;

  auto run = dsl::targetTeamsDistributeParallelFor(
      device, spec, w.numSites, [&](OmpContext& ctx, uint64_t site) {
        if (options.simdlen <= 1) {
          // Baseline: each OpenMP thread executes the 36-iteration
          // inner loop serially.
          for (uint64_t m = 0; m < kSu3InnerTrip; ++m) {
            ctx.gpu().work(2);
            su3Element(ctx, a, b, c, site, m);
          }
        } else {
          dsl::simd(ctx, kSu3InnerTrip,
                    [&a, &b, &c, site](OmpContext& inner, uint64_t m) {
                      su3Element(inner, a, b, c, site, m);
                    });
        }
      });

  AppRunResult result;
  if (run.isOk()) {
    result.stats = run.value();
    const std::vector<double> got = toHost(c);
    const std::vector<double> reference = su3Reference(w);
    result.maxError = maxAbsDiff(got, reference);
    result.verified = result.maxError < 1e-12;
  }
  (void)device.freeArray(a.data());
  (void)device.freeArray(b.data());
  (void)device.freeArray(c.data());
  if (!run.isOk()) return run.status();
  return result;
}

}  // namespace simtomp::apps
