// Unit tests for BlockEngine: barriers, lockstep timing semantics,
// shuffle/ballot intrinsics, and block time aggregation.
#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "gpusim/block.h"

namespace simtomp::gpusim {
namespace {

class BlockTest : public ::testing::Test {
 protected:
  BlockTest() : arch_(ArchSpec::testTiny()), mem_(1 << 20) {}

  std::unique_ptr<BlockEngine> makeBlock(uint32_t threads) {
    return std::make_unique<BlockEngine>(arch_, cost_, mem_, /*block_id=*/0,
                                         /*num_blocks=*/1, threads);
  }

  ArchSpec arch_;
  CostModel cost_;
  DeviceMemory mem_;
};

TEST_F(BlockTest, ThreadIdentity) {
  auto block = makeBlock(64);
  std::vector<uint32_t> warps;
  std::vector<uint32_t> lanes;
  ASSERT_TRUE(block
                  ->run([&](ThreadCtx& t) {
                    warps.push_back(t.warpId());
                    lanes.push_back(t.laneId());
                    EXPECT_EQ(t.numThreads(), 64u);
                    EXPECT_EQ(t.blockId(), 0u);
                    EXPECT_EQ(t.warpSize(), 32u);
                  })
                  .isOk());
  EXPECT_EQ(warps[0], 0u);
  EXPECT_EQ(warps[33], 1u);
  EXPECT_EQ(lanes[33], 1u);
}

TEST_F(BlockTest, BlockBarrierAlignsTimelines) {
  auto block = makeBlock(32);
  ASSERT_TRUE(block
                  ->run([&](ThreadCtx& t) {
                    // Thread i does i units of work, then a barrier.
                    t.work(t.threadId() * 10);
                    t.syncBlock();
                    // Everyone resumes at the slowest timeline.
                    EXPECT_GE(t.time(), 31u * 10u * t.cost().aluOp);
                  })
                  .isOk());
}

TEST_F(BlockTest, WarpBarrierOnlyAlignsMaskLanes) {
  auto block = makeBlock(32);
  const LaneMask lo = rangeMask(0, 8);
  ASSERT_TRUE(block
                  ->run([&](ThreadCtx& t) {
                    if (t.laneId() < 8) {
                      t.work(t.laneId() == 0 ? 1000 : 1);
                      t.syncWarp(lo);
                      EXPECT_GE(t.time(), 1000u);
                    } else {
                      t.work(1);
                      EXPECT_LT(t.time(), 100u);
                    }
                  })
                  .isOk());
}

TEST_F(BlockTest, DisjointGroupBarriersDoNotInterfere) {
  auto block = makeBlock(32);
  // Groups of 8: each group syncs independently many times.
  ASSERT_TRUE(block
                  ->run([&](ThreadCtx& t) {
                    const uint32_t group = t.laneId() / 8;
                    const LaneMask mask = rangeMask(group * 8, 8);
                    for (int round = 0; round < 5; ++round) {
                      t.work(group + 1);  // different speeds per group
                      t.syncWarp(mask);
                    }
                  })
                  .isOk());
}

TEST_F(BlockTest, RepeatedBarrierGenerationsAreIsolated) {
  auto block = makeBlock(32);
  std::vector<uint64_t> times(32, 0);
  ASSERT_TRUE(block
                  ->run([&](ThreadCtx& t) {
                    const LaneMask all = fullMask(32);
                    for (int round = 0; round < 20; ++round) {
                      // Lane 31 is the slow one each round.
                      t.work(t.laneId() == 31 ? 100 : 1);
                      t.syncWarp(all);
                    }
                    times[t.laneId()] = t.time();
                  })
                  .isOk());
  // All lanes end aligned to the slow lane's accumulated time.
  for (uint32_t lane = 0; lane < 32; ++lane) {
    EXPECT_EQ(times[lane], times[31]);
  }
}

TEST_F(BlockTest, MismatchedBarrierMasksDeadlock) {
  auto block = makeBlock(32);
  const Status status = block->run([&](ThreadCtx& t) {
    if (t.laneId() == 0) {
      t.syncWarp(rangeMask(0, 2));  // expects lane 1 to join; it never does
    }
  });
  ASSERT_FALSE(status.isOk());
  EXPECT_EQ(status.code(), StatusCode::kFailedPrecondition);
}

TEST_F(BlockTest, PartialLastWarpBarrierWorks) {
  // 40 threads: last warp has only 8 member lanes.
  auto block = makeBlock(40);
  ASSERT_TRUE(block
                  ->run([&](ThreadCtx& t) {
                    // Full-warp mask, but only member lanes participate.
                    t.syncWarp(fullMask(32));
                  })
                  .isOk());
}

TEST_F(BlockTest, UnchargedBarrierCostsNothing) {
  auto block = makeBlock(32);
  std::vector<uint64_t> busy(32, 0);
  ASSERT_TRUE(block
                  ->run([&](ThreadCtx& t) {
                    block->warpBarrier(t, fullMask(32), /*charged=*/false);
                    busy[t.laneId()] = t.busy();
                  })
                  .isOk());
  for (uint64_t b : busy) EXPECT_EQ(b, 0u);
}

TEST_F(BlockTest, ShuffleBroadcast) {
  auto block = makeBlock(32);
  ASSERT_TRUE(block
                  ->run([&](ThreadCtx& t) {
                    const double mine = static_cast<double>(t.laneId());
                    const double from3 = t.shfl(mine, 3, fullMask(32));
                    EXPECT_EQ(from3, 3.0);
                  })
                  .isOk());
}

TEST_F(BlockTest, ShuffleDownShiftsWithinMask) {
  auto block = makeBlock(32);
  ASSERT_TRUE(block
                  ->run([&](ThreadCtx& t) {
                    const int mine = static_cast<int>(t.laneId());
                    const int got = t.shflDown(mine, 1, fullMask(32));
                    if (t.laneId() < 31) {
                      EXPECT_EQ(got, mine + 1);
                    } else {
                      EXPECT_EQ(got, mine);  // edge lane keeps its own
                    }
                  })
                  .isOk());
}

TEST_F(BlockTest, ShuffleXorButterflyPartner) {
  auto block = makeBlock(32);
  ASSERT_TRUE(block
                  ->run([&](ThreadCtx& t) {
                    const uint32_t mine = t.laneId();
                    const uint32_t got = t.shflXor(mine, 4, fullMask(32));
                    EXPECT_EQ(got, mine ^ 4);
                  })
                  .isOk());
}

TEST_F(BlockTest, ShuffleWithinSubgroupMask) {
  auto block = makeBlock(32);
  ASSERT_TRUE(block
                  ->run([&](ThreadCtx& t) {
                    const uint32_t group = t.laneId() / 8;
                    const LaneMask mask = rangeMask(group * 8, 8);
                    const uint32_t base = group * 8;
                    const uint32_t got = t.shfl(t.laneId(), base, mask);
                    EXPECT_EQ(got, base);  // group-local broadcast
                  })
                  .isOk());
}

TEST_F(BlockTest, BallotCollectsPredicates) {
  auto block = makeBlock(32);
  ASSERT_TRUE(block
                  ->run([&](ThreadCtx& t) {
                    const LaneMask votes =
                        t.ballot(t.laneId() % 2 == 0, fullMask(32));
                    EXPECT_EQ(votes, 0x55555555u);
                  })
                  .isOk());
}

TEST_F(BlockTest, BallotScopedToMask) {
  auto block = makeBlock(32);
  ASSERT_TRUE(block
                  ->run([&](ThreadCtx& t) {
                    const uint32_t group = t.laneId() / 16;
                    const LaneMask mask = rangeMask(group * 16, 16);
                    const LaneMask votes = t.ballot(true, mask);
                    EXPECT_EQ(votes, mask);
                  })
                  .isOk());
}

TEST_F(BlockTest, BlockTimeIsMaxThreadTimeWhenLatencyBound) {
  auto block = makeBlock(32);
  ASSERT_TRUE(block
                  ->run([&](ThreadCtx& t) {
                    if (t.threadId() == 5) t.work(10000);
                  })
                  .isOk());
  EXPECT_EQ(block->maxThreadTime(), 10000u * cost_.aluOp);
  EXPECT_EQ(block->blockTime(), block->maxThreadTime());
}

TEST_F(BlockTest, BlockTimeIsIssueBoundWhenAllWarpsBusy) {
  // testTiny has 2 warp schedulers; 4 warps all doing equal work means
  // the issue bound (sum/2) exceeds any single timeline.
  auto block = makeBlock(128);
  ASSERT_TRUE(block->run([&](ThreadCtx& t) { t.work(1000); }).isOk());
  const uint64_t warp_busy = 1000 * cost_.aluOp;
  EXPECT_EQ(block->blockTime(), 4 * warp_busy / 2);
  EXPECT_EQ(block->busySum(), 128u * warp_busy);
}

TEST_F(BlockTest, CountersAggregateAcrossThreads) {
  auto block = makeBlock(64);
  ASSERT_TRUE(block
                  ->run([&](ThreadCtx& t) {
                    t.chargeGlobalLoad(2);
                    t.chargeSharedStore();
                  })
                  .isOk());
  EXPECT_EQ(block->counters().get(Counter::kGlobalLoad), 128u);
  EXPECT_EQ(block->counters().get(Counter::kSharedStore), 64u);
}

TEST_F(BlockTest, UserStateRoundTrips) {
  auto block = makeBlock(32);
  int state = 7;
  block->setUserState(&state);
  ASSERT_TRUE(block
                  ->run([&](ThreadCtx& t) {
                    auto* s = static_cast<int*>(t.block().userState());
                    EXPECT_EQ(*s, 7);
                  })
                  .isOk());
}

/// Lockstep-cost property over group sizes: after a masked barrier the
/// group's timelines agree and equal the slowest member.
class GroupBarrierProperty : public ::testing::TestWithParam<uint32_t> {};

TEST_P(GroupBarrierProperty, GroupTimelinesConverge) {
  const uint32_t g = GetParam();
  ArchSpec arch = ArchSpec::testTiny();
  CostModel cost;
  DeviceMemory mem(1 << 20);
  BlockEngine block(arch, cost, mem, 0, 1, 32);
  std::vector<uint64_t> times(32, 0);
  ASSERT_TRUE(block
                  .run([&](ThreadCtx& t) {
                    const uint32_t base = (t.laneId() / g) * g;
                    const LaneMask mask = rangeMask(base, g);
                    t.work(t.laneId() * 7);
                    t.syncWarp(mask);
                    times[t.laneId()] = t.time();
                  })
                  .isOk());
  for (uint32_t lane = 0; lane < 32; ++lane) {
    const uint32_t slowest = (lane / g) * g + (g - 1);
    EXPECT_EQ(times[lane], times[slowest]) << "lane " << lane;
  }
}

INSTANTIATE_TEST_SUITE_P(GroupSizes, GroupBarrierProperty,
                         ::testing::Values(2u, 4u, 8u, 16u, 32u));

}  // namespace
}  // namespace simtomp::gpusim
