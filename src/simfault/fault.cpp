#include "simfault/fault.h"

#include <algorithm>
#include <cstdlib>

#include "simprof/metrics.h"

namespace simtomp::simfault {
namespace {

struct KindName {
  FaultKind kind;
  std::string_view name;
};

constexpr KindName kKindNames[] = {
    {FaultKind::kDeviceLostPre, "device_lost_pre"},
    {FaultKind::kDeviceLostPost, "device_lost_post"},
    {FaultKind::kTrap, "trap"},
    {FaultKind::kLivelock, "livelock"},
    {FaultKind::kBarrierCorrupt, "barrier_corrupt"},
    {FaultKind::kSharingExhausted, "sharing_exhausted"},
};

bool parseUint64(std::string_view text, uint64_t* out) {
  if (text.empty()) return false;
  uint64_t value = 0;
  for (char c : text) {
    if (c < '0' || c > '9') return false;
    value = value * 10 + static_cast<uint64_t>(c - '0');
  }
  *out = value;
  return true;
}

Status planError(std::string detail) {
  return Status::invalidArgument("fault plan: " + std::move(detail));
}

/// Parse one ';'-separated entry: kind[:key=value]...
Result<FaultSpec> parseEntry(std::string_view entry) {
  FaultSpec spec;
  size_t pos = entry.find(':');
  const std::string_view kind_text = entry.substr(0, pos);
  bool found = false;
  for (const KindName& kn : kKindNames) {
    if (kind_text == kn.name) {
      spec.kind = kn.kind;
      found = true;
      break;
    }
  }
  if (!found) {
    return planError("unknown fault kind '" + std::string(kind_text) + "'");
  }
  while (pos != std::string_view::npos) {
    const size_t start = pos + 1;
    pos = entry.find(':', start);
    const std::string_view option =
        entry.substr(start, pos == std::string_view::npos ? pos : pos - start);
    const size_t eq = option.find('=');
    if (eq == std::string_view::npos) {
      return planError("option '" + std::string(option) +
                       "' is not key=value");
    }
    const std::string_view key = option.substr(0, eq);
    const std::string_view value = option.substr(eq + 1);
    uint64_t number = 0;
    if (key == "when") {
      if (value == "any") {
        spec.when = FaultWhen::kAny;
      } else if (value == "simd") {
        spec.when = FaultWhen::kSimd;
      } else {
        return planError("when= expects any|simd, got '" + std::string(value) +
                         "'");
      }
      continue;
    }
    if (!parseUint64(value, &number)) {
      return planError("option '" + std::string(key) + "=" +
                       std::string(value) + "' expects a number");
    }
    if (key == "block") {
      spec.block = static_cast<uint32_t>(number);
    } else if (key == "step") {
      spec.step = number;
    } else if (key == "count") {
      spec.count = static_cast<uint32_t>(number);
    } else if (key == "after") {
      spec.afterLaunch = static_cast<uint32_t>(number);
    } else {
      return planError("unknown option '" + std::string(key) + "'");
    }
  }
  return spec;
}

void appendOption(std::string* out, const char* key, uint64_t value) {
  *out += ':';
  *out += key;
  *out += '=';
  *out += std::to_string(value);
}

}  // namespace

std::string_view faultKindName(FaultKind kind) {
  for (const KindName& kn : kKindNames) {
    if (kn.kind == kind) return kn.name;
  }
  return "unknown";
}

std::string_view faultWhenName(FaultWhen when) {
  return when == FaultWhen::kSimd ? "simd" : "any";
}

std::string FaultSpec::canonical() const {
  std::string out(faultKindName(kind));
  if (block != 0) appendOption(&out, "block", block);
  if (step != 1) appendOption(&out, "step", step);
  if (when != FaultWhen::kAny) {
    out += ":when=";
    out += faultWhenName(when);
  }
  if (count != 1) appendOption(&out, "count", count);
  if (afterLaunch != 0) appendOption(&out, "after", afterLaunch);
  return out;
}

std::string FaultPlan::canonical() const {
  if (faults.empty()) return explicitOff ? "off" : "";
  std::string out;
  for (const FaultSpec& spec : faults) {
    if (!out.empty()) out += ';';
    out += spec.canonical();
  }
  return out;
}

Result<FaultPlan> FaultPlan::parse(std::string_view text) {
  FaultPlan plan;
  if (text.empty()) return plan;
  if (text == "off" || text == "none" || text == "0") {
    plan.explicitOff = true;
    return plan;
  }
  size_t start = 0;
  while (start <= text.size()) {
    size_t end = text.find(';', start);
    if (end == std::string_view::npos) end = text.size();
    const std::string_view entry = text.substr(start, end - start);
    if (!entry.empty()) {
      Result<FaultSpec> spec = parseEntry(entry);
      if (!spec.isOk()) return spec.status();
      plan.faults.push_back(spec.value());
    }
    start = end + 1;
  }
  if (plan.faults.empty()) return planError("no entries in non-empty plan");
  return plan;
}

FaultResolution resolveFaultSpec(const std::string& requested) {
  FaultResolution resolution;
  if (!requested.empty()) {
    resolution.source = "explicit";
    resolution.spec =
        (requested == "off" || requested == "none") ? "" : requested;
    return resolution;
  }
  if (const char* env = std::getenv("SIMTOMP_FAULT")) {
    resolution.envValue = env;
    resolution.source = "SIMTOMP_FAULT";
    if (resolution.envValue != "off" && resolution.envValue != "none" &&
        resolution.envValue != "0") {
      resolution.spec = resolution.envValue;
    }
    return resolution;
  }
  return resolution;
}

WatchdogResolution resolveWatchdogSteps(uint64_t requested) {
  WatchdogResolution resolution;
  if (requested == kWatchdogOff) {
    resolution.source = "explicit";
    resolution.steps = 0;
    return resolution;
  }
  if (requested != 0) {
    resolution.source = "explicit";
    resolution.steps = requested;
    return resolution;
  }
  if (const char* env = std::getenv("SIMTOMP_WATCHDOG")) {
    resolution.envValue = env;
    resolution.source = "SIMTOMP_WATCHDOG";
    uint64_t steps = 0;
    if (resolution.envValue == "off" ||
        (parseUint64(resolution.envValue, &steps) && steps == 0)) {
      resolution.steps = 0;
    } else if (parseUint64(resolution.envValue, &steps)) {
      resolution.steps = steps;
    } else {
      resolution.steps = kDefaultWatchdogSteps;  // unrecognized: default on
    }
    return resolution;
  }
  resolution.steps = kDefaultWatchdogSteps;
  return resolution;
}

const BlockFaultArm* LaunchArm::forBlock(uint32_t block) const {
  const auto it = std::lower_bound(
      blockFaults.begin(), blockFaults.end(), block,
      [](const auto& entry, uint32_t b) { return entry.first < b; });
  if (it == blockFaults.end() || it->first != block) return nullptr;
  return &it->second;
}

Result<LaunchArm> Injector::arm(const FaultConfig& config,
                                uint32_t numBlocks) {
  const FaultResolution resolved = resolveFaultSpec(config.spec);
  Result<FaultPlan> parsed = FaultPlan::parse(resolved.spec);
  if (!parsed.isOk()) return parsed.status();
  const FaultPlan& plan = parsed.value();

  const uint64_t attempt = launch_ordinal_++;
  LaunchArm arm;
  for (const FaultSpec& spec : plan.faults) {
    if (spec.when == FaultWhen::kSimd && !config.simdActive) continue;
    if (attempt < spec.afterLaunch) continue;
    uint64_t& fired = fired_[spec.canonical()];
    if (spec.count != 0 && fired >= spec.count) continue;
    ++fired;
    simprof::MetricsRegistry::global().add(
        simprof::metric::kFaultInjectionsTotal);
    switch (spec.kind) {
      case FaultKind::kDeviceLostPre:
        arm.lostPre = true;
        break;
      case FaultKind::kDeviceLostPost:
        arm.lostPost = true;
        break;
      case FaultKind::kTrap:
      case FaultKind::kLivelock:
      case FaultKind::kBarrierCorrupt:
      case FaultKind::kSharingExhausted: {
        if (spec.block >= numBlocks) continue;  // armed but out of range
        auto it = std::lower_bound(
            arm.blockFaults.begin(), arm.blockFaults.end(), spec.block,
            [](const auto& entry, uint32_t b) { return entry.first < b; });
        if (it == arm.blockFaults.end() || it->first != spec.block) {
          it = arm.blockFaults.insert(it, {spec.block, BlockFaultArm{}});
        }
        BlockFaultArm& block_arm = it->second;
        const uint64_t step = spec.step == 0 ? 1 : spec.step;
        if (spec.kind == FaultKind::kTrap) {
          block_arm.trap = true;
          block_arm.trapStep = step;
        } else if (spec.kind == FaultKind::kLivelock) {
          block_arm.livelock = true;
          block_arm.livelockArrival = step;
        } else if (spec.kind == FaultKind::kBarrierCorrupt) {
          block_arm.barrierCorrupt = true;
          block_arm.corruptArrival = step;
        } else {
          block_arm.sharingExhausted = true;
          block_arm.sharingBegin = step;
        }
        break;
      }
    }
  }
  return arm;
}

}  // namespace simtomp::simfault
