#include "gpusim/stats.h"

#include <cstdio>

namespace simtomp::gpusim {

std::string_view counterName(Counter c) {
  switch (c) {
    case Counter::kAluWork: return "alu_work";
    case Counter::kGlobalLoad: return "global_load";
    case Counter::kGlobalStore: return "global_store";
    case Counter::kSharedLoad: return "shared_load";
    case Counter::kSharedStore: return "shared_store";
    case Counter::kLocalAccess: return "local_access";
    case Counter::kAtomicRmw: return "atomic_rmw";
    case Counter::kWarpSync: return "warp_sync";
    case Counter::kBlockSync: return "block_sync";
    case Counter::kStatePoll: return "state_poll";
    case Counter::kPayloadArgCopy: return "payload_arg_copy";
    case Counter::kDispatchCascade: return "dispatch_cascade";
    case Counter::kDispatchIndirect: return "dispatch_indirect";
    case Counter::kShuffle: return "shuffle";
    case Counter::kGlobalAlloc: return "global_alloc";
    case Counter::kSharingSpaceOverflow: return "sharing_space_overflow";
    case Counter::kParallelRegion: return "parallel_region";
    case Counter::kSimdLoop: return "simd_loop";
    case Counter::kWorkshareLoop: return "workshare_loop";
    case Counter::kSimdLaneRounds: return "simd_lane_rounds";
    case Counter::kSimdIdleLaneRounds: return "simd_idle_lane_rounds";
    case Counter::kCount: break;
  }
  return "unknown";
}

std::string_view counterDescription(Counter c) {
  switch (c) {
    case Counter::kAluWork: return "ALU operations charged via work()/fma()";
    case Counter::kGlobalLoad: return "Global-memory loads";
    case Counter::kGlobalStore: return "Global-memory stores";
    case Counter::kSharedLoad: return "Shared-memory loads";
    case Counter::kSharedStore: return "Shared-memory stores";
    case Counter::kLocalAccess: return "Thread-local (register/stack) accesses";
    case Counter::kAtomicRmw: return "Atomic read-modify-write operations";
    case Counter::kWarpSync: return "Warp-level barrier arrivals";
    case Counter::kBlockSync: return "Block-wide barrier arrivals";
    case Counter::kStatePoll:
      return "State-machine polls by parked worker threads";
    case Counter::kPayloadArgCopy:
      return "Outlined-region payload pointers copied";
    case Counter::kDispatchCascade:
      return "Outlined calls resolved through the if-cascade";
    case Counter::kDispatchIndirect:
      return "Outlined calls paying an indirect branch";
    case Counter::kShuffle: return "Warp shuffle/ballot exchanges";
    case Counter::kGlobalAlloc: return "Device global-memory allocations";
    case Counter::kSharingSpaceOverflow:
      return "Sharing-space overflows to global memory";
    case Counter::kParallelRegion: return "Parallel regions entered";
    case Counter::kSimdLoop: return "simd loops executed";
    case Counter::kWorkshareLoop: return "For-worksharing loops executed";
    case Counter::kSimdLaneRounds:
      return "Lane-rounds occupied by simd loops (lanes x rounds)";
    case Counter::kSimdIdleLaneRounds:
      return "Of those, lane-rounds with no iteration (thread waste)";
    case Counter::kCount: break;
  }
  return "unknown";
}

Counter counterFromName(std::string_view name) {
  for (size_t i = 0; i < kNumCounters; ++i) {
    const auto c = static_cast<Counter>(i);
    if (counterName(c) == name) return c;
  }
  return Counter::kCount;
}

std::string KernelStats::csvHeader() {
  std::string out =
      "cycles,busy_cycles,max_thread_cycles,blocks,threads_per_block,waves,"
      "peak_shared_bytes,warp_occupancy";
  for (size_t i = 0; i < kNumCounters; ++i) {
    out += ",";
    out += counterName(static_cast<Counter>(i));
  }
  return out;
}

std::string KernelStats::csvRow() const {
  char buf[192];
  std::snprintf(buf, sizeof(buf), "%llu,%llu,%llu,%u,%u,%u,%llu,%.4f",
                static_cast<unsigned long long>(cycles),
                static_cast<unsigned long long>(busyCycles),
                static_cast<unsigned long long>(maxThreadCycles), numBlocks,
                threadsPerBlock, waves,
                static_cast<unsigned long long>(peakSharedBytes),
                occupancy.warpOccupancy);
  std::string out(buf);
  for (size_t i = 0; i < kNumCounters; ++i) {
    std::snprintf(buf, sizeof(buf), ",%llu",
                  static_cast<unsigned long long>(counters.values[i]));
    out += buf;
  }
  return out;
}

std::string KernelStats::toJson() const {
  char buf[128];
  std::string out = "{\n";
  const auto field = [&out, &buf](const char* name, uint64_t value,
                                  bool comma = true) {
    std::snprintf(buf, sizeof(buf), "  \"%s\": %llu%s\n", name,
                  static_cast<unsigned long long>(value), comma ? "," : "");
    out += buf;
  };
  field("cycles", cycles);
  field("busy_cycles", busyCycles);
  field("max_thread_cycles", maxThreadCycles);
  field("blocks", numBlocks);
  field("threads_per_block", threadsPerBlock);
  field("waves", waves);
  field("peak_shared_bytes", peakSharedBytes);
  std::snprintf(buf, sizeof(buf), "  \"warp_occupancy\": %.4f,\n",
                occupancy.warpOccupancy);
  out += buf;
  out += "  \"counters\": {\n";
  for (size_t i = 0; i < kNumCounters; ++i) {
    std::snprintf(buf, sizeof(buf), "    \"%s\": %llu%s\n",
                  counterName(static_cast<Counter>(i)).data(),
                  static_cast<unsigned long long>(counters.values[i]),
                  i + 1 < kNumCounters ? "," : "");
    out += buf;
  }
  out += "  }\n}\n";
  return out;
}

std::string KernelStats::summary() const {
  char buf[256];
  std::snprintf(buf, sizeof(buf),
                "cycles=%llu busy=%llu maxThread=%llu blocks=%u tpb=%u "
                "waves=%u",
                static_cast<unsigned long long>(cycles),
                static_cast<unsigned long long>(busyCycles),
                static_cast<unsigned long long>(maxThreadCycles), numBlocks,
                threadsPerBlock, waves);
  std::string out(buf);
  for (size_t i = 0; i < kNumCounters; ++i) {
    if (counters.values[i] != 0) {
      std::snprintf(buf, sizeof(buf), " %s=%llu",
                    counterName(static_cast<Counter>(i)).data(),
                    static_cast<unsigned long long>(counters.values[i]));
      out += buf;
    }
  }
  return out;
}

}  // namespace simtomp::gpusim
