// Request-scoped tracing and the flight recorder (src/simserve/
// trace.h): zero perturbation of the service's byte-identity surfaces,
// byte-identical trace dumps across reruns / worker counts / shard
// counts, timeline and flight-recorder content, ring bounding, the
// failure-triggered auto-dump and the Perfetto export.
#include <gtest/gtest.h>

#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "gpusim/trace.h"
#include "hostrt/device_manager.h"
#include "simserve/mix.h"
#include "simserve/service.h"

namespace simtomp::simserve {
namespace {

using gpusim::ArchSpec;

/// The same pressured mix the determinism suite replays: shedding,
/// batching and device-lost migrations all occur.
Mix pressuredMix() {
  MixProfile profile;
  profile.seed = 11;
  profile.tenants = 4;
  profile.requests = 96;
  profile.pumpEvery = 32;
  profile.faultPermille = 20;
  profile.maxInFlight = 8;
  profile.maxQueued = 6;
  return generateMix(profile);
}

omprt::TargetConfig plainConfig(const std::string& fault = "") {
  omprt::TargetConfig config;
  config.teamsMode = omprt::ExecMode::kSPMD;
  config.numTeams = 1;
  config.threadsPerTeam = 64;
  config.check.mode = simcheck::CheckMode::kOff;
  config.fault.spec = fault.empty() ? "off" : fault;
  return config;
}

/// Replay `mix` (tracing per `trace`) and return dumpStats().
std::string replayStats(const Mix& mix, bool trace, uint32_t workers,
                        uint32_t shards) {
  std::vector<ArchSpec> specs(4, ArchSpec::testTiny());
  hostrt::DeviceManager mgr(std::move(specs));
  ServiceConfig config;
  config.shardCount = shards;
  config.maxQueued = 24;
  config.trace.enabled = trace;
  LaunchService service(mgr, config);
  ReplayOptions options;
  options.hostWorkers = workers;
  const Result<ReplayReport> report = replayMix(service, mix, options);
  EXPECT_TRUE(report.isOk()) << report.status().toString();
  std::ostringstream out;
  service.dumpStats(out);
  return out.str();
}

/// Replay with tracing on and return every canonical dump surface
/// concatenated: timelines, SLO burn, histograms, flight recorder.
std::string traceSurfaces(const Mix& mix, uint32_t workers,
                          uint32_t shards) {
  std::vector<ArchSpec> specs(4, ArchSpec::testTiny());
  hostrt::DeviceManager mgr(std::move(specs));
  ServiceConfig config;
  config.shardCount = shards;
  config.maxQueued = 24;
  config.trace.enabled = true;
  LaunchService service(mgr, config);
  ReplayOptions options;
  options.hostWorkers = workers;
  const Result<ReplayReport> report = replayMix(service, mix, options);
  EXPECT_TRUE(report.isOk()) << report.status().toString();
  std::ostringstream out;
  ServiceTracer* tracer = service.tracer();
  EXPECT_NE(tracer, nullptr);
  tracer->dumpTimelines(out, /*physical=*/false);
  tracer->dumpTenantSummary(out);
  tracer->dumpHistograms(out);
  tracer->dumpFlight(out, /*physical=*/false);
  return out.str();
}

TEST(ServeTraceTest, TracingDoesNotPerturbTheStatsDump) {
  const Mix mix = pressuredMix();
  const std::string off = replayStats(mix, /*trace=*/false, 1, 4);
  const std::string on = replayStats(mix, /*trace=*/true, 1, 4);
  EXPECT_EQ(off, on) << "tracing must be purely observational";
}

TEST(ServeTraceTest, DumpsAreByteIdenticalAcrossRerunsWorkersShards) {
  const Mix mix = pressuredMix();
  const std::string base = traceSurfaces(mix, 1, 4);
  // The surfaces must have real content to make the comparison mean
  // anything.
  EXPECT_NE(base.find("# simserve trace v1"), std::string::npos);
  EXPECT_NE(base.find("# simserve slo burn v1"), std::string::npos);
  EXPECT_NE(base.find("# simserve flight recorder v1"), std::string::npos);
  EXPECT_NE(base.find("migrated hop="), std::string::npos)
      << "the pressured mix must actually migrate requests";
  EXPECT_EQ(base, traceSurfaces(mix, 1, 4));   // rerun
  EXPECT_EQ(base, traceSurfaces(mix, 8, 4));   // worker count
  EXPECT_EQ(base, traceSurfaces(mix, 1, 13));  // prime shard count
  EXPECT_EQ(base, traceSurfaces(mix, 8, 13));  // both axes
}

TEST(ServeTraceTest, CanonicalSurfacesCarryNoPhysicalIdentity) {
  const std::string base = traceSurfaces(pressuredMix(), 1, 4);
  // Device/shard identities are physical detail: they must never leak
  // into the canonical (byte-compare) dump mode.
  EXPECT_EQ(base.find("device="), std::string::npos);
  EXPECT_EQ(base.find("shard="), std::string::npos);
}

TEST(ServeTraceTest, TimelineRecordsBatchRolesAndDeadlineVerdicts) {
  hostrt::DeviceManager mgr({ArchSpec::testTiny(), ArchSpec::testTiny()});
  ServiceConfig config;
  config.trace.enabled = true;
  LaunchService service(mgr, config);
  TenantSpec spec;
  spec.name = "a";
  spec.deadlineCycles = uint64_t{1} << 20;
  ASSERT_TRUE(service.registerTenant(spec).isOk());
  for (int i = 0; i < 3; ++i) {
    ASSERT_TRUE(service
                    .submit("a", plainConfig(), [](omprt::OmpContext&) {},
                            "k")
                    .isOk());
  }
  service.pump();
  ASSERT_TRUE(service.drain().isOk());

  ServiceTracer* tracer = service.tracer();
  ASSERT_NE(tracer, nullptr);
  EXPECT_EQ(tracer->requestCount(), 3u);

  std::ostringstream leader;
  ASSERT_TRUE(tracer->dumpTimeline(leader, 0, /*physical=*/false).isOk());
  EXPECT_NE(leader.str().find("dispatched role=leader"), std::string::npos);
  EXPECT_NE(leader.str().find("verdict=hit"), std::string::npos);
  EXPECT_NE(leader.str().find("outcome=done status=OK"), std::string::npos);

  std::ostringstream follower;
  ASSERT_TRUE(tracer->dumpTimeline(follower, 2, /*physical=*/false).isOk());
  EXPECT_NE(follower.str().find("dispatched role=follower"),
            std::string::npos);

  std::ostringstream flight;
  tracer->dumpFlight(flight, /*physical=*/false);
  EXPECT_NE(flight.str().find("batch fp=k size=3"), std::string::npos);

  std::ostringstream none;
  EXPECT_FALSE(tracer->dumpTimeline(none, 99, /*physical=*/false).isOk());
}

TEST(ServeTraceTest, MigrationShowsUpInTimelineAndFlightRing) {
  hostrt::DeviceManager mgr({ArchSpec::testTiny(), ArchSpec::testTiny()});
  ServiceConfig config;
  config.trace.enabled = true;
  LaunchService service(mgr, config);
  ASSERT_TRUE(service.registerTenant({"a"}).isOk());
  ASSERT_TRUE(service
                  .submit("a", plainConfig("device_lost_post:count=1"),
                          [](omprt::OmpContext&) {}, "k")
                  .isOk());
  ASSERT_TRUE(service.runToCompletion().isOk());

  ServiceTracer* tracer = service.tracer();
  ASSERT_NE(tracer, nullptr);
  std::ostringstream timeline;
  ASSERT_TRUE(tracer->dumpTimeline(timeline, 0, /*physical=*/false).isOk());
  EXPECT_NE(timeline.str().find("migrated hop=1 backoff=64"),
            std::string::npos);
  EXPECT_NE(timeline.str().find("outcome=done"), std::string::npos);

  std::ostringstream canonical;
  tracer->dumpFlight(canonical, /*physical=*/false);
  EXPECT_NE(canonical.str().find("breaker_trip tenant=a"),
            std::string::npos);
  EXPECT_NE(canonical.str().find("migrate req=0 hop=1"), std::string::npos);
  EXPECT_EQ(canonical.str().find("from_device="), std::string::npos);

  // Physical mode prints the device detail the canonical mode withheld.
  std::ostringstream physical;
  tracer->dumpFlight(physical, /*physical=*/true);
  EXPECT_NE(physical.str().find("from_device="), std::string::npos);
  EXPECT_NE(physical.str().find("# physical ring"), std::string::npos);
}

TEST(ServeTraceTest, RingCapacityBoundsTheRecorderAndCountsDrops) {
  hostrt::DeviceManager mgr({ArchSpec::testTiny()});
  ServiceConfig config;
  config.trace.enabled = true;
  config.trace.ringCapacity = 4;
  LaunchService service(mgr, config);
  ASSERT_TRUE(service.registerTenant({"a"}).isOk());
  for (int i = 0; i < 8; ++i) {
    ASSERT_TRUE(service
                    .submit("a", plainConfig(), [](omprt::OmpContext&) {},
                            "k" + std::to_string(i))
                    .isOk());
  }
  ASSERT_TRUE(service.runToCompletion().isOk());
  const simprof::FlightRecorder& ring = service.tracer()->canonicalRing();
  EXPECT_EQ(ring.capacity(), 4u);
  EXPECT_LE(ring.size(), 4u);
  EXPECT_GT(ring.dropped(), 0u);
  EXPECT_EQ(ring.recorded(), ring.size() + ring.dropped());
  std::ostringstream out;
  service.tracer()->dumpFlight(out, /*physical=*/false);
  EXPECT_NE(out.str().find("dropped="), std::string::npos);
}

TEST(ServeTraceTest, FailedLaunchTriggersTheAutoDump) {
  const std::string path = testing::TempDir() + "simserve_trace_auto.txt";
  std::remove(path.c_str());
  hostrt::DeviceManager mgr({ArchSpec::testTiny()});
  ServiceConfig config;
  config.trace.enabled = true;
  config.trace.autoDumpPath = path;
  LaunchService service(mgr, config);
  ASSERT_TRUE(service.registerTenant({"a"}).isOk());
  // A trap fault fails only its own launch (INTERNAL): the retirement
  // is a failure trigger.
  ASSERT_TRUE(service
                  .submit("a", plainConfig("trap:step=1:count=1"),
                          [](omprt::OmpContext&) {}, "k")
                  .isOk());
  ASSERT_TRUE(service.runToCompletion().isOk());
  std::ifstream in(path);
  ASSERT_TRUE(in.good()) << "auto-dump file was not written";
  std::stringstream content;
  content << in.rdbuf();
  EXPECT_NE(content.str().find(
                "# simserve flight recorder v1 trigger=failed_launch"),
            std::string::npos);
  EXPECT_NE(content.str().find("retire req=0 outcome=failed"),
            std::string::npos);
  std::remove(path.c_str());
}

TEST(ServeTraceTest, PerfettoExportNamesTenantTracks) {
  hostrt::DeviceManager mgr({ArchSpec::testTiny()});
  ServiceConfig config;
  config.trace.enabled = true;
  LaunchService service(mgr, config);
  ASSERT_TRUE(service.registerTenant({"alpha"}).isOk());
  ASSERT_TRUE(service.registerTenant({"beta"}).isOk());
  for (const char* tenant : {"alpha", "beta", "alpha"}) {
    ASSERT_TRUE(service
                    .submit(tenant, plainConfig(),
                            [](omprt::OmpContext&) {}, "k")
                    .isOk());
  }
  ASSERT_TRUE(service.runToCompletion().isOk());
  gpusim::TraceRecorder recorder;
  service.tracer()->exportPerfetto(recorder);
  std::ostringstream out;
  recorder.writeChromeJson(out);
  const std::string json = out.str();
  EXPECT_NE(json.find("\"name\": \"alpha\""), std::string::npos);
  EXPECT_NE(json.find("\"name\": \"beta\""), std::string::npos);
  EXPECT_NE(json.find("req 0 k"), std::string::npos);
  // The export is itself deterministic: a second export matches.
  gpusim::TraceRecorder again;
  service.tracer()->exportPerfetto(again);
  std::ostringstream out2;
  again.writeChromeJson(out2);
  EXPECT_EQ(json, out2.str());
}

TEST(ServeTraceTest, TracerAbsentWhenDisabled) {
  hostrt::DeviceManager mgr({ArchSpec::testTiny()});
  LaunchService service(mgr);
  EXPECT_EQ(service.tracer(), nullptr);
}

}  // namespace
}  // namespace simtomp::simserve
