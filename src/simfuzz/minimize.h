// simfuzz minimizer: grammar-aware greedy shrinking.
//
// Given a failing program and a predicate that re-runs the full
// differential matrix, repeatedly try a fixed, ordered list of
// simplification candidates (simpler body, neutral schedule, SPMD
// modes, smaller launch, halved/decremented trips, unit coefficients)
// and keep the first candidate that still fails. Every accepted step
// re-verified the failure, so the final program is a true
// counterexample; because the candidate order is fixed and every
// candidate derives from the current program by pure field edits +
// normalize(), minimization is deterministic — the same input shrinks
// to the same output on every rerun and worker count.
#pragma once

#include <cstdint>
#include <functional>

#include "simfuzz/program.h"

namespace simtomp::simfuzz {

/// Re-runs the oracle for a candidate: true = still fails (the bug is
/// preserved), false = the candidate lost the bug and is rejected.
using FailPredicate = std::function<bool(const FuzzProgram&)>;

struct MinimizeResult {
  /// The shrunk program (== the input when nothing could be removed).
  FuzzProgram program;
  /// Accepted shrink steps.
  uint32_t steps = 0;
  /// Candidates tried (each one predicate evaluation).
  uint32_t tested = 0;
};

/// Greedy fixpoint: restart the candidate ladder after every accepted
/// step until no candidate still fails. `failing` must satisfy
/// `stillFails` on entry; if it does not, the input is returned with
/// zero steps.
[[nodiscard]] MinimizeResult minimizeProgram(const FuzzProgram& failing,
                                             const FailPredicate& stillFails);

}  // namespace simtomp::simfuzz
