#include "simprof/metrics.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>
#include <vector>

#include "support/log.h"

namespace simtomp::simprof {

namespace {

constexpr MetricDef kCatalog[] = {
    {metric::kLaunchesTotal, MetricType::kCounter,
     "Kernel launches attempted on any simulated device"},
    {metric::kLaunchFailuresTotal, MetricType::kCounter,
     "Kernel launches that returned a non-ok status"},
    {metric::kLaunchCycles, MetricType::kHistogram,
     "Modeled end-to-end cycles of successful launches"},
    {metric::kCheckFindingsTotal, MetricType::kCounter,
     "simcheck diagnostics reported across all launches"},
    {metric::kFaultInjectionsTotal, MetricType::kCounter,
     "Faults armed by the simfault injector (per launch plan hit)"},
    {metric::kWatchdogTimeoutsTotal, MetricType::kCounter,
     "Launches killed by the per-block watchdog step budget"},
    {metric::kTuneCacheHitsTotal, MetricType::kCounter,
     "simtune cache lookups that found a usable entry"},
    {metric::kTuneCacheMissesTotal, MetricType::kCounter,
     "simtune cache lookups that missed"},
    {metric::kTuneTrialsTotal, MetricType::kCounter,
     "Trial launches executed by simtune search strategies"},
    {metric::kResilienceRetriesTotal, MetricType::kCounter,
     "Same-shape retry attempts by the resilient launch path"},
    {metric::kResilienceModeFallbacksTotal, MetricType::kCounter,
     "SIMD -> generic mode fallbacks by the resilient launch path"},
    {metric::kResilienceHostSerialTotal, MetricType::kCounter,
     "Host-serial reference executions (last resilience rung)"},
    {metric::kSharingHighWaterBytes, MetricType::kGauge,
     "High-water mark of bytes staged through any sharing space"},
    {metric::kSharingOverflowsTotal, MetricType::kCounter,
     "Sharing-space overflows to global memory"},
    {metric::kServeRequestsTotal, MetricType::kCounter,
     "Launch requests submitted to any simserve LaunchService"},
    {metric::kServeAcceptedTotal, MetricType::kCounter,
     "Launch requests admitted past quota and queue bounds"},
    {metric::kServeShedTotal, MetricType::kCounter,
     "Launch requests shed (RESOURCE_EXHAUSTED) by admission control"},
    {metric::kServeBatchesTotal, MetricType::kCounter,
     "Same-kernel batches dispatched by the launch service"},
    {metric::kServeMigrationsTotal, MetricType::kCounter,
     "Requests migrated off a faulted device to a healthy shard"},
    {metric::kServeQueueDepthPeak, MetricType::kGauge,
     "High-water mark of the launch service's logical queue depth"},
    {metric::kServeInFlightPeak, MetricType::kGauge,
     "High-water mark of dispatched-not-retired launch requests"},
    {metric::kServeLatencyCycles, MetricType::kHistogram,
     "Modeled request latency (queue model + execution cycles)"},
    {metric::kServeDeadlineShedTotal, MetricType::kCounter,
     "Requests shed at admission because the modeled queue-ahead cost "
     "exceeded their deadline budget"},
    {metric::kServeDeadlineHitTotal, MetricType::kCounter,
     "Completed requests whose modeled latency met their deadline"},
    {metric::kServeDeadlineMissTotal, MetricType::kCounter,
     "Completed requests whose modeled latency exceeded their deadline"},
    {metric::kServeRetryBackoffCycles, MetricType::kHistogram,
     "Modeled backoff cycles charged to re-dispatched requests"},
    {metric::kServeRetriesExhaustedTotal, MetricType::kCounter,
     "Requests failed because their tenant retry budget ran out"},
    {metric::kServeBreakerTripsTotal, MetricType::kCounter,
     "Circuit-breaker trips (one per request stranded by a fault)"},
    {metric::kServeBrownoutShedTotal, MetricType::kCounter,
     "Requests shed by brownout (queue past its high-water mark)"},
    {metric::kServeChaosViolationsTotal, MetricType::kCounter,
     "Service invariant violations found by chaos campaigns"},
    {metric::kServeTraceEventsTotal, MetricType::kCounter,
     "Structured events appended to serving flight-recorder rings"},
    {metric::kServeTraceDroppedTotal, MetricType::kCounter,
     "Flight-recorder events evicted by the ring capacity bound"},
    {metric::kFuzzProgramsTotal, MetricType::kCounter,
     "Random kernel programs produced by the simfuzz generator"},
    {metric::kFuzzRunsTotal, MetricType::kCounter,
     "Simulator executions performed by the simfuzz differential matrix"},
    {metric::kFuzzDivergencesTotal, MetricType::kCounter,
     "Generated programs whose differential matrix flagged a divergence"},
    {metric::kFuzzMinimizeStepsTotal, MetricType::kCounter,
     "Accepted shrink steps across all simfuzz minimizations"},
};

static_assert(std::size(kCatalog) == MetricsRegistry::kNumMetrics,
              "metric catalog and registry cell count out of sync");

/// Histogram bucket upper bounds: 4^1 .. 4^(kHistogramBuckets-1), +Inf.
uint64_t bucketBound(size_t i) { return uint64_t{1} << (2 * (i + 1)); }

size_t bucketFor(uint64_t value) {
  for (size_t i = 0; i + 1 < MetricsRegistry::kHistogramBuckets; ++i) {
    if (value <= bucketBound(i)) return i;
  }
  return MetricsRegistry::kHistogramBuckets - 1;
}

}  // namespace

std::string_view metricTypeName(MetricType type) {
  switch (type) {
    case MetricType::kCounter: return "counter";
    case MetricType::kGauge: return "gauge";
    case MetricType::kHistogram: return "histogram";
  }
  return "unknown";
}

std::span<const MetricDef> allMetricDefs() { return kCatalog; }

MetricsRegistry::MetricsRegistry() {
  // SIMTOMP_METRICS=<path>: dual dump at exit so long fault/tune runs
  // keep their metrics without code changes — Prometheus exposition at
  // <path> plus the sorted-key JSON snapshot at <path>.json.
  if (const char* path = std::getenv("SIMTOMP_METRICS")) {
    static std::string g_dump_path;
    g_dump_path = path;
    std::atexit([] {
      std::ofstream out(g_dump_path);
      if (!out) {
        SIMTOMP_WARN("simprof: cannot write SIMTOMP_METRICS file %s",
                     g_dump_path.c_str());
        return;
      }
      MetricsRegistry::global().writePrometheus(out);
      std::ofstream json(g_dump_path + ".json");
      if (!json) {
        SIMTOMP_WARN("simprof: cannot write SIMTOMP_METRICS file %s.json",
                     g_dump_path.c_str());
        return;
      }
      MetricsRegistry::global().writeJson(json);
    });
  }
}

MetricsRegistry& MetricsRegistry::global() {
  static MetricsRegistry registry;
  return registry;
}

int MetricsRegistry::indexOf(std::string_view name) const {
  for (size_t i = 0; i < std::size(kCatalog); ++i) {
    if (kCatalog[i].name == name) return static_cast<int>(i);
  }
  return -1;
}

void MetricsRegistry::add(std::string_view name, uint64_t delta) {
  const int i = indexOf(name);
  if (i < 0) {
    SIMTOMP_WARN("simprof: unknown metric %.*s",
                 static_cast<int>(name.size()), name.data());
    return;
  }
  cells_[static_cast<size_t>(i)].value.fetch_add(delta,
                                                 std::memory_order_relaxed);
}

void MetricsRegistry::gaugeMax(std::string_view name, uint64_t value) {
  const int i = indexOf(name);
  if (i < 0) return;
  std::atomic<uint64_t>& cell = cells_[static_cast<size_t>(i)].value;
  uint64_t seen = cell.load(std::memory_order_relaxed);
  while (seen < value &&
         !cell.compare_exchange_weak(seen, value, std::memory_order_relaxed)) {
  }
}

void MetricsRegistry::observe(std::string_view name, uint64_t value) {
  const int i = indexOf(name);
  if (i < 0) return;
  Cell& cell = cells_[static_cast<size_t>(i)];
  cell.value.fetch_add(1, std::memory_order_relaxed);
  cell.sum.fetch_add(value, std::memory_order_relaxed);
  cell.buckets[bucketFor(value)].fetch_add(1, std::memory_order_relaxed);
}

uint64_t MetricsRegistry::value(std::string_view name) const {
  const int i = indexOf(name);
  if (i < 0) return 0;
  return cells_[static_cast<size_t>(i)].value.load(std::memory_order_relaxed);
}

uint64_t MetricsRegistry::histogramSum(std::string_view name) const {
  const int i = indexOf(name);
  if (i < 0) return 0;
  return cells_[static_cast<size_t>(i)].sum.load(std::memory_order_relaxed);
}

void MetricsRegistry::writePrometheus(std::ostream& out) const {
  for (size_t i = 0; i < std::size(kCatalog); ++i) {
    const MetricDef& def = kCatalog[i];
    const Cell& cell = cells_[i];
    out << "# HELP " << def.name << " " << def.help << "\n";
    out << "# TYPE " << def.name << " " << metricTypeName(def.type) << "\n";
    if (def.type == MetricType::kHistogram) {
      uint64_t cumulative = 0;
      for (size_t b = 0; b < kHistogramBuckets; ++b) {
        cumulative += cell.buckets[b].load(std::memory_order_relaxed);
        out << def.name << "_bucket{le=\"";
        if (b + 1 < kHistogramBuckets) {
          out << bucketBound(b);
        } else {
          out << "+Inf";
        }
        out << "\"} " << cumulative << "\n";
      }
      out << def.name << "_sum " << cell.sum.load(std::memory_order_relaxed)
          << "\n";
      out << def.name << "_count "
          << cell.value.load(std::memory_order_relaxed) << "\n";
    } else {
      out << def.name << " " << cell.value.load(std::memory_order_relaxed)
          << "\n";
    }
  }
}

void MetricsRegistry::writeJson(std::ostream& out) const {
  // Sorted-key snapshot: collect "name": value fragments and sort.
  std::vector<std::string> entries;
  entries.reserve(std::size(kCatalog));
  for (size_t i = 0; i < std::size(kCatalog); ++i) {
    const MetricDef& def = kCatalog[i];
    const Cell& cell = cells_[i];
    std::string entry = "\"";
    entry += def.name;
    entry += "\": ";
    if (def.type == MetricType::kHistogram) {
      entry += "{\"count\": ";
      entry += std::to_string(cell.value.load(std::memory_order_relaxed));
      entry += ", \"sum\": ";
      entry += std::to_string(cell.sum.load(std::memory_order_relaxed));
      entry += ", \"buckets\": [";
      for (size_t b = 0; b < kHistogramBuckets; ++b) {
        if (b > 0) entry += ", ";
        entry += std::to_string(cell.buckets[b].load(std::memory_order_relaxed));
      }
      entry += "]}";
    } else {
      entry += std::to_string(cell.value.load(std::memory_order_relaxed));
    }
    entries.push_back(std::move(entry));
  }
  std::sort(entries.begin(), entries.end());
  out << "{\n";
  for (size_t i = 0; i < entries.size(); ++i) {
    out << "  " << entries[i];
    if (i + 1 < entries.size()) out << ",";
    out << "\n";
  }
  out << "}\n";
}

void MetricsRegistry::reset() {
  for (Cell& cell : cells_) {
    cell.value.store(0, std::memory_order_relaxed);
    cell.sum.store(0, std::memory_order_relaxed);
    for (auto& b : cell.buckets) b.store(0, std::memory_order_relaxed);
  }
}

}  // namespace simtomp::simprof
