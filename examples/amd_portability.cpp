// amd_portability: the paper's section 5.4.1 story as runnable code.
//
// The same three-level source runs on the NVIDIA-like and the AMD-like
// architecture. On AMD (64-lane wavefronts, no warp-level barriers in
// the runtime) generic-SIMD is unsupported: the requested group size
// degrades to 1 and simd loops run sequentially — the program still
// computes the right answer, it just loses the third level. Restructure
// to SPMD-SIMD (tightly nested) and the groups come back.
#include <cstdio>
#include <vector>

#include "dsl/dsl.h"

using namespace simtomp;

namespace {

struct RunInfo {
  uint64_t cycles = 0;
  uint32_t effectiveGroup = 0;
  bool ok = false;
};

RunInfo run(const gpusim::ArchSpec& arch, omprt::ExecMode parallel_mode) {
  gpusim::Device device(arch);
  dsl::LaunchSpec spec;
  spec.numTeams = 16;
  spec.threadsPerTeam = 128;  // a multiple of both 32 and 64
  spec.teamsMode = omprt::ExecMode::kSPMD;
  spec.parallelMode = parallel_mode;
  spec.simdlen = 16;

  constexpr uint64_t kRows = 2048;
  constexpr uint64_t kInner = 48;
  std::vector<double> out(kRows, 0.0);
  RunInfo info;
  auto stats = dsl::targetTeamsDistributeParallelFor(
      device, spec, kRows, [&](dsl::OmpContext& ctx, uint64_t row) {
        info.effectiveGroup = ctx.simdGroupSize();
        const double s =
            dsl::simdReduceAdd(ctx, kInner, [row](dsl::OmpContext& c,
                                                  uint64_t k) {
              c.gpu().fma();
              return static_cast<double>((row + k) % 7);
            });
        if (ctx.simdGroupId() == 0) out[row] = s;
      });
  if (!stats.isOk()) return info;
  // Verify against the closed form.
  for (uint64_t row = 0; row < kRows; ++row) {
    double expect = 0.0;
    for (uint64_t k = 0; k < kInner; ++k) {
      expect += static_cast<double>((row + k) % 7);
    }
    if (out[row] != expect) return info;
  }
  info.ok = true;
  info.cycles = stats.value().cycles;
  return info;
}

void report(const char* arch_name, const gpusim::ArchSpec& arch) {
  std::printf("%s (warp size %u, warp barriers: %s)\n", arch_name,
              arch.warpSize, arch.hasWarpLevelBarrier ? "yes" : "NO");
  const RunInfo generic = run(arch, omprt::ExecMode::kGeneric);
  const RunInfo spmd = run(arch, omprt::ExecMode::kSPMD);
  if (!generic.ok || !spmd.ok) {
    std::fprintf(stderr, "  run failed\n");
    std::exit(1);
  }
  std::printf("  generic parallel: requested simdlen 16 -> effective %2u, "
              "%llu cycles\n",
              generic.effectiveGroup,
              static_cast<unsigned long long>(generic.cycles));
  std::printf("  SPMD parallel:    requested simdlen 16 -> effective %2u, "
              "%llu cycles\n",
              spmd.effectiveGroup,
              static_cast<unsigned long long>(spmd.cycles));
}

}  // namespace

int main() {
  report("sim-a100", gpusim::ArchSpec::nvidiaA100());
  report("sim-mi100", gpusim::ArchSpec::amdMI100());
  std::printf("\nOn the AMD-like device the generic-SIMD request degrades "
              "to sequential simd\n(group 1), as in paper section 5.4.1; "
              "SPMD-SIMD keeps the third level.\n");
  return 0;
}
