// The paper's synthetic benchmarking kernel (section 6.3): "a small
// inner loop that fits into a single warp, but is not collapsible with
// the outer-loop nest", built to gauge the best-case benefit of the
// third level of parallelism.
//
// Non-collapsibility is realized by a per-row sequential preamble: a
// scalar s_i derived from the row's first element must exist before any
// inner iteration can run, so the two loops cannot be fused into one
// flat iteration space. The outer loop is `teams distribute parallel
// for` (SPMD teams), the inner loop `simd` (generic parallel), matching
// the paper's setup.
#pragma once

#include <cstdint>
#include <vector>

#include "apps/common.h"
#include "gpusim/device.h"
#include "support/status.h"

namespace simtomp::apps {

struct IdealWorkload {
  uint32_t outerTrip = 3456;
  uint32_t innerTrip = 32;  ///< fits a single warp
  std::vector<double> input;  ///< outerTrip * innerTrip
};

IdealWorkload generateIdeal(uint32_t outerTrip, uint32_t innerTrip,
                            uint64_t seed);

std::vector<double> idealReference(const IdealWorkload& w,
                                   uint32_t flopsPerElement = 8);

struct IdealOptions {
  uint32_t numTeams = 108;
  uint32_t threadsPerTeam = 128;
  /// 1 = baseline (serial inner loop on each OpenMP thread).
  uint32_t simdlen = 1;
  /// Extra arithmetic per inner iteration (models kernel intensity).
  uint32_t flopsPerElement = 8;
};

Result<AppRunResult> runIdeal(gpusim::Device& device, const IdealWorkload& w,
                              const IdealOptions& options);

}  // namespace simtomp::apps
