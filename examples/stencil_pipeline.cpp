// stencil_pipeline: resident device data + asynchronous target tasks.
//
// A multi-sweep Jacobi solver in the style the paper's laplace3d kernel
// comes from: the grid stays mapped on the device across sweeps
// (`target data`), each sweep is an offloaded kernel with three levels
// of parallelism, and independent diagnostics kernels run as deferred
// `target nowait` tasks on the hidden helper queue.
#include <cstdio>
#include <vector>

#include "dsl/dsl.h"
#include "hostrt/async.h"
#include "hostrt/data_env.h"

using namespace simtomp;

namespace {

constexpr uint32_t kN = 34;  // grid points per dimension
constexpr uint32_t kSweeps = 4;

uint64_t idx3(uint64_t i, uint64_t j, uint64_t k) {
  return (i * kN + j) * kN + k;
}

}  // namespace

int main() {
  std::vector<double> grid(static_cast<size_t>(kN) * kN * kN, 0.0);
  // Hot plate boundary at i == 0.
  for (uint64_t j = 0; j < kN; ++j) {
    for (uint64_t k = 0; k < kN; ++k) grid[idx3(0, j, k)] = 100.0;
  }

  gpusim::Device device;
  hostrt::DataEnvironment env(device);
  std::vector<double> scratch = grid;

  // #pragma omp target data map(tofrom: grid) map(alloc: scratch)
  hostrt::MappedSpan<double> grid_map(env, std::span<double>(grid),
                                      hostrt::MapType::kToFrom);
  hostrt::MappedSpan<double> scratch_map(env, std::span<double>(scratch),
                                         hostrt::MapType::kTo);
  auto dev_grid = grid_map.device();
  auto dev_scratch = scratch_map.device();

  dsl::LaunchSpec spec;
  spec.numTeams = 32;
  spec.threadsPerTeam = 128;
  spec.teamsMode = omprt::ExecMode::kSPMD;
  spec.parallelMode = omprt::ExecMode::kSPMD;  // tightly nested => SPMD
  spec.simdlen = 32;

  const uint64_t interior = kN - 2;
  uint64_t total_cycles = 0;

  for (uint32_t sweep = 0; sweep < kSweeps; ++sweep) {
    auto& src = (sweep % 2 == 0) ? dev_grid : dev_scratch;
    auto& dst = (sweep % 2 == 0) ? dev_scratch : dev_grid;
    auto stats = dsl::targetTeamsDistributeParallelFor(
        device, spec, interior * interior,
        [&](dsl::OmpContext& ctx, uint64_t plane) {
          const uint64_t i = plane / interior + 1;
          const uint64_t j = plane % interior + 1;
          dsl::simd(ctx, interior, [&, i, j](dsl::OmpContext& c,
                                             uint64_t kk) {
            const uint64_t k = kk + 1;
            gpusim::ThreadCtx& t = c.gpu();
            const double sum =
                src.get(t, idx3(i - 1, j, k)) + src.get(t, idx3(i + 1, j, k)) +
                src.get(t, idx3(i, j - 1, k)) + src.get(t, idx3(i, j + 1, k)) +
                src.get(t, idx3(i, j, k - 1)) + src.get(t, idx3(i, j, k + 1));
            t.fma(3);
            dst.set(t, idx3(i, j, k), sum / 6.0);
          });
        });
    if (!stats.isOk()) {
      std::fprintf(stderr, "sweep %u failed: %s\n", sweep,
                   stats.status().toString().c_str());
      return 1;
    }
    total_cycles += stats.value().cycles;
  }

  // Deferred diagnostics: `target nowait` tasks computing per-slab
  // absolute sums while the host does other work.
  hostrt::TargetTaskQueue queue(device);
  std::vector<double> slab_sums(4, 0.0);
  auto& final_grid = (kSweeps % 2 == 0) ? dev_grid : dev_scratch;
  std::vector<std::future<Result<gpusim::KernelStats>>> futures;
  for (int slab = 0; slab < 4; ++slab) {
    omprt::TargetConfig config;
    config.teamsMode = omprt::ExecMode::kSPMD;
    config.numTeams = 1;
    config.threadsPerTeam = 64;
    futures.push_back(queue.enqueue(config, [&, slab](dsl::OmpContext& ctx) {
      // One team sums a quarter of the i-range with a simd reduction.
      const uint64_t i0 = 1 + slab * (interior / 4);
      const uint64_t i1 = i0 + interior / 4;
      dsl::parallel(
          ctx,
          [&, i0, i1](dsl::OmpContext& inner) {
            double local = 0.0;
            for (uint64_t i = i0; i < i1; ++i) {
              for (uint64_t j = 1; j <= interior; j += inner.numThreads()) {
                const uint64_t jj = j + inner.threadNum();
                if (jj > interior) continue;
                local += dsl::simdReduceAdd(
                    inner, interior, [&, i, jj](dsl::OmpContext& c,
                                                uint64_t kk) {
                      const double v =
                          final_grid.get(c.gpu(), idx3(i, jj, kk + 1));
                      return v < 0 ? -v : v;
                    });
              }
            }
            if (inner.simdGroupId() == 0) {
              // One leader per group accumulates atomically.
              gpusim::GlobalSpan<double> sums(&slab_sums[slab], 1);
              sums.atomicAdd(inner.gpu(), 0, local);
            }
          },
          omprt::ParallelConfig{omprt::ExecMode::kSPMD, 16});
    }));
  }
  for (auto& f : futures) {
    auto r = f.get();
    if (!r.isOk()) {
      std::fprintf(stderr, "diagnostic task failed\n");
      return 1;
    }
  }

  std::printf("stencil_pipeline OK\n");
  std::printf("  sweeps                 : %u\n", kSweeps);
  std::printf("  total simulated cycles : %llu\n",
              static_cast<unsigned long long>(total_cycles));
  for (int slab = 0; slab < 4; ++slab) {
    std::printf("  |slab %d| heat         : %.2f\n", slab, slab_sums[slab]);
  }
  return 0;
}
