// simtune: persistent tuning cache.
//
// The tuner's whole value is amortization: the launch space is searched
// once per (kernel, architecture, cost model, problem-size bucket) and
// every later launch — in this process or the next — resolves from the
// cache with zero extra simulated launches. The cache is therefore
// keyed by everything the modeled-cycle ranking depends on:
//
//   kernel key       — a stable, caller-chosen kernel identity;
//   arch fingerprint — every ArchSpec field the simulator consults;
//   cost fingerprint — kCostModelVersion plus a hash of the CostModel
//                      constants, so recalibration invalidates entries
//                      (docs/COST_MODEL.md);
//   trip bucket      — log2 bucket of the trip count, so a kernel tuned
//                      at 4K rows is not blindly reused at 4M.
//
// Entries serialize to JSON sorted by composite key with integer-only
// fields, so tuning the same corpus twice produces byte-identical
// files — the CI determinism guard diffs them directly.
#pragma once

#include <cstdint>
#include <map>
#include <mutex>
#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "gpusim/arch.h"
#include "gpusim/cost_model.h"
#include "omprt/modes.h"
#include "support/status.h"

namespace simtomp::simtune {

/// Deterministic fingerprint of every ArchSpec field the simulator and
/// runtime consult while modeling a launch.
[[nodiscard]] std::string archFingerprint(const gpusim::ArchSpec& arch);

/// "v<kCostModelVersion>:<hash>" over the CostModel constants.
[[nodiscard]] std::string costFingerprint(const gpusim::CostModel& cost);

/// Log2 bucket of a trip count (0 for unknown trip counts; trips
/// within a power-of-two band share one tuning decision).
[[nodiscard]] uint32_t tripBucket(uint64_t tripCount);

/// Full cache key for one tuning decision.
struct TuneKey {
  std::string kernel;
  std::string arch;   ///< archFingerprint()
  std::string cost;   ///< costFingerprint()
  uint32_t bucket = 0;

  /// "kernel|arch|cost|b<bucket>" — the serialized map key.
  [[nodiscard]] std::string composite() const;
};

[[nodiscard]] TuneKey makeTuneKey(std::string kernel,
                                  const gpusim::ArchSpec& arch,
                                  const gpusim::CostModel& cost,
                                  uint64_t tripCount);

/// A tuned launch shape: the winner of one search, plus provenance.
struct TunedShape {
  omprt::ExecMode teamsMode = omprt::ExecMode::kSPMD;
  omprt::ExecMode parallelMode = omprt::ExecMode::kSPMD;
  uint32_t numTeams = 1;
  uint32_t threadsPerTeam = 128;
  uint32_t simdlen = 1;
  uint64_t scheduleChunk = 0;
  uint64_t cycles = 0;   ///< modeled cycles of the winning trial
  uint32_t trials = 0;   ///< trial launches the search spent

  [[nodiscard]] bool operator==(const TunedShape&) const = default;
  [[nodiscard]] std::string toString() const;
};

/// Thread-safe persistent tuning cache. With an empty path the cache is
/// in-memory only (save() is a no-op); otherwise load() reads the JSON
/// file if present and save() rewrites it deterministically.
class TuneCache {
 public:
  explicit TuneCache(std::string path = "");

  [[nodiscard]] const std::string& path() const { return path_; }
  [[nodiscard]] bool persistent() const { return !path_.empty(); }

  [[nodiscard]] std::optional<TunedShape> lookup(const TuneKey& key) const;
  void insert(const TuneKey& key, const TunedShape& shape);

  /// Remove entries whose kernel name starts with `kernelPrefix`
  /// (empty prefix = everything); returns how many were removed.
  size_t evict(std::string_view kernelPrefix);

  [[nodiscard]] size_t size() const;
  /// Sorted (composite key, shape) snapshot for reporting.
  [[nodiscard]] std::vector<std::pair<std::string, TunedShape>> entries()
      const;

  /// Re-read the backing file (missing file = empty cache; a malformed
  /// file is an error and leaves the cache unchanged).
  Status load();
  /// Write the backing file (no-op without a path).
  Status save() const;
  Status saveTo(const std::string& path) const;

 private:
  mutable std::mutex mutex_;
  std::map<std::string, TunedShape> entries_;  ///< composite key -> shape
  std::string path_;
};

/// Resolve the cache path: an explicit `requested` wins, else the
/// SIMTOMP_TUNE_CACHE environment variable, else "" (in-memory).
[[nodiscard]] std::string resolveCachePath(const std::string& requested);

}  // namespace simtomp::simtune
