#include "simprof/profile.h"

#include <algorithm>
#include <cctype>
#include <cstdio>
#include <cstdlib>

#include "support/log.h"
#include "support/status.h"

namespace simtomp::simprof {

std::string_view constructName(Construct c) {
  switch (c) {
    case Construct::kKernel: return "kernel";
    case Construct::kTeam: return "team";
    case Construct::kParallel: return "parallel";
    case Construct::kSimdLoop: return "simd_loop";
    case Construct::kWorkshare: return "workshare";
    case Construct::kDistribute: return "distribute";
    case Construct::kBarrier: return "barrier";
    case Construct::kStatePoll: return "state_poll";
    case Construct::kSharing: return "sharing";
    case Construct::kCritical: return "critical";
    case Construct::kCount: break;
  }
  return "unknown";
}

std::string_view profileModeName(ProfileMode mode) {
  switch (mode) {
    case ProfileMode::kAuto: return "auto";
    case ProfileMode::kOff: return "off";
    case ProfileMode::kOn: return "on";
  }
  return "unknown";
}

ProfileResolution resolveProfileMode(ProfileMode requested) {
  if (requested != ProfileMode::kAuto) {
    return {requested, "explicit", {}};
  }
  if (const char* env = std::getenv("SIMTOMP_PROF")) {
    std::string lower;
    for (const char c : std::string_view(env)) {
      lower.push_back(static_cast<char>(std::tolower(c)));
    }
    const ProfileMode mode = (lower == "1" || lower == "on")
                                 ? ProfileMode::kOn
                                 : ProfileMode::kOff;
    return {mode, "SIMTOMP_PROF", env};
  }
  return {ProfileMode::kOff, "default", {}};
}

// ---- ProfileNode ----

std::string ProfileNode::label() const {
  std::string out(constructName(construct));
  if (construct == Construct::kSimdLoop && detail != 0) {
    out += "@" + std::to_string(detail);
  }
  return out;
}

ProfileNode* ProfileNode::findOrCreateChild(Construct c, uint64_t d,
                                            size_t numCounters) {
  for (ProfileNode& child : children) {
    if (child.construct == c && child.detail == d) return &child;
  }
  ProfileNode node;
  node.construct = c;
  node.detail = d;
  node.counters.assign(numCounters, 0);
  children.push_back(std::move(node));
  return &children.back();
}

void ProfileNode::mergeFrom(const ProfileNode& other) {
  inclusiveCycles += other.inclusiveCycles;
  exclusiveCycles += other.exclusiveCycles;
  busyCycles += other.busyCycles;
  visits += other.visits;
  if (counters.size() < other.counters.size()) {
    counters.resize(other.counters.size(), 0);
  }
  for (size_t i = 0; i < other.counters.size(); ++i) {
    counters[i] += other.counters[i];
  }
  for (const ProfileNode& child : other.children) {
    ProfileNode* mine =
        findOrCreateChild(child.construct, child.detail, counters.size());
    mine->mergeFrom(child);
  }
}

void ProfileNode::sortChildren() {
  std::sort(children.begin(), children.end(),
            [](const ProfileNode& a, const ProfileNode& b) {
              if (a.construct != b.construct) return a.construct < b.construct;
              return a.detail < b.detail;
            });
  for (ProfileNode& child : children) child.sortChildren();
}

// ---- ThreadProfile ----

ThreadProfile::ThreadProfile(size_t num_counters, bool capture_spans)
    : num_counters_(num_counters), capture_spans_(capture_spans) {
  root_.construct = Construct::kTeam;
  root_.counters.assign(num_counters_, 0);
  root_.visits = 1;
  frames_.push_back({&root_, 0, 0});
}

void ThreadProfile::enter(Construct c, uint64_t detail, uint64_t now) {
  ProfileNode* node =
      frames_.back().node->findOrCreateChild(c, detail, num_counters_);
  node->visits += 1;
  frames_.push_back({node, now, 0});
}

void ThreadProfile::exit(uint64_t now) {
  SIMTOMP_CHECK(frames_.size() > 1, "simprof: construct exit without enter");
  const Frame frame = frames_.back();
  frames_.pop_back();
  const uint64_t span = now >= frame.enterTime ? now - frame.enterTime : 0;
  frame.node->inclusiveCycles += span;
  frame.node->exclusiveCycles +=
      span >= frame.childCycles ? span - frame.childCycles : 0;
  frames_.back().childCycles += span;
  if (capture_spans_ && spans_.size() < kMaxSpans) {
    spans_.push_back({frame.node->construct, frame.node->detail,
                      frame.enterTime, now,
                      static_cast<uint32_t>(frames_.size() - 1)});
  }
}

void ThreadProfile::onCharge(uint32_t counter_id, uint64_t cycles,
                             uint64_t count) {
  ProfileNode* node = frames_.back().node;
  node->busyCycles += cycles;
  if (counter_id < node->counters.size()) node->counters[counter_id] += count;
}

void ThreadProfile::finish(uint64_t final_time) {
  while (frames_.size() > 1) exit(final_time);
  const Frame frame = frames_.back();
  root_.inclusiveCycles += final_time;
  root_.exclusiveCycles +=
      final_time >= frame.childCycles ? final_time - frame.childCycles : 0;
  frames_.back().childCycles = 0;
}

// ---- BlockProfiler ----

BlockProfiler::BlockProfiler(uint32_t block_id, uint32_t num_threads,
                             size_t num_counters, bool capture_spans)
    : block_id_(block_id), num_counters_(num_counters) {
  threads_.reserve(num_threads);
  for (uint32_t tid = 0; tid < num_threads; ++tid) {
    // Only the block's thread 0 captures raw spans: one representative
    // nested timeline per block keeps traces readable and bounded.
    threads_.emplace_back(num_counters, capture_spans && tid == 0);
  }
}

ProfileNode BlockProfiler::teamTree() const {
  ProfileNode team;
  team.construct = Construct::kTeam;
  team.counters.assign(num_counters_, 0);
  for (const ThreadProfile& t : threads_) team.mergeFrom(t.root());
  return team;
}

// ---- LaunchProfile ----

void LaunchProfile::mergeTeam(const ProfileNode& team) {
  if (root.counters.size() < numCounters) {
    root.counters.assign(numCounters, 0);
  }
  ProfileNode* child =
      root.findOrCreateChild(Construct::kTeam, 0, numCounters);
  child->mergeFrom(team);
}

void LaunchProfile::finalize(uint64_t cycles) {
  rootCycles = cycles;
  root.construct = Construct::kKernel;
  root.inclusiveCycles = cycles;
  root.exclusiveCycles = 0;
  root.visits = 1;
  root.sortChildren();
}

namespace {

void appendTableRow(std::string& out, const ProfileNode& node, int depth,
                    uint64_t parentInclusive, const RenderOptions& opts) {
  char buf[160];
  std::string name(static_cast<size_t>(depth) * 2, ' ');
  name += node.label();
  if (name.size() > 26) name.resize(26);
  // The root is in launch cycles but its descendants are in summed
  // thread-cycles (see ProfileNode), so a team/root ratio would compare
  // different units: the team row prints no share.
  if (depth == 1) {
    std::snprintf(buf, sizeof(buf), "%-26s %14llu %14llu %14llu %8llu %7s",
                  name.c_str(),
                  static_cast<unsigned long long>(node.inclusiveCycles),
                  static_cast<unsigned long long>(node.exclusiveCycles),
                  static_cast<unsigned long long>(node.busyCycles),
                  static_cast<unsigned long long>(node.visits), "-");
  } else {
    const double share =
        parentInclusive > 0
            ? 100.0 * static_cast<double>(node.inclusiveCycles) /
                  static_cast<double>(parentInclusive)
            : 100.0;
    std::snprintf(buf, sizeof(buf), "%-26s %14llu %14llu %14llu %8llu %6.1f%%",
                  name.c_str(),
                  static_cast<unsigned long long>(node.inclusiveCycles),
                  static_cast<unsigned long long>(node.exclusiveCycles),
                  static_cast<unsigned long long>(node.busyCycles),
                  static_cast<unsigned long long>(node.visits), share);
  }
  out += buf;
  const size_t lanes = opts.laneRoundsCounter;
  const size_t idle = opts.idleLaneRoundsCounter;
  if (lanes < node.counters.size() && idle < node.counters.size() &&
      node.counters[lanes] > 0) {
    const uint64_t rounds = node.counters[lanes];
    const uint64_t busy_rounds = rounds - node.counters[idle];
    std::snprintf(buf, sizeof(buf), "  lane_eff=%5.1f%%",
                  100.0 * static_cast<double>(busy_rounds) /
                      static_cast<double>(rounds));
    out += buf;
  }
  out += "\n";
  for (const ProfileNode& child : node.children) {
    appendTableRow(out, child, depth + 1, node.inclusiveCycles, opts);
  }
}

void appendFolded(std::vector<std::string>& lines, const ProfileNode& node,
                  const std::string& prefix) {
  const std::string stack =
      prefix.empty() ? node.label() : prefix + ";" + node.label();
  if (node.exclusiveCycles > 0) {
    lines.push_back(stack + " " + std::to_string(node.exclusiveCycles));
  }
  for (const ProfileNode& child : node.children) {
    appendFolded(lines, child, stack);
  }
}

void writeJsonNode(std::ostream& out, const ProfileNode& node,
                   const RenderOptions& opts, int indent) {
  const std::string pad(static_cast<size_t>(indent) * 2, ' ');
  out << pad << "{\"construct\": \"" << node.label() << "\",\n";
  out << pad << " \"inclusive_cycles\": " << node.inclusiveCycles << ",\n";
  out << pad << " \"exclusive_cycles\": " << node.exclusiveCycles << ",\n";
  out << pad << " \"busy_cycles\": " << node.busyCycles << ",\n";
  out << pad << " \"visits\": " << node.visits << ",\n";
  out << pad << " \"counters\": {";
  bool first = true;
  for (size_t i = 0; i < node.counters.size(); ++i) {
    if (node.counters[i] == 0) continue;
    if (!first) out << ", ";
    first = false;
    out << "\"";
    if (opts.counterName != nullptr) {
      out << opts.counterName(static_cast<uint32_t>(i));
    } else {
      out << "counter_" << i;
    }
    out << "\": " << node.counters[i];
  }
  out << "},\n";
  out << pad << " \"children\": [";
  for (size_t i = 0; i < node.children.size(); ++i) {
    if (i > 0) out << ",";
    out << "\n";
    writeJsonNode(out, node.children[i], opts, indent + 1);
  }
  if (!node.children.empty()) out << "\n" << pad;
  out << "]}";
}

}  // namespace

std::string LaunchProfile::table(const RenderOptions& opts) const {
  std::string out;
  char buf[160];
  std::snprintf(buf, sizeof(buf), "%-26s %14s %14s %14s %8s %7s\n",
                "construct", "incl_cycles", "excl_cycles", "busy_cycles",
                "visits", "share");
  out += buf;
  out += std::string(98, '-');
  out += "\n";
  appendTableRow(out, root, 0, root.inclusiveCycles, opts);
  return out;
}

std::string LaunchProfile::folded() const {
  std::vector<std::string> lines;
  appendFolded(lines, root, "");
  std::sort(lines.begin(), lines.end());
  std::string out;
  for (const std::string& line : lines) {
    out += line;
    out += "\n";
  }
  return out;
}

void LaunchProfile::writeJson(std::ostream& out,
                              const RenderOptions& opts) const {
  out << "{\"enabled\": " << (enabled ? "true" : "false")
      << ",\n \"root_cycles\": " << rootCycles << ",\n \"tree\":\n";
  writeJsonNode(out, root, opts, 1);
  out << "\n}\n";
}

}  // namespace simtomp::simprof
