// Flight recorder: a bounded, deterministic ring of structured events.
//
// A FlightRecorder keeps the last `capacity` events appended to it,
// each stamped with a monotonically increasing logical sequence number
// and a caller-supplied tick (a modeled-cycle offset or logical epoch
// — the recorder never reads a wall clock). When the ring is full the
// oldest event is evicted; because eviction is driven purely by append
// order, two runs that append the same logical event sequence retain
// the same window, which is what makes a flight-recorder dump a
// byte-compare surface.
//
// Events split their rendered detail into a canonical part (fields
// that are invariant across physical placement — worker counts, shard
// counts) and an optional physical part (device/shard identities)
// that only the physical dump mode prints. Callers that also record
// physical-*only* events (device lifecycle transitions, say) must keep
// those in a second recorder: mixing them into a canonical ring would
// make sequence numbers and eviction depend on physical placement.
#pragma once

#include <cstdint>
#include <deque>
#include <ostream>
#include <string>

namespace simtomp::simprof {

/// One recorded event. `detail` is a space-separated "key=value" list;
/// `physicalDetail` extends it in physical dump mode only.
struct FlightEvent {
  uint64_t seq = 0;   ///< assigned by the recorder, starts at 0
  uint64_t tick = 0;  ///< caller-supplied logical/modeled timestamp
  std::string category;
  std::string detail;
  std::string physicalDetail;
};

class FlightRecorder {
 public:
  explicit FlightRecorder(size_t capacity = 4096)
      : capacity_(capacity == 0 ? 1 : capacity) {}

  /// Append one event (assigning its seq). Returns true when the
  /// append evicted the oldest retained event.
  bool record(uint64_t tick, std::string category, std::string detail,
              std::string physicalDetail = "");

  [[nodiscard]] size_t capacity() const { return capacity_; }
  [[nodiscard]] size_t size() const { return events_.size(); }
  /// Lifetime append count (size() + dropped()).
  [[nodiscard]] uint64_t recorded() const { return recorded_; }
  /// Events evicted by the capacity bound.
  [[nodiscard]] uint64_t dropped() const { return recorded_ - size(); }
  [[nodiscard]] const std::deque<FlightEvent>& events() const {
    return events_;
  }

  /// One line per retained event, oldest first:
  ///   seq=N tick=T CATEGORY detail [physicalDetail]
  /// The physical part prints only when `physical` is set.
  void dump(std::ostream& out, bool physical = false) const;

  void clear();

 private:
  size_t capacity_;
  std::deque<FlightEvent> events_;
  uint64_t recorded_ = 0;
};

}  // namespace simtomp::simprof
