// MetricsRegistry under concurrency (run in CI under TSan): counters,
// gauges and histograms are hammered from many threads — with snapshot
// writers racing the updates — and the final values must be exact,
// because every update is a commutative atomic add / fetch-max.
#include <gtest/gtest.h>

#include <sstream>
#include <thread>
#include <vector>

#include "simprof/metrics.h"

namespace simtomp::simprof {
namespace {

constexpr int kThreads = 8;
constexpr int kPerThread = 4096;

TEST(MetricsConcurrencyTest, ParallelUpdatesAreExact) {
  MetricsRegistry& registry = MetricsRegistry::global();
  registry.reset();

  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([t, &registry] {
      for (int i = 0; i < kPerThread; ++i) {
        registry.add(metric::kServeTraceEventsTotal);
        registry.add(metric::kServeTraceDroppedTotal, 2);
        registry.gaugeMax(metric::kServeQueueDepthPeak,
                          static_cast<uint64_t>(t * kPerThread + i));
        registry.observe(metric::kServeLatencyCycles,
                         static_cast<uint64_t>(i % 1024));
      }
    });
  }
  for (std::thread& thread : threads) thread.join();

  constexpr uint64_t kTotal = uint64_t{kThreads} * kPerThread;
  EXPECT_EQ(registry.value(metric::kServeTraceEventsTotal), kTotal);
  EXPECT_EQ(registry.value(metric::kServeTraceDroppedTotal), 2 * kTotal);
  EXPECT_EQ(registry.value(metric::kServeQueueDepthPeak),
            uint64_t{kThreads} * kPerThread - 1);
  EXPECT_EQ(registry.value(metric::kServeLatencyCycles), kTotal);
  // Each thread observes the same residue sequence 0..1023 repeated.
  uint64_t perThreadSum = 0;
  for (int i = 0; i < kPerThread; ++i) perThreadSum += i % 1024;
  EXPECT_EQ(registry.histogramSum(metric::kServeLatencyCycles),
            kThreads * perThreadSum);
  registry.reset();
}

TEST(MetricsConcurrencyTest, SnapshotWritersRaceUpdatesSafely) {
  MetricsRegistry& registry = MetricsRegistry::global();
  registry.reset();

  std::vector<std::thread> writers;
  writers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    writers.emplace_back([&registry] {
      for (int i = 0; i < kPerThread; ++i) {
        registry.add(metric::kServeRequestsTotal);
        registry.observe(metric::kServeRetryBackoffCycles, 64);
      }
    });
  }
  // Readers take snapshots while the writers run; TSan verifies the
  // loads never race the atomic updates.
  std::vector<std::thread> readers;
  for (int r = 0; r < 2; ++r) {
    readers.emplace_back([&registry] {
      for (int i = 0; i < 16; ++i) {
        std::ostringstream prom;
        registry.writePrometheus(prom);
        std::ostringstream json;
        registry.writeJson(json);
        EXPECT_NE(prom.str().find("simtomp_serve_requests_total"),
                  std::string::npos);
        EXPECT_NE(json.str().find("simtomp_serve_requests_total"),
                  std::string::npos);
      }
    });
  }
  for (std::thread& thread : writers) thread.join();
  for (std::thread& thread : readers) thread.join();

  constexpr uint64_t kTotal = uint64_t{kThreads} * kPerThread;
  EXPECT_EQ(registry.value(metric::kServeRequestsTotal), kTotal);
  EXPECT_EQ(registry.histogramSum(metric::kServeRetryBackoffCycles),
            64 * kTotal);
  registry.reset();
}

}  // namespace
}  // namespace simtomp::simprof
