// Unit tests for the directive DSL front-end.
#include <gtest/gtest.h>

#include <atomic>
#include <vector>

#include "dsl/dsl.h"

namespace simtomp::dsl {
namespace {

using gpusim::ArchSpec;
using gpusim::Counter;
using gpusim::Device;

LaunchSpec baseSpec() {
  LaunchSpec spec;
  spec.numTeams = 2;
  spec.threadsPerTeam = 64;
  return spec;
}

TEST(DslTest, InferSpmdFollowsTightNesting) {
  EXPECT_EQ(inferSpmd(true), ExecMode::kSPMD);
  EXPECT_EQ(inferSpmd(false), ExecMode::kGeneric);
}

TEST(DslTest, LaunchSpecConvertsToConfigs) {
  LaunchSpec spec = baseSpec();
  spec.teamsMode = ExecMode::kGeneric;
  spec.parallelMode = ExecMode::kGeneric;
  spec.simdlen = 16;
  spec.sharingSpaceBytes = 1024;
  const omprt::TargetConfig tc = spec.targetConfig();
  EXPECT_EQ(tc.teamsMode, ExecMode::kGeneric);
  EXPECT_EQ(tc.numTeams, 2u);
  EXPECT_EQ(tc.threadsPerTeam, 64u);
  EXPECT_EQ(tc.sharingSpaceBytes, 1024u);
  const omprt::ParallelConfig pc = spec.parallelConfig();
  EXPECT_EQ(pc.mode, ExecMode::kGeneric);
  EXPECT_EQ(pc.simdGroupSize, 16u);
}

TEST(DslTest, TargetRunsRegion) {
  Device dev(ArchSpec::testTiny());
  std::atomic<int> runs{0};
  auto stats = target(dev, baseSpec(), [&](OmpContext&) { runs++; });
  ASSERT_TRUE(stats.isOk());
  EXPECT_EQ(runs.load(), 2 * 64);  // SPMD teams: every thread
}

TEST(DslTest, TargetTeamsDistributeCoversIterationsOnce) {
  Device dev(ArchSpec::testTiny());
  LaunchSpec spec = baseSpec();
  spec.teamsMode = ExecMode::kGeneric;  // main-only region execution
  std::vector<std::atomic<int>> hits(50);
  auto stats = targetTeamsDistribute(
      dev, spec, 50, [&](OmpContext&, uint64_t iv) { hits[iv]++; });
  ASSERT_TRUE(stats.isOk());
  for (auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(DslTest, ParallelForSplitsAcrossGroups) {
  Device dev(ArchSpec::testTiny());
  LaunchSpec spec = baseSpec();
  spec.numTeams = 1;
  spec.parallelMode = ExecMode::kGeneric;
  spec.simdlen = 8;
  std::vector<std::atomic<int>> hits(100);
  auto stats = target(dev, spec, [&](OmpContext& ctx) {
    parallelFor(
        ctx, 100, [&hits](OmpContext&, uint64_t iv) { hits[iv]++; },
        spec.parallelConfig());
  });
  ASSERT_TRUE(stats.isOk());
  for (auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(DslTest, CombinedConstructCoversAllIterations) {
  Device dev(ArchSpec::testTiny());
  for (ExecMode teams : {ExecMode::kSPMD, ExecMode::kGeneric}) {
    for (ExecMode par : {ExecMode::kSPMD, ExecMode::kGeneric}) {
      LaunchSpec spec = baseSpec();
      spec.teamsMode = teams;
      spec.parallelMode = par;
      spec.simdlen = 4;
      std::vector<std::atomic<int>> hits(77);
      auto stats = targetTeamsDistributeParallelFor(
          dev, spec, 77, [&](OmpContext& ctx, uint64_t iv) {
            if (par == ExecMode::kSPMD) {
              // Redundant lane execution: count once per group leader.
              if (ctx.simdGroupId() == 0) hits[iv]++;
            } else {
              hits[iv]++;
            }
          });
      ASSERT_TRUE(stats.isOk());
      for (auto& h : hits) EXPECT_EQ(h.load(), 1);
    }
  }
}

TEST(DslTest, SimdSplitsIterationsAcrossLanes) {
  Device dev(ArchSpec::testTiny());
  LaunchSpec spec = baseSpec();
  spec.numTeams = 1;
  spec.parallelMode = ExecMode::kSPMD;
  spec.simdlen = 8;
  std::vector<std::atomic<int>> lanes_used(8);
  auto stats = targetTeamsDistributeParallelFor(
      dev, spec, 8, [&](OmpContext& ctx, uint64_t) {
        simd(ctx, 64, [&](OmpContext& inner, uint64_t iv) {
          // Cyclic schedule: lane l gets iterations iv % 8 == l.
          EXPECT_EQ(iv % 8, inner.simdGroupId());
          lanes_used[inner.simdGroupId()]++;
        });
      });
  ASSERT_TRUE(stats.isOk());
  for (auto& l : lanes_used) EXPECT_GT(l.load(), 0);
}

TEST(DslTest, GenericSimdGlobalizesBody) {
  Device dev(ArchSpec::testTiny());
  LaunchSpec spec = baseSpec();
  spec.numTeams = 1;
  spec.parallelMode = ExecMode::kGeneric;
  spec.simdlen = 8;
  std::atomic<int> total{0};
  auto stats = targetTeamsDistributeParallelFor(
      dev, spec, 8, [&](OmpContext& ctx, uint64_t) {
        simd(ctx, 8, [&total](OmpContext&, uint64_t) { total++; });
      });
  ASSERT_TRUE(stats.isOk());
  EXPECT_EQ(total.load(), 64);
  // Globalizing the body object copies it to shared memory.
  EXPECT_GT(stats.value().counters.get(Counter::kSharedStore), 0u);
}

TEST(DslTest, SimdReduceAddMatchesSerialSum) {
  Device dev(ArchSpec::testTiny());
  for (ExecMode par : {ExecMode::kSPMD, ExecMode::kGeneric}) {
    LaunchSpec spec = baseSpec();
    spec.numTeams = 1;
    spec.parallelMode = par;
    spec.simdlen = 16;
    std::vector<double> sums(64 / 16, 0.0);
    auto stats = targetTeamsDistributeParallelFor(
        dev, spec, 64 / 16, [&](OmpContext& ctx, uint64_t iv) {
          const double s = simdReduceAdd(
              ctx, 100, [](OmpContext&, uint64_t k) -> double {
                return static_cast<double>(k + 1);
              });
          if (ctx.simdGroupId() == 0) sums[iv] = s;
        });
    ASSERT_TRUE(stats.isOk());
    for (double s : sums) EXPECT_DOUBLE_EQ(s, 5050.0);
  }
}

TEST(DslTest, ParallelRunsRegionPerOpenMPThread) {
  Device dev(ArchSpec::testTiny());
  LaunchSpec spec = baseSpec();
  spec.numTeams = 1;
  std::atomic<int> leaders{0};
  auto stats = target(dev, spec, [&](OmpContext& ctx) {
    parallel(
        ctx, [&leaders](OmpContext&) { leaders++; },
        omprt::ParallelConfig{ExecMode::kGeneric, 16});
  });
  ASSERT_TRUE(stats.isOk());
  EXPECT_EQ(leaders.load(), 64 / 16);
}

TEST(DslTest, UnregisteredBodiesDispatchIndirect) {
  omprt::Dispatcher::global().clear();
  Device dev(ArchSpec::testTiny());
  LaunchSpec spec = baseSpec();
  spec.numTeams = 1;
  spec.parallelMode = ExecMode::kSPMD;
  spec.simdlen = 8;
  spec.registerInCascade = false;
  auto stats = targetTeamsDistributeParallelFor(
      dev, spec, 4,
      [&](OmpContext& ctx, uint64_t) {
        simd(
            ctx, 8, [](OmpContext& c, uint64_t) { c.gpu().work(1); },
            /*registerInCascade=*/false);
      });
  ASSERT_TRUE(stats.isOk());
  EXPECT_GT(stats.value().counters.get(Counter::kDispatchIndirect), 0u);
  EXPECT_EQ(stats.value().counters.get(Counter::kDispatchCascade), 0u);
  omprt::Dispatcher::global().clear();
}

TEST(DslTest, InvalidSpecSurfacesStatus) {
  Device dev(ArchSpec::testTiny());
  LaunchSpec spec = baseSpec();
  spec.threadsPerTeam = 48;  // not a warp multiple
  auto stats = target(dev, spec, [](OmpContext&) {});
  ASSERT_FALSE(stats.isOk());
  EXPECT_EQ(stats.status().code(), StatusCode::kInvalidArgument);
}

}  // namespace
}  // namespace simtomp::dsl
