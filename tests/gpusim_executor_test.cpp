// Unit tests for the host-parallel block execution engine: pool
// correctness (every index exactly once, nesting, concurrent clients),
// worker-count resolution, and the determinism contract at the Device
// layer — identical stats, counters and trace for any hostWorkers.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <thread>
#include <vector>

#include "gpusim/device.h"
#include "gpusim/executor.h"

namespace simtomp::gpusim {
namespace {

/// Scoped SIMTOMP_HOST_WORKERS override (restores on destruction).
class ScopedHostWorkersEnv {
 public:
  explicit ScopedHostWorkersEnv(const char* value) {
    const char* old = std::getenv("SIMTOMP_HOST_WORKERS");
    if (old != nullptr) saved_ = old;
    had_value_ = old != nullptr;
    if (value != nullptr) {
      ::setenv("SIMTOMP_HOST_WORKERS", value, 1);
    } else {
      ::unsetenv("SIMTOMP_HOST_WORKERS");
    }
  }
  ~ScopedHostWorkersEnv() {
    if (had_value_) {
      ::setenv("SIMTOMP_HOST_WORKERS", saved_.c_str(), 1);
    } else {
      ::unsetenv("SIMTOMP_HOST_WORKERS");
    }
  }

 private:
  std::string saved_;
  bool had_value_ = false;
};

TEST(ResolveHostWorkersTest, ExplicitRequestWins) {
  ScopedHostWorkersEnv env("16");
  EXPECT_EQ(resolveHostWorkers(3), 3u);
  EXPECT_EQ(resolveHostWorkers(1), 1u);
}

TEST(ResolveHostWorkersTest, EnvVarUsedWhenAuto) {
  ScopedHostWorkersEnv env("5");
  EXPECT_EQ(resolveHostWorkers(0), 5u);
}

TEST(ResolveHostWorkersTest, GarbageEnvFallsBackToHardware) {
  const uint32_t hw = std::max(1u, std::thread::hardware_concurrency());
  {
    ScopedHostWorkersEnv env("banana");
    EXPECT_EQ(resolveHostWorkers(0), hw);
  }
  {
    ScopedHostWorkersEnv env("0");
    EXPECT_EQ(resolveHostWorkers(0), hw);
  }
  {
    ScopedHostWorkersEnv env(nullptr);
    EXPECT_EQ(resolveHostWorkers(0), hw);
  }
}

TEST(BlockExecutorTest, RunsEveryIndexExactlyOnce) {
  BlockExecutor pool;
  constexpr uint32_t kCount = 100;
  std::vector<std::atomic<uint32_t>> hits(kCount);
  pool.parallelFor(kCount, 4, [&](uint32_t i) { hits[i]++; });
  for (uint32_t i = 0; i < kCount; ++i) {
    EXPECT_EQ(hits[i].load(), 1u) << "index " << i;
  }
}

TEST(BlockExecutorTest, SingleWorkerRunsInlineWithoutHelpers) {
  BlockExecutor pool;
  const std::thread::id caller = std::this_thread::get_id();
  uint32_t sum = 0;  // no atomics needed: must stay on this thread
  pool.parallelFor(10, 1, [&](uint32_t i) {
    EXPECT_EQ(std::this_thread::get_id(), caller);
    sum += i;
  });
  EXPECT_EQ(sum, 45u);
  EXPECT_EQ(pool.helperCount(), 0u);
}

TEST(BlockExecutorTest, NestedCallsRunInline) {
  BlockExecutor pool;
  std::atomic<uint32_t> inner_total{0};
  pool.parallelFor(4, 4, [&](uint32_t) {
    // A worker calling back into the pool must not deadlock waiting
    // for helpers occupied by its own outer job.
    pool.parallelFor(8, 4, [&](uint32_t) { inner_total++; });
  });
  EXPECT_EQ(inner_total.load(), 4u * 8u);
}

TEST(BlockExecutorTest, ConcurrentClientsShareThePool) {
  BlockExecutor pool;
  std::atomic<uint32_t> a{0};
  std::atomic<uint32_t> b{0};
  std::thread other(
      [&] { pool.parallelFor(64, 4, [&](uint32_t) { a++; }); });
  pool.parallelFor(64, 4, [&](uint32_t) { b++; });
  other.join();
  EXPECT_EQ(a.load(), 64u);
  EXPECT_EQ(b.load(), 64u);
}

TEST(BlockExecutorTest, HelperCountGrowsOnDemandAndIsCapped) {
  BlockExecutor pool;
  pool.parallelFor(32, 8, [](uint32_t) {});
  // 8 workers = the caller + up to 7 helpers; lazy spawn may stop
  // early if the job drains first, but never exceeds the budget.
  EXPECT_LE(pool.helperCount(), 7u);
  pool.parallelFor(BlockExecutor::kMaxHelpers * 2,
                   BlockExecutor::kMaxHelpers + 100, [](uint32_t) {});
  EXPECT_LE(pool.helperCount(), static_cast<size_t>(BlockExecutor::kMaxHelpers));
}

/// Skewed compute + global atomics + barriers: enough machinery that a
/// nondeterministic merge would almost surely move some number.
KernelStats runDeterminismKernel(uint32_t host_workers,
                                 TraceRecorder* trace) {
  Device dev(ArchSpec::testTiny());
  auto sums = dev.allocateArray<double>(4);
  EXPECT_TRUE(sums.isOk());
  for (size_t i = 0; i < 4; ++i) sums.value().raw(i) = 0.0;
  dev.setTraceRecorder(trace);

  LaunchConfig config;
  config.numBlocks = 7;
  config.threadsPerBlock = 64;
  config.hostWorkers = host_workers;
  auto stats = dev.launch(config, [&](ThreadCtx& t) {
    t.work(100 * (t.blockId() + 1));
    t.chargeGlobalLoad(2);
    sums.value().atomicAdd(t, t.blockId() % 4, 1.0);
    t.syncBlock();
    t.work(t.threadId());
  });
  EXPECT_TRUE(stats.isOk()) << stats.status().toString();

  double total = 0.0;
  for (size_t i = 0; i < 4; ++i) total += sums.value().raw(i);
  EXPECT_EQ(total, 7.0 * 64.0);
  return stats.isOk() ? stats.value() : KernelStats{};
}

TEST(BlockExecutorTest, DeviceLaunchIsDeterministicAcrossWorkerCounts) {
  TraceRecorder serial_trace;
  const KernelStats serial = runDeterminismKernel(1, &serial_trace);

  for (uint32_t workers : {2u, 4u, 8u}) {
    TraceRecorder trace;
    const KernelStats parallel = runDeterminismKernel(workers, &trace);

    EXPECT_EQ(parallel.cycles, serial.cycles) << workers << " workers";
    EXPECT_EQ(parallel.busyCycles, serial.busyCycles);
    EXPECT_EQ(parallel.maxThreadCycles, serial.maxThreadCycles);
    EXPECT_EQ(parallel.numBlocks, serial.numBlocks);
    EXPECT_EQ(parallel.threadsPerBlock, serial.threadsPerBlock);
    EXPECT_EQ(parallel.waves, serial.waves);
    EXPECT_EQ(parallel.peakSharedBytes, serial.peakSharedBytes);
    EXPECT_EQ(parallel.counters.values, serial.counters.values);

    // Same SM placement, same timeline, same event order.
    ASSERT_EQ(trace.events().size(), serial_trace.events().size());
    for (size_t i = 0; i < trace.events().size(); ++i) {
      const auto& got = trace.events()[i];
      const auto& want = serial_trace.events()[i];
      EXPECT_EQ(got.name, want.name) << "event " << i;
      EXPECT_EQ(got.track, want.track) << "event " << i;
      EXPECT_EQ(got.startCycle, want.startCycle) << "event " << i;
      EXPECT_EQ(got.durationCycles, want.durationCycles) << "event " << i;
    }
  }
}

TEST(BlockExecutorTest, FailingBlockReportsLowestBlockId) {
  // Under parallel execution several blocks may fail; the reported
  // error must deterministically be the lowest failing block's.
  Device dev(ArchSpec::testTiny());
  int tag = 0;
  LaunchConfig config;
  config.numBlocks = 6;
  config.threadsPerBlock = 32;
  config.hostWorkers = 4;
  auto stats = dev.launch(config, [&tag](ThreadCtx& t) {
    if (t.blockId() >= 3 && t.threadId() == 0) {
      t.block().scheduler().block(&tag);  // simulated deadlock
    }
  });
  ASSERT_FALSE(stats.isOk());
  EXPECT_NE(stats.status().message().find("block 3"), std::string::npos)
      << stats.status().message();
}

TEST(BlockExecutorTest, ParallelLaunchAtomicsSumCorrectly) {
  // 16 blocks x 64 threads all hammering 8 global cells with
  // hostWorkers=8: the atomic RMW path must not lose updates.
  Device dev(ArchSpec::testTiny());
  auto cells = dev.allocateArray<uint64_t>(8);
  ASSERT_TRUE(cells.isOk());
  for (size_t i = 0; i < 8; ++i) cells.value().raw(i) = 0;

  LaunchConfig config;
  config.numBlocks = 16;
  config.threadsPerBlock = 64;
  config.hostWorkers = 8;
  auto stats = dev.launch(config, [&](ThreadCtx& t) {
    cells.value().atomicAdd(t, t.threadId() % 8, 1);
  });
  ASSERT_TRUE(stats.isOk());
  for (size_t i = 0; i < 8; ++i) {
    EXPECT_EQ(cells.value().raw(i), 16u * 8u) << "cell " << i;
  }
  EXPECT_EQ(stats.value().counters.get(Counter::kAtomicRmw), 16u * 64u);
}

}  // namespace
}  // namespace simtomp::gpusim
