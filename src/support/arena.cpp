#include "support/arena.h"

#include <algorithm>

#include "support/status.h"

namespace simtomp::support {

namespace {

constexpr size_t alignUp(size_t value, size_t align) {
  return (value + align - 1) & ~(align - 1);
}

}  // namespace

Arena::Arena(size_t slab_bytes) : default_slab_bytes_(slab_bytes) {
  SIMTOMP_CHECK(slab_bytes >= 4096, "arena slabs below 4KB defeat the point");
}

Arena::~Arena() { reset(); }

size_t Arena::capacityBytes() const {
  size_t total = 0;
  for (const Slab& slab : slabs_) total += slab.capacity;
  return total;
}

void* Arena::allocate(size_t bytes, size_t align) {
  SIMTOMP_CHECK(align != 0 && (align & (align - 1)) == 0,
                "arena alignment must be a power of two");
  if (bytes == 0) bytes = 1;
  if (slab_index_ < slabs_.size()) {
    Slab& slab = slabs_[slab_index_];
    const size_t aligned =
        alignUp(reinterpret_cast<uintptr_t>(slab.data.get()) + offset_,
                align) -
        reinterpret_cast<uintptr_t>(slab.data.get());
    if (aligned + bytes <= slab.capacity) {
      offset_ = aligned + bytes;
      bytes_in_use_ += bytes;
      return slab.data.get() + aligned;
    }
  }
  return refillAndAllocate(bytes, align);
}

void* Arena::refillAndAllocate(size_t bytes, size_t align) {
  // Try the retained slabs after the current one (they were rewound by
  // reset() and may be large enough), then grow.
  size_t next = slab_index_ < slabs_.size() ? slab_index_ + 1 : slabs_.size();
  for (; next < slabs_.size(); ++next) {
    // Slab payloads come from operator new[], which aligns to
    // __STDCPP_DEFAULT_NEW_ALIGNMENT__; over-asking by `align` keeps the
    // fit check conservative for stricter alignments.
    if (bytes + align <= slabs_[next].capacity) break;
  }
  if (next == slabs_.size()) {
    const size_t capacity = std::max(default_slab_bytes_, bytes + align);
    slabs_.push_back({std::unique_ptr<std::byte[]>(new std::byte[capacity]),
                      capacity});
  }
  slab_index_ = next;
  offset_ = 0;
  Slab& slab = slabs_[slab_index_];
  const size_t aligned =
      alignUp(reinterpret_cast<uintptr_t>(slab.data.get()), align) -
      reinterpret_cast<uintptr_t>(slab.data.get());
  SIMTOMP_CHECK(aligned + bytes <= slab.capacity, "arena slab sizing bug");
  offset_ = aligned + bytes;
  bytes_in_use_ += bytes;
  return slab.data.get() + aligned;
}

void Arena::reset() {
  for (size_t i = owned_.size(); i > 0; --i) {
    owned_[i - 1].destroy(owned_[i - 1].obj);
  }
  owned_.clear();
  slab_index_ = 0;
  offset_ = 0;
  bytes_in_use_ = 0;
  ++reset_count_;
}

namespace {

// Per-thread free list of rewound arenas. A block acquires at engine
// construction and releases at engine destruction, both on the worker
// thread that runs the block, so no locking is needed.
std::vector<std::unique_ptr<Arena>>& threadPool() {
  thread_local std::vector<std::unique_ptr<Arena>> pool;
  return pool;
}

}  // namespace

ArenaLease::ArenaLease() {
  auto& pool = threadPool();
  if (!pool.empty()) {
    arena_ = std::move(pool.back());
    pool.pop_back();
  } else {
    arena_ = std::make_unique<Arena>();
  }
}

ArenaLease::~ArenaLease() {
  if (arena_ == nullptr) return;
  arena_->reset();
  if (arena_->capacityBytes() <= kMaxRetainedBytes) {
    threadPool().push_back(std::move(arena_));
  }
}

size_t ArenaLease::pooledCountForTest() { return threadPool().size(); }

void ArenaLease::drainPoolForTest() { threadPool().clear(); }

}  // namespace simtomp::support
