// Tests for the application kernels: workload generators, host
// references, and device-vs-reference verification across execution
// modes and SIMD group sizes.
#include <gtest/gtest.h>

#include "apps/csr.h"
#include "apps/ideal_kernel.h"
#include "apps/laplace3d.h"
#include "apps/muram.h"
#include "apps/sparse_matvec.h"
#include "apps/su3.h"

namespace simtomp::apps {
namespace {

using gpusim::ArchSpec;
using gpusim::Device;

// ---------------- CSR generator ----------------

TEST(CsrTest, GeneratorShapeIsConsistent) {
  CsrGenConfig config;
  config.numRows = 100;
  config.numCols = 80;
  config.meanRowLength = 5;
  config.maxRowLength = 20;
  const CsrMatrix A = generateCsr(config);
  EXPECT_EQ(A.numRows, 100u);
  EXPECT_EQ(A.rowPtr.size(), 101u);
  EXPECT_EQ(A.rowPtr.front(), 0u);
  EXPECT_EQ(A.rowPtr.back(), A.nnz());
  EXPECT_EQ(A.colIdx.size(), A.values.size());
  for (uint32_t r = 0; r < A.numRows; ++r) {
    EXPECT_LE(A.rowPtr[r], A.rowPtr[r + 1]);
    EXPECT_GE(A.rowLength(r), 1u);
    EXPECT_LE(A.rowLength(r), 20u);
  }
}

TEST(CsrTest, ColumnsSortedAndDistinctPerRow) {
  const CsrMatrix A = generateCsr({});
  for (uint32_t r = 0; r < A.numRows; ++r) {
    for (uint32_t k = A.rowPtr[r] + 1; k < A.rowPtr[r + 1]; ++k) {
      EXPECT_LT(A.colIdx[k - 1], A.colIdx[k]);
      EXPECT_LT(A.colIdx[k], A.numCols);
    }
  }
}

TEST(CsrTest, DeterministicForSeed) {
  const CsrMatrix a = generateCsr({});
  const CsrMatrix b = generateCsr({});
  EXPECT_EQ(a.rowPtr, b.rowPtr);
  EXPECT_EQ(a.colIdx, b.colIdx);
  EXPECT_EQ(a.values, b.values);
}

TEST(CsrTest, RowLengthsVary) {
  const CsrMatrix A = generateCsr({});
  uint32_t min_len = ~0u;
  uint32_t max_len = 0;
  for (uint32_t r = 0; r < A.numRows; ++r) {
    min_len = std::min(min_len, A.rowLength(r));
    max_len = std::max(max_len, A.rowLength(r));
  }
  EXPECT_LT(min_len, max_len);  // "varies based on the sparsity"
}

TEST(CsrTest, ReferenceMatchesDenseComputation) {
  CsrGenConfig config;
  config.numRows = 16;
  config.numCols = 16;
  config.meanRowLength = 3;
  config.maxRowLength = 8;
  const CsrMatrix A = generateCsr(config);
  const std::vector<double> x = denseVector(16, 1);
  const std::vector<double> y = spmvReference(A, x);
  // Recompute densely.
  for (uint32_t r = 0; r < 16; ++r) {
    double sum = 0.0;
    for (uint32_t k = A.rowPtr[r]; k < A.rowPtr[r + 1]; ++k) {
      sum += A.values[k] * x[A.colIdx[k]];
    }
    EXPECT_DOUBLE_EQ(y[r], sum);
  }
}

// ---------------- sparse_matvec ----------------

class SpmvFixture : public ::testing::Test {
 protected:
  SpmvFixture() {
    CsrGenConfig config;
    config.numRows = 256;
    config.numCols = 256;
    config.meanRowLength = 8;
    config.maxRowLength = 32;
    A_ = generateCsr(config);
  }
  CsrMatrix A_;
  Device dev_{ArchSpec::testTiny()};
};

TEST_F(SpmvFixture, TwoLevelVerifies) {
  SpmvOptions options;
  options.variant = SpmvVariant::kTwoLevel;
  options.numTeams = 8;
  options.threadsPerTeam = 32;
  auto result = runSpmv(dev_, A_, options);
  ASSERT_TRUE(result.isOk()) << result.status().toString();
  EXPECT_TRUE(result.value().verified) << result.value().maxError;
}

class SpmvGroupSweep : public ::testing::TestWithParam<uint32_t> {};

TEST_P(SpmvGroupSweep, ThreeLevelAtomicVerifies) {
  CsrGenConfig config;
  config.numRows = 128;
  config.meanRowLength = 6;
  config.maxRowLength = 24;
  const CsrMatrix A = generateCsr(config);
  Device dev(ArchSpec::testTiny());
  SpmvOptions options;
  options.variant = SpmvVariant::kThreeLevelAtomic;
  options.numTeams = 4;
  options.threadsPerTeam = 64;
  options.simdlen = GetParam();
  auto result = runSpmv(dev, A, options);
  ASSERT_TRUE(result.isOk()) << result.status().toString();
  EXPECT_TRUE(result.value().verified) << result.value().maxError;
}

INSTANTIATE_TEST_SUITE_P(GroupSizes, SpmvGroupSweep,
                         ::testing::Values(1u, 2u, 4u, 8u, 16u, 32u));

TEST_F(SpmvFixture, ReductionVariantVerifiesAndAvoidsAtomics) {
  SpmvOptions options;
  options.variant = SpmvVariant::kThreeLevelReduction;
  options.numTeams = 4;
  options.threadsPerTeam = 64;
  options.simdlen = 8;
  auto result = runSpmv(dev_, A_, options);
  ASSERT_TRUE(result.isOk()) << result.status().toString();
  EXPECT_TRUE(result.value().verified);
  EXPECT_EQ(result.value().stats.counters.get(gpusim::Counter::kAtomicRmw),
            0u);
}

TEST_F(SpmvFixture, AtomicVariantUsesAtomics) {
  SpmvOptions options;
  options.variant = SpmvVariant::kThreeLevelAtomic;
  options.numTeams = 4;
  options.threadsPerTeam = 64;
  options.simdlen = 8;
  auto result = runSpmv(dev_, A_, options);
  ASSERT_TRUE(result.isOk());
  EXPECT_EQ(result.value().stats.counters.get(gpusim::Counter::kAtomicRmw),
            A_.nnz());
}

TEST_F(SpmvFixture, DeviceMemoryFullyReleased) {
  const size_t before = dev_.memory().bytesInUse();
  SpmvOptions options;
  options.variant = SpmvVariant::kThreeLevelAtomic;
  options.numTeams = 4;
  options.threadsPerTeam = 64;
  options.simdlen = 4;
  auto result = runSpmv(dev_, A_, options);
  ASSERT_TRUE(result.isOk());
  EXPECT_EQ(dev_.memory().bytesInUse(), before);
}

// ---------------- SU3 ----------------

TEST(Su3Test, ReferenceHasUnitaryStructure) {
  // C = A*B must be bilinear: scaling A scales C.
  Su3Workload w = generateSu3(4, 7);
  const std::vector<double> c1 = su3Reference(w);
  for (double& v : w.a) v *= 2.0;
  const std::vector<double> c2 = su3Reference(w);
  for (size_t i = 0; i < c1.size(); ++i) {
    EXPECT_NEAR(c2[i], 2.0 * c1[i], 1e-12);
  }
}

class Su3GroupSweep : public ::testing::TestWithParam<uint32_t> {};

TEST_P(Su3GroupSweep, VerifiesAcrossGroupSizes) {
  const Su3Workload w = generateSu3(64, 13);
  Device dev(ArchSpec::testTiny());
  Su3Options options;
  options.numTeams = 4;
  options.threadsPerTeam = 64;
  options.simdlen = GetParam();
  auto result = runSu3(dev, w, options);
  ASSERT_TRUE(result.isOk()) << result.status().toString();
  EXPECT_TRUE(result.value().verified) << result.value().maxError;
}

INSTANTIATE_TEST_SUITE_P(GroupSizes, Su3GroupSweep,
                         ::testing::Values(1u, 2u, 4u, 8u, 16u, 32u));

TEST(Su3Test, InnerTripIs36) {
  EXPECT_EQ(kSu3InnerTrip, 36u);
}

// ---------------- Ideal kernel ----------------

class IdealGroupSweep : public ::testing::TestWithParam<uint32_t> {};

TEST_P(IdealGroupSweep, VerifiesAcrossGroupSizes) {
  const IdealWorkload w = generateIdeal(64, 32, 3);
  Device dev(ArchSpec::testTiny());
  IdealOptions options;
  options.numTeams = 4;
  options.threadsPerTeam = 64;
  options.simdlen = GetParam();
  auto result = runIdeal(dev, w, options);
  ASSERT_TRUE(result.isOk()) << result.status().toString();
  EXPECT_TRUE(result.value().verified) << result.value().maxError;
}

INSTANTIATE_TEST_SUITE_P(GroupSizes, IdealGroupSweep,
                         ::testing::Values(1u, 2u, 4u, 8u, 16u, 32u));

TEST(IdealTest, FlopsKnobChangesReference) {
  const IdealWorkload w = generateIdeal(4, 8, 3);
  const auto r8 = idealReference(w, 8);
  const auto r16 = idealReference(w, 16);
  bool different = false;
  for (size_t i = 0; i < r8.size(); ++i) different |= r8[i] != r16[i];
  EXPECT_TRUE(different);
}

// ---------------- laplace3d ----------------

class LaplaceModeSweep : public ::testing::TestWithParam<SimdMode> {};

TEST_P(LaplaceModeSweep, VerifiesInEveryMode) {
  const Laplace3dWorkload w = generateLaplace3d(18, 5);
  Device dev(ArchSpec::testTiny());
  Laplace3dOptions options;
  options.mode = GetParam();
  options.numTeams = 4;
  options.threadsPerTeam = 64;
  auto result = runLaplace3d(dev, w, options);
  ASSERT_TRUE(result.isOk()) << result.status().toString();
  EXPECT_TRUE(result.value().verified) << result.value().maxError;
}

INSTANTIATE_TEST_SUITE_P(Modes, LaplaceModeSweep,
                         ::testing::Values(SimdMode::kNoSimd,
                                           SimdMode::kSpmdSimd,
                                           SimdMode::kGenericSimd));

TEST(LaplaceTest, BoundaryIsPreserved) {
  const Laplace3dWorkload w = generateLaplace3d(10, 5);
  const std::vector<double> out = laplace3dReference(w);
  const uint32_t n = w.nx;
  // Face k=0 must be untouched.
  for (uint64_t i = 0; i < n; ++i) {
    for (uint64_t j = 0; j < n; ++j) {
      EXPECT_EQ(out[(i * n + j) * n], w.u[(i * n + j) * n]);
    }
  }
}

// ---------------- MURaM kernels ----------------

class MuramModeSweep : public ::testing::TestWithParam<SimdMode> {};

TEST_P(MuramModeSweep, TransposeVerifies) {
  const MuramWorkload w = generateMuram(12, 10, 16, 5);
  Device dev(ArchSpec::testTiny());
  MuramOptions options;
  options.mode = GetParam();
  options.numTeams = 4;
  options.threadsPerTeam = 64;
  auto result = runMuramTranspose(dev, w, options);
  ASSERT_TRUE(result.isOk()) << result.status().toString();
  EXPECT_TRUE(result.value().verified) << result.value().maxError;
}

TEST_P(MuramModeSweep, InterpolVerifies) {
  const MuramWorkload w = generateMuram(12, 10, 16, 5);
  Device dev(ArchSpec::testTiny());
  MuramOptions options;
  options.mode = GetParam();
  options.numTeams = 4;
  options.threadsPerTeam = 64;
  auto result = runMuramInterpol(dev, w, options);
  ASSERT_TRUE(result.isOk()) << result.status().toString();
  EXPECT_TRUE(result.value().verified) << result.value().maxError;
}

INSTANTIATE_TEST_SUITE_P(Modes, MuramModeSweep,
                         ::testing::Values(SimdMode::kNoSimd,
                                           SimdMode::kSpmdSimd,
                                           SimdMode::kGenericSimd));

TEST(MuramTest, TransposeIsInvolutionOnCube) {
  MuramWorkload w = generateMuram(8, 8, 8, 2);
  const std::vector<double> once = muramTransposeReference(w);
  MuramWorkload w2 = w;
  w2.input = once;
  const std::vector<double> twice = muramTransposeReference(w2);
  EXPECT_EQ(twice, w.input);
}

TEST(MuramTest, InterpolIsExactForLinearData) {
  MuramWorkload w;
  w.nx = 4;
  w.ny = 4;
  w.nz = 8;
  w.input.resize(4 * 4 * 8);
  for (uint64_t i = 0; i < 4; ++i) {
    for (uint64_t j = 0; j < 4; ++j) {
      for (uint64_t k = 0; k < 8; ++k) {
        w.input[(i * 4 + j) * 8 + k] = static_cast<double>(k);
      }
    }
  }
  const std::vector<double> out = muramInterpolReference(w);
  for (uint64_t i = 0; i < 4; ++i) {
    for (uint64_t j = 0; j < 4; ++j) {
      for (uint64_t k = 0; k + 1 < 8; ++k) {
        EXPECT_DOUBLE_EQ(out[(i * 4 + j) * 7 + k],
                         static_cast<double>(k) + 0.5);
      }
    }
  }
}

}  // namespace
}  // namespace simtomp::apps
