// Randomized (seeded) coverage property: for arbitrary combinations of
// execution modes, team/thread shapes, group sizes, schedules and trip
// counts, every loop iteration must execute exactly once per owning
// unit, and the kernel must terminate cleanly.
#include <gtest/gtest.h>

#include <atomic>
#include <vector>

#include "dsl/dsl.h"
#include "support/rng.h"

namespace simtomp::dsl {
namespace {

using gpusim::ArchSpec;
using gpusim::Device;

struct FuzzCase {
  uint64_t seed;
};

class FuzzCoverage : public ::testing::TestWithParam<uint64_t> {};

TEST_P(FuzzCoverage, RandomConfigurationsCoverAllIterations) {
  Rng rng(GetParam());
  Device dev(ArchSpec::testTiny());

  for (int round = 0; round < 6; ++round) {
    LaunchSpec spec;
    spec.numTeams = 1 + static_cast<uint32_t>(rng.nextBelow(4));
    spec.threadsPerTeam = 32 * (1 + static_cast<uint32_t>(rng.nextBelow(4)));
    spec.teamsMode =
        rng.nextBelow(2) ? omprt::ExecMode::kGeneric : omprt::ExecMode::kSPMD;
    spec.parallelMode =
        rng.nextBelow(2) ? omprt::ExecMode::kGeneric : omprt::ExecMode::kSPMD;
    spec.simdlen = 1u << rng.nextBelow(6);  // 1..32
    // Generic teams mode adds an extra warp; keep under testTiny's cap.
    if (spec.teamsMode == omprt::ExecMode::kGeneric &&
        spec.threadsPerTeam + 32 > 256) {
      spec.threadsPerTeam = 224;
    }

    const uint64_t outer_trip = 1 + rng.nextBelow(100);
    const uint64_t inner_trip = rng.nextBelow(70);

    std::vector<std::atomic<int>> outer_hits(outer_trip);
    std::vector<std::atomic<int>> inner_hits(outer_trip * (inner_trip + 1));

    auto stats = targetTeamsDistributeParallelFor(
        dev, spec, outer_trip, [&](OmpContext& ctx, uint64_t row) {
          if (ctx.simdGroupId() == 0) outer_hits[row]++;
          simd(ctx, inner_trip,
               [&inner_hits, row, inner_trip](OmpContext&, uint64_t k) {
                 inner_hits[row * (inner_trip + 1) + k]++;
               });
        });
    ASSERT_TRUE(stats.isOk())
        << stats.status().toString() << " seed=" << GetParam()
        << " round=" << round;

    for (uint64_t row = 0; row < outer_trip; ++row) {
      EXPECT_EQ(outer_hits[row].load(), 1)
          << "row " << row << " teams=" << spec.numTeams
          << " threads=" << spec.threadsPerTeam
          << " simdlen=" << spec.simdlen;
      for (uint64_t k = 0; k < inner_trip; ++k) {
        EXPECT_EQ(inner_hits[row * (inner_trip + 1) + k].load(), 1)
            << "row " << row << " k " << k;
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FuzzCoverage,
                         ::testing::Values(11u, 22u, 33u, 44u, 55u, 66u, 77u,
                                           88u));

class FuzzSchedules : public ::testing::TestWithParam<uint64_t> {};

TEST_P(FuzzSchedules, RandomScheduleConfigurationsCover) {
  Rng rng(GetParam());
  Device dev(ArchSpec::testTiny());

  for (int round = 0; round < 6; ++round) {
    LaunchSpec spec;
    spec.numTeams = 1;
    spec.threadsPerTeam = 32 * (1 + static_cast<uint32_t>(rng.nextBelow(4)));
    spec.simdlen = 1u << rng.nextBelow(6);
    const auto kind =
        static_cast<omprt::ForSchedule>(rng.nextBelow(3));
    const uint64_t chunk = rng.nextBelow(9);
    const uint64_t trip = rng.nextBelow(200);

    std::vector<std::atomic<int>> hits(trip + 1);
    auto stats = target(dev, spec, [&](OmpContext& ctx) {
      parallelForSchedule(
          ctx, trip,
          [&hits](OmpContext& c, uint64_t iv) {
            if (c.simdGroupId() == 0) hits[iv]++;
          },
          omprt::ScheduleClause{kind, chunk},
          omprt::ParallelConfig{omprt::ExecMode::kSPMD, spec.simdlen});
    });
    ASSERT_TRUE(stats.isOk()) << "seed=" << GetParam();
    for (uint64_t iv = 0; iv < trip; ++iv) {
      EXPECT_EQ(hits[iv].load(), 1)
          << "iv=" << iv << " kind=" << static_cast<int>(kind)
          << " chunk=" << chunk << " simdlen=" << spec.simdlen;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FuzzSchedules,
                         ::testing::Values(5u, 6u, 7u, 8u));

}  // namespace
}  // namespace simtomp::dsl
