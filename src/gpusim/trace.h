// Execution tracing: record spans on the modeled SM timeline and emit
// Chrome trace-event JSON (chrome://tracing, Perfetto).
//
// Attach a TraceRecorder to a Device before launching; every block
// becomes one complete ("X") event on its SM's track and every kernel
// a span on a dedicated track. With profiling enabled (simprof) the
// trace additionally carries nested construct spans on the SM tracks,
// counter tracks ("C" events: active blocks / active lanes over
// modeled time) and instant events ("i": faults, resilience retries,
// tune decisions). Timestamps are simulator cycles.
//
// The serialized JSON opens with "M" metadata events naming every
// process and track (stable-ordered), so Perfetto shows labeled rows
// instead of bare pids/tids.
#pragma once

#include <cstdint>
#include <map>
#include <ostream>
#include <string>
#include <vector>

#include "support/status.h"

namespace simtomp::gpusim {

class TraceRecorder {
 public:
  /// Chrome trace-event phase of a recorded event.
  enum class Phase : uint8_t {
    kComplete = 0,  ///< "X": a span with start + duration
    kInstant,       ///< "i": a point event on the kernel track
    kCounter,       ///< "C": a named counter sample
  };

  struct Event {
    std::string name;
    uint32_t track = 0;  ///< SM id, or kKernelTrack for kernel-level events
    uint64_t startCycle = 0;
    uint64_t durationCycles = 0;
    Phase phase = Phase::kComplete;
    uint64_t value = 0;  ///< counter sample value (kCounter only)
  };

  static constexpr uint32_t kKernelTrack = 0xFFFFFFFFu;

  void recordBlock(uint32_t block_id, uint32_t sm_id, uint64_t start,
                   uint64_t duration);
  void recordKernel(std::string name, uint64_t duration);
  /// Nested construct span on an SM track (deep tracing).
  void recordSpan(uint32_t track, std::string name, uint64_t start,
                  uint64_t duration);
  /// Point event on the kernel track (fault / retry / tune decision).
  void recordInstant(std::string name, uint64_t at);
  /// Counter-track sample (step function between samples).
  void recordCounter(std::string name, uint64_t at, uint64_t value);
  /// Override the default "SM <track>" label for a track's metadata
  /// row (e.g. per-tenant serving tracks). Unnamed tracks keep the
  /// default, so existing SM traces are unaffected.
  void nameTrack(uint32_t track, std::string name);
  void clear() {
    events_.clear();
    trackNames_.clear();
  }

  [[nodiscard]] const std::vector<Event>& events() const { return events_; }
  [[nodiscard]] size_t size() const { return events_.size(); }

  /// Serialize as a Chrome trace-event JSON array: "M" track metadata
  /// first (stable order), then the events in record order.
  void writeChromeJson(std::ostream& out) const;
  Status writeChromeJson(const std::string& path) const;

 private:
  std::vector<Event> events_;
  std::map<uint32_t, std::string> trackNames_;
};

}  // namespace simtomp::gpusim
