// Serve resilience: goodput under a deterministic fault storm.
//
// The same deadline-carrying workload (400 requests, 2 tenants, waves
// of 20 over 2 tiny devices) runs twice through identical launch
// services: once clean, once with a storm that arms a transient
// device-lost fault on every 10th request. Goodput is *modeled*:
// completions that met their deadline budget (TenantStats.deadlineHit)
// — so the number is deterministic, not a wall-clock artifact. The
// gate: storm goodput must stay >= 70% of clean goodput, i.e. retry
// budgets, breakers and migration must actually absorb the storm
// instead of letting it cascade. Results land in
// BENCH_serve_resilience.json; tools/ci.sh stage 11 runs this after
// the chaos-campaign byte-compare.
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include "bench_common.h"
#include "hostrt/device_manager.h"
#include "simserve/mix.h"
#include "simserve/service.h"

namespace {

using namespace simtomp;
using bench::Row;

constexpr size_t kDevices = 2;
constexpr uint32_t kRequests = 400;
constexpr uint32_t kWave = 20;
constexpr uint32_t kFaultEvery = 10;  ///< storm: every 10th request
constexpr uint64_t kDeadline = 16384;
constexpr double kGoodputGate = 0.70;

struct RunOut {
  uint64_t goodput = 0;  ///< deadline hits across tenants
  uint64_t completed = 0;
  uint64_t failed = 0;
  uint64_t migrated = 0;
  uint64_t breakerTrips = 0;
  double hostMs = 0.0;
};

RunOut runOnce(bool storm) {
  std::vector<gpusim::ArchSpec> specs(kDevices, gpusim::ArchSpec::testTiny());
  hostrt::DeviceManager mgr(std::move(specs));
  simserve::LaunchService service(mgr, simserve::ServiceConfig{});

  const char* const tenants[2] = {"alpha", "beta"};
  for (uint32_t t = 0; t < 2; ++t) {
    simserve::TenantSpec spec;
    spec.name = tenants[t];
    spec.priority = 1 + t;
    spec.maxInFlight = kWave;
    spec.maxQueued = kWave;
    spec.deadlineCycles = kDeadline;
    const Status st = service.registerTenant(spec);
    if (!st.isOk()) {
      std::fprintf(stderr, "FATAL: %s\n", st.toString().c_str());
      std::abort();
    }
  }

  const bench::WallTimer timer;
  for (uint32_t r = 0; r < kRequests; ++r) {
    const size_t kernel = r % 3;
    const uint64_t trip = 64 + 64 * (r % 3);
    auto out = std::make_shared<std::vector<uint64_t>>(trip, 0);
    omprt::TargetConfig config;
    config.teamsMode = omprt::ExecMode::kSPMD;
    config.numTeams = 2;
    config.threadsPerTeam = 64;
    config.parallelMode = omprt::ExecMode::kSPMD;
    config.simdlen = 4;
    config.check.mode = simcheck::CheckMode::kOff;
    config.tripCount = trip;
    config.watchdogSteps = 2000000;
    config.fault.spec = "off";
    if (storm && r % kFaultEvery == kFaultEvery - 1) {
      // Unique block= discriminator: the injector's canonical-spec
      // dedup must not swallow later storm cells (block is ignored at
      // fire time for the device-lost kinds).
      config.fault.spec =
          "device_lost_pre:count=1:block=" + std::to_string(1 + r);
    }
    const std::string fingerprint = simserve::mixKernelNames()[kernel] +
                                    "/t" + std::to_string(trip);
    const Result<uint64_t> admitted = service.submit(
        tenants[r % 2], std::move(config),
        simserve::makeMixRegion(kernel, trip, out), fingerprint);
    if (!admitted.isOk()) {
      std::fprintf(stderr, "FATAL: submit %u: %s\n", r,
                   admitted.status().toString().c_str());
      std::abort();
    }
    if ((r + 1) % kWave == 0) {
      service.pump();
      const Status st = service.drain();
      if (!st.isOk()) {
        std::fprintf(stderr, "FATAL: drain: %s\n", st.toString().c_str());
        std::abort();
      }
    }
  }
  const Status done = service.runToCompletion();
  if (!done.isOk()) {
    std::fprintf(stderr, "FATAL: %s\n", done.toString().c_str());
    std::abort();
  }

  RunOut run;
  run.hostMs = timer.elapsedMs();
  for (const char* name : tenants) {
    const simserve::TenantStats s = service.tenantStats(name);
    run.goodput += s.deadlineHit;
    run.completed += s.completed;
    run.failed += s.failed;
    run.migrated += s.migrated;
    run.breakerTrips += s.breakerTrips;
  }
  return run;
}

}  // namespace

int main() {
  const RunOut clean = runOnce(/*storm=*/false);
  const RunOut storm = runOnce(/*storm=*/true);

  const double ratio =
      clean.goodput > 0
          ? static_cast<double>(storm.goodput) /
                static_cast<double>(clean.goodput)
          : 0.0;

  std::vector<Row> rows;
  rows.push_back({"clean", clean.goodput, 1.0, clean.hostMs});
  rows.push_back({"storm (1-in-10 device-lost)", storm.goodput, ratio,
                  storm.hostMs});
  bench::printTable("Serve resilience: goodput (deadline hits) under storm",
                    "clean goodput (requests)", clean.goodput, rows);
  std::printf(
      "storm: completed %llu, failed %llu, migrated %llu, breaker trips "
      "%llu; goodput ratio %.3f (gate %.2f)\n",
      static_cast<unsigned long long>(storm.completed),
      static_cast<unsigned long long>(storm.failed),
      static_cast<unsigned long long>(storm.migrated),
      static_cast<unsigned long long>(storm.breakerTrips), ratio,
      kGoodputGate);

  std::FILE* f = std::fopen("BENCH_serve_resilience.json", "w");
  if (f == nullptr) {
    std::fprintf(stderr, "FATAL: cannot write BENCH_serve_resilience.json\n");
    return 1;
  }
  std::fprintf(
      f,
      "{\n"
      "  \"bench\": \"serve_resilience\",\n"
      "  \"requests\": %u,\n"
      "  \"fault_every\": %u,\n"
      "  \"deadline_cycles\": %llu,\n"
      "  \"clean_goodput\": %llu,\n"
      "  \"storm_goodput\": %llu,\n"
      "  \"storm_completed\": %llu,\n"
      "  \"storm_failed\": %llu,\n"
      "  \"storm_migrated\": %llu,\n"
      "  \"storm_breaker_trips\": %llu,\n"
      "  \"goodput_ratio\": %.4f,\n"
      "  \"goodput_gate\": %.2f\n"
      "}\n",
      kRequests, kFaultEvery, static_cast<unsigned long long>(kDeadline),
      static_cast<unsigned long long>(clean.goodput),
      static_cast<unsigned long long>(storm.goodput),
      static_cast<unsigned long long>(storm.completed),
      static_cast<unsigned long long>(storm.failed),
      static_cast<unsigned long long>(storm.migrated),
      static_cast<unsigned long long>(storm.breakerTrips), ratio,
      kGoodputGate);
  std::fclose(f);
  std::printf("wrote BENCH_serve_resilience.json\n");

  if (ratio < kGoodputGate) {
    std::fprintf(stderr,
                 "FATAL: storm goodput ratio %.3f below the %.2f gate\n",
                 ratio, kGoodputGate);
    return 1;
  }
  return 0;
}
