// Directive front-end: parse `#pragma omp ...` directive strings into a
// structured DirectiveSpec and lower them to launch configurations.
//
// The paper stresses that its code-generation path is front-end
// independent (section 4.2): any front-end able to produce a trip
// count and a loop body can lower onto the runtime. This module is the
// smallest possible such front-end — a parser for the directive
// *text*, e.g.
//
//   "target teams distribute parallel for simd simdlen(8) "
//   "num_teams(64) thread_limit(128) schedule(dynamic,4) "
//   "mode(spmd) parallel_mode(generic) map(tofrom: x)"
//
// and the mode-inference rule of paper sections 3.2/6.5: combined
// (tightly nested) constructs run SPMD, split ones run generic, unless
// an explicit mode clause overrides.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "dsl/dsl.h"
#include "hostrt/data_env.h"
#include "omprt/modes.h"
#include "omprt/schedule.h"
#include "support/status.h"

namespace simtomp::front {

struct MapClause {
  hostrt::MapType type = hostrt::MapType::kToFrom;
  std::string name;
};

struct ReductionClause {
  char op = '+';  ///< only '+' is supported by the runtime today
  std::string name;
};

struct DirectiveSpec {
  // Constructs present in the directive, in OpenMP nesting order.
  bool hasTarget = false;
  bool hasTeams = false;
  bool hasDistribute = false;
  bool hasParallel = false;
  bool hasFor = false;
  bool hasSimd = false;

  // Clauses.
  uint32_t numTeams = 0;     ///< num_teams(n); 0 = runtime default
  uint32_t threadLimit = 0;  ///< thread_limit(n); 0 = runtime default
  uint32_t simdlen = 0;      ///< simdlen(n); 0 = runtime default
  uint32_t deviceNum = 0;    ///< device(n)
  uint32_t collapse = 1;     ///< collapse(n); 1 or 2 supported
  omprt::ScheduleClause schedule;
  bool hasSchedule = false;
  std::vector<MapClause> maps;
  std::vector<ReductionClause> reductions;

  // Explicit execution-mode overrides (extension clauses; absent in
  // real OpenMP, where the compiler decides).
  bool teamsModeExplicit = false;
  omprt::ExecMode teamsMode = omprt::ExecMode::kSPMD;
  bool parallelModeExplicit = false;
  omprt::ExecMode parallelMode = omprt::ExecMode::kSPMD;

  // Autotuning (extension clauses; see src/simtune). `tune(key)` names
  // the kernel in the tuning cache and makes every launch-shape clause
  // that was not given explicitly auto; individual clauses can also opt
  // in with an `auto` argument, e.g. simdlen(auto) or num_teams(auto).
  std::string tuneKey;
  // Fault injection / watchdog (extension clauses; see src/simfault).
  // `fault(plan)` carries a SIMTOMP_FAULT-style plan ("off" pins
  // injection off); `watchdog(n|off)` sets the per-block step budget.
  std::string faultSpec;
  uint64_t watchdogSteps = 0;     ///< 0 = auto; simfault::kWatchdogOff = off
  // Profiling (extension clause; see src/simprof). `profile(on|off)`
  // pins hierarchical profiling for this launch; absent (or
  // `profile(auto)`) defers to the SIMTOMP_PROF environment variable.
  simprof::ProfileMode profileMode = simprof::ProfileMode::kAuto;
  bool numTeamsAuto = false;      ///< num_teams(auto)
  bool threadLimitAuto = false;   ///< thread_limit(auto)
  bool simdlenAuto = false;       ///< simdlen(auto)
  bool teamsModeAuto = false;     ///< mode(auto)
  bool parallelModeAuto = false;  ///< parallel_mode(auto)

  /// Lower to a LaunchSpec: defaults + the tightly-nested => SPMD rule.
  [[nodiscard]] dsl::LaunchSpec toLaunchSpec(
      const gpusim::ArchSpec& arch) const;
};

/// Parse a directive string (without the "#pragma omp" prefix; a
/// leading prefix is tolerated and skipped).
Result<DirectiveSpec> parseDirective(std::string_view text);

}  // namespace simtomp::front
