// Resilience-chain tests: the DeviceManager's graceful-degradation
// ladder (retry with modeled backoff, SIMD -> generic mode fallback,
// host-serial reference), the device-health state machine, report
// publication and survival across resets and failed launches, report
// byte-identity across reruns and worker counts, and the hardened
// TargetTaskQueue that converts throwing target regions into failed
// futures instead of wedging drain().
#include <gtest/gtest.h>

#include <stdexcept>
#include <string>
#include <vector>

#include "dsl/dsl.h"
#include "hostrt/device_manager.h"
#include "omprt/target.h"
#include "simfault/fault.h"
#include "simfault/resilience.h"
#include "support/status.h"

namespace simtomp::hostrt {
namespace {

using gpusim::ArchSpec;

/// The matrix kernel of tools/simtomp_fault: three-level structure so
/// generic-mode launches exercise barriers and the sharing space.
struct MatrixKernel {
  static constexpr uint64_t kTile = 8;
  static constexpr uint64_t kTrip = 64;

  std::vector<uint64_t> out = std::vector<uint64_t>(kTrip, 0);

  omprt::TargetRegionFn region() {
    return [this](omprt::OmpContext& ctx) {
      omprt::ParallelConfig pc;
      pc.modeAuto = true;
      pc.simdGroupSize = 0;
      const omprt::rt::Range r =
          omprt::rt::distributeStatic(ctx, kTrip / kTile);
      auto tile_body = [this, base = r.begin](omprt::OmpContext& c,
                                              uint64_t logical) {
        const uint64_t tile = base + logical;
        c.gpu().work(2);
        dsl::simd(c, kTile,
                  [this, tile](omprt::OmpContext& cc, uint64_t lane) {
                    const uint64_t i = tile * kTile + lane;
                    cc.gpu().work(2);
                    out[i] = 3 * i + 7;
                  });
      };
      dsl::parallelFor(ctx, r.size(), tile_body, pc);
    };
  }

  [[nodiscard]] bool verified() const {
    for (uint64_t i = 0; i < kTrip; ++i) {
      if (out[i] != 3 * i + 7) return false;
    }
    return true;
  }
};

omprt::TargetConfig simdConfig(const char* faultSpec,
                               uint32_t workers = 1) {
  omprt::TargetConfig config;
  config.teamsMode = omprt::ExecMode::kGeneric;
  config.numTeams = 2;
  config.threadsPerTeam = 64;
  config.parallelMode = omprt::ExecMode::kGeneric;
  config.simdlen = 4;
  config.hostWorkers = workers;
  config.check.mode = simcheck::CheckMode::kOff;
  config.fault.spec = faultSpec;
  config.watchdogSteps = 200000;
  return config;
}

TEST(ResilienceTest, TransientFaultRecoversViaRetry) {
  DeviceManager mgr({ArchSpec::testTiny()});
  mgr.setDefaultResilience({}, simfault::ResilienceMode::kOn);
  MatrixKernel kernel;
  auto stats =
      mgr.launchOn(0, simdConfig("device_lost_pre:count=1"), kernel.region());
  ASSERT_TRUE(stats.isOk()) << stats.status().toString();
  EXPECT_TRUE(kernel.verified());

  const simfault::ResilienceReport& report = mgr.lastResilienceReport(0);
  EXPECT_TRUE(report.succeeded());
  EXPECT_TRUE(report.recovered);
  ASSERT_EQ(report.attempts.size(), 2u);
  EXPECT_EQ(report.attempts[0].stage, simfault::RecoveryStage::kInitial);
  EXPECT_EQ(report.attempts[0].code, StatusCode::kUnavailable);
  EXPECT_EQ(report.attempts[1].stage, simfault::RecoveryStage::kRetry);
  EXPECT_EQ(report.attempts[1].code, StatusCode::kOk);
  EXPECT_EQ(report.attempts[1].backoffMs, 1u);  // modeled, never slept
  EXPECT_EQ(report.resets, 1u);
  EXPECT_EQ(report.healthTrail, "healthy>faulted>reset>healthy");
  EXPECT_EQ(mgr.deviceHealth(0), simfault::DeviceHealth::kHealthy);
  EXPECT_EQ(mgr.device(0).resetCount(), 1u);
}

TEST(ResilienceTest, RetryBackoffGrowsAndCaps) {
  DeviceManager mgr({ArchSpec::testTiny()});
  simfault::ResiliencePolicy policy;
  policy.maxRetries = 4;
  policy.backoffBaseMs = 2;
  policy.backoffCapMs = 5;
  policy.modeFallback = false;
  policy.hostSerial = false;
  mgr.setDefaultResilience(policy, simfault::ResilienceMode::kOn);
  MatrixKernel kernel;
  // Fires on every attempt: the chain exhausts its retries.
  auto stats =
      mgr.launchOn(0, simdConfig("device_lost_pre:count=0"), kernel.region());
  ASSERT_FALSE(stats.isOk());
  const simfault::ResilienceReport& report = mgr.lastResilienceReport(0);
  ASSERT_EQ(report.attempts.size(), 5u);  // initial + 4 retries
  EXPECT_EQ(report.attempts[1].backoffMs, 2u);
  EXPECT_EQ(report.attempts[2].backoffMs, 4u);
  EXPECT_EQ(report.attempts[3].backoffMs, 5u);  // capped
  EXPECT_EQ(report.attempts[4].backoffMs, 5u);
  EXPECT_FALSE(report.recovered);
  EXPECT_EQ(report.finalCode, StatusCode::kUnavailable);
  EXPECT_EQ(mgr.deviceHealth(0), simfault::DeviceHealth::kFaulted);
}

TEST(ResilienceTest, SimdFaultRecoversViaModeFallback) {
  DeviceManager mgr({ArchSpec::testTiny()});
  mgr.setDefaultResilience({}, simfault::ResilienceMode::kOn);
  MatrixKernel kernel;
  auto stats = mgr.launchOn(
      0, simdConfig("sharing_exhausted:block=0:count=0:when=simd"),
      kernel.region());
  ASSERT_TRUE(stats.isOk()) << stats.status().toString();
  EXPECT_TRUE(kernel.verified()) << "fallback must produce correct results";

  const simfault::ResilienceReport& report = mgr.lastResilienceReport(0);
  ASSERT_EQ(report.attempts.size(), 2u);
  EXPECT_EQ(report.attempts[0].code, StatusCode::kResourceExhausted);
  EXPECT_EQ(report.attempts[1].stage, simfault::RecoveryStage::kModeFallback);
  EXPECT_EQ(report.attempts[1].code, StatusCode::kOk);
  EXPECT_NE(report.attempts[1].shape.find("simdlen=1"), std::string::npos)
      << report.attempts[1].shape;
  EXPECT_TRUE(report.recovered);
}

TEST(ResilienceTest, PersistentFaultRecoversViaHostSerial) {
  DeviceManager mgr({ArchSpec::testTiny()});
  mgr.setDefaultResilience({}, simfault::ResilienceMode::kOn);
  MatrixKernel kernel;
  auto stats = mgr.launchOn(0, simdConfig("livelock:block=0:count=0"),
                            kernel.region());
  ASSERT_TRUE(stats.isOk()) << stats.status().toString();
  EXPECT_TRUE(kernel.verified());

  const simfault::ResilienceReport& report = mgr.lastResilienceReport(0);
  ASSERT_EQ(report.attempts.size(), 3u);
  EXPECT_EQ(report.attempts[0].code, StatusCode::kDeadlineExceeded);
  EXPECT_EQ(report.attempts[1].stage, simfault::RecoveryStage::kModeFallback);
  EXPECT_EQ(report.attempts[1].code, StatusCode::kDeadlineExceeded);
  EXPECT_EQ(report.attempts[2].stage, simfault::RecoveryStage::kHostSerial);
  EXPECT_EQ(report.attempts[2].code, StatusCode::kOk);
  EXPECT_EQ(report.resets, 2u);
  EXPECT_EQ(mgr.deviceHealth(0), simfault::DeviceHealth::kHealthy);
}

TEST(ResilienceTest, UnrecoveredFaultLeavesDeviceFaulted) {
  DeviceManager mgr({ArchSpec::testTiny()});
  simfault::ResiliencePolicy policy;
  policy.hostSerial = false;
  mgr.setDefaultResilience(policy, simfault::ResilienceMode::kOn);
  MatrixKernel kernel;
  auto stats = mgr.launchOn(0, simdConfig("barrier_corrupt:block=0:count=0"),
                            kernel.region());
  ASSERT_FALSE(stats.isOk());
  EXPECT_EQ(stats.status().code(), StatusCode::kFailedPrecondition);
  const simfault::ResilienceReport& report = mgr.lastResilienceReport(0);
  EXPECT_FALSE(report.succeeded());
  EXPECT_EQ(report.finalCode, StatusCode::kFailedPrecondition);
  EXPECT_FALSE(report.finalMessage.empty());
  EXPECT_EQ(mgr.deviceHealth(0), simfault::DeviceHealth::kFaulted);
}

TEST(ResilienceTest, ModeOffSurfacesFailuresDirectly) {
  DeviceManager mgr({ArchSpec::testTiny()});
  mgr.setDefaultResilience({}, simfault::ResilienceMode::kOff);
  MatrixKernel kernel;
  auto stats =
      mgr.launchOn(0, simdConfig("device_lost_pre:count=1"), kernel.region());
  ASSERT_FALSE(stats.isOk());
  EXPECT_EQ(stats.status().code(), StatusCode::kUnavailable);
  // No chain ran: the report is the empty default.
  EXPECT_TRUE(mgr.lastResilienceReport(0).attempts.empty());
}

TEST(ResilienceTest, ReportByteIdenticalAcrossRerunsAndWorkers) {
  const auto run = [](uint32_t workers) {
    DeviceManager mgr({ArchSpec::testTiny()});
    mgr.setDefaultResilience({}, simfault::ResilienceMode::kOn);
    MatrixKernel kernel;
    (void)mgr.launchOn(0, simdConfig("livelock:block=0:count=0", workers),
                       kernel.region());
    return mgr.lastResilienceReport(0).toString();
  };
  const std::string first = run(1);
  EXPECT_FALSE(first.empty());
  EXPECT_EQ(first, run(1)) << "rerun must be byte-identical";
  EXPECT_EQ(first, run(8)) << "worker count must not change the report";
}

TEST(ResilienceTest, ReportsSurviveResetAndFailedLaunch) {
  DeviceManager mgr({ArchSpec::testTiny()});
  mgr.setDefaultResilience({}, simfault::ResilienceMode::kOn);
  MatrixKernel kernel;
  ASSERT_TRUE(
      mgr.launchOn(0, simdConfig("device_lost_pre:count=1"), kernel.region())
          .isOk());
  const std::string recovered = mgr.lastResilienceReport(0).toString();

  // A manual device reset keeps the published report.
  mgr.resetDevice(0);
  EXPECT_EQ(mgr.deviceHealth(0), simfault::DeviceHealth::kReset);
  EXPECT_EQ(mgr.lastResilienceReport(0).toString(), recovered);

  // A subsequent *failed* launch replaces it with the failure report —
  // publication happens also (especially) when the chain loses.
  simfault::ResiliencePolicy strict;
  strict.maxRetries = 0;
  strict.modeFallback = false;
  strict.hostSerial = false;
  mgr.setDefaultResilience(strict, simfault::ResilienceMode::kOn);
  ASSERT_FALSE(
      mgr.launchOn(0, simdConfig("trap:block=0:step=5:count=0"),
                   kernel.region())
          .isOk());
  EXPECT_FALSE(mgr.lastResilienceReport(0).succeeded());
  EXPECT_EQ(mgr.lastResilienceReport(0).finalCode, StatusCode::kInternal);

  // Device-level check report survives alongside (see
  // DeviceFaultTest.LastCheckReportSurvivesLostPre for the device half).
  EXPECT_EQ(mgr.device(0).resetCount(), 2u);  // chain reset + manual reset
}

// ---------------- hardened TargetTaskQueue ----------------

TEST(AsyncHardeningTest, ThrowingRegionFailsFutureNotQueue) {
  DeviceManager mgr({ArchSpec::testTiny()});
  omprt::TargetConfig config;
  config.numTeams = 1;
  config.threadsPerTeam = 32;
  config.hostWorkers = 1;

  auto bad = mgr.launchOnAsync(0, config, [](omprt::OmpContext& ctx) {
    if (ctx.gpu().threadId() == 0) {
      throw std::runtime_error("kernel bug: exploding target region");
    }
  });
  auto status_carrier = mgr.launchOnAsync(0, config, [](omprt::OmpContext& ctx) {
    if (ctx.gpu().threadId() == 0) {
      throw StatusException(Status::resourceExhausted("carried across"));
    }
  });
  // A healthy task behind the throwing ones still runs to completion.
  auto good =
      mgr.launchOnAsync(0, config, [](omprt::OmpContext& ctx) {
        ctx.gpu().work(1);
      });

  // drain() must return: the helper thread survived both throws.
  mgr.drainAll();
  EXPECT_EQ(mgr.taskQueue(0).pendingTasks(), 0u);

  auto bad_result = bad.get();
  ASSERT_FALSE(bad_result.isOk());
  EXPECT_EQ(bad_result.status().code(), StatusCode::kInternal);
  EXPECT_NE(bad_result.status().message().find("exploding target region"),
            std::string::npos)
      << bad_result.status().toString();

  auto carried = status_carrier.get();
  ASSERT_FALSE(carried.isOk());
  EXPECT_EQ(carried.status().code(), StatusCode::kResourceExhausted);
  EXPECT_NE(carried.status().message().find("carried across"),
            std::string::npos);

  EXPECT_TRUE(good.get().isOk());
  EXPECT_EQ(mgr.taskQueue(0).completedTasks(), 3u);
}

}  // namespace
}  // namespace simtomp::hostrt
