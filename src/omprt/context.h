// OmpContext: the per-device-thread view of the OpenMP runtime.
//
// Every simulated GPU thread builds one OmpContext at kernel entry; the
// runtime entry points (rt::parallel, rt::simd, ...) and user region
// code receive it by reference. Besides the thread's GPU context and
// the team's shared state it tracks the *current parallel frame*: in
// SPMD mode that information is thread-local (paper section 5.4 — "all
// of this information is now local to each thread"), in generic mode
// workers populate it from the published TeamState when they wake.
#pragma once

#include <cstdint>

#include "gpusim/thread.h"
#include "omprt/modes.h"
#include "omprt/team_state.h"
#include "support/lane_mask.h"

namespace simtomp::omprt {

class OmpContext {
 public:
  OmpContext(gpusim::ThreadCtx& gpu, TeamState& team)
      : gpu_(&gpu), team_(&team) {}

  [[nodiscard]] gpusim::ThreadCtx& gpu() { return *gpu_; }
  [[nodiscard]] TeamState& team() { return *team_; }
  [[nodiscard]] const TeamState& team() const { return *team_; }

  // ---- OpenMP queries ----
  [[nodiscard]] uint32_t teamNum() const { return gpu_->blockId(); }
  [[nodiscard]] uint32_t numTeams() const { return gpu_->numBlocks(); }
  /// OpenMP thread id within the current parallel region. With three
  /// levels of parallelism an "OpenMP thread" is a SIMD group, so this
  /// is the group index (0 outside parallel regions).
  [[nodiscard]] uint32_t threadNum() const {
    return in_parallel_ ? simdGroup() : 0;
  }
  /// Number of OpenMP threads (= SIMD groups) in the current region.
  [[nodiscard]] uint32_t numThreads() const {
    return in_parallel_ ? num_groups_ : 1;
  }

  // ---- SIMD group mapping (paper section 5.1) ----
  /// Which SIMD group this device thread belongs to.
  [[nodiscard]] uint32_t simdGroup() const {
    return gpu_->threadId() / groupSize();
  }
  /// The thread's id within its SIMD group; mains are always 0.
  [[nodiscard]] uint32_t simdGroupId() const {
    return gpu_->threadId() % groupSize();
  }
  /// Size of every SIMD group in the current parallel region.
  [[nodiscard]] uint32_t simdGroupSize() const { return groupSize(); }
  [[nodiscard]] bool isSimdGroupLeader() const { return simdGroupId() == 0; }
  /// Bit-mask of the warp lanes sharing this thread's SIMD group.
  [[nodiscard]] LaneMask simdMask() const {
    const uint32_t g = groupSize();
    const uint32_t base = (gpu_->laneId() / g) * g;
    return rangeMask(base, g);
  }

  // ---- Parallel frame (maintained by the runtime) ----
  [[nodiscard]] bool inParallel() const { return in_parallel_; }
  [[nodiscard]] const ParallelConfig& parallelConfig() const {
    return parallel_config_;
  }
  [[nodiscard]] bool parallelIsSPMD() const {
    return parallel_config_.mode == ExecMode::kSPMD;
  }

  void enterParallel(const ParallelConfig& config, uint32_t num_groups) {
    in_parallel_ = true;
    parallel_config_ = config;
    num_groups_ = num_groups;
  }
  void exitParallel() {
    in_parallel_ = false;
    parallel_config_ = ParallelConfig{};
    num_groups_ = 1;
  }

 private:
  [[nodiscard]] uint32_t groupSize() const {
    return in_parallel_ ? parallel_config_.simdGroupSize : 1;
  }

  gpusim::ThreadCtx* gpu_;
  TeamState* team_;
  bool in_parallel_ = false;
  ParallelConfig parallel_config_{};
  uint32_t num_groups_ = 1;
};

}  // namespace simtomp::omprt
