// Fuzz throughput: the differential fuzzer's scale-and-determinism
// gate.
//
// One fixed-seed campaign (16 programs, the full 6-cell differential
// matrix) runs twice; the findings logs must be byte-identical
// (aborts otherwise — the campaign determinism contract of
// src/simfuzz/harness.h) and both runs must be clean, since every
// generated program is specified-behavior-only. Throughput is
// reported as simulator runs per host-second in BENCH_fuzz.json,
// which is how the cost of one fuzz seed is tracked across PRs:
// a generated program costs runs/seed simulator executions, so a
// regression here makes every CI fuzz smoke proportionally slower.
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <vector>

#include "bench_common.h"
#include "simfuzz/harness.h"

namespace {

using namespace simtomp;
using bench::Row;

constexpr uint64_t kSeedBegin = 0;
constexpr uint64_t kSeedEnd = 16;

struct RunOut {
  simfuzz::CampaignResult result;
  double hostMs = 0.0;
};

RunOut runOnce() {
  simfuzz::CampaignOptions opt;
  opt.seedBegin = kSeedBegin;
  opt.seedEnd = kSeedEnd;
  const auto start = std::chrono::steady_clock::now();
  RunOut out;
  out.result = simfuzz::runCampaign(opt);
  out.hostMs = std::chrono::duration<double, std::milli>(
                   std::chrono::steady_clock::now() - start)
                   .count();
  return out;
}

}  // namespace

int main() {
  const RunOut first = runOnce();
  const RunOut second = runOnce();

  if (first.result.log != second.result.log) {
    std::fprintf(stderr,
                 "FATAL: campaign findings log not byte-identical across "
                 "reruns\n--- first ---\n%s--- second ---\n%s",
                 first.result.log.c_str(), second.result.log.c_str());
    std::abort();
  }
  if (!first.result.findings.empty()) {
    std::fprintf(stderr,
                 "FATAL: fixed-seed campaign diverged (%zu findings):\n%s",
                 first.result.findings.size(), first.result.log.c_str());
    std::abort();
  }

  const auto runsPerS = [](const RunOut& run) {
    return run.hostMs > 0.0
               ? static_cast<double>(run.result.runs) / (run.hostMs / 1000.0)
               : 0.0;
  };

  // No modeled-cycle series here: the campaign spans many kernels; the
  // interesting numbers are matrix size and host-side throughput.
  std::printf("\n=== Fuzz throughput: %llu programs, full matrix ===\n",
              static_cast<unsigned long long>(first.result.programs));
  std::printf("%-24s %10s %12s %14s\n", "run", "sim runs", "host ms",
              "runs/host-s");
  std::printf("%-24s %10llu %12.2f %14.1f\n", "first",
              static_cast<unsigned long long>(first.result.runs),
              first.hostMs, runsPerS(first));
  std::printf("%-24s %10llu %12.2f %14.1f\n", "second",
              static_cast<unsigned long long>(second.result.runs),
              second.hostMs, runsPerS(second));
  std::printf("findings: %zu (log byte-identical across reruns)\n",
              first.result.findings.size());

  std::FILE* f = std::fopen("BENCH_fuzz.json", "w");
  if (f == nullptr) {
    std::fprintf(stderr, "FATAL: cannot open BENCH_fuzz.json for writing\n");
    return 1;
  }
  std::fprintf(
      f,
      "{\n"
      "  \"bench\": \"fuzz\",\n"
      "  \"programs\": %llu,\n"
      "  \"sim_runs\": %llu,\n"
      "  \"runs_per_seed\": %.1f,\n"
      "  \"findings\": %zu,\n"
      "  \"log_bytes\": %zu,\n"
      "  \"runs\": [\n"
      "    {\"host_ms\": %.3f, \"runs_per_host_s\": %.1f},\n"
      "    {\"host_ms\": %.3f, \"runs_per_host_s\": %.1f}\n"
      "  ]\n"
      "}\n",
      static_cast<unsigned long long>(first.result.programs),
      static_cast<unsigned long long>(first.result.runs),
      static_cast<double>(first.result.runs) /
          static_cast<double>(first.result.programs),
      first.result.findings.size(), first.result.log.size(), first.hostMs,
      runsPerS(first), second.hostMs, runsPerS(second));
  std::fclose(f);
  std::printf("wrote BENCH_fuzz.json\n");
  return 0;
}
