// Determinism contract for host-parallel block execution (DESIGN.md
// §3): for any hostWorkers value, a launch produces bit-identical
// KernelStats — cycles, busy cycles, every counter — and identical
// computed results. Exercised on the two most race-prone shapes: the
// fig9 sparse_matvec 3-level atomic kernel (global atomics from every
// team) and a dynamic-schedule workshare loop (contended iteration
// claiming inside each team).
#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <vector>

#include "apps/csr.h"
#include "apps/sparse_matvec.h"
#include "omprt/runtime.h"
#include "omprt/target.h"

namespace simtomp::omprt {
namespace {

using gpusim::ArchSpec;
using gpusim::Device;
using gpusim::KernelStats;

constexpr uint32_t kWorkerCounts[] = {1, 2, 8};

void expectIdenticalStats(const KernelStats& got, const KernelStats& want,
                          uint32_t workers) {
  EXPECT_EQ(got.cycles, want.cycles) << workers << " workers";
  EXPECT_EQ(got.busyCycles, want.busyCycles) << workers << " workers";
  EXPECT_EQ(got.maxThreadCycles, want.maxThreadCycles)
      << workers << " workers";
  EXPECT_EQ(got.numBlocks, want.numBlocks);
  EXPECT_EQ(got.threadsPerBlock, want.threadsPerBlock);
  EXPECT_EQ(got.waves, want.waves);
  EXPECT_EQ(got.peakSharedBytes, want.peakSharedBytes);
  EXPECT_EQ(got.counters.values, want.counters.values)
      << workers << " workers";
}

TEST(DeterminismTest, SpmvThreeLevelAtomicStatsIdenticalAcrossWorkers) {
  apps::CsrGenConfig gen;
  gen.numRows = 512;
  gen.numCols = 512;
  gen.meanRowLength = 8;
  gen.maxRowLength = 48;
  gen.seed = 13;
  const apps::CsrMatrix A = apps::generateCsr(gen);

  apps::SpmvOptions options;
  options.variant = apps::SpmvVariant::kThreeLevelAtomic;
  options.numTeams = 16;
  options.threadsPerTeam = 128;
  options.simdlen = 8;

  KernelStats serial;
  for (uint32_t workers : kWorkerCounts) {
    Device dev;
    options.hostWorkers = workers;
    auto result = apps::runSpmv(dev, A, options);
    ASSERT_TRUE(result.isOk()) << result.status().toString();
    EXPECT_TRUE(result.value().verified) << workers << " workers";
    if (workers == 1) {
      serial = result.value().stats;
    } else {
      expectIdenticalStats(result.value().stats, serial, workers);
    }
  }
}

struct DynProbe {
  std::vector<std::atomic<int>> hits;
  explicit DynProbe(size_t n) : hits(n) {}
};

void dynBody(OmpContext& ctx, uint64_t iv, void** args) {
  auto* probe = static_cast<DynProbe*>(args[0]);
  probe->hits[iv]++;
  // Skewed iteration cost: dynamic claiming order differs run to run,
  // but charged work per iteration does not.
  ctx.gpu().work(1 + iv % 7);
}

void dynRegion(OmpContext& ctx, void** args) {
  rt::workshareForScheduled(ctx, 301, &dynBody, args,
                            {ForSchedule::kDynamic, 4});
}

KernelStats runDynamicSchedule(uint32_t host_workers, DynProbe& probe) {
  Device dev(ArchSpec::testTiny());
  TargetConfig config;
  config.teamsMode = ExecMode::kSPMD;
  config.numTeams = 6;
  config.threadsPerTeam = 64;
  config.hostWorkers = host_workers;
  void* args[] = {&probe};
  auto stats = launchTarget(dev, config, [&](OmpContext& ctx) {
    rt::parallel(ctx, &dynRegion, args, 1, {ExecMode::kSPMD, 1});
  });
  EXPECT_TRUE(stats.isOk()) << stats.status().toString();
  return stats.isOk() ? stats.value() : KernelStats{};
}

TEST(DeterminismTest, DynamicScheduleStatsIdenticalAcrossWorkers) {
  KernelStats serial;
  for (uint32_t workers : kWorkerCounts) {
    DynProbe probe(301);
    const KernelStats stats = runDynamicSchedule(workers, probe);
    // Every team workshares the full trip count: 6 teams each run
    // every iteration exactly once.
    for (size_t iv = 0; iv < 301; ++iv) {
      ASSERT_EQ(probe.hits[iv].load(), 6) << "iv " << iv;
    }
    if (workers == 1) {
      serial = stats;
    } else {
      expectIdenticalStats(stats, serial, workers);
    }
  }
}

TEST(DeterminismTest, EnvVarWorkerCountPreservesStats) {
  // hostWorkers=0 defers to SIMTOMP_HOST_WORKERS; the env path must
  // honor the same contract as the explicit one.
  DynProbe serial_probe(301);
  const KernelStats serial = runDynamicSchedule(1, serial_probe);

  const char* old = std::getenv("SIMTOMP_HOST_WORKERS");
  const std::string saved = old != nullptr ? old : "";
  ::setenv("SIMTOMP_HOST_WORKERS", "8", 1);
  DynProbe env_probe(301);
  const KernelStats via_env = runDynamicSchedule(0, env_probe);
  if (old != nullptr) {
    ::setenv("SIMTOMP_HOST_WORKERS", saved.c_str(), 1);
  } else {
    ::unsetenv("SIMTOMP_HOST_WORKERS");
  }
  expectIdenticalStats(via_env, serial, 8);
}

}  // namespace
}  // namespace simtomp::omprt
