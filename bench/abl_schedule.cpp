// Ablation (loop-API extension): worksharing schedules under load
// imbalance. The paper's loop API workshares `for` loops statically
// across SIMD groups; with skewed per-iteration work (exactly the
// sparse_matvec situation — row lengths vary) a dynamic schedule pulls
// chunks from a team-shared counter and evens the load at the price of
// one shared atomic per grab.
#include <benchmark/benchmark.h>

#include "bench_common.h"
#include "dsl/dsl.h"
#include <vector>

namespace {

using namespace simtomp;
using bench::checkOk;
using bench::Row;

/// Deterministic strided heavy pattern: every 16th iteration is 50x
/// heavier (boundary rows, halo cells, diagonal blocks...). A static
/// cyclic schedule with 16 groups aliases with the stride and hands
/// every heavy iteration to the same group — the pathology dynamic
/// scheduling exists to fix.
const std::vector<uint32_t>& weights() {
  static const std::vector<uint32_t> w = [] {
    std::vector<uint32_t> out(8192);
    for (size_t i = 0; i < out.size(); ++i) {
      out[i] = (i % 16 == 3) ? 3000 : 60;
    }
    return out;
  }();
  return w;
}

uint64_t runSchedule(omprt::ForSchedule kind, uint64_t chunk) {
  gpusim::Device dev;
  dsl::LaunchSpec spec;
  spec.numTeams = 64;
  spec.threadsPerTeam = 128;
  spec.teamsMode = omprt::ExecMode::kSPMD;
  spec.parallelMode = omprt::ExecMode::kSPMD;
  spec.simdlen = 8;
  const auto& w = weights();
  const uint64_t per_team = w.size() / spec.numTeams;
  auto stats = dsl::target(dev, spec, [&](dsl::OmpContext& ctx) {
    const uint64_t base = ctx.teamNum() * per_team;
    dsl::parallelForSchedule(
        ctx, per_team,
        [&w, base](dsl::OmpContext& c, uint64_t iv) {
          c.gpu().work(w[base + iv]);
        },
        omprt::ScheduleClause{kind, chunk}, spec.parallelConfig());
  });
  return checkOk(stats, "schedule kernel").cycles;
}

void BM_Schedule(benchmark::State& state) {
  const auto kind = static_cast<omprt::ForSchedule>(state.range(0));
  const auto chunk = static_cast<uint64_t>(state.range(1));
  uint64_t cycles = 0;
  for (auto _ : state) cycles = runSchedule(kind, chunk);
  state.counters["sim_cycles"] = static_cast<double>(cycles);
}
BENCHMARK(BM_Schedule)
    ->Args({0, 0})   // static cyclic
    ->Args({1, 0})   // static chunked
    ->Args({2, 1})   // dynamic, chunk 1
    ->Args({2, 4})   // dynamic, chunk 4
    ->Args({2, 16})  // dynamic, chunk 16
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  const uint64_t cyclic = runSchedule(omprt::ForSchedule::kStaticCyclic, 0);
  std::vector<Row> rows;
  const uint64_t chunked =
      runSchedule(omprt::ForSchedule::kStaticChunked, 0);
  rows.push_back({"static chunked", chunked,
                  static_cast<double>(cyclic) / static_cast<double>(chunked)});
  for (uint64_t chunk : {1u, 4u, 16u}) {
    const uint64_t c = runSchedule(omprt::ForSchedule::kDynamic, chunk);
    rows.push_back({"dynamic, chunk " + std::to_string(chunk), c,
                    static_cast<double>(cyclic) / static_cast<double>(c)});
  }
  bench::printTable("Ablation: worksharing schedule under skewed work",
                    "static cyclic (runtime default)", cyclic, rows);
  (void)bench::writeBenchJson("abl_schedule");
  return 0;
}
