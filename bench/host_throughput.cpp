// Host throughput: the convergence fast path's wall-clock gate.
//
// Two full-SPMD kernels whose inner simd construct is declared
// convergent (dsl::convergent): a map and a butterfly reduce, both with
// a one-iteration-per-lane inner loop so the simd construct's
// synchronization — not the body — dominates host time. Each kernel
// runs with the fast path forced off, then forced on. Modeled results
// must be byte-identical (KernelStats::toJson compared, abort on
// mismatch); the win shows up exclusively as host wall time, reported
// as modeled-cycles-per-host-second in BENCH_host_throughput.json.
// tools/ci.sh stage 8 diffs the stats dumps and gates the reduce series
// at >= 3x throughput.
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "apps/common.h"
#include "bench_common.h"
#include "dsl/dsl.h"
#include "gpusim/device.h"

namespace {

using namespace simtomp;
using bench::checkOk;
using bench::Row;
using gpusim::GlobalSpan;
using omprt::OmpContext;

constexpr uint32_t kTeams = 32;
constexpr uint32_t kThreadsPerTeam = 256;
constexpr uint32_t kSimdLen = 32;
// One row per simd construct; one inner iteration per lane. 8192 rows
// means 8192 constructs whose barriers the slow path pays lane-by-lane
// on separate fibers and the fast path replays on one.
constexpr uint64_t kRows = 8192;
constexpr uint64_t kInner = kSimdLen;

dsl::LaunchSpec specFor(omprt::FastPathMode mode) {
  dsl::LaunchSpec spec;
  spec.numTeams = kTeams;
  spec.threadsPerTeam = kThreadsPerTeam;
  spec.teamsMode = omprt::ExecMode::kSPMD;
  spec.parallelMode = omprt::ExecMode::kSPMD;
  spec.simdlen = kSimdLen;
  spec.hostWorkers = 1;  // serial blocks: the ratio isolates the fast path
  spec.fastPath = mode;
  return spec;
}

struct RunResult {
  gpusim::KernelStats stats;
  double hostMs = 0.0;
};

RunResult runMap(omprt::FastPathMode mode) {
  gpusim::Device device;
  const std::vector<double> host_in(kRows * kInner, 1.25);
  const GlobalSpan<double> in =
      checkOk(apps::toDevice<double>(device, host_in), "map input upload");
  const GlobalSpan<double> out = checkOk(
      apps::zeroDevice<double>(device, kRows * kInner), "map output alloc");

  const bench::WallTimer timer;
  RunResult result;
  result.stats = checkOk(
      dsl::targetTeamsDistributeParallelFor(
          device, specFor(mode), kRows,
          [&](OmpContext& ctx, uint64_t row) {
            dsl::simd(ctx, kInner,
                      dsl::convergent([in, out, row](OmpContext& inner,
                                                     uint64_t k) {
                        gpusim::ThreadCtx& it = inner.gpu();
                        const double v = in.get(it, row * kInner + k);
                        it.fma();
                        out.set(it, row * kInner + k, v * 2.0 + 1.0);
                      }));
          }),
      "host_throughput map");
  result.hostMs = timer.elapsedMs();
  return result;
}

RunResult runReduce(omprt::FastPathMode mode) {
  gpusim::Device device;
  const std::vector<double> host_in(kRows * kInner, 0.5);
  const GlobalSpan<double> in =
      checkOk(apps::toDevice<double>(device, host_in), "reduce input upload");
  const GlobalSpan<double> out =
      checkOk(apps::zeroDevice<double>(device, kRows), "reduce output alloc");

  const bench::WallTimer timer;
  RunResult result;
  result.stats = checkOk(
      dsl::targetTeamsDistributeParallelFor(
          device, specFor(mode), kRows,
          [&](OmpContext& ctx, uint64_t row) {
            const double sum = dsl::simdReduceAdd(
                ctx, kInner,
                dsl::convergent(
                    [in, row](OmpContext& inner, uint64_t k) -> double {
                      gpusim::ThreadCtx& it = inner.gpu();
                      const double v = in.get(it, row * kInner + k);
                      it.fma();
                      return v * 1.0001 + 1.0;
                    }));
            if (ctx.simdGroupId() == 0) out.set(ctx.gpu(), row, sum);
          }),
      "host_throughput reduce");
  result.hostMs = timer.elapsedMs();
  return result;
}

/// Best-of-two wall time (first run warms allocator pools and the
/// convergence cache); modeled stats must not move between repetitions.
template <typename Runner>
RunResult bestOfTwo(Runner runner, omprt::FastPathMode mode,
                    const char* what) {
  RunResult first = runner(mode);
  RunResult second = runner(mode);
  if (first.stats.toJson() != second.stats.toJson()) {
    std::fprintf(stderr, "FATAL: %s: modeled stats moved between reps\n",
                 what);
    std::abort();
  }
  if (second.hostMs < first.hostMs) first.hostMs = second.hostMs;
  return first;
}

void requireIdentical(const gpusim::KernelStats& off,
                      const gpusim::KernelStats& on, const char* what) {
  if (off.toJson() != on.toJson()) {
    std::fprintf(stderr,
                 "FATAL: %s: modeled stats differ with the fast path on\n"
                 "--- off ---\n%s\n--- on ---\n%s\n",
                 what, off.toJson().c_str(), on.toJson().c_str());
    std::abort();
  }
}

Status writeStatsDump(const char* path, const gpusim::KernelStats& map,
                      const gpusim::KernelStats& reduce) {
  std::FILE* f = std::fopen(path, "w");
  if (f == nullptr) {
    return Status::internal(std::string("cannot open ") + path);
  }
  const std::string map_json = map.toJson();
  const std::string reduce_json = reduce.toJson();
  std::fwrite(map_json.data(), 1, map_json.size(), f);
  std::fputc('\n', f);
  std::fwrite(reduce_json.data(), 1, reduce_json.size(), f);
  std::fputc('\n', f);
  std::fclose(f);
  return Status::ok();
}

}  // namespace

int main() {
  const RunResult map_off =
      bestOfTwo(runMap, omprt::FastPathMode::kOff, "map off");
  const RunResult map_on = bestOfTwo(runMap, omprt::FastPathMode::kOn,
                                     "map on");
  requireIdentical(map_off.stats, map_on.stats, "simd map");

  const RunResult reduce_off =
      bestOfTwo(runReduce, omprt::FastPathMode::kOff, "reduce off");
  const RunResult reduce_on =
      bestOfTwo(runReduce, omprt::FastPathMode::kOn, "reduce on");
  requireIdentical(reduce_off.stats, reduce_on.stats, "simd reduce");

  {
    std::vector<Row> rows;
    rows.push_back({"fast path off", map_off.stats.cycles, 1.0,
                    map_off.hostMs});
    rows.push_back({"fast path on", map_on.stats.cycles,
                    map_off.hostMs / map_on.hostMs, map_on.hostMs});
    bench::printTable("Host throughput: convergent simd map",
                      "fast path off", map_off.stats.cycles, rows);
  }
  {
    std::vector<Row> rows;
    rows.push_back({"fast path off", reduce_off.stats.cycles, 1.0,
                    reduce_off.hostMs});
    rows.push_back({"fast path on", reduce_on.stats.cycles,
                    reduce_off.hostMs / reduce_on.hostMs, reduce_on.hostMs});
    bench::printTable(
        "Host throughput: convergent simd reduce (barrier-bound)",
        "fast path off", reduce_off.stats.cycles, rows);
  }

  const Status off_dump = writeStatsDump("HOST_THROUGHPUT_STATS_off.json",
                                         map_off.stats, reduce_off.stats);
  const Status on_dump = writeStatsDump("HOST_THROUGHPUT_STATS_on.json",
                                        map_on.stats, reduce_on.stats);
  if (!off_dump.isOk() || !on_dump.isOk()) {
    std::fprintf(stderr, "FATAL: cannot write stats dumps\n");
    return 1;
  }
  (void)bench::writeBenchJson("host_throughput");

  std::printf("reduce throughput ratio (on/off): %.2fx\n",
              reduce_off.hostMs / reduce_on.hostMs);
  return 0;
}
