// Negative simcheck corpus: every application kernel — including the
// paper's Fig. 9 and Fig. 10 configurations at reduced problem sizes —
// must run with zero findings under SIMTOMP_CHECK=fatal. Any false
// positive in the sanitizer fails the launch (fatal mode), so these
// tests pin down the precision of the happens-before model against the
// runtime's real synchronization patterns.
#include <gtest/gtest.h>

#include <cstdlib>
#include <string>

#include "apps/batched_gemm.h"
#include "apps/cg_solver.h"
#include "apps/csr.h"
#include "apps/ideal_kernel.h"
#include "apps/laplace3d.h"
#include "apps/muram.h"
#include "apps/sparse_matvec.h"
#include "apps/su3.h"
#include "gpusim/device.h"
#include "simcheck/report.h"

namespace simtomp::apps {
namespace {

using gpusim::ArchSpec;
using gpusim::Device;

/// Forces SIMTOMP_CHECK=fatal for the test body (launch configs leave
/// the mode kAuto, so every kernel resolves to fatal) and restores the
/// previous environment afterwards.
class SimcheckAppsTest : public ::testing::Test {
 protected:
  void SetUp() override {
    const char* prev = std::getenv("SIMTOMP_CHECK");
    had_env_ = prev != nullptr;
    if (had_env_) saved_ = prev;
    ::setenv("SIMTOMP_CHECK", "fatal", 1);
  }
  void TearDown() override {
    if (had_env_) {
      ::setenv("SIMTOMP_CHECK", saved_.c_str(), 1);
    } else {
      ::unsetenv("SIMTOMP_CHECK");
    }
  }

  /// Fatal mode already failed the launch on any finding; also assert
  /// the report really is empty and fatal mode was in effect.
  static void expectClean(Device& dev) {
    EXPECT_EQ(dev.lastCheckMode(), simcheck::CheckMode::kFatal);
    EXPECT_TRUE(dev.lastCheckReport().clean())
        << dev.lastCheckReport().toString();
  }

 private:
  bool had_env_ = false;
  std::string saved_;
};

CsrMatrix smallMatrix() {
  CsrGenConfig config;
  config.numRows = 256;
  config.numCols = 256;
  config.meanRowLength = 8;
  config.maxRowLength = 32;
  return generateCsr(config);
}

TEST_F(SimcheckAppsTest, SpmvAllVariantsClean) {
  const CsrMatrix A = smallMatrix();
  for (const SpmvVariant variant :
       {SpmvVariant::kTwoLevel, SpmvVariant::kThreeLevelAtomic,
        SpmvVariant::kThreeLevelReduction}) {
    Device dev(ArchSpec::testTiny());
    SpmvOptions options;
    options.variant = variant;
    options.numTeams = 4;
    options.threadsPerTeam = variant == SpmvVariant::kTwoLevel ? 32 : 64;
    options.simdlen = 8;
    auto result = runSpmv(dev, A, options);
    ASSERT_TRUE(result.isOk()) << result.status().toString();
    EXPECT_TRUE(result.value().verified);
    expectClean(dev);
  }
}

TEST_F(SimcheckAppsTest, Fig9SpmvConfigurationsClean) {
  const CsrMatrix A = smallMatrix();
  // Fig. 9 baseline: tuned 2-level, generic teams.
  {
    Device dev(ArchSpec::testTiny());
    SpmvOptions options;
    options.variant = SpmvVariant::kTwoLevel;
    options.numTeams = 8;
    options.threadsPerTeam = 128;
    auto result = runSpmv(dev, A, options);
    ASSERT_TRUE(result.isOk()) << result.status().toString();
    expectClean(dev);
  }
  // Fig. 9 3-level: large teams, every SIMD group size.
  for (const uint32_t group : {2u, 8u, 32u}) {
    Device dev(ArchSpec::testTiny());
    SpmvOptions options;
    options.variant = SpmvVariant::kThreeLevelAtomic;
    options.numTeams = 4;
    options.threadsPerTeam = 256;
    options.simdlen = group;
    auto result = runSpmv(dev, A, options);
    ASSERT_TRUE(result.isOk()) << result.status().toString();
    expectClean(dev);
  }
}

TEST_F(SimcheckAppsTest, IdealKernelClean) {
  const IdealWorkload w = generateIdeal(64, 32, 3);
  for (const uint32_t group : {1u, 16u, 32u}) {
    Device dev(ArchSpec::testTiny());
    IdealOptions options;
    options.numTeams = 4;
    options.threadsPerTeam = 64;
    options.simdlen = group;
    auto result = runIdeal(dev, w, options);
    ASSERT_TRUE(result.isOk()) << result.status().toString();
    EXPECT_TRUE(result.value().verified);
    expectClean(dev);
  }
}

TEST_F(SimcheckAppsTest, Su3Clean) {
  const Su3Workload w = generateSu3(64, 13);
  for (const uint32_t group : {1u, 4u}) {
    Device dev(ArchSpec::testTiny());
    Su3Options options;
    options.numTeams = 2;
    options.threadsPerTeam = 64;
    options.simdlen = group;
    auto result = runSu3(dev, w, options);
    ASSERT_TRUE(result.isOk()) << result.status().toString();
    EXPECT_TRUE(result.value().verified);
    expectClean(dev);
  }
}

TEST_F(SimcheckAppsTest, Fig10ModeSweepClean) {
  // Fig. 10 compares the three SIMD execution modes at fixed
  // teams/threads/group; reduced grids keep every mode exercised.
  const Laplace3dWorkload laplace = generateLaplace3d(10, 10, 34, 9);
  const MuramWorkload transpose = generateMuram(8, 8, 32, 11);
  const MuramWorkload interpol = generateMuram(8, 8, 33, 11);
  for (const SimdMode mode :
       {SimdMode::kNoSimd, SimdMode::kSpmdSimd, SimdMode::kGenericSimd}) {
    {
      Device dev(ArchSpec::testTiny());
      Laplace3dOptions options;
      options.mode = mode;
      options.numTeams = 4;
      options.threadsPerTeam = 64;
      options.simdlen = 32;
      auto result = runLaplace3d(dev, laplace, options);
      ASSERT_TRUE(result.isOk()) << result.status().toString();
      EXPECT_TRUE(result.value().verified);
      expectClean(dev);
    }
    {
      Device dev(ArchSpec::testTiny());
      MuramOptions options;
      options.mode = mode;
      options.numTeams = 4;
      options.threadsPerTeam = 64;
      options.simdlen = 32;
      auto result = runMuramTranspose(dev, transpose, options);
      ASSERT_TRUE(result.isOk()) << result.status().toString();
      EXPECT_TRUE(result.value().verified);
      expectClean(dev);

      result = runMuramInterpol(dev, interpol, options);
      ASSERT_TRUE(result.isOk()) << result.status().toString();
      EXPECT_TRUE(result.value().verified);
      expectClean(dev);
    }
  }
}

TEST_F(SimcheckAppsTest, BatchedGemmClean) {
  const BatchedGemmWorkload w = generateBatchedGemm(64, 4, 7);
  for (const omprt::ExecMode mode :
       {omprt::ExecMode::kGeneric, omprt::ExecMode::kSPMD}) {
    Device dev(ArchSpec::testTiny());
    BatchedGemmOptions options;
    options.numTeams = 2;
    options.threadsPerTeam = 64;
    options.simdlen = 4;
    options.parallelMode = mode;
    auto result = runBatchedGemm(dev, w, options);
    ASSERT_TRUE(result.isOk()) << result.status().toString();
    EXPECT_TRUE(result.value().verified);
    expectClean(dev);
  }
}

TEST_F(SimcheckAppsTest, CgSolverClean) {
  const CgWorkload w = generateCgPoisson(6, 5);
  Device dev(ArchSpec::testTiny());
  CgOptions options;
  options.numTeams = 2;
  options.threadsPerTeam = 64;
  options.simdlen = 4;
  options.maxIterations = 40;
  auto result = runCg(dev, w, options);
  ASSERT_TRUE(result.isOk()) << result.status().toString();
  EXPECT_TRUE(result.value().converged);
  expectClean(dev);
}

TEST_F(SimcheckAppsTest, HostParallelBlocksStayClean) {
  // simcheck shadow state is per block and merged in block order, so
  // host-parallel execution must neither miss findings nor invent them.
  const CsrMatrix A = smallMatrix();
  Device dev(ArchSpec::testTiny());
  SpmvOptions options;
  options.variant = SpmvVariant::kThreeLevelAtomic;
  options.numTeams = 8;
  options.threadsPerTeam = 64;
  options.simdlen = 8;
  options.hostWorkers = 4;
  auto result = runSpmv(dev, A, options);
  ASSERT_TRUE(result.isOk()) << result.status().toString();
  EXPECT_TRUE(result.value().verified);
  expectClean(dev);
}

}  // namespace
}  // namespace simtomp::apps
