// Outlined-function dispatch (paper section 5.5).
//
// Indirect calls through function pointers are expensive on GPUs, so
// Clang emits an if-cascade comparing the pointer against the outlined
// regions known in the translation unit, falling back to a true
// indirect call for unknown pointers (regions from other TUs). We model
// that with a registry: compile-time-known outlined functions register
// themselves; dispatch charges a small per-comparison cost on a hit and
// a larger indirect-call cost on a miss.
#pragma once

#include <atomic>
#include <cstdint>
#include <shared_mutex>
#include <vector>

#include "gpusim/thread.h"
#include "omprt/modes.h"

namespace simtomp::omprt {

/// A resolved dispatch decision for one outlined function: whether the
/// cascade knows it and at which position. Hot loops prepare() this
/// once per launch-site and then charge per iteration without touching
/// the dispatcher's lock again (cascade positions are stable: the
/// registry is append-only between clear()s).
struct DispatchPlan {
  bool known = false;
  uint64_t position = 0;

  void charge(gpusim::ThreadCtx& t) const {
    if (known) {
      t.charge(gpusim::Counter::kDispatchCascade,
               t.cost().dispatchCascade + position * t.cost().aluOp);
    } else {
      t.charge(gpusim::Counter::kDispatchIndirect, t.cost().dispatchIndirect);
    }
  }
};

/// Thread-safe: outlined regions register from device code, which under
/// host-parallel block execution runs on many worker threads at once.
/// Registration order stays deterministic as long as every block
/// registers its functions in the same program order (a function is
/// only ever inserted after everything registered before it in that
/// order), so cascade-position dispatch costs do not depend on the
/// host worker count.
class Dispatcher {
 public:
  /// Maximum cascade length Clang would realistically emit; registering
  /// beyond this silently falls through to indirect dispatch.
  static constexpr size_t kMaxCascade = 64;

  /// Register a known outlined function. Idempotent.
  void registerOutlined(const void* fn);
  void clear();

  [[nodiscard]] size_t size() const;
  [[nodiscard]] bool isKnown(const void* fn) const;

  /// Resolve `fn` against the cascade once; the returned plan charges
  /// without locking. Hits are served from a per-host-thread cache (a
  /// cascade position never changes once assigned); misses re-consult
  /// the registry, since a later registration can turn them into hits.
  [[nodiscard]] DispatchPlan prepare(const void* fn) const;

  /// Charge the dispatch cost for calling `fn`: a cascade of pointer
  /// compares on a hit (cost grows with cascade position), or the
  /// indirect-call penalty on a miss. Returns true on a cascade hit.
  bool chargeDispatch(gpusim::ThreadCtx& t, const void* fn) const {
    const DispatchPlan plan = prepare(fn);
    plan.charge(t);
    return plan.known;
  }

  /// Process-wide dispatcher used by the runtime entry points.
  static Dispatcher& global();

 private:
  [[nodiscard]] DispatchPlan lookupLocked(const void* fn) const;

  mutable std::shared_mutex mutex_;
  std::vector<const void*> known_;
  /// Bumped by clear() so the per-thread position caches drop entries
  /// from a previous registry incarnation (tests clear between cases).
  std::atomic<uint64_t> generation_{1};
};

/// RAII registration for tests and outlined-region factories.
class ScopedOutlinedRegistration {
 public:
  explicit ScopedOutlinedRegistration(const void* fn) {
    Dispatcher::global().registerOutlined(fn);
  }
};

}  // namespace simtomp::omprt
