// Minimizer properties: a deliberately planted bug shrinks to a known
// minimal form, deterministically across independent minimizations;
// every accepted step preserves the failure; clean programs shrink to
// themselves with zero steps.
#include <gtest/gtest.h>

#include "simfuzz/generator.h"
#include "simfuzz/harness.h"
#include "simfuzz/minimize.h"

namespace simtomp::simfuzz {
namespace {

/// The oracle under minimization: the tiny-arch differential matrix,
/// fail-fast (the planted mutations diverge identically on every arch
/// and in every cell, so the cross-arch cells and post-first-note
/// cells add nothing but wall-time here).
bool diverges(const FuzzProgram& p) {
  DiffOptions opt;
  opt.crossArch = false;
  opt.failFast = true;
  return diffProgram(p, opt).diverged();
}

TEST(FuzzMinimizeTest, OffByOneShrinksToKnownMinimalForm) {
  // A deliberately big, messy failing program.
  FuzzProgram p;
  p.construct = Construct::kScheduledFor;
  p.body = BodyKind::kSimdReduce;
  p.numTeams = 4;
  p.threadsPerTeam = 128;
  p.teamsMode = omprt::ExecMode::kGeneric;
  p.parallelMode = omprt::ExecMode::kGeneric;
  p.simdlen = 16;
  p.schedKind = omprt::ForSchedule::kDynamic;
  p.schedChunk = 5;
  p.outerTrip = 37;
  p.innerTrip = 9;
  p.pressure = 1;
  p.sharingSpaceBytes = 256;
  p.a = -3;
  p.b = 4;
  p.inject = InjectKind::kOffByOne;
  p.normalize();
  ASSERT_TRUE(diverges(p)) << p.serialize();

  const MinimizeResult mini = minimizeProgram(p, diverges);
  EXPECT_GT(mini.steps, 0u);
  ASSERT_TRUE(diverges(mini.program)) << "minimized program lost the bug";

  // The known minimal form: the bug needs simdlen > 1 and a row with
  // row % 7 == 3, everything else is noise the minimizer must strip.
  const FuzzProgram& m = mini.program;
  EXPECT_EQ(m.construct, Construct::kDistributeParallelFor);
  EXPECT_EQ(m.body, BodyKind::kAffineMap);
  EXPECT_EQ(m.numTeams, 1u);
  EXPECT_EQ(m.threadsPerTeam, 64u);
  EXPECT_EQ(m.teamsMode, omprt::ExecMode::kSPMD);
  EXPECT_EQ(m.parallelMode, omprt::ExecMode::kSPMD);
  EXPECT_EQ(m.simdlen, 2u);
  EXPECT_EQ(m.outerTrip, 4u);
  EXPECT_EQ(m.innerTrip, 0u);
  EXPECT_EQ(m.pressure, 0u);
  EXPECT_EQ(m.a, 1);
  EXPECT_EQ(m.b, 0);
  EXPECT_EQ(m.inject, InjectKind::kOffByOne);

  // Deterministic: an independent minimization agrees byte-for-byte.
  const MinimizeResult again = minimizeProgram(p, diverges);
  EXPECT_EQ(again.program, mini.program);
  EXPECT_EQ(again.steps, mini.steps);
  EXPECT_EQ(again.tested, mini.tested);
  EXPECT_EQ(again.program.serialize(), mini.program.serialize());
}

TEST(FuzzMinimizeTest, DropIterationKeepsTheInnerLoop) {
  FuzzProgram p;
  p.body = BodyKind::kAtomicSum;
  p.numTeams = 3;
  p.threadsPerTeam = 192;
  p.simdlen = 8;
  p.outerTrip = 23;
  p.innerTrip = 9;
  p.inject = InjectKind::kDropIteration;
  p.normalize();
  ASSERT_TRUE(diverges(p)) << p.serialize();

  const MinimizeResult mini = minimizeProgram(p, diverges);
  const FuzzProgram& m = mini.program;
  ASSERT_TRUE(diverges(m));
  // The dropped iteration is the *last inner iteration of row 1*: the
  // minimal program must keep row 1 and one inner iteration, and the
  // body switch to the simplest kind that still has an inner loop.
  EXPECT_EQ(m.body, BodyKind::kSimdNest);
  EXPECT_EQ(m.outerTrip, 2u);
  EXPECT_EQ(m.innerTrip, 1u);
  EXPECT_EQ(m.simdlen, 1u);
  EXPECT_EQ(m.numTeams, 1u);

  const MinimizeResult again = minimizeProgram(p, diverges);
  EXPECT_EQ(again.program, mini.program);
}

TEST(FuzzMinimizeTest, CleanProgramShrinksToItselfWithZeroSteps) {
  const Generator gen;
  const FuzzProgram p = gen.generate(2);
  const MinimizeResult mini = minimizeProgram(p, diverges);
  EXPECT_EQ(mini.steps, 0u);
  EXPECT_EQ(mini.program, p);
  EXPECT_GT(mini.tested, 0u);  // the ladder ran and rejected everything
}

TEST(FuzzMinimizeTest, GeneratedSeedMinimizesDeterministically) {
  // End-to-end: generator -> inject -> campaign-style minimization.
  const Generator gen;
  FuzzProgram p;
  bool found = false;
  for (uint64_t seed = 0; seed < 64 && !found; ++seed) {
    p = gen.generate(seed);
    // The trip bounds just keep the test fast; any qualifying seed
    // minimizes to the same form.
    found = p.simdlen > 1 && p.outerTrip > 3 && p.outerTrip <= 64 &&
            p.innerTrip <= 16;
  }
  ASSERT_TRUE(found);
  p.inject = InjectKind::kOffByOne;
  ASSERT_TRUE(diverges(p)) << p.serialize();

  const MinimizeResult a = minimizeProgram(p, diverges);
  const MinimizeResult b = minimizeProgram(p, diverges);
  EXPECT_EQ(a.program, b.program);
  EXPECT_EQ(a.program.outerTrip, 4u);
  EXPECT_EQ(a.program.simdlen, 2u);
  EXPECT_EQ(a.program.body, BodyKind::kAffineMap);
}

}  // namespace
}  // namespace simtomp::simfuzz
