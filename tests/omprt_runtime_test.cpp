// Unit tests for the device OpenMP runtime (paper section 5): target
// init protocol, __parallel, __simd, state machines, SIMD group
// mapping, and the execution-mode matrix.
#include <gtest/gtest.h>

#include <atomic>
#include <mutex>
#include <set>
#include <vector>

#include "loopir/outline.h"
#include "omprt/runtime.h"
#include "omprt/target.h"

namespace simtomp::omprt {
namespace {

using gpusim::ArchSpec;
using gpusim::Counter;
using gpusim::Device;

TargetConfig makeConfig(ExecMode teams, uint32_t numTeams = 1,
                        uint32_t threads = 64) {
  TargetConfig config;
  config.teamsMode = teams;
  config.numTeams = numTeams;
  config.threadsPerTeam = threads;
  return config;
}

// ---------------- TargetConfig validation ----------------

TEST(TargetConfigTest, RejectsZeroTeams) {
  Device dev(ArchSpec::testTiny());
  auto config = makeConfig(ExecMode::kSPMD, 0);
  EXPECT_FALSE(config.validate(dev.arch()).isOk());
}

TEST(TargetConfigTest, RejectsNonWarpMultipleThreads) {
  Device dev(ArchSpec::testTiny());
  auto config = makeConfig(ExecMode::kSPMD, 1, 40);
  EXPECT_FALSE(config.validate(dev.arch()).isOk());
}

TEST(TargetConfigTest, GenericModeAccountsForExtraWarp) {
  Device dev(ArchSpec::testTiny());  // max 256 threads/block
  auto spmd = makeConfig(ExecMode::kSPMD, 1, 256);
  EXPECT_TRUE(spmd.validate(dev.arch()).isOk());
  auto generic = makeConfig(ExecMode::kGeneric, 1, 256);
  EXPECT_FALSE(generic.validate(dev.arch()).isOk());  // 256+32 > 256
  auto generic_ok = makeConfig(ExecMode::kGeneric, 1, 224);
  EXPECT_TRUE(generic_ok.validate(dev.arch()).isOk());
}

// ---------------- Target init protocol ----------------

TEST(TargetInitTest, SpmdRunsRegionOnEveryThread) {
  Device dev(ArchSpec::testTiny());
  std::atomic<int> region_threads{0};
  auto stats =
      launchTarget(dev, makeConfig(ExecMode::kSPMD, 2, 64),
                   [&](OmpContext&) { region_threads++; });
  ASSERT_TRUE(stats.isOk());
  EXPECT_EQ(region_threads.load(), 2 * 64);
}

TEST(TargetInitTest, GenericRunsRegionOnTeamMainOnly) {
  Device dev(ArchSpec::testTiny());
  std::atomic<int> region_threads{0};
  std::mutex ids_mutex;  // teams run concurrently under hostWorkers>1
  std::set<uint32_t> main_ids;
  auto stats = launchTarget(dev, makeConfig(ExecMode::kGeneric, 3, 64),
                            [&](OmpContext& ctx) {
                              region_threads++;
                              std::lock_guard<std::mutex> lock(ids_mutex);
                              main_ids.insert(ctx.gpu().threadId());
                            });
  ASSERT_TRUE(stats.isOk());
  EXPECT_EQ(region_threads.load(), 3);
  // The main thread is lane 0 of the extra warp.
  ASSERT_EQ(main_ids.size(), 1u);
  EXPECT_EQ(*main_ids.begin(), 64u);
  // The block really carries the extra warp.
  EXPECT_EQ(stats.value().threadsPerBlock, 64u + 32u);
}

TEST(TargetInitTest, GenericWorkersIdleThroughEmptyRegion) {
  Device dev(ArchSpec::testTiny());
  // A region with no parallel: workers must go straight from the state
  // machine to termination without executing anything.
  auto stats = launchTarget(dev, makeConfig(ExecMode::kGeneric, 1, 64),
                            [](OmpContext& ctx) { ctx.gpu().work(10); });
  ASSERT_TRUE(stats.isOk());
  EXPECT_GT(stats.value().counters.get(Counter::kStatePoll), 0u);
}

// ---------------- __parallel mode matrix ----------------

struct ParallelProbe {
  std::atomic<int> microtask_runs{0};
  std::set<uint32_t> thread_ids;
};

void probeMicrotask(OmpContext& ctx, void** args) {
  auto* probe = static_cast<ParallelProbe*>(args[0]);
  probe->microtask_runs++;
  probe->thread_ids.insert(ctx.gpu().threadId());
}

TEST(ParallelTest, SpmdParallelRunsOnAllThreads) {
  Device dev(ArchSpec::testTiny());
  ParallelProbe probe;
  void* args[] = {&probe};
  auto stats = launchTarget(
      dev, makeConfig(ExecMode::kSPMD, 1, 64), [&](OmpContext& ctx) {
        rt::parallel(ctx, &probeMicrotask, args, 1, {ExecMode::kSPMD, 8});
      });
  ASSERT_TRUE(stats.isOk());
  EXPECT_EQ(probe.microtask_runs.load(), 64);
}

TEST(ParallelTest, GenericParallelRunsOnGroupLeadersOnly) {
  Device dev(ArchSpec::testTiny());
  ParallelProbe probe;
  void* args[] = {&probe};
  auto stats = launchTarget(
      dev, makeConfig(ExecMode::kSPMD, 1, 64), [&](OmpContext& ctx) {
        rt::parallel(ctx, &probeMicrotask, args, 1, {ExecMode::kGeneric, 8});
      });
  ASSERT_TRUE(stats.isOk());
  EXPECT_EQ(probe.microtask_runs.load(), 64 / 8);
  for (uint32_t id : probe.thread_ids) EXPECT_EQ(id % 8, 0u);
}

TEST(ParallelTest, GenericTeamsPublishesToWorkers) {
  Device dev(ArchSpec::testTiny());
  ParallelProbe probe;
  auto stats = launchTarget(
      dev, makeConfig(ExecMode::kGeneric, 1, 64), [&](OmpContext& ctx) {
        // Only team main executes this; args must travel through the
        // team sharing space to the workers.
        void* args[] = {&probe};
        rt::parallel(ctx, &probeMicrotask, args, 1, {ExecMode::kSPMD, 1});
      });
  ASSERT_TRUE(stats.isOk());
  EXPECT_EQ(probe.microtask_runs.load(), 64);  // main does not participate
  EXPECT_EQ(probe.thread_ids.count(64), 0u);
}

TEST(ParallelTest, GroupSizeOneMakesEveryThreadALeader) {
  Device dev(ArchSpec::testTiny());
  ParallelProbe probe;
  void* args[] = {&probe};
  auto stats = launchTarget(
      dev, makeConfig(ExecMode::kSPMD, 1, 32), [&](OmpContext& ctx) {
        rt::parallel(ctx, &probeMicrotask, args, 1, {ExecMode::kGeneric, 1});
      });
  ASSERT_TRUE(stats.isOk());
  EXPECT_EQ(probe.microtask_runs.load(), 32);
}

TEST(ParallelTest, SequentialParallelRegionsReuseTheTeam) {
  Device dev(ArchSpec::testTiny());
  ParallelProbe probe;
  void* args[] = {&probe};
  auto stats = launchTarget(
      dev, makeConfig(ExecMode::kGeneric, 1, 64), [&](OmpContext& ctx) {
        for (int round = 0; round < 4; ++round) {
          rt::parallel(ctx, &probeMicrotask, args, 1, {ExecMode::kSPMD, 1});
        }
      });
  ASSERT_TRUE(stats.isOk());
  EXPECT_EQ(probe.microtask_runs.load(), 4 * 64);
  EXPECT_EQ(stats.value().counters.get(Counter::kParallelRegion), 4u);
}

// ---------------- SIMD group mapping (section 5.1) ----------------

struct MappingProbe {
  std::atomic<int> checks{0};
};

void mappingMicrotask(OmpContext& ctx, void** args) {
  auto* probe = static_cast<MappingProbe*>(args[0]);
  const uint32_t tid = ctx.gpu().threadId();
  EXPECT_EQ(ctx.simdGroup(), tid / 8);
  EXPECT_EQ(ctx.simdGroupId(), tid % 8);
  EXPECT_EQ(ctx.simdGroupSize(), 8u);
  EXPECT_EQ(ctx.isSimdGroupLeader(), tid % 8 == 0);
  // simdmask covers exactly this group's lanes within the warp.
  const uint32_t lane_base = (ctx.gpu().laneId() / 8) * 8;
  EXPECT_EQ(ctx.simdMask(), rangeMask(lane_base, 8));
  EXPECT_EQ(ctx.threadNum(), ctx.simdGroup());
  EXPECT_EQ(ctx.numThreads(), ctx.gpu().numThreads() / 8);
  probe->checks++;
}

TEST(MappingTest, AllFunctionsConsistentInSpmdParallel) {
  Device dev(ArchSpec::testTiny());
  MappingProbe probe;
  void* args[] = {&probe};
  auto stats = launchTarget(
      dev, makeConfig(ExecMode::kSPMD, 1, 64), [&](OmpContext& ctx) {
        rt::parallel(ctx, &mappingMicrotask, args, 1, {ExecMode::kSPMD, 8});
      });
  ASSERT_TRUE(stats.isOk());
  EXPECT_EQ(probe.checks.load(), 64);
}

TEST(MappingTest, OutsideParallelGroupSizeIsOne) {
  Device dev(ArchSpec::testTiny());
  auto stats = launchTarget(dev, makeConfig(ExecMode::kSPMD, 1, 32),
                            [&](OmpContext& ctx) {
                              EXPECT_EQ(ctx.simdGroupSize(), 1u);
                              EXPECT_TRUE(ctx.isSimdGroupLeader());
                              EXPECT_EQ(ctx.numThreads(), 1u);
                              EXPECT_EQ(popcount(ctx.simdMask()), 1);
                            });
  ASSERT_TRUE(stats.isOk());
}

// ---------------- normalizeParallelConfig ----------------

TEST(NormalizeTest, ClampsToWarpSizeAndPowerOfTwo) {
  TeamState ts(ExecMode::kSPMD, 64, 32, true, nullptr);
  EXPECT_EQ(rt::normalizeParallelConfig(ts, {ExecMode::kSPMD, 0}).simdGroupSize,
            1u);
  EXPECT_EQ(
      rt::normalizeParallelConfig(ts, {ExecMode::kSPMD, 48}).simdGroupSize,
      32u);
  EXPECT_EQ(rt::normalizeParallelConfig(ts, {ExecMode::kSPMD, 6}).simdGroupSize,
            4u);
  EXPECT_EQ(
      rt::normalizeParallelConfig(ts, {ExecMode::kSPMD, 16}).simdGroupSize,
      16u);
}

TEST(NormalizeTest, AmdGenericFallsBackToSequentialSimd) {
  TeamState amd(ExecMode::kSPMD, 64, 64, /*arch_has_warp_barrier=*/false,
                nullptr);
  EXPECT_EQ(
      rt::normalizeParallelConfig(amd, {ExecMode::kGeneric, 16}).simdGroupSize,
      1u);
  // SPMD mode keeps its groups even without warp barriers.
  EXPECT_EQ(
      rt::normalizeParallelConfig(amd, {ExecMode::kSPMD, 16}).simdGroupSize,
      16u);
}

// ---------------- __simd / state machine ----------------

struct SimdProbe {
  std::atomic<int> iterations{0};
  std::vector<std::atomic<int>> perIv = std::vector<std::atomic<int>>(32);
};

void simdBody(OmpContext& ctx, uint64_t iv, void** args) {
  auto* probe = static_cast<SimdProbe*>(args[0]);
  probe->iterations++;
  probe->perIv[iv]++;
  ctx.gpu().work(1);
}

void simdRegion(OmpContext& ctx, void** args) {
  // args[0] = probe, args[1] = trip count
  const auto trip = *static_cast<uint64_t*>(args[1]);
  rt::simd(ctx, &simdBody, trip, args, 2);
}

class SimdModeMatrix
    : public ::testing::TestWithParam<std::tuple<ExecMode, uint32_t>> {};

TEST_P(SimdModeMatrix, EveryIterationRunsExactlyOncePerGroup) {
  const auto [parallel_mode, group] = GetParam();
  Device dev(ArchSpec::testTiny());
  SimdProbe probe;
  uint64_t trip = 20;
  void* args[] = {&probe, &trip};
  auto stats = launchTarget(
      dev, makeConfig(ExecMode::kSPMD, 1, 64), [&](OmpContext& ctx) {
        rt::parallel(ctx, &simdRegion, args, 2, {parallel_mode, group});
      });
  ASSERT_TRUE(stats.isOk());
  const int groups = static_cast<int>(64 / group);
  EXPECT_EQ(probe.iterations.load(), groups * 20);
  for (int iv = 0; iv < 20; ++iv) {
    EXPECT_EQ(probe.perIv[iv].load(), groups) << "iv " << iv;
  }
  for (int iv = 20; iv < 32; ++iv) EXPECT_EQ(probe.perIv[iv].load(), 0);
}

INSTANTIATE_TEST_SUITE_P(
    ModesAndGroups, SimdModeMatrix,
    ::testing::Combine(::testing::Values(ExecMode::kSPMD, ExecMode::kGeneric),
                       ::testing::Values(1u, 2u, 4u, 8u, 16u, 32u)));

TEST(SimdTest, GenericSimdSharesArgsThroughSharingSpace) {
  Device dev(ArchSpec::testTiny());
  SimdProbe probe;
  uint64_t trip = 8;
  void* args[] = {&probe, &trip};
  auto stats = launchTarget(
      dev, makeConfig(ExecMode::kSPMD, 1, 64), [&](OmpContext& ctx) {
        rt::parallel(ctx, &simdRegion, args, 2, {ExecMode::kGeneric, 8});
      });
  ASSERT_TRUE(stats.isOk());
  // Leaders stored two arg pointers each (plus region bookkeeping).
  EXPECT_GT(stats.value().counters.get(Counter::kPayloadArgCopy), 0u);
  EXPECT_GT(stats.value().counters.get(Counter::kSharedStore), 0u);
  EXPECT_GT(stats.value().counters.get(Counter::kStatePoll), 0u);
}

TEST(SimdTest, SpmdSimdNeedsNoStateMachine) {
  Device dev(ArchSpec::testTiny());
  SimdProbe probe;
  uint64_t trip = 8;
  void* args[] = {&probe, &trip};
  auto stats = launchTarget(
      dev, makeConfig(ExecMode::kSPMD, 1, 64), [&](OmpContext& ctx) {
        rt::parallel(ctx, &simdRegion, args, 2, {ExecMode::kSPMD, 8});
      });
  ASSERT_TRUE(stats.isOk());
  EXPECT_EQ(stats.value().counters.get(Counter::kStatePoll), 0u);
}

TEST(SimdTest, MultipleSimdLoopsPerRegion) {
  Device dev(ArchSpec::testTiny());
  SimdProbe probe;
  uint64_t trip = 16;
  void* args[] = {&probe, &trip};
  auto region = +[](OmpContext& ctx, void** inner_args) {
    const auto t = *static_cast<uint64_t*>(inner_args[1]);
    rt::simd(ctx, &simdBody, t, inner_args, 2);
    rt::simd(ctx, &simdBody, t, inner_args, 2);
    rt::simd(ctx, &simdBody, t, inner_args, 2);
  };
  auto stats = launchTarget(
      dev, makeConfig(ExecMode::kSPMD, 1, 64), [&](OmpContext& ctx) {
        rt::parallel(ctx, region, args, 2, {ExecMode::kGeneric, 8});
      });
  ASSERT_TRUE(stats.isOk());
  EXPECT_EQ(probe.iterations.load(), 3 * 8 * 16);
  EXPECT_EQ(stats.value().counters.get(Counter::kSimdLoop), 3u * 8u);
}

TEST(SimdTest, EmptyTripCountIsSafe) {
  Device dev(ArchSpec::testTiny());
  SimdProbe probe;
  uint64_t trip = 0;
  void* args[] = {&probe, &trip};
  for (ExecMode mode : {ExecMode::kSPMD, ExecMode::kGeneric}) {
    auto stats = launchTarget(
        dev, makeConfig(ExecMode::kSPMD, 1, 64), [&](OmpContext& ctx) {
          rt::parallel(ctx, &simdRegion, args, 2, {mode, 8});
        });
    ASSERT_TRUE(stats.isOk());
  }
  EXPECT_EQ(probe.iterations.load(), 0);
}

TEST(SimdTest, TripSmallerThanGroupLeavesLanesIdle) {
  Device dev(ArchSpec::testTiny());
  SimdProbe probe;
  uint64_t trip = 3;  // < group size 8
  void* args[] = {&probe, &trip};
  auto stats = launchTarget(
      dev, makeConfig(ExecMode::kSPMD, 1, 32), [&](OmpContext& ctx) {
        rt::parallel(ctx, &simdRegion, args, 2, {ExecMode::kGeneric, 8});
      });
  ASSERT_TRUE(stats.isOk());
  EXPECT_EQ(probe.iterations.load(), 4 * 3);
}

// ---------------- workshareFor / distribute ----------------

void forBody(OmpContext& ctx, uint64_t iv, void** args) {
  auto* hits = static_cast<std::atomic<int>*>(args[0]);
  hits[iv]++;
  ctx.gpu().work(1);
}

void forRegion(OmpContext& ctx, void** args) {
  const auto trip = *static_cast<uint64_t*>(args[1]);
  rt::workshareFor(ctx, trip, &forBody, args);
}

TEST(WorkshareForTest, IterationsSplitAcrossGroupsOnce) {
  Device dev(ArchSpec::testTiny());
  std::vector<std::atomic<int>> hits(40);
  uint64_t trip = 40;
  void* args[] = {hits.data(), &trip};
  auto stats = launchTarget(
      dev, makeConfig(ExecMode::kSPMD, 1, 64), [&](OmpContext& ctx) {
        rt::parallel(ctx, &forRegion, args, 2, {ExecMode::kGeneric, 8});
      });
  ASSERT_TRUE(stats.isOk());
  for (auto& h : hits) EXPECT_EQ(h.load(), 1);
  EXPECT_EQ(stats.value().counters.get(Counter::kWorkshareLoop), 8u);
}

TEST(WorkshareForTest, SpmdModeRunsRedundantlyPerLane) {
  Device dev(ArchSpec::testTiny());
  std::vector<std::atomic<int>> hits(10);
  uint64_t trip = 10;
  void* args[] = {hits.data(), &trip};
  auto stats = launchTarget(
      dev, makeConfig(ExecMode::kSPMD, 1, 32), [&](OmpContext& ctx) {
        rt::parallel(ctx, &forRegion, args, 2, {ExecMode::kSPMD, 8});
      });
  ASSERT_TRUE(stats.isOk());
  // Every lane of the owning group executes the iteration redundantly.
  for (auto& h : hits) EXPECT_EQ(h.load(), 8);
}

TEST(DistributeTest, ContiguousCoverageAcrossTeams) {
  Device dev(ArchSpec::testTiny());
  std::vector<std::atomic<int>> hits(100);
  auto stats = launchTarget(
      dev, makeConfig(ExecMode::kGeneric, 7, 32), [&](OmpContext& ctx) {
        const rt::Range r = rt::distributeStatic(ctx, 100);
        for (uint64_t iv = r.begin; iv < r.end; ++iv) hits[iv]++;
      });
  ASSERT_TRUE(stats.isOk());
  for (auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(DistributeTest, MoreTeamsThanIterations) {
  Device dev(ArchSpec::testTiny());
  std::vector<std::atomic<int>> hits(3);
  auto stats = launchTarget(
      dev, makeConfig(ExecMode::kGeneric, 8, 32), [&](OmpContext& ctx) {
        const rt::Range r = rt::distributeStatic(ctx, 3);
        for (uint64_t iv = r.begin; iv < r.end; ++iv) hits[iv]++;
      });
  ASSERT_TRUE(stats.isOk());
  for (auto& h : hits) EXPECT_EQ(h.load(), 1);
}

// ---------------- teamBarrier ----------------

TEST(TeamBarrierTest, SynchronizesSpmdTeam) {
  Device dev(ArchSpec::testTiny());
  std::atomic<int> before{0};
  auto stats = launchTarget(dev, makeConfig(ExecMode::kSPMD, 1, 64),
                            [&](OmpContext& ctx) {
                              before++;
                              rt::teamBarrier(ctx);
                              EXPECT_EQ(before.load(), 64);
                            });
  ASSERT_TRUE(stats.isOk());
}

// ---------------- Generic overhead ordering ----------------

TEST(OverheadTest, GenericParallelCostsMoreThanSpmd) {
  Device dev(ArchSpec::testTiny());
  SimdProbe probe;
  uint64_t trip = 32;
  void* args[] = {&probe, &trip};
  uint64_t cycles[2] = {0, 0};
  int idx = 0;
  for (ExecMode mode : {ExecMode::kSPMD, ExecMode::kGeneric}) {
    auto stats = launchTarget(
        dev, makeConfig(ExecMode::kSPMD, 1, 64), [&](OmpContext& ctx) {
          for (int i = 0; i < 10; ++i) {
            rt::parallel(ctx, &simdRegion, args, 2, {mode, 8});
          }
        });
    ASSERT_TRUE(stats.isOk());
    cycles[idx++] = stats.value().cycles;
  }
  EXPECT_LT(cycles[0], cycles[1]);  // SPMD cheaper than generic
}

TEST(OverheadTest, TeamsGenericCostsMoreThanTeamsSpmd) {
  Device dev(ArchSpec::testTiny());
  SimdProbe probe;
  uint64_t trip = 32;
  void* args[] = {&probe, &trip};
  uint64_t cycles[2] = {0, 0};
  int idx = 0;
  for (ExecMode teams : {ExecMode::kSPMD, ExecMode::kGeneric}) {
    auto stats = launchTarget(
        dev, makeConfig(teams, 2, 64), [&](OmpContext& ctx) {
          for (int i = 0; i < 5; ++i) {
            rt::parallel(ctx, &simdRegion, args, 2, {ExecMode::kSPMD, 8});
          }
        });
    ASSERT_TRUE(stats.isOk());
    cycles[idx++] = stats.value().cycles;
  }
  EXPECT_LT(cycles[0], cycles[1]);
}

}  // namespace
}  // namespace simtomp::omprt
