// The user-facing OpenMP query API, as the paper's three-level model
// defines it: within a parallel region an "OpenMP thread" is a SIMD
// group (its leader runs the region code in generic mode), and the
// simd lane / simd length queries expose the third level.
//
// Free functions mirroring the omp_* C API, all taking the OmpContext
// a target region receives.
#pragma once

#include <cstdint>

#include "omprt/context.h"

namespace simtomp::omprt {

/// omp_get_team_num()
inline uint32_t ompGetTeamNum(const OmpContext& ctx) { return ctx.teamNum(); }

/// omp_get_num_teams()
inline uint32_t ompGetNumTeams(const OmpContext& ctx) {
  return ctx.numTeams();
}

/// omp_get_thread_num() — the SIMD group index within the team.
inline uint32_t ompGetThreadNum(const OmpContext& ctx) {
  return ctx.threadNum();
}

/// omp_get_num_threads() — the number of SIMD groups in the region.
inline uint32_t ompGetNumThreads(const OmpContext& ctx) {
  return ctx.numThreads();
}

/// omp_in_parallel()
inline bool ompInParallel(const OmpContext& ctx) { return ctx.inParallel(); }

/// The lane index within the SIMD group (0 for the group leader; the
/// paper's getSimdGroupId).
inline uint32_t ompGetSimdLane(const OmpContext& ctx) {
  return ctx.simdGroupId();
}

/// The active simdlen (the paper's getSimdGroupSize).
inline uint32_t ompGetSimdLen(const OmpContext& ctx) {
  return ctx.simdGroupSize();
}

/// omp_is_initial_device() — always false inside a target region.
inline constexpr bool ompIsInitialDevice() { return false; }

/// omp_get_max_threads() within a target region: the team's worker
/// thread count (the upper bound on parallel-region OpenMP threads).
inline uint32_t ompGetMaxThreads(const OmpContext& ctx) {
  return ctx.team().numWorkerThreads;
}

}  // namespace simtomp::omprt
