// Correctness checking (simcheck): catch a GPU data race in the
// simulator, then fix it twice — with an atomic, and with a barrier.
//
// The buggy OpenMP source this corresponds to:
//
//   #pragma omp target teams num_teams(1) thread_limit(64)
//   {
//     static double bins[8];          // shared memory
//     int bin = omp_get_thread_num() % 8;
//     bins[bin] += 1.0;               // race: plain RMW from 64 threads
//   }
//
// Build & run:  ./examples/checking
#include <cstdio>

#include "gpusim/device.h"
#include "simcheck/report.h"

using namespace simtomp;

namespace {

constexpr uint32_t kThreads = 64;
constexpr size_t kBins = 8;

/// Carve a double[kBins] histogram out of the block's shared arena and
/// park it in the user-state slot for the kernel to pick up.
void setupSharedBins(gpusim::BlockEngine& engine) {
  engine.setUserState(engine.sharedMemory().allocate(kBins * sizeof(double)));
}

gpusim::SharedSpan<double> bins(gpusim::ThreadCtx& t) {
  return {static_cast<double*>(t.block().userState()), kBins};
}

void report(const char* label, const gpusim::Device& dev,
            const Result<gpusim::KernelStats>& stats) {
  std::printf("--- %s ---\n", label);
  if (!stats.isOk()) {
    std::printf("launch failed: %s\n", stats.status().toString().c_str());
  }
  const simcheck::CheckReport& findings = dev.lastCheckReport();
  if (findings.clean()) {
    std::printf("simcheck: clean (cycles=%llu)\n\n",
                stats.isOk()
                    ? static_cast<unsigned long long>(stats.value().cycles)
                    : 0ull);
    return;
  }
  std::printf("%s\n", findings.toString().c_str());
}

}  // namespace

int main() {
  gpusim::Device dev(gpusim::ArchSpec::testTiny());
  gpusim::LaunchConfig config;
  config.numBlocks = 1;
  config.threadsPerBlock = kThreads;
  config.check.mode = simcheck::CheckMode::kReport;  // or SIMTOMP_CHECK=1

  // 1. The bug: after a properly synchronized zero-fill, two warps
  //    increment the same shared bins with a plain read-modify-write
  //    and no synchronization. Lost updates on real hardware; a
  //    precise diagnosis here.
  auto racy = dev.launch(
      config,
      [](gpusim::ThreadCtx& t) {
        auto h = bins(t);
        if (t.threadId() < kBins) h.set(t, t.threadId(), 0.0);
        t.syncBlock();
        const size_t bin = t.threadId() % kBins;
        h.set(t, bin, h.get(t, bin) + 1.0);
      },
      setupSharedBins);
  report("racy histogram", dev, racy);
  const bool bug_caught = !dev.lastCheckReport().clean();

  // 2. Fix A: make the update atomic (global-memory bins).
  auto cells = dev.allocateArray<double>(kBins);
  if (!cells.isOk()) return 1;
  auto atomic_fix = dev.launch(config, [&](gpusim::ThreadCtx& t) {
    cells.value().atomicAdd(t, t.threadId() % kBins, 1.0);
  });
  report("fix A: atomicAdd", dev, atomic_fix);
  const bool fix_a_clean = atomic_fix.isOk() && dev.lastCheckReport().clean();

  // 3. Fix B: restructure so each thread owns a bin per phase, with a
  //    block barrier ordering the phases. Barrier joins are exactly
  //    the happens-before edges the detector tracks.
  auto barrier_fix = dev.launch(
      config,
      [](gpusim::ThreadCtx& t) {
        auto h = bins(t);
        if (t.threadId() < kBins) h.set(t, t.threadId(), 0.0);
        t.syncBlock();
        if (t.threadId() < kBins) {
          h.set(t, t.threadId(), h.get(t, t.threadId()) + 1.0);
        }
      },
      setupSharedBins);
  report("fix B: barrier-separated phases", dev, barrier_fix);
  const bool fix_b_clean =
      barrier_fix.isOk() && dev.lastCheckReport().clean();

  return bug_caught && fix_a_clean && fix_b_clean ? 0 : 1;
}
