// Proxy application benchmark: conjugate gradient on a 2-D Poisson
// problem (paper section 6.3 evaluates "proxy applications that mirror
// real-world science codes"). The solver's hot loop combines the
// paper's 3-level SpMV shape with hierarchical reductions and
// element-wise kernels.
//
// This experiment reproduces the paper's *negative* guidance (section
// 6.5): the Poisson matrix has only 3-5 nonzeros per row, so the
// generic-SIMD machinery costs more than the lane parallelism returns,
// and the SpMV share of a whole solve is small (Amdahl) — "it is still
// likely best practice to use only two-leveled parallelism when all
// three levels are unneeded." Compare bench/fig9_simd_benefit, where
// the skewed mean-8 matrix rewards simdlen(8) with ~4.5x.
#include <benchmark/benchmark.h>

#include <map>

#include "apps/cg_solver.h"
#include "bench_common.h"
#include "gpusim/device.h"

namespace {

using namespace simtomp;
using bench::Row;

const apps::CgWorkload& workload() {
  static const apps::CgWorkload w = apps::generateCgPoisson(32, 13);
  return w;
}

apps::CgResult runWithSimdlenUncached(uint32_t simdlen);

apps::CgResult runWithSimdlen(uint32_t simdlen) {
  // A full solve is hundreds of simulated kernels; memoize so the
  // benchmark phase and the printed summary share one solve per config.
  static std::map<uint32_t, apps::CgResult> cache;
  auto it = cache.find(simdlen);
  if (it == cache.end()) {
    it = cache.emplace(simdlen, runWithSimdlenUncached(simdlen)).first;
  }
  return it->second;
}

apps::CgResult runWithSimdlenUncached(uint32_t simdlen) {
  gpusim::Device dev;
  apps::CgOptions options;
  options.numTeams = 16;
  options.threadsPerTeam = 128;
  options.simdlen = simdlen;
  options.maxIterations = 150;
  options.relativeTolerance = 1e-6;
  auto result = runCg(dev, workload(), options);
  if (!result.isOk() || !result.value().verified) {
    std::fprintf(stderr, "CG failed (simdlen %u)\n", simdlen);
    std::abort();
  }
  return result.value();
}

void BM_CgSolve(benchmark::State& state) {
  const auto simdlen = static_cast<uint32_t>(state.range(0));
  apps::CgResult result;
  for (auto _ : state) result = runWithSimdlen(simdlen);
  state.counters["sim_cycles"] = static_cast<double>(result.totalCycles);
  state.counters["iterations"] = static_cast<double>(result.iterations);
  state.counters["spmv_cycles"] = static_cast<double>(result.spmvCycles);
}
BENCHMARK(BM_CgSolve)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  const apps::CgResult base = runWithSimdlen(1);
  std::vector<Row> rows;
  for (uint32_t simdlen : {2u, 4u, 8u}) {
    const apps::CgResult r = runWithSimdlen(simdlen);
    rows.push_back(
        {"simdlen " + std::to_string(simdlen) + " (spmv " +
             std::to_string(r.spmvCycles) + ")",
         r.totalCycles,
         static_cast<double>(base.totalCycles) /
             static_cast<double>(r.totalCycles)});
  }
  bench::printTable(
      ("Proxy app: CG on 32x32 Poisson, " + std::to_string(base.iterations) +
       " iterations (spmv/dot/axpy pipeline)")
          .c_str(),
      "simdlen 1 (no third level)", base.totalCycles, rows);
  (void)bench::writeBenchJson("proxy_cg");
  return 0;
}
