// multi_gpu: `device(n)` offloading across a heterogeneous node.
//
// A DeviceManager hosts one NVIDIA-like and one AMD-like simulated
// device. A batch of independent SpMV-style tiles is split across them
// with `target nowait`-style deferred launches; each device gets its
// own data environment, and the AMD device transparently runs the same
// three-level source with its degraded generic-SIMD (section 5.4.1).
#include <cstdio>
#include <vector>

#include "dsl/dsl.h"
#include "hostrt/device_manager.h"

using namespace simtomp;

namespace {

constexpr uint64_t kTiles = 8;
constexpr uint64_t kRowsPerTile = 512;
constexpr uint64_t kInner = 24;

double expectedRowValue(uint64_t tile, uint64_t row) {
  double sum = 0.0;
  for (uint64_t k = 0; k < kInner; ++k) {
    sum += static_cast<double>((tile + row + k) % 11);
  }
  return sum;
}

}  // namespace

int main() {
  hostrt::DeviceManager mgr(
      {gpusim::ArchSpec::nvidiaA100(), gpusim::ArchSpec::amdMI100()});
  std::printf("multi_gpu: %zu devices\n", mgr.numDevices());

  std::vector<std::vector<double>> outputs(
      kTiles, std::vector<double>(kRowsPerTile, 0.0));
  std::vector<std::future<Result<gpusim::KernelStats>>> futures;

  for (uint64_t tile = 0; tile < kTiles; ++tile) {
    const size_t device_id = tile % mgr.numDevices();
    omprt::TargetConfig config;
    config.teamsMode = omprt::ExecMode::kSPMD;
    config.numTeams = 8;
    config.threadsPerTeam = 128;  // multiple of both warp widths
    auto* out = &outputs[tile];
    futures.push_back(mgr.launchOnAsync(
        device_id, config, [out, tile](dsl::OmpContext& ctx) {
          const omprt::rt::Range range =
              omprt::rt::distributeStatic(ctx, kRowsPerTile);
          auto rows = [out, tile](dsl::OmpContext& inner, uint64_t row) {
            const double sum = dsl::simdReduceAdd(
                inner, kInner, [tile, row](dsl::OmpContext& c, uint64_t k) {
                  c.gpu().fma();
                  return static_cast<double>((tile + row + k) % 11);
                });
            if (inner.simdGroupId() == 0) (*out)[row] = sum;
          };
          auto shifted = [&rows, base = range.begin](dsl::OmpContext& inner,
                                                     uint64_t logical) {
            rows(inner, base + logical);
          };
          dsl::parallelFor(ctx, range.size(), shifted,
                           omprt::ParallelConfig{omprt::ExecMode::kSPMD, 8});
        }));
  }

  uint64_t cycles_per_device[2] = {0, 0};
  for (uint64_t tile = 0; tile < kTiles; ++tile) {
    auto result = futures[tile].get();
    if (!result.isOk()) {
      std::fprintf(stderr, "tile %llu failed: %s\n",
                   static_cast<unsigned long long>(tile),
                   result.status().toString().c_str());
      return 1;
    }
    cycles_per_device[tile % 2] += result.value().cycles;
  }

  // Verify everything.
  for (uint64_t tile = 0; tile < kTiles; ++tile) {
    for (uint64_t row = 0; row < kRowsPerTile; ++row) {
      if (outputs[tile][row] != expectedRowValue(tile, row)) {
        std::fprintf(stderr, "mismatch tile %llu row %llu\n",
                     static_cast<unsigned long long>(tile),
                     static_cast<unsigned long long>(row));
        return 1;
      }
    }
  }

  std::printf("multi_gpu OK: %llu rows verified\n",
              static_cast<unsigned long long>(kTiles * kRowsPerTile));
  std::printf("  device 0 (%s): %llu cycles across its tiles\n",
              mgr.device(0).arch().name.c_str(),
              static_cast<unsigned long long>(cycles_per_device[0]));
  std::printf("  device 1 (%s): %llu cycles across its tiles\n",
              mgr.device(1).arch().name.c_str(),
              static_cast<unsigned long long>(cycles_per_device[1]));
  return 0;
}
