#include "omprt/convergence.h"

#include <cstdlib>
#include <cstring>
#include <mutex>

namespace simtomp::omprt {

bool resolveFastPath(FastPathMode mode) {
  switch (mode) {
    case FastPathMode::kOn:
      return true;
    case FastPathMode::kOff:
      return false;
    case FastPathMode::kAuto:
      break;
  }
  if (const char* env = std::getenv("SIMTOMP_FAST")) {
    if (std::strcmp(env, "0") == 0 || std::strcmp(env, "off") == 0 ||
        std::strcmp(env, "false") == 0) {
      return false;
    }
  }
  return true;
}

ConvergenceCache& ConvergenceCache::global() {
  static ConvergenceCache cache;
  return cache;
}

void ConvergenceCache::declareConvergent(const void* fn) {
  std::unique_lock lock(mutex_);
  Entry& entry = entries_[fn];
  // A recorded hazard outranks the promise: the probe saw the body do
  // something batching cannot reproduce.
  if (entry.verdict == Verdict::kUnknown) entry.verdict = Verdict::kDeclared;
}

ConvergenceCache::Verdict ConvergenceCache::lookup(const void* fn) const {
  std::shared_lock lock(mutex_);
  const auto it = entries_.find(fn);
  return it == entries_.end() ? Verdict::kUnknown : it->second.verdict;
}

void ConvergenceCache::reportProbe(const void* fn, bool clean,
                                   uint32_t group_size) {
  std::unique_lock lock(mutex_);
  Entry& entry = entries_[fn];
  if (entry.verdict != Verdict::kUnknown) return;  // already settled
  if (!clean) {
    entry.verdict = Verdict::kRejected;
    entry.cleanLanes = 0;
    return;
  }
  // Promote once a full group's worth of lanes ran the body hazard-free.
  // Lanes with zero iterations never report, so a body that only ever
  // sees empty loops stays kUnknown rather than being promoted untested.
  if (++entry.cleanLanes >= group_size) entry.verdict = Verdict::kEligible;
}

void ConvergenceCache::clearForTest() {
  std::unique_lock lock(mutex_);
  entries_.clear();
}

}  // namespace simtomp::omprt
